//! Verified parsing of arithmetic expressions with one token of lookahead
//! (Fig. 15, Theorem 4.14).
//!
//! The `Exp`/`Atom` grammar is weakly equivalent to the accepting traces
//! `O 0 true` of the lookahead automaton; the verified parser produces
//! genuine `Exp` parse trees — and the grammar's structure makes `+`
//! right-associative by construction.
//!
//! Run with: `cargo run --example arith_lookahead`

use lambek_automata::lookahead::ArithTokens;
use lambek_cfg::expr::{exp_parser, parse_exp_string};
use lambek_core::alphabet::GString;
use lambek_core::theory::parser::ParseOutcome;

fn tokens(t: &ArithTokens, src: &str) -> GString {
    // `n` stands for the NUM token.
    src.chars()
        .map(|c| match c {
            '(' => t.lp,
            ')' => t.rp,
            '+' => t.add,
            'n' => t.num,
            other => panic!("unknown token {other}"),
        })
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let t = ArithTokens::new();
    let parser = exp_parser(32);

    for input in ["n", "n+n+n", "(n+n)+n", "((n))", "n+", "()", "n+n)"] {
        let w = tokens(&t, input);
        match parser.parse(&w)? {
            ParseOutcome::Accept(tree) => {
                assert_eq!(tree.flatten(), w);
                println!("{input:>8} ✓ expression: {tree}");
            }
            ParseOutcome::Reject(_) => println!("{input:>8} ✗ not an expression"),
        }
    }

    // Right associativity, visible in the tree: n+n+n = n+(n+n).
    let tree = parse_exp_string(&t, &tokens(&t, "n+n+n")).expect("valid expression");
    println!("\nn+n+n parses as add(atom, +, add(atom, +, done(atom))):\n  {tree}");
    Ok(())
}
