//! Cross-shard session migration through the grammar frontend: a
//! stream session parked on one engine resumes on a *second* engine
//! whose cache has never seen the spec — shard B rebuilds the pipeline
//! from the same grammar **text** (the frontend's structural cache key
//! guarantees it lands on an observationally identical pipeline), and
//! `Engine::resume` re-validates every piece of restored state before
//! the session continues.
//!
//! Run with `cargo run --example migrate_session`.

use lambekd::engine::{Engine, SessionState};

const GRAMMAR: &str = "\
token NUM = [0-9]+ ;\n\
skip WS = [ \\t]+ ;\n\
start Exp ;\n\
Exp ::= Atom | Atom '+' Exp ;\n\
Atom ::= NUM | '(' Exp ')' ;\n";

const INPUT: &str = "(1 + 2) + (30 + 400)";

fn main() {
    // --- Shard A: compile the text, stream half the input, park -----
    let shard_a = Engine::new();
    let handle_a = shard_a.compile_text(GRAMMAR).expect("grammar compiles");
    let mut session = shard_a.stream(&handle_a.spec).expect("lexed LR streams");
    let split = INPUT.len() / 2;
    assert!(session.push_chars(&INPUT[..split]));
    let blob = session.snapshot().expect("unfaulted sessions park");
    println!(
        "shard A: parsed {:?} ({} tokens so far), parked {} bytes",
        &INPUT[..split],
        session.tokens().map(<[_]>::len).unwrap_or(0),
        blob.len()
    );

    // --- Shard B: cold cache — the text itself is the migration key -
    let shard_b = Engine::new();
    assert_eq!(shard_b.stats().compiles, 0, "shard B starts cold");
    let handle_b = shard_b.compile_text(GRAMMAR).expect("grammar compiles");
    assert!(
        !handle_b.cache_hit,
        "shard B really compiled: nothing was shared with shard A"
    );
    assert_eq!(
        handle_a.spec.key(),
        handle_b.spec.key(),
        "structurally equal texts intern to the same pipeline key"
    );

    // A corrupt blob is a structured rejection, never a bad resume.
    let mut damaged = blob.clone().into_bytes();
    let mid = damaged.len() / 2;
    damaged[mid] ^= 0x40;
    let refusal = shard_b
        .resume(&handle_b.spec, &SessionState::from_bytes(damaged))
        .map(|_| ())
        .expect_err("a damaged blob must not resume");
    println!("shard B: refused damaged blob ({refusal})");

    // The honest blob resumes; re-validation runs on shard B's side.
    let mut resumed = shard_b
        .resume(&handle_b.spec, &blob)
        .expect("honest blobs resume");
    assert!(resumed.push_chars(&INPUT[split..]));
    let outcome = resumed.finish().expect("resumed sessions finish");
    assert!(outcome.is_accept(), "the migrated parse accepts");
    assert!(
        shard_b.stats().compiles >= 1,
        "resume compiled the pipeline on shard B"
    );

    // --- The twin check: migration changed nothing observable -------
    let mut twin = shard_a.stream(&handle_a.spec).expect("twin stream");
    assert!(twin.push_chars(INPUT));
    let twin_outcome = twin.finish().expect("twin finishes");
    assert_eq!(outcome.is_accept(), twin_outcome.is_accept());
    println!(
        "shard B: resumed, finished, accept={} (twin agrees)",
        outcome.is_accept()
    );
    println!("migration done");
}
