//! Unrestricted grammars via Turing-machine reification
//! (§4.3, Construction 4.15).
//!
//! The non-context-free language `aⁿbⁿcⁿ` is decided by a Turing machine;
//! `Reify` turns its acceptance predicate into a linear type whose parses
//! are exactly the accepted strings. This demonstrates that LambekD
//! grammars reach the whole Chomsky hierarchy.
//!
//! Run with: `cargo run --example turing_reify`

use lambek_core::grammar::compile::CompiledGrammar;
use lambek_core::grammar::parse_tree::validate;
use lambek_turing::machine::anbncn_machine;
use lambek_turing::reify::reify_machine;

fn main() {
    let tm = anbncn_machine();
    let sigma = tm.input_alphabet().clone();
    const FUEL: usize = 100_000;

    let reified = reify_machine(&tm, FUEL, 9);
    println!(
        "Reify(aⁿbⁿcⁿ) truncated to length ≤ 9 has {} summands:",
        reified.strings.len()
    );
    for w in &reified.strings {
        println!("  ⌈{}⌉", sigma.display(w));
    }

    let cg = CompiledGrammar::new(&reified.grammar);
    for input in ["", "abc", "aabbcc", "aaabbbccc", "aabbc", "abcabc", "cba"] {
        let w = sigma.parse_str(input).expect("string over {a,b,c}");
        let machine_says = tm.accepts(&w, FUEL);
        let grammar_says = cg.recognizes(&w);
        assert_eq!(machine_says, grammar_says, "Construction 4.15 must agree");
        if grammar_says {
            let tree = reified.parse(&w).expect("accepted strings have parses");
            validate(&tree, &reified.grammar, &w).expect("reified parses validate");
            println!("{input:>10} ✓ in L(TM), parse {tree}");
        } else {
            println!("{input:>10} ✗ not in L(TM)");
        }
    }
}
