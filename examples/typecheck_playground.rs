//! The deep syntax in action: Fig. 1's typing derivation, the §2
//! non-derivations, and a fold transformer — all through the
//! ordered-linear type checker and the evaluator.
//!
//! Run with: `cargo run --example typecheck_playground`

use lambek_core::alphabet::Alphabet;
use lambek_core::check::Checker;
use lambek_core::eval::transformer_of;
use lambek_core::grammar::compile::CompiledGrammar;
use lambek_core::syntax::nonlinear::NlCtx;
use lambek_core::syntax::terms::LinTerm;
use lambek_core::syntax::types::{LinType, Signature};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sigma = Alphabet::abc();
    let chr = |n: &str| LinType::Char(sigma.symbol(n).unwrap());
    let sig = Signature::new();
    let ck = Checker::new(&sig);

    // Fig. 1: f (a, b) = inl (a, b)  :  'a' ⊗ 'b' ⊸ ('a' ⊗ 'b') ⊕ 'c'.
    let dom = LinType::tensor(chr("a"), chr("b"));
    let cod = LinType::alt(LinType::tensor(chr("a"), chr("b")), chr("c"));
    let f = LinTerm::lam(
        "p",
        dom.clone(),
        LinTerm::let_pair(
            LinTerm::var("p"),
            "a",
            "b",
            LinTerm::inj(0, 2, LinTerm::pair(LinTerm::var("a"), LinTerm::var("b"))),
        ),
    );
    ck.check(
        &NlCtx::new(),
        &[],
        &f,
        &LinType::lfun(dom.clone(), cod.clone()),
    )?;
    println!("✓ Fig. 1's term type-checks: f : 'a' ⊗ 'b' ⊸ ('a' ⊗ 'b') ⊕ 'c'");

    // The §2 non-derivations are rejected with the right diagnosis.
    let ctx = vec![("a".to_owned(), chr("a")), ("b".to_owned(), chr("b"))];
    for (label, bad) in [
        ("weakening  a,b ⊢ a", LinTerm::var("a")),
        (
            "contraction a,b ⊢ (a,a)",
            LinTerm::pair(LinTerm::var("a"), LinTerm::var("a")),
        ),
        (
            "exchange   a,b ⊢ (b,a)",
            LinTerm::pair(LinTerm::var("b"), LinTerm::var("a")),
        ),
    ] {
        let err = ck.infer(&NlCtx::new(), &ctx, &bad).unwrap_err();
        println!("✗ {label} rejected: {err}");
    }

    // Run f as a parse transformer on the unique parse of "ab".
    let tr = transformer_of(&sig, "f", &f, &dom, &cod, 8)?;
    let w = sigma.parse_str("ab").unwrap();
    let input = CompiledGrammar::new(tr.dom()).parses(&w, 4).trees.remove(0);
    let out = tr.apply_checked(&input)?;
    println!(
        "\nf ⟨parse of \"ab\"⟩ = {out}   (yield preserved: {})",
        {
            let y = out.flatten();
            sigma.display(&y)
        }
    );
    Ok(())
}
