//! Verified parsing of the Dyck language (Fig. 13, Fig. 14, Theorem 4.13).
//!
//! The Dyck grammar of balanced parentheses is strongly equivalent to the
//! accepting traces of an infinite-state counter automaton; the verified
//! parser is the automaton's Theorem 4.9 parser extended along that
//! equivalence with Lemma 4.8.
//!
//! Run with: `cargo run --example dyck`

use lambek_automata::counter::CounterMachine;
use lambek_automata::gen::random_dyck;
use lambek_cfg::dyck::{dyck_parser, dyck_trace_equiv, Parens};
use lambek_core::theory::parser::ParseOutcome;
use lambek_core::theory::unambiguous::all_strings;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let p = Parens::new();
    let machine = CounterMachine::new();

    // Theorem 4.13's strong equivalence, checked on all strings ≤ 6.
    let equiv = dyck_trace_equiv(&p, 6);
    equiv.check_on(&all_strings(&p.alphabet, 6), 8)?;
    equiv.check_counts_on(&all_strings(&p.alphabet, 6), 8)?;
    println!("Theorem 4.13: Dyck ≅ ParseM verified on all strings of length ≤ 6");

    let parser = dyck_parser(20);
    for input in ["", "()", "(()())()", "((((", "())(", "(())"] {
        let w = p.alphabet.parse_str(input).expect("parenthesis string");
        match parser.parse(&w)? {
            ParseOutcome::Accept(tree) => {
                assert!(machine.accepts(&w));
                println!("{input:>10} ✓ balanced, derivation: {tree}");
            }
            ParseOutcome::Reject(_) => {
                assert!(!machine.accepts(&w));
                println!("{input:>10} ✗ unbalanced (rejecting trace)");
            }
        }
    }

    // A bigger randomized run.
    let w = random_dyck(32, 42);
    let outcome = parser.parse(&w)?;
    println!(
        "random 64-char Dyck word: {} (depth {})",
        if outcome.is_accept() {
            "accepted"
        } else {
            "rejected"
        },
        machine.max_depth(&w),
    );
    Ok(())
}
