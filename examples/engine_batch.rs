//! The serving engine end-to-end: compile-once pipeline cache, batch
//! parsing over scoped worker threads, and push-mode streaming.
//!
//! Run with `cargo run --example engine_batch`.

use lambekd::core::alphabet::{Alphabet, GString};
use lambekd::engine::{Engine, PipelineSpec, ReportOutcome};

fn main() {
    let engine = Engine::new();

    // --- A mixed workload over three pipelines --------------------------
    let regex_spec = PipelineSpec::regex(Alphabet::abc(), "(a*b)|c");
    let dyck_spec = PipelineSpec::dyck(32);
    let expr_spec = PipelineSpec::expr(32);

    let sigma = Alphabet::abc();
    let regex_inputs: Vec<GString> = ["aab", "b", "c", "ca", "abab", "aaaab"]
        .iter()
        .map(|s| sigma.parse_str(s).unwrap())
        .collect();
    let parens = Alphabet::parens();
    let dyck_inputs: Vec<GString> = ["()", "(())()", ")(", "((((()))))", "(()"]
        .iter()
        .map(|s| parens.parse_str(s).unwrap())
        .collect();
    let arith = Alphabet::arith();
    let toks = |s: &str| -> GString {
        s.chars()
            .map(|c| match c {
                'n' => arith.symbol("NUM").unwrap(),
                '+' => arith.symbol("+").unwrap(),
                '(' => arith.symbol("(").unwrap(),
                ')' => arith.symbol(")").unwrap(),
                other => panic!("bad token {other}"),
            })
            .collect()
    };
    let expr_inputs: Vec<GString> = ["n+n", "(n+n)+n", "n+", "n", "()"]
        .iter()
        .map(|s| toks(s))
        .collect();

    for (name, spec, inputs) in [
        ("regex (a*b)|c", &regex_spec, &regex_inputs),
        ("dyck", &dyck_spec, &dyck_inputs),
        ("expr", &expr_spec, &expr_inputs),
    ] {
        let reports = engine.parse_many(spec, inputs, 4).unwrap();
        let accepted = reports.iter().filter(|r| r.outcome.is_accept()).count();
        let verified = reports.iter().filter(|r| r.yield_ok).count();
        println!(
            "{name}: {accepted}/{} accepted, {verified} intrinsically verified yields",
            reports.len()
        );
        for r in &reports {
            let verdict = match &r.outcome {
                ReportOutcome::Accepted { tree_size } => format!("accept (tree size {tree_size})"),
                ReportOutcome::Rejected { witness_size } => {
                    format!("reject (witness size {witness_size})")
                }
                ReportOutcome::Failed(e) => format!("failed: {e}"),
                ReportOutcome::BudgetExceeded { budget, required } => {
                    format!("shed: {required} symbols over the {budget}-symbol budget")
                }
                ReportOutcome::DeadlineExceeded => "shed: deadline passed".to_owned(),
            };
            println!("  input #{} (len {}): {verdict}", r.index, r.input_len);
        }
    }

    // --- Cache reuse: the same specs cost nothing the second time -------
    let before = engine.stats();
    engine.parse_many(&regex_spec, &regex_inputs, 2).unwrap();
    engine.parse_many(&dyck_spec, &dyck_inputs, 2).unwrap();
    let after = engine.stats();
    println!(
        "cache: {} pipelines compiled, {} hits ({} new compilations on re-batch)",
        after.compiles,
        after.hits,
        after.compiles - before.compiles,
    );
    assert_eq!(after.compiles, before.compiles, "compile-once cache");

    // --- Streaming: push symbols one at a time --------------------------
    let mut stream = engine.stream(&dyck_spec).unwrap();
    for sym in parens.parse_str("(()())").unwrap().iter() {
        stream.push(sym);
    }
    println!(
        "stream: {} symbols pushed, balanced so far: {}",
        stream.len(),
        stream.would_accept()
    );
    let outcome = stream.finish().unwrap();
    println!("stream finish: accepted = {}", outcome.is_accept());
}
