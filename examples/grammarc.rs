//! grammarc — the grammar-language compiler as a CLI: compile a `.g`
//! spec through the self-hosted frontend ([`Engine::compile_text`])
//! and parse input through the resulting cached pipeline, reporting
//! every outcome as one JSON object per line (machine-readable,
//! deterministic).
//!
//! Usage:
//!
//! ```text
//! cargo run --example grammarc -- path/to/spec.g   # parses stdin
//! cargo run --example grammarc                     # built-in demo
//! ```
//!
//! With a spec path, stdin is read to the end and parsed as one
//! document. With no arguments it runs the embedded JSON preset over a
//! fixed corpus — the mode the test suite smokes.

use std::io::Read;

use lambekd::engine::{Engine, FrontendReport, StrOutcome};
use lambekd::frontend::presets;

/// Escapes `s` for inclusion in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a failed compile as one structured JSON line.
fn report_json(report: &FrontendReport) -> String {
    match report {
        FrontendReport::Errors(errors) => {
            let items: Vec<String> = errors
                .iter()
                .map(|e| {
                    format!(
                        r#"{{"line":{},"col":{},"message":"{}"}}"#,
                        e.line,
                        e.col,
                        json_escape(&e.kind.to_string())
                    )
                })
                .collect();
            format!(
                r#"{{"event":"reject","kind":"diagnostics","errors":[{}]}}"#,
                items.join(",")
            )
        }
        FrontendReport::Conflicts(report) => {
            let sites: Vec<String> = report
                .sites
                .iter()
                .map(|s| {
                    format!(
                        r#"{{"rule":"{}","line":{},"col":{}}}"#,
                        json_escape(&s.rule),
                        s.line,
                        s.col
                    )
                })
                .collect();
            format!(
                r#"{{"event":"reject","kind":"conflicts","count":{},"sites":[{}]}}"#,
                report.report.conflicts.len(),
                sites.join(",")
            )
        }
        FrontendReport::Budget(shed) => format!(
            r#"{{"event":"reject","kind":"budget","detail":"{}"}}"#,
            json_escape(&shed.to_string())
        ),
        FrontendReport::Internal(message) => format!(
            r#"{{"event":"reject","kind":"internal","detail":"{}"}}"#,
            json_escape(message)
        ),
    }
}

/// Compiles `text` on `engine` and, on success, parses each input,
/// printing one JSON line per event. Returns whether the compile
/// succeeded.
fn drive(engine: &Engine, label: &str, text: &str, inputs: &[&str]) -> bool {
    let handle = match engine.compile_text(text) {
        Ok(handle) => handle,
        Err(report) => {
            println!("{}", report_json(&report));
            return false;
        }
    };
    let backend = handle.pipeline.lexed_backend().expect("text pipeline");
    let states = backend
        .cfg_backend()
        .lr()
        .map(|p| p.table().num_states())
        .unwrap_or(0);
    println!(
        r#"{{"event":"compile","spec":"{}","start":"{}","cache_hit":{},"states":{}}}"#,
        json_escape(label),
        json_escape(&handle.start),
        handle.cache_hit,
        states
    );
    for input in inputs {
        match backend.parse_str_tokens(input).expect("certified parse") {
            StrOutcome::Accept { tokens, .. } => {
                let count = tokens.map(|t| t.tokens().len()).unwrap_or(0);
                println!(
                    r#"{{"event":"parse","input":"{}","accept":true,"tokens":{}}}"#,
                    json_escape(input),
                    count
                );
            }
            StrOutcome::RejectLex(e) => println!(
                r#"{{"event":"parse","input":"{}","accept":false,"error":"{}"}}"#,
                json_escape(input),
                json_escape(&e.to_string())
            ),
            StrOutcome::RejectParse { message, span, .. } => println!(
                r#"{{"event":"parse","input":"{}","accept":false,"at":{},"error":"{}"}}"#,
                json_escape(input),
                span.start,
                json_escape(&message)
            ),
        }
    }
    true
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let engine = Engine::new();

    if let Some(path) = args.first() {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let mut input = String::new();
        std::io::stdin()
            .read_to_string(&mut input)
            .expect("reading stdin");
        let ok = drive(&engine, path, &text, &[input.as_str()]);
        std::process::exit(if ok { 0 } else { 1 });
    }

    // Demo mode: the JSON preset over a fixed corpus, then a broken
    // spec to show the structured diagnostics path.
    drive(
        &engine,
        "preset:json",
        presets::JSON,
        &[
            r#"{"k": [1, 2.5e3, true], "s": "hi\n"}"#,
            r#"[null, false, {"nested": {}}]"#,
            r#"{"unclosed": ["#,
        ],
    );
    drive(&engine, "broken", "token = ;", &[]);
    println!("grammarc done");
}
