//! The observability layer end-to-end: a traced engine runs a mixed
//! workload (hits, misses, accepts, rejections, unlexable bytes,
//! pooled and sequential batches), then prints what an operator would
//! scrape — the Prometheus metrics snapshot — and what they would pull
//! up to debug a slow request: the three slowest retained traces with
//! their per-stage breakdown.
//!
//! Run with `cargo run --example obs_dashboard`.

use lambekd::engine::{CacheConfig, Engine, ObsConfig, PipelineSpec};

fn main() {
    let engine = Engine::with_obs(
        CacheConfig::default(),
        ObsConfig {
            tracing: true,
            trace_ring: 64,
        },
    );

    // --- A mixed raw-text workload over two lexed pipelines -------------
    let arith = PipelineSpec::arith_lexed();
    let json = PipelineSpec::json_lexed();
    let arith_inputs = ["1+2", "(10+20)+30", "7++", "12 x 34", ""];
    let json_inputs = [
        r#"{"k": [1, 2, 3], "nested": {"ok": true}}"#,
        r#"[null, false, "strings too"]"#,
        r#"{"unclosed": ["#,
    ];
    // Sequential batch, pooled batch, then a re-batch for cache hits.
    engine.parse_many_str(&arith, &arith_inputs, 1).unwrap();
    engine.parse_many_str(&json, &json_inputs, 2).unwrap();
    let reports = engine.parse_many_str(&arith, &arith_inputs, 2).unwrap();
    let accepted = reports.iter().filter(|r| r.outcome.is_accept()).count();
    println!(
        "workload: {} requests traced, {accepted}/{} of the re-batch accepted",
        engine.recent_traces().len(),
        reports.len()
    );

    // --- The scrape: Prometheus text exposition --------------------------
    println!("\n--- metrics (Prometheus text) ---");
    print!("{}", engine.metrics_text());

    // --- The drill-down: three slowest retained traces -------------------
    let mut traces = engine.recent_traces();
    traces.sort_by_key(|t| std::cmp::Reverse(t.total));
    println!("--- three slowest traces ---");
    for t in traces.iter().take(3) {
        println!("{t}");
    }

    // The JSON snapshot is what a dashboard poller would ingest.
    let json_snapshot = engine.metrics_json();
    println!(
        "\nobs dashboard done: JSON snapshot is {} bytes, stable across idle gathers: {}",
        json_snapshot.len(),
        engine.metrics_json() == json_snapshot
    );
}
