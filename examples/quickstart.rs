//! Quickstart: the paper's running example, end to end.
//!
//! Builds the grammar `('a'* ⊗ 'b') ⊕ 'c'` (Fig. 3), compiles the
//! verified regex parser of Corollary 4.12 (regex → Thompson NFA →
//! Rabin–Scott DFA → Theorem 4.9 trace parser → extended back along the
//! equivalences), and parses a few strings — printing the intrinsically
//! verified parse trees.
//!
//! Run with: `cargo run --example quickstart`

use lambek_core::alphabet::Alphabet;
use lambek_core::theory::parser::ParseOutcome;
use regex_grammars::ast::parse_regex;
use regex_grammars::pipeline::RegexParser;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sigma = Alphabet::abc();
    let regex = parse_regex(&sigma, "(a*b)|c")?;
    println!("regex      : {}", regex.display(&sigma));

    let parser = RegexParser::compile(&sigma, regex)?;
    println!(
        "NFA states : {} (Thompson, Construction 4.11)",
        parser.thompson().nfa().num_states()
    );
    println!(
        "DFA states : {} (Rabin–Scott, Construction 4.10)",
        parser.determinized().dfa.num_states()
    );
    println!();

    for input in ["ab", "aaab", "b", "c", "ba", "abc", ""] {
        let w = sigma.parse_str(input).expect("input over Σ = {a,b,c}");
        match parser.parse(&w)? {
            ParseOutcome::Accept(tree) => {
                // The tree is *verified*: it is a parse of the regex
                // grammar whose yield is exactly the input string.
                assert_eq!(tree.flatten(), w);
                println!("{input:>5} ✓ accepted with parse tree {tree}");
            }
            ParseOutcome::Reject(witness) => {
                // Completeness: rejection carries a rejecting-trace parse
                // of the same input (Definition 4.6's negative grammar).
                assert_eq!(witness.flatten(), w);
                println!("{input:>5} ✗ rejected (rejecting trace covers the input)");
            }
        }
    }
    Ok(())
}
