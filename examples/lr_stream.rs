//! Streaming LR over a long Dyck input: the engine compiles the Dyck CFG
//! to certified LALR(1) tables once, then a push-mode stream consumes
//! the input one parenthesis at a time — each push is one shift (plus
//! its pending reductions) against the dense ACTION/GOTO tables — while
//! `would_accept` probes answer "balanced so far?" from a scratch
//! simulation of the state stack. `finish` completes the parse and
//! re-validates the tree with the core derivation checker, so the
//! streamed result carries the same intrinsic guarantee as a one-shot
//! parse.
//!
//! Run with `cargo run --example lr_stream`.

use lambekd::automata::gen::random_dyck;
use lambekd::core::alphabet::Alphabet;
use lambekd::core::grammar::parse_tree::validate;
use lambekd::engine::{Engine, PipelineSpec};

fn main() {
    let engine = Engine::new();
    let spec = PipelineSpec::dyck_cfg();
    let pipeline = engine.get_or_compile(&spec).unwrap();
    let backend = pipeline.cfg_backend().expect("cfg pipeline");
    let lr = backend.lr().expect("Dyck is LALR(1)");
    println!(
        "compiled {} to LR: {} states × {} terminal columns ({} productions)",
        spec.label(),
        lr.table().num_states(),
        lr.table().num_terminals(),
        lr.table().num_productions(),
    );

    // A long balanced word, streamed one symbol at a time.
    let sigma = Alphabet::parens();
    let w = random_dyck(512, 42);
    println!("streaming a {}-symbol Dyck word…", w.len());

    let mut stream = engine.stream(&spec).unwrap();
    let mut balanced_prefixes = 0usize;
    for (i, sym) in w.iter().enumerate() {
        stream.push(sym);
        // A would_accept probe after every symbol: "if the input ended
        // here, would it be balanced?" — no trees built, stream intact.
        if stream.would_accept() {
            balanced_prefixes += 1;
            if balanced_prefixes <= 3 {
                println!(
                    "  probe: prefix of length {} is balanced (viable: {})",
                    i + 1,
                    stream.is_viable(),
                );
            }
        }
    }
    println!(
        "{} of {} prefixes were balanced; final probe: {}",
        balanced_prefixes,
        w.len(),
        stream.would_accept(),
    );

    let outcome = stream.finish().unwrap();
    let tree = outcome.accepted().expect("the word is balanced");
    validate(tree, pipeline.grammar(), &w).unwrap();
    println!(
        "LR stream finished: accepted, tree of {} constructors, yield re-validated ({} = input)",
        tree.size(),
        sigma.display(&tree.flatten()) == sigma.display(&w),
    );

    // An unbalanced stream flips is_viable at the offending symbol and
    // stays rejected.
    let bad = sigma.parse_str("(()))(").unwrap();
    let mut stream = engine.stream(&spec).unwrap();
    for sym in bad.iter() {
        stream.push(sym);
    }
    println!(
        "unbalanced {}: viable = {}, would_accept = {}, accepted = {}",
        sigma.display(&bad),
        stream.is_viable(),
        stream.would_accept(),
        stream.finish().unwrap().is_accept(),
    );
}
