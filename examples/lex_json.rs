//! Raw JSON-subset text through the full certified pipeline:
//! characters → tagged-DFA maximal-munch lexer → token string →
//! certified LR parse tree, with rejections pointing at byte offsets of
//! the raw text.
//!
//! Run with `cargo run --example lex_json`.

use lambekd::core::grammar::parse_tree::validate;
use lambekd::engine::{Engine, PipelineSpec, StrOutcome, StrReportOutcome};

fn main() {
    let engine = Engine::new();
    let spec = PipelineSpec::json_lexed();
    let pipeline = engine.get_or_compile(&spec).expect("compiles");
    let backend = pipeline.lexed_backend().expect("lexed pipeline");
    println!(
        "compiled {}: {} lex rules over {} chars → tagged DFA with {} states; {}",
        spec.label(),
        backend.lexer().spec().rules().len(),
        backend.lexer().spec().alphabet().len(),
        backend.lexer().automaton().dfa().num_states(),
        if backend.cfg_backend().lr().is_some() {
            "token grammar is LALR(1)"
        } else {
            "token grammar fell back to Earley"
        },
    );

    // A batch of raw texts: three valid documents, one with a lexical
    // error, one with a parse error.
    let inputs = [
        "{\"name\": \"ada\", \"age\": 36}",
        "[1, 2, [true, false, null], {\"nested\": []}]",
        "{\"weights\": [70, 80, 90], \"ok\": true}",
        "{\"price\": 12.50}", // '.' is not in the character alphabet
        "{\"a\" 1}",          // missing ':' — rejected at the NUM token
    ];
    let reports = engine
        .parse_many_str(&spec, &inputs, 2)
        .expect("pipeline is cached");
    for (input, report) in inputs.iter().zip(&reports) {
        match &report.outcome {
            StrReportOutcome::Accepted { tree_size, tokens } => {
                println!("  ok      {input}  ({tokens} tokens, tree size {tree_size})");
            }
            StrReportOutcome::RejectedParse { span, message } => {
                println!(
                    "  parse✗  {input}  at {span} ({:?}): {message}",
                    &input[span.start..span.end.min(input.len())],
                );
            }
            StrReportOutcome::RejectedLex { at, message } => {
                println!("  lex✗    {input}  {message} (byte {at})");
            }
            StrReportOutcome::Failed(m) => println!("  failed  {input}  {m}"),
            StrReportOutcome::BudgetExceeded { budget, required } => {
                println!("  shed    {input}  ({required} bytes over the {budget}-byte budget)");
            }
            StrReportOutcome::DeadlineExceeded => println!("  shed    {input}  (deadline passed)"),
        }
    }

    // The accepted trees are certified twice over — re-check the first
    // one by hand: tree vs token string, spans vs raw text. The fused
    // `parse_str` never materializes the stream, so ask the
    // token-materializing variant for it.
    let parsed = backend
        .parse_str_tokens(inputs[0])
        .expect("no contract violation");
    let StrOutcome::Accept { tree, tokens } = parsed else {
        panic!("input 0 is valid");
    };
    let tokens = tokens.expect("lexed pipeline");
    validate(&tree, pipeline.grammar(), tokens.yield_string()).expect("tree certifies");
    backend
        .lexer()
        .certify(inputs[0], tokens.tokens())
        .expect("spans certify");
    println!(
        "re-certified both layers: {} raw bytes → {} tokens → tree yield matches",
        inputs[0].len(),
        tokens.yield_string().len(),
    );

    // Streaming: the same document, one character at a time, with a
    // viability probe per character.
    let mut stream = engine.stream(&spec).expect("LALR token grammar streams");
    let doc = inputs[1];
    for c in doc.chars() {
        assert!(stream.push_char(c), "every prefix of a valid doc is viable");
    }
    let outcome = stream.finish().expect("certified finish");
    println!(
        "lexed JSON stream finished: accepted = {} (pointwise equal to the batch path)",
        outcome.is_accept(),
    );
}
