//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build environment has no registry access, so this tiny crate
//! provides the pieces of `rand` 0.8 the workspace actually uses:
//! [`rngs::StdRng`], [`SeedableRng::seed_from_u64`], and the [`Rng`]
//! extension methods `gen`, `gen_bool` and `gen_range` over integer
//! ranges. The generator is SplitMix64 seeded directly from the `u64`
//! seed — deterministic, fast, and more than random enough for test and
//! benchmark input generation. Swap the real `rand` back in by deleting
//! `vendor/rand` and pointing the workspace dependency at crates.io.

use std::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (the `seed_from_u64` entry point only).
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly by [`Rng::gen`].
pub trait Standard: Sized {
    /// Samples a uniform value from raw bits.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for f64 {
    fn from_bits(bits: u64) -> Self {
        // 53 random mantissa bits in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl Standard for usize {
    fn from_bits(bits: u64) -> Self {
        bits as usize
    }
}

/// Ranges that [`Rng::gen_range`] can sample from, producing `T`.
/// Parameterizing over `T` (instead of an associated type) lets integer
/// literals in ranges infer their type from the call site, as with the
/// real `rand`.
pub trait SampleRange<T> {
    /// Samples uniformly from the range. Panics if the range is empty.
    fn sample_from(self, bits: u64) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, bits: u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (bits % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, bits: u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi - lo) as u64 + 1;
                lo + (bits % span) as $t
            }
        }
    )*};
}

impl_sample_range!(usize, u64, u32, u16, u8);

macro_rules! impl_sample_range_signed {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from(self, bits: u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + (bits % span) as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from(self, bits: u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u64 + 1;
                (lo as i128 + (bits % span) as i128) as $t
            }
        }
    )*};
}

impl_sample_range_signed!(i64: u64, i32: u32, i16: u16, i8: u8);

/// Extension methods over any [`RngCore`] (the `rand::Rng` subset).
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p out of range: {p}");
        self.gen::<f64>() < p
    }

    /// Samples uniformly from `range`. Panics on empty ranges.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self.next_u64())
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard deterministic generator (SplitMix64 under the hood).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea, Flood 2014).
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(1usize..=2);
            assert!((1..=2).contains(&y));
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_is_roughly_calibrated() {
        let mut rng = StdRng::seed_from_u64(1);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "hits = {hits}");
    }
}
