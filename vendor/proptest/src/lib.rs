//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this crate
//! implements the subset of proptest's API that the workspace's
//! `tests/prop_*.rs` suites use:
//!
//! * the [`proptest!`] macro (with `#![proptest_config(..)]` headers and
//!   `arg in strategy` bindings);
//! * [`strategy::Strategy`] with `prop_map`, implemented for integer
//!   ranges, plus [`collection::vec`];
//! * `prop_assert!` / `prop_assert_eq!` / `prop_assert_ne!` /
//!   `prop_assume!`;
//! * [`test_runner::ProptestConfig`] honoring the `PROPTEST_CASES`
//!   environment variable as a global cap.
//!
//! Differences from real proptest: inputs are generated from a
//! deterministic per-test RNG (seeded from the test's module path) and
//! failures are **not shrunk** — the failing input is printed as-is.
//! That keeps every run reproducible and the dependency surface zero.

/// Configuration and failure plumbing for generated test functions.
pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// How a single generated case failed.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// `prop_assume!` rejected the input; try another one.
        Reject,
        /// An assertion failed with this message.
        Fail(String),
    }

    /// Per-suite configuration (`cases` only).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of successful cases required per property.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A config requiring `cases` successful runs.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }

        /// The case count after applying the `PROPTEST_CASES`
        /// environment cap (the smaller of the two wins, so CI can
        /// globally bound suite runtime without editing tests).
        pub fn effective_cases(&self) -> u32 {
            match std::env::var("PROPTEST_CASES")
                .ok()
                .and_then(|v| v.parse::<u32>().ok())
            {
                Some(env_cases) => self.cases.min(env_cases.max(1)),
                None => self.cases,
            }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// The deterministic generator handed to strategies.
    #[derive(Debug)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Seeds a generator from a test identifier (FNV-1a hash), so
        /// each property gets a distinct but reproducible stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng(StdRng::seed_from_u64(h))
        }

        /// The next 64 random bits.
        pub fn bits(&mut self) -> u64 {
            self.0.next_u64()
        }
    }
}

/// The `Strategy` trait and combinators.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// A recipe for generating values (no shrinking in this stand-in).
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn new_value(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { source: self, f }
        }
    }

    /// The result of [`Strategy::prop_map`].
    #[derive(Debug)]
    pub struct Map<S, F> {
        source: S,
        f: F,
    }

    impl<S, O, F> Strategy for Map<S, F>
    where
        S: Strategy,
        F: Fn(S::Value) -> O,
    {
        type Value = O;

        fn new_value(&self, rng: &mut TestRng) -> O {
            (self.f)(self.source.new_value(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn new_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as u128 - self.start as u128) as u64;
                    (self.start as u128 + (rng.bits() % span) as u128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn new_value(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi as u128 - lo as u128) + 1;
                    (lo as u128 + (rng.bits() as u128 % span)) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(usize, u64, u32, u16, u8);
}

/// Collection strategies (`vec` only).
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::{Range, RangeInclusive};

    /// An inclusive length range for generated collections.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// Generates a `Vec` whose length is drawn from `size` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// The result of [`vec()`].
    #[derive(Debug)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn new_value(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64 + 1;
            let len = self.size.min + (rng.bits() % span) as usize;
            (0..len).map(|_| self.element.new_value(rng)).collect()
        }
    }
}

/// Everything a `tests/prop_*.rs` file needs in scope.
pub mod prelude {
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Fails the current case unless the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{} == {}`\n  left: `{:?}`\n right: `{:?}`",
            stringify!($lhs),
            stringify!($rhs),
            lhs,
            rhs
        );
    }};
    ($lhs:expr, $rhs:expr, $($fmt:tt)*) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs == rhs,
            "assertion failed: `{} == {}` ({})\n  left: `{:?}`\n right: `{:?}`",
            stringify!($lhs),
            stringify!($rhs),
            format!($($fmt)*),
            lhs,
            rhs
        );
    }};
}

/// Fails the current case if the two expressions compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let (lhs, rhs) = (&$lhs, &$rhs);
        $crate::prop_assert!(
            lhs != rhs,
            "assertion failed: `{} != {}`\n  both: `{:?}`",
            stringify!($lhs),
            stringify!($rhs),
            lhs
        );
    }};
}

/// Rejects the current case (not a failure) unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}

/// Defines property tests. Supports an optional
/// `#![proptest_config(expr)]` header followed by `#[test]` functions
/// whose arguments are `name in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg); $($rest)*);
    };
    (@impl ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let cases = config.effective_cases();
            let mut rng = $crate::test_runner::TestRng::for_test(concat!(
                module_path!(), "::", stringify!($name)
            ));
            let mut passed: u32 = 0;
            let mut rejected: u32 = 0;
            // Strategy expressions are evaluated ONCE, bound to the
            // argument names, then shadowed per case by the generated
            // values — matching real proptest and keeping per-case work
            // to generation only.
            $(let $arg = $strat;)*
            while passed < cases {
                if rejected > cases.saturating_mul(16) + 1024 {
                    panic!(
                        "proptest {}: too many inputs rejected by prop_assume! \
                         ({} rejected, {} passed, {} required)",
                        stringify!($name), rejected, passed, cases
                    );
                }
                $(let $arg = $crate::strategy::Strategy::new_value(&$arg, &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => passed += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject) => {
                        rejected += 1;
                    }
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        // Debug-format the failing input only on the
                        // failure path; green cases pay nothing.
                        panic!(
                            "proptest {} failed after {} passing case(s)\ninput: {}\n{}",
                            stringify!($name),
                            passed,
                            format!(
                                concat!($(stringify!($arg), " = {:?}, ",)*),
                                $(&$arg),*
                            ),
                            msg
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::ProptestConfig::default()); $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..17, y in 0u64..5) {
            prop_assert!((3..17).contains(&x));
            prop_assert!(y < 5, "y = {}", y);
        }

        #[test]
        fn vec_strategy_and_map(v in crate::collection::vec(0usize..3, 0..=4)) {
            prop_assert!(v.len() <= 4);
            prop_assert!(v.iter().all(|&e| e < 3));
        }

        #[test]
        fn assume_rejects(x in 0usize..10) {
            prop_assume!(x % 2 == 0);
            prop_assert_eq!(x % 2, 0);
        }
    }

    #[test]
    #[should_panic(expected = "proptest always_fails failed")]
    fn failure_panics_with_input() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(1))]
            #[allow(unreachable_code)]
            fn always_fails(x in 0usize..10) {
                prop_assert!(x > 100, "x = {}", x);
            }
        }
        always_fails();
    }

    #[test]
    fn env_cap_bounds_cases() {
        let cfg = ProptestConfig::with_cases(1000);
        assert!(cfg.effective_cases() <= 1000);
    }
}
