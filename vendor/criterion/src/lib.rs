//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this crate provides
//! the criterion 0.5 API subset the `crates/bench` benches use:
//! [`Criterion`], [`BenchmarkGroup`] (`benchmark_group`, `sample_size`,
//! `bench_function`, `bench_with_input`, `finish`), [`BenchmarkId`],
//! [`Bencher::iter`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement is intentionally simple: each benchmark runs a short
//! warm-up, then `sample_size` timed batches, and reports the median
//! per-iteration time to stdout. There is no statistics engine, HTML
//! report, or plotting — the point is that `cargo bench` compiles, runs,
//! and prints honest wall-clock numbers offline. Set
//! `CRITERION_SAMPLE_MS` (per-sample budget, default 50) to trade
//! precision for speed in CI.

use std::fmt;
use std::time::{Duration, Instant};

/// Opaque value barrier — prevents the optimizer from deleting the
/// benchmarked computation.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// A benchmark identifier: a function name plus a parameter rendered
/// with `Display` (e.g. an input size).
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id for `function` at `parameter`.
    pub fn new(function: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id carrying only a parameter (criterion parity).
    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match (&self.function[..], &self.parameter) {
            ("", Some(p)) => write!(f, "{p}"),
            (name, Some(p)) => write!(f, "{name}/{p}"),
            (name, None) => write!(f, "{name}"),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> Self {
        BenchmarkId {
            function: name.to_owned(),
            parameter: None,
        }
    }
}

/// The timing loop handed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
    sample_count: usize,
    sample_budget: Duration,
}

impl Bencher {
    fn new(sample_count: usize, sample_budget: Duration) -> Self {
        Bencher {
            iters_per_sample: 1,
            samples: Vec::new(),
            sample_count,
            sample_budget,
        }
    }

    /// Times `routine`, recording `sample_count` batches sized to fit
    /// the per-sample budget.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Warm-up: find an iteration count that fills the budget.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= self.sample_budget || iters >= 1 << 20 {
                // A sub-nanosecond routine (or an optimized-away loop)
                // would make the quotient 0 — clamp after dividing, or
                // the budget division below divides by zero.
                let per_iter = (elapsed.as_nanos() / iters as u128).max(1);
                let target = self.sample_budget.as_nanos();
                iters = ((target / per_iter).max(1) as u64).min(1 << 20);
                break;
            }
            iters *= 2;
        }
        self.iters_per_sample = iters;
        self.samples.clear();
        for _ in 0..self.sample_count {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            self.samples.push(start.elapsed());
        }
    }

    /// Median per-iteration time over the recorded samples.
    fn median_per_iter(&self) -> Duration {
        if self.samples.is_empty() {
            return Duration::ZERO;
        }
        let mut per_iter: Vec<u128> = self
            .samples
            .iter()
            .map(|d| d.as_nanos() / self.iters_per_sample as u128)
            .collect();
        per_iter.sort_unstable();
        Duration::from_nanos(per_iter[per_iter.len() / 2] as u64)
    }
}

fn sample_budget_from_env() -> Duration {
    let ms = std::env::var("CRITERION_SAMPLE_MS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .unwrap_or(50);
    Duration::from_millis(ms.max(1))
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_count: usize,
    sample_budget: Duration,
}

impl BenchmarkGroup<'_> {
    /// Sets how many timed samples each benchmark records.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_count = n.max(2);
        self
    }

    /// Runs `routine` under `id` with no external input.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher::new(self.sample_count, self.sample_budget);
        routine(&mut b);
        self.report(&id, &b);
        self
    }

    /// Runs `routine` under `id`, passing it `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut routine: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher::new(self.sample_count, self.sample_budget);
        routine(&mut b, input);
        self.report(&id, &b);
        self
    }

    fn report(&mut self, id: &BenchmarkId, b: &Bencher) {
        let per_iter = b.median_per_iter();
        println!(
            "{:<50} {:>14} /iter  ({} samples x {} iters)",
            format!("{}/{}", self.name, id),
            format_duration(per_iter),
            b.sample_count,
            b.iters_per_sample,
        );
        self.criterion.benchmarks_run += 1;
    }

    /// Ends the group (criterion parity; reporting is incremental).
    pub fn finish(&mut self) {}
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {
    benchmarks_run: usize,
}

impl Criterion {
    /// Opens a named [`BenchmarkGroup`].
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n== {name} ==");
        BenchmarkGroup {
            criterion: self,
            name,
            sample_count: 10,
            sample_budget: sample_budget_from_env(),
        }
    }

    /// Runs `routine` as a standalone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, routine: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group(name.to_owned())
            .bench_function("run", routine);
        self
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes harness flags like `--bench`; a plain
            // binary must tolerate them.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_records_samples() {
        let mut b = Bencher::new(3, Duration::from_millis(1));
        let mut counter = 0u64;
        b.iter(|| {
            counter = counter.wrapping_add(1);
            counter
        });
        assert_eq!(b.samples.len(), 3);
        assert!(b.median_per_iter() < Duration::from_millis(10));
    }

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("unit");
        // Explicit budget: tests must not mutate process env (set_var
        // races with concurrently running tests reading the env).
        group.sample_budget = Duration::from_millis(1);
        group.sample_size(2);
        group.bench_with_input(BenchmarkId::new("square", 4), &4u64, |b, &n| {
            b.iter(|| n * n)
        });
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.finish();
        assert_eq!(c.benchmarks_run, 2);
    }

    #[test]
    fn benchmark_id_display() {
        assert_eq!(BenchmarkId::new("parse", 128).to_string(), "parse/128");
        assert_eq!(BenchmarkId::from_parameter(7).to_string(), "7");
    }
}
