//! Smoke tests for the `examples/*.rs`: each example is built and
//! executed via `cargo run --example`, and its stdout is checked for a
//! sentinel line, so the quickstart/dyck/turing_reify demos can never
//! silently rot while tests stay green.

use std::process::Command;

/// Runs one example through the `cargo` that built this test binary and
/// returns its stdout. Panics (with stderr attached) on non-zero exit.
fn run_example(name: &str) -> String {
    // Runtime lookup, not compile-time env!: the baked-in toolchain path
    // can go stale when the cached test binary outlives a rustup update.
    let cargo = std::env::var_os("CARGO").unwrap_or_else(|| "cargo".into());
    // Shares the workspace target dir: `cargo test` has already built
    // every example by the time tests run, so this is a cache hit, and
    // the build lock is free while test binaries execute.
    let output = Command::new(cargo)
        .args(["run", "--quiet", "--example", name])
        .output()
        .unwrap_or_else(|e| panic!("failed to spawn cargo for example {name}: {e}"));
    assert!(
        output.status.success(),
        "example {name} exited with {:?}\n--- stdout ---\n{}\n--- stderr ---\n{}",
        output.status.code(),
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
    String::from_utf8_lossy(&output.stdout).into_owned()
}

/// All examples run sequentially in one test: concurrent `cargo
/// run` invocations would contend on the build lock for no benefit.
#[test]
fn examples_run_and_print_their_sentinels() {
    for (example, sentinel) in [
        ("quickstart", "DFA states"),
        ("dyck", "Theorem 4.13"),
        ("arith_lookahead", "expression"),
        ("turing_reify", "Reify"),
        ("typecheck_playground", "type-checks"),
        ("engine_batch", "pipelines compiled"),
        ("lr_stream", "LR stream finished"),
        ("lex_json", "lexed JSON stream finished"),
        ("obs_dashboard", "obs dashboard done"),
        ("grammarc", "grammarc done"),
        ("migrate_session", "migration done"),
    ] {
        let stdout = run_example(example);
        assert!(
            stdout.contains(sentinel),
            "example {example} ran but its stdout lost the sentinel {sentinel:?}:\n{stdout}"
        );
    }
}
