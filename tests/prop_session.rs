//! Property suite for serializable stream sessions: parking a stream
//! mid-input — snapshot → serialize → deserialize → resume — must be
//! *observationally invisible*. For random pipelines, random inputs and
//! random snapshot points:
//!
//! 1. the resumed stream agrees with an uninterrupted twin at **every**
//!    subsequent push (`would_accept`, `is_viable`, consumed lengths)
//!    and at the end (`finish`: same accepts, same rejects, identical
//!    certified trees, every accepted tree re-validated from outside);
//! 2. a blob parked from one spec never resumes into a structurally
//!    different one (`SessionError::SpecMismatch`), and a damaged blob
//!    is a structured `Corrupt`/`Invalid` error — resume can reject a
//!    bogus blob but can never be tricked into mis-certifying: whatever
//!    state it does accept behaves identically to a stream that earned
//!    that state honestly, which is exactly what property 1 asserts.
//!
//! DFA-mode sessions are exercised on random regexes, LR-mode sessions
//! on random LALR(1) grammars, lexed-LR sessions on the raw-text
//! arithmetic and JSON pipelines with inputs that include unlexable
//! bytes (dead-lexer sessions must park and resume too).

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lambekd::core::alphabet::{Alphabet, GString, Symbol};
use lambekd::core::grammar::parse_tree::validate;
use lambekd::engine::{Engine, PipelineSpec, SessionError, SessionState};

/// Drives two streams over the same symbol input, parking and resuming
/// one of them at `cut`, and asserts pointwise observational equality
/// from the cut to the end.
fn assert_symbol_session_equivalence(
    engine: &Engine,
    spec: &PipelineSpec,
    w: &GString,
    cut: usize,
) -> Result<(), TestCaseError> {
    let mut base = engine.stream(spec).expect("spec streams");
    let mut parked = engine.stream(spec).expect("spec streams");
    for sym in w.iter().take(cut) {
        base.push(sym);
        parked.push(sym);
    }
    let blob = parked.snapshot().expect("unfaulted streams park");
    // Round-trip through raw bytes: what resume sees is exactly what a
    // file or socket would deliver.
    let blob = SessionState::from_bytes(blob.into_bytes());
    let mut resumed = engine.resume(spec, &blob).expect("honest blobs resume");
    prop_assert_eq!(resumed.len(), base.len());
    prop_assert_eq!(resumed.would_accept(), base.would_accept());
    prop_assert_eq!(resumed.is_viable(), base.is_viable());
    for sym in w.iter().skip(cut) {
        base.push(sym);
        resumed.push(sym);
        prop_assert_eq!(resumed.would_accept(), base.would_accept());
        prop_assert_eq!(resumed.is_viable(), base.is_viable());
    }
    let a = base.finish().expect("uninterrupted finish");
    let b = resumed.finish().expect("resumed finish");
    prop_assert_eq!(a.is_accept(), b.is_accept(), "verdicts diverge");
    match (a.accepted(), b.accepted()) {
        (Some(ta), Some(tb)) => {
            prop_assert_eq!(ta, tb, "certified trees diverge");
            let pipeline = engine.get_or_compile(spec).expect("cached");
            validate(tb, pipeline.grammar(), w).expect("resumed tree re-validates");
        }
        (None, None) => {}
        _ => prop_assert!(false, "one side accepted, the other rejected"),
    }
    Ok(())
}

/// As [`assert_symbol_session_equivalence`], for raw-text (lexed)
/// streams: the cut is a char index, and the token lists and raw inputs
/// must match too.
fn assert_char_session_equivalence(
    engine: &Engine,
    spec: &PipelineSpec,
    input: &str,
    cut_chars: usize,
) -> Result<(), TestCaseError> {
    let mut base = engine.stream(spec).expect("spec streams");
    let mut parked = engine.stream(spec).expect("spec streams");
    for c in input.chars().take(cut_chars) {
        base.push_char(c);
        parked.push_char(c);
    }
    let blob = parked.snapshot().expect("unfaulted streams park");
    let blob = SessionState::from_bytes(blob.into_bytes());
    let mut resumed = engine.resume(spec, &blob).expect("honest blobs resume");
    prop_assert_eq!(resumed.raw_input(), base.raw_input());
    prop_assert_eq!(resumed.tokens(), base.tokens());
    prop_assert_eq!(resumed.would_accept(), base.would_accept());
    for c in input.chars().skip(cut_chars) {
        let vb = base.push_char(c);
        let vr = resumed.push_char(c);
        prop_assert_eq!(vr, vb, "viability bits diverge at {:?}", c);
        prop_assert_eq!(resumed.would_accept(), base.would_accept());
    }
    prop_assert_eq!(resumed.tokens(), base.tokens());
    let a = base.finish().expect("uninterrupted finish");
    let b = resumed.finish().expect("resumed finish");
    prop_assert_eq!(a.is_accept(), b.is_accept(), "verdicts diverge");
    if let (Some(ta), Some(tb)) = (a.accepted(), b.accepted()) {
        prop_assert_eq!(ta, tb, "certified trees diverge");
        let pipeline = engine.get_or_compile(spec).expect("cached");
        validate(tb, pipeline.grammar(), &tb.flatten()).expect("resumed tree re-validates");
    }
    Ok(())
}

/// A random input over `sigma`, length 0..`max_len`.
fn random_input(sigma: &Alphabet, max_len: usize, rng: &mut StdRng) -> GString {
    let len = rng.gen_range(0..max_len);
    (0..len)
        .map(|_| Symbol::from_index(rng.gen_range(0..sigma.len())))
        .collect()
}

/// A small random LALR(1) grammar (rejection-sampled: conflicted draws
/// fall back to the Dyck CFG, which always streams).
fn random_lr_spec(seed: u64) -> PipelineSpec {
    let mut rng = StdRng::seed_from_u64(seed);
    let sigma = Alphabet::abc();
    let num_nt = rng.gen_range(1..4);
    let mut productions = Vec::new();
    for _ in 0..num_nt {
        let alts = rng.gen_range(1..4);
        let mut ps = Vec::new();
        for _ in 0..alts {
            let len = rng.gen_range(0..4);
            let rhs = (0..len)
                .map(|_| {
                    if rng.gen_range(0..3) == 0 {
                        lambekd::cfg::grammar::GSym::N(rng.gen_range(0..num_nt))
                    } else {
                        lambekd::cfg::grammar::GSym::T(Symbol::from_index(
                            rng.gen_range(0..sigma.len()),
                        ))
                    }
                })
                .collect();
            ps.push(lambekd::cfg::grammar::Production { rhs });
        }
        productions.push(ps);
    }
    let cfg = lambekd::cfg::grammar::Cfg::new(
        sigma,
        (0..num_nt).map(|i| format!("N{i}")).collect(),
        productions,
        0,
    );
    let spec = PipelineSpec::cfg(format!("random-{seed}"), cfg);
    let engine = Engine::new();
    if engine.stream(&spec).is_ok() {
        spec
    } else {
        PipelineSpec::dyck_cfg()
    }
}

/// Random raw text biased toward the arithmetic lexer's language, with
/// occasional unlexable bytes so dead-lexer sessions get parked too.
fn random_arith_text(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut text = String::new();
    for _ in 0..rng.gen_range(0..14) {
        match rng.gen_range(0..8) {
            0 => text.push('('),
            1 => text.push(')'),
            2 => text.push('+'),
            3 => text.push(' '),
            4 => text.push('x'), // not in the character alphabet
            _ => text.push(char::from(b'0' + rng.gen_range(0u8..10))),
        }
    }
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// DFA-mode sessions: random regex pipelines, random inputs, every
    /// possible snapshot point.
    #[test]
    fn dfa_sessions_resume_equivalently(seed in 0u64..300) {
        let mut rng = StdRng::seed_from_u64(seed);
        let sigma = Alphabet::abc();
        let re = regex_grammars::gen::random_regex(&sigma, rng.gen_range(1..8), rng.gen());
        let spec = PipelineSpec::regex(sigma.clone(), re.to_string());
        let engine = Engine::new();
        if engine.stream(&spec).is_err() {
            // A degenerate random regex may fail to compile; that is
            // the regex suite's concern, not this one's.
            return Ok(());
        }
        let w = random_input(&sigma, 12, &mut rng);
        for cut in 0..=w.len() {
            assert_symbol_session_equivalence(&engine, &spec, &w, cut)?;
        }
    }

    /// LR-mode sessions: random LALR(1) grammars, random inputs (mostly
    /// rejected — dead LR sessions must park and resume), every
    /// snapshot point.
    #[test]
    fn lr_sessions_resume_equivalently(seed in 0u64..300) {
        let spec = random_lr_spec(seed);
        let engine = Engine::new();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xda7a);
        // Draw inputs from the spec's own alphabet (pushing foreign
        // symbols is outside the stream contract).
        let sigma = engine
            .get_or_compile(&spec)
            .expect("compiles")
            .alphabet()
            .clone();
        let w = random_input(&sigma, 10, &mut rng);
        for cut in 0..=w.len() {
            assert_symbol_session_equivalence(&engine, &spec, &w, cut)?;
        }
    }

    /// Lexed-LR sessions over raw arithmetic text (unlexable bytes
    /// included): park/resume at every character boundary.
    #[test]
    fn lexed_sessions_resume_equivalently(seed in 0u64..200) {
        let engine = Engine::new();
        let spec = PipelineSpec::arith_lexed();
        let text = random_arith_text(seed);
        let chars = text.chars().count();
        for cut in 0..=chars {
            assert_char_session_equivalence(&engine, &spec, &text, cut)?;
        }
    }

    /// Lexed-LR sessions on the JSON pipeline, snapshot point drawn at
    /// random (the arith property already sweeps every cut).
    #[test]
    fn json_sessions_resume_equivalently(seed in 0u64..120) {
        let engine = Engine::new();
        let spec = PipelineSpec::json_lexed();
        let docs = [
            "{\"k\": [1, 2, {\"deep\": null}], \"ok\": true}",
            "[true, false, [\"s\", 7]]",
            "{\"a\" 1}",
            "{\"price\": 12.50}",
            "[[[",
        ];
        let mut rng = StdRng::seed_from_u64(seed);
        let doc = docs[rng.gen_range(0..docs.len())];
        let cut = rng.gen_range(0..=doc.chars().count());
        assert_char_session_equivalence(&engine, &spec, doc, cut)?;
    }

    /// A blob parked from one spec is rejected by every structurally
    /// different spec — as `SpecMismatch`, before any state is
    /// interpreted — and resuming into the right spec still works.
    #[test]
    fn wrong_spec_restores_are_rejected(seed in 0u64..60) {
        let engine = Engine::new();
        let specs = [
            PipelineSpec::regex(Alphabet::abc(), "(a|b)*c"),
            PipelineSpec::regex(Alphabet::abc(), "(a|b)*"),
            PipelineSpec::dyck(8),
            PipelineSpec::dyck(9),
            PipelineSpec::dyck_cfg(),
            PipelineSpec::expr_cfg(),
            PipelineSpec::arith_lexed(),
            PipelineSpec::json_lexed(),
        ];
        let inputs = ["", "ab", "(()", "12+3"];
        let mut rng = StdRng::seed_from_u64(seed);
        let from_idx = rng.gen_range(0..specs.len());
        let from = &specs[from_idx];
        let mut stream = engine.stream(from).expect("all the specs above stream");
        let pipeline = engine.get_or_compile(from).expect("cached");
        let input = inputs[rng.gen_range(0..inputs.len())];
        if pipeline.lexed_backend().is_some() {
            stream.push_chars(input);
        } else {
            for c in input.chars() {
                if let Some(sym) = pipeline.alphabet().symbol_of_char(c) {
                    stream.push(sym);
                }
            }
        }
        let blob = stream.snapshot().expect("parks");
        for (i, other) in specs.iter().enumerate() {
            let outcome = engine.resume(other, &blob);
            if i == from_idx {
                prop_assert!(outcome.is_ok(), "same spec must resume");
            } else {
                prop_assert!(
                    matches!(outcome, Err(SessionError::SpecMismatch { .. })),
                    "{} resumed a blob parked from {}",
                    other.label(),
                    from.label()
                );
            }
        }
    }

    /// Damaged blobs: every single-bit flip of a parked lexed session is
    /// a structured error — never a panic, never a resumed stream.
    #[test]
    fn bit_flipped_blobs_are_rejected(seed in 0u64..40) {
        let engine = Engine::new();
        let spec = PipelineSpec::arith_lexed();
        let mut stream = engine.stream(&spec).expect("streams");
        stream.push_chars(&random_arith_text(seed));
        let blob = stream.snapshot().expect("parks");
        let bytes = blob.as_bytes().to_vec();
        let mut rng = StdRng::seed_from_u64(seed ^ 0xb17);
        for _ in 0..64 {
            let bit = rng.gen_range(0..bytes.len() * 8);
            let mut bad = bytes.clone();
            bad[bit / 8] ^= 1 << (bit % 8);
            if bad == bytes {
                continue;
            }
            let outcome = engine.resume(&spec, &SessionState::from_bytes(bad));
            prop_assert!(
                matches!(outcome, Err(SessionError::Corrupt(_))),
                "flipping bit {} was not caught by the checksum",
                bit
            );
        }
    }
}

/// Forged blobs with a *valid* checksum (re-sealed after tampering)
/// still cannot smuggle inconsistent state past re-validation. This is
/// the semantic half of the trust boundary, beyond what the checksum
/// covers; deterministic, so outside the proptest block.
#[test]
fn resealed_tampered_payloads_fail_revalidation_not_certification() {
    let engine = Engine::new();
    let spec = PipelineSpec::arith_lexed();
    let mut stream = engine.stream(&spec).unwrap();
    stream.push_chars("12+(3");
    let blob = stream.snapshot().unwrap();
    let bytes = blob.as_bytes();
    let payload_start = 4 + 2 + 8 + 1; // magic, version, fingerprint, mode
    let payload_end = bytes.len() - 8; // checksum
    let mut rejected = 0usize;
    for i in payload_start..payload_end {
        for delta in [1u8, 0x80] {
            let mut forged = bytes[..payload_end].to_vec();
            forged[i] = forged[i].wrapping_add(delta);
            // Re-seal: recompute a valid checksum over the tampered
            // body, exactly as a malicious writer would.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for &b in &forged {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            forged.extend_from_slice(&h.to_le_bytes());
            match engine.resume(&spec, &SessionState::from_bytes(forged)) {
                // The forgery changed something load-bearing and was
                // caught by decoding or re-validation.
                Err(_) => rejected += 1,
                // Or it resumed — then it must behave exactly like an
                // honest stream: certified finish, yield-correct tree.
                Ok(mut resumed) => {
                    resumed.push_chars(")");
                    if let Ok(outcome) = resumed.finish() {
                        if let Some(tree) = outcome.accepted() {
                            let pipeline = engine.get_or_compile(&spec).unwrap();
                            validate(tree, pipeline.grammar(), &tree.flatten())
                                .expect("a resumed session may never mis-certify");
                        }
                    }
                }
            }
        }
    }
    assert!(
        rejected > 0,
        "at least some payload tampering must be caught by re-validation"
    );
}
