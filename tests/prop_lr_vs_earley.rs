//! Property suite for the certified LR subsystem against the Earley
//! baseline: on randomly generated LR-compatible grammars (and on the
//! workspace's deterministic standards), LR accept/reject agrees with
//! `earley_recognize`, every LR tree passes the core derivation checker,
//! and the two layers agree on what "deterministic" means — a grammar
//! whose tables build conflict-free never gets an ambiguity report from
//! Earley.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lambek_automata::gen::{random_arith, random_dyck};
use lambek_automata::lookahead::ArithTokens;
use lambek_cfg::dyck::{dyck_cfg, Parens};
use lambek_cfg::earley::{earley_parse, earley_recognize, EarleyParse};
use lambek_cfg::expr::exp_cfg;
use lambek_cfg::grammar::{Cfg, GSym, Production};
use lambek_core::alphabet::{Alphabet, GString, Symbol};
use lambek_core::grammar::parse_tree::validate;
use lambek_core::theory::unambiguous::all_strings;
use lambek_lr::CertifiedLrParser;

/// A small random CFG over {a, b, c}: 1–3 nonterminals, 1–3 alternatives
/// each, RHS length 0–3 with a terminal bias. Some are LALR(1), some are
/// not — the property handles both sides.
fn random_cfg(seed: u64) -> Cfg {
    let mut rng = StdRng::seed_from_u64(seed);
    let sigma = Alphabet::abc();
    let num_nt = rng.gen_range(1..4);
    let mut productions = Vec::new();
    for _ in 0..num_nt {
        let alts = rng.gen_range(1..4);
        let mut ps = Vec::new();
        for _ in 0..alts {
            let len = rng.gen_range(0..4);
            let rhs = (0..len)
                .map(|_| {
                    if rng.gen_range(0..3) == 0 {
                        GSym::N(rng.gen_range(0..num_nt))
                    } else {
                        GSym::T(Symbol::from_index(rng.gen_range(0..sigma.len())))
                    }
                })
                .collect();
            ps.push(Production { rhs });
        }
        productions.push(ps);
    }
    Cfg::new(
        sigma,
        (0..num_nt).map(|i| format!("N{i}")).collect(),
        productions,
        0,
    )
}

/// Mutates a string by flipping one random position to a random symbol.
fn mutate(w: &GString, alphabet_len: usize, seed: u64) -> GString {
    if w.is_empty() {
        return w.clone();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let pos = rng.gen_range(0..w.len());
    let mut out: Vec<_> = w.iter().collect();
    out[pos] = Symbol::from_index(rng.gen_range(0..alphabet_len));
    GString::from_symbols(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// The core agreement property: whatever a random grammar compiles
    /// to, the LR subsystem and the Earley baseline answer exhaustively
    /// alike on short strings; conflict-free tables imply Earley finds
    /// every derivation unique, and the unique trees coincide.
    #[test]
    fn lr_agrees_with_earley_on_random_grammars(seed in 0u64..400) {
        let cfg = random_cfg(seed);
        let sigma = cfg.alphabet().clone();
        match CertifiedLrParser::compile(&cfg) {
            Ok(parser) => {
                let g = cfg.to_lambek();
                for w in all_strings(&sigma, 4) {
                    let expected = earley_recognize(&cfg, &w);
                    prop_assert_eq!(parser.recognizes(&w), expected, "{} on {}", seed, &w);
                    let outcome = parser.parse(&w).expect("certification never fails");
                    prop_assert_eq!(outcome.is_accept(), expected);
                    if let Some(tree) = outcome.accepted() {
                        // Intrinsic: the tree validates against the
                        // μ-regular grammar and the actual input.
                        validate(tree, &g, &w).expect("certified tree");
                        // Determinism agreement: a conflict-free grammar
                        // is unambiguous, so Earley must report Unique —
                        // and uniqueness forces the same tree.
                        match earley_parse(&cfg, &w) {
                            EarleyParse::Unique(et) => prop_assert_eq!(&et, tree, "{}", &w),
                            other => prop_assert!(
                                false,
                                "LR-deterministic grammar, Earley said {:?} on {}",
                                other,
                                &w
                            ),
                        }
                    }
                }
            }
            Err(report) => {
                // The rejection is structured: at least one conflict,
                // each pointing at a state's item set.
                prop_assert!(!report.conflicts.is_empty());
                prop_assert!(report.conflicts.iter().all(|c| !c.items.is_empty()));
            }
        }
    }

    /// Dyck at scale: random balanced words (and mutations) through the
    /// certified LR parser vs Earley, with tree validation.
    #[test]
    fn lr_dyck_vs_earley_on_random_inputs(pairs in 1usize..40, seed in 0u64..200) {
        let p = Parens::new();
        let cfg = dyck_cfg(&p);
        let parser = CertifiedLrParser::compile(&cfg).expect("Dyck is LALR(1)");
        let g = cfg.to_lambek();
        let balanced = random_dyck(pairs, seed);
        for w in [balanced.clone(), mutate(&balanced, 2, seed ^ 0xD1CE)] {
            let expected = earley_recognize(&cfg, &w);
            prop_assert_eq!(parser.recognizes(&w), expected, "{}", &w);
            let outcome = parser.parse(&w).expect("certification never fails");
            prop_assert_eq!(outcome.is_accept(), expected);
            if let Some(tree) = outcome.accepted() {
                validate(tree, &g, &w).expect("certified tree");
            }
        }
    }

    /// Expressions at scale: random arithmetic (and mutations) through
    /// the certified LR parser vs Earley, with tree validation.
    #[test]
    fn lr_expr_vs_earley_on_random_inputs(
        atoms in 1usize..8,
        depth in 0usize..3,
        seed in 0u64..200,
    ) {
        let t = ArithTokens::new();
        let cfg = exp_cfg(&t);
        let parser = CertifiedLrParser::compile(&cfg).expect("Fig. 15 is LALR(1)");
        let g = cfg.to_lambek();
        let expr = random_arith(atoms, depth, seed);
        for w in [expr.clone(), mutate(&expr, 4, seed ^ 0xFACE)] {
            let expected = earley_recognize(&cfg, &w);
            prop_assert_eq!(parser.recognizes(&w), expected, "{}", &w);
            let outcome = parser.parse(&w).expect("certification never fails");
            prop_assert_eq!(outcome.is_accept(), expected);
            if let Some(tree) = outcome.accepted() {
                validate(tree, &g, &w).expect("certified tree");
            }
        }
    }

    /// The push-mode stream is pointwise faithful: after each symbol,
    /// `would_accept` equals the one-shot recognizer on the prefix, and
    /// the finished stream certifies the same tree as the one-shot parse.
    #[test]
    fn lr_stream_is_pointwise_faithful(pairs in 1usize..24, seed in 0u64..100) {
        let p = Parens::new();
        let cfg = dyck_cfg(&p);
        let parser = CertifiedLrParser::compile(&cfg).expect("Dyck is LALR(1)");
        let w = random_dyck(pairs, seed);
        let mut stream = parser.stream();
        for (i, sym) in w.iter().enumerate() {
            stream.push(sym);
            let prefix = w.substring(0, i + 1);
            prop_assert_eq!(stream.would_accept(), parser.recognizes(&prefix), "prefix {}", i);
        }
        let streamed = stream.finish().expect("certification never fails");
        let oneshot = parser.parse(&w).expect("certification never fails");
        prop_assert_eq!(streamed.accepted(), oneshot.accepted());
    }
}
