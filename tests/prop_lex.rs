//! Property suite for the certified lexing subsystem.
//!
//! Four families of properties:
//!
//! 1. on random token specs and random rule-shaped inputs, whenever the
//!    maximal-munch driver accepts, the lexeme spans concatenate back to
//!    exactly the input (the lexer-level intrinsic contract);
//! 2. the driver agrees — acceptance *and* token boundaries *and* rule
//!    choice — with a naive reference lexer that re-derives the longest
//!    match at every position straight from the regexes by Brzozowski
//!    derivatives;
//! 3. certified lexing composed with the LR backend agrees with Earley
//!    run on the same token string (the two-layer composition changes
//!    nothing about the language);
//! 4. skip rules never change the token-level yield: inserting skipped
//!    whitespace at token boundaries leaves the parser-visible string
//!    untouched.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lambek_cfg::earley::earley_recognize;
use lambek_core::alphabet::{Alphabet, GString};
use lambek_lex::demo::{arith_spec, arith_token_cfg};
use lambek_lex::spec::LexSpecBuilder;
use lambek_lex::{CertifiedLexer, LexAutomaton, LexedOutcome, Token};
use lambek_lr::CertifiedLrParser;
use regex_grammars::ast::Regex;
use regex_grammars::derivative::{derivative, matches};

/// A random non-nullable regex over `alphabet`: like
/// `regex_grammars::gen::random_regex` but guaranteed to never accept ε
/// (lex rules must not), by guarding nullable outcomes with a character.
fn random_rule_regex(alphabet: &Alphabet, size: usize, rng: &mut StdRng) -> Regex {
    let re = regex_grammars::gen::random_regex(alphabet, size, rng.gen());
    if re.nullable() {
        let c = lambek_core::alphabet::Symbol::from_index(rng.gen_range(0..alphabet.len()));
        Regex::concat(Regex::Char(c), re)
    } else {
        re
    }
}

/// A random spec: 2–4 prioritized rules over {a, b} (a tiny alphabet
/// maximizes overlap between rules, which is where priorities and
/// backtracking actually get exercised).
fn random_spec(seed: u64) -> (LexAutomaton, Vec<Regex>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let sigma = Alphabet::from_chars("ab");
    let num_rules = rng.gen_range(2..5);
    let mut builder = LexSpecBuilder::new(sigma.clone());
    let mut regexes = Vec::new();
    for i in 0..num_rules {
        let re = random_rule_regex(&sigma, rng.gen_range(1..6), &mut rng);
        regexes.push(re.clone());
        builder = builder.token_re(&format!("T{i}"), re).unwrap();
    }
    (LexAutomaton::compile(builder.build().unwrap()), regexes)
}

/// A random string some prefix-concatenation of rule languages accepts:
/// `k` samples drawn from random rules' regexes, concatenated. (The
/// lexer may still reject it — maximal munch can overshoot a boundary —
/// which is exactly what property 2 checks against the reference.)
fn random_rule_shaped_input(regexes: &[Regex], k: usize, rng: &mut StdRng) -> GString {
    let mut w = GString::new();
    for _ in 0..k {
        let re = &regexes[rng.gen_range(0..regexes.len())];
        if let Some(piece) = sample(re, rng, 0) {
            w.extend(piece.iter());
        }
    }
    w
}

/// Samples one string from a regex's language (`None` for ∅), bounding
/// star unrolling.
fn sample(re: &Regex, rng: &mut StdRng, depth: usize) -> Option<GString> {
    match re {
        Regex::Empty => None,
        Regex::Eps => Some(GString::new()),
        Regex::Char(c) => Some(GString::singleton(*c)),
        Regex::Concat(l, r) => {
            let mut w = sample(l, rng, depth)?;
            w.extend(sample(r, rng, depth)?.iter());
            Some(w)
        }
        Regex::Alt(l, r) => {
            let (first, second) = if rng.gen_bool(0.5) { (l, r) } else { (r, l) };
            sample(first, rng, depth).or_else(|| sample(second, rng, depth))
        }
        Regex::Star(inner) => {
            let mut w = GString::new();
            if depth < 3 {
                for _ in 0..rng.gen_range(0..3) {
                    if let Some(piece) = sample(inner, rng, depth + 1) {
                        w.extend(piece.iter());
                    }
                }
            }
            Some(w)
        }
    }
}

/// The reference lexer: at each position, compute the longest prefix any
/// rule matches by stepping all regexes' derivatives in lockstep;
/// priority (smallest rule index) breaks length ties. No DFA, no tags,
/// no backtracking — a direct transcription of the maximal-munch
/// definition.
fn reference_lex(regexes: &[Regex], sigma: &Alphabet, input: &str) -> Option<Vec<(usize, usize)>> {
    let chars: Vec<char> = input.chars().collect();
    let mut out = Vec::new();
    let mut start = 0usize;
    while start < chars.len() {
        let mut current: Vec<Regex> = regexes.to_vec();
        let mut best: Option<(usize, usize)> = None; // (rule, end)
        for (offset, &c) in chars[start..].iter().enumerate() {
            let Some(sym) = sigma.symbol_of_char(c) else {
                break;
            };
            for re in &mut current {
                *re = derivative(re, sym);
            }
            if let Some(rule) = current.iter().position(|re| re.nullable()) {
                best = Some((rule, start + offset + 1));
            }
            if current.iter().all(|re| *re == Regex::Empty) {
                break;
            }
        }
        let (rule, end) = best?;
        out.push((rule, end));
        start = end;
    }
    Some(out)
}

fn render(w: &GString, sigma: &Alphabet) -> String {
    sigma.display(w)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Property 1: accepted inputs round-trip — the lexeme texts
    /// concatenate to exactly the input, and every lexeme re-matches
    /// its rule (the certified lexer asserts both internally; this
    /// re-asserts them from the outside on random specs).
    #[test]
    fn lexeme_concatenation_roundtrips(seed in 0u64..300) {
        let (auto, _) = random_spec(seed);
        let sigma = auto.spec().alphabet().clone();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x9e37_79b9);
        let regexes: Vec<Regex> = auto.spec().rules().iter().map(|r| r.regex.clone()).collect();
        for k in 0..4 {
            let input = render(&random_rule_shaped_input(&regexes, k, &mut rng), &sigma);
            let lexer = CertifiedLexer::from_automaton(auto.clone());
            if let LexedOutcome::Tokens(ts) = lexer.lex(&input).unwrap() {
                let glued: String = ts.tokens().iter().map(|t| t.text.as_str()).collect();
                prop_assert_eq!(&glued, &input);
                for t in ts.tokens() {
                    let w = sigma.parse_str(&t.text).unwrap();
                    prop_assert!(matches(&auto.spec().rules()[t.rule].regex, &w));
                }
            }
        }
    }

    /// Property 2: the tagged-DFA driver and the derivative-based
    /// reference lexer agree exactly — on acceptance, boundaries, and
    /// rule choice — and the push-mode stream agrees with both.
    #[test]
    fn driver_agrees_with_naive_reference(seed in 0u64..300) {
        let (auto, regexes) = random_spec(seed);
        let sigma = auto.spec().alphabet().clone();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x51f1);
        for k in 0..4 {
            let input = render(&random_rule_shaped_input(&regexes, k, &mut rng), &sigma);
            let fast = auto.lex_raw(&input);
            let reference = reference_lex(&regexes, &sigma, &input);
            match (&fast, &reference) {
                (Ok(tokens), Some(expected)) => {
                    let got: Vec<(usize, usize)> =
                        tokens.iter().map(|t| (t.rule, t.span.end)).collect();
                    prop_assert_eq!(&got, expected, "input {:?}", input);
                }
                (Err(_), None) => {}
                (fast, reference) => prop_assert!(
                    false,
                    "driver {fast:?} disagrees with reference {reference:?} on {input:?}"
                ),
            }
            // Stream form: same verdict, same tokens.
            let mut stream = auto.stream();
            let mut streamed: Vec<Token> = Vec::new();
            let mut failed = false;
            for c in input.chars() {
                match stream.push(c) {
                    Ok(ts) => streamed.extend(ts),
                    Err(_) => { failed = true; break; }
                }
            }
            if !failed {
                match stream.finish() {
                    Ok(ts) => streamed.extend(ts),
                    Err(_) => failed = true,
                }
            }
            match &fast {
                Ok(tokens) => {
                    prop_assert!(!failed, "stream died where one-shot lexed: {input:?}");
                    prop_assert_eq!(&streamed, tokens, "stream tokens differ on {:?}", input);
                }
                Err(_) => prop_assert!(failed, "stream lexed where one-shot died: {input:?}"),
            }
        }
    }

    /// Property 3: lex + LR and lex + Earley accept the same raw texts
    /// (and LR's certified trees yield the token string) — the
    /// composition preserves the token-level language.
    #[test]
    fn lexed_lr_agrees_with_earley_on_token_strings(seed in 0u64..200) {
        let cfg = arith_token_cfg();
        let lr = CertifiedLrParser::compile(&cfg).unwrap();
        let lexer = CertifiedLexer::compile(arith_spec());
        let mut rng = StdRng::seed_from_u64(seed);
        // Random arithmetic-ish text: tokens with random multi-digit
        // numerals, occasionally corrupted to exercise rejection.
        let mut text = String::new();
        for _ in 0..rng.gen_range(1..12) {
            match rng.gen_range(0..6) {
                0 => text.push('('),
                1 => text.push(')'),
                2 => text.push('+'),
                3 => text.push(' '),
                _ => {
                    for _ in 0..rng.gen_range(1..4) {
                        text.push(char::from(b'0' + rng.gen_range(0u8..10)));
                    }
                }
            }
        }
        if let LexedOutcome::Tokens(ts) = lexer.lex(&text).unwrap() {
            let w = ts.yield_string();
            let lr_out = lr.parse(w).unwrap();
            prop_assert_eq!(
                lr_out.is_accept(),
                earley_recognize(&cfg, w),
                "token string of {:?}",
                text
            );
            if let Some(tree) = lr_out.accepted() {
                prop_assert_eq!(&tree.flatten(), w);
            }
        }
    }

    /// Property 4: skip rules never change the token-level yield —
    /// spraying skippable whitespace between the tokens of a lexable
    /// input leaves `yield_string` identical.
    #[test]
    fn skip_rules_never_change_the_yield(seed in 0u64..200) {
        let lexer = CertifiedLexer::compile(arith_spec());
        let mut rng = StdRng::seed_from_u64(seed);
        let mut tokens_text: Vec<String> = Vec::new();
        for _ in 0..rng.gen_range(0..10) {
            tokens_text.push(match rng.gen_range(0..4) {
                0 => "(".to_owned(),
                1 => ")".to_owned(),
                2 => "+".to_owned(),
                _ => format!("{}", rng.gen_range(0..1000)),
            });
        }
        // NUM NUM with nothing between would re-lex as one numeral, so
        // the base text always separates tokens with one space; the
        // spaced variant adds more.
        let base = tokens_text.join(" ");
        let mut spaced = String::new();
        for t in &tokens_text {
            for _ in 0..rng.gen_range(1..4) {
                spaced.push(' ');
            }
            spaced.push_str(t);
        }
        let a = lexer.lex(&base).unwrap();
        let b = lexer.lex(&spaced).unwrap();
        prop_assert!(
            a.is_accept() && b.is_accept(),
            "space-joined tokens must lex: {base:?} / {spaced:?}"
        );
        let (Some(a), Some(b)) = (a.tokens(), b.tokens()) else {
            unreachable!("asserted accepted above")
        };
        prop_assert_eq!(a.yield_string(), b.yield_string(), "{:?} vs {:?}", base, spaced);
    }
}
