//! Property tests for the paper's grammar-specific axioms (§3.2, §3.4):
//! they hold in the denotational model (Theorems B.5–B.7), so they must
//! hold executably here.

use proptest::prelude::*;

use lambek_core::alphabet::{Alphabet, GString, Symbol};
use lambek_core::grammar::compile::CompiledGrammar;
use lambek_core::grammar::distributivity::{
    distributivity_iso, sigma_disjoint_witness, start_char_decomposition, start_char_iso,
};
use lambek_core::grammar::expr::{alt, chr, eps, star, tensor, Grammar};
use lambek_core::grammar::parse_tree::ParseTree;
use lambek_core::grammar::string_type::{string_grammar, string_parse};
use lambek_core::theory::equivalence::{check_retract_on, StrongEquiv, WeakEquiv};
use lambek_core::theory::unambiguous::all_strings;

fn arb_string(max_len: usize) -> impl Strategy<Value = GString> {
    proptest::collection::vec(0usize..3, 0..=max_len)
        .prop_map(|v| v.into_iter().map(Symbol::from_index).collect())
}

/// A small pool of concrete grammars for the axiom tests.
fn grammar_pool() -> Vec<Grammar> {
    let s = Alphabet::abc();
    let (a, b, c) = (
        s.symbol("a").unwrap(),
        s.symbol("b").unwrap(),
        s.symbol("c").unwrap(),
    );
    vec![
        chr(a),
        chr(b),
        eps(),
        tensor(chr(a), chr(b)),
        alt(chr(a), chr(c)),
        star(chr(a)),
        tensor(star(chr(a)), chr(b)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Axiom 3.1 (distributivity): the mixed-radix iso between
    /// `&ᵢ ⊕ⱼ A` and `⊕_f &ᵢ A` round-trips on every parse.
    #[test]
    fn axiom_3_1_distributivity(
        i1 in 0usize..7, i2 in 0usize..7, i3 in 0usize..7, i4 in 0usize..7,
    ) {
        let pool = grammar_pool();
        let fam1 = vec![pool[i1].clone(), pool[i2].clone()];
        let fam2 = vec![pool[i3].clone(), pool[i4].clone()];
        let iso = distributivity_iso(vec![fam1, fam2]);
        let eq = StrongEquiv::new(WeakEquiv::new(iso.fwd, iso.bwd));
        let strings = all_strings(&Alphabet::abc(), 2);
        eq.check_on(&strings, 32).expect("distributivity round-trips");
        eq.check_counts_on(&strings, 32).expect("counts agree");
    }

    /// The §3.2 consequence used by the lookahead parser: `A` is a
    /// retract of `(A & I) ⊕ ⊕_c (A & ('c' ⊗ ⊤))`, and both recognize
    /// the same language.
    #[test]
    fn start_char_decomposition_equivalence(gi in 0usize..7, w in arb_string(4)) {
        let s = Alphabet::abc();
        let g = grammar_pool()[gi].clone();
        let iso = start_char_iso(&g, &s);
        let eq = WeakEquiv::new(iso.fwd, iso.bwd);
        check_retract_on(&eq, std::slice::from_ref(&w), 16).expect("retract law");
        let d = start_char_decomposition(&g, &s);
        prop_assert_eq!(
            CompiledGrammar::new(&g).recognizes(&w),
            CompiledGrammar::new(&d).recognizes(&w)
        );
    }

    /// Axiom 3.4 / Theorem B.7: `String` has exactly one parse of every
    /// string — it is strongly equivalent to `⊤`, and the canonical parse
    /// is that parse.
    #[test]
    fn axiom_3_4_string_is_top(w in arb_string(6)) {
        let s = Alphabet::abc();
        let cg = CompiledGrammar::new(&string_grammar(&s));
        let forest = cg.parses(&w, 4);
        prop_assert_eq!(forest.trees.len(), 1);
        prop_assert!(!forest.truncated);
        prop_assert_eq!(&forest.trees[0], &string_parse(&w));
    }

    /// Axiom 3.3 (σ-disjointness): distinct injections never produce the
    /// same parse, and the refutation function always fires.
    #[test]
    fn axiom_3_3_sigma_disjoint(gi in 0usize..7, w in arb_string(3)) {
        let g = grammar_pool()[gi].clone();
        let sum = alt(g.clone(), g);
        let cg = CompiledGrammar::new(&sum);
        let forest = cg.parses(&w, 32);
        for t in &forest.trees {
            if let ParseTree::Inj { index, tree } = t {
                // The same payload under the other tag is a *different*
                // parse: σ is injective and disjoint across tags.
                let other = ParseTree::inj(1 - index, (**tree).clone());
                prop_assert!(&other != t);
                prop_assert!(sigma_disjoint_witness(*index, 1 - index, t).is_err());
            }
        }
    }
}

/// Lemma 4.3/4.4/4.7 on concrete grammars (the unambiguity toolkit).
#[test]
fn unambiguity_lemmas_concrete() {
    use lambek_core::theory::unambiguous::{
        check_disjoint, check_unambiguous, summands_disjoint, summands_unambiguous,
    };
    let s = Alphabet::abc();
    let (a, b) = (s.symbol("a").unwrap(), s.symbol("b").unwrap());
    // Lemma 4.3 instance: String is a retract of ⊤, hence unambiguous.
    check_unambiguous(&string_grammar(&s), &s, 4).unwrap();
    // Lemma 4.4: the summands of the unambiguous 'a' ⊕ 'b'.
    check_unambiguous(&alt(chr(a), chr(b)), &s, 3).unwrap();
    summands_unambiguous(&[chr(a), chr(b)], &s, 3).unwrap();
    // Lemma 4.7: unambiguous sums have disjoint summands.
    summands_disjoint(&[chr(a), chr(b)], &s, 3).unwrap();
    check_disjoint(&star(chr(a)), &tensor(chr(b), star(chr(b))), &s, 4).unwrap();
}
