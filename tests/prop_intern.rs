//! Property tests for the hash-consed core (`lambek_core::intern`):
//! interning is sound — structurally equal syntax gets identical ids,
//! distinct structures get distinct ids, round-tripping through the
//! arena is the identity, and the memoized substitution agrees with the
//! structural-recursion specification.

use proptest::prelude::*;

use lambek_core::alphabet::{Alphabet, Symbol};
use lambek_core::intern;
use lambek_core::syntax::nonlinear::{NlTerm, NlType};
use lambek_core::syntax::terms::LinTerm;
use lambek_core::syntax::types::{
    lin_type_equal, subst_lin_type, subst_lin_type_uncached, LinType,
};
use std::sync::Arc;

/// A tiny splitmix-style generator so type shapes are reproducible from
/// one `u64` seed (the same idiom as `regex_grammars::gen`).
struct Mix(u64);

impl Mix {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn sym(i: u64) -> Symbol {
    let s = Alphabet::abc();
    s.symbol(["a", "b", "c"][(i % 3) as usize]).unwrap()
}

fn rand_nl_term(rng: &mut Mix, depth: usize) -> NlTerm {
    if depth == 0 {
        return match rng.below(4) {
            0 => NlTerm::var("n"),
            1 => NlTerm::NatLit(rng.below(5)),
            2 => NlTerm::BoolLit(rng.below(2) == 0),
            _ => NlTerm::UnitVal,
        };
    }
    match rng.below(4) {
        0 => NlTerm::succ(rand_nl_term(rng, depth - 1)),
        1 => NlTerm::Pair(
            Arc::new(rand_nl_term(rng, depth - 1)),
            Arc::new(rand_nl_term(rng, depth - 1)),
        ),
        2 => NlTerm::Fst(Arc::new(rand_nl_term(rng, depth - 1))),
        _ => rand_nl_term(rng, depth - 1),
    }
}

/// A random linear type of bounded depth, exercising every constructor
/// the interner mirrors.
fn rand_lin_type(rng: &mut Mix, depth: usize) -> LinType {
    if depth == 0 {
        return match rng.below(5) {
            0 => LinType::Char(sym(rng.next())),
            1 => LinType::Unit,
            2 => LinType::Zero,
            3 => LinType::Top,
            _ => LinType::Data {
                name: "D".to_owned(),
                args: vec![rand_nl_term(rng, 1)],
            },
        };
    }
    match rng.below(8) {
        0 => LinType::Tensor(
            Arc::new(rand_lin_type(rng, depth - 1)),
            Arc::new(rand_lin_type(rng, depth - 1)),
        ),
        1 => LinType::LFun(
            Arc::new(rand_lin_type(rng, depth - 1)),
            Arc::new(rand_lin_type(rng, depth - 1)),
        ),
        2 => LinType::RFun(
            Arc::new(rand_lin_type(rng, depth - 1)),
            Arc::new(rand_lin_type(rng, depth - 1)),
        ),
        3 => LinType::Plus(
            (0..1 + rng.below(3))
                .map(|_| rand_lin_type(rng, depth - 1))
                .collect(),
        ),
        4 => LinType::With(
            (0..1 + rng.below(3))
                .map(|_| rand_lin_type(rng, depth - 1))
                .collect(),
        ),
        5 => LinType::BigPlus {
            var: ["x", "y", "n"][rng.below(3) as usize].to_owned(),
            index: Arc::new(NlType::Nat),
            body: Arc::new(rand_lin_type(rng, depth - 1)),
        },
        6 => LinType::Equalizer {
            base: Arc::new(rand_lin_type(rng, depth - 1)),
            lhs: "f".to_owned(),
            rhs: "g".to_owned(),
        },
        _ => rand_lin_type(rng, depth - 1),
    }
}

fn rand_lin_term(rng: &mut Mix, depth: usize) -> LinTerm {
    if depth == 0 {
        return match rng.below(3) {
            0 => LinTerm::var(["x", "y", "z"][rng.below(3) as usize]),
            1 => LinTerm::UnitIntro,
            _ => LinTerm::Global("g".to_owned()),
        };
    }
    match rng.below(6) {
        0 => LinTerm::pair(rand_lin_term(rng, depth - 1), rand_lin_term(rng, depth - 1)),
        1 => LinTerm::lam(
            ["x", "w"][rng.below(2) as usize],
            rand_lin_type(rng, 1),
            rand_lin_term(rng, depth - 1),
        ),
        2 => LinTerm::app(rand_lin_term(rng, depth - 1), rand_lin_term(rng, depth - 1)),
        3 => LinTerm::inj(rng.below(2) as usize, 2, rand_lin_term(rng, depth - 1)),
        4 => LinTerm::Tuple(
            (0..1 + rng.below(3))
                .map(|_| rand_lin_term(rng, depth - 1))
                .collect(),
        ),
        _ => rand_lin_term(rng, depth - 1),
    }
}

/// A structurally identical rebuild with entirely fresh allocations (no
/// shared provenance with the input), so id equality is forced to go
/// through structural dedup rather than address hits.
fn rebuild(t: &LinType) -> LinType {
    match t {
        LinType::Char(_) | LinType::Unit | LinType::Zero | LinType::Top => t.clone(),
        LinType::Tensor(a, b) => LinType::Tensor(Arc::new(rebuild(a)), Arc::new(rebuild(b))),
        LinType::LFun(a, b) => LinType::LFun(Arc::new(rebuild(a)), Arc::new(rebuild(b))),
        LinType::RFun(a, b) => LinType::RFun(Arc::new(rebuild(a)), Arc::new(rebuild(b))),
        LinType::Plus(ts) => LinType::Plus(ts.iter().map(rebuild).collect()),
        LinType::With(ts) => LinType::With(ts.iter().map(rebuild).collect()),
        LinType::BigPlus { var, index, body } => LinType::BigPlus {
            var: var.clone(),
            index: Arc::new((**index).clone()),
            body: Arc::new(rebuild(body)),
        },
        LinType::BigWith { var, index, body } => LinType::BigWith {
            var: var.clone(),
            index: Arc::new((**index).clone()),
            body: Arc::new(rebuild(body)),
        },
        LinType::Data { name, args } => LinType::Data {
            name: name.clone(),
            args: args.clone(),
        },
        LinType::Equalizer { base, lhs, rhs } => LinType::Equalizer {
            base: Arc::new(rebuild(base)),
            lhs: lhs.clone(),
            rhs: rhs.clone(),
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Structurally equal types intern to the same id, even when built
    /// from disjoint allocations.
    #[test]
    fn equal_types_same_id(seed in 0u64..10_000) {
        let t = rand_lin_type(&mut Mix(seed), 4);
        let copy = rebuild(&t);
        prop_assert_eq!(intern::type_id(&t), intern::type_id(&copy));
        // And both canonicalize to the very same allocation.
        prop_assert!(Arc::ptr_eq(&intern::canon_type(&t), &intern::canon_type(&copy)));
    }

    /// Distinct structures get distinct ids (ids are injective on
    /// structure).
    #[test]
    fn distinct_types_distinct_ids(seed in 0u64..5_000) {
        let a = rand_lin_type(&mut Mix(seed), 4);
        let b = rand_lin_type(&mut Mix(seed.wrapping_add(77_777)), 4);
        if a != b {
            prop_assert_ne!(intern::type_id(&a), intern::type_id(&b));
        } else {
            prop_assert_eq!(intern::type_id(&a), intern::type_id(&b));
        }
        // Wrapping any type changes its id.
        let wrapped = LinType::Tensor(Arc::new(a.clone()), Arc::new(LinType::Unit));
        prop_assert_ne!(intern::type_id(&a), intern::type_id(&wrapped));
    }

    /// `LinType → TypeId → LinType` is the identity — structurally, and
    /// therefore also up to the checker's α/normalization equality.
    #[test]
    fn type_round_trip_is_identity(seed in 0u64..10_000) {
        let t = rand_lin_type(&mut Mix(seed), 4);
        let back: LinType = intern::type_id(&t).into();
        prop_assert_eq!(&back, &t);
        prop_assert!(lin_type_equal(&back, &t));
    }

    /// Terms round-trip through the arena the same way.
    #[test]
    fn term_round_trip_is_identity(seed in 0u64..10_000) {
        let t = rand_lin_term(&mut Mix(seed), 4);
        let id = intern::term_id(&t);
        let back: LinTerm = id.into();
        prop_assert_eq!(&back, &t);
        prop_assert_eq!(intern::term_id(&back), id);
    }

    /// The memoized, id-keyed substitution agrees with the structural
    /// recursion it replaced.
    #[test]
    fn cached_substitution_matches_uncached(seed in 0u64..10_000, k in 0u64..5) {
        let t = rand_lin_type(&mut Mix(seed), 4);
        let repl = NlTerm::NatLit(k);
        let cached = subst_lin_type(&t, "n", &repl);
        let uncached = subst_lin_type_uncached(&t, "n", &repl);
        prop_assert_eq!(&cached, &uncached);
        // Substituting twice hits the cache and stays canonical.
        prop_assert_eq!(&subst_lin_type(&t, "n", &repl), &cached);
    }

    /// Interning never changes what the checker's equality judges: a type
    /// and its canonical form are interchangeable.
    #[test]
    fn canonicalization_preserves_equality(seed in 0u64..10_000) {
        let a = rand_lin_type(&mut Mix(seed), 4);
        let b = rand_lin_type(&mut Mix(seed ^ 0xdead_beef), 4);
        let (ca, cb) = (a.interned(), b.interned());
        prop_assert_eq!(lin_type_equal(&a, &b), lin_type_equal(&ca, &cb));
        prop_assert!(lin_type_equal(&a, &ca));
    }
}
