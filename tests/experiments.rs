//! The per-experiment index of DESIGN.md §5, as one machine-checked test
//! per paper artifact. EXPERIMENTS.md records the measured outcomes.

use lambek_automata::determinize::determinize;
use lambek_automata::minimize::minimize;
use lambek_automata::nfa::{fig5_nfa, NfaTrace};
use lambek_core::alphabet::Alphabet;
use lambek_core::grammar::compile::CompiledGrammar;
use lambek_core::grammar::parse_tree::validate;
use lambek_core::theory::unambiguous::{all_strings, check_unambiguous};
use regex_grammars::ast::parse_regex;
use regex_grammars::pipeline::RegexParser;

/// F1 — Fig. 1: `"ab"` is parsed by `('a' ⊗ 'b') ⊕ 'c'`.
#[test]
fn f1_fig1_parse() {
    let s = Alphabet::abc();
    let (a, b, c) = (
        s.symbol("a").unwrap(),
        s.symbol("b").unwrap(),
        s.symbol("c").unwrap(),
    );
    use lambek_core::grammar::expr::{alt, chr, tensor};
    let g = alt(tensor(chr(a), chr(b)), chr(c));
    let w = s.parse_str("ab").unwrap();
    let forest = CompiledGrammar::new(&g).parses(&w, 8);
    assert_eq!(forest.trees.len(), 1, "exactly Fig. 1's parse");
    assert_eq!(forest.trees[0].flatten(), w);
}

/// F3 — Fig. 3: `"ab"` is parsed by `('a'* ⊗ 'b') ⊕ 'c'` via the star
/// constructors, and the grammar is unambiguous.
#[test]
fn f3_fig3_star_parse() {
    let s = Alphabet::abc();
    let re = parse_regex(&s, "(a*b)|c").unwrap();
    let g = re.to_grammar();
    let w = s.parse_str("ab").unwrap();
    let forest = CompiledGrammar::new(&g).parses(&w, 8);
    assert_eq!(forest.trees.len(), 1);
    check_unambiguous(&g, &s, 4).unwrap();
}

/// F5 — Fig. 5: the example NFA's trace type, with the term `k`'s trace
/// for `"ab"` validating at `Trace 0`.
#[test]
fn f5_fig5_nfa_and_trace() {
    let (nfa, [t11, t12, _, e01]) = fig5_nfa();
    let s = nfa.alphabet().clone();
    let trace = NfaTrace::eps_step(
        e01,
        NfaTrace::step(t11, NfaTrace::step(t12, NfaTrace::Stop)),
    );
    let tg = nfa.trace_grammar();
    let tree = trace.to_parse_tree(&nfa, &tg, 0);
    validate(&tree, &tg.trace(0), &s.parse_str("ab").unwrap()).unwrap();
    // Trace language = regex language (strong equivalence, weak form).
    let re = parse_regex(&s, "(a*b)|c").unwrap();
    let cg_trace = CompiledGrammar::new(&tg.trace(0));
    let cg_re = CompiledGrammar::new(&re.to_grammar());
    for w in all_strings(&s, 4) {
        assert_eq!(cg_trace.recognizes(&w), cg_re.recognizes(&w), "{w}");
    }
}

/// C4.10 — determinization: the Fig. 5 NFA determinizes to the expected
/// subset automaton and the weak equivalence holds (details in
/// `prop_automata.rs`); here we record the measured state counts.
#[test]
fn c410_determinization_shape() {
    let (nfa, _) = fig5_nfa();
    let det = determinize(&nfa);
    assert_eq!(nfa.num_states(), 3);
    assert!(det.dfa.num_states() <= 5, "subsets of a 3-state NFA");
    let min = minimize(&det.dfa);
    assert!(min.num_states() <= det.dfa.num_states());
}

/// C4.10 worst case — the 2^(k+1) blow-up family (bench
/// `c410_determinize` plots the curve; this pins the shape).
#[test]
fn c410_exponential_blowup() {
    for k in 1..6 {
        let nfa = lambek_automata::gen::blowup_nfa(k);
        let det = determinize(&nfa);
        let min = minimize(&det.dfa);
        assert!(
            min.num_states() >= 1 << (k + 1),
            "k={k}: minimized DFA has {} states",
            min.num_states()
        );
    }
}

/// C4.12 — the composed pipeline on the running example, with the
/// intermediate sizes the paper's §2/§4.1 narrative mentions.
#[test]
fn c412_pipeline_end_to_end() {
    let s = Alphabet::abc();
    let re = parse_regex(&s, "(a*b)|c").unwrap();
    let p = RegexParser::compile(&s, re.clone()).unwrap();
    p.verified_parser().audit_disjointness(4).unwrap();
    p.verified_parser().audit_against_recognizer(4).unwrap();
    for w in all_strings(&s, 4) {
        if let Some(tree) = p.parse(&w).unwrap().accepted() {
            validate(tree, &re.to_grammar(), &w).unwrap();
        }
    }
}

/// T4.9 / F12 — the DFA trace parser is unambiguous over the summed
/// trace type (the determinism property Lemma 4.7 needs).
#[test]
fn t49_trace_sum_unambiguous() {
    use lambek_core::grammar::expr::alt;
    let dfa = lambek_automata::dfa::fig5_dfa();
    let tg = dfa.trace_grammar();
    let s = dfa.alphabet().clone();
    let sum = alt(tg.trace(dfa.init(), true), tg.trace(dfa.init(), false));
    check_unambiguous(&sum, &s, 4).unwrap();
}

/// T4.13 / T4.14 / C4.15 — one-line smoke versions of the CFG and Turing
/// experiments (full versions live in the crates' own tests and
/// `prop_cfg.rs`).
#[test]
fn cfg_and_turing_experiments_smoke() {
    // Dyck.
    let parser = lambek_cfg::dyck::dyck_parser(6);
    parser.audit_against_recognizer(6).unwrap();
    // Exp.
    let parser = lambek_cfg::expr::exp_parser(3);
    parser.audit_against_recognizer(3).unwrap();
    // Turing.
    let tm = lambek_turing::machine::anbncn_machine();
    let reified = lambek_turing::reify::reify_machine(&tm, 100_000, 6);
    let cg = CompiledGrammar::new(&reified.grammar);
    let s = tm.input_alphabet().clone();
    for w in all_strings(&s, 6) {
        assert_eq!(cg.recognizes(&w), tm.accepts(&w, 100_000), "{w}");
    }
}

/// §3/Fig 9 — the structural-rule rejections, on the facade API (the
/// deep-syntax versions live in `crates/core/tests/syntax_pipeline.rs`).
#[test]
fn typing_discipline_smoke() {
    use lambek_core::check::{Checker, StructuralRule, TypeError};
    use lambek_core::syntax::nonlinear::NlCtx;
    use lambek_core::syntax::terms::LinTerm;
    use lambek_core::syntax::types::{LinType, Signature};
    let s = Alphabet::abc();
    let chr = |n: &str| LinType::Char(s.symbol(n).unwrap());
    let sig = Signature::new();
    let ck = Checker::new(&sig);
    let ctx = vec![("a".to_owned(), chr("a")), ("b".to_owned(), chr("b"))];
    let ok = LinTerm::pair(LinTerm::var("a"), LinTerm::var("b"));
    ck.infer(&NlCtx::new(), &ctx, &ok).unwrap();
    let bad = LinTerm::pair(LinTerm::var("b"), LinTerm::var("a"));
    assert!(matches!(
        ck.infer(&NlCtx::new(), &ctx, &bad),
        Err(TypeError::Structural {
            rule: StructuralRule::Exchange,
            ..
        })
    ));
}
