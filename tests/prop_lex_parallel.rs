//! Property suite for the lexer hot-path work: speculative parallel
//! chunked lexing, the byte-sliced scanner, the bulk push-mode path,
//! and the fused lex→LR pipeline — every fast path differentially
//! checked against the slow path it replaced.
//!
//! Five families:
//!
//! 1. on random token specs over a tiny (maximally overlapping)
//!    alphabet, chunked lexing agrees with the sequential scan — same
//!    lexemes, same spans, same error — for every chunk count,
//!    including seams landing inside maximal-munch lookahead;
//! 2. the same with a multi-byte alphabet, so chunk seams fall inside
//!    UTF-8 sequences and `chunk_starts` must snap them to char
//!    boundaries without ever changing the outcome;
//! 3. the byte-sliced scanner agrees with the charwise reference loop
//!    (acceptance, boundaries, rule choice);
//! 4. the bulk `push_str` path agrees with per-char pushes — tokens,
//!    errors, and retained stream state — under random slicings;
//! 5. the fused lex→LR `parse_str` agrees with the materializing
//!    `parse_str_tokens`, and `Engine::lex_str_parallel` agrees with
//!    the sequential certified lexer, on random arith-ish raw text.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lambekd::core::alphabet::Alphabet;
use lambekd::engine::{Engine, PipelineSpec, StrOutcome};
use lambekd::lex::spec::LexSpecBuilder;
use lambekd::lex::{chunk_starts, LexAutomaton, RawLexeme, Token};

/// A random prioritized spec over `chars`: 2–4 non-nullable rules, the
/// same recipe as `prop_lex.rs` (tiny alphabets maximize rule overlap,
/// which is where lookahead straddles seams).
fn random_spec(chars: &str, seed: u64) -> LexAutomaton {
    let mut rng = StdRng::seed_from_u64(seed);
    let sigma = Alphabet::from_chars(chars);
    let num_rules = rng.gen_range(2..5);
    let mut builder = LexSpecBuilder::new(sigma.clone());
    for i in 0..num_rules {
        let re = {
            let re = lambekd::regex::gen::random_regex(&sigma, rng.gen_range(1..6), rng.gen());
            if re.nullable() {
                let c = lambekd::core::alphabet::Symbol::from_index(rng.gen_range(0..sigma.len()));
                lambekd::regex::ast::Regex::concat(lambekd::regex::ast::Regex::Char(c), re)
            } else {
                re
            }
        };
        builder = builder.token_re(&format!("T{i}"), re).unwrap();
    }
    LexAutomaton::compile(builder.build().unwrap())
}

/// A random string over the spec's alphabet (not rule-shaped on
/// purpose: rejecting inputs must round-trip through the seams too).
fn random_text(chars: &str, len: usize, rng: &mut StdRng) -> String {
    let pool: Vec<char> = chars.chars().collect();
    (0..len)
        .map(|_| pool[rng.gen_range(0..pool.len())])
        .collect()
}

fn sequential(auto: &LexAutomaton, input: &str) -> Result<Vec<RawLexeme>, lambekd::lex::LexError> {
    auto.raw_lexemes(input).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Family 1: chunked ≡ sequential on random specs, random inputs,
    /// every chunk count up to beyond the input length.
    #[test]
    fn chunked_lexing_agrees_with_sequential(seed in 0u64..300) {
        let auto = random_spec("ab", seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x00c0_ffee);
        for len in [0usize, 1, 3, 7, 17, 40] {
            let input = random_text("ab", len, &mut rng);
            let seq = sequential(&auto, &input);
            for chunks in [1usize, 2, 3, 4, 7, len + 2] {
                prop_assert_eq!(
                    &auto.lex_raw_chunked(&input, chunks),
                    &seq,
                    "{} chunks on {:?}",
                    chunks,
                    input
                );
            }
        }
    }

    /// Family 2: multi-byte seams. The alphabet mixes 1-, 2- and 3-byte
    /// chars, so raw byte splits land mid-scalar; `chunk_starts` must
    /// snap forward and the outcome must not change. Also asserts the
    /// snapping invariants directly.
    #[test]
    fn multibyte_seams_never_change_the_outcome(seed in 0u64..300) {
        let chars = "aß∂";
        let auto = random_spec(chars, seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xf8);
        for len in [0usize, 1, 2, 5, 11, 23] {
            let input = random_text(chars, len, &mut rng);
            for chunks in [1usize, 2, 3, 5, 8, input.len() + 2] {
                let starts = chunk_starts(&input, chunks);
                prop_assert_eq!(starts[0], 0);
                for w in starts.windows(2) {
                    prop_assert!(w[0] < w[1], "strictly increasing: {:?}", starts);
                }
                for &b in &starts {
                    prop_assert!(input.is_char_boundary(b), "{} in {:?}", b, input);
                }
                prop_assert_eq!(
                    &auto.lex_raw_chunked(&input, chunks),
                    &sequential(&auto, &input),
                    "{} chunks on {:?}",
                    chunks,
                    input
                );
            }
        }
    }

    /// Family 3: the byte-sliced scanner is observationally equal to
    /// the charwise reference loop.
    #[test]
    fn byte_sliced_agrees_with_charwise(seed in 0u64..300) {
        let auto = random_spec("ab", seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        for len in [0usize, 1, 4, 9, 33] {
            let input = random_text("ab", len, &mut rng);
            prop_assert_eq!(
                auto.lex_raw(&input),
                auto.lex_raw_charwise(&input),
                "on {:?}",
                input
            );
        }
    }

    /// Family 4: bulk `push_str` ≡ per-char pushes under random
    /// slicings — same tokens, same error, same exported stream state.
    #[test]
    fn bulk_push_str_agrees_with_per_char(seed in 0u64..300) {
        let auto = random_spec("ab", seed);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xb01d);
        let input = random_text("ab", rng.gen_range(0..40), &mut rng);
        // Random slicing of the input into pushes.
        let mut slices: Vec<String> = Vec::new();
        {
            let mut rest = input.as_str();
            while !rest.is_empty() {
                let mut cut = rng.gen_range(1..=rest.len());
                while !rest.is_char_boundary(cut) {
                    cut += 1;
                }
                slices.push(rest[..cut].to_owned());
                rest = &rest[cut..];
            }
        }
        let mut bulk = auto.stream();
        let mut charwise = auto.stream();
        let mut bulk_out: Vec<Token> = Vec::new();
        let mut char_out: Vec<Token> = Vec::new();
        let mut bulk_err = None;
        let mut char_err = None;
        for s in &slices {
            if bulk_err.is_none() {
                if let Err(e) = bulk.push_str_into(s, &mut bulk_out) {
                    bulk_err = Some(e);
                }
            }
            if char_err.is_none() {
                for c in s.chars() {
                    match charwise.push(c) {
                        Ok(t) => char_out.extend(t),
                        Err(e) => {
                            char_err = Some(e);
                            break;
                        }
                    }
                }
            }
        }
        prop_assert_eq!(&bulk_err, &char_err, "errors differ on {:?} / {:?}", input, slices);
        if bulk_err.is_none() {
            prop_assert_eq!(&bulk_out, &char_out, "tokens differ on {:?} / {:?}", input, slices);
            prop_assert_eq!(
                bulk.export_state(),
                charwise.export_state(),
                "state differs on {:?} / {:?}",
                input,
                slices
            );
            prop_assert_eq!(bulk.finish(), charwise.finish(), "finish differs on {:?}", input);
        }
    }

    /// Family 5: the fused `parse_str` agrees with the materializing
    /// `parse_str_tokens`, and `Engine::lex_str_parallel` agrees with
    /// the sequential certified lexer, on random arith-ish raw text.
    #[test]
    fn fused_and_parallel_agree_with_materializing_paths(seed in 0u64..200) {
        let spec = PipelineSpec::arith_lexed();
        let engine = Engine::new();
        let pipeline = engine.get_or_compile(&spec).unwrap();
        let backend = pipeline.lexed_backend().unwrap();
        let mut rng = StdRng::seed_from_u64(seed);
        let mut text = String::new();
        for _ in 0..rng.gen_range(0..16) {
            match rng.gen_range(0..7) {
                0 => text.push('('),
                1 => text.push(')'),
                2 => text.push('+'),
                3 => text.push(' '),
                4 => text.push('#'), // not in the alphabet: lex error
                _ => {
                    for _ in 0..rng.gen_range(1..4) {
                        text.push(char::from(b'0' + rng.gen_range(0u8..10)));
                    }
                }
            }
        }
        let fused = backend.parse_str(&text).unwrap();
        let materialized = backend.parse_str_tokens(&text).unwrap();
        match (&fused, &materialized) {
            (
                StrOutcome::Accept { tree: tf, tokens: tkf },
                StrOutcome::Accept { tree: tm, .. },
            ) => {
                prop_assert_eq!(tf, tm, "trees differ on {:?}", text);
                prop_assert!(tkf.is_none(), "fused path materialized tokens on {:?}", text);
            }
            (
                StrOutcome::RejectParse { span: sf, message: mf, .. },
                StrOutcome::RejectParse { span: sm, message: mm, .. },
            ) => {
                prop_assert_eq!(sf, sm, "reject spans differ on {:?}", text);
                prop_assert_eq!(mf, mm, "reject messages differ on {:?}", text);
            }
            (StrOutcome::RejectLex(ef), StrOutcome::RejectLex(em)) => {
                prop_assert_eq!(ef, em, "lex errors differ on {:?}", text);
            }
            _ => prop_assert!(
                false,
                "fused {fused:?} disagrees with materialized {materialized:?} on {text:?}"
            ),
        }
        // Parallel certified lexing ≡ the sequential certified lexer,
        // for every chunk count.
        let seq = backend.lexer().lex(&text).unwrap();
        for chunks in [1usize, 2, 4, 8, text.len() + 1] {
            prop_assert_eq!(
                &engine.lex_str_parallel(&spec, &text, chunks).unwrap(),
                &seq,
                "{} chunks on {:?}",
                chunks,
                text
            );
        }
    }
}
