//! Property tests for the central intrinsic-verification claims:
//! parsers produce only valid parse trees of their actual input, and
//! parse transformers never change the underlying string.

use proptest::prelude::*;

use lambek_core::alphabet::{Alphabet, GString, Symbol};
use lambek_core::grammar::compile::CompiledGrammar;
use lambek_core::grammar::parse_tree::validate;
use lambek_core::theory::parser::ParseOutcome;
use regex_grammars::ast::Regex;
use regex_grammars::derivative::matches;
use regex_grammars::gen::random_regex;
use regex_grammars::pipeline::RegexParser;
use regex_grammars::thompson::thompson_strong_equiv;

fn arb_string(max_len: usize) -> impl Strategy<Value = GString> {
    proptest::collection::vec(0usize..3, 0..=max_len)
        .prop_map(|v| v.into_iter().map(Symbol::from_index).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Corollary 4.12 at scale: for random regexes and strings, the
    /// verified pipeline agrees with the derivative baseline, and every
    /// accepted tree is a validated parse of the input.
    #[test]
    fn pipeline_sound_complete_on_random_regexes(
        seed in 0u64..500,
        w in arb_string(7),
    ) {
        let sigma = Alphabet::abc();
        let re = random_regex(&sigma, 6, seed);
        let parser = RegexParser::compile(&sigma, re.clone()).expect("pipeline composes");
        let expected = matches(&re, &w);
        let outcome = parser.parse(&w).expect("parser is total");
        prop_assert_eq!(outcome.is_accept(), expected);
        if let ParseOutcome::Accept(tree) = outcome {
            prop_assert_eq!(tree.flatten(), w.clone());
            validate(&tree, &re.to_grammar(), &w).expect("intrinsic verification");
        }
    }

    /// Construction 4.11 at scale: the Thompson transformers round-trip
    /// on every enumerated parse (strong equivalence), and parse counts
    /// agree.
    #[test]
    fn thompson_strong_equivalence_on_random_regexes(seed in 0u64..300) {
        let sigma = Alphabet::abc();
        let re = regex_grammars::gen::random_finite_ambiguity_regex(&sigma, 6, seed);
        let (_, eq) = thompson_strong_equiv(&sigma, &re);
        let strings: Vec<GString> =
            lambek_core::theory::unambiguous::all_strings(&sigma, 3);
        eq.check_on(&strings, 16).expect("roundtrip laws");
        eq.check_counts_on(&strings, 16).expect("equal parse counts");
    }

    /// The transformers inside the pipeline preserve yields on every
    /// accepted input (the Definition 5.2 contract, checked dynamically).
    #[test]
    fn transformers_preserve_yields(
        seed in 0u64..200,
        w in arb_string(6),
    ) {
        let sigma = Alphabet::abc();
        let re = random_regex(&sigma, 5, seed);
        let (_, eq) = thompson_strong_equiv(&sigma, &re);
        let cg = CompiledGrammar::new(&re.to_grammar());
        for tree in cg.parses(&w, 8).trees {
            let out = eq.weak().fwd.apply_checked(&tree).expect("fwd total on parses");
            prop_assert_eq!(out.flatten(), tree.flatten());
        }
    }

    /// The denotational recognizer, the derivative matcher, and the
    /// Thompson NFA agree on language membership.
    #[test]
    fn three_recognizers_agree(
        seed in 0u64..300,
        w in arb_string(6),
    ) {
        let sigma = Alphabet::abc();
        let re = random_regex(&sigma, 6, seed);
        let denotational = CompiledGrammar::new(&re.to_grammar()).recognizes(&w);
        let derivative = matches(&re, &w);
        let (th, _) = thompson_strong_equiv(&sigma, &re);
        prop_assert_eq!(denotational, derivative);
        prop_assert_eq!(th.nfa().accepts(&w), derivative);
    }
}

/// Deterministic spot check: a deliberately ambiguous regex exercises the
/// disambiguation (DtoN choice function) and still validates.
#[test]
fn ambiguous_regex_parses_validate() {
    let sigma = Alphabet::abc();
    let re = Regex::alt(
        Regex::concat(
            Regex::Char(Symbol::from_index(0)),
            Regex::Char(Symbol::from_index(1)),
        ),
        Regex::concat(
            Regex::Char(Symbol::from_index(0)),
            Regex::Char(Symbol::from_index(1)),
        ),
    );
    let parser = RegexParser::compile(&sigma, re.clone()).unwrap();
    let w = sigma.parse_str("ab").unwrap();
    let tree = parser.parse(&w).unwrap().accepted().unwrap().clone();
    validate(&tree, &re.to_grammar(), &w).unwrap();
}
