//! Regression guard for `StreamParser::would_accept` in lexed-LR mode.
//!
//! The probe used to clone the pending `LexStream` *and* the LR stack
//! for every call, making N probes over a document O(N · input). It now
//! resolves the pending lexeme on a copy of the small munch state and
//! runs the LR lookahead on a virtual-stack overlay, so each probe does
//! work proportional to the parse-stack depth, not the input consumed
//! so far. These tests pin that down with the step counter the overlay
//! exposes.
//!
//! The arithmetic grammar is right-recursive (`Exp ::= Atom + Exp`), so
//! a flat sum genuinely deepens the stack — to grow the *input* without
//! growing the *stack* we pad with whitespace, which the lexer consumes
//! as skip lexemes that never reach the parser. A probe over a 64 KiB
//! document must then cost exactly what it costs over a 1 KiB one.

use lambek_engine::{Engine, PipelineSpec};

/// `1␣…␣+␣…␣1` with `pad` spaces around the operator: two terms (fixed
/// LR stack) but arbitrarily many input bytes.
fn padded_arith(pad: usize) -> String {
    let spaces = " ".repeat(pad);
    format!("1{spaces}+{spaces}1")
}

#[test]
fn probe_cost_is_independent_of_input_length() {
    let engine = Engine::new();
    let spec = PipelineSpec::arith_lexed();
    let probe_steps = |input: &str| {
        let mut stream = engine.stream(&spec).unwrap();
        assert!(stream.push_chars(input));
        let (ok, steps) = stream.would_accept_counted();
        assert!(ok, "padded arithmetic is accepted");
        steps
    };
    let small = probe_steps(&padded_arith(512)); // ~1 KiB
    let large = probe_steps(&padded_arith(32 * 1024)); // ~64 KiB
    assert_eq!(
        small, large,
        "probe cost must not scale with consumed input"
    );
    assert!(
        small <= 64,
        "a two-term sum keeps the probe tiny: {small} steps"
    );
}

#[test]
fn repeated_probes_do_stack_depth_work_not_input_work() {
    let engine = Engine::new();
    let spec = PipelineSpec::arith_lexed();
    // Probe after every one of the last 256 characters — the usual
    // editor pattern ("is the buffer accept-able as I type?").
    let window_max = |pad: usize| {
        let input = padded_arith(pad);
        let window = input.len().saturating_sub(256);
        let mut stream = engine.stream(&spec).unwrap();
        let mut max_steps = 0usize;
        for (i, c) in input.char_indices() {
            stream.push_char(c);
            if i >= window {
                let (_, steps) = stream.would_accept_counted();
                max_steps = max_steps.max(steps);
            }
        }
        max_steps
    };
    let small = window_max(512); // ~1 KiB
    let large = window_max(16 * 1024); // ~32 KiB
    assert_eq!(
        small, large,
        "per-probe work must depend on the stack, not the document"
    );
    assert!(small <= 64, "each probe is O(stack depth): {small} steps");
}
