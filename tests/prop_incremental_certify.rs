//! Differential property suite for incremental certification: the
//! O(1)-amortized per-step checkers must be *extensionally identical*
//! to the whole-output re-validation passes they replaced.
//!
//! Three layers, each compared against its retained `full` path:
//!
//! 1. **lex** — on random specs and random rule-shaped inputs,
//!    [`CertifiedLexer::lex`] (running tiling cursor + memoized
//!    derivative re-match per munch boundary) and
//!    [`CertifiedLexer::lex_full`] (materialize, then re-walk) return
//!    the same outcome: same accept/reject verdict, the same token
//!    stream on accept, and the same error class and byte offset on
//!    reject.
//! 2. **lr** — on random LALR(1) grammars, [`CertifiedLrParser::parse`]
//!    (reductions checked as performed) and
//!    [`CertifiedLrParser::parse_full`] (whole-tree `validate` at the
//!    end) agree on verdicts, trees, and rejection positions — and the
//!    incremental stream (`stream`) agrees with the full-validation
//!    stream (`stream_full`) pointwise.
//! 3. **engine** — on raw arithmetic text, the fused lex→LR
//!    [`parse_str`](lambek_engine::CompiledPipeline::parse_str), the
//!    two-pass `parse_str_full`, and the character-streamed
//!    [`StreamParser`](lambek_engine::StreamParser) agree on verdict,
//!    tree, and rejection offsets.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lambek_cfg::grammar::{Cfg, GSym, Production};
use lambek_core::alphabet::{Alphabet, GString, Symbol};
use lambek_core::theory::unambiguous::all_strings;
use lambek_engine::{Engine, PipelineSpec, StrOutcome, StrReportOutcome};
use lambek_lex::spec::LexSpecBuilder;
use lambek_lex::{CertifiedLexer, LexAutomaton, LexedOutcome};
use lambek_lr::{CertifiedLrParser, LrOutcome};
use regex_grammars::ast::Regex;

/// A small random CFG over {a, b, c} (mirrors `prop_lr_vs_earley`):
/// some are LALR(1), some are not; the properties only exercise the
/// ones whose tables build.
fn random_cfg(seed: u64) -> Cfg {
    let mut rng = StdRng::seed_from_u64(seed);
    let sigma = Alphabet::abc();
    let num_nt = rng.gen_range(1..4);
    let mut productions = Vec::new();
    for _ in 0..num_nt {
        let alts = rng.gen_range(1..4);
        let mut ps = Vec::new();
        for _ in 0..alts {
            let len = rng.gen_range(0..4);
            let rhs = (0..len)
                .map(|_| {
                    if rng.gen_range(0..3) == 0 {
                        GSym::N(rng.gen_range(0..num_nt))
                    } else {
                        GSym::T(Symbol::from_index(rng.gen_range(0..sigma.len())))
                    }
                })
                .collect();
            ps.push(Production { rhs });
        }
        productions.push(ps);
    }
    Cfg::new(
        sigma,
        (0..num_nt).map(|i| format!("N{i}")).collect(),
        productions,
        0,
    )
}

/// A random non-nullable regex (lex rules must not accept ε).
fn random_rule_regex(alphabet: &Alphabet, size: usize, rng: &mut StdRng) -> Regex {
    let re = regex_grammars::gen::random_regex(alphabet, size, rng.gen());
    if re.nullable() {
        let c = Symbol::from_index(rng.gen_range(0..alphabet.len()));
        Regex::concat(Regex::Char(c), re)
    } else {
        re
    }
}

/// A random 2–4 rule spec over {a, b}.
fn random_spec(seed: u64) -> (LexAutomaton, Vec<Regex>) {
    let mut rng = StdRng::seed_from_u64(seed);
    let sigma = Alphabet::from_chars("ab");
    let num_rules = rng.gen_range(2..5);
    let mut builder = LexSpecBuilder::new(sigma.clone());
    let mut regexes = Vec::new();
    for i in 0..num_rules {
        let re = random_rule_regex(&sigma, rng.gen_range(1..6), &mut rng);
        regexes.push(re.clone());
        builder = builder.token_re(&format!("T{i}"), re).unwrap();
    }
    (LexAutomaton::compile(builder.build().unwrap()), regexes)
}

/// Samples one string from a regex's language (`None` for ∅), bounding
/// star unrolling.
fn sample(re: &Regex, rng: &mut StdRng, depth: usize) -> Option<GString> {
    match re {
        Regex::Empty => None,
        Regex::Eps => Some(GString::new()),
        Regex::Char(c) => Some(GString::singleton(*c)),
        Regex::Concat(l, r) => {
            let mut w = sample(l, rng, depth)?;
            w.extend(sample(r, rng, depth)?.iter());
            Some(w)
        }
        Regex::Alt(l, r) => {
            let (first, second) = if rng.gen_bool(0.5) { (l, r) } else { (r, l) };
            sample(first, rng, depth).or_else(|| sample(second, rng, depth))
        }
        Regex::Star(inner) => {
            let mut w = GString::new();
            if depth < 3 {
                for _ in 0..rng.gen_range(0..3) {
                    if let Some(piece) = sample(inner, rng, depth + 1) {
                        w.extend(piece.iter());
                    }
                }
            }
            Some(w)
        }
    }
}

/// Concatenated samples from random rules — inputs the lexer is likely
/// (but not guaranteed) to accept.
fn random_rule_shaped_input(regexes: &[Regex], k: usize, rng: &mut StdRng) -> GString {
    let mut w = GString::new();
    for _ in 0..k {
        let re = &regexes[rng.gen_range(0..regexes.len())];
        if let Some(piece) = sample(re, rng, 0) {
            w.extend(piece.iter());
        }
    }
    w
}

/// Random arithmetic-ish raw text, occasionally unlexable or
/// unparsable, to exercise all three outcome classes.
fn random_arith_text(seed: u64) -> String {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut text = String::new();
    for _ in 0..rng.gen_range(0..14) {
        match rng.gen_range(0..8) {
            0 => text.push('('),
            1 => text.push(')'),
            2 => text.push('+'),
            3 => text.push(' '),
            4 => text.push('x'), // not in the character alphabet
            _ => {
                for _ in 0..rng.gen_range(1..4) {
                    text.push(char::from(b'0' + rng.gen_range(0u8..10)));
                }
            }
        }
    }
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lex layer: incremental ≡ full on random specs — same verdict,
    /// same tokens, same rejection byte offset and offending char.
    #[test]
    fn incremental_lex_equals_full_lex(seed in 0u64..300) {
        let (auto, regexes) = random_spec(seed);
        let sigma = auto.spec().alphabet().clone();
        let lexer = CertifiedLexer::from_automaton(auto);
        let mut rng = StdRng::seed_from_u64(seed ^ 0xA5A5);
        for k in 0..4 {
            let w = random_rule_shaped_input(&regexes, k, &mut rng);
            let mut input = sigma.display(&w);
            if rng.gen_bool(0.3) {
                // Occasionally poison the tail so rejection offsets get
                // compared too ('z' is outside every random alphabet).
                input.push('z');
            }
            let incremental = lexer.lex(&input).unwrap();
            let full = lexer.lex_full(&input).unwrap();
            match (&incremental, &full) {
                (LexedOutcome::Tokens(a), LexedOutcome::Tokens(b)) => {
                    prop_assert_eq!(a, b, "token streams differ on {:?}", input);
                }
                (LexedOutcome::Reject(a), LexedOutcome::Reject(b)) => {
                    prop_assert_eq!(a, b, "rejections differ on {:?}", input);
                }
                _ => prop_assert!(
                    false,
                    "verdicts differ on {:?}: incremental {:?}, full {:?}",
                    input, incremental, full
                ),
            }
        }
    }

    /// LR layer: incremental ≡ full on random LALR(1) grammars — same
    /// verdict, same tree (hash-consed id equality via `==`), same
    /// rejection position and expected set; and the two stream flavors
    /// agree with one-shot pointwise.
    #[test]
    fn incremental_lr_equals_full_lr(seed in 0u64..300) {
        let cfg = random_cfg(seed);
        let sigma = cfg.alphabet().clone();
        let Ok(parser) = CertifiedLrParser::compile(&cfg) else {
            return Ok(()); // conflicted grammars have no LR path to compare
        };
        for w in all_strings(&sigma, 4) {
            let incremental = parser.parse(&w).expect("the driver never faults");
            let full = parser.parse_full(&w).expect("validation never fails");
            match (&incremental, &full) {
                (LrOutcome::Accept(a), LrOutcome::Accept(b)) => {
                    prop_assert_eq!(a, b, "trees differ on {}", &w);
                }
                (LrOutcome::Reject(a), LrOutcome::Reject(b)) => {
                    prop_assert_eq!(a, b, "rejections differ on {}", &w);
                }
                _ => prop_assert!(
                    false,
                    "verdicts differ on {}: incremental {:?}, full {:?}",
                    &w, incremental, full
                ),
            }
            // Streamed ≡ one-shot, in both certification flavors.
            let mut inc_stream = parser.stream();
            let mut full_stream = parser.stream_full();
            for sym in w.iter() {
                prop_assert_eq!(inc_stream.push(sym), full_stream.push(sym));
                prop_assert_eq!(inc_stream.would_accept(), full_stream.would_accept());
            }
            let streamed = inc_stream.finish().expect("the driver never faults");
            let streamed_full = full_stream.finish().expect("validation never fails");
            prop_assert_eq!(streamed.accepted(), incremental.accepted(), "{}", &w);
            prop_assert_eq!(streamed_full.accepted(), full.accepted(), "{}", &w);
        }
    }

    /// Engine layer: the fused incremental `parse_str`, the two-pass
    /// `parse_str_full`, the batch `parse_many_str`, and the
    /// character-streamed `StreamParser` agree on verdict, tree, and
    /// rejection offsets for raw arithmetic text.
    #[test]
    fn fused_engine_path_equals_two_pass_and_stream(seed in 0u64..300) {
        let engine = Engine::new();
        let spec = PipelineSpec::arith_lexed();
        let pipeline = engine.get_or_compile(&spec).unwrap();
        let backend = pipeline.lexed_backend().expect("lexed pipeline");
        let input = random_arith_text(seed);

        let fused = pipeline.parse_str(&input).unwrap();
        let full = backend.parse_str_full(&input).unwrap();
        // The fused path never materializes tokens; it must agree with
        // the two-pass reference on everything else.
        match (&fused, &full) {
            (
                StrOutcome::Accept { tree: a, tokens: ta },
                StrOutcome::Accept { tree: b, .. },
            ) => {
                prop_assert_eq!(a, b, "trees differ on {:?}", input);
                prop_assert!(ta.is_none(), "fused path materialized tokens on {:?}", input);
            }
            (
                StrOutcome::RejectParse { span: sa, message: ma, tokens: ta },
                StrOutcome::RejectParse { span: sb, message: mb, .. },
            ) => {
                prop_assert_eq!(sa, sb, "rejection spans differ on {:?}", input);
                prop_assert_eq!(ma, mb, "rejection messages differ on {:?}", input);
                prop_assert!(ta.is_none(), "fused path materialized tokens on {:?}", input);
            }
            (StrOutcome::RejectLex(a), StrOutcome::RejectLex(b)) => {
                prop_assert_eq!(a, b, "lex rejections differ on {:?}", input);
            }
            _ => prop_assert!(
                false,
                "verdicts differ on {:?}: fused {:?}, full {:?}",
                input, fused, full
            ),
        }

        // The token-materializing incremental path is extensionally
        // identical to the two-pass reference, token streams included.
        let materialized = backend.parse_str_tokens(&input).unwrap();
        prop_assert_eq!(&materialized, &full, "parse_str_tokens differs on {:?}", input);

        // Batch goes through the same fused path: same verdict class
        // and same rejection offsets.
        let batch = engine.parse_many_str(&spec, &[input.as_str()], 1).unwrap();
        prop_assert_eq!(batch.len(), 1);
        match (&batch[0].outcome, &fused) {
            (StrReportOutcome::Accepted { .. }, StrOutcome::Accept { .. }) => {}
            (
                StrReportOutcome::RejectedParse { span, message },
                StrOutcome::RejectParse { span: fspan, message: fmessage, .. },
            ) => {
                prop_assert_eq!(span, fspan, "batch span differs on {:?}", input);
                prop_assert_eq!(message, fmessage, "batch message differs on {:?}", input);
            }
            (StrReportOutcome::RejectedLex { at, .. }, StrOutcome::RejectLex(e)) => {
                prop_assert_eq!(*at, e.at, "batch lex offset differs on {:?}", input);
            }
            (batch, fused) => prop_assert!(
                false,
                "batch verdict differs on {:?}: batch {:?}, fused {:?}",
                input, batch, fused
            ),
        }

        // Character streaming: same verdict, same tree.
        let mut stream = engine.stream(&spec).unwrap();
        stream.push_chars(&input);
        prop_assert_eq!(
            stream.would_accept(),
            fused.is_accept(),
            "would_accept diverges on {:?}",
            input
        );
        let outcome = stream.finish().unwrap();
        prop_assert_eq!(outcome.is_accept(), fused.is_accept(), "{:?}", input);
        prop_assert_eq!(outcome.accepted(), fused.accepted(), "{:?}", input);
    }
}
