//! Property suite for the observability layer. The contract under
//! test is that observation is *exact* and *invisible*:
//!
//! * counter algebra — under concurrent batches the engine's request
//!   and token counters equal the sums computed from the reports
//!   themselves (nothing double-counted, nothing dropped);
//! * tracing honesty — every retained trace's stage spans are
//!   disjoint, in chronological order, sum to at most the recorded
//!   wall time, and name the stages the serving path actually ran
//!   (queue/cache/scan/certify/parse for a lexed pipeline);
//! * ring discipline — the trace ring never holds more than its
//!   capacity and always the *newest* traces, newest first;
//! * observational invisibility — an engine built with tracing on
//!   produces byte-identical outcomes (spans, messages, token counts)
//!   to an untraced engine on every input, because the staged traced
//!   path and the fused path are the same algorithm;
//! * exporter fidelity — the Prometheus text parses line-by-line and
//!   agrees with the typed counters; the JSON snapshot is
//!   well-balanced, stable across idle gathers, and round-trips the
//!   counter values.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lambekd::engine::{CacheConfig, Engine, ObsConfig, PipelineSpec, StrReportOutcome};
use lambekd::obs::Stage;
use std::time::Duration;

/// Reads the value of an unlabeled counter/gauge sample from a
/// Prometheus text exposition.
fn prom_value(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|l| l.strip_prefix(name).and_then(|r| r.strip_prefix(' ')))
        .unwrap_or_else(|| panic!("metric {name} not exported"))
        .parse()
        .unwrap_or_else(|e| panic!("metric {name} is not an integer: {e}"))
}

/// Random raw arithmetic text mixing accepts, parse rejections, lex
/// rejections ('x' is outside the lexer's alphabet) and empties.
fn random_arith_text(rng: &mut StdRng) -> String {
    let mut text = String::new();
    for _ in 0..rng.gen_range(0..12) {
        match rng.gen_range(0..8) {
            0 => text.push('('),
            1 => text.push(')'),
            2 => text.push('+'),
            3 => text.push(' '),
            4 => text.push('x'),
            _ => {
                for _ in 0..rng.gen_range(1..4) {
                    text.push(char::from(b'0' + rng.gen_range(0u8..10)));
                }
            }
        }
    }
    text
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Counter algebra: under concurrent traced batches, the engine's
    /// `requests` counter equals the number of reports handed back and
    /// the `tokens` counter equals the sum of accepted token counts
    /// from those same reports.
    #[test]
    fn counters_are_exact_sums_under_concurrent_batches(seed in 0u64..200) {
        const THREADS: usize = 4;
        let engine = Engine::with_obs(
            CacheConfig::default(),
            ObsConfig { tracing: true, trace_ring: 64 },
        );
        let spec = PipelineSpec::arith_lexed();
        let mut batches: Vec<Vec<String>> = Vec::new();
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..THREADS {
            batches.push((0..rng.gen_range(1..6)).map(|_| random_arith_text(&mut rng)).collect());
        }
        let (mut requests, mut tokens) = (0u64, 0u64);
        std::thread::scope(|scope| {
            let handles: Vec<_> = batches
                .iter()
                .enumerate()
                .map(|(tid, batch)| {
                    let engine = &engine;
                    let spec = &spec;
                    scope.spawn(move || {
                        let inputs: Vec<&str> = batch.iter().map(String::as_str).collect();
                        // Odd threads go through the pool, even ones
                        // stay on the sequential path.
                        let workers = if tid % 2 == 0 { 1 } else { 3 };
                        engine.parse_many_str(spec, &inputs, workers).expect("compiles")
                    })
                })
                .collect();
            for h in handles {
                for r in h.join().expect("no worker panics") {
                    requests += 1;
                    if let StrReportOutcome::Accepted { tokens: t, .. } = r.outcome {
                        tokens += t as u64;
                    }
                }
            }
        });
        let text = engine.metrics_text();
        prop_assert_eq!(prom_value(&text, "lambekd_requests_total"), requests);
        prop_assert_eq!(prom_value(&text, "lambekd_tokens_total"), tokens);
        // Every request was traced, and the ring saw exactly that many.
        prop_assert_eq!(prom_value(&text, "lambekd_traces_total"), requests);
    }

    /// Tracing honesty: spans are chronological, disjoint, sum to at
    /// most the trace's wall total, and name the stages a lexed
    /// pipeline actually runs.
    #[test]
    fn trace_spans_are_disjoint_named_and_bounded_by_wall_time(seed in 0u64..200) {
        let engine = Engine::with_obs(
            CacheConfig::default(),
            ObsConfig { tracing: true, trace_ring: 32 },
        );
        let spec = PipelineSpec::arith_lexed();
        let mut rng = StdRng::seed_from_u64(seed ^ 0x0B5);
        let batch: Vec<String> = (0..rng.gen_range(1..8)).map(|_| random_arith_text(&mut rng)).collect();
        let inputs: Vec<&str> = batch.iter().map(String::as_str).collect();
        let reports = engine.parse_many_str(&spec, &inputs, 1).expect("compiles");
        for r in &reports {
            let trace = r.trace.as_ref().expect("tracing engines attach traces");
            prop_assert_eq!(trace.request, r.index);
            prop_assert_eq!(trace.input_bytes, r.input_bytes);
            prop_assert!(trace.spans_total() <= trace.total,
                "span durations overran the wall total in {trace}");
            let mut clock = Duration::ZERO;
            for s in &trace.spans {
                prop_assert!(s.start >= clock,
                    "span {} starts inside its predecessor in {trace}", s.stage);
                clock = s.start + s.duration;
            }
            // The stages the serving path actually ran, by outcome.
            for stage in [Stage::Cache, Stage::Queue, Stage::Scan] {
                prop_assert!(trace.span_duration(stage).is_some(),
                    "missing {stage} span in {trace}");
            }
            match &r.outcome {
                StrReportOutcome::Accepted { .. } | StrReportOutcome::RejectedParse { .. } => {
                    for stage in [Stage::Certify, Stage::Parse, Stage::Finish] {
                        prop_assert!(trace.span_duration(stage).is_some(),
                            "missing {stage} span in {trace}");
                    }
                }
                // A lex rejection dies in the scan; no parse ran.
                StrReportOutcome::RejectedLex { .. } => {
                    prop_assert!(trace.span_duration(Stage::Parse).is_none(),
                        "a lex-rejected request cannot have parsed, yet {trace}");
                }
                other => prop_assert!(false, "unlimited batch shed or failed: {other:?}"),
            }
        }
        // All reports retained (batch smaller than the ring), newest
        // first: the ring's head is the last-finished request.
        let recent = engine.recent_traces();
        prop_assert_eq!(recent.len(), reports.len());
        prop_assert_eq!(recent[0].request, reports.len() - 1);
    }

    /// Observational invisibility: the staged traced path produces the
    /// same outcome as the fused path run on the *same* compiled
    /// pipeline (same instance, so even LR state numbers in rejection
    /// messages must agree — state numbering is only stable within one
    /// compilation).
    #[test]
    fn traced_reports_agree_with_the_fused_path(seed in 0u64..300) {
        let engine = Engine::with_obs(
            CacheConfig::default(),
            ObsConfig { tracing: true, trace_ring: 16 },
        );
        let mut rng = StdRng::seed_from_u64(seed ^ 0xD1FF);
        let batch: Vec<String> = (0..rng.gen_range(1..8)).map(|_| random_arith_text(&mut rng)).collect();
        let inputs: Vec<&str> = batch.iter().map(String::as_str).collect();
        let spec = PipelineSpec::arith_lexed();
        let reports = engine.parse_many_str(&spec, &inputs, 1).expect("compiles");
        let pipeline = engine.get_or_compile(&spec).expect("cached");
        prop_assert_eq!(reports.len(), inputs.len());
        for r in &reports {
            prop_assert!(r.trace.is_some(), "tracing engines attach traces");
            let input = inputs[r.index];
            let fused = pipeline.parse_str(input).expect("no contract violations");
            match (&r.outcome, &fused) {
                (
                    StrReportOutcome::Accepted { tree_size, tokens },
                    lambekd::engine::StrOutcome::Accept { tree, .. },
                ) => {
                    prop_assert_eq!(*tree_size, tree.size(), "tree sizes differ on {:?}", input);
                    prop_assert_eq!(*tokens, tree.flatten().len(),
                        "token counts differ on {:?}", input);
                }
                (
                    StrReportOutcome::RejectedParse { span, message },
                    lambekd::engine::StrOutcome::RejectParse { span: fs, message: fm, .. },
                ) => {
                    prop_assert_eq!(span, fs, "rejection spans differ on {:?}", input);
                    prop_assert_eq!(message, fm, "rejection messages differ on {:?}", input);
                }
                (
                    StrReportOutcome::RejectedLex { at, message },
                    lambekd::engine::StrOutcome::RejectLex(e),
                ) => {
                    prop_assert_eq!(*at, e.at, "lex offsets differ on {:?}", input);
                    prop_assert_eq!(message, &e.to_string(),
                        "lex messages differ on {:?}", input);
                }
                (got, want) => prop_assert!(false,
                    "verdicts differ on {:?}: traced {:?}, fused {:?}", input, got, want),
            }
        }
    }
}

#[test]
fn trace_ring_is_bounded_and_keeps_the_newest() {
    let engine = Engine::with_obs(
        CacheConfig::default(),
        ObsConfig {
            tracing: true,
            trace_ring: 4,
        },
    );
    let spec = PipelineSpec::arith_lexed();
    // Ten one-request batches with distinguishable input sizes.
    let docs: Vec<String> = (0..10).map(|i| "1".repeat(i + 1)).collect();
    for d in &docs {
        engine
            .parse_many_str(&spec, &[d.as_str()], 1)
            .expect("compiles");
    }
    let recent = engine.recent_traces();
    assert_eq!(recent.len(), 4, "ring exceeded its capacity");
    let sizes: Vec<usize> = recent.iter().map(|t| t.input_bytes).collect();
    assert_eq!(
        sizes,
        vec![10, 9, 8, 7],
        "ring must hold the newest, newest first"
    );
    assert_eq!(
        prom_value(&engine.metrics_text(), "lambekd_traces_total"),
        10,
        "the pushed counter keeps counting past the capacity"
    );
    // Tracing off: no traces retained, no trace attached.
    let off = Engine::new();
    let reports = off
        .parse_many_str(&spec, &[docs[0].as_str()], 1)
        .expect("compiles");
    assert!(reports[0].trace.is_none());
    assert!(off.recent_traces().is_empty());
}

#[test]
fn stream_progress_reports_all_three_modes() {
    let engine = Engine::new();

    // DFA mode: symbols pushed, no lexer, no LR stack.
    let dfa_spec = PipelineSpec::regex(lambekd::core::alphabet::Alphabet::abc(), "(a|b)*c");
    let sigma = engine
        .get_or_compile(&dfa_spec)
        .expect("compiles")
        .alphabet()
        .clone();
    let mut dfa = engine.stream(&dfa_spec).expect("regex pipelines stream");
    assert_eq!(dfa.progress(), lambekd::engine::StreamProgress::default());
    for sym in sigma.parse_str("abab").expect("in the alphabet").iter() {
        dfa.push(sym);
    }
    let p = dfa.progress();
    assert_eq!((p.pushed, p.tokens_emitted, p.stack_depth), (4, 0, 0));

    // LR mode: symbols pushed and a live stack depth.
    let lr_spec = PipelineSpec::dyck_cfg();
    let parens = engine
        .get_or_compile(&lr_spec)
        .expect("compiles")
        .alphabet()
        .clone();
    let mut lr = engine.stream(&lr_spec).expect("LR pipelines stream");
    for sym in parens.parse_str("((").expect("in the alphabet").iter() {
        lr.push(sym);
    }
    let p = lr.progress();
    assert_eq!(p.pushed, 2);
    assert_eq!(p.tokens_emitted, 0);
    assert!(p.stack_depth > 0, "two open parens leave structure open");

    // Lexed mode: raw bytes pushed, resolved tokens counted, LR depth.
    let mut lexed = engine
        .stream(&PipelineSpec::arith_lexed())
        .expect("lexed pipelines stream");
    lexed.push_chars("12+34");
    let p = lexed.progress();
    assert_eq!(p.pushed, 5, "lexed streams count raw bytes");
    assert_eq!(
        p.tokens_emitted, 2,
        "'12' and '+' have resolved boundaries; '34' is still buffered"
    );
    assert!(p.stack_depth > 0, "a dangling '+' leaves the parse open");
    // progress() is mode-total; trace() stays DFA-only.
    assert!(lexed.trace().is_none());
    assert!(dfa.trace().is_some());
}

#[test]
fn exporters_parse_back_and_stay_stable() {
    let engine = Engine::with_obs(
        CacheConfig::default(),
        ObsConfig {
            tracing: true,
            trace_ring: 8,
        },
    );
    let spec = PipelineSpec::arith_lexed();
    // One miss + one hit, three requests total.
    engine
        .parse_many_str(&spec, &["1+2", "x"], 1)
        .expect("compiles");
    engine
        .parse_many_str(&spec, &["(3+4)+5"], 1)
        .expect("cached");

    let text = engine.metrics_text();
    // Exposition-format shape: every non-comment line is `name[{labels}] value`.
    for line in text.lines() {
        if line.starts_with('#') {
            assert!(
                line.starts_with("# HELP ") || line.starts_with("# TYPE "),
                "stray comment line: {line}"
            );
            continue;
        }
        let (series, value) = line.rsplit_once(' ').expect("sample lines have a value");
        assert!(
            value == "+Inf" || value.parse::<f64>().is_ok(),
            "unparseable value in line: {line}"
        );
        let name_end = series.find('{').unwrap_or(series.len());
        assert!(
            series[..name_end]
                .chars()
                .all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "invalid metric name in line: {line}"
        );
    }
    // Typed counters and the text agree.
    let stats = engine.stats();
    assert_eq!(prom_value(&text, "lambekd_cache_hits_total"), stats.hits);
    assert_eq!(
        prom_value(&text, "lambekd_cache_misses_total"),
        stats.misses
    );
    assert_eq!(prom_value(&text, "lambekd_requests_total"), 3);
    // Every `# TYPE` family actually emits at least one sample.
    for line in text.lines().filter(|l| l.starts_with("# TYPE ")) {
        let name = line.split(' ').nth(2).expect("TYPE lines name a metric");
        assert!(
            text.lines().any(|l| {
                l.strip_prefix(name)
                    .is_some_and(|r| r.starts_with(' ') || r.starts_with('{'))
                    || l.strip_prefix(&format!("{name}_bucket")).is_some()
            }),
            "family {name} declared but never sampled"
        );
    }

    // JSON: balanced, counter values round-trip, stable while idle.
    let json = engine.metrics_json();
    let mut depth = 0i64;
    let mut in_str = false;
    let mut esc = false;
    for c in json.chars() {
        if esc {
            esc = false;
            continue;
        }
        match c {
            '\\' if in_str => esc = true,
            '"' => in_str = !in_str,
            '{' | '[' if !in_str => depth += 1,
            '}' | ']' if !in_str => depth -= 1,
            _ => {}
        }
        assert!(depth >= 0, "unbalanced JSON snapshot");
    }
    assert_eq!(depth, 0, "unbalanced JSON snapshot");
    assert!(!in_str, "unterminated string in JSON snapshot");
    for (name, want) in [
        ("lambekd_cache_hits_total", stats.hits),
        ("lambekd_requests_total", 3),
    ] {
        let needle = format!("\"name\":\"{name}\"");
        let at = json.find(&needle).expect("counter present in JSON");
        let tail = &json[at..];
        let v = tail
            .find("\"value\":")
            .map(|i| &tail[i + 8..])
            .and_then(|t| t.split(&['}', ','][..]).next())
            .expect("counter sample has a value");
        assert_eq!(v.parse::<u64>().ok(), Some(want), "{name} JSON value");
    }
    assert_eq!(
        engine.metrics_json(),
        json,
        "idle gathers must be byte-identical"
    );
}
