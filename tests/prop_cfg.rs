//! Property tests for the context-free layer: the verified Dyck and
//! expression parsers against the Earley baseline and the machines.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lambek_automata::counter::CounterMachine;
use lambek_automata::gen::{random_arith, random_dyck};
use lambek_automata::lookahead::{simulate, ArithTokens};
use lambek_cfg::dyck::{dyck_cfg, dyck_grammar, dyck_parser, parse_dyck_string, Parens};
use lambek_cfg::earley::{earley_parse, earley_recognize};
use lambek_cfg::expr::{exp_cfg, exp_grammar, exp_parser, parse_exp_string};
use lambek_core::alphabet::GString;
use lambek_core::grammar::parse_tree::validate;

/// Mutates a string by flipping one random position to a random symbol.
fn mutate(w: &GString, alphabet_len: usize, seed: u64) -> GString {
    if w.is_empty() {
        return w.clone();
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let pos = rng.gen_range(0..w.len());
    let mut out: Vec<_> = w.iter().collect();
    out[pos] = lambek_core::alphabet::Symbol::from_index(rng.gen_range(0..alphabet_len));
    GString::from_symbols(out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Theorem 4.13 at scale: the verified Dyck parser agrees with the
    /// counter machine and the Earley baseline on random (possibly
    /// mutated) Dyck words, and accepted trees validate.
    #[test]
    fn dyck_parser_vs_machine_and_earley(pairs in 1usize..10, seed in 0u64..200) {
        let p = Parens::new();
        let machine = CounterMachine::new();
        let cfg = dyck_cfg(&p);
        let parser = dyck_parser(24);

        let balanced = random_dyck(pairs, seed);
        let candidates = [balanced.clone(), mutate(&balanced, 2, seed ^ 0xDEAD)];
        for w in candidates {
            let expected = machine.accepts(&w);
            prop_assert_eq!(earley_recognize(&cfg, &w), expected);
            let outcome = parser.parse(&w).expect("total");
            prop_assert_eq!(outcome.is_accept(), expected);
            if let Some(tree) = outcome.accepted() {
                validate(tree, &dyck_grammar(&p), &w).expect("intrinsic");
                // The recursive-descent and Earley trees agree (both
                // produce the unique derivation).
                let rd = parse_dyck_string(&p, &w).expect("balanced");
                prop_assert_eq!(tree, &rd);
                let earley = earley_parse(&cfg, &w).unique().expect("balanced");
                prop_assert_eq!(&earley, tree);
            }
        }
    }

    /// Theorem 4.14 at scale: the verified expression parser agrees with
    /// the lookahead machine and Earley on random expressions and their
    /// mutations.
    #[test]
    fn exp_parser_vs_machine_and_earley(
        atoms in 1usize..6,
        depth in 0usize..3,
        seed in 0u64..200,
    ) {
        let t = ArithTokens::new();
        let cfg = exp_cfg(&t);
        let parser = exp_parser(40);

        let expr = random_arith(atoms, depth, seed);
        let candidates = [expr.clone(), mutate(&expr, 4, seed ^ 0xBEEF)];
        for w in candidates {
            let expected = simulate(&t, &w);
            prop_assert_eq!(earley_recognize(&cfg, &w), expected, "{}", w);
            let outcome = parser.parse(&w).expect("total");
            prop_assert_eq!(outcome.is_accept(), expected, "{}", w);
            if let Some(tree) = outcome.accepted() {
                validate(tree, &exp_grammar(&t), &w).expect("intrinsic");
                let ll1 = parse_exp_string(&t, &w).expect("expression");
                prop_assert_eq!(tree, &ll1);
            }
        }
    }

    /// The μ-regular encoding and Earley recognize the same language for
    /// random sentences of the aⁿbⁿ grammar.
    #[test]
    fn mu_regular_encoding_matches_earley(seed in 0u64..100) {
        use lambek_core::grammar::compile::CompiledGrammar;
        let s = lambek_core::alphabet::Alphabet::abc();
        let (a, b) = (s.symbol("a").unwrap(), s.symbol("b").unwrap());
        let cfg = lambek_cfg::grammar::anbn(&s, a, b);
        let cg = CompiledGrammar::new(&cfg.to_lambek());
        if let Some(w) = cfg.random_sentence(seed, 8) {
            prop_assert!(cg.recognizes(&w));
            prop_assert!(earley_recognize(&cfg, &w));
            let m = mutate(&w, 3, seed);
            prop_assert_eq!(cg.recognizes(&m), earley_recognize(&cfg, &m));
        }
    }
}
