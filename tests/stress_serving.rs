//! Stress suite for the serving tier: many threads hammering one
//! [`Engine`] through the persistent worker pool, with a cache
//! deliberately too small for the working set. The assertions are the
//! serving-tier contract:
//!
//! * no batch loses or duplicates a report, and reports come back in
//!   input order with the intrinsic yield check holding on every
//!   accept;
//! * the cache counters stay algebraically consistent under
//!   concurrency and thrashing (`hits + misses = lookups`,
//!   `compiles = misses`, `entries = compiles − evictions`, occupancy
//!   within the configured bound);
//! * the pool neither drops nor invents work (`submitted = executed`
//!   once drained) and an empty batch never touches it;
//! * admission limits shed oversized / expired requests through the
//!   pooled path as structured outcomes, never as panics;
//! * a damaged session blob is refused by the checksum at the door —
//!   no byte of it reaches a parser.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use lambekd::core::alphabet::{Alphabet, GString};
use lambekd::engine::{
    CacheConfig, Engine, PipelineSpec, PoolStats, ReportOutcome, RequestLimits, SessionError,
    SessionState,
};

/// A working set of cheap-to-compile pipelines, deliberately larger
/// than the cache capacities used below.
fn working_set() -> Vec<PipelineSpec> {
    vec![
        PipelineSpec::regex(Alphabet::abc(), "(a|b)*c"),
        PipelineSpec::regex(Alphabet::abc(), "a*b"),
        PipelineSpec::dyck(16),
        PipelineSpec::expr(16),
        PipelineSpec::dyck_cfg(),
        PipelineSpec::expr_cfg(),
    ]
}

/// Inputs for each spec in [`working_set`], mixing accepts and rejects.
fn inputs_for(engine: &Engine, spec: &PipelineSpec) -> Vec<GString> {
    let sigma = engine
        .get_or_compile(spec)
        .expect("working-set specs compile")
        .alphabet()
        .clone();
    let texts: &[&str] = if sigma.symbol_of_char('(').is_some() && sigma.len() == 2 {
        &["()", "(())()", ")(", "((()))", "(()", ""]
    } else if sigma.symbol_of_char('a').is_some() {
        &["ab", "aab", "c", "abc", "ba", ""]
    } else {
        // The arith token alphabet: NUM + ( ) — spell NUM as 'n'.
        return ["n+n", "(n+n)+n", "n", "+n", "()", ""]
            .iter()
            .map(|s| {
                s.chars()
                    .map(|c| match c {
                        'n' => sigma.symbol("NUM").expect("arith alphabet"),
                        other => sigma
                            .symbol_of_char(other)
                            .expect("arith operator characters"),
                    })
                    .collect()
            })
            .collect();
    };
    texts
        .iter()
        .map(|s| sigma.parse_str(s).expect("inputs drawn from the alphabet"))
        .collect()
}

#[test]
fn concurrent_batches_lose_nothing_and_counters_balance() {
    const THREADS: usize = 8;
    const ROUNDS: usize = 12;
    // Capacity 2 for a 6-spec working set: every thread keeps forcing
    // evictions and recompilations underneath the others.
    let engine = Engine::with_config(CacheConfig {
        max_entries: 2,
        max_weight: Duration::from_secs(3600),
    });
    let specs = working_set();
    let lookups = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for tid in 0..THREADS {
            let engine = &engine;
            let specs = &specs;
            let lookups = &lookups;
            scope.spawn(move || {
                for round in 0..ROUNDS {
                    let spec = &specs[(tid + round) % specs.len()];
                    // inputs_for compiles once, parse_many looks up once.
                    let inputs = inputs_for(engine, spec);
                    lookups.fetch_add(2, Ordering::Relaxed);
                    let reports = engine
                        .parse_many(spec, &inputs, 4)
                        .expect("cached specs parse");
                    assert_eq!(reports.len(), inputs.len(), "lost or duplicated reports");
                    for (i, r) in reports.iter().enumerate() {
                        assert_eq!(r.index, i, "reports out of order");
                        assert_eq!(r.input_len, inputs[i].len());
                        if r.outcome.is_accept() {
                            assert!(r.yield_ok, "accepted tree failed the yield check");
                        }
                    }
                }
            });
        }
    });
    let cache = engine.stats();
    let stats = engine.engine_stats();
    let lookups = lookups.load(Ordering::Relaxed) as u64;
    assert_eq!(cache.hits + cache.misses, lookups, "lookup accounting");
    assert_eq!(
        cache.compiles, cache.misses,
        "every miss compiles exactly once"
    );
    assert!(
        stats.evictions <= cache.compiles,
        "cannot evict more than was compiled"
    );
    assert_eq!(
        cache.entries as u64,
        cache.compiles - stats.evictions,
        "residency must be compiles minus evictions"
    );
    assert!(cache.entries <= 2, "cache exceeded its entry bound");
    assert!(
        cache.misses > specs.len() as u64,
        "a thrashing cache must recompile evicted specs"
    );
    assert_eq!(
        stats.pool.submitted, stats.pool.executed,
        "pool lost or invented work"
    );
    assert_eq!(
        stats.pool.batches,
        (THREADS * ROUNDS) as u64,
        "each parse_many call is exactly one pooled batch"
    );
    assert!(stats.pool.workers > 0, "the pool was never spun up");
    assert!(
        stats.pool.steals <= stats.pool.executed,
        "a steal is one execution; steals cannot exceed executed work"
    );
    let depths = engine.pool_queue_depths();
    assert_eq!(depths.len(), stats.pool.workers);
    assert!(
        depths.iter().all(|&d| d == 0),
        "drained pool must report empty queues, got {depths:?}"
    );
    // The exporter must stay coherent under the same load: every
    // serving-tier instrument present, and the cache counters in the
    // text identical to the typed snapshot we just checked.
    let text = engine.metrics_text();
    for name in [
        "lambekd_cache_hits_total",
        "lambekd_cache_misses_total",
        "lambekd_pool_submitted_total",
        "lambekd_pool_steals_total",
        "lambekd_pool_queue_depth",
        "lambekd_requests_total",
    ] {
        assert!(text.contains(name), "metrics_text lost instrument {name}");
    }
    assert!(
        text.contains(&format!("lambekd_cache_hits_total {}", cache.hits)),
        "exported hit counter disagrees with the typed snapshot"
    );
}

#[test]
fn empty_batches_never_touch_the_pool() {
    let engine = Engine::new();
    let spec = PipelineSpec::dyck(8);
    let reports = engine.parse_many(&spec, &[], 8).expect("compiles");
    assert!(reports.is_empty());
    let str_spec = PipelineSpec::arith_lexed();
    let str_reports = engine.parse_many_str(&str_spec, &[], 8).expect("compiles");
    assert!(str_reports.is_empty());
    assert_eq!(
        engine.engine_stats().pool,
        PoolStats::default(),
        "an empty batch must not spin up the pool or submit work"
    );
}

#[test]
fn limits_shed_through_the_pooled_path() {
    let engine = Engine::new();
    let spec = PipelineSpec::dyck(64);
    let parens = Alphabet::parens();
    let inputs: Vec<GString> = ["()", "(((((())))))", "()()", "((((((((()))))))))"]
        .iter()
        .map(|s| parens.parse_str(s).unwrap())
        .collect();

    // Token budget: only inputs of ≤ 4 symbols are admitted.
    let budget = RequestLimits {
        token_budget: Some(4),
        deadline: None,
    };
    let reports = engine
        .parse_many_with(&spec, &inputs, 4, budget)
        .expect("compiles");
    for (r, w) in reports.iter().zip(&inputs) {
        if w.len() <= 4 {
            assert!(!r.outcome.is_shed(), "within-budget input was shed");
        } else {
            assert_eq!(
                r.outcome,
                ReportOutcome::BudgetExceeded {
                    budget: 4,
                    required: w.len()
                },
                "over-budget input must shed with the honest sizes"
            );
        }
    }

    // A deadline already in the past sheds the entire batch.
    let expired = RequestLimits {
        token_budget: None,
        deadline: Some(Instant::now() - Duration::from_millis(10)),
    };
    let reports = engine
        .parse_many_with(&spec, &inputs, 4, expired)
        .expect("compiles");
    assert!(
        reports
            .iter()
            .all(|r| r.outcome == ReportOutcome::DeadlineExceeded),
        "every request behind the deadline must shed"
    );

    // Shed requests are still fully accounted for.
    assert_eq!(reports.len(), inputs.len());
    for (i, r) in reports.iter().enumerate() {
        assert_eq!(r.index, i);
    }
}

#[test]
fn damaged_session_blobs_are_stopped_at_the_checksum() {
    let engine = Engine::new();
    let spec = PipelineSpec::json_lexed();
    let mut stream = engine.stream(&spec).expect("json pipeline streams");
    stream.push_chars("{\"k\": [1, 2, {\"deep\": null}], ");
    let blob = stream.snapshot().expect("live streams park");
    let bytes = blob.as_bytes().to_vec();
    // Every single-bit flip of the whole blob — header, payload and
    // checksum alike — must come back as a structured corruption error
    // from the frame check, not as a panic further down.
    for bit in 0..bytes.len() * 8 {
        let mut bad = bytes.clone();
        bad[bit / 8] ^= 1 << (bit % 8);
        match engine.resume(&spec, &SessionState::from_bytes(bad)) {
            Err(SessionError::Corrupt(_)) => {}
            other => panic!(
                "flipping bit {bit} produced {:?} instead of a checksum rejection",
                other.map(|_| "a live stream")
            ),
        }
    }
    // The pristine blob still resumes and finishes certified.
    let mut resumed = engine
        .resume(&spec, &SessionState::from_bytes(bytes))
        .expect("pristine blob resumes");
    resumed.push_chars("\"ok\": true}");
    let outcome = resumed.finish().expect("certified finish");
    assert!(outcome.is_accept(), "the completed document parses");
}

#[test]
fn sessions_survive_concurrent_park_resume_traffic() {
    const THREADS: usize = 6;
    let engine = Engine::with_config(CacheConfig {
        max_entries: 2,
        max_weight: Duration::from_secs(3600),
    });
    let docs = [
        "{\"a\": [1, 2, 3]}",
        "[true, [false, null]]",
        "{\"n\": {\"m\": []}}",
    ];
    std::thread::scope(|scope| {
        for tid in 0..THREADS {
            let engine = &engine;
            scope.spawn(move || {
                let spec = PipelineSpec::json_lexed();
                for (round, doc) in docs.iter().cycle().take(12).enumerate() {
                    let cut = (tid + round) % doc.len();
                    let cut = (cut..=doc.len())
                        .find(|&i| doc.is_char_boundary(i))
                        .expect("len is a boundary");
                    let mut s = engine.stream(&spec).expect("streams");
                    s.push_chars(&doc[..cut]);
                    let blob = s.snapshot().expect("parks");
                    // Meanwhile other threads are evicting and
                    // recompiling this very pipeline under us.
                    let mut r = engine.resume(&spec, &blob).expect("resumes");
                    r.push_chars(&doc[cut..]);
                    let outcome = r.finish().expect("certified finish");
                    assert!(outcome.is_accept(), "{doc:?} parses after park/resume");
                }
            });
        }
    });
    let cache = engine.stats();
    let stats = engine.engine_stats();
    assert_eq!(cache.compiles, cache.misses);
    assert_eq!(cache.entries as u64, cache.compiles - stats.evictions);
}
