//! Adversarial suite for incremental certification: inject one fault
//! into the middle of a stream — a corrupted shift leaf, a rewritten
//! reduction, a bogus injection tag, a shifted lexeme span, a wrong
//! lexeme text or rule — and prove the per-step checkers catch it *at
//! the step it happens*: the fault is recorded the moment the corrupted
//! shift/reduce/lexeme executes, and no fault ever survives to an
//! accepting `finish`.
//!
//! The honesty statement for reduction *substitution* is differential:
//! a [`SabotageLr::ReduceAs`] swap goes undetected exactly when the
//! substituted reduction is genuinely valid — so any tree an
//! undetected run accepts must still pass the whole-tree `validate`.

use lambek_cfg::dyck::{dyck_cfg, Parens};
use lambek_core::grammar::parse_tree::validate;
use lambek_engine::{Engine, PipelineSpec};
use lambek_lex::demo::arith_spec;
use lambek_lex::{CertifiedLexer, SabotageLex};
use lambek_lr::{CertifiedLrParser, LrOutcome, SabotageLr};

fn dyck() -> (CertifiedLrParser, lambek_core::alphabet::Alphabet) {
    let p = Parens::new();
    let parser = CertifiedLrParser::compile(&dyck_cfg(&p)).expect("Dyck is LALR(1)");
    (parser, p.alphabet)
}

#[test]
fn corrupted_shift_leaves_are_caught_at_that_shift() {
    let (parser, sigma) = dyck();
    let w = sigma.parse_str("(()())").unwrap();
    let syms: Vec<_> = w.iter().collect();
    for k in 0..syms.len() {
        let bogus = syms.iter().copied().find(|s| *s != syms[k]).unwrap();
        let mut stream = parser.stream();
        stream.sabotage(SabotageLr::ShiftLeaf {
            shift: k,
            sym: bogus,
        });
        for (i, sym) in syms.iter().enumerate() {
            stream.push(*sym);
            if i < k {
                assert!(stream.fault().is_none(), "no fault before shift {k}");
                assert!(stream.is_viable());
            } else {
                assert!(
                    stream.fault().is_some(),
                    "shift {k} corrupted at push {i}: must be caught immediately"
                );
                assert!(!stream.is_viable());
                assert!(!stream.would_accept());
            }
        }
        // The exact step: the fault fired at shift k, i.e. after the
        // machine performed k+1 shifts (counters increment before the
        // check runs).
        assert_eq!(stream.step_counts().0, k + 1, "caught at shift {k}");
        assert!(
            stream.finish().is_err(),
            "a shift fault must never survive to finish"
        );
    }
}

#[test]
fn corrupted_reduction_tags_are_caught_at_that_reduction() {
    let (parser, sigma) = dyck();
    let w = sigma.parse_str("(()())").unwrap();
    let baseline = match parser.parse(&w).unwrap() {
        LrOutcome::Accept(tree) => tree,
        LrOutcome::Reject(r) => panic!("(()()) is balanced: {r}"),
    };
    let mut fired = 0usize;
    for k in 0..32 {
        let mut stream = parser.stream();
        // Tag 99 indexes no alternative of any Dyck nonterminal: if
        // reduce k happens at all, the corruption is invalid.
        stream.sabotage(SabotageLr::ReduceTag { reduce: k, tag: 99 });
        for sym in w.iter() {
            stream.push(sym);
            if let Some(fault) = stream.fault() {
                // Caught at the very reduction that was corrupted.
                assert_eq!(
                    stream.step_counts().1,
                    k + 1,
                    "fault {fault} caught at reduce {k}, not later"
                );
            }
        }
        match stream.finish() {
            Err(_) => fired += 1, // caught mid-stream or at the EOF reductions
            Ok(LrOutcome::Accept(tree)) => {
                // Reduce k never happened (k ≥ total reductions): the
                // run must be byte-identical to the honest one.
                assert_eq!(tree, baseline, "sabotage at reduce {k} never fired");
            }
            Ok(LrOutcome::Reject(r)) => panic!("(()()) must not reject: {r}"),
        }
    }
    assert!(fired >= 5, "the corruption must actually fire for small k");
}

#[test]
fn substituted_reductions_are_undetected_only_when_genuinely_valid() {
    let (parser, sigma) = dyck();
    let grammar = parser.grammar().clone();
    let num_productions = parser.table().num_productions();
    for input in ["()", "(())", "(()())"] {
        let w = sigma.parse_str(input).unwrap();
        for k in 0..16 {
            // Production 0 is the synthetic S' → S start rule; only real
            // productions are legal substitution targets.
            for p in 1..num_productions {
                let mut stream = parser.stream();
                stream.sabotage(SabotageLr::ReduceAs {
                    reduce: k,
                    production: p,
                });
                stream.push_all(&w);
                match stream.finish() {
                    // Caught — at the substituted reduction or at one of
                    // the claim checks it corrupted downstream.
                    Err(_) => {}
                    // Rejected — the substitution broke the table run
                    // (e.g. popped past the stack); nothing unsound
                    // escaped.
                    Ok(LrOutcome::Reject(_)) => {}
                    // Undetected: the differential honesty obligation —
                    // the accepted tree must be a *genuinely valid*
                    // derivation of the input.
                    Ok(LrOutcome::Accept(tree)) => {
                        validate(&tree, &grammar, &w).unwrap_or_else(|e| {
                            panic!(
                                "undetected substitution (reduce {k} as production {p}) \
                                 on {input:?} produced an invalid tree: {e}"
                            )
                        });
                    }
                }
            }
        }
    }
}

#[test]
fn corrupted_lexemes_are_caught_at_their_munch_boundary() {
    let lexer = CertifiedLexer::compile(arith_spec());
    let input = "12+(345+6)+7 ";
    let baseline = lexer.automaton().lex_raw(input).unwrap();
    for k in 0..baseline.len() {
        for sab in [
            SabotageLex::ShiftSpan { token: k },
            SabotageLex::WrongText {
                token: k,
                text: "zz".to_owned(),
            },
            SabotageLex::WrongRule { token: k, rule: 99 },
        ] {
            let mut stream = lexer.automaton().stream();
            stream.sabotage(sab.clone());
            let mut cert = lexer.certifier();
            let mut caught_at = None;
            let mut emitted = 0usize;
            for c in input.chars() {
                let resolved = stream.push(c).expect("arith text lexes");
                for t in resolved {
                    if caught_at.is_none() && cert.check(stream.raw_input(), &t).is_err() {
                        caught_at = Some(emitted);
                    }
                    emitted += 1;
                }
            }
            for t in stream.finish().expect("arith text lexes") {
                if caught_at.is_none() && cert.check(input, &t).is_err() {
                    caught_at = Some(emitted);
                }
                emitted += 1;
            }
            assert_eq!(emitted, baseline.len(), "sabotage never drops tokens");
            assert_eq!(
                caught_at,
                Some(k),
                "{sab:?} must be caught exactly at token {k}"
            );
        }
    }
}

#[test]
fn stream_parser_catches_lex_sabotage_when_the_token_resolves() {
    let engine = Engine::new();
    let spec = PipelineSpec::arith_lexed();
    const K: usize = 1;
    let mut stream = engine.stream(&spec).unwrap();
    stream.sabotage_lex(SabotageLex::WrongText {
        token: K,
        text: "zz".to_owned(),
    });
    for c in "12+(345+6)".chars() {
        stream.push_char(c);
        let resolved = stream.tokens().unwrap().len();
        assert_eq!(
            stream.lex_fault().is_some(),
            resolved > K,
            "the fault appears exactly when token {K} resolves"
        );
        if resolved > K {
            assert!(!stream.is_viable());
            assert!(!stream.would_accept());
        }
    }
    assert!(
        stream.lex_fault().is_some(),
        "token {K} resolved mid-stream"
    );
    assert!(
        stream.finish().is_err(),
        "a lexer fault must surface as a contract violation, not an outcome"
    );
}

#[test]
fn stream_parser_catches_lr_sabotage_in_both_modes() {
    let engine = Engine::new();
    // Symbol-level LR stream.
    let sigma = Parens::new().alphabet;
    let close = sigma.symbol(")").unwrap();
    let mut stream = engine.stream(&PipelineSpec::dyck_cfg()).unwrap();
    // Shift 1 of `(())` really shifts `(` — claim it shifted `)`.
    stream.sabotage_lr(SabotageLr::ShiftLeaf {
        shift: 1,
        sym: close,
    });
    let w = sigma.parse_str("(())").unwrap();
    for (i, sym) in w.iter().enumerate() {
        stream.push(sym);
        assert_eq!(
            stream.lr_fault().is_some(),
            i >= 1,
            "caught exactly at the corrupted shift"
        );
    }
    assert!(stream.finish().is_err());

    // Character-level lexed-LR stream: corrupt the first reduction's tag.
    let mut stream = engine.stream(&PipelineSpec::arith_lexed()).unwrap();
    stream.sabotage_lr(SabotageLr::ReduceTag { reduce: 0, tag: 99 });
    stream.push_chars("12+3");
    assert!(
        stream.finish().is_err(),
        "the corrupted reduction must not survive the lexed finish"
    );
}
