//! Property tests for the automata substrate: Theorem 4.9 (trace
//! parser/printer retraction) and Construction 4.10 (determinization) on
//! randomly generated machines.

use proptest::prelude::*;

use lambek_automata::determinize::{determinize, least_accepting_trace, trace_weak_equiv};
use lambek_automata::dfa::{parse_dfa, print_dfa};
use lambek_automata::equiv::equivalent;
use lambek_automata::gen::{random_dfa, random_nfa};
use lambek_automata::minimize::minimize;
use lambek_automata::run::dfa_trace_parser;
use lambek_core::alphabet::{Alphabet, GString, Symbol};
use lambek_core::grammar::parse_tree::validate;

fn arb_string(max_len: usize) -> impl Strategy<Value = GString> {
    proptest::collection::vec(0usize..3, 0..=max_len)
        .prop_map(|v| v.into_iter().map(Symbol::from_index).collect())
}

/// A deliberately naive hash-probed DFA runner: the reference the dense
/// flat-table implementation of `Dfa::run_from` is checked against (and
/// benchmarked against in `fig12_dfa_parse`).
struct HashMapDfa {
    init: usize,
    accepting: Vec<bool>,
    delta: std::collections::HashMap<(usize, Symbol), usize>,
}

impl HashMapDfa {
    fn of(dfa: &lambek_automata::dfa::Dfa) -> HashMapDfa {
        let mut delta = std::collections::HashMap::new();
        for s in 0..dfa.num_states() {
            for c in dfa.alphabet().symbols() {
                delta.insert((s, c), dfa.delta(s, c));
            }
        }
        HashMapDfa {
            init: dfa.init(),
            accepting: (0..dfa.num_states()).map(|s| dfa.is_accepting(s)).collect(),
            delta,
        }
    }

    fn run_from(&self, start: usize, w: &GString) -> Vec<usize> {
        let mut states = vec![start];
        let mut s = start;
        for sym in w.iter() {
            s = self.delta[&(s, sym)];
            states.push(s);
        }
        states
    }

    fn accepts(&self, w: &GString) -> bool {
        self.accepting[*self.run_from(self.init, w).last().unwrap()]
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 4.9 on random DFAs: `printD ∘ parseD = id`, the produced
    /// trace validates, and the accept bit matches the DFA run.
    #[test]
    fn parse_print_retraction_random_dfas(
        seed in 0u64..300,
        states in 1usize..7,
        w in arb_string(8),
    ) {
        let sigma = Alphabet::abc();
        let dfa = random_dfa(&sigma, states, seed);
        let tg = dfa.trace_grammar();
        let (b, tree) = parse_dfa(&dfa, &tg, dfa.init(), &w);
        prop_assert_eq!(b, dfa.accepts(&w));
        validate(&tree, &tg.trace(dfa.init(), b), &w).expect("trace validates");
        prop_assert_eq!(print_dfa(&dfa, &tg, dfa.init(), b, &tree), w);
    }

    /// The dense flat transition table agrees with a hash-probed
    /// reference DFA on every state sequence and acceptance answer.
    #[test]
    fn dense_table_run_equals_hashmap_reference(
        seed in 0u64..200,
        states in 1usize..9,
        w in arb_string(10),
    ) {
        let sigma = Alphabet::abc();
        let dfa = random_dfa(&sigma, states, seed);
        let reference = HashMapDfa::of(&dfa);
        prop_assert_eq!(dfa.run_from(dfa.init(), &w), reference.run_from(dfa.init(), &w));
        prop_assert_eq!(dfa.accepts(&w), reference.accepts(&w));
        let ref_states = reference.run_from(dfa.init(), &w);
        prop_assert_eq!(dfa.final_state(dfa.init(), &w), *ref_states.last().unwrap());
        // Per-row slices expose the same successors as pointwise probes.
        for s in 0..dfa.num_states() {
            let row = dfa.delta_row(s);
            for c in sigma.symbols() {
                prop_assert_eq!(row[c.index()], dfa.delta(s, c));
            }
        }
    }

    /// The Theorem 4.9 verified parser audits on random DFAs.
    #[test]
    fn dfa_trace_parser_audits(seed in 0u64..40, states in 1usize..5) {
        let sigma = Alphabet::abc();
        let dfa = random_dfa(&sigma, states, seed);
        let parser = dfa_trace_parser(&dfa, dfa.init());
        parser.audit_disjointness(3).expect("disjoint");
        parser.audit_against_recognizer(3).expect("sound and complete");
    }

    /// Construction 4.10 on random NFAs: the determinized DFA recognizes
    /// the same language, and minimization preserves it.
    #[test]
    fn determinization_preserves_language(
        seed in 0u64..300,
        states in 1usize..6,
        w in arb_string(7),
    ) {
        let sigma = Alphabet::abc();
        let nfa = random_nfa(&sigma, states, 1.5, seed);
        let det = determinize(&nfa);
        prop_assert_eq!(nfa.accepts(&w), det.dfa.accepts(&w));
        let min = minimize(&det.dfa);
        prop_assert!(equivalent(&det.dfa, &min).is_none());
    }

    /// The `DtoN` choice function on random NFAs: the least accepting
    /// trace is valid, yields the input, and the weak-equivalence
    /// transformers produce validated trees.
    #[test]
    fn dton_choice_function(
        seed in 0u64..200,
        states in 2usize..6,
        w in arb_string(5),
    ) {
        let sigma = Alphabet::abc();
        let nfa = random_nfa(&sigma, states, 1.5, seed);
        prop_assume!(nfa.accepts(&w));
        let trace = least_accepting_trace(&nfa, &w);
        prop_assert!(trace.is_valid_from(&nfa, nfa.init()));
        prop_assert_eq!(trace.yield_string(&nfa), w.clone());

        let det = determinize(&nfa);
        let eq = trace_weak_equiv(&nfa, &det);
        let ntg = nfa.trace_grammar();
        let nt = trace.to_parse_tree(&nfa, &ntg, nfa.init());
        let dt = eq.fwd.apply_checked(&nt).expect("NtoD total on traces");
        let dtg = det.dfa.trace_grammar();
        validate(&dt, &dtg.trace(det.dfa.init(), true), &w).expect("DFA trace validates");
        let back = eq.bwd.apply_checked(&dt).expect("DtoN total on accepting traces");
        // DtoN picks the least trace, which is what we started from.
        prop_assert_eq!(back, nt);
    }
}
