//! Property suite for the self-hosted grammar frontend. Four
//! contracts:
//!
//! 1. **Round-trip**: pretty-printing a parsed spec and re-parsing it
//!    reproduces the same AST (modulo spans), and pretty-printing is
//!    idempotent — the canonical form is a fixed point.
//! 2. **Structural cache sharing**: textually different but
//!    structurally equal submissions compile to the *same* cached
//!    pipeline (`Arc` identity), because the cache key is interned
//!    from the elaborated spec's content, not the source text.
//! 3. **Diagnostic spans**: every elaboration error variant carries an
//!    in-bounds source span and a 1-based line/column.
//! 4. **Differential equivalence**: a pipeline compiled from grammar
//!    *text* is observationally identical to the equivalent Rust-built
//!    pipeline — accept/reject parity and isomorphic parse trees
//!    (compared through token-name translation) on the arithmetic and
//!    JSON-subset grammars, over random inputs that include unlexable
//!    and ill-formed ones.

use std::sync::OnceLock;

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lambekd::cfg::grammar::{Cfg, GSym};
use lambekd::core::grammar::parse_tree::ParseTree;
use lambekd::engine::{Engine, FrontendErrorKind, FrontendReport, PipelineSpec, StrOutcome};
use lambekd::frontend::surface::ast_eq_modulo_spans;
use lambekd::frontend::{compile_text, parse_text, pretty, Budgets};

// ---------------------------------------------------------------------
// 1. Pretty-print round-trip on randomly generated specs
// ---------------------------------------------------------------------

/// Emits a random identifier.
fn gen_ident(rng: &mut StdRng) -> String {
    let len = rng.gen_range(1..5);
    (0..len)
        .map(|i| {
            let c = char::from(b'a' + rng.gen_range(0u8..26));
            if i == 0 && rng.gen_bool(0.3) {
                c.to_ascii_uppercase()
            } else {
                c
            }
        })
        .collect()
}

/// Emits a random literal body (printable, quote-free for simplicity;
/// escapes are covered by the preset round-trip).
fn gen_literal(rng: &mut StdRng) -> String {
    let len = rng.gen_range(1..4);
    let pool = "abcxyz+-*/<>=!0123456789";
    let pool: Vec<char> = pool.chars().collect();
    (0..len)
        .map(|_| pool[rng.gen_range(0..pool.len())])
        .collect()
}

/// Emits a random surface regex, as text.
fn gen_regex(rng: &mut StdRng, depth: usize) -> String {
    let choice = if depth == 0 {
        rng.gen_range(0..2)
    } else {
        rng.gen_range(0..6)
    };
    match choice {
        0 => format!("'{}'", gen_literal(rng)),
        1 => {
            let classes = ["[a-z]", "[0-9]", "[abc]", "[A-Za-z_]", "[ \\t]"];
            classes[rng.gen_range(0..classes.len())].to_string()
        }
        2 => format!(
            "{} | {}",
            gen_regex(rng, depth - 1),
            gen_regex(rng, depth - 1)
        ),
        3 => format!(
            "{} {}",
            gen_regex(rng, depth - 1),
            gen_regex(rng, depth - 1)
        ),
        4 => {
            let op = ["*", "+", "?"][rng.gen_range(0usize..3)];
            format!("( {} ){}", gen_regex(rng, depth - 1), op)
        }
        _ => format!("( {} )", gen_regex(rng, depth - 1)),
    }
}

/// Emits a random syntactically valid spec text: token/skip/start/
/// alphabet declarations and rules whose productions reference random
/// identifiers and literals. Validity is *syntactic* — elaboration may
/// reject it, but the bootstrap parser must accept it, which is all the
/// round-trip property needs.
fn gen_spec_text(rng: &mut StdRng) -> String {
    let mut out = String::new();
    if rng.gen_bool(0.3) {
        out.push_str("alphabet [ -~] ;\n");
    }
    for _ in 0..rng.gen_range(1..4) {
        let kw = if rng.gen_bool(0.8) { "token" } else { "skip" };
        out.push_str(&format!(
            "{kw} {} = {} ;\n",
            gen_ident(rng),
            gen_regex(rng, 2)
        ));
    }
    if rng.gen_bool(0.4) {
        out.push_str(&format!("start {} ;\n", gen_ident(rng)));
    }
    for _ in 0..rng.gen_range(1..4) {
        let alts: Vec<String> = (0..rng.gen_range(1..4))
            .map(|_| {
                let syms: Vec<String> = (0..rng.gen_range(0..4))
                    .map(|_| {
                        if rng.gen_bool(0.5) {
                            gen_ident(rng)
                        } else {
                            format!("'{}'", gen_literal(rng))
                        }
                    })
                    .collect();
                syms.join(" ")
            })
            .collect();
        out.push_str(&format!("{} ::= {} ;\n", gen_ident(rng), alts.join(" | ")));
    }
    out
}

// ---------------------------------------------------------------------
// 4. Differential equivalence helpers
// ---------------------------------------------------------------------

/// Serializes a derivation tree to a canonical s-expression over
/// nonterminal names, alternative indices and (renamed) token names —
/// the isomorphism witness two structurally mirrored grammars are
/// compared through.
fn shape(cfg: &Cfg, nt: usize, tree: &ParseTree, rename: &dyn Fn(&str) -> String) -> String {
    let ParseTree::Roll(inner) = tree else {
        panic!("expected Roll at {}", cfg.name(nt));
    };
    let ParseTree::Inj { index, tree: body } = &**inner else {
        panic!("expected Inj at {}", cfg.name(nt));
    };
    let rhs = &cfg.alternatives(nt)[*index].rhs;
    let mut kids: Vec<&ParseTree> = Vec::with_capacity(rhs.len());
    let mut cur: &ParseTree = body;
    for i in 0..rhs.len() {
        if i + 1 == rhs.len() {
            kids.push(cur);
        } else {
            let ParseTree::Pair(l, r) = cur else {
                panic!("expected Pair at {}", cfg.name(nt));
            };
            kids.push(l);
            cur = r;
        }
    }
    let mut out = format!("({}:{}", cfg.name(nt), index);
    for (sym, kid) in rhs.iter().zip(kids) {
        out.push(' ');
        match sym {
            GSym::T(s) => {
                assert!(matches!(kid, ParseTree::Char(c) if c == s), "leaf mismatch");
                out.push_str(&rename(cfg.alphabet().name(*s)));
            }
            GSym::N(n) => out.push_str(&shape(cfg, *n, kid, rename)),
        }
    }
    out.push(')');
    out
}

/// Strips the quotes a frontend implicit-literal token name carries
/// (`'{'` → `{`), so frontend and Rust-built token names align.
fn unquote(name: &str) -> String {
    if name.len() >= 2 && name.starts_with('\'') && name.ends_with('\'') {
        name[1..name.len() - 1].to_string()
    } else {
        name.to_string()
    }
}

/// Asserts the text-built and Rust-built pipelines agree on `input`:
/// same verdict, and for accepts the same tree shape modulo token
/// naming.
fn assert_pipelines_agree(
    text_pipeline: &lambekd::engine::PipelineHandle,
    rust_pipeline: &std::sync::Arc<lambekd::engine::CompiledPipeline>,
    input: &str,
) -> Result<(), TestCaseError> {
    let tb = text_pipeline.pipeline.lexed_backend().expect("lexed");
    let rb = rust_pipeline.lexed_backend().expect("lexed");
    let to = tb.parse_str(input).expect("certified parse");
    let ro = rb.parse_str(input).expect("certified parse");
    prop_assert_eq!(
        to.is_accept(),
        ro.is_accept(),
        "verdict mismatch on {:?}",
        input
    );
    if let (StrOutcome::Accept { tree: tt, .. }, StrOutcome::Accept { tree: rt, .. }) = (&to, &ro) {
        let tcfg = tb.cfg_backend().cfg();
        let rcfg = rb.cfg_backend().cfg();
        let ts = shape(tcfg, tcfg.start(), tt, &unquote);
        let rs = shape(rcfg, rcfg.start(), rt, &|n| n.to_string());
        prop_assert_eq!(ts, rs, "tree mismatch on {:?}", input);
    }
    Ok(())
}

/// The arithmetic grammar as text, mirroring `arith_spec` +
/// `exp_cfg` (same alternative order, same token languages, same
/// character set).
const ARITH_TEXT: &str = "\
token NUM = [0-9]+ ;\n\
skip WS = ' '+ ;\n\
start Exp ;\n\
Exp ::= Atom | Atom '+' Exp ;\n\
Atom ::= NUM | '(' Exp ')' ;\n";

/// The JSON-subset grammar as text, mirroring `json_spec` + `json_cfg`
/// from `lambek_lex::demo` (same restricted STR/NUM token languages,
/// same character alphabet, same production order).
const JSON_TEXT: &str = "\
alphabet [ a-z0-9{}:,\"\\[\\]] ;\n\
token STR = '\"' [ a-z0-9]* '\"' ;\n\
token NUM = [0-9]+ ;\n\
skip WS = ' '+ ;\n\
start Value ;\n\
Value ::= STR | NUM | 'true' | 'false' | 'null' | Object | Array ;\n\
Object ::= '{' '}' | '{' Members '}' ;\n\
Members ::= Pair | Members ',' Pair ;\n\
Pair ::= STR ':' Value ;\n\
Array ::= '[' ']' | '[' Elements ']' ;\n\
Elements ::= Value | Elements ',' Value ;\n";

/// One engine for the whole differential suite: the meta pipeline and
/// the four compared pipelines are compiled once, not once per proptest
/// case — the cases only vary the *inputs*.
fn shared_engine() -> &'static Engine {
    static ENGINE: OnceLock<Engine> = OnceLock::new();
    ENGINE.get_or_init(Engine::new)
}

/// A random arithmetic input: mostly well-formed fragments, sometimes
/// garbage (unbalanced, unlexable, empty) — rejection parity matters as
/// much as acceptance parity.
fn random_arith(rng: &mut StdRng) -> String {
    let mut out = String::new();
    for _ in 0..rng.gen_range(0..12) {
        match rng.gen_range(0..8) {
            0 => out.push('('),
            1 => out.push(')'),
            2 => out.push('+'),
            3 => out.push(' '),
            4 if rng.gen_bool(0.2) => out.push('x'), // unlexable
            _ => out.push(char::from(b'0' + rng.gen_range(0u8..10))),
        }
    }
    out
}

/// A random JSON-subset value (well-formed with high probability).
fn random_json(rng: &mut StdRng, depth: usize) -> String {
    match if depth == 0 {
        rng.gen_range(0..5)
    } else {
        rng.gen_range(0..7)
    } {
        0 => "true".to_string(),
        1 => "false".to_string(),
        2 => "null".to_string(),
        3 => format!("{}", rng.gen_range(0..1000)),
        4 => {
            let len = rng.gen_range(0..6);
            let body: String = (0..len)
                .map(|_| {
                    let pool = b"abc xyz012";
                    char::from(pool[rng.gen_range(0..pool.len())])
                })
                .collect();
            format!("\"{body}\"")
        }
        5 => {
            let items: Vec<String> = (0..rng.gen_range(0..4))
                .map(|_| random_json(rng, depth - 1))
                .collect();
            format!("[{}]", items.join(", "))
        }
        _ => {
            let pairs: Vec<String> = (0..rng.gen_range(0..4))
                .map(|i| format!("\"k{i}\": {}", random_json(rng, depth - 1)))
                .collect();
            format!("{{{}}}", pairs.join(", "))
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Contract 1: parse → pretty → reparse is the identity modulo
    /// spans, and pretty is idempotent, on random generated specs.
    #[test]
    fn generated_specs_roundtrip_through_pretty(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let text = gen_spec_text(&mut rng);
        let ast = parse_text(&text)
            .unwrap_or_else(|e| panic!("generated spec must parse: {e}\n{text}"));
        let printed = pretty(&ast);
        let ast2 = parse_text(&printed)
            .unwrap_or_else(|e| panic!("pretty output must reparse: {e}\n{printed}"));
        prop_assert!(
            ast_eq_modulo_spans(&ast, &ast2),
            "round-trip changed the AST:\n--- source ---\n{}\n--- pretty ---\n{}",
            text,
            printed
        );
        prop_assert_eq!(pretty(&ast2), printed, "pretty is not idempotent");
    }

    /// Contract 4a: the text-built arithmetic pipeline is
    /// observationally identical to the Rust-built one.
    #[test]
    fn frontend_arith_equals_rust_built(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let engine = shared_engine();
        let text = engine.compile_text(ARITH_TEXT).expect("arith text compiles");
        let rust = engine
            .get_or_compile(&PipelineSpec::arith_lexed())
            .expect("demo arith compiles");
        for input in ["", "1", "(1 + 2) + 34", "((5))", "1 +", ")(", "1 x 2"] {
            assert_pipelines_agree(&text, &rust, input)?;
        }
        for _ in 0..8 {
            let input = random_arith(&mut rng);
            assert_pipelines_agree(&text, &rust, &input)?;
        }
    }

    /// Contract 4b: same for the JSON-subset pipeline.
    #[test]
    fn frontend_json_equals_rust_built(seed in 0u64..500) {
        let mut rng = StdRng::seed_from_u64(seed);
        let engine = shared_engine();
        let text = engine.compile_text(JSON_TEXT).expect("json text compiles");
        let rust = engine
            .get_or_compile(&PipelineSpec::json_lexed())
            .expect("demo json compiles");
        for input in [
            "",
            "true",
            r#"{"a": [1, {"b": null}], "c": "x y"}"#,
            r#"{"open": ["#,
            r#"[,]"#,
            "nul",
        ] {
            assert_pipelines_agree(&text, &rust, input)?;
        }
        for _ in 0..6 {
            let input = random_json(&mut rng, 3);
            assert_pipelines_agree(&text, &rust, &input)?;
        }
    }
}

// ---------------------------------------------------------------------
// 2. Structural cache sharing
// ---------------------------------------------------------------------

#[test]
fn structurally_equal_texts_share_one_cache_entry() {
    let engine = Engine::new();
    let first = engine.compile_text(ARITH_TEXT).expect("compiles");
    assert!(!first.cache_hit);
    // Same structure, different surface: comments, whitespace, rule
    // spacing — even the pretty-printed canonical form.
    let reworded = format!(
        "# the same grammar, reworded\n{}",
        ARITH_TEXT.replace(" ::= ", "  ::=  ")
    );
    let canonical = pretty(&parse_text(ARITH_TEXT).expect("parses"));
    let entries_before = engine.stats().entries;
    for text in [reworded.as_str(), canonical.as_str()] {
        let again = engine.compile_text(text).expect("compiles");
        assert!(again.cache_hit, "structurally equal text missed the cache");
        assert!(
            std::sync::Arc::ptr_eq(&first.pipeline, &again.pipeline),
            "cache hit returned a different pipeline"
        );
    }
    assert_eq!(
        engine.stats().entries,
        entries_before,
        "structurally equal submissions must not add cache entries"
    );
}

// ---------------------------------------------------------------------
// 3. Every elaboration error variant carries an in-bounds span
// ---------------------------------------------------------------------

#[test]
fn every_error_variant_carries_an_inbounds_span() {
    use std::mem::discriminant as tag;
    let cases: Vec<(&str, FrontendErrorKind)> = vec![
        (
            "token = ;",
            FrontendErrorKind::Syntax {
                message: String::new(),
            },
        ),
        (
            "token A = 'a' ;\nS ::= B ;",
            FrontendErrorKind::UndefinedSymbol {
                name: String::new(),
            },
        ),
        (
            "token A = 'a' ;\nstart T ;\nS ::= A ;",
            FrontendErrorKind::UndefinedStart {
                name: String::new(),
            },
        ),
        (
            "token A = 'a' ;\nS ::= A ;\nS ::= A A ;",
            FrontendErrorKind::DuplicateRule {
                name: String::new(),
            },
        ),
        (
            "token A = 'a' ;\ntoken A = 'b' ;\nS ::= A ;",
            FrontendErrorKind::DuplicateToken {
                name: String::new(),
            },
        ),
        (
            "token A = 'a' ;\nstart S ;\nstart S ;\nS ::= A ;",
            FrontendErrorKind::DuplicateStart,
        ),
        (
            "alphabet [ab] ;\nalphabet [cd] ;\ntoken A = 'a' ;\nS ::= A ;",
            FrontendErrorKind::DuplicateAlphabet,
        ),
        (
            "token S = 'a' ;\nS ::= S ;",
            FrontendErrorKind::TokenNonterminalClash {
                name: String::new(),
            },
        ),
        (
            "skip W = ' ' ;\ntoken A = 'a' ;\nS ::= W ;",
            FrontendErrorKind::SkipReferenced {
                name: String::new(),
            },
        ),
        (
            "token A = 'a'* ;\nS ::= A ;",
            FrontendErrorKind::NullableToken {
                name: String::new(),
            },
        ),
        (
            "token A = 'a' ;\nS ::= '' ;",
            FrontendErrorKind::EmptyLiteral,
        ),
        (
            "token A = [] ;\ntoken B = 'b' ;\nS ::= A B ;",
            FrontendErrorKind::EmptyClass,
        ),
        (
            "token A = [z-a] ;\nS ::= A ;",
            FrontendErrorKind::BadClassRange { lo: ' ', hi: ' ' },
        ),
        (
            "token A = '\\d' ;\nS ::= A ;",
            FrontendErrorKind::BadEscape { escape: ' ' },
        ),
        (
            "token A = [^a]+ ;\nS ::= A ;",
            FrontendErrorKind::NegatedClassNeedsAlphabet,
        ),
        (
            "alphabet [^a] ;\ntoken A = 'a' ;\nS ::= A ;",
            FrontendErrorKind::AlphabetNegated,
        ),
        (
            "alphabet [ab] ;\ntoken A = 'c' ;\nS ::= A ;",
            FrontendErrorKind::CharOutsideAlphabet { ch: ' ' },
        ),
        ("skip W = ' ' ;\nS ::= ;", FrontendErrorKind::NoTokenRules),
        ("token A = 'a' ;", FrontendErrorKind::NoRules),
    ];
    for (text, expected) in cases {
        let report = compile_text(text, &Budgets::default())
            .err()
            .unwrap_or_else(|| panic!("{text:?} must be rejected"));
        let FrontendReport::Errors(errors) = report else {
            panic!("{text:?}: expected diagnostics, got {report}");
        };
        let hit = errors
            .iter()
            .find(|e| tag(&e.kind) == tag(&expected))
            .unwrap_or_else(|| panic!("{text:?}: no {expected:?} among {errors:?}"));
        assert!(hit.span.start <= hit.span.end, "{text:?}: reversed span");
        assert!(
            hit.span.end <= text.len(),
            "{text:?}: span {:?} out of bounds",
            hit.span
        );
        assert!(hit.line >= 1 && hit.col >= 1, "{text:?}: bad line/col");
    }
}
