//! Random and adversarial automaton generators for tests and benchmarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lambek_core::alphabet::{Alphabet, GString, Symbol};

use crate::dfa::Dfa;
use crate::nfa::Nfa;

/// A random DFA with `num_states` states over `alphabet`, each state
/// accepting with probability 1/2, transitions uniform.
pub fn random_dfa(alphabet: &Alphabet, num_states: usize, seed: u64) -> Dfa {
    let mut rng = StdRng::seed_from_u64(seed);
    let accepting = (0..num_states).map(|_| rng.gen_bool(0.5)).collect();
    let delta = (0..num_states)
        .map(|_| {
            (0..alphabet.len())
                .map(|_| rng.gen_range(0..num_states))
                .collect()
        })
        .collect();
    Dfa::new(alphabet.clone(), 0, accepting, delta)
}

/// A random NFA: `num_states` states, about `density` labeled transitions
/// per state and a sprinkling of ε-transitions.
pub fn random_nfa(alphabet: &Alphabet, num_states: usize, density: f64, seed: u64) -> Nfa {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nfa = Nfa::new(alphabet.clone(), num_states, 0);
    for s in 0..num_states {
        nfa.set_accepting(s, rng.gen_bool(0.3));
        let fanout = (density.max(0.0) * 2.0 * rng.gen::<f64>()).round() as usize;
        for _ in 0..fanout.max(1) {
            let label = Symbol::from_index(rng.gen_range(0..alphabet.len()));
            let dst = rng.gen_range(0..num_states);
            nfa.add_transition(s, label, dst);
        }
        if rng.gen_bool(0.25) {
            let dst = rng.gen_range(0..num_states);
            if dst != s {
                nfa.add_eps(s, dst);
            }
        }
    }
    // Guarantee at least one accepting state so traces exist.
    if (0..num_states).all(|s| !nfa.is_accepting(s)) {
        nfa.set_accepting(num_states - 1, true);
    }
    nfa
}

/// The classic exponential-blowup family: an NFA for `(a|b)* a (a|b)^k`
/// whose minimal DFA needs `2^(k+1)` states (Construction 4.10's
/// worst-case shape).
pub fn blowup_nfa(k: usize) -> Nfa {
    let sigma = Alphabet::from_chars("ab");
    let a = sigma.symbol("a").expect("a");
    let b = sigma.symbol("b").expect("b");
    // States: 0 (loop) then 1..=k+1 suffix chain; k+1 accepting.
    let mut nfa = Nfa::new(sigma, k + 2, 0);
    nfa.add_transition(0, a, 0);
    nfa.add_transition(0, b, 0);
    nfa.add_transition(0, a, 1);
    for i in 1..=k {
        nfa.add_transition(i, a, i + 1);
        nfa.add_transition(i, b, i + 1);
    }
    nfa.set_accepting(k + 1, true);
    nfa
}

/// A random string of exactly `len` symbols.
pub fn random_string(alphabet: &Alphabet, len: usize, seed: u64) -> GString {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..len)
        .map(|_| Symbol::from_index(rng.gen_range(0..alphabet.len())))
        .collect()
}

/// A random balanced-parenthesis string with `pairs` pairs (uniform over
/// push/pop choices subject to validity).
pub fn random_dyck(pairs: usize, seed: u64) -> GString {
    let sigma = Alphabet::parens();
    let open = sigma.symbol("(").expect("(");
    let close = sigma.symbol(")").expect(")");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = GString::new();
    let (mut opened, mut closed) = (0usize, 0usize);
    while closed < pairs {
        let can_open = opened < pairs;
        let can_close = closed < opened;
        let do_open = match (can_open, can_close) {
            (true, true) => rng.gen_bool(0.5),
            (true, false) => true,
            (false, true) => false,
            (false, false) => unreachable!("closed < pairs implies a move exists"),
        };
        if do_open {
            w.push(open);
            opened += 1;
        } else {
            w.push(close);
            closed += 1;
        }
    }
    w
}

/// A random arithmetic token string that the Fig. 15 machine accepts:
/// a well-formed right-associated expression with `atoms` atoms and
/// random parenthesization up to `depth`.
pub fn random_arith(atoms: usize, depth: usize, seed: u64) -> GString {
    let t = crate::lookahead::ArithTokens::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut w = GString::new();
    emit_expr(&t, &mut rng, &mut w, atoms.max(1), depth);
    w
}

fn emit_expr(
    t: &crate::lookahead::ArithTokens,
    rng: &mut StdRng,
    w: &mut GString,
    atoms: usize,
    depth: usize,
) {
    if atoms <= 1 {
        emit_atom(t, rng, w, depth);
    } else {
        emit_atom(t, rng, w, depth);
        w.push(t.add);
        emit_expr(t, rng, w, atoms - 1, depth);
    }
}

fn emit_atom(t: &crate::lookahead::ArithTokens, rng: &mut StdRng, w: &mut GString, depth: usize) {
    if depth > 0 && rng.gen_bool(0.4) {
        w.push(t.lp);
        let inner_atoms = rng.gen_range(1..=2);
        emit_expr(t, rng, w, inner_atoms, depth - 1);
        w.push(t.rp);
    } else {
        w.push(t.num);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::counter::CounterMachine;
    use crate::determinize::determinize;
    use crate::lookahead::{simulate, ArithTokens};
    use crate::minimize::minimize;

    #[test]
    fn blowup_family_has_exponential_dfa() {
        for k in 1..5 {
            let nfa = blowup_nfa(k);
            let det = determinize(&nfa);
            let min = minimize(&det.dfa);
            assert!(
                min.num_states() >= 1 << (k + 1),
                "k={k}: {} states",
                min.num_states()
            );
        }
    }

    #[test]
    fn random_dfa_and_nfa_are_well_formed() {
        let sigma = Alphabet::abc();
        let dfa = random_dfa(&sigma, 6, 1);
        assert_eq!(dfa.num_states(), 6);
        let nfa = random_nfa(&sigma, 6, 1.5, 2);
        assert!(nfa.transitions().len() >= 6);
        // Determinization of a random NFA must preserve the language.
        let det = determinize(&nfa);
        for seed in 0..20 {
            let w = random_string(&sigma, (seed % 6) as usize, seed);
            assert_eq!(nfa.accepts(&w), det.dfa.accepts(&w), "{w}");
        }
    }

    #[test]
    fn random_dyck_is_balanced() {
        let m = CounterMachine::new();
        for seed in 0..10 {
            let w = random_dyck(8, seed);
            assert_eq!(w.len(), 16);
            assert!(m.accepts(&w), "{w}");
        }
    }

    #[test]
    fn random_arith_is_accepted() {
        let t = ArithTokens::new();
        for seed in 0..10 {
            let w = random_arith(4, 3, seed);
            assert!(simulate(&t, &w), "{w}");
        }
    }
}
