//! Boolean operations on DFAs: complement, intersection, union.
//!
//! These give the standard constructions behind Definition 4.5's
//! *disjointness*: the complement automaton recognizes exactly the
//! negative language (so `TraceD(·, false)` of a DFA *is* the complement's
//! accepting-trace grammar), and the intersection DFA decides whether two
//! regular grammars share a string — an executable disjointness oracle
//! for the regular fragment, used by the test suite as an independent
//! cross-check of `check_disjoint`.

use lambek_core::alphabet::Alphabet;

use crate::dfa::Dfa;
use crate::nfa::StateId;

/// The complement DFA: accepts exactly the strings `dfa` rejects.
pub fn complement(dfa: &Dfa) -> Dfa {
    let alphabet = dfa.alphabet().clone();
    let accepting = (0..dfa.num_states())
        .map(|s| !dfa.is_accepting(s))
        .collect();
    let delta = (0..dfa.num_states())
        .map(|s| alphabet.symbols().map(|c| dfa.delta(s, c)).collect())
        .collect();
    Dfa::new(alphabet, dfa.init(), accepting, delta)
}

/// How to combine acceptance bits in a product automaton.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BoolOp {
    /// Accept when both accept.
    And,
    /// Accept when either accepts.
    Or,
    /// Accept when exactly one accepts (symmetric difference —
    /// the language-equivalence test's acceptance condition).
    Xor,
}

/// The product DFA of `a` and `b` under `op`.
///
/// # Panics
///
/// Panics if the alphabets differ.
pub fn product(a: &Dfa, b: &Dfa, op: BoolOp) -> Dfa {
    assert_eq!(a.alphabet(), b.alphabet(), "alphabets must agree");
    let alphabet: Alphabet = a.alphabet().clone();
    let (na, nb) = (a.num_states(), b.num_states());
    let id = |sa: StateId, sb: StateId| sa * nb + sb;
    let mut accepting = Vec::with_capacity(na * nb);
    let mut delta = Vec::with_capacity(na * nb);
    for sa in 0..na {
        for sb in 0..nb {
            let (ba, bb) = (a.is_accepting(sa), b.is_accepting(sb));
            accepting.push(match op {
                BoolOp::And => ba && bb,
                BoolOp::Or => ba || bb,
                BoolOp::Xor => ba != bb,
            });
            delta.push(
                alphabet
                    .symbols()
                    .map(|c| id(a.delta(sa, c), b.delta(sb, c)))
                    .collect(),
            );
        }
    }
    Dfa::new(alphabet, id(a.init(), b.init()), accepting, delta)
}

/// Intersection: accepts strings in both languages.
pub fn intersection(a: &Dfa, b: &Dfa) -> Dfa {
    product(a, b, BoolOp::And)
}

/// Union: accepts strings in either language.
pub fn union(a: &Dfa, b: &Dfa) -> Dfa {
    product(a, b, BoolOp::Or)
}

/// Whether the DFA's language is empty (no accepting state reachable).
pub fn is_empty(dfa: &Dfa) -> bool {
    let mut reached = vec![false; dfa.num_states()];
    let mut stack = vec![dfa.init()];
    reached[dfa.init()] = true;
    while let Some(s) = stack.pop() {
        if dfa.is_accepting(s) {
            return false;
        }
        for c in dfa.alphabet().symbols() {
            let t = dfa.delta(s, c);
            if !reached[t] {
                reached[t] = true;
                stack.push(t);
            }
        }
    }
    true
}

/// An exact disjointness oracle for regular grammars (Definition 4.5):
/// `true` iff no string is accepted by both automata.
pub fn disjoint(a: &Dfa, b: &Dfa) -> bool {
    is_empty(&intersection(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::fig5_dfa;
    use crate::equiv::equivalent;
    use lambek_core::theory::unambiguous::all_strings;

    #[test]
    fn complement_flips_membership() {
        let dfa = fig5_dfa();
        let comp = complement(&dfa);
        let s = dfa.alphabet().clone();
        for w in all_strings(&s, 4) {
            assert_eq!(dfa.accepts(&w), !comp.accepts(&w), "{w}");
        }
        // Complement is an involution up to equivalence.
        assert_eq!(equivalent(&dfa, &complement(&comp)), None);
    }

    #[test]
    fn product_operations() {
        let dfa = fig5_dfa();
        let comp = complement(&dfa);
        let s = dfa.alphabet().clone();
        let inter = intersection(&dfa, &comp);
        let uni = union(&dfa, &comp);
        for w in all_strings(&s, 4) {
            assert!(!inter.accepts(&w), "L ∩ L^c = ∅");
            assert!(uni.accepts(&w), "L ∪ L^c = Σ*");
        }
    }

    #[test]
    fn disjointness_oracle() {
        // A's accepting traces and its complement's are disjoint — the
        // exact regular-language form of Theorem 4.9's side condition.
        let dfa = fig5_dfa();
        let comp = complement(&dfa);
        assert!(disjoint(&dfa, &comp));
        assert!(!disjoint(&dfa, &dfa) || is_empty(&dfa));
    }

    #[test]
    fn oracle_agrees_with_semantic_disjointness() {
        use lambek_core::theory::unambiguous::check_disjoint;
        let dfa = fig5_dfa();
        let comp = complement(&dfa);
        let tg = dfa.trace_grammar();
        let ctg = comp.trace_grammar();
        // The grammars of accepting traces of D and of its complement are
        // disjoint both by the oracle and by exhaustive checking.
        assert!(disjoint(&dfa, &comp));
        check_disjoint(
            &tg.trace(dfa.init(), true),
            &ctg.trace(comp.init(), true),
            dfa.alphabet(),
            4,
        )
        .unwrap();
    }

    #[test]
    fn empty_language_detection() {
        let dfa = fig5_dfa();
        assert!(!is_empty(&dfa));
        let nothing = intersection(&dfa, &complement(&dfa));
        assert!(is_empty(&nothing));
    }
}
