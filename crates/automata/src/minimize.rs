//! DFA minimization by partition refinement (Moore's algorithm).
//!
//! An extension beyond the paper used by the experiment harness: minimizing
//! the determinized automaton before building its trace parser shrinks the
//! trace grammar, and comparing minimized sizes gives the canonical-form
//! check used by the DFA-equivalence tests.

use std::collections::HashMap;

use crate::dfa::Dfa;
use crate::nfa::StateId;

/// Removes states unreachable from the initial state.
pub fn trim(dfa: &Dfa) -> Dfa {
    let alphabet = dfa.alphabet().clone();
    let mut reached: Vec<bool> = vec![false; dfa.num_states()];
    let mut stack = vec![dfa.init()];
    reached[dfa.init()] = true;
    while let Some(s) = stack.pop() {
        for c in alphabet.symbols() {
            let t = dfa.delta(s, c);
            if !reached[t] {
                reached[t] = true;
                stack.push(t);
            }
        }
    }
    let mut remap: Vec<Option<StateId>> = vec![None; dfa.num_states()];
    let mut next = 0;
    for (s, &r) in reached.iter().enumerate() {
        if r {
            remap[s] = Some(next);
            next += 1;
        }
    }
    let mut accepting = Vec::with_capacity(next);
    let mut tags = Vec::with_capacity(next);
    let mut delta = Vec::with_capacity(next);
    for s in 0..dfa.num_states() {
        if remap[s].is_none() {
            continue;
        }
        accepting.push(dfa.is_accepting(s));
        tags.push(dfa.accept_tag(s));
        delta.push(
            alphabet
                .symbols()
                .map(|c| remap[dfa.delta(s, c)].expect("successor of reachable is reachable"))
                .collect(),
        );
    }
    Dfa::new(
        alphabet,
        remap[dfa.init()].expect("init is reachable"),
        accepting,
        delta,
    )
    .with_tags(tags)
}

/// Minimizes a DFA: trims unreachable states, then merges
/// behaviour-equivalent states by iterated partition refinement.
///
/// Accept *tags* (the lexing layer's rule priorities) refine the
/// initial partition: two states merge only if they agree on both the
/// accept bit and the tag, so minimization can never collapse a
/// higher-priority rule's accept state into a lower-priority one.
pub fn minimize(dfa: &Dfa) -> Dfa {
    let dfa = trim(dfa);
    let alphabet = dfa.alphabet().clone();
    let n = dfa.num_states();
    // Initial partition: accepting vs rejecting, refined by accept tag.
    let mut seed: HashMap<(bool, Option<usize>), usize> = HashMap::new();
    let mut class: Vec<usize> = (0..n)
        .map(|s| {
            let key = (dfa.is_accepting(s), dfa.accept_tag(s));
            let fresh = seed.len();
            *seed.entry(key).or_insert(fresh)
        })
        .collect();
    loop {
        // Signature of a state: (class, classes of successors).
        let mut sig_index: HashMap<(usize, Vec<usize>), usize> = HashMap::new();
        let mut next_class = vec![0; n];
        for s in 0..n {
            let sig = (
                class[s],
                alphabet
                    .symbols()
                    .map(|c| class[dfa.delta(s, c)])
                    .collect::<Vec<_>>(),
            );
            let fresh = sig_index.len();
            next_class[s] = *sig_index.entry(sig).or_insert(fresh);
        }
        if next_class == class {
            break;
        }
        class = next_class;
    }
    let num_classes = class.iter().max().map_or(0, |&m| m + 1);
    // One representative per class.
    let mut rep: Vec<Option<StateId>> = vec![None; num_classes];
    for s in 0..n {
        rep[class[s]].get_or_insert(s);
    }
    let accepting: Vec<bool> = rep
        .iter()
        .map(|r| dfa.is_accepting(r.expect("every class has a member")))
        .collect();
    // Every member of a class shares the representative's tag: tags seed
    // the initial partition and refinement only ever splits classes.
    let tags: Vec<Option<usize>> = rep
        .iter()
        .map(|r| dfa.accept_tag(r.expect("every class has a member")))
        .collect();
    let delta: Vec<Vec<StateId>> = rep
        .iter()
        .map(|r| {
            let s = r.expect("every class has a member");
            alphabet.symbols().map(|c| class[dfa.delta(s, c)]).collect()
        })
        .collect();
    Dfa::new(alphabet, class[dfa.init()], accepting, delta).with_tags(tags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::fig5_dfa;
    use crate::equiv::equivalent;
    use lambek_core::alphabet::Alphabet;
    use lambek_core::theory::unambiguous::all_strings;

    #[test]
    fn minimize_preserves_language() {
        let dfa = fig5_dfa();
        let min = minimize(&dfa);
        let s = dfa.alphabet().clone();
        for w in all_strings(&s, 5) {
            assert_eq!(dfa.accepts(&w), min.accepts(&w), "{w}");
        }
        assert!(min.num_states() <= dfa.num_states());
    }

    #[test]
    fn redundant_states_are_merged() {
        // Two interchangeable accepting states.
        let sigma = Alphabet::from_chars("a");
        let a_row = |t: StateId| vec![t];
        let dfa = Dfa::new(
            sigma,
            0,
            vec![false, true, true],
            vec![a_row(1), a_row(2), a_row(1)],
        );
        let min = minimize(&dfa);
        assert_eq!(min.num_states(), 2);
        assert!(equivalent(&dfa, &min).is_none());
    }

    #[test]
    fn trim_drops_unreachable() {
        let sigma = Alphabet::from_chars("a");
        // State 2 unreachable.
        let dfa = Dfa::new(
            sigma,
            0,
            vec![false, true, true],
            vec![vec![1], vec![0], vec![2]],
        );
        let t = trim(&dfa);
        assert_eq!(t.num_states(), 2);
    }
}
