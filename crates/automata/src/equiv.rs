//! DFA language-equivalence checking via product exploration.
//!
//! Used by the experiment harness to cross-check independently built
//! automata (e.g. the hand-rolled Fig. 5 DFA against the determinized
//! Thompson NFA). Returns a shortest counterexample when the languages
//! differ.

use std::collections::{HashMap, VecDeque};

use lambek_core::alphabet::GString;

use crate::dfa::Dfa;
use crate::nfa::StateId;

/// Checks whether two DFAs over the same alphabet accept the same
/// language. Returns `None` if equivalent, or `Some(w)` with a shortest
/// distinguishing string.
///
/// # Panics
///
/// Panics if the alphabets differ.
pub fn equivalent(a: &Dfa, b: &Dfa) -> Option<GString> {
    assert_eq!(a.alphabet(), b.alphabet(), "alphabets must agree");
    let alphabet = a.alphabet().clone();
    let start = (a.init(), b.init());
    let mut parent: HashMap<
        (StateId, StateId),
        ((StateId, StateId), lambek_core::alphabet::Symbol),
    > = HashMap::new();
    let mut seen = std::collections::HashSet::from([start]);
    let mut queue = VecDeque::from([start]);
    while let Some((sa, sb)) = queue.pop_front() {
        if a.is_accepting(sa) != b.is_accepting(sb) {
            // Rebuild the path.
            let mut w = Vec::new();
            let mut cur = (sa, sb);
            while cur != start {
                let (prev, sym) = parent[&cur];
                w.push(sym);
                cur = prev;
            }
            w.reverse();
            return Some(GString::from_symbols(w));
        }
        for c in alphabet.symbols() {
            let next = (a.delta(sa, c), b.delta(sb, c));
            if seen.insert(next) {
                parent.insert(next, ((sa, sb), c));
                queue.push_back(next);
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::determinize::determinize;
    use crate::dfa::fig5_dfa;
    use crate::minimize::minimize;
    use crate::nfa::fig5_nfa;

    #[test]
    fn fig5_dfa_equals_determinized_fig5_nfa() {
        let dfa = fig5_dfa();
        let (nfa, _) = fig5_nfa();
        let det = determinize(&nfa);
        assert_eq!(equivalent(&dfa, &det.dfa), None);
    }

    #[test]
    fn different_languages_yield_shortest_counterexample() {
        let dfa = fig5_dfa();
        let mut accepting = vec![false; dfa.num_states()];
        accepting[0] = true; // now accepts ε too
        let other = Dfa::new(
            dfa.alphabet().clone(),
            dfa.init(),
            accepting,
            (0..dfa.num_states())
                .map(|s| dfa.alphabet().symbols().map(|c| dfa.delta(s, c)).collect())
                .collect(),
        );
        let w = equivalent(&dfa, &other).expect("languages differ");
        assert!(w.len() <= 1, "shortest counterexample expected");
    }

    #[test]
    fn minimization_is_equivalence_preserving() {
        let dfa = fig5_dfa();
        assert_eq!(equivalent(&dfa, &minimize(&dfa)), None);
    }
}
