//! The one-token-lookahead automaton for arithmetic expressions (Fig. 15).
//!
//! Four state kinds, each carrying a natural-number paren count `n` and a
//! success bit `b`:
//!
//! * `O` ("opening") expects `(` (push) or `NUM`;
//! * `D` ("done opening") *looks ahead*: a `)` next routes to `C`,
//!   anything else to `A` — the place where Axiom 3.1 (distributivity)
//!   is needed to turn lookahead information into a sum;
//! * `C` ("closing") consumes `)` and pops;
//! * `A` ("adding") accepts at count 0, or consumes `+` and returns to `O`.
//!
//! The trace type is an indexed inductive linear type over
//! `(kind, n, b)`; as with Fig. 14 we materialize the length-truncated
//! slice (counts `0..=max`), which is exact for inputs of length ≤ `max`.
//!
//! Two small corrections relative to the paper's Fig. 15, documented in
//! DESIGN.md §7 and EXPERIMENTS.md:
//!
//! * `NotStartsWithLP` (used by `O.unexpected`) excludes `NUM` — `NUM` is
//!   a *good* first token for `O` (the `num` constructor), and including
//!   it (as the paper's footnote 3 does) would make `⊕_b O n b`
//!   ambiguous;
//! * `closeBad` is `')' ⊗ ⊤` rather than bare `')'`, so that failing
//!   traces cover the entire remaining input (traces are linear: they
//!   must consume the whole string).

use std::sync::Arc;

use lambek_core::alphabet::{Alphabet, GString, Symbol};
use lambek_core::grammar::expr::{and, chr, eps, mu, plus, tensor, top, var, Grammar, MuSystem};
use lambek_core::grammar::parse_tree::ParseTree;
use lambek_core::grammar::string_type::string_grammar;
use lambek_core::theory::parser::VerifiedParser;
use lambek_core::transform::{TransformError, Transformer};

/// The four state kinds of Fig. 15.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateKind {
    /// Opening: expects `(` or `NUM`.
    O,
    /// Done opening: looks one token ahead.
    D,
    /// Closing: expects `)`.
    C,
    /// Adding: accepts (at count 0) or expects `+`.
    A,
}

impl StateKind {
    fn index(self) -> usize {
        match self {
            StateKind::O => 0,
            StateKind::D => 1,
            StateKind::C => 2,
            StateKind::A => 3,
        }
    }
}

/// The tokens of the arithmetic alphabet, resolved once.
#[derive(Debug, Clone)]
pub struct ArithTokens {
    /// The alphabet `{(, ), +, NUM}`.
    pub alphabet: Alphabet,
    /// `(`.
    pub lp: Symbol,
    /// `)`.
    pub rp: Symbol,
    /// `+`.
    pub add: Symbol,
    /// `NUM`.
    pub num: Symbol,
}

impl ArithTokens {
    /// Resolves the standard arithmetic alphabet.
    pub fn new() -> ArithTokens {
        let alphabet = Alphabet::arith();
        ArithTokens {
            lp: alphabet.symbol("(").expect("("),
            rp: alphabet.symbol(")").expect(")"),
            add: alphabet.symbol("+").expect("+"),
            num: alphabet.symbol("NUM").expect("NUM"),
            alphabet,
        }
    }
}

impl Default for ArithTokens {
    fn default() -> ArithTokens {
        ArithTokens::new()
    }
}

/// The truncated trace grammar of the lookahead automaton, with the
/// summand-layout conventions needed to build trace parse trees.
#[derive(Debug, Clone)]
pub struct LookaheadGrammar {
    /// One definition per `(kind, n, b)` with `n ≤ max`.
    pub system: Arc<MuSystem>,
    /// The truncation bound on the paren count.
    pub max: usize,
    /// Token table.
    pub tokens: ArithTokens,
}

/// `NotStartsWithLP` (corrected): `I ⊕ ((')' ⊕ '+') ⊗ ⊤)` — remainders on
/// which `O` must fail.
pub fn not_starts_with_lp(t: &ArithTokens) -> Grammar {
    plus(vec![
        eps(),
        tensor(plus(vec![chr(t.rp), chr(t.add)]), top()),
    ])
}

/// `NotStartsWithRP`: `I ⊕ (('(' ⊕ '+' ⊕ 'NUM') ⊗ ⊤)` — remainders that
/// do not begin with a close paren (footnote 3 of the paper).
pub fn not_starts_with_rp(t: &ArithTokens) -> Grammar {
    plus(vec![
        eps(),
        tensor(plus(vec![chr(t.lp), chr(t.add), chr(t.num)]), top()),
    ])
}

impl LookaheadGrammar {
    /// Builds the truncated trace grammar with counts `0..=max`.
    pub fn new(max: usize) -> LookaheadGrammar {
        let t = ArithTokens::new();
        let num_defs = 4 * (max + 1) * 2;
        let mut defs: Vec<Grammar> = Vec::with_capacity(num_defs);
        let mut names: Vec<String> = Vec::with_capacity(num_defs);
        for kind in [StateKind::O, StateKind::D, StateKind::C, StateKind::A] {
            for n in 0..=max {
                for b in [false, true] {
                    defs.push(Self::def_body(&t, max, kind, n, b));
                    names.push(format!("{kind:?}({n},{b})"));
                }
            }
        }
        LookaheadGrammar {
            system: MuSystem::new(defs, names),
            max,
            tokens: t,
        }
    }

    /// Index of definition `(kind, n, b)`.
    pub fn def_index(max: usize, kind: StateKind, n: usize, b: bool) -> usize {
        (kind.index() * (max + 1) + n) * 2 + usize::from(b)
    }

    fn v(max: usize, kind: StateKind, n: usize, b: bool) -> Grammar {
        var(Self::def_index(max, kind, n, b))
    }

    fn def_body(t: &ArithTokens, max: usize, kind: StateKind, n: usize, b: bool) -> Grammar {
        let mut summands: Vec<Grammar> = Vec::new();
        match kind {
            StateKind::O => {
                if n < max {
                    summands.push(tensor(chr(t.lp), Self::v(max, StateKind::O, n + 1, b)));
                }
                summands.push(tensor(chr(t.num), Self::v(max, StateKind::D, n, b)));
                if !b {
                    summands.push(not_starts_with_lp(t));
                }
            }
            StateKind::D => {
                summands.push(and(
                    tensor(chr(t.rp), top()),
                    Self::v(max, StateKind::C, n, b),
                ));
                summands.push(and(not_starts_with_rp(t), Self::v(max, StateKind::A, n, b)));
            }
            StateKind::C => {
                if n >= 1 {
                    summands.push(tensor(chr(t.rp), Self::v(max, StateKind::D, n - 1, b)));
                } else if !b {
                    // closeBad, widened to cover the rest of the input.
                    summands.push(tensor(chr(t.rp), top()));
                }
                if !b {
                    summands.push(not_starts_with_rp(t));
                }
            }
            StateKind::A => {
                if (n == 0) == b && (b || n > 0) {
                    // doneGood : A 0 true; doneBad : A (n+1) false.
                    summands.push(eps());
                }
                summands.push(tensor(chr(t.add), Self::v(max, StateKind::O, n, b)));
                if !b {
                    summands.push(tensor(plus(vec![chr(t.lp), chr(t.rp), chr(t.num)]), top()));
                }
            }
        }
        plus(summands)
    }

    /// The grammar of traces from `(kind, n, b)`.
    pub fn state(&self, kind: StateKind, n: usize, b: bool) -> Grammar {
        mu(self.system.clone(), Self::def_index(self.max, kind, n, b))
    }
}

/// Pure acceptance run of the (untruncated) machine from `O 0`.
pub fn simulate(t: &ArithTokens, w: &GString) -> bool {
    sim(t, w, StateKind::O, 0, 0)
}

fn sim(t: &ArithTokens, w: &GString, kind: StateKind, n: usize, pos: usize) -> bool {
    let tok = (pos < w.len()).then(|| w[pos]);
    match kind {
        StateKind::O => match tok {
            Some(c) if c == t.lp => sim(t, w, StateKind::O, n + 1, pos + 1),
            Some(c) if c == t.num => sim(t, w, StateKind::D, n, pos + 1),
            _ => false,
        },
        StateKind::D => match tok {
            Some(c) if c == t.rp => sim(t, w, StateKind::C, n, pos),
            _ => sim(t, w, StateKind::A, n, pos),
        },
        StateKind::C => match tok {
            Some(c) if c == t.rp && n >= 1 => sim(t, w, StateKind::D, n - 1, pos + 1),
            _ => false,
        },
        StateKind::A => match tok {
            None => n == 0,
            Some(c) if c == t.add => sim(t, w, StateKind::O, n, pos + 1),
            _ => false,
        },
    }
}

/// Builds the trace parse tree for `w` from `O 0 b` (where `b` is the
/// machine's verdict). Requires `w.len() <= lg.max`.
///
/// # Panics
///
/// Panics if `w` is longer than the truncation bound.
pub fn parse_lookahead(lg: &LookaheadGrammar, w: &GString) -> (bool, ParseTree) {
    assert!(
        w.len() <= lg.max,
        "input of length {} exceeds truncation bound {}",
        w.len(),
        lg.max
    );
    let b = simulate(&lg.tokens, w);
    let tree = build(lg, w, StateKind::O, 0, 0, b);
    (b, tree)
}

/// The suffix `w[pos..]` as a `⊤` parse.
fn rest_top(w: &GString, pos: usize) -> ParseTree {
    ParseTree::Top(w.substring(pos, w.len()))
}

/// Parse of `NotStartsWith…` at `w[pos..]`: `σ0 ()` for ε, otherwise
/// `σ1 (σ_tag tok, ⊤)` where `tag` indexes the token list.
fn not_starts_parse(w: &GString, pos: usize, token_order: &[Symbol]) -> ParseTree {
    if pos >= w.len() {
        ParseTree::inj(0, ParseTree::Unit)
    } else {
        let tok = w[pos];
        let tag = token_order
            .iter()
            .position(|&s| s == tok)
            .expect("token must be one of the excluded starters");
        ParseTree::inj(
            1,
            ParseTree::pair(
                ParseTree::inj(tag, ParseTree::Char(tok)),
                rest_top(w, pos + 1),
            ),
        )
    }
}

fn build(
    lg: &LookaheadGrammar,
    w: &GString,
    kind: StateKind,
    n: usize,
    pos: usize,
    b: bool,
) -> ParseTree {
    let t = &lg.tokens;
    let max = lg.max;
    let tok = (pos < w.len()).then(|| w[pos]);
    let tree = match kind {
        StateKind::O => {
            let has_left = n < max;
            match tok {
                Some(c) if c == t.lp => {
                    assert!(has_left, "count exceeded truncation bound");
                    ParseTree::inj(
                        0,
                        ParseTree::pair(
                            ParseTree::Char(c),
                            build(lg, w, StateKind::O, n + 1, pos + 1, b),
                        ),
                    )
                }
                Some(c) if c == t.num => ParseTree::inj(
                    usize::from(has_left),
                    ParseTree::pair(
                        ParseTree::Char(c),
                        build(lg, w, StateKind::D, n, pos + 1, b),
                    ),
                ),
                _ => {
                    debug_assert!(!b, "O must fail on {tok:?}");
                    ParseTree::inj(
                        usize::from(has_left) + 1,
                        not_starts_parse(w, pos, &[t.rp, t.add]),
                    )
                }
            }
        }
        StateKind::D => match tok {
            Some(c) if c == t.rp => ParseTree::inj(
                0,
                ParseTree::Tuple(vec![
                    ParseTree::pair(ParseTree::Char(c), rest_top(w, pos + 1)),
                    build(lg, w, StateKind::C, n, pos, b),
                ]),
            ),
            _ => ParseTree::inj(
                1,
                ParseTree::Tuple(vec![
                    not_starts_parse(w, pos, &[t.lp, t.add, t.num]),
                    build(lg, w, StateKind::A, n, pos, b),
                ]),
            ),
        },
        StateKind::C => match tok {
            Some(c) if c == t.rp && n >= 1 => ParseTree::inj(
                0,
                ParseTree::pair(
                    ParseTree::Char(c),
                    build(lg, w, StateKind::D, n - 1, pos + 1, b),
                ),
            ),
            Some(c) if c == t.rp => {
                debug_assert!(!b);
                // closeBad: ')' ⊗ ⊤.
                ParseTree::inj(0, ParseTree::pair(ParseTree::Char(c), rest_top(w, pos + 1)))
            }
            _ => {
                debug_assert!(!b);
                let idx = usize::from(n >= 1 || !b); // after closeGood/closeBad
                ParseTree::inj(idx, not_starts_parse(w, pos, &[t.lp, t.add, t.num]))
            }
        },
        StateKind::A => {
            let has_done = (n == 0) == b && (b || n > 0);
            match tok {
                None => {
                    debug_assert!(has_done, "A at ε must have a done constructor");
                    ParseTree::inj(0, ParseTree::Unit)
                }
                Some(c) if c == t.add => ParseTree::inj(
                    usize::from(has_done),
                    ParseTree::pair(
                        ParseTree::Char(c),
                        build(lg, w, StateKind::O, n, pos + 1, b),
                    ),
                ),
                Some(c) => {
                    debug_assert!(!b);
                    let tag = [t.lp, t.rp, t.num]
                        .iter()
                        .position(|&s| s == c)
                        .expect("unexpected token must be (, ) or NUM");
                    ParseTree::inj(
                        usize::from(has_done) + 1,
                        ParseTree::pair(
                            ParseTree::inj(tag, ParseTree::Char(c)),
                            rest_top(w, pos + 1),
                        ),
                    )
                }
            }
        }
    };
    ParseTree::roll(tree)
}

/// The verified parser of Theorem 4.14's substrate: grammar `O 0 true`,
/// negative grammar `O 0 false`, run function the lookahead machine.
/// Valid for inputs of length ≤ `max`.
pub fn lookahead_parser(max: usize) -> VerifiedParser {
    let lg = LookaheadGrammar::new(max);
    let target = lg.state(StateKind::O, 0, true);
    let negative = lg.state(StateKind::O, 0, false);
    let dom = string_grammar(&lg.tokens.alphabet);
    let cod = lambek_core::grammar::expr::alt(target.clone(), negative.clone());
    let alphabet = lg.tokens.alphabet.clone();
    let run = Transformer::from_fn("lookahead-parse", dom, cod, move |t| {
        let w = t.flatten();
        if w.len() > lg.max {
            return Err(TransformError::Custom(format!(
                "input of length {} exceeds truncation bound {}",
                w.len(),
                lg.max
            )));
        }
        let (b, tree) = parse_lookahead(&lg, &w);
        Ok(ParseTree::inj(usize::from(!b), tree))
    });
    VerifiedParser::new(alphabet, target, negative, run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambek_core::grammar::compile::CompiledGrammar;
    use lambek_core::grammar::expr::alt;
    use lambek_core::grammar::parse_tree::validate;
    use lambek_core::theory::unambiguous::{all_strings, check_unambiguous};

    fn parse_tokens(t: &ArithTokens, s: &str) -> GString {
        // Single-char rendering: n = NUM for compactness in tests.
        s.chars()
            .map(|c| match c {
                '(' => t.lp,
                ')' => t.rp,
                '+' => t.add,
                'n' => t.num,
                other => panic!("bad test token {other}"),
            })
            .collect()
    }

    #[test]
    fn machine_accepts_expressions() {
        let t = ArithTokens::new();
        for yes in ["n", "n+n", "(n)", "(n+n)+n", "((n))", "n+(n+n)"] {
            assert!(simulate(&t, &parse_tokens(&t, yes)), "{yes}");
        }
        for no in ["", "+", "n+", "()", "(n", "n)", "nn", "n++n", "(n+)"] {
            assert!(!simulate(&t, &parse_tokens(&t, no)), "{no}");
        }
    }

    #[test]
    fn traces_validate_and_yield_input() {
        let lg = LookaheadGrammar::new(8);
        let t = lg.tokens.clone();
        for s in ["n", "n+n", "(n)", "(n+n)+n", "", "+", "())", "(n+)n"] {
            let w = parse_tokens(&t, s);
            let (b, tree) = parse_lookahead(&lg, &w);
            assert_eq!(b, simulate(&t, &w), "{s}");
            validate(&tree, &lg.state(StateKind::O, 0, b), &w)
                .unwrap_or_else(|e| panic!("{s}: {e}"));
        }
    }

    #[test]
    fn trace_language_matches_machine() {
        let lg = LookaheadGrammar::new(4);
        let t = lg.tokens.clone();
        let cg_true = CompiledGrammar::new(&lg.state(StateKind::O, 0, true));
        let cg_false = CompiledGrammar::new(&lg.state(StateKind::O, 0, false));
        for w in all_strings(&t.alphabet, 4) {
            let b = simulate(&t, &w);
            assert_eq!(cg_true.recognizes(&w), b, "{w}");
            assert_eq!(cg_false.recognizes(&w), !b, "{w}");
        }
    }

    #[test]
    fn o_sum_is_unambiguous() {
        // ⊕_b O 0 b is unambiguous (the corrected partition; see module
        // docs) — the property Lemma 4.7 needs to conclude disjointness.
        let lg = LookaheadGrammar::new(3);
        let sum = alt(
            lg.state(StateKind::O, 0, true),
            lg.state(StateKind::O, 0, false),
        );
        check_unambiguous(&sum, &lg.tokens.alphabet, 3).unwrap();
    }

    #[test]
    fn theorem_4_14_parser_audits() {
        let p = lookahead_parser(3);
        p.audit_disjointness(3).unwrap();
        p.audit_against_recognizer(3).unwrap();
    }

    #[test]
    fn deep_nesting_within_bound() {
        let lg = LookaheadGrammar::new(12);
        let t = lg.tokens.clone();
        let w = parse_tokens(&t, "((((n))))");
        let (b, tree) = parse_lookahead(&lg, &w);
        assert!(b);
        validate(&tree, &lg.state(StateKind::O, 0, true), &w).unwrap();
    }
}
