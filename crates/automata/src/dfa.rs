//! Deterministic finite automata and their Bool-indexed traces (Fig. 11).
//!
//! A [`Dfa`] has a *total* transition function `δ : states × Σ → states`.
//! Its trace type `TraceD : (s : states) (b : Bool) → L` is indexed both
//! by the start state and by whether the trace is *accepting* — the key
//! trick of §4.1: the rejecting traces `TraceD s false` are exactly the
//! negative grammar a verified parser needs, with disjointness from the
//! accepting traces falling out of determinism (Theorem 4.9).

use lambek_core::alphabet::{Alphabet, GString, Symbol};
use lambek_core::grammar::expr::{chr, eps, mu, plus, tensor, var, Grammar, MuSystem};
use lambek_core::grammar::parse_tree::ParseTree;

use crate::nfa::StateId;

/// A deterministic finite automaton with a total transition function.
///
/// The transition table is stored *dense and flat*: one row-major
/// `Vec<StateId>` with stride `|Σ|`, so a step is a single multiply-add
/// and load with no per-row pointer chase and no hashing. This is the
/// table-driven representation the serving engine
/// (`lambekd::engine`) relies on for its hot paths.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dfa {
    alphabet: Alphabet,
    init: StateId,
    accepting: Vec<bool>,
    /// Optional accept *tag* per state — the lexing layer's "which token
    /// rule matched here". `Some(t)` implies the state accepts; smaller
    /// tags are higher priority (determinization resolves a subset
    /// containing several tagged NFA states to the minimum tag, and
    /// minimization only merges states with identical tags). Plain
    /// automata leave every entry `None`.
    tags: Vec<Option<usize>>,
    /// Row-major stride: number of symbols in the alphabet.
    stride: usize,
    /// `delta[s * stride + c.index()]` is the successor of `s` on `c`.
    delta: Vec<StateId>,
}

impl Dfa {
    /// Creates a DFA from its transition table (one row per state).
    ///
    /// # Panics
    ///
    /// Panics if the table is empty or ragged, a row's width differs from
    /// the alphabet size, any target is out of range, or `init` is out of
    /// range.
    pub fn new(
        alphabet: Alphabet,
        init: StateId,
        accepting: Vec<bool>,
        delta: Vec<Vec<StateId>>,
    ) -> Dfa {
        let n = delta.len();
        assert!(n > 0, "a DFA needs at least one state");
        assert_eq!(accepting.len(), n, "one accepting flag per state");
        assert!(init < n, "initial state out of range");
        let stride = alphabet.len();
        let mut flat = Vec::with_capacity(n * stride);
        for row in &delta {
            assert_eq!(row.len(), stride, "one successor per symbol");
            for &t in row {
                assert!(t < n, "transition target out of range");
            }
            flat.extend_from_slice(row);
        }
        let tags = vec![None; n];
        Dfa {
            alphabet,
            init,
            accepting,
            tags,
            stride,
            delta: flat,
        }
    }

    /// Creates a DFA directly from a flat row-major transition table of
    /// length `accepting.len() * alphabet.len()`.
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`Dfa::new`].
    pub fn from_flat(
        alphabet: Alphabet,
        init: StateId,
        accepting: Vec<bool>,
        delta: Vec<StateId>,
    ) -> Dfa {
        let n = accepting.len();
        let stride = alphabet.len();
        assert!(n > 0, "a DFA needs at least one state");
        assert_eq!(delta.len(), n * stride, "one successor per (state, symbol)");
        assert!(init < n, "initial state out of range");
        assert!(
            delta.iter().all(|&t| t < n),
            "transition target out of range"
        );
        let tags = vec![None; n];
        Dfa {
            alphabet,
            init,
            accepting,
            tags,
            stride,
            delta,
        }
    }

    /// Attaches an accept tag table (one optional tag per state),
    /// consuming and returning the DFA. Tags are how the lexing layer
    /// records *which* prioritized rule a state accepts for; see the
    /// field documentation for the priority convention.
    ///
    /// # Panics
    ///
    /// Panics if `tags` has the wrong length or tags a non-accepting
    /// state (a tag is a refinement of acceptance, never a replacement).
    pub fn with_tags(mut self, tags: Vec<Option<usize>>) -> Dfa {
        assert_eq!(tags.len(), self.num_states(), "one optional tag per state");
        for (s, t) in tags.iter().enumerate() {
            assert!(
                t.is_none() || self.accepting[s],
                "state {s} is tagged but not accepting"
            );
        }
        self.tags = tags;
        self
    }

    /// The accept tag of `state`, if any. `Some` implies
    /// [`Dfa::is_accepting`].
    #[inline]
    pub fn accept_tag(&self, state: StateId) -> Option<usize> {
        self.tags[state]
    }

    /// The full tag table (one entry per state).
    pub fn tags(&self) -> &[Option<usize>] {
        &self.tags
    }

    /// `true` if any state carries an accept tag.
    pub fn is_tagged(&self) -> bool {
        self.tags.iter().any(|t| t.is_some())
    }

    /// The input alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.accepting.len()
    }

    /// The initial state.
    pub fn init(&self) -> StateId {
        self.init
    }

    /// Whether `state` accepts.
    #[inline]
    pub fn is_accepting(&self, state: StateId) -> bool {
        self.accepting[state]
    }

    /// The transition function `δ(state, sym)`.
    ///
    /// `sym` must come from this DFA's alphabet: a foreign symbol with a
    /// larger index would land in a neighboring row of the flat table
    /// (caught by a debug assertion; mixing alphabets is a logic error
    /// per [`Symbol`]'s contract).
    #[inline]
    pub fn delta(&self, state: StateId, sym: Symbol) -> StateId {
        debug_assert!(sym.index() < self.stride, "symbol outside the alphabet");
        self.delta[state * self.stride + sym.index()]
    }

    /// The dense successor row of `state`: `row[c.index()]` is
    /// `δ(state, c)`.
    #[inline]
    pub fn delta_row(&self, state: StateId) -> &[StateId] {
        &self.delta[state * self.stride..(state + 1) * self.stride]
    }

    /// Runs the DFA from `start`, returning the full state sequence
    /// (length `|w| + 1`).
    pub fn run_from(&self, start: StateId, w: &GString) -> Vec<StateId> {
        let mut states = Vec::with_capacity(w.len() + 1);
        let mut s = start;
        states.push(s);
        for sym in w.iter() {
            debug_assert!(sym.index() < self.stride, "symbol outside the alphabet");
            s = self.delta[s * self.stride + sym.index()];
            states.push(s);
        }
        states
    }

    /// The state reached from `start` after consuming `w` (no state
    /// sequence is materialized — this is the allocation-free fast path).
    #[inline]
    pub fn final_state(&self, start: StateId, w: &GString) -> StateId {
        let mut s = start;
        for sym in w.iter() {
            debug_assert!(sym.index() < self.stride, "symbol outside the alphabet");
            s = self.delta[s * self.stride + sym.index()];
        }
        s
    }

    /// Whether the DFA accepts `w` from the initial state.
    pub fn accepts(&self, w: &GString) -> bool {
        self.accepts_from(self.init, w)
    }

    /// Whether the DFA accepts `w` from `start`.
    pub fn accepts_from(&self, start: StateId, w: &GString) -> bool {
        self.accepting[self.final_state(start, w)]
    }

    /// The *live* (co-reachable) states: those from which some accepting
    /// state is reachable. A run that enters a non-live state can never
    /// accept any continuation — the viability bit incremental consumers
    /// (the engine's streaming parser) probe per symbol. Computed by
    /// backward fixpoint over the dense table; accepting states are live
    /// by definition.
    pub fn live_states(&self) -> Vec<bool> {
        let mut live = self.accepting.clone();
        loop {
            let mut changed = false;
            for s in 0..self.num_states() {
                if !live[s] && self.delta_row(s).iter().any(|&t| live[t]) {
                    live[s] = true;
                    changed = true;
                }
            }
            if !changed {
                return live;
            }
        }
    }

    /// The Bool-indexed trace type `TraceD` of Fig. 11 as a `μ` system.
    /// Definition `2·s + b` is `TraceD s b`:
    ///
    /// ```text
    /// TraceD s b = (ε if isAcc(s) == b)
    ///            ⊕ ⊕_{c ∈ Σ} 'c' ⊗ TraceD (δ(s,c)) b
    /// ```
    ///
    /// The `nil` summand (when present) has index 0 and the `cons`
    /// summand for symbol `c` has index `nil_offset + c.index()`.
    pub fn trace_grammar(&self) -> DfaTraceGrammar {
        let n = self.num_states();
        let mut defs = Vec::with_capacity(2 * n);
        let mut names = Vec::with_capacity(2 * n);
        for s in 0..n {
            for b in [false, true] {
                let mut summands: Vec<Grammar> = Vec::new();
                if self.accepting[s] == b {
                    summands.push(eps());
                }
                for c in self.alphabet.symbols() {
                    let dst = self.delta(s, c);
                    summands.push(tensor(chr(c), var(Self::def_index(dst, b))));
                }
                defs.push(plus(summands));
                names.push(format!("TraceD({s},{b})"));
            }
        }
        DfaTraceGrammar {
            system: MuSystem::new(defs, names),
            alphabet: self.alphabet.clone(),
        }
    }

    /// Index of the definition `TraceD s b` inside [`Dfa::trace_grammar`].
    pub fn def_index(s: StateId, b: bool) -> usize {
        2 * s + usize::from(b)
    }
}

/// The trace type of a DFA, with helpers tied to the layout convention of
/// [`Dfa::trace_grammar`].
#[derive(Debug, Clone)]
pub struct DfaTraceGrammar {
    /// One definition per `(state, bool)` pair; see [`Dfa::def_index`].
    pub system: std::sync::Arc<MuSystem>,
    alphabet: Alphabet,
}

impl DfaTraceGrammar {
    /// The grammar `TraceD s b`.
    pub fn trace(&self, s: StateId, b: bool) -> Grammar {
        mu(self.system.clone(), Dfa::def_index(s, b))
    }

    /// The summand index of the `cons` constructor for symbol `c` in
    /// definition `TraceD s b` of `dfa`.
    pub fn cons_index(&self, dfa: &Dfa, s: StateId, b: bool, c: Symbol) -> usize {
        let nil_offset = usize::from(dfa.is_accepting(s) == b);
        nil_offset + c.index()
    }

    /// The alphabet the traces range over.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }
}

/// `parseD` (Fig. 12): runs the DFA on `w` from `start` and materializes
/// the unique trace — returning the accept bit `b` and the parse tree of
/// `TraceD start b`.
pub fn parse_dfa(
    dfa: &Dfa,
    tg: &DfaTraceGrammar,
    start: StateId,
    w: &GString,
) -> (bool, ParseTree) {
    let states = dfa.run_from(start, w);
    let b = dfa.is_accepting(*states.last().expect("non-empty run"));
    // Build from the back: nil at the final state, cons at each step.
    let final_state = *states.last().expect("non-empty run");
    debug_assert_eq!(dfa.is_accepting(final_state), b);
    let mut tree = ParseTree::roll(ParseTree::inj(0, ParseTree::Unit));
    for (i, sym) in w.iter().enumerate().rev() {
        let s = states[i];
        let idx = tg.cons_index(dfa, s, b, sym);
        tree = ParseTree::roll(ParseTree::inj(
            idx,
            ParseTree::pair(ParseTree::Char(sym), tree),
        ));
    }
    (b, tree)
}

/// `printD` (Fig. 12): structural recursion over a `TraceD s b` parse
/// tree, reading back the string. Unlike
/// [`flatten`](lambek_core::grammar::parse_tree::ParseTree::flatten), this
/// walks the trace constructors as the paper's `printD` does (and panics
/// on non-trace trees).
///
/// # Panics
///
/// Panics if the tree is not a `TraceD` parse for `dfa` from `(start, b)`.
pub fn print_dfa(
    dfa: &Dfa,
    tg: &DfaTraceGrammar,
    start: StateId,
    b: bool,
    tree: &ParseTree,
) -> GString {
    let mut w = GString::new();
    let mut s = start;
    let mut cur = tree;
    loop {
        let (index, inner) = match cur {
            ParseTree::Roll(inner) => match &**inner {
                ParseTree::Inj { index, tree } => (*index, tree),
                other => panic!("trace must be roll(σ …), got {other}"),
            },
            other => panic!("trace must be roll(…), got {other}"),
        };
        let nil_offset = usize::from(dfa.is_accepting(s) == b);
        if nil_offset == 1 && index == 0 {
            assert_eq!(**inner, ParseTree::Unit, "nil carries a unit");
            return w;
        }
        let c = Symbol::from_index(index - nil_offset);
        match &**inner {
            ParseTree::Pair(ch, rest) => {
                assert_eq!(**ch, ParseTree::Char(c), "cons head is the symbol");
                w.push(c);
                s = dfa.delta(s, c);
                cur = rest;
            }
            other => panic!("cons must carry a pair, got {other}"),
        }
        let _ = tg;
    }
}

/// Builds a DFA for the paper's running example `('a'* ⊗ 'b') ⊕ 'c'`
/// (the determinization of Fig. 5's NFA, hand-rolled): states
/// `0 = {0,1}` (init), `1 = {1}`, `2 = {2}` (accept), `3 = ∅` (sink).
pub fn fig5_dfa() -> Dfa {
    let sigma = Alphabet::abc();
    // symbols a=0, b=1, c=2.
    let delta = vec![
        vec![1, 2, 2], // 0: a->1, b->2, c->2
        vec![1, 2, 3], // 1: a->1, b->2, c->sink
        vec![3, 3, 3], // 2: accept, any -> sink
        vec![3, 3, 3], // 3: sink
    ];
    Dfa::new(sigma, 0, vec![false, false, true, false], delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambek_core::grammar::compile::CompiledGrammar;
    use lambek_core::grammar::expr::alt;
    use lambek_core::grammar::parse_tree::validate;
    use lambek_core::theory::unambiguous::{all_strings, check_unambiguous};

    #[test]
    fn fig5_dfa_language() {
        let dfa = fig5_dfa();
        let s = dfa.alphabet().clone();
        for yes in ["b", "ab", "aab", "c"] {
            assert!(dfa.accepts(&s.parse_str(yes).unwrap()), "{yes}");
        }
        for no in ["", "a", "ba", "cc", "cb"] {
            assert!(!dfa.accepts(&s.parse_str(no).unwrap()), "{no}");
        }
    }

    #[test]
    fn parse_print_retraction() {
        // Theorem 4.9's retraction: printD (parseD w) == w.
        let dfa = fig5_dfa();
        let tg = dfa.trace_grammar();
        let s = dfa.alphabet().clone();
        for w in all_strings(&s, 5) {
            let (b, tree) = parse_dfa(&dfa, &tg, dfa.init(), &w);
            assert_eq!(b, dfa.accepts(&w), "{w}");
            validate(&tree, &tg.trace(dfa.init(), b), &w).unwrap();
            assert_eq!(print_dfa(&dfa, &tg, dfa.init(), b, &tree), w, "{w}");
        }
    }

    #[test]
    fn trace_types_are_unambiguous() {
        // §4.1: ⊕_b TraceD s b is a retract of String, hence unambiguous.
        let dfa = fig5_dfa();
        let tg = dfa.trace_grammar();
        let s = dfa.alphabet().clone();
        for state in 0..dfa.num_states() {
            let sum = alt(tg.trace(state, true), tg.trace(state, false));
            check_unambiguous(&sum, &s, 3).unwrap();
        }
    }

    #[test]
    fn accepting_trace_language_is_dfa_language() {
        let dfa = fig5_dfa();
        let tg = dfa.trace_grammar();
        let s = dfa.alphabet().clone();
        let cg_true = CompiledGrammar::new(&tg.trace(dfa.init(), true));
        let cg_false = CompiledGrammar::new(&tg.trace(dfa.init(), false));
        for w in all_strings(&s, 4) {
            assert_eq!(cg_true.recognizes(&w), dfa.accepts(&w), "{w}");
            assert_eq!(cg_false.recognizes(&w), !dfa.accepts(&w), "{w}");
        }
    }

    #[test]
    fn every_string_has_exactly_one_trace_overall() {
        // Determinism: each w inhabits exactly one of the two trace types,
        // with exactly one parse.
        let dfa = fig5_dfa();
        let tg = dfa.trace_grammar();
        let s = dfa.alphabet().clone();
        let sum = alt(tg.trace(dfa.init(), true), tg.trace(dfa.init(), false));
        let cg = CompiledGrammar::new(&sum);
        for w in all_strings(&s, 4) {
            let amb = cg.count_parses(&w, 4);
            assert_eq!(amb.count, 1, "{w}");
        }
    }

    #[test]
    #[should_panic(expected = "one successor per symbol")]
    fn ragged_delta_rejected() {
        let sigma = Alphabet::abc();
        Dfa::new(sigma, 0, vec![false], vec![vec![0, 0]]);
    }

    #[test]
    fn tags_default_to_none_and_attach_via_with_tags() {
        let dfa = fig5_dfa();
        assert!(!dfa.is_tagged());
        assert!((0..dfa.num_states()).all(|s| dfa.accept_tag(s).is_none()));
        let tagged = dfa.clone().with_tags(vec![None, None, Some(7), None]);
        assert!(tagged.is_tagged());
        assert_eq!(tagged.accept_tag(2), Some(7));
        assert_eq!(tagged.tags(), &[None, None, Some(7), None]);
        // Tags do not perturb the language or equality-on-structure of
        // the untagged part.
        let s = tagged.alphabet().clone();
        for w in ["b", "ab", "c", "", "ba"] {
            let w = s.parse_str(w).unwrap();
            assert_eq!(tagged.accepts(&w), dfa.accepts(&w));
        }
    }

    #[test]
    #[should_panic(expected = "tagged but not accepting")]
    fn tagging_a_rejecting_state_is_rejected() {
        fig5_dfa().with_tags(vec![Some(0), None, None, None]);
    }

    #[test]
    fn live_states_ignores_tags() {
        // Co-reachability is a property of the transition structure and
        // the accept bits; attaching tags must not change it (the lexer's
        // maximal-munch driver keys its dead-state detection off this).
        let dfa = fig5_dfa();
        let live_before = dfa.live_states();
        let tagged = dfa.with_tags(vec![None, None, Some(3), None]);
        assert_eq!(tagged.live_states(), live_before);
        assert_eq!(tagged.live_states(), vec![true, true, true, false]);
    }
}
