//! Verified parsers from deterministic automata (Theorem 4.9).
//!
//! For a DFA, the accepting traces `TraceD s true` and rejecting traces
//! `TraceD s false` are disjoint (determinism + Lemma 4.7), and `parseD`
//! (Fig. 12) is total — so packaging them as a
//! [`VerifiedParser`] gives a
//! parser that is sound (accepted trees parse the real input) *and*
//! complete (rejections carry a rejecting trace of the same input).

use lambek_core::grammar::expr::alt;
use lambek_core::grammar::parse_tree::ParseTree;
use lambek_core::grammar::string_type::string_grammar;
use lambek_core::theory::parser::VerifiedParser;
use lambek_core::transform::Transformer;

use crate::dfa::{parse_dfa, Dfa};
use crate::nfa::StateId;

/// Builds the verified parser of Theorem 4.9 for the accepting traces of
/// `dfa` from `start`: grammar `TraceD start true`, negative grammar
/// `TraceD start false`, run function `parseD`.
pub fn dfa_trace_parser(dfa: &Dfa, start: StateId) -> VerifiedParser {
    let tg = dfa.trace_grammar();
    let target = tg.trace(start, true);
    let negative = tg.trace(start, false);
    let dom = string_grammar(dfa.alphabet());
    let cod = alt(target.clone(), negative.clone());
    let dfa_cl = dfa.clone();
    let run = Transformer::from_fn("parseD", dom, cod, move |t| {
        let w = t.flatten();
        let (b, tree) = parse_dfa(&dfa_cl, &tg, start, &w);
        Ok(ParseTree::inj(usize::from(!b), tree))
    });
    VerifiedParser::new(dfa.alphabet().clone(), target, negative, run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dfa::fig5_dfa;
    use lambek_core::theory::parser::ParseOutcome;

    #[test]
    fn theorem_4_9_dfa_parser_is_sound_and_complete() {
        let dfa = fig5_dfa();
        let p = dfa_trace_parser(&dfa, dfa.init());
        p.audit_disjointness(4).unwrap();
        p.audit_against_recognizer(4).unwrap();
    }

    #[test]
    fn accepted_trees_parse_the_input() {
        let dfa = fig5_dfa();
        let s = dfa.alphabet().clone();
        let p = dfa_trace_parser(&dfa, dfa.init());
        let w = s.parse_str("aab").unwrap();
        match p.parse(&w).unwrap() {
            ParseOutcome::Accept(t) => assert_eq!(t.flatten(), w),
            ParseOutcome::Reject(_) => panic!("aab should be accepted"),
        }
        let w = s.parse_str("ca").unwrap();
        match p.parse(&w).unwrap() {
            ParseOutcome::Reject(t) => assert_eq!(t.flatten(), w),
            ParseOutcome::Accept(_) => panic!("ca should be rejected"),
        }
    }
}
