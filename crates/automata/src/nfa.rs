//! Non-deterministic finite automata and their traces (Fig. 5, Fig. 11).
//!
//! An [`Nfa`] has character-labeled transitions and ε-transitions. Its
//! *trace type* `TraceN : (s : states) → L` is the indexed inductive
//! linear type of Fig. 11: a `TraceN s` parse of `w` is a path through the
//! automaton from `s` that consumes exactly `w` and ends at an accepting
//! state. [`Nfa::trace_grammar`] builds that type as a
//! [`MuSystem`] — one definition per
//! state — and [`NfaTrace`] is the native Rust value form with
//! conversions to and from parse trees.

use std::collections::BTreeSet;
use std::fmt;

use lambek_core::alphabet::{Alphabet, GString, Symbol};
use lambek_core::grammar::expr::{chr, eps, mu, plus, tensor, var, Grammar, MuSystem};
use lambek_core::grammar::parse_tree::ParseTree;

/// Index of an automaton state.
pub type StateId = usize;

/// A character-labeled transition `src --label--> dst`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Transition {
    /// Source state.
    pub src: StateId,
    /// The consumed symbol.
    pub label: Symbol,
    /// Destination state.
    pub dst: StateId,
}

/// An ε-transition `src --ε--> dst` (consumes nothing).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct EpsTransition {
    /// Source state.
    pub src: StateId,
    /// Destination state.
    pub dst: StateId,
}

/// A non-deterministic finite automaton over an [`Alphabet`].
#[derive(Debug, Clone)]
pub struct Nfa {
    alphabet: Alphabet,
    num_states: usize,
    init: StateId,
    accepting: Vec<bool>,
    transitions: Vec<Transition>,
    eps_transitions: Vec<EpsTransition>,
}

impl Nfa {
    /// Creates an NFA with `num_states` states (initially none accepting,
    /// no transitions) and the given initial state.
    ///
    /// # Panics
    ///
    /// Panics if `init >= num_states` or `num_states == 0`.
    pub fn new(alphabet: Alphabet, num_states: usize, init: StateId) -> Nfa {
        assert!(num_states > 0, "an NFA needs at least one state");
        assert!(init < num_states, "initial state out of range");
        Nfa {
            alphabet,
            num_states,
            init,
            accepting: vec![false; num_states],
            transitions: Vec::new(),
            eps_transitions: Vec::new(),
        }
    }

    /// Adds a fresh state and returns its id.
    pub fn add_state(&mut self) -> StateId {
        self.num_states += 1;
        self.accepting.push(false);
        self.num_states - 1
    }

    /// Marks a state accepting.
    ///
    /// # Panics
    ///
    /// Panics if `state` is out of range.
    pub fn set_accepting(&mut self, state: StateId, accepting: bool) {
        self.accepting[state] = accepting;
    }

    /// Adds a labeled transition and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if either state is out of range.
    pub fn add_transition(&mut self, src: StateId, label: Symbol, dst: StateId) -> usize {
        assert!(src < self.num_states && dst < self.num_states);
        self.transitions.push(Transition { src, label, dst });
        self.transitions.len() - 1
    }

    /// Adds an ε-transition and returns its index.
    ///
    /// # Panics
    ///
    /// Panics if either state is out of range.
    pub fn add_eps(&mut self, src: StateId, dst: StateId) -> usize {
        assert!(src < self.num_states && dst < self.num_states);
        self.eps_transitions.push(EpsTransition { src, dst });
        self.eps_transitions.len() - 1
    }

    /// The input alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.num_states
    }

    /// The initial state.
    pub fn init(&self) -> StateId {
        self.init
    }

    /// Whether `state` is accepting.
    pub fn is_accepting(&self, state: StateId) -> bool {
        self.accepting[state]
    }

    /// All labeled transitions, in insertion order.
    pub fn transitions(&self) -> &[Transition] {
        &self.transitions
    }

    /// All ε-transitions, in insertion order.
    pub fn eps_transitions(&self) -> &[EpsTransition] {
        &self.eps_transitions
    }

    /// The ε-closure of a set of states: everything reachable through
    /// ε-transitions (including the set itself).
    pub fn eps_closure(&self, states: &BTreeSet<StateId>) -> BTreeSet<StateId> {
        let mut closure = states.clone();
        let mut stack: Vec<StateId> = states.iter().copied().collect();
        while let Some(s) = stack.pop() {
            for e in &self.eps_transitions {
                if e.src == s && closure.insert(e.dst) {
                    stack.push(e.dst);
                }
            }
        }
        closure
    }

    /// One subset-construction step: states reachable from `states` by
    /// consuming `sym`, ε-closed.
    pub fn step(&self, states: &BTreeSet<StateId>, sym: Symbol) -> BTreeSet<StateId> {
        let moved: BTreeSet<StateId> = self
            .transitions
            .iter()
            .filter(|t| t.label == sym && states.contains(&t.src))
            .map(|t| t.dst)
            .collect();
        self.eps_closure(&moved)
    }

    /// Whether the NFA accepts `w` from its initial state (subset
    /// simulation).
    pub fn accepts(&self, w: &GString) -> bool {
        self.accepts_from(self.init, w)
    }

    /// Whether the NFA accepts `w` starting from `state`.
    pub fn accepts_from(&self, state: StateId, w: &GString) -> bool {
        let mut current = self.eps_closure(&BTreeSet::from([state]));
        for sym in w.iter() {
            current = self.step(&current, sym);
            if current.is_empty() {
                return false;
            }
        }
        current.iter().any(|&s| self.accepting[s])
    }

    /// The layout of the trace grammar: for each state, how its summands
    /// are ordered. Needed to map between [`NfaTrace`] values and parse
    /// trees of [`Nfa::trace_grammar`].
    pub fn trace_layout(&self) -> TraceLayout {
        let mut per_state = Vec::with_capacity(self.num_states);
        for s in 0..self.num_states {
            let nil = if self.accepting[s] { Some(0) } else { None };
            let mut next = nil.map_or(0, |_| 1);
            let mut cons = Vec::new();
            for (i, t) in self.transitions.iter().enumerate() {
                if t.src == s {
                    cons.push((i, next));
                    next += 1;
                }
            }
            let mut eps_cons = Vec::new();
            for (i, e) in self.eps_transitions.iter().enumerate() {
                if e.src == s {
                    eps_cons.push((i, next));
                    next += 1;
                }
            }
            per_state.push(StateLayout {
                nil,
                cons,
                eps_cons,
            });
        }
        TraceLayout { per_state }
    }

    /// The indexed inductive trace type `TraceN` of Fig. 11 as a system of
    /// mutually recursive grammars, one definition per state:
    ///
    /// ```text
    /// Trace s = (ε if s accepting)
    ///         ⊕ ⊕_{t : s --c--> s'} 'c' ⊗ Trace s'
    ///         ⊕ ⊕_{e : s --ε--> s'} Trace s'
    /// ```
    pub fn trace_grammar(&self) -> TraceGrammar {
        let layout = self.trace_layout();
        let mut defs = Vec::with_capacity(self.num_states);
        let mut names = Vec::with_capacity(self.num_states);
        for s in 0..self.num_states {
            let l = &layout.per_state[s];
            let mut summands: Vec<Grammar> = Vec::new();
            if l.nil.is_some() {
                summands.push(eps());
            }
            for &(t, _) in &l.cons {
                let tr = self.transitions[t];
                summands.push(tensor(chr(tr.label), var(tr.dst)));
            }
            for &(e, _) in &l.eps_cons {
                summands.push(var(self.eps_transitions[e].dst));
            }
            defs.push(plus(summands));
            names.push(format!("Trace{s}"));
        }
        TraceGrammar {
            system: MuSystem::new(defs, names),
            layout,
        }
    }
}

/// Per-state summand ordering of the trace grammar.
#[derive(Debug, Clone)]
pub struct StateLayout {
    /// Summand index of the `nil`/`stop` constructor, if the state accepts.
    pub nil: Option<usize>,
    /// `(transition id, summand index)` for each outgoing labeled
    /// transition.
    pub cons: Vec<(usize, usize)>,
    /// `(ε-transition id, summand index)` for each outgoing ε-transition.
    pub eps_cons: Vec<(usize, usize)>,
}

/// Layout of all states' trace summands.
#[derive(Debug, Clone)]
pub struct TraceLayout {
    /// Indexed by state.
    pub per_state: Vec<StateLayout>,
}

/// The trace type of an NFA: the `μ` system plus the summand layout.
#[derive(Debug, Clone)]
pub struct TraceGrammar {
    /// One definition per state.
    pub system: std::sync::Arc<MuSystem>,
    /// How constructors map to summand indices.
    pub layout: TraceLayout,
}

impl TraceGrammar {
    /// The grammar `TraceN s` of traces starting at `s`.
    pub fn trace(&self, s: StateId) -> Grammar {
        mu(self.system.clone(), s)
    }
}

/// An accepting trace through an NFA, as native data (Fig. 5's values).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum NfaTrace {
    /// `stop`: the current state is accepting; the trace ends.
    Stop,
    /// `cons`: follow labeled transition `transition`, then continue.
    Step {
        /// Index into [`Nfa::transitions`].
        transition: usize,
        /// The rest of the trace, from the transition's destination.
        rest: Box<NfaTrace>,
    },
    /// `εcons`: follow ε-transition `eps`, then continue.
    EpsStep {
        /// Index into [`Nfa::eps_transitions`].
        eps: usize,
        /// The rest of the trace.
        rest: Box<NfaTrace>,
    },
}

impl NfaTrace {
    /// Convenience constructor for [`NfaTrace::Step`].
    pub fn step(transition: usize, rest: NfaTrace) -> NfaTrace {
        NfaTrace::Step {
            transition,
            rest: Box::new(rest),
        }
    }

    /// Convenience constructor for [`NfaTrace::EpsStep`].
    pub fn eps_step(eps: usize, rest: NfaTrace) -> NfaTrace {
        NfaTrace::EpsStep {
            eps,
            rest: Box::new(rest),
        }
    }

    /// The string consumed by the trace.
    pub fn yield_string(&self, nfa: &Nfa) -> GString {
        let mut w = GString::new();
        let mut cur = self;
        loop {
            match cur {
                NfaTrace::Stop => return w,
                NfaTrace::Step { transition, rest } => {
                    w.push(nfa.transitions()[*transition].label);
                    cur = rest;
                }
                NfaTrace::EpsStep { rest, .. } => cur = rest,
            }
        }
    }

    /// Checks that the trace is a well-formed accepting path from `state`.
    pub fn is_valid_from(&self, nfa: &Nfa, state: StateId) -> bool {
        match self {
            NfaTrace::Stop => nfa.is_accepting(state),
            NfaTrace::Step { transition, rest } => {
                let t = nfa.transitions()[*transition];
                t.src == state && rest.is_valid_from(nfa, t.dst)
            }
            NfaTrace::EpsStep { eps, rest } => {
                let e = nfa.eps_transitions()[*eps];
                e.src == state && rest.is_valid_from(nfa, e.dst)
            }
        }
    }

    /// Converts the trace to a parse tree of `trace_grammar.trace(state)`.
    ///
    /// # Panics
    ///
    /// Panics if the trace is not valid from `state`.
    pub fn to_parse_tree(&self, nfa: &Nfa, tg: &TraceGrammar, state: StateId) -> ParseTree {
        let layout = &tg.layout.per_state[state];
        match self {
            NfaTrace::Stop => {
                let idx = layout.nil.expect("Stop at a non-accepting state");
                ParseTree::roll(ParseTree::inj(idx, ParseTree::Unit))
            }
            NfaTrace::Step { transition, rest } => {
                let t = nfa.transitions()[*transition];
                assert_eq!(t.src, state, "trace does not start at {state}");
                let (_, idx) = *layout
                    .cons
                    .iter()
                    .find(|(tid, _)| tid == transition)
                    .expect("transition not outgoing from state");
                let rest_tree = rest.to_parse_tree(nfa, tg, t.dst);
                ParseTree::roll(ParseTree::inj(
                    idx,
                    ParseTree::pair(ParseTree::Char(t.label), rest_tree),
                ))
            }
            NfaTrace::EpsStep { eps, rest } => {
                let e = nfa.eps_transitions()[*eps];
                assert_eq!(e.src, state, "trace does not start at {state}");
                let (_, idx) = *layout
                    .eps_cons
                    .iter()
                    .find(|(eid, _)| eid == eps)
                    .expect("ε-transition not outgoing from state");
                ParseTree::roll(ParseTree::inj(idx, rest.to_parse_tree(nfa, tg, e.dst)))
            }
        }
    }

    /// Reads a trace back from a parse tree of `trace_grammar.trace(state)`.
    ///
    /// # Panics
    ///
    /// Panics if the tree is not a valid trace parse.
    pub fn from_parse_tree(
        tree: &ParseTree,
        nfa: &Nfa,
        tg: &TraceGrammar,
        state: StateId,
    ) -> NfaTrace {
        let layout = &tg.layout.per_state[state];
        let (index, inner) = match tree {
            ParseTree::Roll(inner) => match &**inner {
                ParseTree::Inj { index, tree } => (*index, tree),
                other => panic!("trace tree must be roll(σ …), got {other}"),
            },
            other => panic!("trace tree must be roll(…), got {other}"),
        };
        if layout.nil == Some(index) {
            return NfaTrace::Stop;
        }
        if let Some(&(tid, _)) = layout.cons.iter().find(|(_, i)| *i == index) {
            let dst = nfa.transitions()[tid].dst;
            match &**inner {
                ParseTree::Pair(_, rest) => {
                    NfaTrace::step(tid, NfaTrace::from_parse_tree(rest, nfa, tg, dst))
                }
                other => panic!("cons summand must be a pair, got {other}"),
            }
        } else if let Some(&(eid, _)) = layout.eps_cons.iter().find(|(_, i)| *i == index) {
            let dst = nfa.eps_transitions()[eid].dst;
            NfaTrace::eps_step(eid, NfaTrace::from_parse_tree(inner, nfa, tg, dst))
        } else {
            panic!("summand {index} not in layout of state {state}")
        }
    }
}

impl fmt::Display for NfaTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NfaTrace::Stop => write!(f, "stop"),
            NfaTrace::Step { transition, rest } => write!(f, "t{transition}·{rest}"),
            NfaTrace::EpsStep { eps, rest } => write!(f, "ε{eps}·{rest}"),
        }
    }
}

/// Builds the paper's Fig. 5 NFA for `('a'* ⊗ 'b') ⊕ 'c'` over `{a,b,c}`:
/// states 0 (init), 1, 2 (accepting); `1 --a--> 1`, `1 --b--> 2`,
/// `0 --c--> 2`, `0 --ε--> 1`. Returns the NFA and the transition ids
/// `(t_1to1, t_1to2, t_0to2, e_0to1)`.
pub fn fig5_nfa() -> (Nfa, [usize; 4]) {
    let sigma = Alphabet::abc();
    let (a, b, c) = (
        sigma.symbol("a").unwrap(),
        sigma.symbol("b").unwrap(),
        sigma.symbol("c").unwrap(),
    );
    let mut nfa = Nfa::new(sigma, 3, 0);
    nfa.set_accepting(2, true);
    let t11 = nfa.add_transition(1, a, 1);
    let t12 = nfa.add_transition(1, b, 2);
    let t02 = nfa.add_transition(0, c, 2);
    let e01 = nfa.add_eps(0, 1);
    (nfa, [t11, t12, t02, e01])
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambek_core::grammar::compile::CompiledGrammar;
    use lambek_core::grammar::parse_tree::validate;
    use lambek_core::theory::unambiguous::all_strings;

    #[test]
    fn fig5_nfa_accepts_the_right_language() {
        let (nfa, _) = fig5_nfa();
        let s = nfa.alphabet().clone();
        for yes in ["b", "ab", "aab", "c"] {
            assert!(nfa.accepts(&s.parse_str(yes).unwrap()), "{yes}");
        }
        for no in ["", "a", "ba", "cc", "bc"] {
            assert!(!nfa.accepts(&s.parse_str(no).unwrap()), "{no}");
        }
    }

    #[test]
    fn fig5_trace_term_k() {
        // k (a , b) = 0to1 (1to1 a (1to2 b stop)) — Fig. 5's term for "ab".
        let (nfa, [t11, t12, _, e01]) = fig5_nfa();
        let trace = NfaTrace::eps_step(
            e01,
            NfaTrace::step(t11, NfaTrace::step(t12, NfaTrace::Stop)),
        );
        assert!(trace.is_valid_from(&nfa, 0));
        let s = nfa.alphabet().clone();
        assert_eq!(trace.yield_string(&nfa), s.parse_str("ab").unwrap());
        // And as a parse tree of the trace grammar.
        let tg = nfa.trace_grammar();
        let tree = trace.to_parse_tree(&nfa, &tg, 0);
        validate(&tree, &tg.trace(0), &s.parse_str("ab").unwrap()).unwrap();
        // Roundtrip.
        assert_eq!(NfaTrace::from_parse_tree(&tree, &nfa, &tg, 0), trace);
    }

    #[test]
    fn trace_grammar_language_matches_acceptance() {
        let (nfa, _) = fig5_nfa();
        let s = nfa.alphabet().clone();
        let tg = nfa.trace_grammar();
        let cg = CompiledGrammar::new(&tg.trace(nfa.init()));
        for w in all_strings(&s, 4) {
            assert_eq!(cg.recognizes(&w), nfa.accepts(&w), "{w}");
        }
    }

    #[test]
    fn eps_closure_and_step() {
        let (nfa, _) = fig5_nfa();
        let closure = nfa.eps_closure(&BTreeSet::from([0]));
        assert_eq!(closure, BTreeSet::from([0, 1]));
        let a = nfa.alphabet().symbol("a").unwrap();
        assert_eq!(nfa.step(&closure, a), BTreeSet::from([1]));
    }

    #[test]
    fn trace_validity_rejects_wrong_start() {
        let (nfa, [t11, ..]) = fig5_nfa();
        let trace = NfaTrace::step(t11, NfaTrace::Stop);
        assert!(!trace.is_valid_from(&nfa, 0)); // t11 starts at 1, not 0
        assert!(!trace.is_valid_from(&nfa, 1)); // stop at 1: not accepting
    }

    #[test]
    fn ambiguous_nfa_has_multiple_traces() {
        // Two parallel paths for "a": trace grammar has 2 parses.
        let sigma = Alphabet::abc();
        let a = sigma.symbol("a").unwrap();
        let mut nfa = Nfa::new(sigma.clone(), 2, 0);
        nfa.set_accepting(1, true);
        nfa.add_transition(0, a, 1);
        nfa.add_transition(0, a, 1);
        let tg = nfa.trace_grammar();
        let cg = CompiledGrammar::new(&tg.trace(0));
        let amb = cg.count_parses(&sigma.parse_str("a").unwrap(), 8);
        assert_eq!(amb.count, 2);
    }
}
