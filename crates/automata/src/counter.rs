//! The infinite-state counter automaton for the Dyck language (Fig. 14).
//!
//! The automaton's states are natural numbers — the count of unmatched
//! open parentheses — plus a `fail` sink; state `0` is initial and
//! accepting. [`CounterMachine`] runs the genuinely infinite-state machine
//! (the counter is an unbounded `usize`); [`dyck_automaton`] materializes
//! the *length-truncated* finite slice as a [`Dfa`] so that all of the
//! DFA trace machinery (trace grammars, `parseD`, Theorem 4.9 parsers)
//! applies: on inputs of length ≤ `max_depth` the truncation is invisible,
//! since the counter can never exceed the number of characters read
//! (DESIGN.md §2).

use lambek_core::alphabet::{Alphabet, GString};

use crate::dfa::Dfa;
use crate::nfa::StateId;

/// The infinite-state deterministic machine of Fig. 14.
#[derive(Debug, Clone)]
pub struct CounterMachine {
    alphabet: Alphabet,
    open: lambek_core::alphabet::Symbol,
    close: lambek_core::alphabet::Symbol,
}

/// A state of the counter machine: a count or the failure sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterState {
    /// `n` unmatched open parentheses so far.
    Count(usize),
    /// A close parenthesis was seen with count 0; the run can never
    /// recover.
    Fail,
}

impl CounterMachine {
    /// The machine over the `{(, )}` alphabet.
    pub fn new() -> CounterMachine {
        let alphabet = Alphabet::parens();
        let open = alphabet.symbol("(").expect("open paren");
        let close = alphabet.symbol(")").expect("close paren");
        CounterMachine {
            alphabet,
            open,
            close,
        }
    }

    /// The machine's alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// One transition step.
    pub fn step(&self, state: CounterState, sym: lambek_core::alphabet::Symbol) -> CounterState {
        match state {
            CounterState::Fail => CounterState::Fail,
            CounterState::Count(n) => {
                if sym == self.open {
                    CounterState::Count(n + 1)
                } else if sym == self.close {
                    match n {
                        0 => CounterState::Fail,
                        _ => CounterState::Count(n - 1),
                    }
                } else {
                    CounterState::Fail
                }
            }
        }
    }

    /// Runs the machine; returns the full state sequence.
    pub fn run(&self, w: &GString) -> Vec<CounterState> {
        let mut states = Vec::with_capacity(w.len() + 1);
        let mut s = CounterState::Count(0);
        states.push(s);
        for sym in w.iter() {
            s = self.step(s, sym);
            states.push(s);
        }
        states
    }

    /// Whether `w` is a balanced-parenthesis string.
    pub fn accepts(&self, w: &GString) -> bool {
        matches!(self.run(w).last(), Some(CounterState::Count(0)))
    }

    /// The maximum counter value reached while reading `w` (0 if the run
    /// fails immediately).
    pub fn max_depth(&self, w: &GString) -> usize {
        self.run(w)
            .iter()
            .filter_map(|s| match s {
                CounterState::Count(n) => Some(*n),
                CounterState::Fail => None,
            })
            .max()
            .unwrap_or(0)
    }
}

impl Default for CounterMachine {
    fn default() -> CounterMachine {
        CounterMachine::new()
    }
}

/// The length-truncated finite slice of Fig. 14's automaton as a DFA over
/// `{(, )}`: states `0..=max_depth` are the counter values, state
/// `max_depth + 1` is `fail`. Exact for every string of length ≤
/// `max_depth`.
pub fn dyck_automaton(max_depth: usize) -> Dfa {
    let alphabet = Alphabet::parens();
    let open = alphabet.symbol("(").expect("open paren").index();
    let fail: StateId = max_depth + 1;
    let num_states = max_depth + 2;
    let mut delta = Vec::with_capacity(num_states);
    for n in 0..=max_depth {
        let mut row = vec![fail; alphabet.len()];
        row[open] = if n < max_depth { n + 1 } else { fail };
        row[1 - open] = if n > 0 { n - 1 } else { fail };
        delta.push(row);
    }
    delta.push(vec![fail; alphabet.len()]); // fail loops
    let mut accepting = vec![false; num_states];
    accepting[0] = true;
    Dfa::new(alphabet, 0, accepting, delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::run::dfa_trace_parser;
    use lambek_core::theory::unambiguous::all_strings;

    #[test]
    fn machine_accepts_balanced_strings() {
        let m = CounterMachine::new();
        let s = m.alphabet().clone();
        for yes in ["", "()", "(())", "()()", "(()())()"] {
            assert!(m.accepts(&s.parse_str(yes).unwrap()), "{yes}");
        }
        for no in ["(", ")", ")(", "(()", "())"] {
            assert!(!m.accepts(&s.parse_str(no).unwrap()), "{no}");
        }
    }

    #[test]
    fn truncated_dfa_agrees_with_machine_up_to_bound() {
        let m = CounterMachine::new();
        let dfa = dyck_automaton(6);
        let s = m.alphabet().clone();
        for w in all_strings(&s, 6) {
            assert_eq!(dfa.accepts(&w), m.accepts(&w), "{w}");
        }
    }

    #[test]
    fn fail_state_is_absorbing() {
        let m = CounterMachine::new();
        let s = m.alphabet().clone();
        let w = s.parse_str(")(((").unwrap();
        assert!(matches!(m.run(&w).last(), Some(CounterState::Fail)));
    }

    #[test]
    fn dyck_trace_parser_via_theorem_4_9() {
        // Fig. 14 + Theorem 4.9: the counter automaton yields a verified
        // parser for (truncated) Dyck traces.
        let dfa = dyck_automaton(4);
        let p = dfa_trace_parser(&dfa, dfa.init());
        p.audit_disjointness(4).unwrap();
        p.audit_against_recognizer(4).unwrap();
    }

    #[test]
    fn max_depth_matches_nesting() {
        let m = CounterMachine::new();
        let s = m.alphabet().clone();
        assert_eq!(m.max_depth(&s.parse_str("((()))").unwrap()), 3);
        assert_eq!(m.max_depth(&s.parse_str("()()").unwrap()), 1);
        assert_eq!(m.max_depth(&GString::new()), 0);
    }
}
