//! # lambek-automata — automata as indexed inductive linear types
//!
//! The automata substrate of the Dependent Lambek Calculus reproduction
//! (§2, §4.1, §4.2 of the paper): finite automata whose *trace types* are
//! inductive linear grammars, so that running an automaton is building an
//! intrinsically verified parse.
//!
//! * [`nfa`] — NFAs, ε-closures, the `TraceN` grammar (Fig. 5 / Fig. 11)
//!   and native trace values;
//! * [`dfa`] — DFAs with total transition functions, the Bool-indexed
//!   `TraceD` grammar, `parseD`/`printD` (Fig. 12);
//! * [`run`] — the Theorem 4.9 verified parser for DFA traces;
//! * [`determinize`] — Rabin–Scott subset construction with the
//!   `NtoD`/`DtoN` weak-equivalence transformers (Construction 4.10);
//! * [`minimize`], [`equiv`], [`ops`] — partition-refinement
//!   minimization, product equivalence checking, and boolean operations
//!   (complement/intersection — the Definition 4.5 disjointness oracle
//!   for the regular fragment);
//! * [`counter`] — the infinite-state Dyck automaton of Fig. 14;
//! * [`lookahead`] — the one-token-lookahead expression automaton of
//!   Fig. 15;
//! * [`gen`] — random and adversarial generators for tests and benches.

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod counter;
pub mod determinize;
pub mod dfa;
pub mod equiv;
pub mod gen;
pub mod lookahead;
pub mod minimize;
pub mod nfa;
pub mod ops;
pub mod run;
