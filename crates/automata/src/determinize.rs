//! Rabin–Scott determinization (Construction 4.10).
//!
//! The states of the determinized automaton are the ε-closed subsets of
//! NFA states reachable from the ε-closure of the initial state. The
//! construction provides a *weak* equivalence between the accepting
//! traces of the NFA and of the DFA — weak and not strong, because
//! determinization collapses ambiguity (§4.1).
//!
//! * `NtoD` maps an accepting NFA trace to the unique accepting DFA trace
//!   over the same string (determinism makes it unique, so running the
//!   DFA on the yield *is* the map).
//! * `DtoN` needs a *choice function*: an accepting DFA trace only proves
//!   the existence of an accepting NFA path. Following the paper, we pick
//!   the least trace under an ordering on states, transitions and
//!   ε-transitions: working backwards, at each step the smallest labeled
//!   transition compatible with the remaining path is chosen, connected
//!   by lexicographically-least shortest ε-paths.

use std::collections::{BTreeSet, HashMap, VecDeque};

use lambek_core::alphabet::GString;
use lambek_core::theory::equivalence::WeakEquiv;
use lambek_core::transform::{TransformError, Transformer};

use crate::dfa::{parse_dfa, Dfa};
use crate::nfa::{Nfa, NfaTrace, StateId};

/// The result of determinizing an NFA: the DFA plus the subset each DFA
/// state denotes.
#[derive(Debug, Clone)]
pub struct Determinized {
    /// The subset-construction DFA.
    pub dfa: Dfa,
    /// `subsets[d]` is the ε-closed set of NFA states that DFA state `d`
    /// stands for. The empty set is the (non-accepting) sink.
    pub subsets: Vec<BTreeSet<StateId>>,
}

/// Runs the subset construction with ε-closures (Construction 4.10).
pub fn determinize(nfa: &Nfa) -> Determinized {
    determinize_core(nfa, None)
}

/// Subset construction for a *tagged* NFA: `tags[s]` optionally marks
/// NFA state `s` as the accept state of prioritized rule `tags[s]`
/// (smaller = higher priority, the lexing convention). Each DFA state
/// inherits the **minimum** tag over its member NFA states, so when two
/// rules' accept states land in one subset — a keyword that is also an
/// identifier, say — the earlier rule wins deterministically.
///
/// # Panics
///
/// Panics if `tags` is not one entry per NFA state, or tags a
/// non-accepting NFA state.
pub fn determinize_tagged(nfa: &Nfa, tags: &[Option<usize>]) -> Determinized {
    assert_eq!(tags.len(), nfa.num_states(), "one optional tag per state");
    for (s, t) in tags.iter().enumerate() {
        assert!(
            t.is_none() || nfa.is_accepting(s),
            "NFA state {s} is tagged but not accepting"
        );
    }
    determinize_core(nfa, Some(tags))
}

fn determinize_core(nfa: &Nfa, tags: Option<&[Option<usize>]>) -> Determinized {
    let alphabet = nfa.alphabet().clone();
    // Adjacency indexes, built once. `Nfa::step`/`eps_closure` scan the
    // whole transition lists per call, which is fine for one simulation
    // step but ruinous inside the subset construction — character
    // classes expand to |class| labeled edges each, so a lexer-union
    // NFA over a ~100-symbol alphabet has tens of thousands of
    // transitions and the naive loop took minutes in debug builds.
    let mut eps_adj: Vec<Vec<StateId>> = vec![Vec::new(); nfa.num_states()];
    for e in nfa.eps_transitions() {
        eps_adj[e.src].push(e.dst);
    }
    let mut moves: Vec<Vec<Vec<StateId>>> =
        vec![vec![Vec::new(); alphabet.len()]; nfa.num_states()];
    for t in nfa.transitions() {
        moves[t.src][t.label.index()].push(t.dst);
    }
    // Subsets live as fixed-width u64 bitsets during the construction:
    // membership set/test is one shift+or, the interning key hashes
    // `words` machine words instead of a tree, and the member list is
    // recovered by bit iteration only once per *discovered* state.
    let n = nfa.num_states();
    let words = n.div_ceil(64);
    let set = |bits: &mut [u64], s: StateId| -> bool {
        let mask = 1u64 << (s % 64);
        let fresh = bits[s / 64] & mask == 0;
        bits[s / 64] |= mask;
        fresh
    };
    let close = |bits: &mut [u64], stack: &mut Vec<StateId>| {
        while let Some(s) = stack.pop() {
            for &d in &eps_adj[s] {
                if set(bits, d) {
                    stack.push(d);
                }
            }
        }
    };
    let members = |bits: &[u64]| -> Vec<StateId> {
        let mut out = Vec::new();
        for (w, &word) in bits.iter().enumerate() {
            let mut rest = word;
            while rest != 0 {
                out.push(w * 64 + rest.trailing_zeros() as usize);
                rest &= rest - 1;
            }
        }
        out
    };

    let start = {
        let mut bits = vec![0u64; words];
        let mut stack = vec![nfa.init()];
        set(&mut bits, nfa.init());
        close(&mut bits, &mut stack);
        bits
    };
    let mut subset_members: Vec<Vec<StateId>> = vec![members(&start)];
    let mut index: HashMap<Vec<u64>, StateId> = HashMap::from([(start, 0)]);
    let mut delta: Vec<Vec<StateId>> = Vec::new();
    let mut queue: VecDeque<StateId> = VecDeque::from([0]);
    while let Some(d) = queue.pop_front() {
        let mut row = Vec::with_capacity(alphabet.len());
        for c in alphabet.symbols() {
            let mut next = vec![0u64; words];
            let mut stack: Vec<StateId> = Vec::new();
            for &s in &subset_members[d] {
                for &dst in &moves[s][c.index()] {
                    if set(&mut next, dst) {
                        stack.push(dst);
                    }
                }
            }
            close(&mut next, &mut stack);
            let id = match index.get(&next) {
                Some(&id) => id,
                None => {
                    let id = subset_members.len();
                    subset_members.push(members(&next));
                    index.insert(next, id);
                    queue.push_back(id);
                    id
                }
            };
            row.push(id);
        }
        delta.push(row);
        debug_assert_eq!(delta.len() - 1, d, "rows are filled in BFS order");
    }
    let accepting: Vec<bool> = subset_members
        .iter()
        .map(|set| set.iter().any(|&s| nfa.is_accepting(s)))
        .collect();
    let mut dfa = Dfa::new(alphabet, 0, accepting, delta);
    if let Some(tags) = tags {
        let dfa_tags: Vec<Option<usize>> = subset_members
            .iter()
            .map(|set| set.iter().filter_map(|&s| tags[s]).min())
            .collect();
        dfa = dfa.with_tags(dfa_tags);
    }
    let subsets = subset_members
        .into_iter()
        .map(|m| m.into_iter().collect())
        .collect();
    Determinized { dfa, subsets }
}

/// Shortest ε-path from `from` to `to` as a list of ε-transition indices,
/// BFS preferring smaller transition indices (the paper's ordering-based
/// disambiguation). Returns `None` if unreachable.
fn eps_path(nfa: &Nfa, from: StateId, to: StateId) -> Option<Vec<usize>> {
    if from == to {
        return Some(Vec::new());
    }
    let mut parent: HashMap<StateId, (StateId, usize)> = HashMap::new();
    let mut queue = VecDeque::from([from]);
    while let Some(s) = queue.pop_front() {
        for (i, e) in nfa.eps_transitions().iter().enumerate() {
            if e.src == s && e.dst != from && !parent.contains_key(&e.dst) {
                parent.insert(e.dst, (s, i));
                if e.dst == to {
                    let mut path = Vec::new();
                    let mut cur = to;
                    while cur != from {
                        let (prev, eid) = parent[&cur];
                        path.push(eid);
                        cur = prev;
                    }
                    path.reverse();
                    return Some(path);
                }
                queue.push_back(e.dst);
            }
        }
    }
    None
}

/// The choice function behind `DtoN`: from an accepted string, rebuild the
/// least accepting NFA trace from `nfa.init()`.
///
/// # Panics
///
/// Panics if the NFA does not accept `w` (callers guarantee acceptance —
/// the DFA trace is accepting and the construction is language-preserving).
pub fn least_accepting_trace(nfa: &Nfa, w: &GString) -> NfaTrace {
    // Forward subset run (without building the whole DFA).
    let mut subsets = Vec::with_capacity(w.len() + 1);
    subsets.push(nfa.eps_closure(&BTreeSet::from([nfa.init()])));
    for sym in w.iter() {
        let next = nfa.step(subsets.last().expect("non-empty"), sym);
        subsets.push(next);
    }
    // Choose the smallest accepting final state.
    let last = subsets.last().expect("non-empty");
    let mut current = *last
        .iter()
        .find(|&&s| nfa.is_accepting(s))
        .expect("NFA must accept w");
    let mut trace = NfaTrace::Stop;
    // Walk backwards, choosing the least compatible transition each step.
    for (i, sym) in w.iter().enumerate().rev() {
        let source_set = &subsets[i];
        let mut chosen: Option<(usize, Vec<usize>)> = None;
        for (tid, t) in nfa.transitions().iter().enumerate() {
            if t.label == sym && source_set.contains(&t.src) {
                if let Some(path) = eps_path(nfa, t.dst, current) {
                    chosen = Some((tid, path));
                    break; // transitions scanned in index order: least wins
                }
            }
        }
        let (tid, path) = chosen.expect("subset construction guarantees a predecessor");
        // Assemble: labeled step, then ε-steps to `current`, then `trace`.
        let mut suffix = trace;
        for &eid in path.iter().rev() {
            suffix = NfaTrace::eps_step(eid, suffix);
        }
        trace = NfaTrace::step(tid, suffix);
        current = nfa.transitions()[tid].src;
    }
    // Finally an ε-path from the true initial state to `current`.
    let path = eps_path(nfa, nfa.init(), current).expect("current ∈ eclose(init)");
    for &eid in path.iter().rev() {
        trace = NfaTrace::eps_step(eid, trace);
    }
    trace
}

/// The weak equivalence `ParseN ≈ ParseD` of Construction 4.10, as a pair
/// of transformers between the accepting-trace grammars.
pub fn trace_weak_equiv(nfa: &Nfa, det: &Determinized) -> WeakEquiv {
    let ntg = nfa.trace_grammar();
    let dtg = det.dfa.trace_grammar();
    let parse_n = ntg.trace(nfa.init());
    let parse_d = dtg.trace(det.dfa.init(), true);

    let dfa_f = det.dfa.clone();
    let dtg_f = dtg.clone();
    let fwd = Transformer::from_fn("NtoD", parse_n.clone(), parse_d.clone(), move |t| {
        let w = t.flatten();
        let (b, tree) = parse_dfa(&dfa_f, &dtg_f, dfa_f.init(), &w);
        if !b {
            return Err(TransformError::Custom(format!(
                "determinization lost the string {w}"
            )));
        }
        Ok(tree)
    });

    let nfa_b = nfa.clone();
    let bwd = Transformer::from_fn("DtoN", parse_d, parse_n, move |t| {
        let w = t.flatten();
        let trace = least_accepting_trace(&nfa_b, &w);
        Ok(trace.to_parse_tree(&nfa_b, &ntg, nfa_b.init()))
    });
    WeakEquiv::new(fwd, bwd)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nfa::fig5_nfa;
    use lambek_core::grammar::parse_tree::validate;
    use lambek_core::theory::unambiguous::all_strings;

    #[test]
    fn determinize_preserves_language() {
        let (nfa, _) = fig5_nfa();
        let det = determinize(&nfa);
        let s = nfa.alphabet().clone();
        for w in all_strings(&s, 5) {
            assert_eq!(nfa.accepts(&w), det.dfa.accepts(&w), "{w}");
        }
    }

    #[test]
    fn initial_subset_is_eps_closed_init() {
        let (nfa, _) = fig5_nfa();
        let det = determinize(&nfa);
        assert_eq!(det.subsets[0], BTreeSet::from([0, 1]));
    }

    #[test]
    fn least_trace_is_valid_and_yields_w() {
        let (nfa, _) = fig5_nfa();
        let s = nfa.alphabet().clone();
        for w in ["b", "ab", "aab", "c"] {
            let w = s.parse_str(w).unwrap();
            let trace = least_accepting_trace(&nfa, &w);
            assert!(trace.is_valid_from(&nfa, nfa.init()), "{w}");
            assert_eq!(trace.yield_string(&nfa), w, "{w}");
        }
    }

    #[test]
    fn construction_4_10_weak_equivalence() {
        let (nfa, _) = fig5_nfa();
        let det = determinize(&nfa);
        let eq = trace_weak_equiv(&nfa, &det);
        let s = nfa.alphabet().clone();
        let ntg = nfa.trace_grammar();
        let dtg = det.dfa.trace_grammar();
        for w in all_strings(&s, 4) {
            if !nfa.accepts(&w) {
                continue;
            }
            // fwd on the least NFA trace.
            let trace = least_accepting_trace(&nfa, &w);
            let nt = trace.to_parse_tree(&nfa, &ntg, nfa.init());
            let dt = eq.fwd.apply_checked(&nt).unwrap();
            validate(&dt, &dtg.trace(det.dfa.init(), true), &w).unwrap();
            // bwd back.
            let nt2 = eq.bwd.apply_checked(&dt).unwrap();
            validate(&nt2, &ntg.trace(nfa.init()), &w).unwrap();
            // DtoN ∘ NtoD is the identity on least traces (the choice
            // function picks the least trace).
            assert_eq!(nt2, nt, "{w}");
        }
    }

    #[test]
    fn ambiguous_nfa_determinizes_to_unambiguous_dfa() {
        use lambek_core::alphabet::Alphabet;
        let sigma = Alphabet::abc();
        let a = sigma.symbol("a").unwrap();
        let mut nfa = Nfa::new(sigma.clone(), 3, 0);
        nfa.set_accepting(1, true);
        nfa.set_accepting(2, true);
        nfa.add_transition(0, a, 1);
        nfa.add_transition(0, a, 2);
        let det = determinize(&nfa);
        let w = sigma.parse_str("a").unwrap();
        assert!(det.dfa.accepts(&w));
        // Both NFA traces map to the same DFA trace; DtoN picks the least.
        let trace = least_accepting_trace(&nfa, &w);
        assert_eq!(trace, NfaTrace::step(0, NfaTrace::Stop));
    }

    /// The keyword-vs-identifier union NFA both tag tests share: rule 0
    /// is the keyword `if`, rule 1 is the identifier `(i|f|x)+`, glued
    /// under a fresh ε-start — the canonical overlapping-rules shape of
    /// a lexer. Returns the NFA and its per-state tag table.
    fn keyword_vs_identifier() -> (Nfa, Vec<Option<usize>>) {
        use lambek_core::alphabet::Alphabet;
        let sigma = Alphabet::from_chars("ifx");
        let i = sigma.symbol("i").unwrap();
        let f = sigma.symbol("f").unwrap();
        // 0 = start, 1-3 keyword chain, 4-5 identifier loop.
        let mut nfa = Nfa::new(sigma.clone(), 6, 0);
        nfa.add_eps(0, 1);
        nfa.add_transition(1, i, 2);
        nfa.add_transition(2, f, 3);
        nfa.set_accepting(3, true); // "if" accepted by rule 0
        nfa.add_eps(0, 4);
        for c in sigma.symbols() {
            nfa.add_transition(4, c, 5);
            nfa.add_transition(5, c, 5);
        }
        nfa.set_accepting(5, true); // any nonempty word, rule 1
        let mut tags = vec![None; 6];
        tags[3] = Some(0);
        tags[5] = Some(1);
        (nfa, tags)
    }

    #[test]
    fn determinize_resolves_tag_conflicts_by_priority() {
        // After consuming "if" the subset holds both rules' accept
        // states; the keyword (rule 0, higher priority) must win. Plain
        // identifiers keep rule 1's tag.
        let (nfa, tags) = keyword_vs_identifier();
        let det = determinize_tagged(&nfa, &tags);
        let s = nfa.alphabet().clone();
        let tag_after = |txt: &str| {
            let w = s.parse_str(txt).unwrap();
            det.dfa.accept_tag(det.dfa.final_state(det.dfa.init(), &w))
        };
        assert_eq!(tag_after("if"), Some(0), "keyword beats identifier");
        assert_eq!(tag_after("i"), Some(1));
        assert_eq!(tag_after("ifx"), Some(1), "longer than the keyword");
        assert_eq!(tag_after("x"), Some(1));
        assert_eq!(tag_after(""), None, "nothing matches ε");
        assert!(det.dfa.is_tagged());
    }

    #[test]
    fn minimize_preserves_highest_priority_tags() {
        use crate::minimize::minimize;
        let (nfa, tags) = keyword_vs_identifier();
        let det = determinize_tagged(&nfa, &tags);
        let min = minimize(&det.dfa);
        assert!(min.num_states() <= det.dfa.num_states());
        let s = nfa.alphabet().clone();
        for txt in ["", "i", "if", "iff", "ifx", "x", "fi", "xxif"] {
            let w = s.parse_str(txt).unwrap();
            let before = det.dfa.accept_tag(det.dfa.final_state(det.dfa.init(), &w));
            let after = min.accept_tag(min.final_state(min.init(), &w));
            assert_eq!(before, after, "{txt}");
            assert_eq!(det.dfa.accepts(&w), min.accepts(&w), "{txt}");
        }
        // The two distinctly-tagged accepting behaviours survive: "if"
        // and "i" end in different minimized states despite the same
        // accept bit.
        let at = |txt: &str| min.final_state(min.init(), &s.parse_str(txt).unwrap());
        assert_ne!(at("if"), at("i"), "tags refine the partition");
    }

    #[test]
    fn eps_chains_are_followed() {
        use lambek_core::alphabet::Alphabet;
        let sigma = Alphabet::abc();
        let a = sigma.symbol("a").unwrap();
        // 0 -ε-> 1 -ε-> 2 -a-> 3(acc)
        let mut nfa = Nfa::new(sigma.clone(), 4, 0);
        nfa.set_accepting(3, true);
        let e01 = nfa.add_eps(0, 1);
        let e12 = nfa.add_eps(1, 2);
        let t = nfa.add_transition(2, a, 3);
        let w = sigma.parse_str("a").unwrap();
        let trace = least_accepting_trace(&nfa, &w);
        assert_eq!(
            trace,
            NfaTrace::eps_step(
                e01,
                NfaTrace::eps_step(e12, NfaTrace::step(t, NfaTrace::Stop))
            )
        );
        let det = determinize(&nfa);
        assert!(det.dfa.accepts(&w));
    }
}
