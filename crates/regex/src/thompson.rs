//! Thompson's construction with strong-equivalence transformers
//! (Construction 4.11).
//!
//! Every regex `R` compiles to an NFA `N(R)` such that `R` is *strongly
//! equivalent* to `TraceN (N.init)`: parse trees of the regex and
//! accepting traces of the NFA are in bijection, string by string. The
//! construction is compositional — each sub-regex owns a *fragment* with
//! a unique start and accept state — and the bijection is structural
//! recursion over fragments:
//!
//! * `parse → trace`: thread a continuation trace through the fragment;
//! * `trace → parse`: deterministic descent, because every ε-transition
//!   id pins down which fragment and which constructor produced it.

use lambek_automata::nfa::{Nfa, NfaTrace, StateId};
use lambek_core::alphabet::Alphabet;
use lambek_core::grammar::parse_tree::ParseTree;
use lambek_core::theory::equivalence::{StrongEquiv, WeakEquiv};
use lambek_core::transform::{TransformError, Transformer};

use crate::ast::Regex;

/// Wiring metadata of one fragment, mirroring the regex structure.
#[derive(Debug, Clone)]
enum Frag {
    /// `∅`: two disconnected states.
    Empty,
    /// `ε`: one ε-transition `start → acc`.
    Eps { e: usize },
    /// `'c'`: one labeled transition.
    Char { t: usize },
    /// `l · r` with an ε bridging `l.acc → r.start`.
    Concat {
        mid: usize,
        l: Box<FragMeta>,
        r: Box<FragMeta>,
    },
    /// `l | r` with ε fan-out/fan-in.
    Alt {
        into_l: usize,
        into_r: usize,
        out_l: usize,
        out_r: usize,
        l: Box<FragMeta>,
        r: Box<FragMeta>,
    },
    /// `r*`: `start --enter--> inner.start`, `inner.acc --back--> start`,
    /// `start --exit--> acc`.
    Star {
        enter: usize,
        exit: usize,
        back: usize,
        inner: Box<FragMeta>,
    },
}

#[derive(Debug, Clone)]
struct FragMeta {
    start: StateId,
    #[allow(dead_code)]
    acc: StateId,
    frag: Frag,
}

/// A Thompson-compiled regex: the NFA plus the fragment tree that defines
/// the parse↔trace bijection.
#[derive(Debug, Clone)]
pub struct Thompson {
    nfa: Nfa,
    root: FragMeta,
}

/// Runs Thompson's construction (Construction 4.11).
pub fn thompson(alphabet: &Alphabet, re: &Regex) -> Thompson {
    // Start with a single placeholder state; `build` adds the real ones.
    let mut nfa = Nfa::new(alphabet.clone(), 1, 0);
    // State 0 is reused as the root fragment's start.
    let root = build(&mut nfa, re, Some(0));
    nfa.set_accepting(root.acc, true);
    Thompson { nfa, root }
}

fn build(nfa: &mut Nfa, re: &Regex, reuse_start: Option<StateId>) -> FragMeta {
    let start = reuse_start.unwrap_or_else(|| nfa.add_state());
    match re {
        Regex::Empty => {
            let acc = nfa.add_state();
            FragMeta {
                start,
                acc,
                frag: Frag::Empty,
            }
        }
        Regex::Eps => {
            let acc = nfa.add_state();
            let e = nfa.add_eps(start, acc);
            FragMeta {
                start,
                acc,
                frag: Frag::Eps { e },
            }
        }
        Regex::Char(c) => {
            let acc = nfa.add_state();
            let t = nfa.add_transition(start, *c, acc);
            FragMeta {
                start,
                acc,
                frag: Frag::Char { t },
            }
        }
        Regex::Concat(l, r) => {
            let lf = build(nfa, l, Some(start));
            let rf = build(nfa, r, None);
            let mid = nfa.add_eps(lf.acc, rf.start);
            FragMeta {
                start,
                acc: rf.acc,
                frag: Frag::Concat {
                    mid,
                    l: Box::new(lf),
                    r: Box::new(rf),
                },
            }
        }
        Regex::Alt(l, r) => {
            let lf = build(nfa, l, None);
            let rf = build(nfa, r, None);
            let acc = nfa.add_state();
            let into_l = nfa.add_eps(start, lf.start);
            let into_r = nfa.add_eps(start, rf.start);
            let out_l = nfa.add_eps(lf.acc, acc);
            let out_r = nfa.add_eps(rf.acc, acc);
            FragMeta {
                start,
                acc,
                frag: Frag::Alt {
                    into_l,
                    into_r,
                    out_l,
                    out_r,
                    l: Box::new(lf),
                    r: Box::new(rf),
                },
            }
        }
        Regex::Star(inner) => {
            let inf = build(nfa, inner, None);
            let acc = nfa.add_state();
            let enter = nfa.add_eps(start, inf.start);
            let back = nfa.add_eps(inf.acc, start);
            let exit = nfa.add_eps(start, acc);
            FragMeta {
                start,
                acc,
                frag: Frag::Star {
                    enter,
                    exit,
                    back,
                    inner: Box::new(inf),
                },
            }
        }
    }
}

impl Thompson {
    /// The constructed NFA.
    pub fn nfa(&self) -> &Nfa {
        &self.nfa
    }

    /// Converts a regex parse tree to the corresponding accepting trace,
    /// appending `k` after the fragment (continuation style).
    fn tree_to_trace(
        &self,
        meta: &FragMeta,
        tree: &ParseTree,
        k: NfaTrace,
    ) -> Result<NfaTrace, TransformError> {
        let fail = |what: &str| {
            Err(TransformError::Custom(format!(
                "thompson: expected {what}, got {tree}"
            )))
        };
        match (&meta.frag, tree) {
            (Frag::Char { t }, ParseTree::Char(_)) => Ok(NfaTrace::step(*t, k)),
            (Frag::Eps { e }, ParseTree::Unit) => Ok(NfaTrace::eps_step(*e, k)),
            (Frag::Empty, _) => fail("no parse of ∅"),
            (Frag::Concat { mid, l, r }, ParseTree::Pair(tl, tr)) => {
                // Continuation: l-part, then the bridge ε, then r-part.
                let kr = self.tree_to_trace(r, tr, k)?;
                self.tree_to_trace(l, tl, NfaTrace::eps_step(*mid, kr))
            }
            (
                Frag::Alt {
                    into_l,
                    into_r,
                    out_l,
                    out_r,
                    l,
                    r,
                },
                ParseTree::Inj { index, tree },
            ) => match index {
                0 => Ok(NfaTrace::eps_step(
                    *into_l,
                    self.tree_to_trace(l, tree, NfaTrace::eps_step(*out_l, k))?,
                )),
                1 => Ok(NfaTrace::eps_step(
                    *into_r,
                    self.tree_to_trace(r, tree, NfaTrace::eps_step(*out_r, k))?,
                )),
                _ => fail("binary σ"),
            },
            (Frag::Star { .. }, ParseTree::Roll(_)) => self.star_to_trace(meta, tree, k),
            _ => fail("a tree matching the fragment"),
        }
    }

    fn star_to_trace(
        &self,
        meta: &FragMeta,
        tree: &ParseTree,
        k: NfaTrace,
    ) -> Result<NfaTrace, TransformError> {
        let (enter, exit, back, inner) = match &meta.frag {
            Frag::Star {
                enter,
                exit,
                back,
                inner,
            } => (*enter, *exit, *back, inner),
            _ => unreachable!("star_to_trace on a star fragment"),
        };
        // List tree: roll (σ0 ()) | roll (σ1 (head, tail)).
        let inner_tree = match tree {
            ParseTree::Roll(t) => &**t,
            other => {
                return Err(TransformError::Custom(format!(
                    "thompson: star parse must be roll, got {other}"
                )))
            }
        };
        match inner_tree {
            ParseTree::Inj { index: 0, .. } => Ok(NfaTrace::eps_step(exit, k)),
            ParseTree::Inj {
                index: 1,
                tree: pair,
            } => match &**pair {
                ParseTree::Pair(head, tail) => {
                    let rest = self.star_to_trace(meta, tail, k)?;
                    let after_head = NfaTrace::eps_step(back, rest);
                    Ok(NfaTrace::eps_step(
                        enter,
                        self.tree_to_trace(inner, head, after_head)?,
                    ))
                }
                other => Err(TransformError::Custom(format!(
                    "thompson: cons must be a pair, got {other}"
                ))),
            },
            other => Err(TransformError::Custom(format!(
                "thompson: star parse must be σ0/σ1, got {other}"
            ))),
        }
    }

    /// Converts a trace back to a parse tree of the fragment's regex,
    /// returning the unconsumed remainder of the trace.
    fn trace_to_tree<'t>(
        &self,
        meta: &FragMeta,
        re: &Regex,
        trace: &'t NfaTrace,
    ) -> Result<(ParseTree, &'t NfaTrace), TransformError> {
        let fail = |what: &str| {
            Err(TransformError::Custom(format!(
                "thompson: malformed trace, expected {what}"
            )))
        };
        match (&meta.frag, re) {
            (Frag::Char { t }, Regex::Char(c)) => match trace {
                NfaTrace::Step { transition, rest } if transition == t => {
                    Ok((ParseTree::Char(*c), rest))
                }
                _ => fail("the fragment's labeled step"),
            },
            (Frag::Eps { e }, Regex::Eps) => match trace {
                NfaTrace::EpsStep { eps, rest } if eps == e => Ok((ParseTree::Unit, rest)),
                _ => fail("the fragment's ε step"),
            },
            (Frag::Empty, Regex::Empty) => fail("no trace through ∅"),
            (Frag::Concat { mid, l, r }, Regex::Concat(rl, rr)) => {
                let (tl, after_l) = self.trace_to_tree(l, rl, trace)?;
                let after_mid = match after_l {
                    NfaTrace::EpsStep { eps, rest } if eps == mid => rest,
                    _ => return fail("the concat bridge ε"),
                };
                let (tr, rest) = self.trace_to_tree(r, rr, after_mid)?;
                Ok((ParseTree::pair(tl, tr), rest))
            }
            (
                Frag::Alt {
                    into_l,
                    into_r,
                    out_l,
                    out_r,
                    l,
                    r,
                },
                Regex::Alt(rl, rr),
            ) => match trace {
                NfaTrace::EpsStep { eps, rest } if eps == into_l => {
                    let (t, after) = self.trace_to_tree(l, rl, rest)?;
                    match after {
                        NfaTrace::EpsStep { eps, rest } if eps == out_l => {
                            Ok((ParseTree::inj(0, t), rest))
                        }
                        _ => fail("the left fan-in ε"),
                    }
                }
                NfaTrace::EpsStep { eps, rest } if eps == into_r => {
                    let (t, after) = self.trace_to_tree(r, rr, rest)?;
                    match after {
                        NfaTrace::EpsStep { eps, rest } if eps == out_r => {
                            Ok((ParseTree::inj(1, t), rest))
                        }
                        _ => fail("the right fan-in ε"),
                    }
                }
                _ => fail("an alternation branch ε"),
            },
            (Frag::Star { .. }, Regex::Star(inner_re)) => {
                self.star_trace_to_tree(meta, inner_re, trace)
            }
            _ => fail("a fragment matching the regex"),
        }
    }

    fn star_trace_to_tree<'t>(
        &self,
        meta: &FragMeta,
        inner_re: &Regex,
        trace: &'t NfaTrace,
    ) -> Result<(ParseTree, &'t NfaTrace), TransformError> {
        let (enter, exit, back, inner) = match &meta.frag {
            Frag::Star {
                enter,
                exit,
                back,
                inner,
            } => (enter, exit, back, inner),
            _ => unreachable!("called on a star fragment"),
        };
        match trace {
            NfaTrace::EpsStep { eps, rest } if eps == exit => {
                Ok((ParseTree::roll(ParseTree::inj(0, ParseTree::Unit)), rest))
            }
            NfaTrace::EpsStep { eps, rest } if eps == enter => {
                let (head, after) = self.trace_to_tree(inner, inner_re, rest)?;
                let after_back = match after {
                    NfaTrace::EpsStep { eps, rest } if eps == back => rest,
                    _ => {
                        return Err(TransformError::Custom(
                            "thompson: expected the star loop-back ε".to_owned(),
                        ))
                    }
                };
                let (tail, rest) = self.star_trace_to_tree(meta, inner_re, after_back)?;
                Ok((
                    ParseTree::roll(ParseTree::inj(1, ParseTree::pair(head, tail))),
                    rest,
                ))
            }
            _ => Err(TransformError::Custom(
                "thompson: expected a star enter/exit ε".to_owned(),
            )),
        }
    }
}

/// The strong equivalence `R ≅ TraceN (N.init)` of Construction 4.11, as
/// checked transformers between the regex grammar and the trace grammar.
pub fn thompson_strong_equiv(alphabet: &Alphabet, re: &Regex) -> (Thompson, StrongEquiv) {
    let th = thompson(alphabet, re);
    let tg = th.nfa.trace_grammar();
    let regex_g = re.to_grammar();
    let trace_g = tg.trace(th.nfa.init());

    let th_f = th.clone();
    let tg_f = tg.clone();
    let fwd = Transformer::from_fn(
        "regex→trace",
        regex_g.clone(),
        trace_g.clone(),
        move |t| {
            let trace = th_f.tree_to_trace(&th_f.root, t, NfaTrace::Stop)?;
            Ok(trace.to_parse_tree(&th_f.nfa, &tg_f, th_f.nfa.init()))
        },
    );

    let th_b = th.clone();
    let re_b = re.clone();
    let bwd = Transformer::from_fn("trace→regex", trace_g, regex_g, move |t| {
        let trace = NfaTrace::from_parse_tree(t, &th_b.nfa, &tg, th_b.nfa.init());
        let (tree, rest) = th_b.trace_to_tree(&th_b.root, &re_b, &trace)?;
        match rest {
            NfaTrace::Stop => Ok(tree),
            other => Err(TransformError::Custom(format!(
                "thompson: trailing trace {other}"
            ))),
        }
    });

    (th, StrongEquiv::new(WeakEquiv::new(fwd, bwd)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_regex;
    use crate::derivative::matches;
    use lambek_core::grammar::compile::CompiledGrammar;
    use lambek_core::theory::unambiguous::all_strings;

    #[test]
    fn thompson_preserves_language() {
        let s = Alphabet::abc();
        for src in ["a", "a*", "(a*b)|c", "ab|ba", "(ab)*", "a*b*", "ε", "∅"] {
            let re = parse_regex(&s, src).unwrap();
            let th = thompson(&s, &re);
            for w in all_strings(&s, 4) {
                assert_eq!(th.nfa().accepts(&w), matches(&re, &w), "{src} on {w}");
            }
        }
    }

    #[test]
    fn nfa_size_is_linear_in_regex_size() {
        let s = Alphabet::abc();
        for src in ["a", "(a|b)*c", "a*b*c*", "((a|b)*|c)*"] {
            let re = parse_regex(&s, src).unwrap();
            let th = thompson(&s, &re);
            assert!(
                th.nfa().num_states() <= 2 * re.size() + 2,
                "{src}: {} states for size {}",
                th.nfa().num_states(),
                re.size()
            );
        }
    }

    #[test]
    fn construction_4_11_strong_equivalence() {
        let s = Alphabet::abc();
        for src in ["a", "(a*b)|c", "ab|ab", "(a|ε)b", "(ab)*"] {
            let re = parse_regex(&s, src).unwrap();
            let (_, eq) = thompson_strong_equiv(&s, &re);
            let strings = all_strings(&s, 3);
            eq.check_on(&strings, 32)
                .unwrap_or_else(|e| panic!("{src}: {e}"));
            eq.check_counts_on(&strings, 32)
                .unwrap_or_else(|e| panic!("{src}: {e}"));
        }
    }

    #[test]
    fn ambiguity_is_preserved_by_thompson() {
        // ab|ab has two parses of "ab"; so must its trace grammar.
        let s = Alphabet::abc();
        let re = parse_regex(&s, "ab|ab").unwrap();
        let th = thompson(&s, &re);
        let tg = th.nfa().trace_grammar();
        let cg = CompiledGrammar::new(&tg.trace(th.nfa().init()));
        let amb = cg.count_parses(&s.parse_str("ab").unwrap(), 8);
        assert_eq!(amb.count, 2);
    }

    #[test]
    fn fig3_term_maps_to_fig5_style_trace() {
        // The Fig. 3 parse of "ab" in (a*b)|c maps to an accepting trace.
        let s = Alphabet::abc();
        let re = parse_regex(&s, "(a*b)|c").unwrap();
        let (th, eq) = thompson_strong_equiv(&s, &re);
        let cg = CompiledGrammar::new(&re.to_grammar());
        let w = s.parse_str("ab").unwrap();
        let parses = cg.parses(&w, 8);
        assert_eq!(parses.trees.len(), 1);
        let trace_tree = eq.weak().fwd.apply_checked(&parses.trees[0]).unwrap();
        assert_eq!(trace_tree.flatten(), w);
        let _ = th;
    }
}
