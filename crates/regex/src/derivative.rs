//! Brzozowski-derivative matching: the baseline regex engine.
//!
//! The paper's verified pipeline compiles a regex to an NFA and then a
//! DFA; this module is the *baseline comparator* the benchmarks measure
//! against — a classical derivative matcher that recognizes the same
//! language with no parse trees and no verification story. Smart
//! constructors keep derivative sizes polynomial in practice.

use lambek_core::alphabet::{GString, Symbol};

use crate::ast::Regex;

/// Smart alternation: identifies `∅ | r = r` and `r | r = r`.
fn salt(l: Regex, r: Regex) -> Regex {
    match (l, r) {
        (Regex::Empty, r) => r,
        (l, Regex::Empty) => l,
        (l, r) if l == r => l,
        (l, r) => Regex::alt(l, r),
    }
}

/// Smart concatenation: `∅ r = ∅`, `ε r = r`, etc.
fn sconcat(l: Regex, r: Regex) -> Regex {
    match (l, r) {
        (Regex::Empty, _) | (_, Regex::Empty) => Regex::Empty,
        (Regex::Eps, r) => r,
        (l, Regex::Eps) => l,
        (l, r) => Regex::concat(l, r),
    }
}

/// The Brzozowski derivative `∂_c r`: the residual language after
/// consuming `c`.
pub fn derivative(re: &Regex, c: Symbol) -> Regex {
    match re {
        Regex::Empty | Regex::Eps => Regex::Empty,
        Regex::Char(d) => {
            if *d == c {
                Regex::Eps
            } else {
                Regex::Empty
            }
        }
        Regex::Concat(l, r) => {
            let step_l = sconcat(derivative(l, c), (**r).clone());
            if l.nullable() {
                salt(step_l, derivative(r, c))
            } else {
                step_l
            }
        }
        Regex::Alt(l, r) => salt(derivative(l, c), derivative(r, c)),
        Regex::Star(inner) => sconcat(derivative(inner, c), Regex::star((**inner).clone())),
    }
}

/// Whether `re` matches `w`, by iterated derivatives.
pub fn matches(re: &Regex, w: &GString) -> bool {
    let mut cur = re.clone();
    for c in w.iter() {
        cur = derivative(&cur, c);
        if cur == Regex::Empty {
            return false;
        }
    }
    cur.nullable()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_regex;
    use lambek_core::alphabet::Alphabet;
    use lambek_core::grammar::compile::CompiledGrammar;
    use lambek_core::theory::unambiguous::all_strings;

    #[test]
    fn running_example_language() {
        let s = Alphabet::abc();
        let re = parse_regex(&s, "(a*b)|c").unwrap();
        for yes in ["b", "ab", "aaab", "c"] {
            assert!(matches(&re, &s.parse_str(yes).unwrap()), "{yes}");
        }
        for no in ["", "a", "ba", "cc"] {
            assert!(!matches(&re, &s.parse_str(no).unwrap()), "{no}");
        }
    }

    #[test]
    fn derivatives_agree_with_denotational_recognizer() {
        let s = Alphabet::abc();
        for src in ["a", "a*", "(a|b)*c", "a(b|c)*", "ab|ba", "(ab)*", "a*b*c*"] {
            let re = parse_regex(&s, src).unwrap();
            let cg = CompiledGrammar::new(&re.to_grammar());
            for w in all_strings(&s, 4) {
                assert_eq!(matches(&re, &w), cg.recognizes(&w), "{src} on {w}");
            }
        }
    }

    #[test]
    fn empty_language_never_matches() {
        let s = Alphabet::abc();
        let re = parse_regex(&s, "a∅b").unwrap();
        for w in all_strings(&s, 3) {
            assert!(!matches(&re, &w));
        }
    }

    #[test]
    fn derivative_of_star_unfolds_once() {
        let s = Alphabet::abc();
        let a = s.symbol("a").unwrap();
        let re = parse_regex(&s, "(ab)*").unwrap();
        let d = derivative(&re, a);
        // ∂_a (ab)* = b (ab)*.
        assert!(matches(&d, &s.parse_str("b").unwrap()));
        assert!(matches(&d, &s.parse_str("bab").unwrap()));
        assert!(!matches(&d, &s.parse_str("ab").unwrap()));
    }
}
