//! Regular expression abstract syntax.
//!
//! A regular expression in LambekD is a linear type built from `'c'`, `0`,
//! `⊕`, `I`, `⊗` and Kleene star (§4.1). [`Regex`] is the syntactic form;
//! [`Regex::to_grammar`] is the (definitional) reading as a grammar.

use std::fmt;

use lambek_core::alphabet::{Alphabet, Symbol};
use lambek_core::grammar::expr::{alt, bot, chr, eps, star, tensor, Grammar};

/// A regular expression over some alphabet.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Regex {
    /// The empty language `0`.
    Empty,
    /// The empty string `I`.
    Eps,
    /// A single character `'c'`.
    Char(Symbol),
    /// Concatenation `r ⊗ s`.
    Concat(Box<Regex>, Box<Regex>),
    /// Alternation `r ⊕ s`.
    Alt(Box<Regex>, Box<Regex>),
    /// Kleene star `r*`.
    Star(Box<Regex>),
}

impl Regex {
    /// Concatenation helper.
    pub fn concat(l: Regex, r: Regex) -> Regex {
        Regex::Concat(Box::new(l), Box::new(r))
    }

    /// Alternation helper.
    pub fn alt(l: Regex, r: Regex) -> Regex {
        Regex::Alt(Box::new(l), Box::new(r))
    }

    /// Kleene star helper.
    pub fn star(r: Regex) -> Regex {
        Regex::Star(Box::new(r))
    }

    /// Number of AST nodes.
    pub fn size(&self) -> usize {
        match self {
            Regex::Empty | Regex::Eps | Regex::Char(_) => 1,
            Regex::Concat(l, r) | Regex::Alt(l, r) => 1 + l.size() + r.size(),
            Regex::Star(r) => 1 + r.size(),
        }
    }

    /// Whether the regex matches the empty string.
    pub fn nullable(&self) -> bool {
        match self {
            Regex::Empty | Regex::Char(_) => false,
            Regex::Eps | Regex::Star(_) => true,
            Regex::Concat(l, r) => l.nullable() && r.nullable(),
            Regex::Alt(l, r) => l.nullable() || r.nullable(),
        }
    }

    /// The regex as a linear type: the grammar whose parses are the
    /// regex's parse trees (`0`, `I`, `'c'`, `⊗`, binary `⊕`, star).
    pub fn to_grammar(&self) -> Grammar {
        match self {
            Regex::Empty => bot(),
            Regex::Eps => eps(),
            Regex::Char(c) => chr(*c),
            Regex::Concat(l, r) => tensor(l.to_grammar(), r.to_grammar()),
            Regex::Alt(l, r) => alt(l.to_grammar(), r.to_grammar()),
            Regex::Star(r) => star(r.to_grammar()),
        }
    }

    /// Renders with the given alphabet's symbol names.
    pub fn display(&self, alphabet: &Alphabet) -> String {
        fn go(re: &Regex, alphabet: &Alphabet, prec: u8, out: &mut String) {
            match re {
                Regex::Empty => out.push('∅'),
                Regex::Eps => out.push('ε'),
                Regex::Char(c) => out.push_str(alphabet.name(*c)),
                Regex::Alt(l, r) => {
                    if prec > 0 {
                        out.push('(');
                    }
                    go(l, alphabet, 0, out);
                    out.push('|');
                    go(r, alphabet, 0, out);
                    if prec > 0 {
                        out.push(')');
                    }
                }
                Regex::Concat(l, r) => {
                    if prec > 1 {
                        out.push('(');
                    }
                    go(l, alphabet, 1, out);
                    go(r, alphabet, 1, out);
                    if prec > 1 {
                        out.push(')');
                    }
                }
                Regex::Star(r) => {
                    go(r, alphabet, 2, out);
                    out.push('*');
                }
            }
        }
        let mut out = String::new();
        go(self, alphabet, 0, &mut out);
        out
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Regex::Empty => write!(f, "∅"),
            Regex::Eps => write!(f, "ε"),
            Regex::Char(c) => write!(f, "#{}", c.index()),
            Regex::Concat(l, r) => write!(f, "({l}·{r})"),
            Regex::Alt(l, r) => write!(f, "({l}|{r})"),
            Regex::Star(r) => write!(f, "{r}*"),
        }
    }
}

/// Errors from the concrete-syntax parser.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexSyntaxError {
    /// Byte position of the error in the input.
    pub position: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for RegexSyntaxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "regex syntax error at {}: {}",
            self.position, self.message
        )
    }
}

impl std::error::Error for RegexSyntaxError {}

/// Parses concrete regex syntax over a single-character-name alphabet:
/// alternation `|`, juxtaposition for concatenation, postfix `*`, groups
/// `( … )`, `ε` for the empty string and `∅` for the empty language.
///
/// # Errors
///
/// Returns a [`RegexSyntaxError`] with the offending position.
///
/// # Examples
///
/// ```
/// use lambek_core::alphabet::Alphabet;
/// use regex_grammars::ast::parse_regex;
///
/// let sigma = Alphabet::abc();
/// let re = parse_regex(&sigma, "(a*b)|c").unwrap();
/// assert_eq!(re.display(&sigma), "a*b|c");
/// ```
pub fn parse_regex(alphabet: &Alphabet, input: &str) -> Result<Regex, RegexSyntaxError> {
    let chars: Vec<char> = input.chars().collect();
    let mut p = Parser {
        alphabet,
        chars: &chars,
        pos: 0,
    };
    let re = p.alternation()?;
    if p.pos != p.chars.len() {
        return Err(p.error("unexpected trailing input"));
    }
    Ok(re)
}

struct Parser<'a> {
    alphabet: &'a Alphabet,
    chars: &'a [char],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: &str) -> RegexSyntaxError {
        RegexSyntaxError {
            position: self.pos,
            message: message.to_owned(),
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn alternation(&mut self) -> Result<Regex, RegexSyntaxError> {
        let mut lhs = self.concatenation()?;
        while self.peek() == Some('|') {
            self.pos += 1;
            let rhs = self.concatenation()?;
            lhs = Regex::alt(lhs, rhs);
        }
        Ok(lhs)
    }

    fn concatenation(&mut self) -> Result<Regex, RegexSyntaxError> {
        let mut parts = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            parts.push(self.postfix()?);
        }
        let mut iter = parts.into_iter();
        match iter.next() {
            None => Ok(Regex::Eps),
            Some(first) => Ok(iter.fold(first, Regex::concat)),
        }
    }

    fn postfix(&mut self) -> Result<Regex, RegexSyntaxError> {
        let mut base = self.atom()?;
        while self.peek() == Some('*') {
            self.pos += 1;
            base = Regex::star(base);
        }
        Ok(base)
    }

    fn atom(&mut self) -> Result<Regex, RegexSyntaxError> {
        match self.peek() {
            Some('(') => {
                self.pos += 1;
                let inner = self.alternation()?;
                if self.peek() != Some(')') {
                    return Err(self.error("expected ')'"));
                }
                self.pos += 1;
                Ok(inner)
            }
            Some('ε') => {
                self.pos += 1;
                Ok(Regex::Eps)
            }
            Some('∅') => {
                self.pos += 1;
                Ok(Regex::Empty)
            }
            Some('*') => Err(self.error("'*' needs something to repeat")),
            Some(c) => match self.alphabet.symbol(&c.to_string()) {
                Some(sym) => {
                    self.pos += 1;
                    Ok(Regex::Char(sym))
                }
                None => Err(self.error(&format!("unknown symbol {c:?}"))),
            },
            None => Err(self.error("unexpected end of input")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn abc() -> Alphabet {
        Alphabet::abc()
    }

    #[test]
    fn parse_the_running_example() {
        let s = abc();
        let re = parse_regex(&s, "(a*b)|c").unwrap();
        let a = s.symbol("a").unwrap();
        let b = s.symbol("b").unwrap();
        let c = s.symbol("c").unwrap();
        assert_eq!(
            re,
            Regex::alt(
                Regex::concat(Regex::star(Regex::Char(a)), Regex::Char(b)),
                Regex::Char(c)
            )
        );
    }

    #[test]
    fn precedence_star_binds_tightest() {
        let s = abc();
        let re = parse_regex(&s, "ab*").unwrap();
        assert!(matches!(re, Regex::Concat(_, _)));
        let re2 = parse_regex(&s, "(ab)*").unwrap();
        assert!(matches!(re2, Regex::Star(_)));
    }

    #[test]
    fn empty_and_eps_literals() {
        let s = abc();
        assert_eq!(parse_regex(&s, "ε").unwrap(), Regex::Eps);
        assert_eq!(parse_regex(&s, "∅").unwrap(), Regex::Empty);
        assert_eq!(parse_regex(&s, "").unwrap(), Regex::Eps);
    }

    #[test]
    fn syntax_errors_carry_positions() {
        let s = abc();
        let err = parse_regex(&s, "a(b").unwrap_err();
        assert_eq!(err.position, 3);
        let err = parse_regex(&s, "z").unwrap_err();
        assert_eq!(err.position, 0);
        assert!(parse_regex(&s, "*a").is_err());
        assert!(parse_regex(&s, "a)b").is_err());
    }

    #[test]
    fn display_roundtrips_through_parser() {
        let s = abc();
        for src in ["a", "ab", "a|b", "(a|b)*c", "a*b*", "(ab)*(c|ε)"] {
            let re = parse_regex(&s, src).unwrap();
            let shown = re.display(&s);
            let re2 = parse_regex(&s, &shown).unwrap();
            assert_eq!(re, re2, "{src} → {shown}");
        }
    }

    #[test]
    fn nullable_matches_grammar_nullability() {
        let s = abc();
        use lambek_core::grammar::compile::CompiledGrammar;
        for src in ["a", "a*", "ab", "a|ε", "(a|b)*", "∅", "a∅"] {
            let re = parse_regex(&s, src).unwrap();
            let cg = CompiledGrammar::new(&re.to_grammar());
            assert_eq!(re.nullable(), cg.nullable(cg.root()), "{src}");
        }
    }
}
