//! Memoized derivative matching: a lazily-built DFA over derivative
//! states.
//!
//! [`derivative::matches`](crate::derivative::matches) re-derives the
//! regex character by character on every call, which is fine as a
//! baseline but too slow to run once per lexeme inside the incremental
//! lex certifier. [`LazyDerivMatcher`] keeps the same semantics —
//! membership is still decided purely by Brzozowski derivatives — but
//! interns each derivative it encounters as a state and memoizes the
//! `state × symbol` transitions in a dense table, so repeated matching
//! against the same rule converges to one table lookup per character.
//! The smart constructors in [`derivative`](crate::derivative) keep the
//! derivative state space small in practice.

use std::collections::HashMap;
use std::sync::Mutex;

use lambek_core::alphabet::{GString, Symbol};

use crate::ast::Regex;
use crate::derivative::derivative;

/// A transition not yet computed.
const UNKNOWN: u32 = u32::MAX;

/// A memoizing derivative matcher for one regex.
///
/// Interior mutability (a mutex around the state table) makes the
/// matcher `Send + Sync`, so it can sit inside shared compiled
/// artifacts; the lock is held only for the duration of one `matches`
/// call.
#[derive(Debug)]
pub struct LazyDerivMatcher {
    alphabet_len: usize,
    inner: Mutex<LazyStates>,
}

#[derive(Debug)]
struct LazyStates {
    /// Canonical derivative → state index.
    index: HashMap<Regex, u32>,
    /// Per state: does the derivative accept ε?
    nullable: Vec<bool>,
    /// Per state: the derivative itself (needed to extend the table).
    regexes: Vec<Regex>,
    /// Row-major `state × alphabet_len` transitions, [`UNKNOWN`] where
    /// not yet computed.
    delta: Vec<u32>,
}

impl LazyStates {
    fn intern(&mut self, re: Regex, alphabet_len: usize) -> u32 {
        if let Some(&id) = self.index.get(&re) {
            return id;
        }
        let id = self.regexes.len() as u32;
        self.index.insert(re.clone(), id);
        self.nullable.push(re.nullable());
        self.regexes.push(re);
        self.delta
            .extend(std::iter::repeat_n(UNKNOWN, alphabet_len));
        id
    }

    fn step(&mut self, state: u32, sym: Symbol, alphabet_len: usize) -> u32 {
        let idx = sym.index();
        if idx >= alphabet_len {
            // A symbol outside the alphabet the table was sized for:
            // still answered honestly via a fresh derivative, just not
            // memoized (it cannot recur for well-formed inputs).
            let d = derivative(&self.regexes[state as usize], sym);
            return self.intern(d, alphabet_len);
        }
        let slot = state as usize * alphabet_len + idx;
        let cached = self.delta[slot];
        if cached != UNKNOWN {
            return cached;
        }
        let d = derivative(&self.regexes[state as usize], sym);
        let next = self.intern(d, alphabet_len);
        self.delta[state as usize * alphabet_len + idx] = next;
        next
    }
}

impl LazyDerivMatcher {
    /// Wraps `re` for repeated membership queries over an alphabet of
    /// `alphabet_len` symbols.
    pub fn new(re: Regex, alphabet_len: usize) -> LazyDerivMatcher {
        let mut states = LazyStates {
            index: HashMap::new(),
            nullable: Vec::new(),
            regexes: Vec::new(),
            delta: Vec::new(),
        };
        states.intern(re, alphabet_len);
        LazyDerivMatcher {
            alphabet_len,
            inner: Mutex::new(states),
        }
    }

    /// Whether the regex matches `w`, by memoized derivative stepping.
    pub fn matches(&self, w: &GString) -> bool {
        let mut inner = self.inner.lock().expect("matcher lock");
        let mut state = 0u32;
        for sym in w.iter() {
            state = inner.step(state, sym, self.alphabet_len);
        }
        inner.nullable[state as usize]
    }

    /// How many distinct derivative states have been discovered so far.
    pub fn num_states(&self) -> usize {
        self.inner.lock().expect("matcher lock").regexes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_regex;
    use crate::derivative::matches as slow_matches;
    use lambek_core::alphabet::Alphabet;
    use lambek_core::theory::unambiguous::all_strings;

    #[test]
    fn agrees_with_the_reference_matcher_exhaustively() {
        let s = Alphabet::abc();
        for src in [
            "a", "a*", "(a|b)*c", "a(b|c)*", "ab|ba", "(ab)*", "a*b*c*", "∅", "ε",
        ] {
            let re = parse_regex(&s, src).unwrap();
            let fast = LazyDerivMatcher::new(re.clone(), s.len());
            for w in all_strings(&s, 5) {
                assert_eq!(fast.matches(&w), slow_matches(&re, &w), "{src} on {w}");
            }
        }
    }

    #[test]
    fn memoization_converges_to_finitely_many_states() {
        let s = Alphabet::abc();
        let re = parse_regex(&s, "(a|b)*c").unwrap();
        let fast = LazyDerivMatcher::new(re, s.len());
        for w in all_strings(&s, 6) {
            fast.matches(&w);
        }
        let settled = fast.num_states();
        for w in all_strings(&s, 6) {
            fast.matches(&w);
        }
        // A second sweep discovers nothing new: every transition hits
        // the memo table.
        assert_eq!(fast.num_states(), settled);
        assert!(settled <= 8, "derivative DFA stays small: {settled}");
    }

    #[test]
    fn matcher_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LazyDerivMatcher>();
    }
}
