//! # regex-grammars — verified regular-expression parsing in LambekD
//!
//! Regular expressions as linear types (§4.1 of the paper):
//!
//! * [`ast`] — the regex syntax, its reading as a grammar, and a
//!   concrete-syntax parser;
//! * [`derivative`] — Brzozowski derivatives, the unverified baseline the
//!   benchmarks compare against;
//! * [`lazy`] — the same derivatives with memoized states and
//!   transitions, fast enough to re-match every lexeme incrementally;
//! * [`thompson`] — Construction 4.11: regex → NFA with a *strong*
//!   equivalence between regex parses and accepting traces;
//! * [`pipeline`] — Corollary 4.12: the composed verified parser
//!   (Thompson, then Rabin–Scott, then the Theorem 4.9 trace parser,
//!   extended back along the equivalences with Lemma 4.8);
//! * [`gen`] — random regex generation.
//!
//! # Example
//!
//! ```
//! use lambek_core::alphabet::Alphabet;
//! use regex_grammars::ast::parse_regex;
//! use regex_grammars::pipeline::RegexParser;
//!
//! let sigma = Alphabet::abc();
//! let re = parse_regex(&sigma, "(a*b)|c")?;
//! let parser = RegexParser::compile(&sigma, re)?;
//! let w = sigma.parse_str("aab").unwrap();
//! let outcome = parser.parse(&w)?;
//! assert!(outcome.is_accept());
//! // The accepted tree is a parse of the *regex grammar* for exactly `w`.
//! assert_eq!(outcome.accepted().unwrap().flatten(), w);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![deny(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod ast;
pub mod derivative;
pub mod gen;
pub mod lazy;
pub mod pipeline;
pub mod thompson;
