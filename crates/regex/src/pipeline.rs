//! The verified regex parser pipeline (Corollary 4.12).
//!
//! For any regex `R`:
//!
//! 1. Thompson's construction gives `R ≅ TraceN` (Construction 4.11);
//! 2. determinization gives `TraceN ≈ TraceD(·, true)` (Construction
//!    4.10);
//! 3. Theorem 4.9 gives a verified parser for `TraceD(·, true)` with
//!    negative grammar `TraceD(·, false)`;
//! 4. Lemma 4.8 extends that parser along the two equivalences back to a
//!    verified parser *for the regex grammar itself* — accepted inputs
//!    come back with an actual regex parse tree, rejected inputs with a
//!    rejecting DFA trace, and the two grammars are disjoint.
//!
//! This module composes exactly those four pieces.

use lambek_automata::determinize::{determinize, trace_weak_equiv, Determinized};
use lambek_automata::run::dfa_trace_parser;
use lambek_core::alphabet::{Alphabet, GString};
use lambek_core::theory::equivalence::WeakEquiv;
use lambek_core::theory::parser::{extend_parser, ParseOutcome, VerifiedParser};
use lambek_core::transform::TransformError;

use crate::ast::Regex;
use crate::thompson::{thompson_strong_equiv, Thompson};

/// A fully verified regex parser: the composed pipeline of Corollary 4.12.
#[derive(Debug)]
pub struct RegexParser {
    regex: Regex,
    alphabet: Alphabet,
    thompson: Thompson,
    determinized: Determinized,
    parser: VerifiedParser,
}

impl RegexParser {
    /// Compiles a regex into a verified parser.
    ///
    /// # Errors
    ///
    /// Returns a [`TransformError`] if the equivalences fail to compose —
    /// which would indicate a bug in the constructions, not bad input.
    pub fn compile(alphabet: &Alphabet, regex: Regex) -> Result<RegexParser, TransformError> {
        // (1) R ≅ TraceN.
        let (th, strong) = thompson_strong_equiv(alphabet, &regex);
        // (2) TraceN ≈ TraceD(init, true).
        let det = determinize(th.nfa());
        let n_to_d = trace_weak_equiv(th.nfa(), &det);
        // (3) Verified parser for the DFA's accepting traces.
        let dfa_parser = dfa_trace_parser(&det.dfa, det.dfa.init());
        // (4) Extend along TraceD ≈ TraceN, then TraceN ≈ R.
        let via_nfa = extend_parser(&dfa_parser, &n_to_d.reverse())?;
        let trace_to_regex = WeakEquiv::new(strong.weak().bwd.clone(), strong.weak().fwd.clone());
        let parser = extend_parser(&via_nfa, &trace_to_regex)?;
        Ok(RegexParser {
            regex,
            alphabet: alphabet.clone(),
            thompson: th,
            determinized: det,
            parser,
        })
    }

    /// The source regex.
    pub fn regex(&self) -> &Regex {
        &self.regex
    }

    /// The input alphabet.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The Thompson NFA behind the parser.
    pub fn thompson(&self) -> &Thompson {
        &self.thompson
    }

    /// The determinized automaton behind the parser.
    pub fn determinized(&self) -> &Determinized {
        &self.determinized
    }

    /// The composed verified parser (grammar = the regex's grammar).
    pub fn verified_parser(&self) -> &VerifiedParser {
        &self.parser
    }

    /// Parses a string: `Accept` carries a parse tree of the *regex*
    /// grammar validated against the input, `Reject` a rejecting DFA
    /// trace over the same input.
    ///
    /// # Errors
    ///
    /// Propagates contract violations from the underlying transformers
    /// (never happens for a correctly composed pipeline).
    pub fn parse(&self, w: &GString) -> Result<ParseOutcome, TransformError> {
        self.parser.parse(w)
    }

    /// Fast acceptance check through the DFA only (no tree building).
    pub fn accepts(&self, w: &GString) -> bool {
        self.determinized.dfa.accepts(w)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::parse_regex;
    use crate::derivative::matches;
    use lambek_core::grammar::parse_tree::validate;
    use lambek_core::theory::unambiguous::all_strings;

    #[test]
    fn corollary_4_12_pipeline_sound_and_complete() {
        let s = Alphabet::abc();
        for src in ["(a*b)|c", "a(b|c)*", "(ab)*", "ε", "a*b*"] {
            let re = parse_regex(&s, src).unwrap();
            let p = RegexParser::compile(&s, re.clone()).unwrap();
            for w in all_strings(&s, 3) {
                let expected = matches(&re, &w);
                let out = p.parse(&w).unwrap_or_else(|e| panic!("{src} on {w}: {e}"));
                assert_eq!(out.is_accept(), expected, "{src} on {w}");
                if let ParseOutcome::Accept(t) = out {
                    validate(&t, &re.to_grammar(), &w).unwrap();
                }
            }
        }
    }

    #[test]
    fn accepted_trees_are_regex_parses_of_the_input() {
        let s = Alphabet::abc();
        let re = parse_regex(&s, "(a*b)|c").unwrap();
        let p = RegexParser::compile(&s, re.clone()).unwrap();
        let w = s.parse_str("aab").unwrap();
        let out = p.parse(&w).unwrap();
        let t = out.accepted().expect("aab matches");
        assert_eq!(t.flatten(), w);
        validate(&t.clone(), &re.to_grammar(), &w).unwrap();
    }

    #[test]
    fn parser_audits_pass() {
        let s = Alphabet::abc();
        let re = parse_regex(&s, "(a|b)*c").unwrap();
        let p = RegexParser::compile(&s, re).unwrap();
        p.verified_parser().audit_disjointness(3).unwrap();
        p.verified_parser().audit_against_recognizer(3).unwrap();
    }

    #[test]
    fn ambiguous_regex_still_parses_deterministically() {
        // ab|ab: the pipeline picks a single parse (via the DtoN choice
        // function) even though two exist.
        let s = Alphabet::abc();
        let re = parse_regex(&s, "ab|ab").unwrap();
        let p = RegexParser::compile(&s, re.clone()).unwrap();
        let w = s.parse_str("ab").unwrap();
        let t1 = p.parse(&w).unwrap().accepted().unwrap().clone();
        let t2 = p.parse(&w).unwrap().accepted().unwrap().clone();
        assert_eq!(t1, t2, "deterministic disambiguation");
        validate(&t1, &re.to_grammar(), &w).unwrap();
    }
}
