//! Random regular-expression generators for tests and benchmarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use lambek_core::alphabet::{Alphabet, Symbol};

use crate::ast::Regex;

/// A random regex with roughly `size` AST nodes over `alphabet`.
/// `∅` is excluded (it makes most downstream tests vacuous); `ε` appears
/// with low probability.
pub fn random_regex(alphabet: &Alphabet, size: usize, seed: u64) -> Regex {
    let mut rng = StdRng::seed_from_u64(seed);
    gen_sized(alphabet, &mut rng, size.max(1))
}

fn gen_sized(alphabet: &Alphabet, rng: &mut StdRng, size: usize) -> Regex {
    if size <= 1 {
        if rng.gen_bool(0.1) {
            return Regex::Eps;
        }
        let c = Symbol::from_index(rng.gen_range(0..alphabet.len()));
        return Regex::Char(c);
    }
    match rng.gen_range(0..10) {
        0..=3 => {
            let left = rng.gen_range(1..size);
            Regex::concat(
                gen_sized(alphabet, rng, left),
                gen_sized(alphabet, rng, size - left),
            )
        }
        4..=7 => {
            let left = rng.gen_range(1..size);
            Regex::alt(
                gen_sized(alphabet, rng, left),
                gen_sized(alphabet, rng, size - left),
            )
        }
        _ => Regex::star(gen_sized(alphabet, rng, size - 1)),
    }
}

/// A random regex guaranteed to be *star-unambiguous enough* for parse
/// enumeration: stars are only applied to non-nullable bodies, so no
/// grammar in the output has infinitely many parses of any string.
pub fn random_finite_ambiguity_regex(alphabet: &Alphabet, size: usize, seed: u64) -> Regex {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut re = gen_sized(alphabet, &mut rng, size.max(1));
    fix_nullable_stars(&mut re, alphabet, &mut rng);
    re
}

fn fix_nullable_stars(re: &mut Regex, alphabet: &Alphabet, rng: &mut StdRng) {
    match re {
        Regex::Star(inner) => {
            fix_nullable_stars(inner, alphabet, rng);
            if inner.nullable() {
                // Guard the body with a random character.
                let c = Symbol::from_index(rng.gen_range(0..alphabet.len()));
                let body = std::mem::replace(&mut **inner, Regex::Eps);
                **inner = Regex::concat(Regex::Char(c), body);
            }
        }
        Regex::Concat(l, r) | Regex::Alt(l, r) => {
            fix_nullable_stars(l, alphabet, rng);
            fix_nullable_stars(r, alphabet, rng);
        }
        Regex::Empty | Regex::Eps | Regex::Char(_) => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn star_bodies_non_nullable(re: &Regex) -> bool {
        match re {
            Regex::Star(i) => !i.nullable() && star_bodies_non_nullable(i),
            Regex::Concat(l, r) | Regex::Alt(l, r) => {
                star_bodies_non_nullable(l) && star_bodies_non_nullable(r)
            }
            _ => true,
        }
    }

    #[test]
    fn random_regexes_have_requested_size_magnitude() {
        let s = Alphabet::abc();
        for seed in 0..20 {
            let re = random_regex(&s, 12, seed);
            assert!(re.size() >= 3, "seed {seed}: size {}", re.size());
        }
    }

    #[test]
    fn finite_ambiguity_regexes_have_guarded_stars() {
        let s = Alphabet::abc();
        for seed in 0..50 {
            let re = random_finite_ambiguity_regex(&s, 10, seed);
            assert!(star_bodies_non_nullable(&re), "seed {seed}: {re}");
        }
    }
}
