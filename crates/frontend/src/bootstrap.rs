//! The self-hosted bootstrap pipeline for the grammar language.
//!
//! The frontend does not hand-roll its own lexer and parser: the
//! grammar language's concrete syntax is itself a [`LexSpec`] +
//! [`Cfg`], compiled through the same certified machinery user grammars
//! are compiled into — the meta lexer is a [`CertifiedLexer`], the meta
//! parser a [`CertifiedLrParser`], so every spec text is lexed with
//! span-tiling/derivative re-validation and parsed with a certified
//! LALR(1) drive *before* the frontend trusts a byte of it. The engine
//! serves the same pair through its pipeline cache
//! (`PipelineSpec::lexed_cfg(meta_spec(), meta_cfg())`), which is what
//! makes `Engine::compile_text` self-hosting: the bootstrap pipeline is
//! just another cached pipeline.
//!
//! The meta grammar (`::=` splits a rule into alternatives; an empty
//! alternative is ε):
//!
//! ```text
//! File  ::= Decls
//! Decls ::= Decl | Decls Decl
//! Decl  ::= token IDENT = RAlt ; | skip IDENT = RAlt ;
//!         | start IDENT ; | alphabet CLASS ; | IDENT ::= Alts ;
//! Alts  ::= Seq | Alts "|" Seq
//! Seq   ::= ε | Seq Sym
//! Sym   ::= IDENT | LIT
//! RAlt  ::= RCat | RAlt "|" RCat
//! RCat  ::= RPost | RCat RPost
//! RPost ::= RAtom | RPost * | RPost + | RPost ?
//! RAtom ::= LIT | CLASS | ( RAlt )
//! ```
//!
//! Spec texts range over printable ASCII plus tab/newline/CR — the
//! bootstrap lexer's character alphabet. A consequence the docs call
//! out: user grammars can only describe languages over that character
//! set.

use std::sync::OnceLock;

use lambek_cfg::grammar::{Cfg, GSym, Production};
use lambek_core::alphabet::{Alphabet, Symbol};
use lambek_core::grammar::parse_tree::ParseTree;
use lambek_lex::{
    class, literal, plus, CertifiedLexer, LexSpec, LexSpecBuilder, LexedOutcome, Span, TokenStream,
};
use lambek_lr::{CertifiedLrParser, LrOutcome};
use regex_grammars::ast::Regex;

use crate::surface::{
    decode_literal, parse_class, Decl, DeclKind, Ident, RegexAst, RegexKind, SeqAst, SpecAst,
    SymAst, SymKind,
};
use crate::{FrontendError, FrontendErrorKind};

/// The bootstrap character alphabet: printable ASCII (0x20–0x7E) plus
/// tab, newline and carriage return — every byte a spec text may
/// contain, and therefore the largest character set a user grammar can
/// speak about.
pub fn meta_chars() -> Alphabet {
    static CHARS: OnceLock<Alphabet> = OnceLock::new();
    CHARS
        .get_or_init(|| Alphabet::from_chars(&meta_char_string()))
        .clone()
}

fn meta_char_string() -> String {
    let mut s = String::from("\t\n\r");
    s.extend((0x20u8..=0x7E).map(char::from));
    s
}

/// All bootstrap characters except those in `exclude`, as a class
/// regex.
fn any_but(sigma: &Alphabet, exclude: &str) -> Regex {
    let keep: String = meta_char_string()
        .chars()
        .filter(|c| !exclude.contains(*c))
        .collect();
    class(sigma, &keep)
}

/// The meta lex spec: keywords before `IDENT` (priority breaks the
/// equal-length tie), punctuation, identifiers, quoted literals,
/// bracketed classes, and skipped whitespace/`#`-comments.
pub fn meta_spec() -> LexSpec {
    let sigma = meta_chars();
    let ident_head = class(
        &sigma,
        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_",
    );
    let ident_tail = class(
        &sigma,
        "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz_0123456789",
    );
    // LIT: '…' where … is any char except quote/backslash/newline, or a
    // backslash followed by anything but a raw newline.
    let lit_body = Regex::alt(
        any_but(&sigma, "'\\\n\r"),
        Regex::concat(literal(&sigma, "\\"), any_but(&sigma, "\n\r")),
    );
    let lit = Regex::concat(
        literal(&sigma, "'"),
        Regex::concat(Regex::star(lit_body), literal(&sigma, "'")),
    );
    // CLASS: […] where … is any char except `]`/backslash, or a
    // backslash followed by anything.
    let class_body = Regex::alt(
        any_but(&sigma, "]\\"),
        Regex::concat(literal(&sigma, "\\"), class(&sigma, &meta_char_string())),
    );
    let class_re = Regex::concat(
        literal(&sigma, "["),
        Regex::concat(Regex::star(class_body), literal(&sigma, "]")),
    );
    LexSpecBuilder::new(sigma.clone())
        .token_re("TOKEN", literal(&sigma, "token"))
        .expect("valid rule")
        .token_re("SKIP", literal(&sigma, "skip"))
        .expect("valid rule")
        .token_re("START", literal(&sigma, "start"))
        .expect("valid rule")
        .token_re("ALPHABET", literal(&sigma, "alphabet"))
        .expect("valid rule")
        .token_re("DEFINE", literal(&sigma, "::="))
        .expect("valid rule")
        .token_re("EQ", literal(&sigma, "="))
        .expect("valid rule")
        .token_re("BAR", literal(&sigma, "|"))
        .expect("valid rule")
        .token_re("SEMI", literal(&sigma, ";"))
        .expect("valid rule")
        .token_re("STAR", literal(&sigma, "*"))
        .expect("valid rule")
        .token_re("PLUS", literal(&sigma, "+"))
        .expect("valid rule")
        .token_re("QUEST", literal(&sigma, "?"))
        .expect("valid rule")
        .token_re("LPAREN", literal(&sigma, "("))
        .expect("valid rule")
        .token_re("RPAREN", literal(&sigma, ")"))
        .expect("valid rule")
        .token_re("IDENT", Regex::concat(ident_head, Regex::star(ident_tail)))
        .expect("valid rule")
        .token_re("LIT", lit)
        .expect("valid rule")
        .token_re("CLASS", class_re)
        .expect("valid rule")
        .skip_re("WS", plus(class(&sigma, " \t\n\r")))
        .expect("valid rule")
        .skip_re(
            "COMMENT",
            Regex::concat(literal(&sigma, "#"), Regex::star(any_but(&sigma, "\n"))),
        )
        .expect("valid rule")
        .build()
        .expect("valid meta spec")
}

// Nonterminal indices of the meta grammar, shared with the tree walker.
const FILE: usize = 0;
const DECLS: usize = 1;
const DECL: usize = 2;
const ALTS: usize = 3;
const SEQ: usize = 4;
const SYM: usize = 5;
const RALT: usize = 6;
const RCAT: usize = 7;
const RPOST: usize = 8;
const RATOM: usize = 9;

/// The meta grammar over [`meta_spec`]'s token alphabet. LALR(1) — the
/// bootstrap self-test compiles it with [`CertifiedLrParser`] and the
/// unit suite asserts conflict-freeness.
pub fn meta_cfg() -> Cfg {
    let tokens = meta_spec().token_alphabet().clone();
    let t = |name: &str| GSym::T(tokens.symbol(name).expect("meta token"));
    let n = GSym::N;
    let p = |rhs: Vec<GSym>| Production { rhs };
    Cfg::new(
        tokens.clone(),
        vec![
            "File".to_owned(),
            "Decls".to_owned(),
            "Decl".to_owned(),
            "Alts".to_owned(),
            "Seq".to_owned(),
            "Sym".to_owned(),
            "RAlt".to_owned(),
            "RCat".to_owned(),
            "RPost".to_owned(),
            "RAtom".to_owned(),
        ],
        vec![
            // File ::= Decls
            vec![p(vec![n(DECLS)])],
            // Decls ::= Decl | Decls Decl
            vec![p(vec![n(DECL)]), p(vec![n(DECLS), n(DECL)])],
            // Decl ::= token IDENT = RAlt ; | skip IDENT = RAlt ;
            //        | start IDENT ; | alphabet CLASS ; | IDENT ::= Alts ;
            vec![
                p(vec![t("TOKEN"), t("IDENT"), t("EQ"), n(RALT), t("SEMI")]),
                p(vec![t("SKIP"), t("IDENT"), t("EQ"), n(RALT), t("SEMI")]),
                p(vec![t("START"), t("IDENT"), t("SEMI")]),
                p(vec![t("ALPHABET"), t("CLASS"), t("SEMI")]),
                p(vec![t("IDENT"), t("DEFINE"), n(ALTS), t("SEMI")]),
            ],
            // Alts ::= Seq | Alts "|" Seq
            vec![p(vec![n(SEQ)]), p(vec![n(ALTS), t("BAR"), n(SEQ)])],
            // Seq ::= ε | Seq Sym
            vec![p(vec![]), p(vec![n(SEQ), n(SYM)])],
            // Sym ::= IDENT | LIT
            vec![p(vec![t("IDENT")]), p(vec![t("LIT")])],
            // RAlt ::= RCat | RAlt "|" RCat
            vec![p(vec![n(RCAT)]), p(vec![n(RALT), t("BAR"), n(RCAT)])],
            // RCat ::= RPost | RCat RPost
            vec![p(vec![n(RPOST)]), p(vec![n(RCAT), n(RPOST)])],
            // RPost ::= RAtom | RPost * | RPost + | RPost ?
            vec![
                p(vec![n(RATOM)]),
                p(vec![n(RPOST), t("STAR")]),
                p(vec![n(RPOST), t("PLUS")]),
                p(vec![n(RPOST), t("QUEST")]),
            ],
            // RAtom ::= LIT | CLASS | ( RAlt )
            vec![
                p(vec![t("LIT")]),
                p(vec![t("CLASS")]),
                p(vec![t("LPAREN"), n(RALT), t("RPAREN")]),
            ],
        ],
        FILE,
    )
}

/// The compiled bootstrap pipeline: certified meta lexer + certified
/// meta LALR(1) parser, built once per process.
pub struct Bootstrap {
    lexer: CertifiedLexer,
    parser: CertifiedLrParser,
    cfg: Cfg,
}

impl Bootstrap {
    /// The meta grammar (for tree walking and table introspection).
    pub fn cfg(&self) -> &Cfg {
        &self.cfg
    }

    /// The certified meta lexer.
    pub fn lexer(&self) -> &CertifiedLexer {
        &self.lexer
    }

    /// The certified meta parser.
    pub fn parser(&self) -> &CertifiedLrParser {
        &self.parser
    }
}

/// The process-wide bootstrap pipeline (compiled on first use).
pub fn bootstrap() -> &'static Bootstrap {
    static BOOT: OnceLock<Bootstrap> = OnceLock::new();
    BOOT.get_or_init(|| {
        let cfg = meta_cfg();
        Bootstrap {
            lexer: CertifiedLexer::compile(meta_spec()),
            parser: CertifiedLrParser::compile(&cfg)
                .expect("the bootstrap meta grammar is LALR(1)"),
            cfg,
        }
    })
}

/// Parses a spec text through the standalone bootstrap pipeline
/// (certified lex, then certified LALR drive) and walks the certified
/// derivation tree into a spanned [`SpecAst`].
///
/// This is the engine-free path; `Engine::compile_text` runs the same
/// lexer+grammar through its pipeline cache instead and hands the
/// resulting tree to [`ast_from_tree`].
pub fn parse_text(text: &str) -> Result<SpecAst, FrontendError> {
    let boot = bootstrap();
    let stream = match boot.lexer.lex(text) {
        Ok(LexedOutcome::Tokens(stream)) => stream,
        Ok(LexedOutcome::Reject(err)) => {
            return Err(FrontendError::new(
                FrontendErrorKind::Syntax {
                    message: format!("unlexable input: {err}"),
                },
                Span::empty(err.at),
                text,
            ))
        }
        Err(fault) => {
            return Err(FrontendError::new(
                FrontendErrorKind::Syntax {
                    message: format!("lexer certification fault: {fault}"),
                },
                Span::empty(0),
                text,
            ))
        }
    };
    let tree = match boot.parser.parse(stream.yield_string()) {
        Ok(LrOutcome::Accept(tree)) => tree,
        Ok(LrOutcome::Reject(reject)) => {
            let span = stream.span_of_yield(reject.at, text.len());
            return Err(FrontendError::new(
                FrontendErrorKind::Syntax {
                    message: format!("expected one of [{}]", reject.expected.join(", ")),
                },
                span,
                text,
            ));
        }
        Err(fault) => {
            return Err(FrontendError::new(
                FrontendErrorKind::Syntax {
                    message: format!("parser certification fault: {fault}"),
                },
                Span::empty(0),
                text,
            ))
        }
    };
    ast_from_tree(text, &tree, &stream)
}

/// One token of the bootstrap yield, as the tree walker consumes it.
struct Leaf {
    sym: Symbol,
    text: String,
    span: Span,
}

/// Walks a certified bootstrap derivation tree (plus the token stream
/// it parses) into the spanned surface AST.
///
/// The tree's `Char` leaves are, left to right, exactly the token
/// yield, so the walker pairs a recursive descent over the μ-regular
/// tree shape (`Roll(Inj(alt, right-nested pairs))`) with a cursor into
/// the yield. Both inputs come from a certified parse; a shape mismatch
/// is an internal invariant violation and panics.
pub fn ast_from_tree(
    text: &str,
    tree: &ParseTree,
    stream: &TokenStream,
) -> Result<SpecAst, FrontendError> {
    let leaves: Vec<Leaf> = stream
        .tokens()
        .iter()
        .filter_map(|t| {
            t.sym.map(|sym| Leaf {
                sym,
                text: t.text.clone(),
                span: t.span,
            })
        })
        .collect();
    let mut walker = Walker {
        cfg: bootstrap().cfg(),
        text,
        leaves,
        pos: 0,
    };
    let decls = walker.file(tree)?;
    Ok(SpecAst { decls })
}

struct Walker<'t> {
    cfg: &'t Cfg,
    text: &'t str,
    leaves: Vec<Leaf>,
    pos: usize,
}

impl<'t> Walker<'t> {
    /// Destructures one `Roll(Inj(alt, body))` node of nonterminal `nt`
    /// into its alternative index and child subtrees.
    fn node<'a>(&self, nt: usize, tree: &'a ParseTree) -> (usize, Vec<&'a ParseTree>) {
        let ParseTree::Roll(inner) = tree else {
            panic!("bootstrap walker: expected Roll at {}", self.cfg.name(nt));
        };
        let ParseTree::Inj { index, tree: body } = &**inner else {
            panic!("bootstrap walker: expected Inj at {}", self.cfg.name(nt));
        };
        let arity = self.cfg.alternatives(nt)[*index].rhs.len();
        let mut kids = Vec::with_capacity(arity);
        let mut cur: &ParseTree = body;
        for i in 0..arity {
            if i + 1 == arity {
                kids.push(cur);
            } else {
                let ParseTree::Pair(l, r) = cur else {
                    panic!("bootstrap walker: expected Pair at {}", self.cfg.name(nt));
                };
                kids.push(l);
                cur = r;
            }
        }
        (*index, kids)
    }

    /// Consumes the next yield token for a `Char` leaf and returns it.
    fn leaf(&mut self, tree: &ParseTree) -> &Leaf {
        let ParseTree::Char(sym) = tree else {
            panic!("bootstrap walker: expected terminal leaf");
        };
        let leaf = &self.leaves[self.pos];
        assert_eq!(leaf.sym, *sym, "bootstrap walker: yield out of sync");
        self.pos += 1;
        leaf
    }

    fn ident(&mut self, tree: &ParseTree) -> Ident {
        let leaf = self.leaf(tree);
        Ident {
            text: leaf.text.clone(),
            span: leaf.span,
        }
    }

    fn file(&mut self, tree: &ParseTree) -> Result<Vec<Decl>, FrontendError> {
        let (_, kids) = self.node(FILE, tree);
        let mut decls = Vec::new();
        self.decls(kids[0], &mut decls)?;
        Ok(decls)
    }

    fn decls(&mut self, tree: &ParseTree, out: &mut Vec<Decl>) -> Result<(), FrontendError> {
        let (alt, kids) = self.node(DECLS, tree);
        if alt == 1 {
            self.decls(kids[0], out)?;
            out.push(self.decl(kids[1])?);
        } else {
            out.push(self.decl(kids[0])?);
        }
        Ok(())
    }

    fn decl(&mut self, tree: &ParseTree) -> Result<Decl, FrontendError> {
        let first = self.pos;
        let (alt, kids) = self.node(DECL, tree);
        let kind = match alt {
            0 | 1 => {
                let _kw = self.leaf(kids[0]);
                let name = self.ident(kids[1]);
                let _eq = self.leaf(kids[2]);
                let regex = self.regex_alt(kids[3])?;
                let _semi = self.leaf(kids[4]);
                if alt == 0 {
                    DeclKind::Token { name, regex }
                } else {
                    DeclKind::Skip { name, regex }
                }
            }
            2 => {
                let _kw = self.leaf(kids[0]);
                let name = self.ident(kids[1]);
                let _semi = self.leaf(kids[2]);
                DeclKind::Start { name }
            }
            3 => {
                let _kw = self.leaf(kids[0]);
                let class_leaf = self.leaf(kids[1]);
                let (raw, span) = (class_leaf.text.clone(), class_leaf.span);
                let _semi = self.leaf(kids[2]);
                DeclKind::Alphabet {
                    class: parse_class(&raw, span, self.text)?,
                }
            }
            4 => {
                let name = self.ident(kids[0]);
                let _def = self.leaf(kids[1]);
                let alts = self.alts(kids[2])?;
                let _semi = self.leaf(kids[3]);
                DeclKind::Rule { name, alts }
            }
            _ => unreachable!("meta Decl has five alternatives"),
        };
        Ok(Decl {
            kind,
            span: self.span_since(first),
        })
    }

    /// The source span covering yield tokens `first..self.pos`.
    fn span_since(&self, first: usize) -> Span {
        if first == self.pos {
            let at = self
                .leaves
                .get(first)
                .map(|l| l.span.start)
                .unwrap_or(self.text.len());
            return Span::empty(at);
        }
        Span {
            start: self.leaves[first].span.start,
            end: self.leaves[self.pos - 1].span.end,
        }
    }

    fn alts(&mut self, tree: &ParseTree) -> Result<Vec<SeqAst>, FrontendError> {
        let (alt, kids) = self.node(ALTS, tree);
        if alt == 1 {
            let mut head = self.alts(kids[0])?;
            let _bar = self.leaf(kids[1]);
            head.push(self.seq(kids[2])?);
            Ok(head)
        } else {
            Ok(vec![self.seq(kids[0])?])
        }
    }

    fn seq(&mut self, tree: &ParseTree) -> Result<SeqAst, FrontendError> {
        let first = self.pos;
        let mut syms = Vec::new();
        self.seq_syms(tree, &mut syms)?;
        Ok(SeqAst {
            syms,
            span: self.span_since(first),
        })
    }

    fn seq_syms(&mut self, tree: &ParseTree, out: &mut Vec<SymAst>) -> Result<(), FrontendError> {
        let (alt, kids) = self.node(SEQ, tree);
        if alt == 1 {
            self.seq_syms(kids[0], out)?;
            out.push(self.sym(kids[1])?);
        }
        Ok(())
    }

    fn sym(&mut self, tree: &ParseTree) -> Result<SymAst, FrontendError> {
        let (alt, kids) = self.node(SYM, tree);
        let leaf = self.leaf(kids[0]);
        let (raw, span) = (leaf.text.clone(), leaf.span);
        let kind = if alt == 0 {
            SymKind::Ident(raw)
        } else {
            SymKind::Literal(decode_literal(&raw, span, self.text)?)
        };
        Ok(SymAst { kind, span })
    }

    fn regex_alt(&mut self, tree: &ParseTree) -> Result<RegexAst, FrontendError> {
        let first = self.pos;
        let (alt, kids) = self.node(RALT, tree);
        if alt == 1 {
            let l = self.regex_alt(kids[0])?;
            let _bar = self.leaf(kids[1]);
            let r = self.regex_cat(kids[2])?;
            Ok(RegexAst {
                kind: RegexKind::Alt(Box::new(l), Box::new(r)),
                span: self.span_since(first),
            })
        } else {
            self.regex_cat(kids[0])
        }
    }

    fn regex_cat(&mut self, tree: &ParseTree) -> Result<RegexAst, FrontendError> {
        let first = self.pos;
        let (alt, kids) = self.node(RCAT, tree);
        if alt == 1 {
            let l = self.regex_cat(kids[0])?;
            let r = self.regex_post(kids[1])?;
            Ok(RegexAst {
                kind: RegexKind::Concat(Box::new(l), Box::new(r)),
                span: self.span_since(first),
            })
        } else {
            self.regex_post(kids[0])
        }
    }

    fn regex_post(&mut self, tree: &ParseTree) -> Result<RegexAst, FrontendError> {
        let first = self.pos;
        let (alt, kids) = self.node(RPOST, tree);
        if alt == 0 {
            return self.regex_atom(kids[0]);
        }
        let inner = self.regex_post(kids[0])?;
        let _op = self.leaf(kids[1]);
        let kind = match alt {
            1 => RegexKind::Star(Box::new(inner)),
            2 => RegexKind::Plus(Box::new(inner)),
            3 => RegexKind::Opt(Box::new(inner)),
            _ => unreachable!("meta RPost has four alternatives"),
        };
        Ok(RegexAst {
            kind,
            span: self.span_since(first),
        })
    }

    fn regex_atom(&mut self, tree: &ParseTree) -> Result<RegexAst, FrontendError> {
        let first = self.pos;
        let (alt, kids) = self.node(RATOM, tree);
        match alt {
            0 => {
                let leaf = self.leaf(kids[0]);
                let (raw, span) = (leaf.text.clone(), leaf.span);
                Ok(RegexAst {
                    kind: RegexKind::Literal(decode_literal(&raw, span, self.text)?),
                    span,
                })
            }
            1 => {
                let leaf = self.leaf(kids[0]);
                let (raw, span) = (leaf.text.clone(), leaf.span);
                Ok(RegexAst {
                    kind: RegexKind::Class(parse_class(&raw, span, self.text)?),
                    span,
                })
            }
            2 => {
                let _lp = self.leaf(kids[0]);
                let inner = self.regex_alt(kids[1])?;
                let _rp = self.leaf(kids[2]);
                Ok(RegexAst {
                    kind: inner.kind,
                    span: self.span_since(first),
                })
            }
            _ => unreachable!("meta RAtom has three alternatives"),
        }
    }
}
