//! Self-hosting text frontend for grammar + lex specs.
//!
//! This crate gives the serving engine a *text surface*: a user submits
//! a grammar language file (BNF-style productions plus prioritized
//! token rules)
//!
//! ```text
//! token NUM = [0-9]+ ;
//! skip  WS  = [ \t\n]+ ;
//! Expr ::= Expr '+' Term | Term ;
//! Term ::= NUM | '(' Expr ')' ;
//! ```
//!
//! and gets back a compiled [`LexSpec`](lambek_lex::LexSpec) +
//! [`Cfg`](lambek_cfg::grammar::Cfg) pair, ready to serve as a
//! `lexed_cfg` pipeline. The frontend is **self-hosted**: the grammar
//! language's own lexer and parser are a certified lex/LR pipeline
//! built from the same crates user grammars compile into
//! ([`bootstrap`]). Elaboration failures are structured,
//! span-carrying [`FrontendError`]s (line/column included); LALR
//! conflicts surface the existing
//! [`LrConflictReport`] annotated with the
//! source spans of the implicated rules; and compile-time budgets
//! ([`Budgets`]) shed oversized specs as structured
//! [`BudgetExceeded`] outcomes rather than panics or timeouts.
//!
//! The trust boundary: user text is untrusted, but nothing it says is
//! ever *believed* — the bootstrap parse is certified, the elaborated
//! spec is re-validated by `LexSpecBuilder`/`Cfg` construction, and the
//! compiled pipeline re-certifies every parse it serves. A malicious
//! spec can be rejected or shed; it cannot make the engine
//! mis-certify.

#![deny(missing_docs)]

use std::fmt;
use std::time::{Duration, Instant};

use lambek_lex::Span;
use lambek_lr::{CertifiedLrParser, LrConflictReport};

pub mod bootstrap;
pub mod elaborate;
pub mod presets;
pub mod probes;
pub mod surface;

pub use bootstrap::{meta_cfg, meta_spec, parse_text};
pub use elaborate::{elaborate, Elaborated};
pub use surface::{pretty, SpecAst};

/// The implicit-token name of an inline production literal: its quoted
/// spelling (`+` → `'+'`), so lexer diagnostics and token alphabets
/// print the way the user wrote the symbol.
pub fn quote_name(body: &str) -> String {
    surface::quote_literal(body)
}

/// A structured, source-located frontend diagnostic.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrontendError {
    /// What went wrong.
    pub kind: FrontendErrorKind,
    /// The byte span of the offending source text (possibly empty —
    /// a point, e.g. at an unexpected token).
    pub span: Span,
    /// 1-based source line of `span.start`.
    pub line: u32,
    /// 1-based source column (in characters) of `span.start`.
    pub col: u32,
}

impl FrontendError {
    /// Builds an error, locating `span` in `text` (line/column).
    pub fn new(kind: FrontendErrorKind, span: Span, text: &str) -> FrontendError {
        let (line, col) = line_col(text, span.start);
        FrontendError {
            kind,
            span,
            line,
            col,
        }
    }
}

impl fmt::Display for FrontendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.line, self.col, self.kind)
    }
}

impl std::error::Error for FrontendError {}

/// The 1-based (line, column) of byte offset `at` in `text`. Offsets
/// past the end locate one past the last character.
pub fn line_col(text: &str, at: usize) -> (u32, u32) {
    let at = at.min(text.len());
    let mut line = 1u32;
    let mut col = 1u32;
    for (i, c) in text.char_indices() {
        if i >= at {
            break;
        }
        if c == '\n' {
            line += 1;
            col = 1;
        } else {
            col += 1;
        }
    }
    (line, col)
}

/// The elaboration diagnostic kinds.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontendErrorKind {
    /// The text failed the bootstrap lex or parse.
    Syntax {
        /// What the bootstrap pipeline reported.
        message: String,
    },
    /// A production references a name that is neither a rule nor a
    /// token.
    UndefinedSymbol {
        /// The unresolved name.
        name: String,
    },
    /// `start` names something that is not a rule.
    UndefinedStart {
        /// The named start.
        name: String,
    },
    /// Two rules define the same nonterminal.
    DuplicateRule {
        /// The doubly defined name.
        name: String,
    },
    /// Two `token`/`skip` declarations share a name.
    DuplicateToken {
        /// The doubly declared name.
        name: String,
    },
    /// More than one `start` declaration.
    DuplicateStart,
    /// More than one `alphabet` declaration.
    DuplicateAlphabet,
    /// A name is both a token and a rule, so references to it would be
    /// ambiguous.
    TokenNonterminalClash {
        /// The clashing name.
        name: String,
    },
    /// A production references a `skip` rule — skips never reach the
    /// token alphabet the grammar parses over (the token/grammar
    /// alphabet mismatch, caught at the source level).
    SkipReferenced {
        /// The referenced skip rule.
        name: String,
    },
    /// A token (or skip) rule matches the empty string, which the
    /// maximal-munch scanner cannot serve.
    NullableToken {
        /// The nullable rule.
        name: String,
    },
    /// An inline production literal is empty (`''`).
    EmptyLiteral,
    /// A character class denotes no characters.
    EmptyClass,
    /// A class range `lo-hi` with `lo > hi`.
    BadClassRange {
        /// Range start.
        lo: char,
        /// Range end.
        hi: char,
    },
    /// An unknown escape sequence (`\d`, a trailing `\`, ...).
    BadEscape {
        /// The escaped character.
        escape: char,
    },
    /// A negated class `[^...]` needs an explicit `alphabet` declaration
    /// to complement against.
    NegatedClassNeedsAlphabet,
    /// The `alphabet` declaration itself may not be negated.
    AlphabetNegated,
    /// A literal or class uses a character outside the declared
    /// alphabet.
    CharOutsideAlphabet {
        /// The out-of-alphabet character.
        ch: char,
    },
    /// The spec declares no token rules and uses no production
    /// literals, so there is nothing to lex.
    NoTokenRules,
    /// The spec declares no grammar rules, so there is nothing to
    /// parse.
    NoRules,
}

impl fmt::Display for FrontendErrorKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use FrontendErrorKind::*;
        match self {
            Syntax { message } => write!(f, "syntax error: {message}"),
            UndefinedSymbol { name } => {
                write!(f, "`{name}` is neither a rule nor a token")
            }
            UndefinedStart { name } => write!(f, "start symbol `{name}` is not a rule"),
            DuplicateRule { name } => write!(f, "rule `{name}` is defined twice"),
            DuplicateToken { name } => {
                write!(f, "token rule `{name}` is declared twice")
            }
            DuplicateStart => write!(f, "more than one `start` declaration"),
            DuplicateAlphabet => write!(f, "more than one `alphabet` declaration"),
            TokenNonterminalClash { name } => {
                write!(f, "`{name}` is declared both as a token and as a rule")
            }
            SkipReferenced { name } => write!(
                f,
                "`{name}` is a skip rule; skipped lexemes never reach the grammar"
            ),
            NullableToken { name } => {
                write!(f, "rule `{name}` matches the empty string")
            }
            EmptyLiteral => write!(f, "empty literal `''` cannot be a token"),
            EmptyClass => write!(f, "class denotes no characters"),
            BadClassRange { lo, hi } => {
                write!(f, "class range `{lo}-{hi}` is reversed")
            }
            BadEscape { escape } => write!(f, "unknown escape `\\{escape}`"),
            NegatedClassNeedsAlphabet => write!(
                f,
                "negated class needs an explicit `alphabet [...] ;` declaration"
            ),
            AlphabetNegated => {
                write!(f, "the `alphabet` class may not be negated")
            }
            CharOutsideAlphabet { ch } => {
                write!(f, "character {ch:?} is outside the declared alphabet")
            }
            NoTokenRules => write!(f, "spec has no token rules and no literals"),
            NoRules => write!(f, "spec has no grammar rules"),
        }
    }
}

/// The source location of a grammar rule implicated in an LALR
/// conflict.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictSite {
    /// The nonterminal whose rule participates in the conflict.
    pub rule: String,
    /// The byte span of that rule's declaration.
    pub span: Span,
    /// 1-based line of the declaration.
    pub line: u32,
    /// 1-based column of the declaration.
    pub col: u32,
}

/// An LALR conflict rejection: the LR layer's own
/// [`LrConflictReport`] plus the source spans of the rules its items
/// mention — the structured API response `Engine::compile_text`
/// returns for an ambiguous user grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConflictReport {
    /// The table-level conflict report (states, lookaheads, items).
    pub report: LrConflictReport,
    /// Source locations of the implicated rules, deduplicated, in
    /// declaration order.
    pub sites: Vec<ConflictSite>,
}

impl fmt::Display for ConflictReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.report)?;
        for site in &self.sites {
            writeln!(f, "  rule `{}` at {}:{}", site.rule, site.line, site.col)?;
        }
        Ok(())
    }
}

/// Compile-time budgets for user-submitted specs. Oversized or
/// overslow specs are *shed* — reported as structured
/// [`BudgetExceeded`] outcomes, never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Budgets {
    /// Maximum total grammar productions after elaboration.
    pub max_productions: usize,
    /// Maximum LALR automaton states.
    pub max_states: usize,
    /// Wall-clock ceiling for the whole compile, checked at stage
    /// boundaries (`None` = unlimited).
    pub deadline: Option<Duration>,
}

impl Default for Budgets {
    fn default() -> Budgets {
        Budgets {
            max_productions: 4096,
            max_states: 65_536,
            deadline: None,
        }
    }
}

/// Which budget a shed spec exceeded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BudgetKind {
    /// [`Budgets::max_productions`].
    Productions,
    /// [`Budgets::max_states`].
    States,
    /// [`Budgets::deadline`] (values in microseconds).
    Deadline,
}

/// A structured shed outcome: which budget, its limit, and the
/// observed value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BudgetExceeded {
    /// The exceeded budget.
    pub kind: BudgetKind,
    /// The configured limit ([`BudgetKind::Deadline`]: microseconds).
    pub limit: u64,
    /// The observed value ([`BudgetKind::Deadline`]: microseconds).
    pub actual: u64,
}

impl fmt::Display for BudgetExceeded {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let what = match self.kind {
            BudgetKind::Productions => "productions",
            BudgetKind::States => "LALR states",
            BudgetKind::Deadline => "compile deadline (µs)",
        };
        write!(
            f,
            "budget exceeded: {} {} > limit {}",
            self.actual, what, self.limit
        )
    }
}

/// Why a text failed to compile: every outcome is structured — a list
/// of located diagnostics, an annotated conflict report, or a shed
/// budget.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FrontendReport {
    /// Bootstrap-syntax or elaboration diagnostics (at least one).
    Errors(Vec<FrontendError>),
    /// The grammar elaborated but is not LALR(1).
    Conflicts(ConflictReport),
    /// The spec exceeded a compile-time budget and was shed.
    Budget(BudgetExceeded),
    /// An internal invariant failed in the serving layer (a validated
    /// spec refused to compile). Never produced by the engine-free
    /// [`compile_text`]; a bug if observed.
    Internal(String),
}

impl fmt::Display for FrontendReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrontendReport::Errors(errors) => {
                for e in errors {
                    writeln!(f, "{e}")?;
                }
                Ok(())
            }
            FrontendReport::Conflicts(report) => write!(f, "{report}"),
            FrontendReport::Budget(shed) => write!(f, "{shed}"),
            FrontendReport::Internal(message) => {
                write!(f, "internal error: {message}")
            }
        }
    }
}

impl std::error::Error for FrontendReport {}

/// A fully compiled text: the surface AST, the elaborated spec+grammar,
/// and the compiled LALR parser (whose table sized the state budget).
#[derive(Debug)]
pub struct CompiledText {
    /// The parsed surface syntax.
    pub ast: SpecAst,
    /// The elaborated lex spec and token-level grammar.
    pub elab: Elaborated,
    /// The certified parser for the user grammar.
    pub parser: CertifiedLrParser,
}

/// Annotates a table-level conflict report with the source spans of
/// the rules its items mention.
pub fn annotate_conflicts(
    report: LrConflictReport,
    elab: &Elaborated,
    text: &str,
) -> ConflictReport {
    let mut sites: Vec<ConflictSite> = Vec::new();
    for (rule, span) in &elab.rule_spans {
        let mentioned = report.conflicts.iter().any(|c| {
            c.items
                .iter()
                .any(|item| item.split_whitespace().next() == Some(rule.as_str()))
        });
        if mentioned {
            let (line, col) = line_col(text, span.start);
            sites.push(ConflictSite {
                rule: rule.clone(),
                span: *span,
                line,
                col,
            });
        }
    }
    ConflictReport { report, sites }
}

fn deadline_shed(started: Instant, budgets: &Budgets) -> Option<BudgetExceeded> {
    let deadline = budgets.deadline?;
    let elapsed = started.elapsed();
    (elapsed > deadline).then_some(BudgetExceeded {
        kind: BudgetKind::Deadline,
        limit: deadline.as_micros() as u64,
        actual: elapsed.as_micros() as u64,
    })
}

/// Compiles a spec text end to end, engine-free: self-hosted bootstrap
/// parse → elaboration → budget gates → LALR compile. The engine's
/// `compile_text` performs the same stages against its pipeline cache.
///
/// # Errors
///
/// Structured [`FrontendReport`]s only — diagnostics with spans,
/// annotated conflicts, or a shed budget.
pub fn compile_text(text: &str, budgets: &Budgets) -> Result<CompiledText, FrontendReport> {
    let started = Instant::now();
    probes::note_text();
    let ast = parse_text(text).map_err(|e| {
        probes::note_elab_failure();
        FrontendReport::Errors(vec![e])
    })?;
    let elab = elaborate(text, &ast).map_err(|errors| {
        probes::note_elab_failure();
        FrontendReport::Errors(errors)
    })?;
    if elab.num_productions > budgets.max_productions {
        probes::note_budget_shed();
        return Err(FrontendReport::Budget(BudgetExceeded {
            kind: BudgetKind::Productions,
            limit: budgets.max_productions as u64,
            actual: elab.num_productions as u64,
        }));
    }
    if let Some(shed) = deadline_shed(started, budgets) {
        probes::note_budget_shed();
        return Err(FrontendReport::Budget(shed));
    }
    let parser = match CertifiedLrParser::compile(&elab.cfg) {
        Ok(parser) => parser,
        Err(report) => {
            probes::note_conflict_reject();
            return Err(FrontendReport::Conflicts(annotate_conflicts(
                report, &elab, text,
            )));
        }
    };
    let states = parser.table().num_states();
    if states > budgets.max_states {
        probes::note_budget_shed();
        return Err(FrontendReport::Budget(BudgetExceeded {
            kind: BudgetKind::States,
            limit: budgets.max_states as u64,
            actual: states as u64,
        }));
    }
    if let Some(shed) = deadline_shed(started, budgets) {
        probes::note_budget_shed();
        return Err(FrontendReport::Budget(shed));
    }
    Ok(CompiledText { ast, elab, parser })
}

#[cfg(test)]
mod tests {
    use super::*;
    use lambek_lr::LrOutcome;

    const ARITH: &str = "token NUM = [0-9]+ ;\nskip WS = [ \t\n]+ ;\nExpr ::= Expr '+' Term | Term ;\nTerm ::= NUM | '(' Expr ')' ;\n";

    /// End-to-end accept/reject through the frontend-built pipeline.
    fn accepts(compiled: &CompiledText, input: &str) -> bool {
        let lexer = lambek_lex::CertifiedLexer::compile(compiled.elab.spec.clone());
        match lexer.lex(input).expect("lexer is honest") {
            lambek_lex::LexedOutcome::Tokens(stream) => matches!(
                compiled
                    .parser
                    .parse(stream.yield_string())
                    .expect("parser is honest"),
                LrOutcome::Accept(_)
            ),
            lambek_lex::LexedOutcome::Reject(_) => false,
        }
    }

    #[test]
    fn meta_grammar_is_lalr1() {
        let report = lambek_lr::CertifiedLrParser::compile(&meta_cfg());
        assert!(
            report.is_ok(),
            "bootstrap meta grammar has conflicts:\n{}",
            report.err().map(|r| r.to_string()).unwrap_or_default()
        );
    }

    #[test]
    fn arith_compiles_and_parses() {
        let compiled = compile_text(ARITH, &Budgets::default()).expect("arith compiles");
        assert_eq!(compiled.elab.start_name, "Expr");
        assert!(accepts(&compiled, "1+(2+34)"));
        assert!(accepts(&compiled, " 7 + 8 "));
        assert!(!accepts(&compiled, "1++2"));
        assert!(!accepts(&compiled, "1+"));
        assert!(!accepts(&compiled, "a"));
    }

    #[test]
    fn presets_compile_and_accept_their_corpus() {
        let corpus: &[(&str, &[&str], &[&str])] = &[
            (
                "json",
                &[
                    "{\"k\": [1, 2.5e-3, true], \"s\": \"a\\n\\u0041\"}",
                    "[{}, [], null, -0.5, \"\"]",
                    "42",
                ],
                &["{", "[1,]", "{\"k\" 1}", "01"],
            ),
            (
                "csv",
                &["a,b,c\n1,,3", "\"a,b\",\"he said \"\"hi\"\"\"\nx,y", "a"],
                &["\"unterminated", "a,\"b\"x"],
            ),
            (
                "ini",
                &[
                    "[core]\nname = lambekd\n; comment\nversion = \"0.1\" extra\n",
                    "\n\n",
                    "",
                ],
                &["[unclosed\n", "= novalue\n"],
            ),
            (
                "http",
                &[
                    "GET /index.html HTTP/1.1\r\n",
                    "POST /a?q=1 HTTP/1.0\nDELETE HTTP/9.9 HTTP/1.1\n",
                ],
                &["GET /x\n", "/x GET HTTP/1.1\n"],
            ),
            (
                "clf",
                &[
                    "127.0.0.1 - frank [10/Oct/2000:13:55:36 -0700] \"GET /a.gif HTTP/1.0\" 200 2326\n",
                ],
                &["only three atoms here\n"],
            ),
        ];
        for (name, text) in presets::all() {
            let compiled = compile_text(text, &Budgets::default())
                .unwrap_or_else(|report| panic!("preset {name} failed:\n{report}"));
            let (_, good, bad) = corpus
                .iter()
                .find(|(n, _, _)| *n == name)
                .expect("corpus covers every preset");
            for input in *good {
                assert!(accepts(&compiled, input), "preset {name} rejects {input:?}");
            }
            for input in *bad {
                assert!(
                    !accepts(&compiled, input),
                    "preset {name} accepts {input:?}"
                );
            }
        }
    }

    #[test]
    fn conflicts_are_reported_with_rule_sites() {
        // Ambiguous juxtaposition: `E ::= E E | A` shift/reduces in
        // every LR flavor.
        let text = "token A = 'a' ;\nE ::= E E | A ;\n";
        match compile_text(text, &Budgets::default()) {
            Err(FrontendReport::Conflicts(report)) => {
                assert!(!report.report.conflicts.is_empty());
                assert!(!report.sites.is_empty(), "no rule sites mapped");
                for site in &report.sites {
                    assert!(site.span.end <= text.len());
                    assert!(site.line >= 1 && site.col >= 1);
                }
            }
            other => panic!("expected a conflict report, got {other:?}"),
        }
    }

    #[test]
    fn budgets_shed_structurally() {
        let tight = Budgets {
            max_productions: 2,
            ..Budgets::default()
        };
        match compile_text(ARITH, &tight) {
            Err(FrontendReport::Budget(shed)) => {
                assert_eq!(shed.kind, BudgetKind::Productions);
                assert_eq!(shed.limit, 2);
                assert!(shed.actual > 2);
            }
            other => panic!("expected a productions shed, got {other:?}"),
        }
        let slow = Budgets {
            deadline: Some(Duration::ZERO),
            ..Budgets::default()
        };
        match compile_text(ARITH, &slow) {
            Err(FrontendReport::Budget(shed)) => assert_eq!(shed.kind, BudgetKind::Deadline),
            other => panic!("expected a deadline shed, got {other:?}"),
        }
        let cramped = Budgets {
            max_states: 1,
            ..Budgets::default()
        };
        match compile_text(ARITH, &cramped) {
            Err(FrontendReport::Budget(shed)) => assert_eq!(shed.kind, BudgetKind::States),
            other => panic!("expected a states shed, got {other:?}"),
        }
    }

    #[test]
    fn literal_reuses_structurally_equal_declared_token() {
        let text =
            "token IF = 'if' ;\ntoken ID = [a-z]+ ;\nskip WS = ' '+ ;\nS ::= 'if' ID | ID ;\n";
        let compiled = compile_text(text, &Budgets::default()).expect("compiles");
        // No implicit token was minted: 'if' resolved to IF.
        assert!(compiled.elab.literal_tokens.is_empty());
        assert!(accepts(&compiled, "if x"));
        // Maximal munch: `iffy` is one ID, not IF + "fy".
        assert!(accepts(&compiled, "iffy"));
    }

    #[test]
    fn pretty_roundtrip_on_presets() {
        for (name, text) in presets::all() {
            let ast = parse_text(text).unwrap_or_else(|e| panic!("{name}: {e}"));
            let printed = pretty(&ast);
            let reparsed =
                parse_text(&printed).unwrap_or_else(|e| panic!("{name} reparse: {e}\n{printed}"));
            assert!(
                surface::ast_eq_modulo_spans(&ast, &reparsed),
                "{name}: pretty-print round trip changed the AST:\n{printed}"
            );
            assert_eq!(
                printed,
                pretty(&reparsed),
                "{name}: pretty not a fixed point"
            );
        }
    }
}
