//! Elaboration: surface AST → validated [`LexSpec`] + [`Cfg`].
//!
//! Elaboration is where user text earns the right to become a
//! pipeline. It determines the character alphabet (explicit
//! `alphabet [...]` declaration, or the set of characters the spec
//! mentions), lowers surface regexes to the core [`Regex`], promotes
//! inline production literals to implicit high-priority tokens
//! (deduplicated; reusing a declared token whose regex is exactly that
//! literal), and cross-checks every name — producing span-carrying
//! [`FrontendError`]s for anything inconsistent. The outputs are
//! constructed through the same validating APIs Rust-built specs use
//! (`LexSpecBuilder`, `Cfg::new`), so nothing the elaborator emits is
//! trusted on its own say-so.
//!
//! Token priority (maximal munch breaks ties by rule order): implicit
//! production literals first, in order of first appearance, then
//! declared `token`/`skip` rules in declaration order. Literals outrank
//! declarations so keywords like `'if'` beat an identifier token on an
//! equal-length match — declaring `token ID = [a-z]+ ;` after using
//! `'if'` in a production behaves like every lexer generator's
//! keywords-before-identifiers convention.

use std::collections::BTreeMap;

use lambek_cfg::grammar::{Cfg, GSym, Production};
use lambek_core::alphabet::{Alphabet, Symbol};
use lambek_lex::{LexSpec, LexSpecBuilder, Span};
use regex_grammars::ast::Regex;

use crate::surface::{
    ClassAst, ClassItem, DeclKind, Ident, RegexAst, RegexKind, SeqAst, SpecAst, SymKind,
};
use crate::{quote_name, FrontendError, FrontendErrorKind};

/// The elaborated spec: a validated lexer + token-level grammar pair,
/// plus the source-span tables diagnostics and conflict reports point
/// back through.
#[derive(Debug, Clone)]
pub struct Elaborated {
    /// The lexical specification (literals first, then declared rules).
    pub spec: LexSpec,
    /// The token-level grammar over `spec`'s token alphabet.
    pub cfg: Cfg,
    /// The start nonterminal's name.
    pub start_name: String,
    /// Total productions across all rules (the productions budget).
    pub num_productions: usize,
    /// Per nonterminal (grammar order): its name and declaration span.
    pub rule_spans: Vec<(String, Span)>,
    /// Per nonterminal, per alternative: the alternative's source span.
    pub alt_spans: Vec<Vec<Span>>,
    /// Per declared token/skip rule: its name and declaration span.
    pub token_spans: Vec<(String, Span)>,
    /// Names of the implicit literal tokens, in priority order.
    pub literal_tokens: Vec<String>,
}

/// Expands a class item to its characters.
fn item_chars(item: ClassItem, out: &mut Vec<char>) {
    match item {
        ClassItem::Char(c) => out.push(c),
        ClassItem::Range(lo, hi) => out.extend((lo as u32..=hi as u32).filter_map(char::from_u32)),
    }
}

/// The characters a (non-negated) class lists, in source order.
fn listed_chars(class: &ClassAst) -> Vec<char> {
    let mut out = Vec::new();
    for item in &class.items {
        item_chars(*item, &mut out);
    }
    out
}

/// Collects every character a regex mentions into `chars`; negated
/// classes are an error without an explicit alphabet.
fn collect_regex_chars(
    re: &RegexAst,
    chars: &mut Vec<char>,
    errors: &mut Vec<FrontendError>,
    text: &str,
) {
    match &re.kind {
        RegexKind::Literal(body) => chars.extend(body.chars()),
        RegexKind::Class(class) => {
            if class.negated {
                errors.push(FrontendError::new(
                    FrontendErrorKind::NegatedClassNeedsAlphabet,
                    class.span,
                    text,
                ));
            } else {
                chars.extend(listed_chars(class));
            }
        }
        RegexKind::Alt(l, r) | RegexKind::Concat(l, r) => {
            collect_regex_chars(l, chars, errors, text);
            collect_regex_chars(r, chars, errors, text);
        }
        RegexKind::Star(inner) | RegexKind::Plus(inner) | RegexKind::Opt(inner) => {
            collect_regex_chars(inner, chars, errors, text)
        }
    }
}

/// The single-char-symbol alternation for `syms` (deduplicated, in
/// alphabet order for determinism). `None` when empty.
fn chars_regex(mut syms: Vec<Symbol>) -> Option<Regex> {
    syms.sort_by_key(|s| s.index());
    syms.dedup();
    let mut iter = syms.into_iter();
    let first = Regex::Char(iter.next()?);
    Some(iter.fold(first, |acc, s| Regex::alt(acc, Regex::Char(s))))
}

/// Lowers a surface class to a core regex over `sigma`.
fn lower_class(
    class: &ClassAst,
    sigma: &Alphabet,
    explicit_alphabet: bool,
    text: &str,
) -> Result<Regex, FrontendError> {
    if class.negated && !explicit_alphabet {
        return Err(FrontendError::new(
            FrontendErrorKind::NegatedClassNeedsAlphabet,
            class.span,
            text,
        ));
    }
    let mut listed = Vec::new();
    for c in listed_chars(class) {
        match sigma.symbol_of_char(c) {
            Some(sym) => listed.push(sym),
            None => {
                // Without an explicit alphabet every mentioned char was
                // collected into it, so a miss implies `alphabet [...]`
                // was declared and this char is outside it.
                return Err(FrontendError::new(
                    FrontendErrorKind::CharOutsideAlphabet { ch: c },
                    class.span,
                    text,
                ));
            }
        }
    }
    let syms: Vec<Symbol> = if class.negated {
        let listed: std::collections::BTreeSet<usize> = listed.iter().map(|s| s.index()).collect();
        sigma
            .symbols()
            .filter(|s| !listed.contains(&s.index()))
            .collect()
    } else {
        listed
    };
    chars_regex(syms)
        .ok_or_else(|| FrontendError::new(FrontendErrorKind::EmptyClass, class.span, text))
}

/// Lowers a literal body to a core regex (ε for the empty body — the
/// nullability check rejects it later with the right span).
fn lower_literal(
    body: &str,
    span: Span,
    sigma: &Alphabet,
    text: &str,
) -> Result<Regex, FrontendError> {
    let mut out = Regex::Eps;
    for c in body.chars() {
        let sym = sigma.symbol_of_char(c).ok_or_else(|| {
            FrontendError::new(FrontendErrorKind::CharOutsideAlphabet { ch: c }, span, text)
        })?;
        out = match out {
            Regex::Eps => Regex::Char(sym),
            prefix => Regex::concat(prefix, Regex::Char(sym)),
        };
    }
    Ok(out)
}

/// Lowers a surface regex to the core [`Regex`] over `sigma`.
fn lower_regex(
    re: &RegexAst,
    sigma: &Alphabet,
    explicit_alphabet: bool,
    text: &str,
) -> Result<Regex, FrontendError> {
    match &re.kind {
        RegexKind::Literal(body) => lower_literal(body, re.span, sigma, text),
        RegexKind::Class(class) => lower_class(class, sigma, explicit_alphabet, text),
        RegexKind::Alt(l, r) => Ok(Regex::alt(
            lower_regex(l, sigma, explicit_alphabet, text)?,
            lower_regex(r, sigma, explicit_alphabet, text)?,
        )),
        RegexKind::Concat(l, r) => Ok(Regex::concat(
            lower_regex(l, sigma, explicit_alphabet, text)?,
            lower_regex(r, sigma, explicit_alphabet, text)?,
        )),
        RegexKind::Star(inner) => Ok(Regex::star(lower_regex(
            inner,
            sigma,
            explicit_alphabet,
            text,
        )?)),
        RegexKind::Plus(inner) => {
            let inner = lower_regex(inner, sigma, explicit_alphabet, text)?;
            Ok(Regex::concat(inner.clone(), Regex::star(inner)))
        }
        RegexKind::Opt(inner) => Ok(Regex::alt(
            lower_regex(inner, sigma, explicit_alphabet, text)?,
            Regex::Eps,
        )),
    }
}

/// Elaborates a parsed spec into a validated lexer + grammar pair.
///
/// # Errors
///
/// All diagnostics found in the failing stage, each with the span,
/// line and column of the offending source text.
pub fn elaborate(text: &str, ast: &SpecAst) -> Result<Elaborated, Vec<FrontendError>> {
    let mut errors: Vec<FrontendError> = Vec::new();
    let whole = Span {
        start: 0,
        end: text.len(),
    };

    // ---- Partition the declarations -------------------------------
    struct TokDecl<'a> {
        name: &'a Ident,
        regex: &'a RegexAst,
        skip: bool,
        span: Span,
    }
    struct RuleDecl<'a> {
        name: &'a Ident,
        alts: &'a [SeqAst],
        span: Span,
    }
    let mut tok_decls: Vec<TokDecl<'_>> = Vec::new();
    let mut rule_decls: Vec<RuleDecl<'_>> = Vec::new();
    let mut start: Option<&Ident> = None;
    let mut alphabet_decl: Option<&ClassAst> = None;
    for decl in &ast.decls {
        match &decl.kind {
            DeclKind::Token { name, regex } => tok_decls.push(TokDecl {
                name,
                regex,
                skip: false,
                span: decl.span,
            }),
            DeclKind::Skip { name, regex } => tok_decls.push(TokDecl {
                name,
                regex,
                skip: true,
                span: decl.span,
            }),
            DeclKind::Start { name } => {
                if start.is_some() {
                    errors.push(FrontendError::new(
                        FrontendErrorKind::DuplicateStart,
                        decl.span,
                        text,
                    ));
                } else {
                    start = Some(name);
                }
            }
            DeclKind::Alphabet { class } => {
                if alphabet_decl.is_some() {
                    errors.push(FrontendError::new(
                        FrontendErrorKind::DuplicateAlphabet,
                        decl.span,
                        text,
                    ));
                } else if class.negated {
                    errors.push(FrontendError::new(
                        FrontendErrorKind::AlphabetNegated,
                        class.span,
                        text,
                    ));
                } else {
                    alphabet_decl = Some(class);
                }
            }
            DeclKind::Rule { name, alts } => rule_decls.push(RuleDecl {
                name,
                alts,
                span: decl.span,
            }),
        }
    }

    // ---- Name consistency -----------------------------------------
    let mut token_names: BTreeMap<&str, usize> = BTreeMap::new();
    for (i, t) in tok_decls.iter().enumerate() {
        if token_names.insert(&t.name.text, i).is_some() {
            errors.push(FrontendError::new(
                FrontendErrorKind::DuplicateToken {
                    name: t.name.text.clone(),
                },
                t.name.span,
                text,
            ));
        }
    }
    let mut rule_names: BTreeMap<&str, usize> = BTreeMap::new();
    for (i, r) in rule_decls.iter().enumerate() {
        if rule_names.insert(&r.name.text, i).is_some() {
            errors.push(FrontendError::new(
                FrontendErrorKind::DuplicateRule {
                    name: r.name.text.clone(),
                },
                r.name.span,
                text,
            ));
        }
    }
    for r in &rule_decls {
        if token_names.contains_key(r.name.text.as_str()) {
            errors.push(FrontendError::new(
                FrontendErrorKind::TokenNonterminalClash {
                    name: r.name.text.clone(),
                },
                r.name.span,
                text,
            ));
        }
    }
    if rule_decls.is_empty() {
        errors.push(FrontendError::new(FrontendErrorKind::NoRules, whole, text));
    }
    // Inline production literals, in order of first appearance.
    let mut literal_order: Vec<(String, Span)> = Vec::new();
    let mut literal_seen: BTreeMap<String, Span> = BTreeMap::new();
    for r in &rule_decls {
        for alt in r.alts {
            for sym in &alt.syms {
                if let SymKind::Literal(body) = &sym.kind {
                    if body.is_empty() {
                        errors.push(FrontendError::new(
                            FrontendErrorKind::EmptyLiteral,
                            sym.span,
                            text,
                        ));
                    } else if !literal_seen.contains_key(body) {
                        literal_seen.insert(body.clone(), sym.span);
                        literal_order.push((body.clone(), sym.span));
                    }
                }
            }
        }
    }
    if tok_decls.iter().all(|t| t.skip) && literal_order.is_empty() {
        errors.push(FrontendError::new(
            FrontendErrorKind::NoTokenRules,
            whole,
            text,
        ));
    }
    if !errors.is_empty() {
        return Err(errors);
    }

    // ---- Character alphabet ---------------------------------------
    let explicit_alphabet = alphabet_decl.is_some();
    let sigma = if let Some(class) = alphabet_decl {
        let mut chars = listed_chars(class);
        chars.sort_unstable();
        chars.dedup();
        Alphabet::from_chars(&chars.iter().collect::<String>())
    } else {
        let mut chars: Vec<char> = Vec::new();
        for t in &tok_decls {
            collect_regex_chars(t.regex, &mut chars, &mut errors, text);
        }
        for (body, _) in &literal_order {
            chars.extend(body.chars());
        }
        if !errors.is_empty() {
            return Err(errors);
        }
        chars.sort_unstable();
        chars.dedup();
        if chars.is_empty() {
            // Tokens exist (checked above) but lower to no characters —
            // only possible through empty literals, caught earlier; be
            // defensive anyway.
            return Err(vec![FrontendError::new(
                FrontendErrorKind::NoTokenRules,
                whole,
                text,
            )]);
        }
        Alphabet::from_chars(&chars.iter().collect::<String>())
    };

    // ---- Lower declared rules and literals ------------------------
    let mut lowered: Vec<Regex> = Vec::with_capacity(tok_decls.len());
    for t in &tok_decls {
        match lower_regex(t.regex, &sigma, explicit_alphabet, text) {
            Ok(re) => {
                if re.nullable() {
                    errors.push(FrontendError::new(
                        FrontendErrorKind::NullableToken {
                            name: t.name.text.clone(),
                        },
                        t.regex.span,
                        text,
                    ));
                }
                lowered.push(re);
            }
            Err(e) => {
                errors.push(e);
                lowered.push(Regex::Empty);
            }
        }
    }
    let mut literal_res: Vec<(String, Span, Regex)> = Vec::new();
    for (body, span) in &literal_order {
        match lower_literal(body, *span, &sigma, text) {
            Ok(re) => literal_res.push((body.clone(), *span, re)),
            Err(e) => errors.push(e),
        }
    }
    if !errors.is_empty() {
        return Err(errors);
    }

    // ---- Literal → token resolution -------------------------------
    // A literal whose regex is structurally a declared (non-skip)
    // token's regex reuses that token; otherwise it becomes an implicit
    // token named by its quoted spelling, ahead of every declared rule
    // in priority.
    let mut literal_token: BTreeMap<&str, String> = BTreeMap::new();
    let mut implicit: Vec<(String, Regex)> = Vec::new();
    for (body, _span, re) in &literal_res {
        let reused = tok_decls
            .iter()
            .zip(&lowered)
            .find(|(t, lowered_re)| !t.skip && *lowered_re == re)
            .map(|(t, _)| t.name.text.clone());
        let name = reused.unwrap_or_else(|| {
            let name = quote_name(body);
            implicit.push((name.clone(), re.clone()));
            name
        });
        literal_token.insert(body.as_str(), name);
    }

    // ---- Build the LexSpec ----------------------------------------
    let mut builder = LexSpecBuilder::new(sigma.clone());
    for (name, re) in &implicit {
        builder = builder
            .token_re(name, re.clone())
            .expect("implicit literal tokens are pre-validated");
    }
    for (t, re) in tok_decls.iter().zip(&lowered) {
        builder = if t.skip {
            builder
                .skip_re(&t.name.text, re.clone())
                .expect("declared skip rules are pre-validated")
        } else {
            builder
                .token_re(&t.name.text, re.clone())
                .expect("declared token rules are pre-validated")
        };
    }
    let spec = builder.build().expect("token rules are pre-validated");
    let tokens = spec.token_alphabet().clone();

    // ---- Resolve productions --------------------------------------
    let skip_names: BTreeMap<&str, ()> = tok_decls
        .iter()
        .filter(|t| t.skip)
        .map(|t| (t.name.text.as_str(), ()))
        .collect();
    let mut productions: Vec<Vec<Production>> = Vec::with_capacity(rule_decls.len());
    let mut alt_spans: Vec<Vec<Span>> = Vec::with_capacity(rule_decls.len());
    for r in &rule_decls {
        let mut alts = Vec::with_capacity(r.alts.len());
        let mut spans = Vec::with_capacity(r.alts.len());
        for alt in r.alts {
            let mut rhs = Vec::with_capacity(alt.syms.len());
            for sym in &alt.syms {
                match &sym.kind {
                    SymKind::Ident(name) => {
                        if let Some(&nt) = rule_names.get(name.as_str()) {
                            rhs.push(GSym::N(nt));
                        } else if skip_names.contains_key(name.as_str()) {
                            errors.push(FrontendError::new(
                                FrontendErrorKind::SkipReferenced { name: name.clone() },
                                sym.span,
                                text,
                            ));
                        } else if let Some(tok) = tokens.symbol(name) {
                            rhs.push(GSym::T(tok));
                        } else {
                            errors.push(FrontendError::new(
                                FrontendErrorKind::UndefinedSymbol { name: name.clone() },
                                sym.span,
                                text,
                            ));
                        }
                    }
                    SymKind::Literal(body) => {
                        let name = &literal_token[body.as_str()];
                        let tok = tokens
                            .symbol(name)
                            .expect("literal tokens are in the token alphabet");
                        rhs.push(GSym::T(tok));
                    }
                }
            }
            alts.push(Production { rhs });
            spans.push(alt.span);
        }
        productions.push(alts);
        alt_spans.push(spans);
    }

    // ---- Start symbol ---------------------------------------------
    let start_idx = match start {
        Some(id) => match rule_names.get(id.text.as_str()) {
            Some(&nt) => nt,
            None => {
                errors.push(FrontendError::new(
                    FrontendErrorKind::UndefinedStart {
                        name: id.text.clone(),
                    },
                    id.span,
                    text,
                ));
                0
            }
        },
        None => 0,
    };
    if !errors.is_empty() {
        return Err(errors);
    }

    let num_productions = productions.iter().map(Vec::len).sum();
    let cfg = Cfg::new(
        tokens,
        rule_decls.iter().map(|r| r.name.text.clone()).collect(),
        productions,
        start_idx,
    );
    Ok(Elaborated {
        start_name: cfg.name(start_idx).to_owned(),
        spec,
        cfg,
        num_productions,
        rule_spans: rule_decls
            .iter()
            .map(|r| (r.name.text.clone(), r.span))
            .collect(),
        alt_spans,
        token_spans: tok_decls
            .iter()
            .map(|t| (t.name.text.clone(), t.span))
            .collect(),
        literal_tokens: implicit.iter().map(|(name, _)| name.clone()).collect(),
    })
}
