//! Real-format grammar presets, shipped *as text* (`presets/*.g`) and
//! compiled through the self-hosted frontend like any user submission
//! — the frontend's own dogfood. The corpus benches and the frontend
//! property suite exercise all of them.

/// Full JSON (RFC 8259 shape): escapes, `\uXXXX`, exponents, nested
/// containers.
pub const JSON: &str = include_str!("../presets/json.g");

/// RFC-4180-style CSV with quoted fields and `""` escapes.
pub const CSV: &str = include_str!("../presets/csv.g");

/// Minimal INI: sections, `key = value`, `;`/`#` comments.
pub const INI: &str = include_str!("../presets/ini.g");

/// HTTP/1.1 request lines.
pub const HTTP: &str = include_str!("../presets/http.g");

/// Apache Common Log Format lines.
pub const CLF: &str = include_str!("../presets/clf.g");

/// Every preset, `(name, text)`, in a stable order.
pub fn all() -> [(&'static str, &'static str); 5] {
    [
        ("json", JSON),
        ("csv", CSV),
        ("ini", INI),
        ("http", HTTP),
        ("clf", CLF),
    ]
}
