//! Process-global frontend probes, in the same mold as
//! `lambek_lex::probes` / `lambek_lr::probes`: relaxed atomic
//! counters, monotone, engine-agnostic (every engine in the process
//! shares them). The engine exports them as `lambekd_frontend_*`
//! metrics.

use std::sync::atomic::{AtomicU64, Ordering};

static TEXTS: AtomicU64 = AtomicU64::new(0);
static ELAB_FAILURES: AtomicU64 = AtomicU64::new(0);
static CONFLICT_REJECTS: AtomicU64 = AtomicU64::new(0);
static BUDGET_SHEDS: AtomicU64 = AtomicU64::new(0);

/// A point-in-time snapshot of the frontend probes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FrontendProbes {
    /// Spec texts submitted for compilation (successful or not).
    pub texts_compiled: u64,
    /// Texts rejected by the bootstrap parse or elaboration.
    pub elab_failures: u64,
    /// Texts rejected because the grammar is not LALR(1).
    pub conflict_rejects: u64,
    /// Texts shed by a compile-time budget.
    pub budget_sheds: u64,
}

/// Reads all frontend probes (relaxed; counters are individually
/// exact, mutually unsynchronized).
pub fn snapshot() -> FrontendProbes {
    FrontendProbes {
        texts_compiled: TEXTS.load(Ordering::Relaxed),
        elab_failures: ELAB_FAILURES.load(Ordering::Relaxed),
        conflict_rejects: CONFLICT_REJECTS.load(Ordering::Relaxed),
        budget_sheds: BUDGET_SHEDS.load(Ordering::Relaxed),
    }
}

/// Counts one submitted text.
pub fn note_text() {
    TEXTS.fetch_add(1, Ordering::Relaxed);
}

/// Counts one syntax/elaboration rejection.
pub fn note_elab_failure() {
    ELAB_FAILURES.fetch_add(1, Ordering::Relaxed);
}

/// Counts one LALR-conflict rejection.
pub fn note_conflict_reject() {
    CONFLICT_REJECTS.fetch_add(1, Ordering::Relaxed);
}

/// Counts one budget shed.
pub fn note_budget_shed() {
    BUDGET_SHEDS.fetch_add(1, Ordering::Relaxed);
}
