//! The surface abstract syntax of the grammar language.
//!
//! Every node carries the byte [`Span`] of the source text it was
//! parsed from, so elaboration diagnostics and LALR-conflict reports
//! can point back into the submitted text. The AST is produced by the
//! self-hosted bootstrap parser ([`crate::bootstrap`]) and consumed by
//! the elaborator ([`mod@crate::elaborate`]); [`pretty`] renders it back to
//! canonical source text (the round-trip the property suite pins).

use lambek_lex::Span;

use crate::{FrontendError, FrontendErrorKind};

/// A parsed spec file: the declaration list, in source order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpecAst {
    /// The declarations, in the order they appear in the text.
    pub decls: Vec<Decl>,
}

/// One top-level declaration with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Decl {
    /// What was declared.
    pub kind: DeclKind,
    /// The byte span of the whole declaration (keyword through `;`).
    pub span: Span,
}

/// The declaration forms of the grammar language.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeclKind {
    /// `token NAME = regex ;` — a prioritized lexer rule that feeds the
    /// grammar (priority = declaration order, after production
    /// literals).
    Token {
        /// The token's name.
        name: Ident,
        /// Its regular expression.
        regex: RegexAst,
    },
    /// `skip NAME = regex ;` — a lexer rule whose matches are dropped
    /// from the token yield (whitespace, comments).
    Skip {
        /// The skip rule's name.
        name: Ident,
        /// Its regular expression.
        regex: RegexAst,
    },
    /// `start NAME ;` — selects the start nonterminal (defaults to the
    /// first rule).
    Start {
        /// The named start nonterminal.
        name: Ident,
    },
    /// `alphabet [class] ;` — fixes the character alphabet explicitly
    /// (required for negated classes; otherwise the alphabet is the
    /// set of characters the spec mentions).
    Alphabet {
        /// The class whose characters form the alphabet.
        class: ClassAst,
    },
    /// `Name ::= seq | seq ;` — a grammar rule; an empty alternative is
    /// an ε-production.
    Rule {
        /// The nonterminal being defined.
        name: Ident,
        /// The alternatives, left to right.
        alts: Vec<SeqAst>,
    },
}

/// An identifier with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Ident {
    /// The identifier text.
    pub text: String,
    /// Where it sits in the source.
    pub span: Span,
}

/// One alternative of a grammar rule: a (possibly empty) sequence of
/// grammar symbols.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SeqAst {
    /// The symbols, left to right; empty for an ε-production.
    pub syms: Vec<SymAst>,
    /// The span of the alternative (empty span at the `|`/`;` for ε).
    pub span: Span,
}

/// A grammar symbol occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SymAst {
    /// Nonterminal/token reference or inline literal.
    pub kind: SymKind,
    /// Where the occurrence sits in the source.
    pub span: Span,
}

/// The two kinds of grammar-symbol occurrence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymKind {
    /// A reference to a rule (nonterminal) or a declared token.
    Ident(String),
    /// An inline quoted literal (decoded), which becomes an implicit
    /// high-priority token.
    Literal(String),
}

/// A surface regular expression with its source span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RegexAst {
    /// The node.
    pub kind: RegexKind,
    /// Where it sits in the source.
    pub span: Span,
}

/// Surface regex node forms. `+` and `?` are surface sugar (the core
/// [`regex_grammars::ast::Regex`] has only `|`, concatenation and `*`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RegexKind {
    /// A quoted literal, decoded (`'abc'`, escapes resolved).
    Literal(String),
    /// A character class `[...]`.
    Class(ClassAst),
    /// Alternation `r | s`.
    Alt(Box<RegexAst>, Box<RegexAst>),
    /// Concatenation `r s`.
    Concat(Box<RegexAst>, Box<RegexAst>),
    /// Kleene star `r*`.
    Star(Box<RegexAst>),
    /// One-or-more `r+`.
    Plus(Box<RegexAst>),
    /// Zero-or-one `r?`.
    Opt(Box<RegexAst>),
}

/// A character class `[...]` / `[^...]`, items in source order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassAst {
    /// `true` for `[^...]`: the class denotes the declared alphabet
    /// minus the listed characters.
    pub negated: bool,
    /// The listed characters and ranges.
    pub items: Vec<ClassItem>,
    /// The span of the whole bracketed class.
    pub span: Span,
}

/// One item of a character class.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClassItem {
    /// A single character.
    Char(char),
    /// An inclusive range `lo-hi`.
    Range(char, char),
}

/// Decodes one escape sequence starting at the `\` (which `chars` has
/// already consumed) and returns the denoted character.
fn decode_escape(next: Option<char>, at: usize, text: &str) -> Result<char, FrontendError> {
    let c = next.ok_or_else(|| {
        FrontendError::new(
            FrontendErrorKind::BadEscape { escape: '\\' },
            Span {
                start: at,
                end: at + 1,
            },
            text,
        )
    })?;
    match c {
        't' => Ok('\t'),
        'n' => Ok('\n'),
        'r' => Ok('\r'),
        // Everything else escapes to itself: `\'`, `\\`, `\]`, `\-`,
        // `\^`, `\"`, ... A letter with no escape meaning is an error
        // so typos like `\d` fail loudly instead of matching `d`.
        c if c.is_ascii_alphanumeric() => Err(FrontendError::new(
            FrontendErrorKind::BadEscape { escape: c },
            Span {
                start: at,
                end: at + 1 + c.len_utf8(),
            },
            text,
        )),
        c => Ok(c),
    }
}

/// Decodes the *content* of a quoted literal token (`raw` includes the
/// surrounding quotes; `span` is its location in `text`).
pub(crate) fn decode_literal(raw: &str, span: Span, text: &str) -> Result<String, FrontendError> {
    debug_assert!(raw.len() >= 2 && raw.starts_with('\'') && raw.ends_with('\''));
    let body = &raw[1..raw.len() - 1];
    let mut out = String::with_capacity(body.len());
    let mut chars = body.char_indices();
    while let Some((i, c)) = chars.next() {
        if c == '\\' {
            let next = chars.next().map(|(_, c)| c);
            out.push(decode_escape(next, span.start + 1 + i, text)?);
        } else {
            out.push(c);
        }
    }
    Ok(out)
}

/// Parses the content of a class token (`raw` includes the brackets;
/// `span` is its location in `text`).
pub(crate) fn parse_class(raw: &str, span: Span, text: &str) -> Result<ClassAst, FrontendError> {
    debug_assert!(raw.len() >= 2 && raw.starts_with('[') && raw.ends_with(']'));
    let mut body = &raw[1..raw.len() - 1];
    let mut offset = span.start + 1;
    let negated = body.starts_with('^');
    if negated {
        body = &body[1..];
        offset += 1;
    }
    // First pass: the listed characters with their source offsets
    // (escapes decoded), so the range pass below can point at the
    // offending `lo-hi`.
    let mut atoms: Vec<(char, usize)> = Vec::new();
    let mut chars = body.char_indices();
    while let Some((i, c)) = chars.next() {
        if c == '\\' {
            let next = chars.next().map(|(_, c)| c);
            atoms.push((decode_escape(next, offset + i, text)?, offset + i));
        } else {
            atoms.push((c, offset + i));
        }
    }
    // Second pass: fold `lo-hi` ranges. A `-` is literal when it is
    // first, last, or was written escaped (escaped dashes never parse
    // as a range operator because the first pass already decoded them —
    // we re-detect operator dashes against the raw text).
    let mut items = Vec::new();
    let mut k = 0;
    while k < atoms.len() {
        let (c, at) = atoms[k];
        let is_operator_dash =
            c == '-' && text.as_bytes().get(at) == Some(&b'-') && k > 0 && k + 1 < atoms.len();
        if is_operator_dash {
            // Re-interpret: previous atom is `lo`, next is `hi`.
            let (lo, lo_at) = atoms[k - 1];
            let (hi, hi_at) = atoms[k + 1];
            items.pop();
            if lo > hi {
                return Err(FrontendError::new(
                    FrontendErrorKind::BadClassRange { lo, hi },
                    Span {
                        start: lo_at,
                        end: hi_at + hi.len_utf8(),
                    },
                    text,
                ));
            }
            items.push(ClassItem::Range(lo, hi));
            k += 2;
        } else {
            items.push(ClassItem::Char(c));
            k += 1;
        }
    }
    if items.is_empty() {
        return Err(FrontendError::new(
            FrontendErrorKind::EmptyClass,
            span,
            text,
        ));
    }
    Ok(ClassAst {
        negated,
        items,
        span,
    })
}

/// Escapes one character for inclusion in a quoted literal.
fn escape_literal_char(c: char, out: &mut String) {
    match c {
        '\'' => out.push_str("\\'"),
        '\\' => out.push_str("\\\\"),
        '\t' => out.push_str("\\t"),
        '\n' => out.push_str("\\n"),
        '\r' => out.push_str("\\r"),
        c => out.push(c),
    }
}

/// Escapes one character for inclusion in a class body.
fn escape_class_char(c: char, out: &mut String) {
    match c {
        ']' => out.push_str("\\]"),
        '\\' => out.push_str("\\\\"),
        '^' => out.push_str("\\^"),
        '-' => out.push_str("\\-"),
        '\t' => out.push_str("\\t"),
        '\n' => out.push_str("\\n"),
        '\r' => out.push_str("\\r"),
        c => out.push(c),
    }
}

/// Renders a literal body back to its quoted source form.
pub(crate) fn quote_literal(body: &str) -> String {
    let mut out = String::with_capacity(body.len() + 2);
    out.push('\'');
    for c in body.chars() {
        escape_literal_char(c, &mut out);
    }
    out.push('\'');
    out
}

/// Renders a class back to its bracketed source form.
pub(crate) fn render_class(class: &ClassAst) -> String {
    let mut out = String::new();
    out.push('[');
    if class.negated {
        out.push('^');
    }
    for item in &class.items {
        match *item {
            ClassItem::Char(c) => escape_class_char(c, &mut out),
            ClassItem::Range(lo, hi) => {
                escape_class_char(lo, &mut out);
                out.push('-');
                escape_class_char(hi, &mut out);
            }
        }
    }
    out.push(']');
    out
}

/// Binding strength of a regex node, for minimal parenthesization.
fn precedence(kind: &RegexKind) -> u8 {
    match kind {
        RegexKind::Alt(_, _) => 0,
        RegexKind::Concat(_, _) => 1,
        RegexKind::Star(_) | RegexKind::Plus(_) | RegexKind::Opt(_) => 2,
        RegexKind::Literal(_) | RegexKind::Class(_) => 3,
    }
}

fn render_regex(re: &RegexAst, min_prec: u8, out: &mut String) {
    let prec = precedence(&re.kind);
    if prec < min_prec {
        out.push('(');
    }
    match &re.kind {
        RegexKind::Literal(body) => out.push_str(&quote_literal(body)),
        RegexKind::Class(class) => out.push_str(&render_class(class)),
        RegexKind::Alt(l, r) => {
            render_regex(l, 0, out);
            out.push_str(" | ");
            render_regex(r, 1, out);
        }
        RegexKind::Concat(l, r) => {
            render_regex(l, 1, out);
            out.push(' ');
            render_regex(r, 2, out);
        }
        RegexKind::Star(inner) => {
            render_regex(inner, 3, out);
            out.push('*');
        }
        RegexKind::Plus(inner) => {
            render_regex(inner, 3, out);
            out.push('+');
        }
        RegexKind::Opt(inner) => {
            render_regex(inner, 3, out);
            out.push('?');
        }
    }
    if prec < min_prec {
        out.push(')');
    }
}

/// Pretty-prints a spec back to canonical source text.
///
/// The output reparses to an AST equal to the input modulo spans, and
/// pretty-printing is a fixed point (`pretty ∘ parse ∘ pretty =
/// pretty`) — both properties are pinned by the property suite.
pub fn pretty(ast: &SpecAst) -> String {
    let mut out = String::new();
    for decl in &ast.decls {
        match &decl.kind {
            DeclKind::Token { name, regex } => {
                out.push_str("token ");
                out.push_str(&name.text);
                out.push_str(" = ");
                render_regex(regex, 0, &mut out);
                out.push_str(" ;\n");
            }
            DeclKind::Skip { name, regex } => {
                out.push_str("skip ");
                out.push_str(&name.text);
                out.push_str(" = ");
                render_regex(regex, 0, &mut out);
                out.push_str(" ;\n");
            }
            DeclKind::Start { name } => {
                out.push_str("start ");
                out.push_str(&name.text);
                out.push_str(" ;\n");
            }
            DeclKind::Alphabet { class } => {
                out.push_str("alphabet ");
                out.push_str(&render_class(class));
                out.push_str(" ;\n");
            }
            DeclKind::Rule { name, alts } => {
                out.push_str(&name.text);
                out.push_str(" ::= ");
                for (i, alt) in alts.iter().enumerate() {
                    if i > 0 {
                        out.push_str("| ");
                    }
                    for sym in &alt.syms {
                        match &sym.kind {
                            SymKind::Ident(name) => out.push_str(name),
                            SymKind::Literal(body) => out.push_str(&quote_literal(body)),
                        }
                        out.push(' ');
                    }
                }
                out.push_str(";\n");
            }
        }
    }
    out
}

/// Structural equality modulo spans: the comparison the round-trip
/// property uses (reparsing moves every span).
pub fn ast_eq_modulo_spans(a: &SpecAst, b: &SpecAst) -> bool {
    fn strip(ast: &SpecAst) -> SpecAst {
        let mut ast = ast.clone();
        let zero = Span { start: 0, end: 0 };
        for decl in &mut ast.decls {
            decl.span = zero;
            match &mut decl.kind {
                DeclKind::Token { name, regex } | DeclKind::Skip { name, regex } => {
                    name.span = zero;
                    strip_regex(regex, zero);
                }
                DeclKind::Start { name } => name.span = zero,
                DeclKind::Alphabet { class } => class.span = zero,
                DeclKind::Rule { name, alts } => {
                    name.span = zero;
                    for alt in alts {
                        alt.span = zero;
                        for sym in &mut alt.syms {
                            sym.span = zero;
                        }
                    }
                }
            }
        }
        ast
    }
    fn strip_regex(re: &mut RegexAst, zero: Span) {
        re.span = zero;
        match &mut re.kind {
            RegexKind::Literal(_) => {}
            RegexKind::Class(class) => class.span = zero,
            RegexKind::Alt(l, r) | RegexKind::Concat(l, r) => {
                strip_regex(l, zero);
                strip_regex(r, zero);
            }
            RegexKind::Star(inner) | RegexKind::Plus(inner) | RegexKind::Opt(inner) => {
                strip_regex(inner, zero)
            }
        }
    }
    strip(a) == strip(b)
}
