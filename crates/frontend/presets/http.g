# http.g -- HTTP/1.1 request lines. The request target may be any
# printable-ASCII run, including runs that also look like a method or
# version -- the grammar-side Target union resolves the overlap a
# context-free lexer cannot (maximal munch + priority pick METHOD or
# VERSION for the run; the grammar accepts either in target position).

alphabet [\t\n\r -~] ;

token VERSION = 'HTTP/' [0-9] '.' [0-9] ;
token METHOD = [A-Z]+ ;
token TARGET = [!-~]+ ;
token NL = '\r\n' | '\n' ;
skip SP = [ \t]+ ;

start File ;

File    ::= Request | File Request ;
Request ::= METHOD Target VERSION NL ;
Target  ::= TARGET | METHOD | VERSION ;
