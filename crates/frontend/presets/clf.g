# clf.g -- Apache Common Log Format lines:
#   host ident authuser [date] "request" status bytes
# Bracketed and quoted runs are single tokens; everything else is a
# bare atom (which is why ATOM's class excludes '[' and '"').

alphabet [\t\n\r -~] ;

token BRACKETED = '[' [^\]]* ']' ;
token QUOTED = '"' [^"]* '"' ;
token ATOM = [!#-Z\\\]-~]+ ;
token NL = '\r\n' | '\n' ;
skip SP = [ \t]+ ;

start File ;

File ::= Line | File Line ;
Line ::= ATOM ATOM ATOM BRACKETED QUOTED ATOM ATOM NL ;
