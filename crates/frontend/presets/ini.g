# ini.g -- Minimal INI: [section] headers, key = value lines,
# ';' / '#' comments, blank lines. Values are runs of words and quoted
# strings; a comment eats to end of line.

alphabet [\t\n\r -~] ;

token NL = '\r\n' | '\n' ;
token NAME = [A-Za-z0-9_.\-]+ ;
token STR = '"' [^"\n\r]* '"' ;
skip SP = [ \t]+ ;
skip COMMENT = [;#] [^\n\r]* ;

start File ;

File    ::= | File Line ;
Line    ::= NL | Section NL | Pair NL ;
Section ::= '[' NAME ']' ;
Pair    ::= NAME '=' Value ;
Value   ::= | Value Word ;
Word    ::= NAME | STR ;
