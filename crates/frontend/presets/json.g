# json.g -- Full JSON (RFC 8259 shape): strings with escapes and
# \uXXXX, numbers with fractions and exponents, nested containers.
# The frontend twin of the engine's Rust-built JSON-subset pipeline,
# extended to the full language.

alphabet [\t\n\r -~] ;

token STR = '"' ( [ !#-[\]-~] | '\\' ( ["\\/bfnrt] | 'u' [0-9a-fA-F] [0-9a-fA-F] [0-9a-fA-F] [0-9a-fA-F] ) )* '"' ;
token NUM = '-'? ( '0' | [1-9] [0-9]* ) ( '.' [0-9]+ )? ( [eE] [+\-]? [0-9]+ )? ;
skip WS = [ \t\n\r]+ ;

start Value ;

Value    ::= STR | NUM | 'true' | 'false' | 'null' | Object | Array ;
Object   ::= '{' '}' | '{' Members '}' ;
Members  ::= Pair | Members ',' Pair ;
Pair     ::= STR ':' Value ;
Array    ::= '[' ']' | '[' Elements ']' ;
Elements ::= Value | Elements ',' Value ;
