# csv.g -- RFC-4180-style CSV: comma-separated fields, double-quoted
# fields with "" escapes, empty fields, CRLF or LF record breaks.
# A trailing newline parses as a final record with one empty field --
# the RFC's own edge, resolved the way most readers do.

alphabet [\t\n\r -~] ;

token TEXT = [^",\n\r]+ ;
token QUOTED = '"' ( [^"] | '""' )* '"' ;
token NL = '\r\n' | '\n' ;

start File ;

File   ::= Record | File NL Record ;
Record ::= Field | Record ',' Field ;
Field  ::= | TEXT | QUOTED ;
