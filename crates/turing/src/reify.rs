//! The `Reify` construction: unrestricted grammars (§4.3,
//! Construction 4.15).
//!
//! For any non-linear predicate `P : String → U`, the paper defines
//! `Reify P = ⊕_{w : String} ⊕_{x : P w} ⌈w⌉` — a grammar whose parses of
//! `w` are exactly the proofs of `P w`. Taking `P` to be a Turing
//! machine's acceptance predicate embeds every recursively enumerable
//! language as a linear type.
//!
//! The index set `String` is infinite, so [`reify`] materializes the
//! *length-truncated* instance: the sum over all strings of length ≤
//! `max_len` satisfying `P` (exact for inputs within the bound, per the
//! substitution policy of DESIGN.md §2). `P` itself is a boolean
//! predicate here — proof-relevance collapses to proof-irrelevance
//! because a fueled TM run either accepts or does not.

use lambek_core::alphabet::{Alphabet, GString};
use lambek_core::grammar::expr::{plus, string_literal, Grammar};
use lambek_core::grammar::parse_tree::ParseTree;
use lambek_core::theory::unambiguous::all_strings;

use crate::machine::TuringMachine;

/// A reified predicate: the truncated `Reify P` grammar and the strings
/// it indexes.
#[derive(Debug, Clone)]
pub struct Reified {
    /// The grammar `⊕_{w ≤ max_len, P w} ⌈w⌉`.
    pub grammar: Grammar,
    /// The accepted strings, in summand order.
    pub strings: Vec<GString>,
    /// The truncation bound.
    pub max_len: usize,
}

impl Reified {
    /// The canonical parse of `w` in the reified grammar, if `P w` held
    /// within the bound: the injection at `w`'s summand filled with the
    /// literal character chain.
    pub fn parse(&self, w: &GString) -> Option<ParseTree> {
        let idx = self.strings.iter().position(|s| s == w)?;
        Some(ParseTree::inj(idx, literal_parse(w)))
    }
}

/// The unique parse of `⌈w⌉`: right-nested pairs of characters ending in
/// the unit (§4.3's `⌈·⌉` on trees).
pub fn literal_parse(w: &GString) -> ParseTree {
    let mut tree = ParseTree::Unit;
    let symbols: Vec<_> = w.iter().collect();
    for (i, sym) in symbols.iter().enumerate().rev() {
        if i == symbols.len() - 1 {
            tree = ParseTree::Char(*sym);
        } else {
            tree = ParseTree::pair(ParseTree::Char(*sym), tree);
        }
    }
    if symbols.is_empty() {
        tree = ParseTree::Unit;
    }
    tree
}

/// Reifies an arbitrary boolean predicate over strings of length ≤
/// `max_len` (Construction 4.15, truncated).
pub fn reify(alphabet: &Alphabet, max_len: usize, predicate: impl Fn(&GString) -> bool) -> Reified {
    let strings: Vec<GString> = all_strings(alphabet, max_len)
        .into_iter()
        .filter(|w| predicate(w))
        .collect();
    let grammar = plus(strings.iter().map(string_literal).collect());
    Reified {
        grammar,
        strings,
        max_len,
    }
}

/// Reifies a Turing machine's (fuel-bounded) acceptance predicate: the
/// grammar of Construction 4.15 for the machine's language.
pub fn reify_machine(tm: &TuringMachine, fuel: usize, max_len: usize) -> Reified {
    reify(tm.input_alphabet(), max_len, |w| tm.accepts(w, fuel))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::anbncn_machine;
    use lambek_core::grammar::compile::CompiledGrammar;
    use lambek_core::grammar::parse_tree::validate;
    use lambek_core::theory::unambiguous::check_unambiguous;

    const FUEL: usize = 10_000;

    #[test]
    fn construction_4_15_reified_language_equals_machine_language() {
        let tm = anbncn_machine();
        let s = tm.input_alphabet().clone();
        let reified = reify_machine(&tm, FUEL, 6);
        let cg = CompiledGrammar::new(&reified.grammar);
        for w in all_strings(&s, 6) {
            assert_eq!(cg.recognizes(&w), tm.accepts(&w, FUEL), "{w}");
        }
    }

    #[test]
    fn reified_grammar_is_beyond_context_free() {
        // The reified language contains abc and aabbcc but not aabbc —
        // the aⁿbⁿcⁿ signature no CFG recognizes.
        let tm = anbncn_machine();
        let s = tm.input_alphabet().clone();
        let reified = reify_machine(&tm, FUEL, 6);
        let cg = CompiledGrammar::new(&reified.grammar);
        assert!(cg.recognizes(&s.parse_str("abc").unwrap()));
        assert!(cg.recognizes(&s.parse_str("aabbcc").unwrap()));
        assert!(cg.recognizes(&GString::new()));
        assert!(!cg.recognizes(&s.parse_str("aabbc").unwrap()));
    }

    #[test]
    fn reified_parses_validate() {
        let tm = anbncn_machine();
        let s = tm.input_alphabet().clone();
        let reified = reify_machine(&tm, FUEL, 6);
        for w in ["", "abc", "aabbcc"] {
            let w = s.parse_str(w).unwrap();
            let t = reified.parse(&w).expect("in the language");
            validate(&t, &reified.grammar, &w).unwrap();
        }
        assert!(reified.parse(&s.parse_str("ab").unwrap()).is_none());
    }

    #[test]
    fn reified_deterministic_predicate_is_unambiguous() {
        // Each string indexes at most one summand, and ⌈w⌉ is
        // unambiguous, so Reify P is unambiguous.
        let tm = anbncn_machine();
        let reified = reify_machine(&tm, FUEL, 4);
        check_unambiguous(&reified.grammar, tm.input_alphabet(), 4).unwrap();
    }

    #[test]
    fn reify_arbitrary_predicate() {
        // Reify "even length" — a sanity check that reify is not tied to
        // machines.
        let s = Alphabet::abc();
        let reified = reify(&s, 3, |w| w.len() % 2 == 0);
        let cg = CompiledGrammar::new(&reified.grammar);
        for w in all_strings(&s, 3) {
            assert_eq!(cg.recognizes(&w), w.len() % 2 == 0, "{w}");
        }
    }
}
