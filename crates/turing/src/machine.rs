//! A single-tape Turing machine simulator.
//!
//! §4.3 of the paper encodes *unrestricted* grammars by reifying a
//! Turing machine's acceptance predicate into a linear type. This module
//! provides the machine substrate: a deterministic single-tape TM with a
//! fuel-bounded simulator (the paper's predicate `accepts` is semi-
//! decidable; fuel makes the experiments terminate).

use std::collections::HashMap;

use lambek_core::alphabet::{Alphabet, GString, Symbol};

/// A tape symbol: input symbols embed at their alphabet index; working
/// symbols (including the blank) live above them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TapeSym(pub u16);

/// Head movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Move {
    /// One cell left.
    Left,
    /// One cell right.
    Right,
    /// Stay put.
    Stay,
}

/// Result of a fuel-bounded run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunResult {
    /// Halted in the accepting state.
    Accept,
    /// Halted in the rejecting state (or on a missing transition).
    Reject,
    /// Fuel ran out before halting.
    OutOfFuel,
}

/// A deterministic single-tape Turing machine.
#[derive(Debug, Clone)]
pub struct TuringMachine {
    input_alphabet: Alphabet,
    num_states: usize,
    init: usize,
    accept: usize,
    reject: usize,
    blank: TapeSym,
    transitions: HashMap<(usize, TapeSym), (usize, TapeSym, Move)>,
}

impl TuringMachine {
    /// Creates a machine with `num_states` states. The blank symbol is
    /// chosen just above the input alphabet; use [`TuringMachine::work_symbol`]
    /// for further working symbols.
    ///
    /// # Panics
    ///
    /// Panics if any named state is out of range or accept == reject.
    pub fn new(
        input_alphabet: Alphabet,
        num_states: usize,
        init: usize,
        accept: usize,
        reject: usize,
    ) -> TuringMachine {
        assert!(init < num_states && accept < num_states && reject < num_states);
        assert_ne!(accept, reject, "accept and reject must differ");
        let blank = TapeSym(input_alphabet.len() as u16);
        TuringMachine {
            input_alphabet,
            num_states,
            init,
            accept,
            reject,
            blank,
            transitions: HashMap::new(),
        }
    }

    /// The input alphabet.
    pub fn input_alphabet(&self) -> &Alphabet {
        &self.input_alphabet
    }

    /// The blank tape symbol.
    pub fn blank(&self) -> TapeSym {
        self.blank
    }

    /// The tape embedding of an input symbol.
    pub fn input_symbol(&self, sym: Symbol) -> TapeSym {
        TapeSym(sym.index() as u16)
    }

    /// The `k`-th working symbol (distinct from inputs and the blank).
    pub fn work_symbol(&self, k: usize) -> TapeSym {
        TapeSym((self.input_alphabet.len() + 1 + k) as u16)
    }

    /// Adds the transition `(state, read) → (next, write, mv)`.
    ///
    /// # Panics
    ///
    /// Panics if a transition for `(state, read)` already exists (the
    /// machine is deterministic) or a state is out of range.
    pub fn add_transition(
        &mut self,
        state: usize,
        read: TapeSym,
        next: usize,
        write: TapeSym,
        mv: Move,
    ) {
        assert!(state < self.num_states && next < self.num_states);
        let prev = self.transitions.insert((state, read), (next, write, mv));
        assert!(
            prev.is_none(),
            "duplicate transition for ({state}, {read:?})"
        );
    }

    /// Runs the machine on `w` for at most `fuel` steps.
    pub fn run(&self, w: &GString, fuel: usize) -> RunResult {
        let mut tape: HashMap<i64, TapeSym> = w
            .iter()
            .enumerate()
            .map(|(i, s)| (i as i64, self.input_symbol(s)))
            .collect();
        let mut head: i64 = 0;
        let mut state = self.init;
        for _ in 0..fuel {
            if state == self.accept {
                return RunResult::Accept;
            }
            if state == self.reject {
                return RunResult::Reject;
            }
            let read = tape.get(&head).copied().unwrap_or(self.blank);
            match self.transitions.get(&(state, read)) {
                None => return RunResult::Reject,
                Some(&(next, write, mv)) => {
                    tape.insert(head, write);
                    state = next;
                    head += match mv {
                        Move::Left => -1,
                        Move::Right => 1,
                        Move::Stay => 0,
                    };
                }
            }
        }
        match state {
            s if s == self.accept => RunResult::Accept,
            s if s == self.reject => RunResult::Reject,
            _ => RunResult::OutOfFuel,
        }
    }

    /// Whether the machine accepts within the fuel budget (out-of-fuel
    /// counts as rejection; callers pick fuel generously).
    pub fn accepts(&self, w: &GString, fuel: usize) -> bool {
        self.run(w, fuel) == RunResult::Accept
    }
}

/// The classic non-context-free language `aⁿbⁿcⁿ` as a Turing machine
/// over `{a, b, c}`.
///
/// Two phases: a regular *shape* pass checks the input matches `a*b*c*`
/// (ordering), then a *marker loop* repeatedly marks one `a`, one `b` and
/// one `c` per round and accepts when everything is marked (counting).
pub fn anbncn_machine() -> TuringMachine {
    let sigma = Alphabet::abc();
    let a = sigma.symbol("a").expect("a");
    let b = sigma.symbol("b").expect("b");
    let c = sigma.symbol("c").expect("c");
    // States: 0/1/2 shape a*/b*/c*; 3 initial rewind; 4 find-a;
    // 5 find-b; 6 find-c; 7 loop rewind; 8 accept; 9 reject.
    const ACCEPT: usize = 8;
    const REJECT: usize = 9;
    let mut tm = TuringMachine::new(sigma, 10, 0, ACCEPT, REJECT);
    let (ta, tb, tc) = (tm.input_symbol(a), tm.input_symbol(b), tm.input_symbol(c));
    let x = tm.work_symbol(0); // marked
    let blank = tm.blank();

    // Shape pass: the tape must read a* b* c*.
    tm.add_transition(0, ta, 0, ta, Move::Right);
    tm.add_transition(0, tb, 1, tb, Move::Right);
    tm.add_transition(0, tc, 2, tc, Move::Right);
    tm.add_transition(0, blank, 3, blank, Move::Left);
    tm.add_transition(1, tb, 1, tb, Move::Right);
    tm.add_transition(1, tc, 2, tc, Move::Right);
    tm.add_transition(1, ta, REJECT, ta, Move::Stay);
    tm.add_transition(1, blank, 3, blank, Move::Left);
    tm.add_transition(2, tc, 2, tc, Move::Right);
    tm.add_transition(2, ta, REJECT, ta, Move::Stay);
    tm.add_transition(2, tb, REJECT, tb, Move::Stay);
    tm.add_transition(2, blank, 3, blank, Move::Left);

    // 3: rewind to the cell right of the left blank.
    for s in [ta, tb, tc, x] {
        tm.add_transition(3, s, 3, s, Move::Left);
    }
    tm.add_transition(3, blank, 4, blank, Move::Right);

    // 4: find the next unmarked 'a' (skipping marks). A surviving b or c
    // here means the counts differ.
    tm.add_transition(4, x, 4, x, Move::Right);
    tm.add_transition(4, ta, 5, x, Move::Right);
    tm.add_transition(4, tb, REJECT, tb, Move::Stay);
    tm.add_transition(4, tc, REJECT, tc, Move::Stay);
    tm.add_transition(4, blank, ACCEPT, blank, Move::Stay);

    // 5: find the next unmarked 'b' (skipping a's and marks).
    tm.add_transition(5, ta, 5, ta, Move::Right);
    tm.add_transition(5, x, 5, x, Move::Right);
    tm.add_transition(5, tb, 6, x, Move::Right);
    tm.add_transition(5, tc, REJECT, tc, Move::Stay);
    tm.add_transition(5, blank, REJECT, blank, Move::Stay);

    // 6: find the next unmarked 'c' (skipping b's and marks).
    tm.add_transition(6, tb, 6, tb, Move::Right);
    tm.add_transition(6, x, 6, x, Move::Right);
    tm.add_transition(6, tc, 7, x, Move::Left);
    tm.add_transition(6, ta, REJECT, ta, Move::Stay);
    tm.add_transition(6, blank, REJECT, blank, Move::Stay);

    // 7: rewind and loop.
    for s in [ta, tb, tc, x] {
        tm.add_transition(7, s, 7, s, Move::Left);
    }
    tm.add_transition(7, blank, 4, blank, Move::Right);

    tm
}

#[cfg(test)]
mod tests {
    use super::*;

    const FUEL: usize = 10_000;

    #[test]
    fn anbncn_accepts_exactly_the_language() {
        let tm = anbncn_machine();
        let s = tm.input_alphabet().clone();
        for n in 0..5 {
            let w = s
                .parse_str(&format!(
                    "{}{}{}",
                    "a".repeat(n),
                    "b".repeat(n),
                    "c".repeat(n)
                ))
                .unwrap();
            assert!(tm.accepts(&w, FUEL), "a^{n} b^{n} c^{n}");
        }
        for no in [
            "a", "b", "c", "ab", "abcc", "aabbc", "abab", "cba", "aabbbccc", "abca", "abcabc",
            "acb", "bac", "aabcbc",
        ] {
            let w = s.parse_str(no).unwrap();
            assert!(!tm.accepts(&w, FUEL), "{no}");
        }
    }

    #[test]
    fn out_of_fuel_is_reported() {
        // A two-state machine that loops forever on 'a'.
        let sigma = Alphabet::abc();
        let a = sigma.symbol("a").unwrap();
        let mut tm = TuringMachine::new(sigma.clone(), 3, 0, 1, 2);
        let ta = tm.input_symbol(a);
        tm.add_transition(0, ta, 0, ta, Move::Stay);
        let w = sigma.parse_str("a").unwrap();
        assert_eq!(tm.run(&w, 100), RunResult::OutOfFuel);
    }

    #[test]
    fn missing_transition_rejects() {
        let sigma = Alphabet::abc();
        let tm = TuringMachine::new(sigma.clone(), 3, 0, 1, 2);
        let w = sigma.parse_str("a").unwrap();
        assert_eq!(tm.run(&w, 100), RunResult::Reject);
    }

    #[test]
    #[should_panic(expected = "duplicate transition")]
    fn determinism_is_enforced() {
        let sigma = Alphabet::abc();
        let a = sigma.symbol("a").unwrap();
        let mut tm = TuringMachine::new(sigma, 3, 0, 1, 2);
        let ta = tm.input_symbol(a);
        tm.add_transition(0, ta, 0, ta, Move::Right);
        tm.add_transition(0, ta, 1, ta, Move::Left);
    }
}
