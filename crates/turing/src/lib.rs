//! # lambek-turing — unrestricted grammars via Turing machines
//!
//! §4.3 of the paper: LambekD can express *arbitrarily complex* grammars,
//! because any non-linear predicate on strings reifies into a linear type
//! (Construction 4.15). This crate provides the substrate — a
//! deterministic single-tape Turing machine with a fueled simulator
//! ([`machine`]) — and the (length-truncated) `Reify` construction
//! ([`reify`]), demonstrated on the non-context-free language `aⁿbⁿcⁿ`.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod machine;
pub mod reify;
