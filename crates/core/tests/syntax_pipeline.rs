//! End-to-end tests of the deep syntax: the paper's §2 example programs
//! are declared, type-checked by the ordered-linear checker, evaluated to
//! parse transformers, and validated against the denotational semantics.

use std::sync::Arc;

use lambek_core::alphabet::Alphabet;
use lambek_core::check::{check_signature, Checker, StructuralRule, TypeError};
use lambek_core::eval::elaborate::Elaborator;
use lambek_core::eval::{transformer_of, EvalEnv, Evaluator, LinValue};
use lambek_core::grammar::compile::CompiledGrammar;
use lambek_core::grammar::parse_tree::validate;
use lambek_core::syntax::nonlinear::{NlCtx, NlEnv};
use lambek_core::syntax::terms::{FoldClause, LinTerm};
use lambek_core::syntax::types::{CtorDecl, DataDecl, GlobalDef, LinType, Signature};

fn sigma() -> Alphabet {
    Alphabet::abc()
}

fn chr(name: &str) -> LinType {
    LinType::Char(sigma().symbol(name).unwrap())
}

/// `data A* : L where nil : A* ; cons : A ⊸ A* ⊸ A*` (Fig. 2),
/// instantiated at `A = 'a'`.
fn declare_star(sig: &mut Signature, name: &str, elem: LinType) {
    sig.declare_data(DataDecl {
        name: name.to_owned(),
        index_telescope: vec![],
        ctors: vec![
            CtorDecl {
                name: "nil".to_owned(),
                nl_args: vec![],
                lin_args: vec![],
                result_indices: vec![],
            },
            CtorDecl {
                name: "cons".to_owned(),
                nl_args: vec![],
                lin_args: vec![elem, LinType::data(name)],
                result_indices: vec![],
            },
        ],
    })
    .unwrap();
}

/// Fig. 1: `f : ↑('a' ⊗ 'b' ⊸ ('a' ⊗ 'b') ⊕ 'c')`, `f (a, b) = inl (a, b)`.
#[test]
fn fig1_term_checks_evaluates_and_validates() {
    let sig = Signature::new();
    let ck = Checker::new(&sig);
    let dom = LinType::tensor(chr("a"), chr("b"));
    let cod = LinType::alt(LinType::tensor(chr("a"), chr("b")), chr("c"));
    let f = LinTerm::lam(
        "p",
        dom.clone(),
        LinTerm::let_pair(
            LinTerm::var("p"),
            "a",
            "b",
            LinTerm::inj(0, 2, LinTerm::pair(LinTerm::var("a"), LinTerm::var("b"))),
        ),
    );
    // Type checking replays Fig. 1's derivation.
    ck.check(
        &NlCtx::new(),
        &[],
        &f,
        &LinType::lfun(dom.clone(), cod.clone()),
    )
    .unwrap();

    // Evaluation is a parse transformer; the result parses "ab".
    let tr = transformer_of(&sig, "fig1", &f, &dom, &cod, 8).unwrap();
    let s = sigma();
    let w = s.parse_str("ab").unwrap();
    let dom_cg = CompiledGrammar::new(tr.dom());
    let input = dom_cg.parses(&w, 4).trees.remove(0);
    let out = tr.apply_checked(&input).unwrap();
    assert_eq!(out.flatten(), w);
    validate(&out, tr.cod(), &w).unwrap();
}

/// Fig. 3: `g (a, b) = inl (cons a nil, b)` at type
/// `('a' ⊗ 'b') ⊸ ('a'* ⊗ 'b') ⊕ 'c'`.
#[test]
fn fig3_star_constructors() {
    let mut sig = Signature::new();
    declare_star(&mut sig, "AStar", chr("a"));
    let ck = Checker::new(&sig);
    let astar = LinType::data("AStar");
    let dom = LinType::tensor(chr("a"), chr("b"));
    let cod = LinType::alt(LinType::tensor(astar.clone(), chr("b")), chr("c"));
    let nil = LinTerm::Ctor {
        data: "AStar".to_owned(),
        ctor: "nil".to_owned(),
        nl_args: vec![],
        lin_args: vec![],
    };
    let g = LinTerm::lam(
        "p",
        dom.clone(),
        LinTerm::let_pair(
            LinTerm::var("p"),
            "a",
            "b",
            LinTerm::inj(
                0,
                2,
                LinTerm::pair(
                    LinTerm::Ctor {
                        data: "AStar".to_owned(),
                        ctor: "cons".to_owned(),
                        nl_args: vec![],
                        lin_args: vec![LinTerm::var("a"), nil],
                    },
                    LinTerm::var("b"),
                ),
            ),
        ),
    );
    ck.check(
        &NlCtx::new(),
        &[],
        &g,
        &LinType::lfun(dom.clone(), cod.clone()),
    )
    .unwrap();

    let tr = transformer_of(&sig, "fig3", &g, &dom, &cod, 8).unwrap();
    let s = sigma();
    let w = s.parse_str("ab").unwrap();
    let dom_cg = CompiledGrammar::new(tr.dom());
    let input = dom_cg.parses(&w, 4).trees.remove(0);
    let out = tr.apply_checked(&input).unwrap();
    validate(&out, tr.cod(), &w).unwrap();
    // The output is σ0 (cons a nil, b).
    assert!(matches!(
        out,
        lambek_core::grammar::parse_tree::ParseTree::Inj { index: 0, .. }
    ));
}

/// Fig. 4: `h : (A ⊗ A)* ⊸ A*` via fold, at `A = 'a'`.
#[test]
fn fig4_fold_transformer() {
    let mut sig = Signature::new();
    declare_star(&mut sig, "AStar", chr("a"));
    declare_star(&mut sig, "PairStar", LinType::tensor(chr("a"), chr("a")));
    let astar = LinType::data("AStar");

    let cons = |head: LinTerm, tail: LinTerm| LinTerm::Ctor {
        data: "AStar".to_owned(),
        ctor: "cons".to_owned(),
        nl_args: vec![],
        lin_args: vec![head, tail],
    };
    let nil = LinTerm::Ctor {
        data: "AStar".to_owned(),
        ctor: "nil".to_owned(),
        nl_args: vec![],
        lin_args: vec![],
    };

    // fold clauses: nil ⇒ nil ; cons (a₁,a₂) ih ⇒ cons a₁ (cons a₂ ih).
    let h_body = LinTerm::Fold {
        data: "PairStar".to_owned(),
        motive: Arc::new(astar.clone()),
        clauses: vec![
            FoldClause {
                nl_vars: vec![],
                lin_vars: vec![],
                body: Arc::new(nil.clone()),
            },
            FoldClause {
                nl_vars: vec![],
                lin_vars: vec!["aa".to_owned(), "ih".to_owned()],
                body: Arc::new(LinTerm::let_pair(
                    LinTerm::var("aa"),
                    "a1",
                    "a2",
                    cons(
                        LinTerm::var("a1"),
                        cons(LinTerm::var("a2"), LinTerm::var("ih")),
                    ),
                )),
            },
        ],
        scrutinee: Arc::new(LinTerm::var("ps")),
    };
    let h = LinTerm::lam("ps", LinType::data("PairStar"), h_body);
    let ck = Checker::new(&sig);
    let hty = LinType::lfun(LinType::data("PairStar"), astar.clone());
    ck.check(&NlCtx::new(), &[], &h, &hty).unwrap();

    // Run it on the parse of "aaaa" (two pairs) and check Fig. 4's output.
    let tr = transformer_of(&sig, "fig4-h", &h, &LinType::data("PairStar"), &astar, 8).unwrap();
    let s = sigma();
    let w = s.parse_str("aaaa").unwrap();
    let dom_cg = CompiledGrammar::new(tr.dom());
    let forest = dom_cg.parses(&w, 4);
    assert_eq!(forest.trees.len(), 1);
    let out = tr.apply_checked(&forest.trees[0]).unwrap();
    assert_eq!(out.flatten(), w);
    validate(&out, tr.cod(), &w).unwrap();
    // ε maps to nil.
    let empty = dom_cg.parses(&s.parse_str("").unwrap(), 4).trees.remove(0);
    let out = tr.apply_checked(&empty).unwrap();
    assert_eq!(
        out,
        lambek_core::grammar::parse_tree::ParseTree::roll(
            lambek_core::grammar::parse_tree::ParseTree::inj(
                0,
                lambek_core::grammar::parse_tree::ParseTree::Unit
            )
        )
    );
}

/// §2's non-derivations: each structural rule is rejected with the right
/// diagnosis.
#[test]
fn section2_structural_rejections() {
    let sig = Signature::new();
    let ck = Checker::new(&sig);
    let ctx = vec![("a".to_owned(), chr("a")), ("b".to_owned(), chr("b"))];
    // Weakening: a, b ⊬ a.
    match ck.infer(&NlCtx::new(), &ctx, &LinTerm::var("a")) {
        Err(TypeError::Structural {
            rule: StructuralRule::Weakening,
            ..
        }) => {}
        other => panic!("expected weakening rejection, got {other:?}"),
    }
    // Contraction: a, b ⊬ (a, a).
    match ck.infer(
        &NlCtx::new(),
        &ctx,
        &LinTerm::pair(LinTerm::var("a"), LinTerm::var("a")),
    ) {
        Err(TypeError::Structural {
            rule: StructuralRule::Contraction,
            ..
        }) => {}
        other => panic!("expected contraction rejection, got {other:?}"),
    }
    // Exchange: a, b ⊬ (b, a).
    match ck.infer(
        &NlCtx::new(),
        &ctx,
        &LinTerm::pair(LinTerm::var("b"), LinTerm::var("a")),
    ) {
        Err(TypeError::Structural {
            rule: StructuralRule::Exchange,
            ..
        }) => {}
        other => panic!("expected exchange rejection, got {other:?}"),
    }
}

/// Global definitions: declare Fig. 1's `f` as a signature definition and
/// check the whole signature.
#[test]
fn global_definitions_check() {
    let mut sig = Signature::new();
    let dom = LinType::tensor(chr("a"), chr("b"));
    let cod = LinType::alt(LinType::tensor(chr("a"), chr("b")), chr("c"));
    let f = LinTerm::lam(
        "p",
        dom.clone(),
        LinTerm::let_pair(
            LinTerm::var("p"),
            "a",
            "b",
            LinTerm::inj(0, 2, LinTerm::pair(LinTerm::var("a"), LinTerm::var("b"))),
        ),
    );
    sig.define(GlobalDef {
        name: "f".to_owned(),
        ty: LinType::lfun(dom, cod),
        body: Arc::new(f),
    })
    .unwrap();
    check_signature(&sig).unwrap();
    // A global is resource-free: usable under an empty linear context.
    let ck = Checker::new(&sig);
    let ty = ck
        .infer(&NlCtx::new(), &[], &LinTerm::Global("f".to_owned()))
        .unwrap();
    assert!(matches!(ty, LinType::LFun(..)));
}

/// The elaborated `AStar` grammar recognizes exactly `a*`, connecting the
/// syntax-level declaration to the denotational model.
#[test]
fn declared_star_matches_denotational_star() {
    let mut sig = Signature::new();
    declare_star(&mut sig, "AStar", chr("a"));
    let mut el = Elaborator::new(&sig, 8);
    let g = el
        .elaborate(&NlEnv::new(), &LinType::data("AStar"))
        .unwrap();
    let cg = CompiledGrammar::new(&g);
    let s = sigma();
    let denot = CompiledGrammar::new(&lambek_core::grammar::expr::star(
        lambek_core::grammar::expr::chr(s.symbol("a").unwrap()),
    ));
    for w in lambek_core::theory::unambiguous::all_strings(&s, 4) {
        assert_eq!(cg.recognizes(&w), denot.recognizes(&w), "{w}");
    }
}

/// Evaluator sanity: constructor values fold correctly (length of a list
/// as a ⊤-valued accumulation would need semirings; here we re-associate
/// like Fig. 4 and compare flattenings).
#[test]
fn evaluator_builds_and_flattens_ctor_values() {
    let mut sig = Signature::new();
    declare_star(&mut sig, "AStar", chr("a"));
    let ev = Evaluator::new(&sig, 8);
    let a = sigma().symbol("a").unwrap();
    let two = LinTerm::Ctor {
        data: "AStar".to_owned(),
        ctor: "cons".to_owned(),
        nl_args: vec![],
        lin_args: vec![
            LinTerm::var("x"),
            LinTerm::Ctor {
                data: "AStar".to_owned(),
                ctor: "nil".to_owned(),
                nl_args: vec![],
                lin_args: vec![],
            },
        ],
    };
    let mut env = EvalEnv::default();
    env.lin.insert("x".to_owned(), LinValue::Char(a));
    let v = ev.eval(&env, &two).unwrap();
    assert_eq!(v.flatten(), sigma().parse_str("a").unwrap());
    // Reify and validate against the elaborated grammar.
    let tree = ev.reify_value(&v, &LinType::data("AStar")).unwrap();
    let mut el = Elaborator::new(&sig, 8);
    let g = el
        .elaborate(&NlEnv::new(), &LinType::data("AStar"))
        .unwrap();
    validate(&tree, &g, &sigma().parse_str("a").unwrap()).unwrap();
    // Internalize round-trips.
    let back = ev.internalize(&tree, &LinType::data("AStar")).unwrap();
    assert!(back.structurally_equal(&v));
}
