//! The equalizer-induction technique of §3.3: to prove two functions out
//! of an inductive type equal, build `ind : ↑(μF ⊸ {a | f a = g a})` by
//! `fold` — an inductive argument justified purely by the βη laws.
//!
//! Semantically (which is where this crate lives), `{a | f a = g a}` is
//! the subset of parses where the transformers agree, and the fold-built
//! `ind` witnesses that *every* parse lands in it. We execute exactly
//! that: a fold whose algebra checks the equation layer by layer, plus
//! the pointwise-equality oracle as an independent cross-check.

use std::sync::Arc;

use lambek_core::alphabet::Alphabet;
use lambek_core::grammar::compile::CompiledGrammar;
use lambek_core::grammar::expr::{alt, chr, eps, mu, tensor, var, Grammar, MuSystem};
use lambek_core::grammar::parse_tree::ParseTree;
use lambek_core::theory::equivalence::check_transformers_equal_on;
use lambek_core::theory::unambiguous::all_strings;
use lambek_core::transform::combinators::id;
use lambek_core::transform::fold::{roll, unroll};
use lambek_core::transform::{TransformError, Transformer};

fn star_system(a: Grammar) -> Arc<MuSystem> {
    MuSystem::new(vec![alt(eps(), tensor(a, var(0)))], vec!["star".to_owned()])
}

/// `f = roll ∘ unroll` and `g = id` on `'a'*`: equal by the η law for μ.
fn the_two_functions() -> (Transformer, Transformer, Grammar) {
    let sigma = Alphabet::abc();
    let a = chr(sigma.symbol("a").unwrap());
    let sys = star_system(a);
    let astar = mu(sys.clone(), 0);
    let f = unroll(sys.clone(), 0).then(&roll(sys, 0)).unwrap();
    let g = id(astar.clone());
    (f, g, astar)
}

/// The `ind` function: a structural recursion that, at every `roll`
/// layer, checks `f(layer) == g(layer)` and returns the (equalizer-
/// wrapped, i.e. unchanged) parse. Its totality on all parses *is* the
/// inductive proof.
fn ind(f: &Transformer, g: &Transformer, tree: &ParseTree) -> Result<ParseTree, TransformError> {
    // Recurse into the tail first (the inductive hypothesis)...
    if let ParseTree::Roll(inner) = tree {
        if let ParseTree::Inj {
            index: 1,
            tree: pair,
        } = &**inner
        {
            if let ParseTree::Pair(head, tail) = &**pair {
                let tail2 = ind(f, g, tail)?;
                let rebuilt =
                    ParseTree::roll(ParseTree::inj(1, ParseTree::pair((**head).clone(), tail2)));
                return equalizer_intro(f, g, &rebuilt);
            }
        }
    }
    // ...and the base case.
    equalizer_intro(f, g, tree)
}

/// The equalizer introduction rule ⟨e⟩: requires `f e ≡ g e` (Fig. 9's
/// side condition), checked semantically.
fn equalizer_intro(
    f: &Transformer,
    g: &Transformer,
    tree: &ParseTree,
) -> Result<ParseTree, TransformError> {
    let (ft, gt) = (f.apply(tree)?, g.apply(tree)?);
    if ft == gt {
        Ok(tree.clone())
    } else {
        Err(TransformError::Custom(format!(
            "equalizer side condition failed: {ft} ≠ {gt}"
        )))
    }
}

#[test]
fn inductive_equality_proof_via_equalizer() {
    let (f, g, astar) = the_two_functions();
    let sigma = Alphabet::abc();
    let cg = CompiledGrammar::new(&astar);
    // ind is total on every parse of 'a'* — the §3.3 induction succeeds.
    for w in all_strings(&sigma, 5) {
        for t in cg.parses(&w, 4).trees {
            let out = ind(&f, &g, &t).expect("induction step holds");
            assert_eq!(out, t, "ind(a) ≡ a, as the paper requires");
        }
    }
}

#[test]
fn pointwise_oracle_agrees() {
    let (f, g, _) = the_two_functions();
    let sigma = Alphabet::abc();
    check_transformers_equal_on(&f, &g, &all_strings(&sigma, 5), 8).unwrap();
}

#[test]
fn induction_detects_inequality() {
    // Same setup but g deliberately wrong (maps everything to nil):
    // the equalizer side condition must fail on non-empty parses.
    let sigma = Alphabet::abc();
    let a = chr(sigma.symbol("a").unwrap());
    let sys = star_system(a);
    let astar = mu(sys.clone(), 0);
    let f = id(astar.clone());
    let nil_everywhere = Transformer::from_fn("collapse", astar.clone(), astar, |t| {
        if t.flatten().is_empty() {
            Ok(t.clone())
        } else {
            Ok(ParseTree::roll(ParseTree::inj(0, ParseTree::Unit)))
        }
    });
    let cg = CompiledGrammar::new(f.dom());
    let w = sigma.parse_str("aa").unwrap();
    let t = cg.parses(&w, 2).trees.remove(0);
    assert!(ind(&f, &nil_everywhere, &t).is_err());
}
