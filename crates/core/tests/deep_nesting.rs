//! Regression tests for stack-safety on deeply nested syntax.
//!
//! Everything here runs inside a deliberately *small* spawned stack
//! (256 KiB): any deep structural recursion — the pre-hash-consing
//! behavior of `lin_type_equal`, or the pre-iterative behavior of
//! `subst_lin` — overflows it, while the pointer-equality fast path and
//! the explicit-stack traversal complete in O(1) frames.

use std::sync::Arc;

use lambek_core::alphabet::Alphabet;
use lambek_core::check::Checker;
use lambek_core::eval::equality::subst_lin;
use lambek_core::syntax::nonlinear::NlCtx;
use lambek_core::syntax::terms::LinTerm;
use lambek_core::syntax::types::{lin_type_equal, LinType, Signature};

const DEPTH: usize = 10_000;
const SMALL_STACK: usize = 256 * 1024;

fn chr(name: &str) -> LinType {
    LinType::Char(Alphabet::abc().symbol(name).unwrap())
}

/// A `DEPTH`-deep left-leaning tensor chain, built bottom-up through the
/// interned constructors (each step is O(1): the children are already
/// canonical).
fn deep_tensor_chain() -> LinType {
    let mut ty = chr("a");
    for _ in 0..DEPTH {
        ty = LinType::tensor(chr("b"), ty);
    }
    ty
}

fn in_small_stack(name: &str, f: impl FnOnce() + Send + 'static) {
    std::thread::Builder::new()
        .name(name.to_owned())
        .stack_size(SMALL_STACK)
        .spawn(f)
        .expect("spawn")
        .join()
        .expect("no stack overflow / panic");
}

#[test]
fn ten_k_deep_tensor_chain_type_checks_in_a_small_stack() {
    in_small_stack("deep-check", || {
        let ty = deep_tensor_chain();
        let sig = Signature::new();
        let ck = Checker::new(&sig);
        let ctx = vec![("x".to_owned(), ty.clone())];
        // x : A ⊢ x ⇐ A — the conversion check at the end compares two
        // independently obtained handles on the 10k-deep type; only the
        // interned pointer fast path makes that O(1) in stack and time.
        ck.check(&NlCtx::new(), &ctx, &LinTerm::var("x"), &ty)
            .expect("deep chain checks");
    });
}

#[test]
fn equality_on_identical_interned_nodes_needs_no_deep_recursion() {
    in_small_stack("deep-eq", || {
        // Two *independent* bottom-up builds: structurally equal, so
        // hash-consing makes them the same canonical allocations.
        let t1 = deep_tensor_chain();
        let t2 = deep_tensor_chain();
        assert!(lin_type_equal(&t1, &t2));
        // A genuinely different deep type still compares (the mismatch is
        // at the bottom, but every equal prefix level short-circuits via
        // pointer equality, so only O(depth-of-first-difference) — here
        // O(1) levels past the top — is structural).
        let t3 = LinType::tensor(chr("a"), deep_tensor_chain());
        assert!(!lin_type_equal(&t1, &t3));
    });
}

#[test]
fn substitution_on_ten_k_deep_terms_is_iterative() {
    in_small_stack("deep-subst", || {
        // x at the bottom of a 10k-deep pair chain.
        let mut t = LinTerm::var("x");
        for _ in 0..DEPTH {
            t = LinTerm::pair(t, LinTerm::UnitIntro);
        }
        let out = subst_lin(&t, "x", &LinTerm::var("y"));
        match &out {
            LinTerm::Pair(l, _) => assert!(matches!(**l, LinTerm::Pair(..))),
            other => panic!("expected a pair chain, got {other}"),
        }
        // The input and output are plain (un-interned) 10k-deep trees;
        // dropping them would run 10k-deep `Drop` glue, which is exactly
        // the recursion this test bans. Leak them instead — the test
        // process is about to exit anyway.
        std::mem::forget(t);
        std::mem::forget(out);
    });
}

#[test]
fn iterative_substitution_agrees_with_the_recursive_specification() {
    use lambek_core::eval::equality::subst_lin_recursive;
    let repl = LinTerm::pair(LinTerm::var("p"), LinTerm::var("q"));
    let cases = vec![
        LinTerm::var("x"),
        LinTerm::var("z"),
        LinTerm::pair(LinTerm::var("x"), LinTerm::var("x")),
        LinTerm::lam("x", chr("a"), LinTerm::var("x")), // shadowed
        LinTerm::lam("w", chr("a"), LinTerm::var("x")),
        LinTerm::let_pair(
            LinTerm::var("x"),
            "a",
            "b",
            LinTerm::pair(LinTerm::var("a"), LinTerm::var("b")),
        ),
        LinTerm::let_pair(
            LinTerm::var("s"),
            "x", // shadows in the body only
            "b",
            LinTerm::pair(LinTerm::var("x"), LinTerm::var("b")),
        ),
        LinTerm::Case {
            scrutinee: Arc::new(LinTerm::var("x")),
            branches: vec![
                ("x".to_owned(), LinTerm::var("x")), // shadowed branch
                (
                    "v".to_owned(),
                    LinTerm::pair(LinTerm::var("v"), LinTerm::var("x")),
                ),
            ],
        },
        LinTerm::Tuple(vec![
            LinTerm::var("x"),
            LinTerm::UnitIntro,
            LinTerm::app(LinTerm::var("x"), LinTerm::var("y")),
        ]),
        LinTerm::Ctor {
            data: "Star".to_owned(),
            ctor: "cons".to_owned(),
            nl_args: vec![],
            lin_args: vec![LinTerm::var("x"), LinTerm::var("rest")],
        },
        LinTerm::EqIntro(Arc::new(LinTerm::EqProj(Arc::new(LinTerm::var("x"))))),
    ];
    for t in cases {
        assert_eq!(
            subst_lin(&t, "x", &repl),
            subst_lin_recursive(&t, "x", &repl),
            "iterative and recursive substitution disagree on {t}"
        );
    }
}
