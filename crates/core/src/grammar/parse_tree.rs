//! Abstract parse trees and their validation.
//!
//! Definition 5.1 of the paper interprets a grammar `A` as a function from
//! strings to *sets of parses*. A [`ParseTree`] is an element of such a set:
//! a structured witness that a particular string belongs to the grammar.
//!
//! Two operations make "witness" precise:
//!
//! * [`ParseTree::flatten`] — the *yield*: the unique string a tree parses
//!   (every constructor determines how its children's strings concatenate);
//! * [`validate`] — checks that a tree is shape-correct for a grammar *and*
//!   yields the expected string, i.e. `t ∈ A(w)`.
//!
//! The central intrinsic-verification property of the paper — linear terms
//! are parse *transformers* that can never change the underlying string —
//! becomes the executable statement `flatten(f(t)) == flatten(t)`, which
//! [`crate::transform`] enforces and the test suite checks exhaustively.

use std::fmt;

use crate::alphabet::{GString, Symbol};
use crate::grammar::expr::{Grammar, GrammarExpr, MuSystem};
use std::sync::Arc;

/// A parse tree: one element of the parse set `A(w)` (Definition 5.1).
///
/// The constructors mirror the positive connectives of
/// [`GrammarExpr`] one-for-one.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum ParseTree {
    /// Parse of a literal `'c'`.
    Char(Symbol),
    /// The unique parse `()` of `I` at the empty string.
    Unit,
    /// Parse of `A ⊗ B`: parses of the two halves of the split.
    Pair(Box<ParseTree>, Box<ParseTree>),
    /// Parse of `⊕_i A_i`: a parse of summand `index`, tagged `σ index`.
    Inj {
        /// Which summand was taken.
        index: usize,
        /// Parse of that summand.
        tree: Box<ParseTree>,
    },
    /// Parse of a non-empty `&_i A_i`: one parse per component, all with
    /// the same yield.
    Tuple(Vec<ParseTree>),
    /// The unique parse of `⊤` at string `w`; `⊤` controls the whole
    /// string, so the tree must record it to have a well-defined yield.
    Top(GString),
    /// Parse of an inductive type `μF x`: `roll` applied to a parse of the
    /// one-step unfolding (Fig. 10).
    Roll(Box<ParseTree>),
}

impl ParseTree {
    /// Convenience constructor for [`ParseTree::Pair`].
    pub fn pair(l: ParseTree, r: ParseTree) -> ParseTree {
        ParseTree::Pair(Box::new(l), Box::new(r))
    }

    /// Convenience constructor for [`ParseTree::Inj`].
    pub fn inj(index: usize, tree: ParseTree) -> ParseTree {
        ParseTree::Inj {
            index,
            tree: Box::new(tree),
        }
    }

    /// Convenience constructor for [`ParseTree::Roll`].
    pub fn roll(tree: ParseTree) -> ParseTree {
        ParseTree::Roll(Box::new(tree))
    }

    /// The yield of the tree: the string it is a parse of.
    ///
    /// For a [`ParseTree::Tuple`] the yield of the first component is
    /// returned; [`validate`] guarantees all components agree.
    ///
    /// # Panics
    ///
    /// Panics on an empty `Tuple`, which is never produced by this crate
    /// (the empty conjunction is [`ParseTree::Top`]).
    pub fn flatten(&self) -> GString {
        let mut out = GString::new();
        self.flatten_into(&mut out);
        out
    }

    fn flatten_into(&self, out: &mut GString) {
        match self {
            ParseTree::Char(s) => out.push(*s),
            ParseTree::Unit => {}
            ParseTree::Pair(l, r) => {
                l.flatten_into(out);
                r.flatten_into(out);
            }
            ParseTree::Inj { tree, .. } => tree.flatten_into(out),
            ParseTree::Tuple(ts) => ts
                .first()
                .expect("empty Tuple has no well-defined yield; use Top")
                .flatten_into(out),
            ParseTree::Top(w) => out.extend(w.iter()),
            ParseTree::Roll(t) => t.flatten_into(out),
        }
    }

    /// Number of constructors in the tree (a size measure used by tests
    /// and benchmarks).
    pub fn size(&self) -> usize {
        match self {
            ParseTree::Char(_) | ParseTree::Unit | ParseTree::Top(_) => 1,
            ParseTree::Pair(l, r) => 1 + l.size() + r.size(),
            ParseTree::Inj { tree, .. } => 1 + tree.size(),
            ParseTree::Tuple(ts) => 1 + ts.iter().map(ParseTree::size).sum::<usize>(),
            ParseTree::Roll(t) => 1 + t.size(),
        }
    }
}

impl fmt::Display for ParseTree {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTree::Char(s) => write!(f, "'{}'", s.index()),
            ParseTree::Unit => write!(f, "()"),
            ParseTree::Pair(l, r) => write!(f, "({l}, {r})"),
            ParseTree::Inj { index, tree } => write!(f, "σ{index} {tree}"),
            ParseTree::Tuple(ts) => {
                write!(f, "⟨")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "⟩")
            }
            ParseTree::Top(w) => write!(f, "⊤{w}"),
            ParseTree::Roll(t) => write!(f, "roll {t}"),
        }
    }
}

/// Why a parse tree failed to validate against a grammar.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidateError {
    /// The tree's constructor does not match the grammar connective.
    ShapeMismatch {
        /// Display form of the grammar expected at this position.
        expected: String,
        /// Display form of the offending subtree.
        found: String,
    },
    /// An `Inj` index or `Tuple` arity is out of range for the grammar.
    IndexOutOfRange {
        /// The offending index or arity.
        index: usize,
        /// The number of summands/components available.
        arity: usize,
    },
    /// The tree's yield differs from the string it claims to parse.
    YieldMismatch {
        /// The expected string.
        expected: GString,
        /// The tree's actual yield.
        found: GString,
    },
    /// A recursion variable was encountered with no enclosing system
    /// (ill-scoped grammar).
    UnboundVar(usize),
}

impl fmt::Display for ValidateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ValidateError::ShapeMismatch { expected, found } => {
                write!(f, "tree {found} does not match grammar {expected}")
            }
            ValidateError::IndexOutOfRange { index, arity } => {
                write!(f, "index {index} out of range for arity {arity}")
            }
            ValidateError::YieldMismatch { expected, found } => {
                write!(f, "yield {found} differs from expected string {expected}")
            }
            ValidateError::UnboundVar(i) => write!(f, "unbound recursion variable X{i}"),
        }
    }
}

impl std::error::Error for ValidateError {}

/// Checks that `tree ∈ grammar(w)`: the tree is shape-correct for the
/// grammar and its yield is exactly `w`.
///
/// # Errors
///
/// Returns a [`ValidateError`] describing the first violation found.
///
/// # Examples
///
/// ```
/// use lambek_core::alphabet::Alphabet;
/// use lambek_core::grammar::expr::{alt, chr, tensor};
/// use lambek_core::grammar::parse_tree::{validate, ParseTree};
///
/// let sigma = Alphabet::abc();
/// let (a, b) = (sigma.symbol("a").unwrap(), sigma.symbol("b").unwrap());
/// // Fig. 1: "ab" is parsed by ('a' ⊗ 'b') ⊕ 'c' with the tree inl (a, b).
/// let g = alt(tensor(chr(a), chr(b)), chr(sigma.symbol("c").unwrap()));
/// let t = ParseTree::inj(0, ParseTree::pair(ParseTree::Char(a), ParseTree::Char(b)));
/// let w = sigma.parse_str("ab").unwrap();
/// assert!(validate(&t, &g, &w).is_ok());
/// ```
pub fn validate(tree: &ParseTree, grammar: &Grammar, w: &GString) -> Result<(), ValidateError> {
    let yielded = tree.flatten();
    if &yielded != w {
        return Err(ValidateError::YieldMismatch {
            expected: w.clone(),
            found: yielded,
        });
    }
    check_shape(tree, grammar, None)
}

/// Checks only the shape of a tree against a grammar, ignoring the yield.
///
/// Useful when the string is implied (e.g. for transformer codomain checks
/// where the yield is separately known to be preserved).
///
/// # Errors
///
/// Returns a [`ValidateError`] on the first structural mismatch.
pub fn check_shape(
    tree: &ParseTree,
    grammar: &Grammar,
    system: Option<&Arc<MuSystem>>,
) -> Result<(), ValidateError> {
    let mismatch = || ValidateError::ShapeMismatch {
        expected: format!("{grammar}"),
        found: format!("{tree}"),
    };
    match (&**grammar, tree) {
        (GrammarExpr::Char(c), ParseTree::Char(s)) if c == s => Ok(()),
        (GrammarExpr::Eps, ParseTree::Unit) => Ok(()),
        (GrammarExpr::Top, ParseTree::Top(_)) => Ok(()),
        (GrammarExpr::Bot, _) => Err(mismatch()),
        (GrammarExpr::Tensor(l, r), ParseTree::Pair(tl, tr)) => {
            check_shape(tl, l, system)?;
            check_shape(tr, r, system)
        }
        (GrammarExpr::Plus(gs), ParseTree::Inj { index, tree }) => {
            let g = gs.get(*index).ok_or(ValidateError::IndexOutOfRange {
                index: *index,
                arity: gs.len(),
            })?;
            check_shape(tree, g, system)
        }
        (GrammarExpr::With(gs), ParseTree::Tuple(ts)) => {
            if gs.len() != ts.len() {
                return Err(ValidateError::IndexOutOfRange {
                    index: ts.len(),
                    arity: gs.len(),
                });
            }
            let base = ts.first().map(ParseTree::flatten).unwrap_or_default();
            for (g, t) in gs.iter().zip(ts) {
                // All components of a & parse share one underlying string.
                let y = t.flatten();
                if y != base {
                    return Err(ValidateError::YieldMismatch {
                        expected: base,
                        found: y,
                    });
                }
                check_shape(t, g, system)?;
            }
            Ok(())
        }
        // The empty conjunction is ⊤, represented by With(vec![]) only if
        // built by hand; accept a Top tree for it.
        (GrammarExpr::With(gs), ParseTree::Top(_)) if gs.is_empty() => Ok(()),
        (GrammarExpr::Plus(_), _) if matches!(&**grammar, GrammarExpr::Plus(gs) if gs.is_empty()) => {
            Err(mismatch())
        }
        (GrammarExpr::Mu { system: sys, entry }, ParseTree::Roll(inner)) => {
            check_shape(inner, sys.def(*entry), Some(sys))
        }
        (GrammarExpr::Var(i), ParseTree::Roll(inner)) => match system {
            Some(sys) => {
                if *i >= sys.len() {
                    return Err(ValidateError::UnboundVar(*i));
                }
                check_shape(inner, sys.def(*i), Some(sys))
            }
            None => Err(ValidateError::UnboundVar(*i)),
        },
        _ => Err(mismatch()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::grammar::expr::{alt, and, chr, eps, star, tensor, top};

    fn setup() -> (Alphabet, Symbol, Symbol, Symbol) {
        let sigma = Alphabet::abc();
        let a = sigma.symbol("a").unwrap();
        let b = sigma.symbol("b").unwrap();
        let c = sigma.symbol("c").unwrap();
        (sigma, a, b, c)
    }

    #[test]
    fn fig1_ab_parse_validates() {
        let (sigma, a, b, c) = setup();
        let g = alt(tensor(chr(a), chr(b)), chr(c));
        let t = ParseTree::inj(0, ParseTree::pair(ParseTree::Char(a), ParseTree::Char(b)));
        let w = sigma.parse_str("ab").unwrap();
        assert_eq!(validate(&t, &g, &w), Ok(()));
    }

    #[test]
    fn wrong_string_fails_with_yield_mismatch() {
        let (sigma, a, b, c) = setup();
        let g = alt(tensor(chr(a), chr(b)), chr(c));
        let t = ParseTree::inj(0, ParseTree::pair(ParseTree::Char(a), ParseTree::Char(b)));
        let w = sigma.parse_str("ba").unwrap();
        assert!(matches!(
            validate(&t, &g, &w),
            Err(ValidateError::YieldMismatch { .. })
        ));
    }

    #[test]
    fn fig3_star_parse_validates() {
        let (sigma, a, b, c) = setup();
        // ('a'* ⊗ 'b') ⊕ 'c' parses "ab" via inl (cons a nil, b).
        let g = alt(tensor(star(chr(a)), chr(b)), chr(c));
        // star trees: roll (σ1 (a, roll (σ0 ())))  — cons a nil.
        let nil = ParseTree::roll(ParseTree::inj(0, ParseTree::Unit));
        let cons_a_nil =
            ParseTree::roll(ParseTree::inj(1, ParseTree::pair(ParseTree::Char(a), nil)));
        let t = ParseTree::inj(0, ParseTree::pair(cons_a_nil, ParseTree::Char(b)));
        let w = sigma.parse_str("ab").unwrap();
        assert_eq!(validate(&t, &g, &w), Ok(()));
    }

    #[test]
    fn shape_mismatch_detected() {
        let (sigma, a, b, _) = setup();
        let g = tensor(chr(a), chr(b));
        let t = ParseTree::Char(a);
        // Yield differs too, so validate reports yield first; check shape
        // directly to exercise the structural error.
        let err = check_shape(&t, &g, None).unwrap_err();
        assert!(matches!(err, ValidateError::ShapeMismatch { .. }));
        let _ = sigma;
    }

    #[test]
    fn with_components_must_share_yield() {
        let (sigma, a, b, _) = setup();
        let g = and(top(), top());
        let t = ParseTree::Tuple(vec![
            ParseTree::Top(sigma.parse_str("a").unwrap()),
            ParseTree::Top(sigma.parse_str("b").unwrap()),
        ]);
        assert!(matches!(
            check_shape(&t, &g, None),
            Err(ValidateError::YieldMismatch { .. })
        ));
        let _ = (a, b);
    }

    #[test]
    fn top_parse_records_string() {
        let (sigma, ..) = setup();
        let w = sigma.parse_str("abc").unwrap();
        let t = ParseTree::Top(w.clone());
        assert_eq!(t.flatten(), w);
        assert_eq!(validate(&t, &top(), &w), Ok(()));
    }

    #[test]
    fn bot_has_no_parses() {
        let t = ParseTree::Unit;
        assert!(check_shape(&t, &crate::grammar::expr::bot(), None).is_err());
    }

    #[test]
    fn inj_index_out_of_range() {
        let (_, a, ..) = setup();
        let g = alt(chr(a), eps());
        let t = ParseTree::inj(5, ParseTree::Unit);
        assert!(matches!(
            check_shape(&t, &g, None),
            Err(ValidateError::IndexOutOfRange { index: 5, arity: 2 })
        ));
    }

    #[test]
    fn size_counts_constructors() {
        let t = ParseTree::pair(ParseTree::Unit, ParseTree::inj(0, ParseTree::Unit));
        assert_eq!(t.size(), 4);
    }
}
