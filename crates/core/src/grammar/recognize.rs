//! Recognition: deciding string membership `w ∈ L(A)`.
//!
//! The denotation of a grammar (Definition 5.1) sends each string to its
//! set of parses; the *language* of the grammar is the set of strings with
//! a non-empty parse set. This module decides membership with a CYK-style
//! chart over the compiled node graph: entries `(node, i, j)` are computed
//! for spans of increasing width, with an inner Kleene iteration to settle
//! same-width dependencies (chains of `⊕`/`&`/`μ` definitions and tensors
//! with a nullable side). Booleans only grow, so iteration terminates.
//!
//! A memo-free top-down recognizer ([`recognizes_topdown`]) is provided as
//! the ablation baseline (DESIGN.md §6); it requires *guarded* recursion
//! (every `μ` cycle consumes input) and so only works on regex-like
//! grammars.

use crate::alphabet::GString;
use crate::grammar::compile::{CompiledGrammar, Node, NodeId};

/// A boolean chart over `(node, span)` entries.
#[derive(Debug)]
pub(crate) struct BoolChart {
    n: usize,
    entries: Vec<bool>,
}

impl BoolChart {
    fn new(num_nodes: usize, n: usize) -> BoolChart {
        BoolChart {
            n,
            entries: vec![false; num_nodes * (n + 1) * (n + 1)],
        }
    }

    #[inline]
    fn idx(&self, node: NodeId, i: usize, j: usize) -> usize {
        (node * (self.n + 1) + i) * (self.n + 1) + j
    }

    #[inline]
    pub(crate) fn get(&self, node: NodeId, i: usize, j: usize) -> bool {
        self.entries[self.idx(node, i, j)]
    }

    #[inline]
    fn set(&mut self, node: NodeId, i: usize, j: usize) -> bool {
        let idx = self.idx(node, i, j);
        let was = self.entries[idx];
        self.entries[idx] = true;
        !was
    }
}

/// Fills the full recognition chart for `w`.
pub(crate) fn fill_chart(cg: &CompiledGrammar, w: &GString) -> BoolChart {
    let n = w.len();
    let mut chart = BoolChart::new(cg.len(), n);
    for len in 0..=n {
        // Inner fixed point for same-width dependencies.
        loop {
            let mut changed = false;
            for i in 0..=(n - len) {
                let j = i + len;
                for (node_id, node) in cg.nodes().iter().enumerate() {
                    if chart.get(node_id, i, j) {
                        continue;
                    }
                    let holds = match node {
                        Node::Char(c) => len == 1 && w[i] == *c,
                        Node::Eps => len == 0,
                        Node::Bot => false,
                        Node::Top => true,
                        Node::Tensor(l, r) => {
                            (i..=j).any(|k| chart.get(*l, i, k) && chart.get(*r, k, j))
                        }
                        Node::Plus(cs) => cs.iter().any(|&c| chart.get(c, i, j)),
                        Node::With(cs) => cs.iter().all(|&c| chart.get(c, i, j)),
                        Node::Def { body, .. } => chart.get(*body, i, j),
                    };
                    if holds {
                        chart.set(node_id, i, j);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }
    }
    chart
}

impl CompiledGrammar {
    /// Decides whether `w` belongs to the language of this grammar.
    ///
    /// # Examples
    ///
    /// ```
    /// use lambek_core::alphabet::Alphabet;
    /// use lambek_core::grammar::compile::CompiledGrammar;
    /// use lambek_core::grammar::expr::{alt, chr, star, tensor};
    ///
    /// let s = Alphabet::abc();
    /// let (a, b, c) = (
    ///     s.symbol("a").unwrap(),
    ///     s.symbol("b").unwrap(),
    ///     s.symbol("c").unwrap(),
    /// );
    /// // ('a'* ⊗ 'b') ⊕ 'c'
    /// let g = alt(tensor(star(chr(a)), chr(b)), chr(c));
    /// let cg = CompiledGrammar::new(&g);
    /// assert!(cg.recognizes(&s.parse_str("aaab").unwrap()));
    /// assert!(cg.recognizes(&s.parse_str("b").unwrap()));
    /// assert!(cg.recognizes(&s.parse_str("c").unwrap()));
    /// assert!(!cg.recognizes(&s.parse_str("ba").unwrap()));
    /// assert!(!cg.recognizes(&s.parse_str("cc").unwrap()));
    /// ```
    pub fn recognizes(&self, w: &GString) -> bool {
        let chart = fill_chart(self, w);
        chart.get(self.root(), 0, w.len())
    }
}

/// Memo-free top-down recognizer (ablation baseline).
///
/// Explores splits recursively with no chart. Recursion through `μ`
/// definitions is bounded by a fuel budget proportional to the input
/// length; on *guarded* grammars (every recursive cycle consumes at least
/// one symbol — true of all regular expressions) this is exact, on
/// unguarded grammars it may answer `false` spuriously.
pub fn recognizes_topdown(cg: &CompiledGrammar, w: &GString) -> bool {
    fn go(
        cg: &CompiledGrammar,
        w: &GString,
        node: NodeId,
        i: usize,
        j: usize,
        fuel: usize,
    ) -> bool {
        if fuel == 0 {
            return false;
        }
        match cg.node(node) {
            Node::Char(c) => j == i + 1 && w[i] == *c,
            Node::Eps => i == j,
            Node::Bot => false,
            Node::Top => true,
            Node::Tensor(l, r) => {
                (i..=j).any(|k| go(cg, w, *l, i, k, fuel - 1) && go(cg, w, *r, k, j, fuel - 1))
            }
            Node::Plus(cs) => cs.iter().any(|&c| go(cg, w, c, i, j, fuel - 1)),
            Node::With(cs) => cs.iter().all(|&c| go(cg, w, c, i, j, fuel - 1)),
            Node::Def { body, .. } => go(cg, w, *body, i, j, fuel - 1),
        }
    }
    let fuel = 4 * (w.len() + 2) * cg.len();
    go(cg, w, cg.root(), 0, w.len(), fuel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::{Alphabet, Symbol};
    use crate::grammar::expr::{
        alt, and, bot, chr, eps, mu, star, string_literal, tensor, top, var, MuSystem,
    };

    fn setup() -> (Alphabet, Symbol, Symbol, Symbol) {
        let s = Alphabet::abc();
        (
            s.clone(),
            s.symbol("a").unwrap(),
            s.symbol("b").unwrap(),
            s.symbol("c").unwrap(),
        )
    }

    #[test]
    fn literals_and_unit() {
        let (s, a, ..) = setup();
        let cg = CompiledGrammar::new(&chr(a));
        assert!(cg.recognizes(&s.parse_str("a").unwrap()));
        assert!(!cg.recognizes(&s.parse_str("b").unwrap()));
        assert!(!cg.recognizes(&GString::default()));
        let cg = CompiledGrammar::new(&eps());
        assert!(cg.recognizes(&GString::default()));
        assert!(!cg.recognizes(&s.parse_str("a").unwrap()));
    }

    #[test]
    fn bot_rejects_everything_top_accepts_everything() {
        let (s, ..) = setup();
        let cb = CompiledGrammar::new(&bot());
        let ct = CompiledGrammar::new(&top());
        for w in ["", "a", "ab", "cab"] {
            let w = s.parse_str(w).unwrap();
            assert!(!cb.recognizes(&w));
            assert!(ct.recognizes(&w));
        }
    }

    #[test]
    fn fig3_language() {
        let (s, a, b, c) = setup();
        let g = alt(tensor(star(chr(a)), chr(b)), chr(c));
        let cg = CompiledGrammar::new(&g);
        for yes in ["b", "ab", "aab", "aaaab", "c"] {
            assert!(cg.recognizes(&s.parse_str(yes).unwrap()), "{yes}");
        }
        for no in ["", "a", "ba", "cc", "abc", "bb"] {
            assert!(!cg.recognizes(&s.parse_str(no).unwrap()), "{no}");
        }
    }

    #[test]
    fn intersection_via_with() {
        let (s, a, b, _) = setup();
        // a* b*  &  strings of even length... approximate: a*b* & (aa|bb|ab)*?
        // Keep it simple: L1 = a* ⊗ b*, L2 = 'a' ⊗ ⊤. Intersection: strings
        // in a*b* starting with a.
        let l1 = tensor(star(chr(a)), star(chr(b)));
        let l2 = tensor(chr(a), top());
        let cg = CompiledGrammar::new(&and(l1, l2));
        assert!(cg.recognizes(&s.parse_str("ab").unwrap()));
        assert!(cg.recognizes(&s.parse_str("aabb").unwrap()));
        assert!(!cg.recognizes(&s.parse_str("b").unwrap()));
        assert!(!cg.recognizes(&GString::default()));
        assert!(!cg.recognizes(&s.parse_str("ba").unwrap()));
    }

    #[test]
    fn left_recursive_mu_terminates_and_is_correct() {
        let (s, a, ..) = setup();
        // Left recursion: X = X 'a' | ε  — language a*.
        let sys = MuSystem::new(
            vec![alt(tensor(var(0), chr(a)), eps())],
            vec!["X".to_owned()],
        );
        let cg = CompiledGrammar::new(&mu(sys, 0));
        for k in 0..6 {
            let w = s.parse_str(&"a".repeat(k)).unwrap();
            assert!(cg.recognizes(&w), "a^{k}");
        }
        assert!(!cg.recognizes(&s.parse_str("ab").unwrap()));
    }

    #[test]
    fn anbn_via_mu() {
        let (s, a, b, _) = setup();
        // X = ε | 'a' X 'b'  — the canonical context-free language aⁿbⁿ.
        let sys = MuSystem::new(
            vec![alt(eps(), tensor(chr(a), tensor(var(0), chr(b))))],
            vec!["S".to_owned()],
        );
        let cg = CompiledGrammar::new(&mu(sys, 0));
        for n in 0..5 {
            let w = s
                .parse_str(&format!("{}{}", "a".repeat(n), "b".repeat(n)))
                .unwrap();
            assert!(cg.recognizes(&w), "a^{n} b^{n}");
        }
        for no in ["a", "b", "aab", "abb", "ba", "abab"] {
            assert!(!cg.recognizes(&s.parse_str(no).unwrap()), "{no}");
        }
    }

    #[test]
    fn string_literal_recognizes_exactly_itself() {
        let (s, ..) = setup();
        let w = s.parse_str("abca").unwrap();
        let cg = CompiledGrammar::new(&string_literal(&w));
        assert!(cg.recognizes(&w));
        assert!(!cg.recognizes(&s.parse_str("abc").unwrap()));
        assert!(!cg.recognizes(&s.parse_str("abcab").unwrap()));
    }

    #[test]
    fn topdown_agrees_on_guarded_grammars() {
        let (s, a, b, c) = setup();
        let g = alt(tensor(star(chr(a)), chr(b)), chr(c));
        let cg = CompiledGrammar::new(&g);
        for w in ["", "a", "b", "ab", "aab", "c", "ba", "abc"] {
            let w = s.parse_str(w).unwrap();
            assert_eq!(cg.recognizes(&w), recognizes_topdown(&cg, &w), "{w}");
        }
    }
}
