//! Compilation of grammar expressions to a recursive node graph.
//!
//! [`GrammarExpr`] trees contain `μ`
//! systems whose bodies refer back to their definitions. Recognition and
//! enumeration want a flat, possibly-cyclic graph instead: every distinct
//! subexpression becomes a [`Node`], recursion variables become edges back
//! to *definition nodes*, and charts are indexed by `(NodeId, span)`.
//!
//! The compiler also runs the two standard Kleene fixed-point analyses:
//!
//! * [`CompiledGrammar::nullable`] — whether `ε ∈ L(node)` (exact);
//! * [`CompiledGrammar::inhabited`] — whether `L(node) ≠ ∅`
//!   (exact for `⊕`/`⊗`/`μ`; an *over*-approximation at `&` nodes, where
//!   true emptiness of an intersection of context-free languages is
//!   undecidable).

use std::collections::HashMap;
use std::sync::Arc;

use crate::alphabet::Symbol;
use crate::grammar::expr::{Grammar, GrammarExpr, MuSystem};

/// Index of a node within a [`CompiledGrammar`].
pub type NodeId = usize;

/// One operator node of the compiled grammar graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Node {
    /// Literal `'c'`.
    Char(Symbol),
    /// Unit `I`.
    Eps,
    /// Empty grammar `0`.
    Bot,
    /// Full grammar `⊤`.
    Top,
    /// Tensor `A ⊗ B`.
    Tensor(NodeId, NodeId),
    /// Indexed disjunction.
    Plus(Vec<NodeId>),
    /// Indexed conjunction.
    With(Vec<NodeId>),
    /// A `μ` definition (nonterminal). A parse of this node is
    /// `roll` applied to a parse of `body`.
    Def {
        /// The node of the definition body.
        body: NodeId,
        /// Display name of the definition.
        name: String,
    },
}

/// A grammar compiled to a flat node graph, ready for chart algorithms.
#[derive(Debug, Clone)]
pub struct CompiledGrammar {
    nodes: Vec<Node>,
    root: NodeId,
    nullable: Vec<bool>,
    inhabited: Vec<bool>,
}

impl CompiledGrammar {
    /// Compiles a closed grammar expression.
    ///
    /// # Panics
    ///
    /// Panics if the grammar contains a free recursion variable.
    pub fn new(grammar: &Grammar) -> CompiledGrammar {
        let mut builder = Builder {
            nodes: Vec::new(),
            memo: HashMap::new(),
            systems: HashMap::new(),
        };
        let root = builder.compile(grammar, None);
        let nodes = builder.nodes;
        let nullable = fixpoint(&nodes, |node, get| match node {
            Node::Char(_) | Node::Bot => false,
            Node::Eps | Node::Top => true,
            Node::Tensor(l, r) => get(*l) && get(*r),
            Node::Plus(cs) => cs.iter().any(|&c| get(c)),
            Node::With(cs) => cs.iter().all(|&c| get(c)),
            Node::Def { body, .. } => get(*body),
        });
        let inhabited = fixpoint(&nodes, |node, get| match node {
            Node::Bot => false,
            Node::Char(_) | Node::Eps | Node::Top => true,
            Node::Tensor(l, r) => get(*l) && get(*r),
            Node::Plus(cs) => cs.iter().any(|&c| get(c)),
            // Over-approximation: a & is assumed inhabited as soon as all
            // components are; the components might still share no string.
            Node::With(cs) => cs.iter().all(|&c| get(c)),
            Node::Def { body, .. } => get(*body),
        });
        CompiledGrammar {
            nodes,
            root,
            nullable,
            inhabited,
        }
    }

    /// The root node (the compiled top-level grammar).
    pub fn root(&self) -> NodeId {
        self.root
    }

    /// All nodes, indexed by [`NodeId`].
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// The node with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id]
    }

    /// Number of nodes in the graph.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// `true` if the graph has no nodes (never; kept for API completeness).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Whether `ε ∈ L(id)`. Exact.
    pub fn nullable(&self, id: NodeId) -> bool {
        self.nullable[id]
    }

    /// Whether `L(id)` might be non-empty. Exact except at `&` nodes,
    /// where `true` may be reported for an empty intersection.
    pub fn inhabited(&self, id: NodeId) -> bool {
        self.inhabited[id]
    }
}

/// Least fixed point of a monotone boolean function over the node graph,
/// starting from all-`false`.
fn fixpoint(nodes: &[Node], f: impl Fn(&Node, &dyn Fn(NodeId) -> bool) -> bool) -> Vec<bool> {
    let mut values = vec![false; nodes.len()];
    loop {
        let mut changed = false;
        for (i, node) in nodes.iter().enumerate() {
            if values[i] {
                continue;
            }
            let get = |j: NodeId| values[j];
            if f(node, &get) {
                values[i] = true;
                changed = true;
            }
        }
        if !changed {
            return values;
        }
    }
}

struct Builder {
    nodes: Vec<Node>,
    /// (expr address, system address) -> node, to share repeated subtrees.
    memo: HashMap<(usize, usize), NodeId>,
    /// system address -> def node ids.
    systems: HashMap<usize, Vec<NodeId>>,
}

impl Builder {
    fn push(&mut self, node: Node) -> NodeId {
        self.nodes.push(node);
        self.nodes.len() - 1
    }

    fn compile(&mut self, g: &Grammar, system: Option<&Arc<MuSystem>>) -> NodeId {
        let sys_addr = system.map_or(0, |s| Arc::as_ptr(s) as usize);
        let key = (Arc::as_ptr(g) as usize, sys_addr);
        if let Some(&id) = self.memo.get(&key) {
            return id;
        }
        let id = match &**g {
            GrammarExpr::Char(c) => self.push(Node::Char(*c)),
            GrammarExpr::Eps => self.push(Node::Eps),
            GrammarExpr::Bot => self.push(Node::Bot),
            GrammarExpr::Top => self.push(Node::Top),
            GrammarExpr::Tensor(l, r) => {
                let l = self.compile(l, system);
                let r = self.compile(r, system);
                self.push(Node::Tensor(l, r))
            }
            GrammarExpr::Plus(gs) => {
                let cs: Vec<NodeId> = gs.iter().map(|g| self.compile(g, system)).collect();
                self.push(Node::Plus(cs))
            }
            GrammarExpr::With(gs) => {
                let cs: Vec<NodeId> = gs.iter().map(|g| self.compile(g, system)).collect();
                self.push(Node::With(cs))
            }
            GrammarExpr::Var(i) => {
                let sys = system.expect("free recursion variable in closed grammar");
                assert!(*i < sys.len(), "free recursion variable in closed grammar");
                self.system_defs(sys)[*i]
            }
            GrammarExpr::Mu { system: sys, entry } => self.system_defs(sys)[*entry],
        };
        self.memo.insert(key, id);
        id
    }

    /// Returns the def node ids of a system, compiling it on first use.
    fn system_defs(&mut self, sys: &Arc<MuSystem>) -> Vec<NodeId> {
        let addr = Arc::as_ptr(sys) as usize;
        if let Some(ids) = self.systems.get(&addr) {
            return ids.clone();
        }
        // Reserve Def nodes first so bodies can point back at them.
        let ids: Vec<NodeId> = (0..sys.len())
            .map(|i| {
                self.push(Node::Def {
                    body: usize::MAX, // patched below
                    name: sys.name(i).to_owned(),
                })
            })
            .collect();
        self.systems.insert(addr, ids.clone());
        for (i, def) in sys.iter() {
            let body = self.compile(def, Some(sys));
            match &mut self.nodes[ids[i]] {
                Node::Def { body: slot, .. } => *slot = body,
                _ => unreachable!("reserved node is a Def"),
            }
        }
        ids
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::grammar::expr::{alt, and, bot, chr, eps, star, tensor, top, var};

    fn abc() -> (Symbol, Symbol, Symbol) {
        let s = Alphabet::abc();
        (
            s.symbol("a").unwrap(),
            s.symbol("b").unwrap(),
            s.symbol("c").unwrap(),
        )
    }

    #[test]
    fn compile_shares_identical_subtrees() {
        let (a, ..) = abc();
        let ca = chr(a);
        let g = tensor(ca.clone(), ca);
        let cg = CompiledGrammar::new(&g);
        // root Tensor + one shared Char node.
        assert_eq!(cg.len(), 2);
    }

    #[test]
    fn star_compiles_to_cyclic_def() {
        let (a, ..) = abc();
        let cg = CompiledGrammar::new(&star(chr(a)));
        let root = cg.root();
        match cg.node(root) {
            Node::Def { body, .. } => {
                // Body is Plus(Eps, Tensor(Char, Def)) and the Def cycles back.
                match cg.node(*body) {
                    Node::Plus(cs) => {
                        assert_eq!(cs.len(), 2);
                        match cg.node(cs[1]) {
                            Node::Tensor(_, r) => assert_eq!(*r, root),
                            other => panic!("expected Tensor, got {other:?}"),
                        }
                    }
                    other => panic!("expected Plus, got {other:?}"),
                }
            }
            other => panic!("expected Def, got {other:?}"),
        }
    }

    #[test]
    fn nullable_analysis() {
        let (a, b, _) = abc();
        let cg = CompiledGrammar::new(&star(chr(a)));
        assert!(cg.nullable(cg.root()));
        let cg = CompiledGrammar::new(&tensor(star(chr(a)), chr(b)));
        assert!(!cg.nullable(cg.root()));
        let cg = CompiledGrammar::new(&and(eps(), star(chr(a))));
        assert!(cg.nullable(cg.root()));
        let cg = CompiledGrammar::new(&and(eps(), chr(a)));
        assert!(!cg.nullable(cg.root()));
    }

    #[test]
    fn inhabited_analysis() {
        let (a, ..) = abc();
        assert!(!CompiledGrammar::new(&bot()).inhabited(0));
        let cg = CompiledGrammar::new(&tensor(chr(a), bot()));
        assert!(!cg.inhabited(cg.root()));
        let cg = CompiledGrammar::new(&alt(bot(), chr(a)));
        assert!(cg.inhabited(cg.root()));
        // μX. 'a' ⊗ X has no finite parses: not inhabited.
        let sys = MuSystem::new(vec![tensor(chr(a), var(0))], vec!["loop".to_owned()]);
        let cg = CompiledGrammar::new(&crate::grammar::expr::mu(sys, 0));
        assert!(!cg.inhabited(cg.root()));
        assert!(CompiledGrammar::new(&top()).inhabited(0));
    }

    #[test]
    #[should_panic(expected = "free recursion variable")]
    fn free_var_panics() {
        CompiledGrammar::new(&var(0));
    }

    #[test]
    fn mutual_system_compiles_once() {
        let (a, b, _) = abc();
        // X0 = 'a' X1 | ε ; X1 = 'b' X0
        let sys = MuSystem::new(
            vec![alt(tensor(chr(a), var(1)), eps()), tensor(chr(b), var(0))],
            vec!["X0".to_owned(), "X1".to_owned()],
        );
        let g0 = crate::grammar::expr::mu(sys.clone(), 0);
        let cg = CompiledGrammar::new(&g0);
        let defs: Vec<_> = cg
            .nodes()
            .iter()
            .filter(|n| matches!(n, Node::Def { .. }))
            .collect();
        assert_eq!(defs.len(), 2);
        assert!(cg.nullable(cg.root()));
    }
}
