//! Proof-relevant parsing: enumerating and counting parse trees.
//!
//! Where [`recognize`](crate::grammar::recognize) answers *whether* `A(w)`
//! is inhabited, this module materializes the set `A(w)` itself
//! (Definition 5.1) — bounded, because grammars with unguarded recursion
//! (e.g. `μX. X ⊕ I`) have infinitely many parses of a single string.
//! Every enumeration carries a *cap*; results report whether it was hit.
//!
//! Parse counts are the workhorse of the strong-equivalence experiments:
//! two strongly equivalent grammars have isomorphic parse sets (Definition
//! 4.1), hence equal counts on every string, and an unambiguous grammar
//! (Definition 4.2) has at most one parse of any string.

use std::collections::HashSet;

use crate::alphabet::GString;
use crate::grammar::compile::{CompiledGrammar, Node, NodeId};
use crate::grammar::parse_tree::ParseTree;

/// Result of counting parses with a cap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ambiguity {
    /// Number of distinct parses found, clamped to the cap.
    pub count: u64,
    /// `true` if the cap was reached anywhere relevant — the true count
    /// may exceed `count` (and may be infinite).
    pub truncated: bool,
}

impl Ambiguity {
    /// Exactly zero parses (and the count is exact).
    pub fn is_empty(self) -> bool {
        self.count == 0 && !self.truncated
    }

    /// Exactly one parse (and the count is exact).
    pub fn is_unambiguous_parse(self) -> bool {
        self.count == 1 && !self.truncated
    }
}

/// A bounded set of parse trees for one string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseForest {
    /// The distinct parse trees found, at most `cap` of them.
    pub trees: Vec<ParseTree>,
    /// `true` if the cap was reached; more parses may exist.
    pub truncated: bool,
}

impl ParseForest {
    /// `true` when no parse exists (exactly — the cap was not hit).
    pub fn is_empty(&self) -> bool {
        self.trees.is_empty() && !self.truncated
    }
}

#[derive(Debug, Clone, Default)]
struct TreeSet {
    trees: Vec<ParseTree>,
    seen: HashSet<ParseTree>,
    capped: bool,
    /// `true` if this entry, or any entry it depends on, hit the cap —
    /// i.e. the set may be incomplete.
    unreliable: bool,
}

impl TreeSet {
    /// Inserts a tree, respecting the cap. Returns `true` if it was new.
    fn insert(&mut self, t: ParseTree, cap: usize) -> bool {
        if self.trees.len() >= cap {
            self.capped = true;
            return false;
        }
        if self.seen.insert(t.clone()) {
            self.trees.push(t);
            true
        } else {
            false
        }
    }
}

struct TreeChart {
    n: usize,
    cap: usize,
    entries: Vec<TreeSet>,
}

impl TreeChart {
    fn idx(&self, node: NodeId, i: usize, j: usize) -> usize {
        (node * (self.n + 1) + i) * (self.n + 1) + j
    }

    fn get(&self, node: NodeId, i: usize, j: usize) -> &TreeSet {
        &self.entries[self.idx(node, i, j)]
    }
}

impl CompiledGrammar {
    /// Enumerates up to `cap` distinct parse trees of `w`.
    ///
    /// Every returned tree `t` satisfies `t.flatten() == w` and validates
    /// against the source grammar — this is checked by the test suite, not
    /// re-checked here.
    ///
    /// # Examples
    ///
    /// ```
    /// use lambek_core::alphabet::Alphabet;
    /// use lambek_core::grammar::compile::CompiledGrammar;
    /// use lambek_core::grammar::expr::{alt, chr};
    ///
    /// let s = Alphabet::abc();
    /// let a = s.symbol("a").unwrap();
    /// // 'a' ⊕ 'a' is ambiguous: two parses of "a" (inl and inr).
    /// let cg = CompiledGrammar::new(&alt(chr(a), chr(a)));
    /// let forest = cg.parses(&s.parse_str("a").unwrap(), 16);
    /// assert_eq!(forest.trees.len(), 2);
    /// assert!(!forest.truncated);
    /// ```
    pub fn parses(&self, w: &GString, cap: usize) -> ParseForest {
        let chart = self.fill_tree_chart(w, cap);
        let root = chart.get(self.root(), 0, w.len());
        ParseForest {
            trees: root.trees.clone(),
            truncated: root.capped || root.unreliable,
        }
    }

    /// Counts parses of `w`, clamped to `cap`.
    ///
    /// Strong equivalence (Definition 4.1) implies equal counts on every
    /// string; unambiguity (Definition 4.2) means every count is ≤ 1.
    pub fn count_parses(&self, w: &GString, cap: usize) -> Ambiguity {
        let forest = self.parses(w, cap);
        Ambiguity {
            count: forest.trees.len() as u64,
            truncated: forest.truncated,
        }
    }

    fn fill_tree_chart(&self, w: &GString, cap: usize) -> TreeChart {
        let n = w.len();
        let mut chart = TreeChart {
            n,
            cap,
            entries: vec![TreeSet::default(); self.len() * (n + 1) * (n + 1)],
        };
        for len in 0..=n {
            loop {
                let mut changed = false;
                for i in 0..=(n - len) {
                    let j = i + len;
                    for (node_id, node) in self.nodes().iter().enumerate() {
                        let fresh = compute_entry(&chart, node, w, i, j);
                        let tainted = depends_on_unreliable(&chart, node, i, j);
                        let idx = chart.idx(node_id, i, j);
                        for t in fresh {
                            if chart.entries[idx].insert(t, cap) {
                                changed = true;
                            }
                        }
                        if tainted && !chart.entries[idx].unreliable {
                            chart.entries[idx].unreliable = true;
                            changed = true;
                        }
                    }
                }
                if !changed {
                    break;
                }
            }
        }
        chart
    }
}

/// Whether any chart entry this `(node, span)` entry draws trees from is
/// capped or itself unreliable — the propagation of truncation. An edge
/// is skipped when it provably contributes nothing: for `⊗`, a split
/// whose other side is empty *and* reliable produces no pairs; for `&`, a
/// component that is empty and reliable makes the whole product reliably
/// empty.
fn depends_on_unreliable(chart: &TreeChart, node: &Node, i: usize, j: usize) -> bool {
    let bad = |n: NodeId, a: usize, b: usize| {
        let e = chart.get(n, a, b);
        e.capped || e.unreliable
    };
    // "Could still produce trees": nonempty now, or possibly incomplete.
    let live = |n: NodeId, a: usize, b: usize| {
        let e = chart.get(n, a, b);
        !e.trees.is_empty() || e.capped || e.unreliable
    };
    match node {
        Node::Char(_) | Node::Eps | Node::Bot | Node::Top => false,
        Node::Tensor(l, r) => {
            (i..=j).any(|k| (bad(*l, i, k) && live(*r, k, j)) || (bad(*r, k, j) && live(*l, i, k)))
        }
        Node::Plus(cs) => cs.iter().any(|&c| bad(c, i, j)),
        Node::With(cs) => {
            let reliably_empty = |n: NodeId| {
                let e = chart.get(n, i, j);
                e.trees.is_empty() && !e.capped && !e.unreliable
            };
            if cs.iter().any(|&c| reliably_empty(c)) {
                false
            } else {
                cs.iter().any(|&c| bad(c, i, j))
            }
        }
        Node::Def { body, .. } => bad(*body, i, j),
    }
}

/// Computes the parse set of one `(node, span)` entry from current chart
/// contents. Monotone in the chart, so the enclosing iteration converges.
fn compute_entry(
    chart: &TreeChart,
    node: &Node,
    w: &GString,
    i: usize,
    j: usize,
) -> Vec<ParseTree> {
    let len = j - i;
    match node {
        Node::Char(c) => {
            if len == 1 && w[i] == *c {
                vec![ParseTree::Char(*c)]
            } else {
                Vec::new()
            }
        }
        Node::Eps => {
            if len == 0 {
                vec![ParseTree::Unit]
            } else {
                Vec::new()
            }
        }
        Node::Bot => Vec::new(),
        Node::Top => vec![ParseTree::Top(w.substring(i, j))],
        Node::Tensor(l, r) => {
            let mut out = Vec::new();
            for k in i..=j {
                let ls = chart.get(*l, i, k);
                let rs = chart.get(*r, k, j);
                for lt in &ls.trees {
                    for rt in &rs.trees {
                        out.push(ParseTree::pair(lt.clone(), rt.clone()));
                        if out.len() > chart.cap {
                            return out;
                        }
                    }
                }
            }
            out
        }
        Node::Plus(cs) => {
            let mut out = Vec::new();
            for (idx, &c) in cs.iter().enumerate() {
                for t in &chart.get(c, i, j).trees {
                    out.push(ParseTree::inj(idx, t.clone()));
                }
            }
            out
        }
        Node::With(cs) => {
            if cs.is_empty() {
                return vec![ParseTree::Top(w.substring(i, j))];
            }
            // Cross product of component parse sets over the same span.
            let mut tuples: Vec<Vec<ParseTree>> = vec![Vec::new()];
            for &c in cs {
                let comp = &chart.get(c, i, j).trees;
                if comp.is_empty() {
                    return Vec::new();
                }
                let mut next = Vec::new();
                for partial in &tuples {
                    for t in comp {
                        let mut p = partial.clone();
                        p.push(t.clone());
                        next.push(p);
                        if next.len() > chart.cap {
                            break;
                        }
                    }
                }
                tuples = next;
            }
            tuples.into_iter().map(ParseTree::Tuple).collect()
        }
        Node::Def { body, .. } => chart
            .get(*body, i, j)
            .trees
            .iter()
            .map(|t| ParseTree::roll(t.clone()))
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::{Alphabet, Symbol};
    use crate::grammar::expr::{alt, and, chr, eps, mu, star, tensor, top, var, MuSystem};
    use crate::grammar::parse_tree::validate;

    fn setup() -> (Alphabet, Symbol, Symbol, Symbol) {
        let s = Alphabet::abc();
        (
            s.clone(),
            s.symbol("a").unwrap(),
            s.symbol("b").unwrap(),
            s.symbol("c").unwrap(),
        )
    }

    #[test]
    fn unambiguous_literal() {
        let (s, a, ..) = setup();
        let cg = CompiledGrammar::new(&chr(a));
        let amb = cg.count_parses(&s.parse_str("a").unwrap(), 8);
        assert!(amb.is_unambiguous_parse());
        assert!(cg.count_parses(&s.parse_str("b").unwrap(), 8).is_empty());
    }

    #[test]
    fn ambiguous_sum_has_two_parses() {
        let (s, a, ..) = setup();
        let cg = CompiledGrammar::new(&alt(chr(a), chr(a)));
        let forest = cg.parses(&s.parse_str("a").unwrap(), 8);
        assert_eq!(forest.trees.len(), 2);
        let tags: Vec<usize> = forest
            .trees
            .iter()
            .map(|t| match t {
                ParseTree::Inj { index, .. } => *index,
                other => panic!("expected Inj, got {other}"),
            })
            .collect();
        assert!(tags.contains(&0) && tags.contains(&1));
    }

    #[test]
    fn tensor_splits_multiply() {
        let (s, a, ..) = setup();
        // a* ⊗ a*: "aa" splits 3 ways (0+2, 1+1, 2+0).
        let cg = CompiledGrammar::new(&tensor(star(chr(a)), star(chr(a))));
        let forest = cg.parses(&s.parse_str("aa").unwrap(), 32);
        assert_eq!(forest.trees.len(), 3);
        assert!(!forest.truncated);
    }

    #[test]
    fn all_enumerated_trees_validate() {
        let (s, a, b, c) = setup();
        let g = alt(tensor(star(chr(a)), chr(b)), chr(c));
        let cg = CompiledGrammar::new(&g);
        for w in ["b", "ab", "aab", "c"] {
            let w = s.parse_str(w).unwrap();
            let forest = cg.parses(&w, 32);
            assert!(!forest.trees.is_empty(), "{w}");
            for t in &forest.trees {
                validate(t, &g, &w).unwrap();
            }
        }
    }

    #[test]
    fn infinitely_ambiguous_grammar_truncates() {
        let (..) = setup();
        // μX. X ⊕ I: infinitely many parses of ε.
        let sys = MuSystem::new(vec![alt(var(0), eps())], vec!["X".to_owned()]);
        let cg = CompiledGrammar::new(&mu(sys, 0));
        let forest = cg.parses(&GString::default(), 10);
        assert_eq!(forest.trees.len(), 10);
        assert!(forest.truncated);
    }

    #[test]
    fn top_has_exactly_one_parse_per_string() {
        let (s, ..) = setup();
        let cg = CompiledGrammar::new(&top());
        for w in ["", "a", "ab", "abc", "cba"] {
            let amb = cg.count_parses(&s.parse_str(w).unwrap(), 8);
            assert!(amb.is_unambiguous_parse(), "{w}");
        }
    }

    #[test]
    fn with_takes_cross_product() {
        let (s, a, ..) = setup();
        // ('a' ⊕ 'a') & ('a' ⊕ 'a'): 2 × 2 = 4 parses of "a".
        let amb2 = alt(chr(a), chr(a));
        let cg = CompiledGrammar::new(&and(amb2.clone(), amb2));
        let forest = cg.parses(&s.parse_str("a").unwrap(), 32);
        assert_eq!(forest.trees.len(), 4);
    }

    #[test]
    fn star_parse_counts_catalan_free() {
        let (s, a, ..) = setup();
        // 'a'* is unambiguous: exactly one parse of aⁿ for every n.
        let cg = CompiledGrammar::new(&star(chr(a)));
        for n in 0..6 {
            let w = s.parse_str(&"a".repeat(n)).unwrap();
            assert!(cg.count_parses(&w, 8).is_unambiguous_parse(), "a^{n}");
        }
    }

    #[test]
    fn counts_match_forest_len() {
        let (s, a, b, _) = setup();
        let g = tensor(star(alt(chr(a), chr(b))), star(chr(a)));
        let cg = CompiledGrammar::new(&g);
        for w in ["", "a", "aa", "ab", "aba", "baa"] {
            let w = s.parse_str(w).unwrap();
            let forest = cg.parses(&w, 64);
            let amb = cg.count_parses(&w, 64);
            assert_eq!(forest.trees.len() as u64, amb.count, "{w}");
        }
    }
}
