//! Formal grammars: the denotational layer of Dependent Lambek Calculus.
//!
//! A grammar is a function from strings to sets of parse trees
//! (Definition 5.1). This module provides:
//!
//! * [`expr`] — deep linear-type expressions (the positive connectives);
//! * [`parse_tree`] — abstract parses, yields and validation;
//! * [`compile`] — flattening to a node graph with nullability analysis;
//! * [`recognize`] — deciding membership `w ∈ L(A)`;
//! * [`enumerate`] — materializing/counting the parse set `A(w)`;
//! * [`string_type`] — the `Char` and `String` grammars and the canonical
//!   string parse (§3.4, Axiom 3.4);
//! * [`distributivity`] — executable forms of Axioms 3.1 and 3.3 and the
//!   start-character decomposition used by the lookahead parser.

pub mod compile;
pub mod distributivity;
pub mod enumerate;
pub mod expr;
pub mod parse_tree;
pub mod recognize;
pub mod string_type;
