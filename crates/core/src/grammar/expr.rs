//! Deep linear-type expressions: the grammar fragment of LambekD.
//!
//! A [`Grammar`] is the denotational-layer representation of a linear type
//! (Fig. 8 of the paper), restricted to the *positive* connectives whose
//! parse sets are enumerable: characters, the unit `I`, the empty grammar
//! `0`, the full grammar `⊤`, tensor `⊗`, finite indexed disjunction `⊕`,
//! finite indexed conjunction `&`, and indexed inductive types `μ`
//! (systems of mutually recursive definitions, §3.3).
//!
//! The function types `⊸` / `⟜` are *not* grammar expressions here: their
//! parses are functions over all strings and cannot be enumerated. They
//! live at the term level as [`crate::transform::Transformer`]s, exactly as
//! in the paper where parsers are resource-free terms `↑(A ⊸ B)`
//! (Definition 5.2). The equalizer type is likewise handled at the theory
//! level ([`crate::theory`]) as a filtered parse set.
//!
//! Infinite index sets (e.g. the ℕ-indexed counter automaton of Fig. 14)
//! are represented by *length-truncated* instantiations; see DESIGN.md §2.

use std::fmt;
use std::sync::Arc;

use crate::alphabet::Symbol;

/// Shared reference to a grammar expression.
///
/// Grammars are immutable trees with sharing; cloning a `Grammar` is O(1).
pub type Grammar = Arc<GrammarExpr>;

/// A system of mutually recursive grammar definitions: the denotational
/// counterpart of an indexed inductive linear type `μF` (Fig. 10).
///
/// Definition bodies refer to each other through [`GrammarExpr::Var`];
/// `Var(i)` inside any body of this system denotes definition `i` of the
/// *same* system. Systems are closed: a `Var` never escapes to an enclosing
/// system (nested `μ`s are independent closed systems — sufficient for every
/// construction in the paper, see DESIGN.md §7).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MuSystem {
    defs: Vec<Grammar>,
    names: Vec<String>,
}

impl MuSystem {
    /// Creates a system from definition bodies, with debug names used only
    /// for display (`names[i]` labels definition `i`).
    ///
    /// # Panics
    ///
    /// Panics if `defs` and `names` differ in length, if the system is
    /// empty, or if any body contains a `Var(j)` with `j >= defs.len()`.
    pub fn new(defs: Vec<Grammar>, names: Vec<String>) -> Arc<MuSystem> {
        assert_eq!(defs.len(), names.len(), "one name per definition");
        assert!(
            !defs.is_empty(),
            "mu system must have at least one definition"
        );
        let bound = defs.len();
        for (i, d) in defs.iter().enumerate() {
            assert!(
                max_free_var(d).is_none_or(|v| v < bound),
                "definition {i} references an out-of-range Var"
            );
        }
        Arc::new(MuSystem { defs, names })
    }

    /// Number of mutually recursive definitions.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// `true` if the system has no definitions (never, by construction).
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// The body of definition `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn def(&self, i: usize) -> &Grammar {
        &self.defs[i]
    }

    /// The display name of definition `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn name(&self, i: usize) -> &str {
        &self.names[i]
    }

    /// Iterates over `(index, body)` pairs.
    pub fn iter(&self) -> impl ExactSizeIterator<Item = (usize, &Grammar)> {
        self.defs.iter().enumerate()
    }
}

fn max_free_var(g: &GrammarExpr) -> Option<usize> {
    match g {
        GrammarExpr::Var(i) => Some(*i),
        GrammarExpr::Tensor(l, r) => max_free_var(l).max(max_free_var(r)),
        GrammarExpr::Plus(gs) | GrammarExpr::With(gs) => {
            gs.iter().filter_map(|g| max_free_var(g)).max()
        }
        // A nested Mu is closed: its Vars refer to its own system.
        GrammarExpr::Mu { .. }
        | GrammarExpr::Char(_)
        | GrammarExpr::Eps
        | GrammarExpr::Bot
        | GrammarExpr::Top => None,
    }
}

/// A linear type in the enumerable (grammar) fragment of LambekD.
///
/// Use the constructor helpers ([`chr`], [`eps`], [`tensor`], [`plus`],
/// [`with`], [`star`], [`mu`], …) rather than building variants by hand;
/// they normalize trivial cases and enforce the `Var`-scoping invariant.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GrammarExpr {
    /// Literal `'c'`: exactly one parse, of the one-symbol string `c`.
    Char(Symbol),
    /// Unit `I`: exactly one parse, of the empty string.
    Eps,
    /// Empty grammar `0` (the nullary `⊕`): no parses of any string.
    Bot,
    /// Full grammar `⊤` (the nullary `&`): exactly one parse of every string.
    Top,
    /// Tensor `A ⊗ B`: a split of the string with a parse of each side.
    Tensor(Grammar, Grammar),
    /// Finite indexed disjunction `⊕_{i<n} A_i`; a parse is a tagged parse
    /// of one summand. Binary `⊕` is the two-element case.
    Plus(Vec<Grammar>),
    /// Finite indexed conjunction `&_{i<n} A_i`; a parse is one parse of
    /// *each* component, all over the same string.
    With(Vec<Grammar>),
    /// Recursion variable bound by the enclosing [`MuSystem`].
    Var(usize),
    /// Entry `entry` of a system of mutually recursive inductive
    /// definitions (`μF entry`, §3.3).
    Mu {
        /// The system of definitions this entry selects from.
        system: Arc<MuSystem>,
        /// Which definition of the system this grammar denotes.
        entry: usize,
    },
}

/// The literal grammar `'c'`.
///
/// All constructor helpers in this module hash-cons through
/// [`crate::intern`]: structurally equal grammars built independently
/// are the *same* `Arc`, so downstream `Arc`-address memo tables (the
/// [`CompiledGrammar`](crate::grammar::compile::CompiledGrammar)
/// builder, engine caches) share work across equal subtrees, and
/// equality checks hit the pointer fast path.
pub fn chr(sym: Symbol) -> Grammar {
    crate::intern::canon_grammar(&GrammarExpr::Char(sym))
}

/// The unit grammar `I` (empty string only).
pub fn eps() -> Grammar {
    crate::intern::canon_grammar(&GrammarExpr::Eps)
}

/// The empty grammar `0`.
pub fn bot() -> Grammar {
    crate::intern::canon_grammar(&GrammarExpr::Bot)
}

/// The full grammar `⊤`.
pub fn top() -> Grammar {
    crate::intern::canon_grammar(&GrammarExpr::Top)
}

/// Tensor product `a ⊗ b`.
pub fn tensor(a: Grammar, b: Grammar) -> Grammar {
    crate::intern::canon_grammar(&GrammarExpr::Tensor(a, b))
}

/// Right-nested tensor of a sequence: `seq([a, b, c]) = a ⊗ (b ⊗ c)`;
/// the empty sequence is `I`.
pub fn seq<I: IntoIterator<Item = Grammar>>(gs: I) -> Grammar
where
    I::IntoIter: DoubleEndedIterator,
{
    let mut iter = gs.into_iter().rev();
    match iter.next() {
        None => eps(),
        Some(last) => iter.fold(last, |acc, g| tensor(g, acc)),
    }
}

/// Indexed disjunction `⊕_i gs[i]`. `plus(vec![])` is `0`.
pub fn plus(gs: Vec<Grammar>) -> Grammar {
    crate::intern::canon_grammar(&GrammarExpr::Plus(gs))
}

/// Binary disjunction `a ⊕ b`.
pub fn alt(a: Grammar, b: Grammar) -> Grammar {
    plus(vec![a, b])
}

/// Indexed conjunction `&_i gs[i]`. `with(vec![])` is `⊤`.
pub fn with(gs: Vec<Grammar>) -> Grammar {
    crate::intern::canon_grammar(&GrammarExpr::With(gs))
}

/// Binary conjunction `a & b`.
pub fn and(a: Grammar, b: Grammar) -> Grammar {
    with(vec![a, b])
}

/// Recursion variable `Var(i)`; only meaningful inside a [`MuSystem`] body.
pub fn var(i: usize) -> Grammar {
    crate::intern::canon_grammar(&GrammarExpr::Var(i))
}

/// Entry `entry` of the inductive system `system`.
///
/// # Panics
///
/// Panics if `entry` is out of range for the system.
pub fn mu(system: Arc<MuSystem>, entry: usize) -> Grammar {
    assert!(entry < system.len(), "mu entry out of range");
    crate::intern::canon_grammar(&GrammarExpr::Mu { system, entry })
}

/// Kleene star `A*` as the inductive type of Fig. 2:
/// `μX. I ⊕ (A ⊗ X)` — `nil` is injection 0, `cons` is injection 1.
pub fn star(a: Grammar) -> Grammar {
    let body = alt(eps(), tensor(a, var(0)));
    mu(MuSystem::new(vec![body], vec!["star".to_owned()]), 0)
}

/// One-or-more repetitions `A⁺ = A ⊗ A*`.
pub fn plus_many(a: Grammar) -> Grammar {
    tensor(a.clone(), star(a))
}

/// `A?` — zero or one: `I ⊕ A`.
pub fn opt(a: Grammar) -> Grammar {
    alt(eps(), a)
}

/// The literal grammar `⌈w⌉` of a whole string: `'w₀' ⊗ ('w₁' ⊗ (… ⊗ I))`
/// (§4.3). `⌈ε⌉ = I`.
pub fn string_literal(w: &crate::alphabet::GString) -> Grammar {
    seq(w.iter().map(chr))
}

impl GrammarExpr {
    /// `true` if this expression contains no free recursion variables
    /// (i.e. can be used as a standalone grammar).
    pub fn is_closed(&self) -> bool {
        max_free_var(self).is_none()
    }
}

/// Substitutes grammars for the free recursion variables of `g`:
/// `Var(i)` becomes `subs[i]`. Nested `μ` systems are closed and left
/// untouched. This is the action `el(F)(A)` of a strictly positive functor
/// on linear types (Fig. 10): the one-step unfolding of a `μ` body.
///
/// # Panics
///
/// Panics if `g` contains a `Var(i)` with `i >= subs.len()`.
pub fn subst_vars(g: &Grammar, subs: &[Grammar]) -> Grammar {
    match &**g {
        GrammarExpr::Var(i) => subs[*i].clone(),
        GrammarExpr::Tensor(l, r) => tensor(subst_vars(l, subs), subst_vars(r, subs)),
        GrammarExpr::Plus(gs) => plus(gs.iter().map(|g| subst_vars(g, subs)).collect()),
        GrammarExpr::With(gs) => with(gs.iter().map(|g| subst_vars(g, subs)).collect()),
        GrammarExpr::Char(_)
        | GrammarExpr::Eps
        | GrammarExpr::Bot
        | GrammarExpr::Top
        | GrammarExpr::Mu { .. } => g.clone(),
    }
}

/// The one-step unfolding `el(F_entry)(μF)` of entry `entry` of `system`:
/// the definition body with every recursion variable replaced by the
/// corresponding `μ` entry. `roll : el(F)(μF) ⊸ μF` and its inverse
/// mediate between a `μ` type and its unfolding.
pub fn unfolding(system: &Arc<MuSystem>, entry: usize) -> Grammar {
    let mus: Vec<Grammar> = (0..system.len()).map(|i| mu(system.clone(), i)).collect();
    subst_vars(system.def(entry), &mus)
}

impl fmt::Display for GrammarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GrammarExpr::Char(s) => write!(f, "'{}'", s.index()),
            GrammarExpr::Eps => write!(f, "I"),
            GrammarExpr::Bot => write!(f, "0"),
            GrammarExpr::Top => write!(f, "⊤"),
            GrammarExpr::Tensor(l, r) => write!(f, "({l} ⊗ {r})"),
            GrammarExpr::Plus(gs) => {
                if gs.is_empty() {
                    write!(f, "0")
                } else {
                    write!(f, "(")?;
                    for (i, g) in gs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " ⊕ ")?;
                        }
                        write!(f, "{g}")?;
                    }
                    write!(f, ")")
                }
            }
            GrammarExpr::With(gs) => {
                if gs.is_empty() {
                    write!(f, "⊤")
                } else {
                    write!(f, "(")?;
                    for (i, g) in gs.iter().enumerate() {
                        if i > 0 {
                            write!(f, " & ")?;
                        }
                        write!(f, "{g}")?;
                    }
                    write!(f, ")")
                }
            }
            GrammarExpr::Var(i) => write!(f, "X{i}"),
            GrammarExpr::Mu { system, entry } => {
                write!(f, "μ{}", system.name(*entry))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn sym(name: &str) -> Symbol {
        Alphabet::abc().symbol(name).unwrap()
    }

    #[test]
    fn constructors_build_expected_shapes() {
        let a = chr(sym("a"));
        let b = chr(sym("b"));
        let g = alt(tensor(a.clone(), b.clone()), chr(sym("c")));
        match &*g {
            GrammarExpr::Plus(gs) => assert_eq!(gs.len(), 2),
            other => panic!("expected Plus, got {other:?}"),
        }
        assert!(g.is_closed());
    }

    #[test]
    fn star_is_mu_of_eps_or_cons() {
        let g = star(chr(sym("a")));
        match &*g {
            GrammarExpr::Mu { system, entry } => {
                assert_eq!(*entry, 0);
                assert_eq!(system.len(), 1);
                match &**system.def(0) {
                    GrammarExpr::Plus(gs) => {
                        assert_eq!(**gs.first().unwrap(), GrammarExpr::Eps);
                    }
                    other => panic!("expected Plus body, got {other:?}"),
                }
            }
            other => panic!("expected Mu, got {other:?}"),
        }
    }

    #[test]
    fn seq_right_nests_and_empty_is_eps() {
        let a = chr(sym("a"));
        let g = seq([a.clone(), a.clone(), a.clone()]);
        match &*g {
            GrammarExpr::Tensor(_, r) => {
                assert!(matches!(**r, GrammarExpr::Tensor(_, _)));
            }
            other => panic!("expected Tensor, got {other:?}"),
        }
        assert_eq!(*seq([]), GrammarExpr::Eps);
    }

    #[test]
    fn string_literal_of_epsilon_is_eps() {
        let w = crate::alphabet::GString::new();
        assert_eq!(*string_literal(&w), GrammarExpr::Eps);
    }

    #[test]
    #[should_panic(expected = "out-of-range Var")]
    fn mu_system_rejects_escaping_vars() {
        MuSystem::new(vec![var(3)], vec!["bad".to_owned()]);
    }

    #[test]
    fn nested_mu_is_closed() {
        // A system whose body mentions a nested, closed star.
        let inner = star(chr(sym("a")));
        let sys = MuSystem::new(
            vec![alt(eps(), tensor(inner, var(0)))],
            vec!["outer".to_owned()],
        );
        assert!(mu(sys, 0).is_closed());
    }

    #[test]
    fn display_is_readable() {
        let g = alt(tensor(star(chr(sym("a"))), chr(sym("b"))), chr(sym("c")));
        let s = format!("{g}");
        assert!(s.contains('⊕'), "display should show ⊕: {s}");
        assert!(s.contains('⊗'), "display should show ⊗: {s}");
    }
}
