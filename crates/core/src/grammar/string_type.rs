//! The `Char` and `String` grammars (§3.4 of the paper).
//!
//! LambekD adds, for a fixed alphabet `Σ`, the non-linear type `Char` as
//! the disjunction of all literals and `String` as its Kleene star. The
//! `read` axiom (Axiom 3.4) then guarantees that `String` parses stand for
//! the actual input: semantically, `String` is strongly equivalent to `⊤`
//! — it has *exactly one* parse of every string (Theorem B.7). This module
//! builds those grammars and the canonical parse, and the test suite
//! checks the theorem.

use crate::alphabet::{Alphabet, GString};
use crate::grammar::expr::{chr, plus, star, Grammar};
use crate::grammar::parse_tree::ParseTree;

/// The grammar `Char = ⊕_{c ∈ Σ} 'c'`: any single character.
///
/// A parse of symbol `s` is `σ s.index() 's'`.
pub fn char_grammar(alphabet: &Alphabet) -> Grammar {
    plus(alphabet.symbols().map(chr).collect())
}

/// The grammar `String = Char*`: the type of input strings.
pub fn string_grammar(alphabet: &Alphabet) -> Grammar {
    star(char_grammar(alphabet))
}

/// The canonical parse of `w` in [`string_grammar`]: the linear list
/// `cons w₀ (cons w₁ … nil)` with each character injected into `Char`.
///
/// By Theorem B.7 this is the *only* parse of `w`, which the test suite
/// verifies by enumeration.
pub fn string_parse(w: &GString) -> ParseTree {
    let mut tree = ParseTree::roll(ParseTree::inj(0, ParseTree::Unit)); // nil
    for sym in w.iter().rev() {
        let ch = ParseTree::inj(sym.index(), ParseTree::Char(sym));
        tree = ParseTree::roll(ParseTree::inj(1, ParseTree::pair(ch, tree)));
    }
    tree
}

/// Recovers the string from a `String` parse — the inverse direction of
/// the `String ≅ ⊤` equivalence. For *any* `String` parse this is just the
/// yield.
pub fn string_unparse(tree: &ParseTree) -> GString {
    tree.flatten()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::compile::CompiledGrammar;
    use crate::grammar::parse_tree::validate;

    #[test]
    fn canonical_parse_validates() {
        let sigma = Alphabet::abc();
        let g = string_grammar(&sigma);
        for w in ["", "a", "abc", "cab", "aaabbb"] {
            let w = sigma.parse_str(w).unwrap();
            let t = string_parse(&w);
            validate(&t, &g, &w).unwrap();
            assert_eq!(string_unparse(&t), w);
        }
    }

    #[test]
    fn theorem_b7_string_has_exactly_one_parse() {
        let sigma = Alphabet::abc();
        let cg = CompiledGrammar::new(&string_grammar(&sigma));
        for w in ["", "a", "ab", "cba", "abca"] {
            let w = sigma.parse_str(w).unwrap();
            let forest = cg.parses(&w, 8);
            assert_eq!(forest.trees.len(), 1, "{w}");
            assert!(!forest.truncated);
            assert_eq!(forest.trees[0], string_parse(&w));
        }
    }

    #[test]
    fn char_grammar_parses_exactly_single_symbols() {
        let sigma = Alphabet::abc();
        let cg = CompiledGrammar::new(&char_grammar(&sigma));
        for sym in sigma.symbols() {
            let w = GString::singleton(sym);
            assert!(cg.count_parses(&w, 4).is_unambiguous_parse());
        }
        assert!(cg.count_parses(&GString::new(), 4).is_empty());
        assert!(cg
            .count_parses(&sigma.parse_str("ab").unwrap(), 4)
            .is_empty());
    }
}
