//! Executable forms of the paper's grammar axioms.
//!
//! * **Axiom 3.1 (distributivity)**: `&` distributes over `⊕`. In the
//!   finite case used by every example:
//!   `&_{x<m} ⊕_{y<n_x} A_{x,y}  ≅  ⊕_{f ∈ Π_x n_x} &_{x<m} A_{x,f(x)}`,
//!   where choice functions `f` are encoded in mixed radix.
//! * **Start-character decomposition** (§3.2): the consequence
//!   `A ≅ (A & I) ⊕ ⊕_{c∈Σ} (A & ('c' ⊗ ⊤))` the lookahead parser of
//!   Fig. 15 relies on — a parse of `A` either underlies the empty string
//!   or starts with a definite character.
//! * **Axiom 3.3 (σ-disjointness)**: distinct injections of a `⊕` are
//!   disjoint; [`sigma_disjoint_witness`] realizes the function
//!   `↑({b | σx∘π₁ b = σx'∘π₂ b} ⊸ 0)` as an emptiness check.
//!
//! All three hold in the denotational model (Theorems B.5/B.6); the
//! property-based test suite checks them on random grammars.

use crate::alphabet::Alphabet;
use crate::grammar::expr::{and, chr, eps, plus, tensor, top, with, Grammar};
use crate::grammar::parse_tree::ParseTree;
use crate::transform::combinators::Iso;
use crate::transform::{TransformError, Transformer};

/// Mixed-radix encoding of a choice function `f` with `f(x) = digits[x]`,
/// where digit `x` ranges over `radices[x]`.
fn encode_choice(digits: &[usize], radices: &[usize]) -> usize {
    let mut code = 0;
    for (d, r) in digits.iter().zip(radices) {
        debug_assert!(d < r);
        code = code * r + d;
    }
    code
}

/// Inverse of [`encode_choice`].
fn decode_choice(mut code: usize, radices: &[usize]) -> Vec<usize> {
    let mut digits = vec![0; radices.len()];
    for (slot, r) in digits.iter_mut().zip(radices).rev() {
        *slot = code % r;
        code /= r;
    }
    digits
}

/// Axiom 3.1, finite form: the isomorphism
/// `&_{x} ⊕_{y} A(x,y) ≅ ⊕_{f} &_{x} A(x, f(x))`.
///
/// `families[x]` lists the summands `A(x, 0..n_x)` of component `x`.
///
/// # Panics
///
/// Panics if `families` is empty or any family is empty (the paper's
/// axiom covers these degenerate cases through the nullary instances
/// `0 & A ≅ 0`; use those directly).
pub fn distributivity_iso(families: Vec<Vec<Grammar>>) -> Iso {
    assert!(!families.is_empty(), "need at least one & component");
    assert!(
        families.iter().all(|f| !f.is_empty()),
        "each ⊕ family must be non-empty"
    );
    let radices: Vec<usize> = families.iter().map(Vec::len).collect();
    let dom = with(families.iter().map(|f| plus(f.clone())).collect());
    let num_choices: usize = radices.iter().product();
    let cod = plus(
        (0..num_choices)
            .map(|code| {
                let digits = decode_choice(code, &radices);
                with(
                    families
                        .iter()
                        .zip(&digits)
                        .map(|(f, &d)| f[d].clone())
                        .collect(),
                )
            })
            .collect(),
    );
    let radices_fwd = radices.clone();
    let fwd = Transformer::from_fn("dist", dom.clone(), cod.clone(), move |t| match t {
        ParseTree::Tuple(ts) => {
            let mut digits = Vec::with_capacity(ts.len());
            let mut inner = Vec::with_capacity(ts.len());
            for t in ts {
                match t {
                    ParseTree::Inj { index, tree } => {
                        digits.push(*index);
                        inner.push((**tree).clone());
                    }
                    other => {
                        return Err(TransformError::Custom(format!(
                            "dist: expected σ, got {other}"
                        )))
                    }
                }
            }
            let code = encode_choice(&digits, &radices_fwd);
            Ok(ParseTree::inj(code, ParseTree::Tuple(inner)))
        }
        other => Err(TransformError::Custom(format!(
            "dist: expected tuple, got {other}"
        ))),
    });
    let bwd = Transformer::from_fn("dist⁻¹", cod, dom, move |t| match t {
        ParseTree::Inj { index, tree } => match &**tree {
            ParseTree::Tuple(ts) => {
                let digits = decode_choice(*index, &radices);
                let rebuilt = ts
                    .iter()
                    .zip(&digits)
                    .map(|(t, &d)| ParseTree::inj(d, t.clone()))
                    .collect();
                Ok(ParseTree::Tuple(rebuilt))
            }
            other => Err(TransformError::Custom(format!(
                "dist⁻¹: expected tuple, got {other}"
            ))),
        },
        other => Err(TransformError::Custom(format!(
            "dist⁻¹: expected σ, got {other}"
        ))),
    });
    Iso::new(fwd, bwd)
}

/// The start-character decomposition grammar
/// `(A & I) ⊕ ⊕_{c∈Σ} (A & ('c' ⊗ ⊤))`.
pub fn start_char_decomposition(a: &Grammar, alphabet: &Alphabet) -> Grammar {
    let mut summands = vec![and(a.clone(), eps())];
    for c in alphabet.symbols() {
        summands.push(and(a.clone(), tensor(chr(c), top())));
    }
    plus(summands)
}

/// The isomorphism `A ≅ (A & I) ⊕ ⊕_c (A & ('c' ⊗ ⊤))` (§3.2) used to
/// implement one token of lookahead: inspecting the first character of
/// the underlying string routes the parse to the matching summand.
pub fn start_char_iso(a: &Grammar, alphabet: &Alphabet) -> Iso {
    let cod = start_char_decomposition(a, alphabet);
    let fwd = Transformer::from_fn("startchar", a.clone(), cod.clone(), |t| {
        let w = t.flatten();
        if w.is_empty() {
            Ok(ParseTree::inj(
                0,
                ParseTree::Tuple(vec![t.clone(), ParseTree::Unit]),
            ))
        } else {
            let c = w[0];
            let rest = w.substring(1, w.len());
            Ok(ParseTree::inj(
                1 + c.index(),
                ParseTree::Tuple(vec![
                    t.clone(),
                    ParseTree::pair(ParseTree::Char(c), ParseTree::Top(rest)),
                ]),
            ))
        }
    });
    let bwd = Transformer::from_fn("startchar⁻¹", cod, a.clone(), |t| match t {
        ParseTree::Inj { tree, .. } => match &**tree {
            ParseTree::Tuple(ts) if !ts.is_empty() => Ok(ts[0].clone()),
            other => Err(TransformError::Custom(format!(
                "startchar⁻¹: expected tuple, got {other}"
            ))),
        },
        other => Err(TransformError::Custom(format!(
            "startchar⁻¹: expected σ, got {other}"
        ))),
    });
    Iso::new(fwd, bwd)
}

/// Axiom 3.3 realized: the set of pairs `⟨a, a'⟩ : A(x) & A(x')` with
/// `σ x a = σ x' a'` is empty when `x ≠ x'`. Given any claimed inhabitant
/// this returns the contradiction as an error, i.e. it *is* the function
/// into `0`.
///
/// # Errors
///
/// Always errs (that is the theorem); the error explains which axiom
/// fired.
pub fn sigma_disjoint_witness(
    x: usize,
    x_prime: usize,
    _pair: &ParseTree,
) -> Result<ParseTree, TransformError> {
    debug_assert_ne!(x, x_prime);
    Err(TransformError::Custom(format!(
        "σ-disjointness (Axiom 3.3): σ{x} and σ{x_prime} can never agree"
    )))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::grammar::compile::CompiledGrammar;
    use crate::grammar::expr::{alt, star};
    use crate::theory::equivalence::{StrongEquiv, WeakEquiv};
    use crate::theory::unambiguous::all_strings;

    #[test]
    fn distributivity_roundtrip() {
        let s = Alphabet::abc();
        let (a, b) = (chr(s.symbol("a").unwrap()), chr(s.symbol("b").unwrap()));
        // (a ⊕ b) & (a ⊕ b) ≅ ⊕_{4} (… & …).
        let iso = distributivity_iso(vec![vec![a.clone(), b.clone()], vec![a.clone(), b.clone()]]);
        let eq = StrongEquiv::new(WeakEquiv::new(iso.fwd, iso.bwd));
        let strings = all_strings(&s, 2);
        eq.check_on(&strings, 32).unwrap();
        eq.check_counts_on(&strings, 32).unwrap();
    }

    #[test]
    fn distributivity_mixed_radix() {
        let s = Alphabet::abc();
        let (a, b, c) = (
            chr(s.symbol("a").unwrap()),
            chr(s.symbol("b").unwrap()),
            chr(s.symbol("c").unwrap()),
        );
        // Components with different family sizes: 3 × 1 × 2 = 6 choices.
        let iso = distributivity_iso(vec![
            vec![a.clone(), b.clone(), c.clone()],
            vec![alt(a.clone(), b.clone())],
            vec![b, c],
        ]);
        match &*iso.fwd.cod().clone() {
            crate::grammar::expr::GrammarExpr::Plus(gs) => assert_eq!(gs.len(), 6),
            other => panic!("expected Plus, got {other:?}"),
        }
        let eq = StrongEquiv::new(WeakEquiv::new(iso.fwd, iso.bwd));
        eq.check_on(&all_strings(&s, 1), 32).unwrap();
    }

    #[test]
    fn start_char_iso_roundtrips_on_star() {
        let s = Alphabet::abc();
        let a = chr(s.symbol("a").unwrap());
        let g = star(alt(a.clone(), chr(s.symbol("b").unwrap())));
        let iso = start_char_iso(&g, &s);
        let eq = WeakEquiv::new(iso.fwd, iso.bwd);
        crate::theory::equivalence::check_retract_on(&eq, &all_strings(&s, 3), 64).unwrap();
    }

    #[test]
    fn start_char_decomposition_same_language() {
        let s = Alphabet::abc();
        let g = star(tensor(
            chr(s.symbol("a").unwrap()),
            chr(s.symbol("b").unwrap()),
        ));
        let d = start_char_decomposition(&g, &s);
        let (cg, cd) = (CompiledGrammar::new(&g), CompiledGrammar::new(&d));
        for w in all_strings(&s, 4) {
            assert_eq!(cg.recognizes(&w), cd.recognizes(&w), "{w}");
        }
    }

    #[test]
    fn sigma_disjointness_always_refutes() {
        let pair = ParseTree::Tuple(vec![ParseTree::Unit, ParseTree::Unit]);
        assert!(sigma_disjoint_witness(0, 1, &pair).is_err());
    }
}
