//! The ordered-linear type checker (Fig. 9).
//!
//! LambekD's typing discipline is what makes parsers correct by
//! construction, and it hinges on the *absence* of the structural rules:
//!
//! * **no weakening** — a context variable (an input character) cannot go
//!   unused;
//! * **no contraction** — a variable cannot be consumed twice;
//! * **no exchange** — variables must be consumed in context order.
//!
//! The checker threads the exact ordered context through each rule.
//! Context splits (for `⊗`, application, and the `Δ₁, Δ₂, Δ₃` pattern
//! rules) are reconstructed deterministically from the free variables of
//! the subterms: a subterm's free variables must occupy a *contiguous*
//! slice of the context in order, exactly as the paper's rules demand.
//! Violations are reported as the specific structural rule the term
//! tried to use.
//!
//! The checker runs on the hash-consed core ([`crate::intern`]): inferred
//! types are canonicalized, so every
//! [`lin_type_equal`] conversion check
//! between types built through the interned constructors is a pointer
//! compare, and the substitutions performed by the indexed rules
//! (`⊕`/`&` elimination, constructor and `fold` instantiation) are
//! memoized by id.

use std::collections::HashSet;
use std::fmt;
use std::sync::Arc;

use crate::syntax::nonlinear::{infer_nl, NlCtx, NlError, NlTerm};
use crate::syntax::terms::{FoldClause, LinTerm};
use crate::syntax::types::{lin_type_equal, subst_lin_type, LinType, Signature};

/// An ordered linear context `Δ`.
pub type LinCtx = Vec<(String, LinType)>;

/// A borrowed view of an ordered linear context.
pub type CtxSlice<'c> = &'c [(String, LinType)];

/// Which structural rule a rejected term tried to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StructuralRule {
    /// A variable was dropped.
    Weakening,
    /// A variable was used more than once.
    Contraction,
    /// Variables were used out of order.
    Exchange,
}

impl fmt::Display for StructuralRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StructuralRule::Weakening => write!(f, "weakening"),
            StructuralRule::Contraction => write!(f, "contraction"),
            StructuralRule::Exchange => write!(f, "exchange"),
        }
    }
}

/// Type-checking errors.
#[derive(Debug, Clone, PartialEq)]
pub enum TypeError {
    /// The term needs a structural rule the calculus does not have.
    Structural {
        /// The rule.
        rule: StructuralRule,
        /// Description of the violation.
        detail: String,
    },
    /// A plain type mismatch.
    Mismatch {
        /// What was expected.
        expected: String,
        /// What was found.
        found: String,
        /// The offending term.
        term: String,
    },
    /// An unbound linear variable.
    Unbound(String),
    /// An unknown global, data family or constructor.
    Unknown(String),
    /// This term form cannot have its type inferred; annotate or check.
    NeedsAnnotation(String),
    /// An error in the non-linear layer.
    Nl(NlError),
    /// Anything else.
    Other(String),
}

impl fmt::Display for TypeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TypeError::Structural { rule, detail } => {
                write!(f, "term requires {rule}, which LambekD forbids: {detail}")
            }
            TypeError::Mismatch {
                expected,
                found,
                term,
            } => write!(f, "expected {expected}, found {found} in {term}"),
            TypeError::Unbound(x) => write!(f, "unbound linear variable {x}"),
            TypeError::Unknown(x) => write!(f, "unknown name {x}"),
            TypeError::NeedsAnnotation(t) => write!(f, "cannot infer type of {t}"),
            TypeError::Nl(e) => write!(f, "{e}"),
            TypeError::Other(m) => write!(f, "{m}"),
        }
    }
}

impl std::error::Error for TypeError {}

impl From<NlError> for TypeError {
    fn from(e: NlError) -> TypeError {
        TypeError::Nl(e)
    }
}

/// Free linear variables of a term (bound-variable aware).
fn free_vars(term: &LinTerm, bound: &mut Vec<String>, out: &mut HashSet<String>) {
    match term {
        LinTerm::Var(x) => {
            if !bound.contains(x) {
                out.insert(x.clone());
            }
        }
        LinTerm::Global(_) | LinTerm::UnitIntro => {}
        LinTerm::LetUnit { scrutinee, body } => {
            free_vars(scrutinee, bound, out);
            free_vars(body, bound, out);
        }
        LinTerm::Pair(l, r) => {
            free_vars(l, bound, out);
            free_vars(r, bound, out);
        }
        LinTerm::LetPair {
            scrutinee,
            left,
            right,
            body,
        } => {
            free_vars(scrutinee, bound, out);
            bound.push(left.clone());
            bound.push(right.clone());
            free_vars(body, bound, out);
            bound.pop();
            bound.pop();
        }
        LinTerm::Lam { var, body, .. } | LinTerm::LamL { var, body, .. } => {
            bound.push(var.clone());
            free_vars(body, bound, out);
            bound.pop();
        }
        LinTerm::App(f, x) => {
            free_vars(f, bound, out);
            free_vars(x, bound, out);
        }
        LinTerm::AppL { arg, fun } => {
            free_vars(arg, bound, out);
            free_vars(fun, bound, out);
        }
        LinTerm::Inj { body, .. } | LinTerm::BigInj { body, .. } => free_vars(body, bound, out),
        LinTerm::Case {
            scrutinee,
            branches,
        } => {
            free_vars(scrutinee, bound, out);
            for (v, b) in branches {
                bound.push(v.clone());
                free_vars(b, bound, out);
                bound.pop();
            }
        }
        LinTerm::LetBigInj {
            scrutinee,
            var,
            body,
            ..
        } => {
            free_vars(scrutinee, bound, out);
            bound.push(var.clone());
            free_vars(body, bound, out);
            bound.pop();
        }
        LinTerm::BigLam { body, .. } => free_vars(body, bound, out),
        LinTerm::BigProj { scrutinee, .. } => free_vars(scrutinee, bound, out),
        LinTerm::Tuple(ts) => {
            for t in ts {
                free_vars(t, bound, out);
            }
        }
        LinTerm::Proj { scrutinee, .. } => free_vars(scrutinee, bound, out),
        LinTerm::Ctor { lin_args, .. } => {
            for a in lin_args {
                free_vars(a, bound, out);
            }
        }
        LinTerm::Fold { scrutinee, .. } => free_vars(scrutinee, bound, out),
        LinTerm::EqIntro(t) | LinTerm::EqProj(t) => free_vars(t, bound, out),
    }
}

fn free_set(term: &LinTerm) -> HashSet<String> {
    let mut out = HashSet::new();
    free_vars(term, &mut Vec::new(), &mut out);
    out
}

/// Rejects a pair of subterms that share a free variable — the
/// contraction violation, reported as such.
fn disjoint(l: &LinTerm, r: &LinTerm) -> Result<(), TypeError> {
    let fl = free_set(l);
    let fr = free_set(r);
    if let Some(x) = fl.intersection(&fr).next() {
        return Err(TypeError::Structural {
            rule: StructuralRule::Contraction,
            detail: format!("{x} is consumed by both {l} and {r}"),
        });
    }
    Ok(())
}

/// The checker, parameterized by a signature of data declarations and
/// global definitions.
#[derive(Debug)]
pub struct Checker<'a> {
    sig: &'a Signature,
}

impl<'a> Checker<'a> {
    /// Creates a checker over a signature.
    pub fn new(sig: &'a Signature) -> Checker<'a> {
        Checker { sig }
    }

    /// Splits `ctx` for a subterm that must consume a contiguous *prefix*
    /// (the left side of `⊗`-style splits).
    fn split_prefix<'c>(
        &self,
        ctx: CtxSlice<'c>,
        sub: &LinTerm,
    ) -> Result<(CtxSlice<'c>, CtxSlice<'c>), TypeError> {
        let used = free_set(sub);
        let mut k = 0;
        while k < ctx.len() && used.contains(&ctx[k].0) {
            k += 1;
        }
        // No later context entry may be used by the prefix subterm.
        if let Some((name, _)) = ctx[k..].iter().find(|(n, _)| used.contains(n)) {
            return Err(TypeError::Structural {
                rule: StructuralRule::Exchange,
                detail: format!("{sub} consumes {name} out of order (context is non-commutative)"),
            });
        }
        Ok(ctx.split_at(k))
    }

    /// Finds the contiguous segment of `ctx` consumed by `sub` (for the
    /// `Δ₁, Δ₂, Δ₃` pattern-match rules). Returns `(Δ₁, Δ₂, Δ₃)`.
    fn split_segment<'c>(
        &self,
        ctx: CtxSlice<'c>,
        sub: &LinTerm,
    ) -> Result<(CtxSlice<'c>, CtxSlice<'c>, CtxSlice<'c>), TypeError> {
        let used = free_set(sub);
        if used.is_empty() {
            // A resource-free scrutinee: the segment is empty; place it at
            // the left edge (any placement checks equivalently).
            return Ok((&ctx[..0], &ctx[..0], ctx));
        }
        let start = ctx
            .iter()
            .position(|(n, _)| used.contains(n))
            .ok_or_else(|| TypeError::Other(format!("scrutinee {sub} uses no context variable")))?;
        let mut end = start;
        while end < ctx.len() && used.contains(&ctx[end].0) {
            end += 1;
        }
        if let Some((name, _)) = ctx[end..].iter().find(|(n, _)| used.contains(n)) {
            return Err(TypeError::Structural {
                rule: StructuralRule::Exchange,
                detail: format!("{sub} consumes a non-contiguous segment (gap before {name})"),
            });
        }
        Ok((&ctx[..start], &ctx[start..end], &ctx[end..]))
    }

    /// Diagnoses why a leaf-level usage failed, in terms of the missing
    /// structural rule.
    fn structural_diagnosis(&self, ctx: &[(String, LinType)], term: &LinTerm) -> TypeError {
        let used = free_set(term);
        let ctx_names: Vec<&String> = ctx.iter().map(|(n, _)| n).collect();
        let unused: Vec<&String> = ctx_names
            .iter()
            .filter(|n| !used.contains(**n))
            .copied()
            .collect();
        if !unused.is_empty() {
            return TypeError::Structural {
                rule: StructuralRule::Weakening,
                detail: format!("{term} leaves {} unused", unused[0]),
            };
        }
        TypeError::Structural {
            rule: StructuralRule::Exchange,
            detail: format!("{term} does not consume the context in order"),
        }
    }

    /// Infers the type of `term` in `Γ = nl` and ordered `Δ = lin`
    /// (`Γ; Δ ⊢ term : ?`).
    ///
    /// # Errors
    ///
    /// Returns a [`TypeError`] — with the offending structural rule named
    /// where applicable.
    pub fn infer(
        &self,
        nl: &NlCtx,
        lin: &[(String, LinType)],
        term: &LinTerm,
    ) -> Result<LinType, TypeError> {
        match term {
            LinTerm::Var(x) => match lin {
                [(name, ty)] if name == x => Ok(ty.clone()),
                [] => Err(TypeError::Unbound(x.clone())),
                _ => {
                    if lin.iter().any(|(n, _)| n == x) {
                        Err(self.structural_diagnosis(lin, term))
                    } else {
                        Err(TypeError::Unbound(x.clone()))
                    }
                }
            },
            LinTerm::Global(g) => {
                if !lin.is_empty() {
                    return Err(self.structural_diagnosis(lin, term));
                }
                self.sig
                    .def(g)
                    .map(|d| d.ty.clone())
                    .ok_or_else(|| TypeError::Unknown(g.clone()))
            }
            LinTerm::UnitIntro => {
                if lin.is_empty() {
                    Ok(LinType::Unit)
                } else {
                    Err(self.structural_diagnosis(lin, term))
                }
            }
            LinTerm::LetUnit { scrutinee, body } => {
                let (d1, d2, d3) = self.split_segment(lin, scrutinee)?;
                let st = self.infer(nl, d2, scrutinee)?;
                if !lin_type_equal(&st, &LinType::Unit) {
                    return Err(self.mismatch(&LinType::Unit, &st, scrutinee));
                }
                let mut ctx = d1.to_vec();
                ctx.extend_from_slice(d3);
                self.infer(nl, &ctx, body)
            }
            LinTerm::Pair(l, r) => {
                disjoint(l, r)?;
                let (dl, dr) = self.split_prefix(lin, l)?;
                let lt = self.infer(nl, dl, l)?;
                let rt = self.infer(nl, dr, r)?;
                Ok(LinType::tensor(lt, rt))
            }
            LinTerm::LetPair {
                scrutinee,
                left,
                right,
                body,
            } => {
                let (d1, d2, d3) = self.split_segment(lin, scrutinee)?;
                let st = self.infer(nl, d2, scrutinee)?;
                let (a, b) = match st {
                    LinType::Tensor(a, b) => ((*a).clone(), (*b).clone()),
                    other => {
                        return Err(self.mismatch_str("a ⊗ type", &other, scrutinee));
                    }
                };
                let mut ctx = d1.to_vec();
                ctx.push((left.clone(), a));
                ctx.push((right.clone(), b));
                ctx.extend_from_slice(d3);
                self.infer(nl, &ctx, body)
            }
            LinTerm::Lam { var, dom, body } => {
                let mut ctx = lin.to_vec();
                ctx.push((var.clone(), (**dom).clone()));
                let cod = self.infer(nl, &ctx, body)?;
                Ok(LinType::LFun(dom.clone(), Arc::new(cod)).interned())
            }
            LinTerm::App(f, x) => {
                disjoint(f, x)?;
                let (df, dx) = self.split_prefix(lin, f)?;
                match self.infer(nl, df, f)? {
                    LinType::LFun(a, b) => {
                        self.check(nl, dx, x, &a)?;
                        Ok((*b).clone())
                    }
                    other => Err(self.mismatch_str("a ⊸ type", &other, f)),
                }
            }
            LinTerm::LamL { var, dom, body } => {
                let mut ctx = vec![(var.clone(), (**dom).clone())];
                ctx.extend_from_slice(lin);
                let cod = self.infer(nl, &ctx, body)?;
                Ok(LinType::RFun(dom.clone(), Arc::new(cod)).interned())
            }
            LinTerm::AppL { arg, fun } => {
                disjoint(arg, fun)?;
                let (da, df) = self.split_prefix(lin, arg)?;
                match self.infer(nl, df, fun)? {
                    LinType::RFun(a, b) => {
                        self.check(nl, da, arg, &a)?;
                        Ok((*b).clone())
                    }
                    other => Err(self.mismatch_str("a ⟜ type", &other, fun)),
                }
            }
            LinTerm::Inj { .. }
            | LinTerm::BigInj { .. }
            | LinTerm::BigLam { .. }
            | LinTerm::EqIntro(_) => Err(TypeError::NeedsAnnotation(format!("{term}"))),
            LinTerm::Case {
                scrutinee,
                branches,
            } => {
                let (d1, d2, d3) = self.split_segment(lin, scrutinee)?;
                let ts = match self.infer(nl, d2, scrutinee)? {
                    LinType::Plus(ts) => ts,
                    other => return Err(self.mismatch_str("a ⊕ type", &other, scrutinee)),
                };
                if ts.len() != branches.len() {
                    return Err(TypeError::Other(format!(
                        "case has {} branches for a {}-ary sum",
                        branches.len(),
                        ts.len()
                    )));
                }
                let mut result: Option<LinType> = None;
                for ((v, b), t) in branches.iter().zip(&ts) {
                    let mut ctx = d1.to_vec();
                    ctx.push((v.clone(), t.clone()));
                    ctx.extend_from_slice(d3);
                    let bt = self.infer(nl, &ctx, b)?;
                    match &result {
                        None => result = Some(bt),
                        Some(r) => {
                            if !lin_type_equal(r, &bt) {
                                return Err(self.mismatch(r, &bt, b));
                            }
                        }
                    }
                }
                result.ok_or_else(|| TypeError::NeedsAnnotation("empty case".to_owned()))
            }
            LinTerm::LetBigInj {
                scrutinee,
                nl_var,
                var,
                body,
            } => {
                let (d1, d2, d3) = self.split_segment(lin, scrutinee)?;
                let (ix, iv, ib) = match self.infer(nl, d2, scrutinee)? {
                    LinType::BigPlus { var, index, body } => (index, var, body),
                    other => return Err(self.mismatch_str("an indexed ⊕", &other, scrutinee)),
                };
                let mut nl2 = nl.clone();
                nl2.insert(nl_var.clone(), (*ix).clone());
                let payload = subst_lin_type(&ib, &iv, &NlTerm::var(nl_var));
                let mut ctx = d1.to_vec();
                ctx.push((var.clone(), payload));
                ctx.extend_from_slice(d3);
                self.infer(&nl2, &ctx, body)
            }
            LinTerm::BigProj { scrutinee, index } => match self.infer(nl, lin, scrutinee)? {
                LinType::BigWith {
                    var,
                    index: ix,
                    body,
                } => {
                    let it = infer_nl(nl, index)?;
                    if it != *ix {
                        return Err(TypeError::Nl(NlError::Mismatch(format!(
                            "projection index has type {it}, expected {ix}"
                        ))));
                    }
                    Ok(subst_lin_type(&body, &var, index))
                }
                other => Err(self.mismatch_str("an indexed &", &other, scrutinee)),
            },
            LinTerm::Tuple(ts) => {
                let mut out = Vec::with_capacity(ts.len());
                for t in ts {
                    out.push(self.infer(nl, lin, t)?);
                }
                Ok(LinType::With(out).interned())
            }
            LinTerm::Proj { scrutinee, index } => match self.infer(nl, lin, scrutinee)? {
                LinType::With(ts) => ts
                    .get(*index)
                    .cloned()
                    .ok_or_else(|| TypeError::Other(format!("projection {index} out of range"))),
                other => Err(self.mismatch_str("a finite &", &other, scrutinee)),
            },
            LinTerm::Ctor {
                data,
                ctor,
                nl_args,
                lin_args,
            } => {
                let decl = self
                    .sig
                    .data(data)
                    .ok_or_else(|| TypeError::Unknown(data.clone()))?;
                let cdecl = decl
                    .ctors
                    .iter()
                    .find(|c| &c.name == ctor)
                    .ok_or_else(|| TypeError::Unknown(format!("{data}.{ctor}")))?;
                if nl_args.len() != cdecl.nl_args.len() || lin_args.len() != cdecl.lin_args.len() {
                    return Err(TypeError::Other(format!(
                        "{ctor}: wrong number of arguments"
                    )));
                }
                // Check non-linear arguments and build the substitution.
                let mut subst: Vec<(String, NlTerm)> = Vec::new();
                for (arg, (name, ty)) in nl_args.iter().zip(&cdecl.nl_args) {
                    let got = infer_nl(nl, arg)?;
                    if &got != ty {
                        return Err(TypeError::Nl(NlError::Mismatch(format!(
                            "{ctor}: index argument {arg} has type {got}, expected {ty}"
                        ))));
                    }
                    subst.push((name.clone(), arg.clone()));
                }
                let apply = |ty: &LinType| {
                    subst
                        .iter()
                        .fold(ty.clone(), |t, (v, m)| subst_lin_type(&t, v, m))
                };
                // Check linear arguments left-to-right with prefix splits.
                for (i, a) in lin_args.iter().enumerate() {
                    for b in &lin_args[i + 1..] {
                        disjoint(a, b)?;
                    }
                }
                let mut rest = lin;
                for (arg, ty) in lin_args.iter().zip(&cdecl.lin_args) {
                    let (seg, r) = self.split_prefix(rest, arg)?;
                    self.check(nl, seg, arg, &apply(ty))?;
                    rest = r;
                }
                if !rest.is_empty() {
                    return Err(self.structural_diagnosis(lin, term));
                }
                let args = cdecl
                    .result_indices
                    .iter()
                    .map(|ix| {
                        subst.iter().fold(ix.clone(), |t, (v, m)| {
                            crate::syntax::nonlinear::subst_nl(&t, v, m)
                        })
                    })
                    .collect();
                Ok(LinType::Data {
                    name: data.clone(),
                    args,
                }
                .interned())
            }
            LinTerm::Fold {
                data,
                motive,
                clauses,
                scrutinee,
            } => {
                let decl = self
                    .sig
                    .data(data)
                    .ok_or_else(|| TypeError::Unknown(data.clone()))?;
                if clauses.len() != decl.ctors.len() {
                    return Err(TypeError::Other(format!(
                        "fold over {data} needs {} clauses, got {}",
                        decl.ctors.len(),
                        clauses.len()
                    )));
                }
                let motive_at = |indices: &[NlTerm]| -> LinType {
                    decl.index_telescope
                        .iter()
                        .zip(indices)
                        .fold((**motive).clone(), |t, ((v, _), m)| {
                            subst_lin_type(&t, v, m)
                        })
                };
                for (clause, cdecl) in clauses.iter().zip(&decl.ctors) {
                    self.check_fold_clause(nl, data, clause, cdecl, &motive_at)?;
                }
                let sty = self.infer(nl, lin, scrutinee)?;
                match sty {
                    LinType::Data { name, args } if &name == data => Ok(motive_at(&args)),
                    other => Err(self.mismatch_str(&format!("{data} …"), &other, scrutinee)),
                }
            }
            LinTerm::EqProj(e) => match self.infer(nl, lin, e)? {
                LinType::Equalizer { base, .. } => Ok((*base).clone()),
                other => Err(self.mismatch_str("an equalizer", &other, e)),
            },
        }
    }

    fn check_fold_clause(
        &self,
        nl: &NlCtx,
        data: &str,
        clause: &FoldClause,
        cdecl: &crate::syntax::types::CtorDecl,
        motive_at: &dyn Fn(&[NlTerm]) -> LinType,
    ) -> Result<(), TypeError> {
        if clause.nl_vars.len() != cdecl.nl_args.len()
            || clause.lin_vars.len() != cdecl.lin_args.len()
        {
            return Err(TypeError::Other(format!(
                "fold clause for {} binds the wrong number of variables",
                cdecl.name
            )));
        }
        let mut nl2 = nl.clone();
        let mut subst: Vec<(String, NlTerm)> = Vec::new();
        for (v, (decl_name, ty)) in clause.nl_vars.iter().zip(&cdecl.nl_args) {
            nl2.insert(v.clone(), ty.clone());
            subst.push((decl_name.clone(), NlTerm::var(v)));
        }
        let apply = |ty: &LinType| {
            subst
                .iter()
                .fold(ty.clone(), |t, (v, m)| subst_lin_type(&t, v, m))
        };
        let mut ctx: LinCtx = Vec::new();
        for (v, arg_ty) in clause.lin_vars.iter().zip(&cdecl.lin_args) {
            // Recursive positions arrive at the motive type (Fig. 10's
            // `el(F)(A)`); we support top-level self references.
            let bound_ty = match arg_ty {
                LinType::Data { name, args } if name == data => {
                    let idx: Vec<NlTerm> = args
                        .iter()
                        .map(|a| {
                            subst.iter().fold(a.clone(), |t, (v, m)| {
                                crate::syntax::nonlinear::subst_nl(&t, v, m)
                            })
                        })
                        .collect();
                    motive_at(&idx)
                }
                other => apply(other),
            };
            ctx.push((v.clone(), bound_ty));
        }
        let expected = {
            let idx: Vec<NlTerm> = cdecl
                .result_indices
                .iter()
                .map(|a| {
                    subst.iter().fold(a.clone(), |t, (v, m)| {
                        crate::syntax::nonlinear::subst_nl(&t, v, m)
                    })
                })
                .collect();
            motive_at(&idx)
        };
        self.check(&nl2, &ctx, &clause.body, &expected)
    }

    /// Checks `term` against an expected type (`Γ; Δ ⊢ term ⇐ A`).
    ///
    /// # Errors
    ///
    /// As for [`Checker::infer`].
    pub fn check(
        &self,
        nl: &NlCtx,
        lin: &[(String, LinType)],
        term: &LinTerm,
        expected: &LinType,
    ) -> Result<(), TypeError> {
        match (term, expected) {
            (LinTerm::Inj { index, arity, body }, LinType::Plus(ts)) => {
                if ts.len() != *arity {
                    return Err(TypeError::Other(format!(
                        "σ annotated with arity {arity} against a {}-ary sum",
                        ts.len()
                    )));
                }
                let t = ts.get(*index).ok_or_else(|| {
                    TypeError::Other(format!("σ{index} out of range for {expected}"))
                })?;
                self.check(nl, lin, body, t)
            }
            (
                LinTerm::BigInj { index, body },
                LinType::BigPlus {
                    var,
                    index: ix,
                    body: b,
                },
            ) => {
                let it = infer_nl(nl, index)?;
                if it != **ix {
                    return Err(TypeError::Nl(NlError::Mismatch(format!(
                        "σ index has type {it}, expected {ix}"
                    ))));
                }
                let t = subst_lin_type(b, var, index);
                self.check(nl, lin, body, &t)
            }
            (
                LinTerm::BigLam { var, body },
                LinType::BigWith {
                    var: v,
                    index,
                    body: b,
                },
            ) => {
                let mut nl2 = nl.clone();
                nl2.insert(var.clone(), (**index).clone());
                let t = subst_lin_type(b, v, &NlTerm::var(var));
                self.check(&nl2, lin, body, &t)
            }
            (LinTerm::Tuple(ts), LinType::With(tys)) => {
                if ts.len() != tys.len() {
                    return Err(TypeError::Other(format!(
                        "tuple arity {} against {}-ary &",
                        ts.len(),
                        tys.len()
                    )));
                }
                for (t, ty) in ts.iter().zip(tys) {
                    self.check(nl, lin, t, ty)?;
                }
                Ok(())
            }
            (LinTerm::EqIntro(e), LinType::Equalizer { base, .. }) => {
                // The equation `f e ≡ g e` is a semantic side condition,
                // verified by the evaluator (DESIGN.md §7).
                self.check(nl, lin, e, base)
            }
            (LinTerm::Lam { var, dom, body }, LinType::LFun(a, b)) => {
                if !lin_type_equal(dom, a) {
                    return Err(self.mismatch(a, dom, term));
                }
                let mut ctx = lin.to_vec();
                ctx.push((var.clone(), (**a).clone()));
                self.check(nl, &ctx, body, b)
            }
            (LinTerm::LetUnit { scrutinee, body }, _) => {
                let (d1, d2, d3) = self.split_segment(lin, scrutinee)?;
                let st = self.infer(nl, d2, scrutinee)?;
                if !lin_type_equal(&st, &LinType::Unit) {
                    return Err(self.mismatch(&LinType::Unit, &st, scrutinee));
                }
                let mut ctx = d1.to_vec();
                ctx.extend_from_slice(d3);
                self.check(nl, &ctx, body, expected)
            }
            (
                LinTerm::LetPair {
                    scrutinee,
                    left,
                    right,
                    body,
                },
                _,
            ) => {
                let (d1, d2, d3) = self.split_segment(lin, scrutinee)?;
                let st = self.infer(nl, d2, scrutinee)?;
                let (a, b) = match st {
                    LinType::Tensor(a, b) => ((*a).clone(), (*b).clone()),
                    other => return Err(self.mismatch_str("a ⊗ type", &other, scrutinee)),
                };
                let mut ctx = d1.to_vec();
                ctx.push((left.clone(), a));
                ctx.push((right.clone(), b));
                ctx.extend_from_slice(d3);
                self.check(nl, &ctx, body, expected)
            }
            (
                LinTerm::LetBigInj {
                    scrutinee,
                    nl_var,
                    var,
                    body,
                },
                _,
            ) => {
                let (d1, d2, d3) = self.split_segment(lin, scrutinee)?;
                let (ix, iv, ib) = match self.infer(nl, d2, scrutinee)? {
                    LinType::BigPlus { var, index, body } => (index, var, body),
                    other => return Err(self.mismatch_str("an indexed ⊕", &other, scrutinee)),
                };
                let mut nl2 = nl.clone();
                nl2.insert(nl_var.clone(), (*ix).clone());
                let payload = subst_lin_type(&ib, &iv, &NlTerm::var(nl_var));
                let mut ctx = d1.to_vec();
                ctx.push((var.clone(), payload));
                ctx.extend_from_slice(d3);
                self.check(&nl2, &ctx, body, expected)
            }
            (
                LinTerm::Case {
                    scrutinee,
                    branches,
                },
                _,
            ) => {
                let (d1, d2, d3) = self.split_segment(lin, scrutinee)?;
                let ts = match self.infer(nl, d2, scrutinee)? {
                    LinType::Plus(ts) => ts,
                    other => return Err(self.mismatch_str("a ⊕ type", &other, scrutinee)),
                };
                if ts.len() != branches.len() {
                    return Err(TypeError::Other(format!(
                        "case has {} branches for a {}-ary sum",
                        branches.len(),
                        ts.len()
                    )));
                }
                for ((v, b), t) in branches.iter().zip(&ts) {
                    let mut ctx = d1.to_vec();
                    ctx.push((v.clone(), t.clone()));
                    ctx.extend_from_slice(d3);
                    self.check(nl, &ctx, b, expected)?;
                }
                Ok(())
            }
            _ => {
                let got = self.infer(nl, lin, term)?;
                if lin_type_equal(&got, expected) {
                    Ok(())
                } else {
                    Err(self.mismatch(expected, &got, term))
                }
            }
        }
    }

    fn mismatch(&self, expected: &LinType, found: &LinType, term: &LinTerm) -> TypeError {
        TypeError::Mismatch {
            expected: format!("{expected}"),
            found: format!("{found}"),
            term: format!("{term}"),
        }
    }

    fn mismatch_str(&self, expected: &str, found: &LinType, term: &LinTerm) -> TypeError {
        TypeError::Mismatch {
            expected: expected.to_owned(),
            found: format!("{found}"),
            term: format!("{term}"),
        }
    }
}

/// Type-checks every global definition in a signature.
///
/// # Errors
///
/// Returns the first definition that fails, with its error.
pub fn check_signature(sig: &Signature) -> Result<(), (String, TypeError)> {
    let checker = Checker::new(sig);
    for def in sig.defs() {
        checker
            .check(&NlCtx::new(), &[], &def.body, &def.ty)
            .map_err(|e| (def.name.clone(), e))?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn chr(name: &str) -> LinType {
        LinType::Char(Alphabet::abc().symbol(name).unwrap())
    }

    fn ab_ctx() -> LinCtx {
        vec![("a".to_owned(), chr("a")), ("b".to_owned(), chr("b"))]
    }

    fn empty_sig() -> Signature {
        Signature::new()
    }

    #[test]
    fn fig1_typing_derivation() {
        // a : 'a', b : 'b' ⊢ σ0 (a, b) : ('a' ⊗ 'b') ⊕ 'c'.
        let sig = empty_sig();
        let ck = Checker::new(&sig);
        let goal = LinType::alt(LinType::tensor(chr("a"), chr("b")), chr("c"));
        let term = LinTerm::inj(0, 2, LinTerm::pair(LinTerm::var("a"), LinTerm::var("b")));
        ck.check(&NlCtx::new(), &ab_ctx(), &term, &goal).unwrap();
    }

    #[test]
    fn weakening_is_rejected() {
        // a : 'a', b : 'b' ⊬ a : 'a' — b is dropped (§2).
        let sig = empty_sig();
        let ck = Checker::new(&sig);
        let err = ck
            .infer(&NlCtx::new(), &ab_ctx(), &LinTerm::var("a"))
            .unwrap_err();
        assert!(
            matches!(
                err,
                TypeError::Structural {
                    rule: StructuralRule::Weakening,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn contraction_is_rejected() {
        // a : 'a', b : 'b' ⊬ (a, a) : 'a' ⊗ 'a' (§2).
        let sig = empty_sig();
        let ck = Checker::new(&sig);
        let term = LinTerm::pair(LinTerm::var("a"), LinTerm::var("a"));
        let err = ck.infer(&NlCtx::new(), &ab_ctx(), &term).unwrap_err();
        // The duplicate use surfaces as a structural violation (the
        // second `a` is out of reach after the first consumed it).
        assert!(matches!(err, TypeError::Structural { .. }), "{err}");
    }

    #[test]
    fn exchange_is_rejected() {
        // a : 'a', b : 'b' ⊬ (b, a) : 'b' ⊗ 'a' (§2).
        let sig = empty_sig();
        let ck = Checker::new(&sig);
        let term = LinTerm::pair(LinTerm::var("b"), LinTerm::var("a"));
        let err = ck.infer(&NlCtx::new(), &ab_ctx(), &term).unwrap_err();
        assert!(
            matches!(
                err,
                TypeError::Structural {
                    rule: StructuralRule::Exchange,
                    ..
                }
            ),
            "{err}"
        );
    }

    #[test]
    fn lambda_binds_on_the_right() {
        // ⊢ λ⊸ a. λ⊸ b. (a, b) : 'a' ⊸ 'b' ⊸ ('a' ⊗ 'b').
        let sig = empty_sig();
        let ck = Checker::new(&sig);
        let term = LinTerm::lam(
            "a",
            chr("a"),
            LinTerm::lam(
                "b",
                chr("b"),
                LinTerm::pair(LinTerm::var("a"), LinTerm::var("b")),
            ),
        );
        let ty = ck.infer(&NlCtx::new(), &[], &term).unwrap();
        assert!(lin_type_equal(
            &ty,
            &LinType::lfun(
                chr("a"),
                LinType::lfun(chr("b"), LinType::tensor(chr("a"), chr("b")))
            )
        ));
        // But swapping the pair needs exchange: rejected.
        let bad = LinTerm::lam(
            "a",
            chr("a"),
            LinTerm::lam(
                "b",
                chr("b"),
                LinTerm::pair(LinTerm::var("b"), LinTerm::var("a")),
            ),
        );
        assert!(ck.infer(&NlCtx::new(), &[], &bad).is_err());
    }

    #[test]
    fn left_lambda_binds_on_the_left() {
        // λ⟜ binds at the left end: λ⟜ a. (a, b) works in ctx b : 'b'.
        let sig = empty_sig();
        let ck = Checker::new(&sig);
        let ctx = vec![("b".to_owned(), chr("b"))];
        let term = LinTerm::LamL {
            var: "a".to_owned(),
            dom: Arc::new(chr("a")),
            body: Arc::new(LinTerm::pair(LinTerm::var("a"), LinTerm::var("b"))),
        };
        let ty = ck.infer(&NlCtx::new(), &ctx, &term).unwrap();
        assert!(matches!(ty, LinType::RFun(..)));
    }

    #[test]
    fn let_pair_splits_in_the_middle() {
        // c : 'c', p : 'a' ⊗ 'b' ⊢ let (a,b) = p in ((c, a), b).
        let sig = empty_sig();
        let ck = Checker::new(&sig);
        let ctx = vec![
            ("c".to_owned(), chr("c")),
            ("p".to_owned(), LinType::tensor(chr("a"), chr("b"))),
        ];
        let term = LinTerm::let_pair(
            LinTerm::var("p"),
            "a",
            "b",
            LinTerm::pair(
                LinTerm::pair(LinTerm::var("c"), LinTerm::var("a")),
                LinTerm::var("b"),
            ),
        );
        let ty = ck.infer(&NlCtx::new(), &ctx, &term).unwrap();
        assert!(lin_type_equal(
            &ty,
            &LinType::tensor(LinType::tensor(chr("c"), chr("a")), chr("b"))
        ));
    }

    #[test]
    fn application_splits_function_left() {
        // f : 'a' ⊸ 'b', a : 'a' ⊢ f a : 'b'… via lambda redex.
        let sig = empty_sig();
        let ck = Checker::new(&sig);
        let ctx = vec![("a".to_owned(), chr("a"))];
        let term = LinTerm::app(
            LinTerm::lam("x", chr("a"), LinTerm::var("x")),
            LinTerm::var("a"),
        );
        let ty = ck.infer(&NlCtx::new(), &ctx, &term).unwrap();
        assert!(lin_type_equal(&ty, &chr("a")));
    }

    #[test]
    fn case_branches_share_the_outer_context() {
        // s : 'a' ⊕ 'b' ⊢ case s of inl x ⇒ σ0 x | inr y ⇒ σ1 y : same sum.
        let sig = empty_sig();
        let ck = Checker::new(&sig);
        let sum = LinType::alt(chr("a"), chr("b"));
        let ctx = vec![("s".to_owned(), sum.clone())];
        let term = LinTerm::Case {
            scrutinee: Arc::new(LinTerm::var("s")),
            branches: vec![
                ("x".to_owned(), LinTerm::inj(0, 2, LinTerm::var("x"))),
                ("y".to_owned(), LinTerm::inj(1, 2, LinTerm::var("y"))),
            ],
        };
        ck.check(&NlCtx::new(), &ctx, &term, &sum).unwrap();
    }

    #[test]
    fn tuple_components_share_resources() {
        // a : 'a' ⊢ ⟨a, a⟩ : 'a' & 'a' — & shares, ⊗ splits.
        let sig = empty_sig();
        let ck = Checker::new(&sig);
        let ctx = vec![("a".to_owned(), chr("a"))];
        let term = LinTerm::Tuple(vec![LinTerm::var("a"), LinTerm::var("a")]);
        let ty = ck.infer(&NlCtx::new(), &ctx, &term).unwrap();
        assert!(lin_type_equal(
            &ty,
            &LinType::With(vec![chr("a"), chr("a")])
        ));
    }
}
