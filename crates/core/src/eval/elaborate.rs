//! Elaboration: syntax-level linear types → denotational grammars.
//!
//! Connects the deep syntax to the model of §5: a (positive) [`LinType`]
//! elaborates to a [`Grammar`], with every reachable *instance* of an
//! indexed inductive family (a `(family, index values)` pair) becoming one
//! definition of a single shared [`MuSystem`] — exactly the paper's view
//! of an indexed inductive type as a family of mutually recursive types
//! (§2, §3.3). Infinite index types (`Nat`) are enumerated up to a bound,
//! per the truncation policy of DESIGN.md §2.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::grammar::expr::{self, Grammar, GrammarExpr, MuSystem};
use crate::syntax::nonlinear::{enumerate_type, eval_nl, NlEnv, NlError, Value};
use crate::syntax::types::{CtorDecl, LinType, Signature};

/// Elaboration errors.
#[derive(Debug, Clone, PartialEq)]
pub enum ElabError {
    /// `⊸`/`⟜` have no enumerable denotation.
    NonPositive(String),
    /// An index type could not be enumerated (function type).
    NotEnumerable(String),
    /// Unknown data family.
    UnknownData(String),
    /// Non-linear evaluation failed.
    Nl(NlError),
    /// Equalizers denote filtered parse sets; handled at the theory
    /// level, not as grammar expressions.
    Equalizer,
}

impl fmt::Display for ElabError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ElabError::NonPositive(t) => {
                write!(f, "{t} is a function type; only positive types elaborate")
            }
            ElabError::NotEnumerable(t) => write!(f, "index type {t} is not enumerable"),
            ElabError::UnknownData(d) => write!(f, "unknown data family {d}"),
            ElabError::Nl(e) => write!(f, "{e}"),
            ElabError::Equalizer => write!(
                f,
                "equalizer types elaborate at the theory level, not as grammars"
            ),
        }
    }
}

impl std::error::Error for ElabError {}

impl From<NlError> for ElabError {
    fn from(e: NlError) -> ElabError {
        ElabError::Nl(e)
    }
}

/// A data instance key: family name plus concrete index values.
pub type InstanceKey = (String, Vec<Value>);

/// The summand layout of one data instance: which `(constructor,
/// non-linear argument values)` each `⊕` summand stands for.
#[derive(Debug, Clone)]
pub struct InstanceLayout {
    /// In summand order: `(ctor index, values of its nl_args)`.
    pub summands: Vec<(usize, Vec<Value>)>,
}

/// The elaborator: builds one shared `μ` system for all data instances
/// reachable from the types it is asked about.
#[derive(Debug)]
pub struct Elaborator<'a> {
    sig: &'a Signature,
    nat_bound: u64,
    /// Instance → definition index (assigned on first visit).
    instances: HashMap<InstanceKey, usize>,
    /// Definition bodies (filled after discovery), names, layouts.
    defs: Vec<Option<Grammar>>,
    names: Vec<String>,
    layouts: Vec<InstanceLayout>,
    /// The finished system, built on demand.
    system: Option<Arc<MuSystem>>,
}

impl<'a> Elaborator<'a> {
    /// Creates an elaborator; `nat_bound` truncates `Nat`-indexed
    /// families and `Nat`-indexed `⊕`/`&`.
    pub fn new(sig: &'a Signature, nat_bound: u64) -> Elaborator<'a> {
        Elaborator {
            sig,
            nat_bound,
            instances: HashMap::new(),
            defs: Vec::new(),
            names: Vec::new(),
            layouts: Vec::new(),
            system: None,
        }
    }

    /// Elaborates a type to a grammar, in the given non-linear
    /// environment (free index variables must be bound there).
    ///
    /// # Errors
    ///
    /// Returns an [`ElabError`] for non-positive types and enumeration
    /// failures.
    pub fn elaborate(&mut self, env: &NlEnv, ty: &LinType) -> Result<Grammar, ElabError> {
        // Phase 1: build with Var references into the shared system.
        let open = self.elab_open(env, ty)?;
        // Phase 2: close the system and replace top-level Vars by μ refs.
        let system = self.finish_system();
        Ok(close(&open, &system))
    }

    /// The summand layout of a data instance (after elaborating something
    /// that mentions it).
    pub fn layout(&self, key: &InstanceKey) -> Option<&InstanceLayout> {
        self.instances.get(key).map(|&i| &self.layouts[i])
    }

    /// Definition index of an instance, if visited.
    pub fn instance_index(&self, key: &InstanceKey) -> Option<usize> {
        self.instances.get(key).copied()
    }

    fn finish_system(&mut self) -> Arc<MuSystem> {
        let stale = self
            .system
            .as_ref()
            .is_none_or(|s| s.len() != self.defs.len());
        if stale && !self.defs.is_empty() {
            let defs: Vec<Grammar> = self
                .defs
                .iter()
                .map(|d| d.clone().expect("all visited instances have bodies"))
                .collect();
            self.system = Some(MuSystem::new(defs, self.names.clone()));
        }
        self.system
            .clone()
            .unwrap_or_else(|| MuSystem::new(vec![expr::bot()], vec!["unused".to_owned()]))
    }

    fn elab_open(&mut self, env: &NlEnv, ty: &LinType) -> Result<Grammar, ElabError> {
        match ty {
            LinType::Char(c) => Ok(expr::chr(*c)),
            LinType::Unit => Ok(expr::eps()),
            LinType::Zero => Ok(expr::bot()),
            LinType::Top => Ok(expr::top()),
            LinType::Tensor(a, b) => Ok(expr::tensor(
                self.elab_open(env, a)?,
                self.elab_open(env, b)?,
            )),
            LinType::LFun(..) | LinType::RFun(..) => Err(ElabError::NonPositive(format!("{ty}"))),
            LinType::Plus(ts) => Ok(expr::plus(
                ts.iter()
                    .map(|t| self.elab_open(env, t))
                    .collect::<Result<_, _>>()?,
            )),
            LinType::With(ts) => Ok(expr::with(
                ts.iter()
                    .map(|t| self.elab_open(env, t))
                    .collect::<Result<_, _>>()?,
            )),
            LinType::BigPlus { var, index, body } => {
                let values = enumerate_type(index, self.nat_bound)
                    .ok_or_else(|| ElabError::NotEnumerable(format!("{index}")))?;
                let mut summands = Vec::with_capacity(values.len());
                for v in values {
                    let mut env2 = env.clone();
                    env2.insert(var.clone(), v);
                    summands.push(self.elab_open(&env2, body)?);
                }
                Ok(expr::plus(summands))
            }
            LinType::BigWith { var, index, body } => {
                let values = enumerate_type(index, self.nat_bound)
                    .ok_or_else(|| ElabError::NotEnumerable(format!("{index}")))?;
                let mut comps = Vec::with_capacity(values.len());
                for v in values {
                    let mut env2 = env.clone();
                    env2.insert(var.clone(), v);
                    comps.push(self.elab_open(&env2, body)?);
                }
                Ok(expr::with(comps))
            }
            LinType::Data { name, args } => {
                let values = args
                    .iter()
                    .map(|a| eval_nl(env, a))
                    .collect::<Result<Vec<_>, _>>()?;
                let idx = self.visit_instance(name, values)?;
                Ok(expr::var(idx))
            }
            LinType::Equalizer { .. } => Err(ElabError::Equalizer),
        }
    }

    fn visit_instance(&mut self, name: &str, values: Vec<Value>) -> Result<usize, ElabError> {
        let key = (name.to_owned(), values.clone());
        if let Some(&idx) = self.instances.get(&key) {
            return Ok(idx);
        }
        let decl = self
            .sig
            .data(name)
            .ok_or_else(|| ElabError::UnknownData(name.to_owned()))?
            .clone();
        let idx = self.defs.len();
        self.instances.insert(key, idx);
        self.defs.push(None);
        self.names.push(format!(
            "{name}({})",
            values
                .iter()
                .map(|v| format!("{v}"))
                .collect::<Vec<_>>()
                .join(",")
        ));
        self.layouts.push(InstanceLayout {
            summands: Vec::new(),
        });
        // Build the body: one summand per (ctor, nl_args values) whose
        // result indices evaluate to this instance's values.
        let mut summands = Vec::new();
        let mut layout = Vec::new();
        for (ci, ctor) in decl.ctors.iter().enumerate() {
            for nl_values in self.enumerate_ctor_args(ctor)? {
                let mut env = NlEnv::new();
                for ((arg_name, _), v) in ctor.nl_args.iter().zip(&nl_values) {
                    env.insert(arg_name.clone(), v.clone());
                }
                let result: Vec<Value> = ctor
                    .result_indices
                    .iter()
                    .map(|ix| eval_nl(&env, ix))
                    .collect::<Result<_, _>>()?;
                if result != values {
                    continue;
                }
                let args: Vec<Grammar> = ctor
                    .lin_args
                    .iter()
                    .map(|t| self.elab_open(&env, t))
                    .collect::<Result<_, _>>()?;
                summands.push(expr::seq(args));
                layout.push((ci, nl_values.clone()));
            }
        }
        self.defs[idx] = Some(expr::plus(summands));
        self.layouts[idx] = InstanceLayout { summands: layout };
        Ok(idx)
    }

    fn enumerate_ctor_args(&self, ctor: &CtorDecl) -> Result<Vec<Vec<Value>>, ElabError> {
        ctor_arg_combos(ctor, self.nat_bound)
    }
}

/// All assignments of values to a constructor's non-linear arguments
/// (cartesian product of the enumerated argument types).
pub fn ctor_arg_combos(ctor: &CtorDecl, nat_bound: u64) -> Result<Vec<Vec<Value>>, ElabError> {
    let mut combos: Vec<Vec<Value>> = vec![Vec::new()];
    for (_, ty) in &ctor.nl_args {
        let values = enumerate_type(ty, nat_bound)
            .ok_or_else(|| ElabError::NotEnumerable(format!("{ty}")))?;
        let mut next = Vec::new();
        for combo in &combos {
            for v in &values {
                let mut c = combo.clone();
                c.push(v.clone());
                next.push(c);
            }
        }
        combos = next;
    }
    Ok(combos)
}

/// Computes the summand layout of one data instance without building the
/// grammar: in summand order, which `(ctor index, nl-arg values)` target
/// the given index values.
///
/// # Errors
///
/// Returns an [`ElabError`] for unknown families or non-enumerable
/// argument types.
pub fn instance_layout(
    sig: &Signature,
    data: &str,
    values: &[Value],
    nat_bound: u64,
) -> Result<InstanceLayout, ElabError> {
    let decl = sig
        .data(data)
        .ok_or_else(|| ElabError::UnknownData(data.to_owned()))?;
    let mut summands = Vec::new();
    for (ci, ctor) in decl.ctors.iter().enumerate() {
        for nl_values in ctor_arg_combos(ctor, nat_bound)? {
            let mut env = NlEnv::new();
            for ((arg_name, _), v) in ctor.nl_args.iter().zip(&nl_values) {
                env.insert(arg_name.clone(), v.clone());
            }
            let result: Vec<Value> = ctor
                .result_indices
                .iter()
                .map(|ix| eval_nl(&env, ix))
                .collect::<Result<_, _>>()?;
            if result == values {
                summands.push((ci, nl_values));
            }
        }
    }
    Ok(InstanceLayout { summands })
}

/// Replaces free `Var(i)` references (instance indices) by `μ` entries of
/// the finished system.
fn close(g: &Grammar, system: &Arc<MuSystem>) -> Grammar {
    match &**g {
        GrammarExpr::Var(i) => expr::mu(system.clone(), *i),
        GrammarExpr::Tensor(l, r) => expr::tensor(close(l, system), close(r, system)),
        GrammarExpr::Plus(gs) => expr::plus(gs.iter().map(|g| close(g, system)).collect()),
        GrammarExpr::With(gs) => expr::with(gs.iter().map(|g| close(g, system)).collect()),
        GrammarExpr::Char(_)
        | GrammarExpr::Eps
        | GrammarExpr::Bot
        | GrammarExpr::Top
        | GrammarExpr::Mu { .. } => g.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::grammar::compile::CompiledGrammar;
    use crate::syntax::nonlinear::{NlTerm, NlType};
    use crate::syntax::types::DataDecl;

    fn chr_t(name: &str) -> LinType {
        LinType::Char(Alphabet::abc().symbol(name).unwrap())
    }

    fn star_sig() -> Signature {
        let mut sig = Signature::new();
        sig.declare_data(DataDecl {
            name: "Star".to_owned(),
            index_telescope: vec![],
            ctors: vec![
                CtorDecl {
                    name: "nil".to_owned(),
                    nl_args: vec![],
                    lin_args: vec![],
                    result_indices: vec![],
                },
                CtorDecl {
                    name: "cons".to_owned(),
                    nl_args: vec![],
                    lin_args: vec![chr_t("a"), LinType::data("Star")],
                    result_indices: vec![],
                },
            ],
        })
        .unwrap();
        sig
    }

    #[test]
    fn fig2_star_elaborates_to_kleene_star() {
        let sig = star_sig();
        let mut el = Elaborator::new(&sig, 8);
        let g = el.elaborate(&NlEnv::new(), &LinType::data("Star")).unwrap();
        let cg = CompiledGrammar::new(&g);
        let s = Alphabet::abc();
        for n in 0..5 {
            assert!(
                cg.recognizes(&s.parse_str(&"a".repeat(n)).unwrap()),
                "a^{n}"
            );
        }
        assert!(!cg.recognizes(&s.parse_str("ab").unwrap()));
    }

    #[test]
    fn fig5_trace_family_elaborates() {
        // The Fig. 5 NFA trace type as a data declaration over Fin 3.
        let s = Alphabet::abc();
        let (a, b, c) = (
            s.symbol("a").unwrap(),
            s.symbol("b").unwrap(),
            s.symbol("c").unwrap(),
        );
        let fin = |v: usize| NlTerm::FinLit {
            value: v,
            modulus: 3,
        };
        let tr = |v: usize| LinType::Data {
            name: "Trace".to_owned(),
            args: vec![fin(v)],
        };
        let mut sig = Signature::new();
        sig.declare_data(DataDecl {
            name: "Trace".to_owned(),
            index_telescope: vec![("s".to_owned(), NlType::Fin(3))],
            ctors: vec![
                CtorDecl {
                    name: "stop".to_owned(),
                    nl_args: vec![],
                    lin_args: vec![],
                    result_indices: vec![fin(2)],
                },
                CtorDecl {
                    name: "1to1".to_owned(),
                    nl_args: vec![],
                    lin_args: vec![LinType::Char(a), tr(1)],
                    result_indices: vec![fin(1)],
                },
                CtorDecl {
                    name: "1to2".to_owned(),
                    nl_args: vec![],
                    lin_args: vec![LinType::Char(b), tr(2)],
                    result_indices: vec![fin(1)],
                },
                CtorDecl {
                    name: "0to2".to_owned(),
                    nl_args: vec![],
                    lin_args: vec![LinType::Char(c), tr(2)],
                    result_indices: vec![fin(0)],
                },
                CtorDecl {
                    name: "0to1".to_owned(),
                    nl_args: vec![],
                    lin_args: vec![tr(1)],
                    result_indices: vec![fin(0)],
                },
            ],
        })
        .unwrap();
        let mut el = Elaborator::new(&sig, 4);
        let g = el.elaborate(&NlEnv::new(), &tr(0)).unwrap();
        let cg = CompiledGrammar::new(&g);
        // Language of Trace 0 = ('a'* 'b') | 'c' — Fig. 5's regex.
        for yes in ["b", "ab", "aab", "c"] {
            assert!(cg.recognizes(&s.parse_str(yes).unwrap()), "{yes}");
        }
        for no in ["", "a", "ba", "cc"] {
            assert!(!cg.recognizes(&s.parse_str(no).unwrap()), "{no}");
        }
    }

    #[test]
    fn big_plus_enumerates_bool() {
        // ⊕[b : Bool] (if b then 'a' else 'b') … via Data-free body:
        // use With/Plus of chars through substitution-free bodies.
        let sig = Signature::new();
        let mut el = Elaborator::new(&sig, 4);
        // ⊕[x : Fin 2] 'a' — two copies of 'a' (deliberately ambiguous).
        let ty = LinType::BigPlus {
            var: "x".to_owned(),
            index: Arc::new(NlType::Fin(2)),
            body: Arc::new(chr_t("a")),
        };
        let g = el.elaborate(&NlEnv::new(), &ty).unwrap();
        let cg = CompiledGrammar::new(&g);
        let s = Alphabet::abc();
        let amb = cg.count_parses(&s.parse_str("a").unwrap(), 8);
        assert_eq!(amb.count, 2);
    }

    #[test]
    fn functions_do_not_elaborate() {
        let sig = Signature::new();
        let mut el = Elaborator::new(&sig, 4);
        let ty = LinType::lfun(chr_t("a"), chr_t("b"));
        assert!(matches!(
            el.elaborate(&NlEnv::new(), &ty),
            Err(ElabError::NonPositive(_))
        ));
    }
}
