//! Evaluation: well-typed linear terms as parse transformers (§5.2).
//!
//! The evaluator interprets a linear term in an environment binding its
//! linear variables to *parse values*. Running a closed term of type
//! `A ⊸ B` on a parse of `A` yields a parse of `B` **over the same
//! string** — the denotational content of intrinsic verification, which
//! [`transformer_of`] packages as a checked
//! [`Transformer`].
//!
//! Evaluation values ([`LinValue`]) are structural: data-constructor
//! values remember their family, constructor and index values, so `fold`
//! (Fig. 10) evaluates by structural recursion, and conversion to and
//! from denotational [`ParseTree`]s ([`Evaluator::reify_value`] /
//! [`Evaluator::internalize`]) goes through the instance layouts of
//! [`elaborate`].

pub mod elaborate;
pub mod equality;

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

use crate::alphabet::GString;
use crate::grammar::parse_tree::ParseTree;
use crate::syntax::nonlinear::{eval_nl, NlEnv, NlError, Value};
use crate::syntax::terms::LinTerm;
use crate::syntax::types::{LinType, Signature};
use crate::transform::{TransformError, Transformer};

use elaborate::{instance_layout, ElabError, Elaborator};

/// A runtime linear value.
#[derive(Debug, Clone)]
pub enum LinValue {
    /// Parse of a literal.
    Char(crate::alphabet::Symbol),
    /// Parse of `I`.
    Unit,
    /// Parse of `⊗`.
    Pair(Box<LinValue>, Box<LinValue>),
    /// Parse of a finite `⊕`.
    Inj {
        /// Summand index.
        index: usize,
        /// Payload.
        value: Box<LinValue>,
    },
    /// Parse of an indexed `⊕`, tagged with the index value.
    BigInj {
        /// The non-linear tag.
        tag: Value,
        /// Payload.
        value: Box<LinValue>,
    },
    /// Parse of a finite `&`.
    Tuple(Vec<LinValue>),
    /// Parse of `⊤`.
    Top(GString),
    /// A data-constructor value.
    Data {
        /// Family name.
        data: String,
        /// The instance's index values.
        indices: Vec<Value>,
        /// Constructor position in the declaration.
        ctor: usize,
        /// The constructor's non-linear arguments.
        nl_args: Vec<Value>,
        /// The constructor's linear arguments.
        args: Vec<LinValue>,
    },
    /// A `λ⊸` closure.
    Fun {
        /// Bound variable.
        var: String,
        /// Body.
        body: Arc<LinTerm>,
        /// Captured environment.
        env: EvalEnv,
    },
    /// A `λ⟜` closure.
    FunL {
        /// Bound variable.
        var: String,
        /// Body.
        body: Arc<LinTerm>,
        /// Captured environment.
        env: EvalEnv,
    },
    /// A `λ&` closure over an index.
    Fam {
        /// Bound non-linear variable.
        var: String,
        /// Body.
        body: Arc<LinTerm>,
        /// Captured environment.
        env: EvalEnv,
    },
}

impl LinValue {
    /// The yield: the string this value is a parse of. Function values
    /// control no resources (they are resource-free), yielding `ε`.
    pub fn flatten(&self) -> GString {
        let mut out = GString::new();
        self.flatten_into(&mut out);
        out
    }

    fn flatten_into(&self, out: &mut GString) {
        match self {
            LinValue::Char(c) => out.push(*c),
            LinValue::Unit
            | LinValue::Fun { .. }
            | LinValue::FunL { .. }
            | LinValue::Fam { .. } => {}
            LinValue::Pair(l, r) => {
                l.flatten_into(out);
                r.flatten_into(out);
            }
            LinValue::Inj { value, .. } | LinValue::BigInj { value, .. } => value.flatten_into(out),
            LinValue::Tuple(vs) => {
                if let Some(v) = vs.first() {
                    v.flatten_into(out);
                }
            }
            LinValue::Top(w) => out.extend(w.iter()),
            LinValue::Data { args, .. } => {
                for a in args {
                    a.flatten_into(out);
                }
            }
        }
    }

    /// Structural equality, with closures never equal (used by the
    /// equalizer's dynamic check).
    pub fn structurally_equal(&self, other: &LinValue) -> bool {
        match (self, other) {
            (LinValue::Char(a), LinValue::Char(b)) => a == b,
            (LinValue::Unit, LinValue::Unit) => true,
            (LinValue::Pair(a1, b1), LinValue::Pair(a2, b2)) => {
                a1.structurally_equal(a2) && b1.structurally_equal(b2)
            }
            (
                LinValue::Inj {
                    index: i1,
                    value: v1,
                },
                LinValue::Inj {
                    index: i2,
                    value: v2,
                },
            ) => i1 == i2 && v1.structurally_equal(v2),
            (LinValue::BigInj { tag: t1, value: v1 }, LinValue::BigInj { tag: t2, value: v2 }) => {
                t1 == t2 && v1.structurally_equal(v2)
            }
            (LinValue::Tuple(a), LinValue::Tuple(b)) => {
                a.len() == b.len() && a.iter().zip(b).all(|(x, y)| x.structurally_equal(y))
            }
            (LinValue::Top(a), LinValue::Top(b)) => a == b,
            (
                LinValue::Data {
                    data: d1,
                    indices: i1,
                    ctor: c1,
                    nl_args: n1,
                    args: a1,
                },
                LinValue::Data {
                    data: d2,
                    indices: i2,
                    ctor: c2,
                    nl_args: n2,
                    args: a2,
                },
            ) => {
                d1 == d2
                    && i1 == i2
                    && c1 == c2
                    && n1 == n2
                    && a1.len() == a2.len()
                    && a1.iter().zip(a2).all(|(x, y)| x.structurally_equal(y))
            }
            _ => false,
        }
    }
}

impl fmt::Display for LinValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinValue::Char(c) => write!(f, "'{}'", c.index()),
            LinValue::Unit => write!(f, "()"),
            LinValue::Pair(l, r) => write!(f, "({l}, {r})"),
            LinValue::Inj { index, value } => write!(f, "σ{index} {value}"),
            LinValue::BigInj { tag, value } => write!(f, "σ[{tag}] {value}"),
            LinValue::Tuple(vs) => {
                write!(f, "⟨")?;
                for (i, v) in vs.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{v}")?;
                }
                write!(f, "⟩")
            }
            LinValue::Top(w) => write!(f, "⊤{w}"),
            LinValue::Data {
                data, ctor, args, ..
            } => {
                write!(f, "{data}#{ctor}")?;
                for a in args {
                    write!(f, " {a}")?;
                }
                Ok(())
            }
            LinValue::Fun { var, .. } => write!(f, "λ⊸{var}.…"),
            LinValue::FunL { var, .. } => write!(f, "λ⟜{var}.…"),
            LinValue::Fam { var, .. } => write!(f, "λ&{var}.…"),
        }
    }
}

/// The evaluation environment: non-linear values plus linear values.
#[derive(Debug, Clone, Default)]
pub struct EvalEnv {
    /// Non-linear bindings.
    pub nl: NlEnv,
    /// Linear bindings (linearity was already enforced by the checker;
    /// the evaluator just looks names up).
    pub lin: HashMap<String, LinValue>,
}

/// Evaluation errors.
#[derive(Debug, Clone)]
pub enum EvalError {
    /// Unbound variable (indicates an unchecked term).
    Unbound(String),
    /// A value had the wrong shape (indicates an unchecked term).
    Shape(String),
    /// Non-linear evaluation failed.
    Nl(NlError),
    /// Elaboration/layout failure.
    Elab(ElabError),
    /// The equalizer's semantic side condition failed: `f e ≠ g e`.
    EqualizerViolated(String),
    /// Unknown global/data/constructor.
    Unknown(String),
}

impl fmt::Display for EvalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EvalError::Unbound(x) => write!(f, "unbound variable {x} at runtime"),
            EvalError::Shape(m) => write!(f, "value shape error: {m}"),
            EvalError::Nl(e) => write!(f, "{e}"),
            EvalError::Elab(e) => write!(f, "{e}"),
            EvalError::EqualizerViolated(m) => write!(f, "equalizer equation violated: {m}"),
            EvalError::Unknown(n) => write!(f, "unknown name {n}"),
        }
    }
}

impl std::error::Error for EvalError {}

impl From<NlError> for EvalError {
    fn from(e: NlError) -> EvalError {
        EvalError::Nl(e)
    }
}

impl From<ElabError> for EvalError {
    fn from(e: ElabError) -> EvalError {
        EvalError::Elab(e)
    }
}

/// The evaluator.
#[derive(Debug)]
pub struct Evaluator<'a> {
    sig: &'a Signature,
    nat_bound: u64,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator; `nat_bound` truncates `Nat` index
    /// enumerations during reification (see DESIGN.md §2).
    pub fn new(sig: &'a Signature, nat_bound: u64) -> Evaluator<'a> {
        Evaluator { sig, nat_bound }
    }

    /// Evaluates a term in an environment.
    ///
    /// # Errors
    ///
    /// Returns an [`EvalError`]; none occur on checker-accepted terms in
    /// well-typed environments, except
    /// [`EvalError::EqualizerViolated`], which is the equalizer's
    /// semantic side-condition check.
    pub fn eval(&self, env: &EvalEnv, term: &LinTerm) -> Result<LinValue, EvalError> {
        match term {
            LinTerm::Var(x) => env
                .lin
                .get(x)
                .cloned()
                .ok_or_else(|| EvalError::Unbound(x.clone())),
            LinTerm::Global(g) => {
                let def = self
                    .sig
                    .def(g)
                    .ok_or_else(|| EvalError::Unknown(g.clone()))?;
                self.eval(&EvalEnv::default(), &def.body)
            }
            LinTerm::UnitIntro => Ok(LinValue::Unit),
            LinTerm::LetUnit { scrutinee, body } => match self.eval(env, scrutinee)? {
                LinValue::Unit => self.eval(env, body),
                other => Err(EvalError::Shape(format!("let () on {other}"))),
            },
            LinTerm::Pair(l, r) => Ok(LinValue::Pair(
                Box::new(self.eval(env, l)?),
                Box::new(self.eval(env, r)?),
            )),
            LinTerm::LetPair {
                scrutinee,
                left,
                right,
                body,
            } => match self.eval(env, scrutinee)? {
                LinValue::Pair(a, b) => {
                    let mut env2 = env.clone();
                    env2.lin.insert(left.clone(), *a);
                    env2.lin.insert(right.clone(), *b);
                    self.eval(&env2, body)
                }
                other => Err(EvalError::Shape(format!("let (a,b) on {other}"))),
            },
            LinTerm::Lam { var, body, .. } => Ok(LinValue::Fun {
                var: var.clone(),
                body: body.clone(),
                env: env.clone(),
            }),
            LinTerm::App(f, x) => {
                let fv = self.eval(env, f)?;
                let xv = self.eval(env, x)?;
                self.apply(fv, xv)
            }
            LinTerm::LamL { var, body, .. } => Ok(LinValue::FunL {
                var: var.clone(),
                body: body.clone(),
                env: env.clone(),
            }),
            LinTerm::AppL { arg, fun } => {
                let av = self.eval(env, arg)?;
                match self.eval(env, fun)? {
                    LinValue::FunL { var, body, env } => {
                        let mut env2 = env.clone();
                        env2.lin.insert(var, av);
                        self.eval(&env2, &body)
                    }
                    other => Err(EvalError::Shape(format!("⟜-applying {other}"))),
                }
            }
            LinTerm::Inj { index, body, .. } => Ok(LinValue::Inj {
                index: *index,
                value: Box::new(self.eval(env, body)?),
            }),
            LinTerm::Case {
                scrutinee,
                branches,
            } => match self.eval(env, scrutinee)? {
                LinValue::Inj { index, value } => {
                    let (v, b) = branches
                        .get(index)
                        .ok_or_else(|| EvalError::Shape(format!("case σ{index} out of range")))?;
                    let mut env2 = env.clone();
                    env2.lin.insert(v.clone(), *value);
                    self.eval(&env2, b)
                }
                other => Err(EvalError::Shape(format!("case on {other}"))),
            },
            LinTerm::BigInj { index, body } => Ok(LinValue::BigInj {
                tag: eval_nl(&env.nl, index)?,
                value: Box::new(self.eval(env, body)?),
            }),
            LinTerm::LetBigInj {
                scrutinee,
                nl_var,
                var,
                body,
            } => match self.eval(env, scrutinee)? {
                LinValue::BigInj { tag, value } => {
                    let mut env2 = env.clone();
                    env2.nl.insert(nl_var.clone(), tag);
                    env2.lin.insert(var.clone(), *value);
                    self.eval(&env2, body)
                }
                other => Err(EvalError::Shape(format!("let σ on {other}"))),
            },
            LinTerm::BigLam { var, body } => Ok(LinValue::Fam {
                var: var.clone(),
                body: body.clone(),
                env: env.clone(),
            }),
            LinTerm::BigProj { scrutinee, index } => {
                let idx = eval_nl(&env.nl, index)?;
                match self.eval(env, scrutinee)? {
                    LinValue::Fam { var, body, env } => {
                        let mut env2 = env.clone();
                        env2.nl.insert(var, idx);
                        self.eval(&env2, &body)
                    }
                    other => Err(EvalError::Shape(format!("π[{idx}] on {other}"))),
                }
            }
            LinTerm::Tuple(ts) => Ok(LinValue::Tuple(
                ts.iter()
                    .map(|t| self.eval(env, t))
                    .collect::<Result<_, _>>()?,
            )),
            LinTerm::Proj { scrutinee, index } => match self.eval(env, scrutinee)? {
                LinValue::Tuple(vs) => vs
                    .get(*index)
                    .cloned()
                    .ok_or_else(|| EvalError::Shape(format!("π{index} out of range"))),
                other => Err(EvalError::Shape(format!("π{index} on {other}"))),
            },
            LinTerm::Ctor {
                data,
                ctor,
                nl_args,
                lin_args,
            } => {
                let decl = self
                    .sig
                    .data(data)
                    .ok_or_else(|| EvalError::Unknown(data.clone()))?;
                let ci = decl
                    .ctors
                    .iter()
                    .position(|c| &c.name == ctor)
                    .ok_or_else(|| EvalError::Unknown(format!("{data}.{ctor}")))?;
                let nl_values: Vec<Value> = nl_args
                    .iter()
                    .map(|a| eval_nl(&env.nl, a))
                    .collect::<Result<_, _>>()?;
                let mut ctor_env = NlEnv::new();
                for ((name, _), v) in decl.ctors[ci].nl_args.iter().zip(&nl_values) {
                    ctor_env.insert(name.clone(), v.clone());
                }
                let indices: Vec<Value> = decl.ctors[ci]
                    .result_indices
                    .iter()
                    .map(|ix| eval_nl(&ctor_env, ix))
                    .collect::<Result<_, _>>()?;
                let args: Vec<LinValue> = lin_args
                    .iter()
                    .map(|a| self.eval(env, a))
                    .collect::<Result<_, _>>()?;
                Ok(LinValue::Data {
                    data: data.clone(),
                    indices,
                    ctor: ci,
                    nl_args: nl_values,
                    args,
                })
            }
            LinTerm::Fold {
                data,
                clauses,
                scrutinee,
                ..
            } => {
                let sv = self.eval(env, scrutinee)?;
                self.fold_value(env, data, clauses, sv)
            }
            LinTerm::EqIntro(e) => {
                let v = self.eval(env, e)?;
                Ok(v)
            }
            LinTerm::EqProj(e) => self.eval(env, e),
        }
    }

    /// Applies a `λ⊸` closure value.
    ///
    /// # Errors
    ///
    /// Returns [`EvalError::Shape`] if `f` is not a function value.
    pub fn apply(&self, f: LinValue, arg: LinValue) -> Result<LinValue, EvalError> {
        match f {
            LinValue::Fun { var, body, env } => {
                let mut env2 = env.clone();
                env2.lin.insert(var, arg);
                self.eval(&env2, &body)
            }
            other => Err(EvalError::Shape(format!("applying {other}"))),
        }
    }

    fn fold_value(
        &self,
        env: &EvalEnv,
        data: &str,
        clauses: &[crate::syntax::terms::FoldClause],
        value: LinValue,
    ) -> Result<LinValue, EvalError> {
        let (ctor, nl_args, args) = match value {
            LinValue::Data {
                data: d,
                ctor,
                nl_args,
                args,
                ..
            } if d == data => (ctor, nl_args, args),
            other => {
                return Err(EvalError::Shape(format!(
                    "fold over {data} applied to {other}"
                )))
            }
        };
        let decl = self
            .sig
            .data(data)
            .ok_or_else(|| EvalError::Unknown(data.to_owned()))?;
        let cdecl = &decl.ctors[ctor];
        let clause = clauses
            .get(ctor)
            .ok_or_else(|| EvalError::Shape(format!("no clause for constructor {ctor}")))?;
        let mut env2 = env.clone();
        for (v, val) in clause.nl_vars.iter().zip(&nl_args) {
            env2.nl.insert(v.clone(), val.clone());
        }
        for ((v, arg), arg_ty) in clause.lin_vars.iter().zip(args).zip(&cdecl.lin_args) {
            // Ind-β: recursive positions are folded before the clause
            // body runs (Fig. 10).
            let bound = match arg_ty {
                LinType::Data { name, .. } if name == data => {
                    self.fold_value(env, data, clauses, arg)?
                }
                _ => arg,
            };
            env2.lin.insert(v.clone(), bound);
        }
        self.eval(&env2, &clause.body)
    }

    /// Converts a runtime value to a denotational parse tree, guided by
    /// its type.
    ///
    /// # Errors
    ///
    /// Fails on function values (no tree form) and enumeration failures.
    pub fn reify_value(&self, value: &LinValue, ty: &LinType) -> Result<ParseTree, EvalError> {
        match (value, ty) {
            (LinValue::Char(c), _) => Ok(ParseTree::Char(*c)),
            (LinValue::Unit, _) => Ok(ParseTree::Unit),
            (LinValue::Top(w), _) => Ok(ParseTree::Top(w.clone())),
            (LinValue::Pair(l, r), LinType::Tensor(a, b)) => Ok(ParseTree::pair(
                self.reify_value(l, a)?,
                self.reify_value(r, b)?,
            )),
            (LinValue::Inj { index, value }, LinType::Plus(ts)) => {
                let t = ts
                    .get(*index)
                    .ok_or_else(|| EvalError::Shape(format!("σ{index} out of range")))?;
                Ok(ParseTree::inj(*index, self.reify_value(value, t)?))
            }
            (LinValue::BigInj { tag, value }, LinType::BigPlus { var, body, .. }) => {
                let pos = value_position(tag).ok_or_else(|| {
                    EvalError::Shape(format!("cannot position index value {tag}"))
                })?;
                let body_ty = crate::syntax::types::subst_lin_type(
                    body,
                    var,
                    &value_to_term(tag)
                        .ok_or_else(|| EvalError::Shape(format!("index {tag} has no term form")))?,
                );
                Ok(ParseTree::inj(pos, self.reify_value(value, &body_ty)?))
            }
            (LinValue::Tuple(vs), LinType::With(ts)) if vs.len() == ts.len() => {
                let trees = vs
                    .iter()
                    .zip(ts)
                    .map(|(v, t)| self.reify_value(v, t))
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(ParseTree::Tuple(trees))
            }
            (
                LinValue::Data {
                    data,
                    indices,
                    ctor,
                    nl_args,
                    args,
                },
                _,
            ) => {
                let layout = instance_layout(self.sig, data, indices, self.nat_bound)?;
                let pos = layout
                    .summands
                    .iter()
                    .position(|(ci, nv)| ci == ctor && nv == nl_args)
                    .ok_or_else(|| {
                        EvalError::Shape(format!("constructor {ctor} not in layout of {data}"))
                    })?;
                let decl = self
                    .sig
                    .data(data)
                    .ok_or_else(|| EvalError::Unknown(data.clone()))?;
                let cdecl = &decl.ctors[*ctor];
                let mut ctor_env = NlEnv::new();
                for ((name, _), v) in cdecl.nl_args.iter().zip(nl_args) {
                    ctor_env.insert(name.clone(), v.clone());
                }
                let arg_trees = args
                    .iter()
                    .zip(&cdecl.lin_args)
                    .map(|(a, t)| {
                        // Indices inside arg types are closed under
                        // ctor_env; reify recursively (type used only for
                        // routing, Data args route through this arm again).
                        let _ = &ctor_env;
                        self.reify_value(a, t)
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                // seq-shaped body: 0 args = Unit, last arg bare.
                let mut iter = arg_trees.into_iter().rev();
                let body = match iter.next() {
                    None => ParseTree::Unit,
                    Some(last) => iter.fold(last, |acc, t| ParseTree::pair(t, acc)),
                };
                Ok(ParseTree::roll(ParseTree::inj(pos, body)))
            }
            (v, t) => Err(EvalError::Shape(format!("cannot reify {v} at type {t}"))),
        }
    }

    /// Converts a denotational parse tree into a runtime value, guided by
    /// its type (the inverse of [`Evaluator::reify_value`] on positive
    /// types).
    ///
    /// # Errors
    ///
    /// Fails if the tree does not match the type.
    pub fn internalize(&self, tree: &ParseTree, ty: &LinType) -> Result<LinValue, EvalError> {
        match (tree, ty) {
            (ParseTree::Char(c), LinType::Char(_)) => Ok(LinValue::Char(*c)),
            (ParseTree::Unit, LinType::Unit) => Ok(LinValue::Unit),
            (ParseTree::Top(w), LinType::Top) => Ok(LinValue::Top(w.clone())),
            (ParseTree::Pair(l, r), LinType::Tensor(a, b)) => Ok(LinValue::Pair(
                Box::new(self.internalize(l, a)?),
                Box::new(self.internalize(r, b)?),
            )),
            (ParseTree::Inj { index, tree }, LinType::Plus(ts)) => {
                let t = ts
                    .get(*index)
                    .ok_or_else(|| EvalError::Shape(format!("σ{index} out of range")))?;
                Ok(LinValue::Inj {
                    index: *index,
                    value: Box::new(self.internalize(tree, t)?),
                })
            }
            (ParseTree::Tuple(ts), LinType::With(tys)) if ts.len() == tys.len() => {
                Ok(LinValue::Tuple(
                    ts.iter()
                        .zip(tys)
                        .map(|(t, ty)| self.internalize(t, ty))
                        .collect::<Result<_, _>>()?,
                ))
            }
            (ParseTree::Roll(inner), LinType::Data { name, args }) => {
                let indices: Vec<Value> = args
                    .iter()
                    .map(|a| eval_nl(&NlEnv::new(), a))
                    .collect::<Result<_, _>>()?;
                let layout = instance_layout(self.sig, name, &indices, self.nat_bound)?;
                let (pos, payload) = match &**inner {
                    ParseTree::Inj { index, tree } => (*index, tree),
                    other => {
                        return Err(EvalError::Shape(format!(
                            "data tree must be σ, got {other}"
                        )))
                    }
                };
                let (ci, nl_values) = layout
                    .summands
                    .get(pos)
                    .ok_or_else(|| EvalError::Shape(format!("summand {pos} out of range")))?
                    .clone();
                let decl = self
                    .sig
                    .data(name)
                    .ok_or_else(|| EvalError::Unknown(name.clone()))?;
                let cdecl = &decl.ctors[ci];
                let mut ctor_env = NlEnv::new();
                for ((n, _), v) in cdecl.nl_args.iter().zip(&nl_values) {
                    ctor_env.insert(n.clone(), v.clone());
                }
                // Split the seq-shaped payload into the declared arity.
                let parts = split_seq_tree(payload, cdecl.lin_args.len())?;
                let args = parts
                    .iter()
                    .zip(&cdecl.lin_args)
                    .map(|(p, t)| {
                        let concrete = close_type(t, &ctor_env);
                        self.internalize(p, &concrete)
                    })
                    .collect::<Result<Vec<_>, _>>()?;
                Ok(LinValue::Data {
                    data: name.clone(),
                    indices,
                    ctor: ci,
                    nl_args: nl_values,
                    args,
                })
            }
            (t, ty) => Err(EvalError::Shape(format!("cannot internalize {t} at {ty}"))),
        }
    }
}

/// Substitutes concrete values for the free variables of a type's index
/// expressions (turning an open constructor argument type closed).
fn close_type(ty: &LinType, env: &NlEnv) -> LinType {
    env.iter()
        .fold(ty.clone(), |t, (v, val)| match value_to_term(val) {
            Some(m) => crate::syntax::types::subst_lin_type(&t, v, &m),
            None => t,
        })
}

fn split_seq_tree(tree: &ParseTree, arity: usize) -> Result<Vec<&ParseTree>, EvalError> {
    match arity {
        0 => {
            if matches!(tree, ParseTree::Unit) {
                Ok(Vec::new())
            } else {
                Err(EvalError::Shape(format!("expected (), got {tree}")))
            }
        }
        1 => Ok(vec![tree]),
        _ => match tree {
            ParseTree::Pair(l, r) => {
                let mut rest = split_seq_tree(r, arity - 1)?;
                rest.insert(0, l);
                Ok(rest)
            }
            other => Err(EvalError::Shape(format!("expected a pair, got {other}"))),
        },
    }
}

/// Position of a first-order index value within its type's enumeration.
fn value_position(v: &Value) -> Option<usize> {
    match v {
        Value::Unit => Some(0),
        Value::Bool(b) => Some(usize::from(*b)),
        Value::Nat(n) => Some(*n as usize),
        Value::Fin { value, .. } => Some(*value),
        Value::Pair(..) | Value::Closure { .. } => None,
    }
}

/// The term form of a first-order value (for substitution into types).
fn value_to_term(v: &Value) -> Option<crate::syntax::nonlinear::NlTerm> {
    use crate::syntax::nonlinear::NlTerm;
    match v {
        Value::Unit => Some(NlTerm::UnitVal),
        Value::Bool(b) => Some(NlTerm::BoolLit(*b)),
        Value::Nat(n) => Some(NlTerm::NatLit(*n)),
        Value::Fin { value, modulus } => Some(NlTerm::FinLit {
            value: *value,
            modulus: *modulus,
        }),
        Value::Pair(a, b) => Some(NlTerm::Pair(
            Arc::new(value_to_term(a)?),
            Arc::new(value_to_term(b)?),
        )),
        Value::Closure { .. } => None,
    }
}

/// Packages a closed, checker-accepted term of type `dom ⊸ cod` as a
/// [`Transformer`] over denotational parse trees: the syntax-to-semantics
/// bridge (§5.3). Every application internalizes the input tree,
/// evaluates the term, and reifies the result.
///
/// # Errors
///
/// Returns an [`ElabError`] if the endpoint types do not elaborate.
pub fn transformer_of(
    sig: &Signature,
    name: &str,
    term: &LinTerm,
    dom: &LinType,
    cod: &LinType,
    nat_bound: u64,
) -> Result<Transformer, ElabError> {
    let mut el = Elaborator::new(sig, nat_bound);
    let dom_g = el.elaborate(&NlEnv::new(), dom)?;
    let cod_g = el.elaborate(&NlEnv::new(), cod)?;
    let sig = sig.clone();
    let term = term.clone();
    let dom_ty = dom.clone();
    let cod_ty = cod.clone();
    Ok(Transformer::from_fn(
        name.to_owned(),
        dom_g,
        cod_g,
        move |tree| {
            let ev = Evaluator::new(&sig, nat_bound);
            let input = ev
                .internalize(tree, &dom_ty)
                .map_err(|e| TransformError::Custom(format!("{e}")))?;
            let fun = ev
                .eval(&EvalEnv::default(), &term)
                .map_err(|e| TransformError::Custom(format!("{e}")))?;
            let out = ev
                .apply(fun, input)
                .map_err(|e| TransformError::Custom(format!("{e}")))?;
            ev.reify_value(&out, &cod_ty)
                .map_err(|e| TransformError::Custom(format!("{e}")))
        },
    ))
}
