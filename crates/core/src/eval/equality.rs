//! The equational theory: β-reduction on linear terms (Fig. 22).
//!
//! LambekD's definitional equality includes βη laws for every connective.
//! This module implements capture-avoiding-enough substitution and a
//! normalizer that applies the β rules of Fig. 22 exhaustively; the test
//! suite checks each printed β law on concrete derivations, and the η
//! laws are checked *semantically* (pointwise on parses) by the
//! integration tests, matching their meaning in the model (Appendix B).

use std::sync::Arc;

use crate::syntax::terms::{FoldClause, LinTerm};

/// Substitutes `replacement` for the linear variable `var`.
///
/// Examples in this crate use globally fresh bound names, so shadowing
/// checks suffice (no renaming is performed).
///
/// The traversal is *iterative* (an explicit work stack with an
/// enter/build discipline), so substitution never overflows the thread
/// stack on deeply nested terms — β-reducing a 10k-deep pair chain works
/// in a default test thread. See `deep_nesting.rs` for the regression
/// tests.
pub fn subst_lin(term: &LinTerm, var: &str, replacement: &LinTerm) -> LinTerm {
    /// A unit of work: `Enter` schedules a subterm for substitution,
    /// `Copy` forwards a shadowed `Arc` subterm unchanged, `CopyOwned`
    /// forwards a shadowed inline subterm, and `Build` reassembles a node
    /// from its children's results (which sit on top of `out`, in
    /// child order).
    enum Task<'a> {
        Enter(&'a LinTerm),
        Copy(&'a Arc<LinTerm>),
        CopyOwned(&'a LinTerm),
        Build(&'a LinTerm),
    }

    fn owned(a: Arc<LinTerm>) -> LinTerm {
        Arc::try_unwrap(a).unwrap_or_else(|a| (*a).clone())
    }

    let mut tasks: Vec<Task<'_>> = vec![Task::Enter(term)];
    let mut out: Vec<Arc<LinTerm>> = Vec::new();
    while let Some(task) = tasks.pop() {
        match task {
            Task::Copy(t) => out.push(t.clone()),
            Task::CopyOwned(t) => out.push(Arc::new(t.clone())),
            Task::Enter(t) => match t {
                LinTerm::Var(x) => out.push(Arc::new(if x == var {
                    replacement.clone()
                } else {
                    t.clone()
                })),
                LinTerm::Global(_) | LinTerm::UnitIntro => out.push(Arc::new(t.clone())),
                _ => {
                    tasks.push(Task::Build(t));
                    // Schedule children right-to-left so they are
                    // *processed* (and their results pushed) left-to-right.
                    let mut children: Vec<Task<'_>> = Vec::new();
                    match t {
                        LinTerm::Var(_) | LinTerm::Global(_) | LinTerm::UnitIntro => {
                            unreachable!("leaves handled above")
                        }
                        LinTerm::LetUnit { scrutinee, body } => {
                            children.push(Task::Enter(scrutinee));
                            children.push(Task::Enter(body));
                        }
                        LinTerm::Pair(l, r) => {
                            children.push(Task::Enter(l));
                            children.push(Task::Enter(r));
                        }
                        LinTerm::LetPair {
                            scrutinee,
                            left,
                            right,
                            body,
                        } => {
                            children.push(Task::Enter(scrutinee));
                            children.push(if left == var || right == var {
                                Task::Copy(body)
                            } else {
                                Task::Enter(body)
                            });
                        }
                        LinTerm::Lam { var: v, body, .. } | LinTerm::LamL { var: v, body, .. } => {
                            children.push(if v == var {
                                Task::Copy(body)
                            } else {
                                Task::Enter(body)
                            });
                        }
                        LinTerm::App(f, x) => {
                            children.push(Task::Enter(f));
                            children.push(Task::Enter(x));
                        }
                        LinTerm::AppL { arg, fun } => {
                            children.push(Task::Enter(arg));
                            children.push(Task::Enter(fun));
                        }
                        LinTerm::Inj { body, .. } | LinTerm::BigInj { body, .. } => {
                            children.push(Task::Enter(body));
                        }
                        LinTerm::Case {
                            scrutinee,
                            branches,
                        } => {
                            children.push(Task::Enter(scrutinee));
                            for (v, b) in branches {
                                children.push(if v == var {
                                    Task::CopyOwned(b)
                                } else {
                                    Task::Enter(b)
                                });
                            }
                        }
                        LinTerm::LetBigInj {
                            scrutinee,
                            var: v,
                            body,
                            ..
                        } => {
                            children.push(Task::Enter(scrutinee));
                            children.push(if v == var {
                                Task::Copy(body)
                            } else {
                                Task::Enter(body)
                            });
                        }
                        LinTerm::BigLam { body, .. } => children.push(Task::Enter(body)),
                        LinTerm::BigProj { scrutinee, .. } | LinTerm::Proj { scrutinee, .. } => {
                            children.push(Task::Enter(scrutinee));
                        }
                        LinTerm::Tuple(ts) => {
                            for t in ts {
                                children.push(Task::Enter(t));
                            }
                        }
                        LinTerm::Ctor { lin_args, .. } => {
                            for a in lin_args {
                                children.push(Task::Enter(a));
                            }
                        }
                        LinTerm::Fold {
                            clauses, scrutinee, ..
                        } => {
                            for c in clauses {
                                children.push(if c.lin_vars.iter().any(|v| v == var) {
                                    Task::Copy(&c.body)
                                } else {
                                    Task::Enter(&c.body)
                                });
                            }
                            children.push(Task::Enter(scrutinee));
                        }
                        LinTerm::EqIntro(inner) | LinTerm::EqProj(inner) => {
                            children.push(Task::Enter(inner));
                        }
                    }
                    for c in children.into_iter().rev() {
                        tasks.push(c);
                    }
                }
            },
            Task::Build(t) => {
                let built = match t {
                    LinTerm::Var(_) | LinTerm::Global(_) | LinTerm::UnitIntro => {
                        unreachable!("leaves never schedule a Build")
                    }
                    LinTerm::LetUnit { .. } => {
                        let body = out.pop().expect("body result");
                        let scrutinee = out.pop().expect("scrutinee result");
                        LinTerm::LetUnit { scrutinee, body }
                    }
                    LinTerm::Pair(..) => {
                        let r = out.pop().expect("right result");
                        let l = out.pop().expect("left result");
                        LinTerm::Pair(l, r)
                    }
                    LinTerm::LetPair { left, right, .. } => {
                        let body = out.pop().expect("body result");
                        let scrutinee = out.pop().expect("scrutinee result");
                        LinTerm::LetPair {
                            scrutinee,
                            left: left.clone(),
                            right: right.clone(),
                            body,
                        }
                    }
                    LinTerm::Lam { var: v, dom, .. } => LinTerm::Lam {
                        var: v.clone(),
                        dom: dom.clone(),
                        body: out.pop().expect("body result"),
                    },
                    LinTerm::LamL { var: v, dom, .. } => LinTerm::LamL {
                        var: v.clone(),
                        dom: dom.clone(),
                        body: out.pop().expect("body result"),
                    },
                    LinTerm::App(..) => {
                        let x = out.pop().expect("argument result");
                        let f = out.pop().expect("function result");
                        LinTerm::App(f, x)
                    }
                    LinTerm::AppL { .. } => {
                        let fun = out.pop().expect("function result");
                        let arg = out.pop().expect("argument result");
                        LinTerm::AppL { arg, fun }
                    }
                    LinTerm::Inj { index, arity, .. } => LinTerm::Inj {
                        index: *index,
                        arity: *arity,
                        body: out.pop().expect("body result"),
                    },
                    LinTerm::Case { branches, .. } => {
                        let results = out.split_off(out.len() - branches.len());
                        let scrutinee = out.pop().expect("scrutinee result");
                        LinTerm::Case {
                            scrutinee,
                            branches: branches
                                .iter()
                                .zip(results)
                                .map(|((v, _), b)| (v.clone(), owned(b)))
                                .collect(),
                        }
                    }
                    LinTerm::BigInj { index, .. } => LinTerm::BigInj {
                        index: index.clone(),
                        body: out.pop().expect("body result"),
                    },
                    LinTerm::LetBigInj { nl_var, var: v, .. } => {
                        let body = out.pop().expect("body result");
                        let scrutinee = out.pop().expect("scrutinee result");
                        LinTerm::LetBigInj {
                            scrutinee,
                            nl_var: nl_var.clone(),
                            var: v.clone(),
                            body,
                        }
                    }
                    LinTerm::BigLam { var: v, .. } => LinTerm::BigLam {
                        var: v.clone(),
                        body: out.pop().expect("body result"),
                    },
                    LinTerm::BigProj { index, .. } => LinTerm::BigProj {
                        scrutinee: out.pop().expect("scrutinee result"),
                        index: index.clone(),
                    },
                    LinTerm::Tuple(ts) => {
                        let results = out.split_off(out.len() - ts.len());
                        LinTerm::Tuple(results.into_iter().map(owned).collect())
                    }
                    LinTerm::Proj { index, .. } => LinTerm::Proj {
                        scrutinee: out.pop().expect("scrutinee result"),
                        index: *index,
                    },
                    LinTerm::Ctor {
                        data,
                        ctor,
                        nl_args,
                        lin_args,
                    } => {
                        let results = out.split_off(out.len() - lin_args.len());
                        LinTerm::Ctor {
                            data: data.clone(),
                            ctor: ctor.clone(),
                            nl_args: nl_args.clone(),
                            lin_args: results.into_iter().map(owned).collect(),
                        }
                    }
                    LinTerm::Fold {
                        data,
                        motive,
                        clauses,
                        ..
                    } => {
                        let scrutinee = out.pop().expect("scrutinee result");
                        let results = out.split_off(out.len() - clauses.len());
                        LinTerm::Fold {
                            data: data.clone(),
                            motive: motive.clone(),
                            clauses: clauses
                                .iter()
                                .zip(results)
                                .map(|(c, body)| FoldClause {
                                    nl_vars: c.nl_vars.clone(),
                                    lin_vars: c.lin_vars.clone(),
                                    body,
                                })
                                .collect(),
                            scrutinee,
                        }
                    }
                    LinTerm::EqIntro(_) => LinTerm::EqIntro(out.pop().expect("inner result")),
                    LinTerm::EqProj(_) => LinTerm::EqProj(out.pop().expect("inner result")),
                };
                out.push(Arc::new(built));
            }
        }
    }
    let result = out.pop().expect("root result");
    debug_assert!(out.is_empty(), "all intermediate results consumed");
    owned(result)
}

/// The recursive reference implementation of [`subst_lin`], kept as the
/// executable specification (property tests compare the two) and for
/// callers that know their terms are shallow.
pub fn subst_lin_recursive(term: &LinTerm, var: &str, replacement: &LinTerm) -> LinTerm {
    let s = |t: &LinTerm| subst_lin_recursive(t, var, replacement);
    let sr = |t: &Arc<LinTerm>| Arc::new(subst_lin_recursive(t, var, replacement));
    match term {
        LinTerm::Var(x) => {
            if x == var {
                replacement.clone()
            } else {
                term.clone()
            }
        }
        LinTerm::Global(_) | LinTerm::UnitIntro => term.clone(),
        LinTerm::LetUnit { scrutinee, body } => LinTerm::LetUnit {
            scrutinee: sr(scrutinee),
            body: sr(body),
        },
        LinTerm::Pair(l, r) => LinTerm::Pair(sr(l), sr(r)),
        LinTerm::LetPair {
            scrutinee,
            left,
            right,
            body,
        } => LinTerm::LetPair {
            scrutinee: sr(scrutinee),
            left: left.clone(),
            right: right.clone(),
            body: if left == var || right == var {
                body.clone()
            } else {
                sr(body)
            },
        },
        LinTerm::Lam { var: v, dom, body } => LinTerm::Lam {
            var: v.clone(),
            dom: dom.clone(),
            body: if v == var { body.clone() } else { sr(body) },
        },
        LinTerm::App(f, x) => LinTerm::App(sr(f), sr(x)),
        LinTerm::LamL { var: v, dom, body } => LinTerm::LamL {
            var: v.clone(),
            dom: dom.clone(),
            body: if v == var { body.clone() } else { sr(body) },
        },
        LinTerm::AppL { arg, fun } => LinTerm::AppL {
            arg: sr(arg),
            fun: sr(fun),
        },
        LinTerm::Inj { index, arity, body } => LinTerm::Inj {
            index: *index,
            arity: *arity,
            body: sr(body),
        },
        LinTerm::Case {
            scrutinee,
            branches,
        } => LinTerm::Case {
            scrutinee: sr(scrutinee),
            branches: branches
                .iter()
                .map(|(v, b)| (v.clone(), if v == var { b.clone() } else { s(b) }))
                .collect(),
        },
        LinTerm::BigInj { index, body } => LinTerm::BigInj {
            index: index.clone(),
            body: sr(body),
        },
        LinTerm::LetBigInj {
            scrutinee,
            nl_var,
            var: v,
            body,
        } => LinTerm::LetBigInj {
            scrutinee: sr(scrutinee),
            nl_var: nl_var.clone(),
            var: v.clone(),
            body: if v == var { body.clone() } else { sr(body) },
        },
        LinTerm::BigLam { var: v, body } => LinTerm::BigLam {
            var: v.clone(),
            body: sr(body),
        },
        LinTerm::BigProj { scrutinee, index } => LinTerm::BigProj {
            scrutinee: sr(scrutinee),
            index: index.clone(),
        },
        LinTerm::Tuple(ts) => LinTerm::Tuple(ts.iter().map(s).collect()),
        LinTerm::Proj { scrutinee, index } => LinTerm::Proj {
            scrutinee: sr(scrutinee),
            index: *index,
        },
        LinTerm::Ctor {
            data,
            ctor,
            nl_args,
            lin_args,
        } => LinTerm::Ctor {
            data: data.clone(),
            ctor: ctor.clone(),
            nl_args: nl_args.clone(),
            lin_args: lin_args.iter().map(s).collect(),
        },
        LinTerm::Fold {
            data,
            motive,
            clauses,
            scrutinee,
        } => LinTerm::Fold {
            data: data.clone(),
            motive: motive.clone(),
            clauses: clauses
                .iter()
                .map(|c| FoldClause {
                    nl_vars: c.nl_vars.clone(),
                    lin_vars: c.lin_vars.clone(),
                    body: if c.lin_vars.iter().any(|v| v == var) {
                        c.body.clone()
                    } else {
                        Arc::new(subst_lin_recursive(&c.body, var, replacement))
                    },
                })
                .collect(),
            scrutinee: sr(scrutinee),
        },
        LinTerm::EqIntro(t) => LinTerm::EqIntro(sr(t)),
        LinTerm::EqProj(t) => LinTerm::EqProj(sr(t)),
    }
}

/// One β step at the root, if any (the redexes of Fig. 22).
fn step_root(term: &LinTerm) -> Option<LinTerm> {
    match term {
        // (λ⊸ a. e) e'  ≡  e{e'/a}
        LinTerm::App(f, x) => match &**f {
            LinTerm::Lam { var, body, .. } => Some(subst_lin(body, var, x)),
            _ => None,
        },
        // (λ⟜ a. e) ⟜ e'  ≡  e{e'/a}
        LinTerm::AppL { arg, fun } => match &**fun {
            LinTerm::LamL { var, body, .. } => Some(subst_lin(body, var, arg)),
            _ => None,
        },
        // let () = () in e  ≡  e
        LinTerm::LetUnit { scrutinee, body } => match &**scrutinee {
            LinTerm::UnitIntro => Some((**body).clone()),
            _ => None,
        },
        // let (a,b) = (e,e') in e''  ≡  e''{e/a, e'/b}
        LinTerm::LetPair {
            scrutinee,
            left,
            right,
            body,
        } => match &**scrutinee {
            LinTerm::Pair(l, r) => Some(subst_lin(&subst_lin(body, left, l), right, r)),
            _ => None,
        },
        // case (σi e) of …  ≡  branch_i{e/v}
        LinTerm::Case {
            scrutinee,
            branches,
        } => match &**scrutinee {
            LinTerm::Inj { index, body, .. } => {
                branches.get(*index).map(|(v, b)| subst_lin(b, v, body))
            }
            _ => None,
        },
        // let σ x a = σ M e in e'  ≡  e'{M/x, e/a}
        LinTerm::LetBigInj {
            scrutinee,
            nl_var,
            var,
            body,
        } => match &**scrutinee {
            LinTerm::BigInj {
                index,
                body: payload,
            } => {
                let with_payload = subst_lin(body, var, payload);
                Some(subst_nl_in_lin(&with_payload, nl_var, index))
            }
            _ => None,
        },
        // (λ& x. e).π M  ≡  e{M/x}   and   ⟨…⟩.π i  ≡  component i
        LinTerm::BigProj { scrutinee, index } => match &**scrutinee {
            LinTerm::BigLam { var, body } => Some(subst_nl_in_lin(body, var, index)),
            _ => None,
        },
        LinTerm::Proj { scrutinee, index } => match &**scrutinee {
            LinTerm::Tuple(ts) => ts.get(*index).cloned(),
            _ => None,
        },
        // ⟨e⟩.π ≡ e
        LinTerm::EqProj(inner) => match &**inner {
            LinTerm::EqIntro(e) => Some((**e).clone()),
            _ => None,
        },
        _ => None,
    }
}

/// Substitutes a non-linear term into the index positions of a linear
/// term.
pub fn subst_nl_in_lin(
    term: &LinTerm,
    var: &str,
    replacement: &crate::syntax::nonlinear::NlTerm,
) -> LinTerm {
    use crate::syntax::nonlinear::subst_nl;
    let s = |t: &LinTerm| subst_nl_in_lin(t, var, replacement);
    let sr = |t: &Arc<LinTerm>| Arc::new(subst_nl_in_lin(t, var, replacement));
    match term {
        LinTerm::Var(_) | LinTerm::Global(_) | LinTerm::UnitIntro => term.clone(),
        LinTerm::LetUnit { scrutinee, body } => LinTerm::LetUnit {
            scrutinee: sr(scrutinee),
            body: sr(body),
        },
        LinTerm::Pair(l, r) => LinTerm::Pair(sr(l), sr(r)),
        LinTerm::LetPair {
            scrutinee,
            left,
            right,
            body,
        } => LinTerm::LetPair {
            scrutinee: sr(scrutinee),
            left: left.clone(),
            right: right.clone(),
            body: sr(body),
        },
        LinTerm::Lam { var: v, dom, body } => LinTerm::Lam {
            var: v.clone(),
            dom: Arc::new(crate::syntax::types::subst_lin_type(dom, var, replacement)),
            body: sr(body),
        },
        LinTerm::App(f, x) => LinTerm::App(sr(f), sr(x)),
        LinTerm::LamL { var: v, dom, body } => LinTerm::LamL {
            var: v.clone(),
            dom: Arc::new(crate::syntax::types::subst_lin_type(dom, var, replacement)),
            body: sr(body),
        },
        LinTerm::AppL { arg, fun } => LinTerm::AppL {
            arg: sr(arg),
            fun: sr(fun),
        },
        LinTerm::Inj { index, arity, body } => LinTerm::Inj {
            index: *index,
            arity: *arity,
            body: sr(body),
        },
        LinTerm::Case {
            scrutinee,
            branches,
        } => LinTerm::Case {
            scrutinee: sr(scrutinee),
            branches: branches.iter().map(|(v, b)| (v.clone(), s(b))).collect(),
        },
        LinTerm::BigInj { index, body } => LinTerm::BigInj {
            index: subst_nl(index, var, replacement),
            body: sr(body),
        },
        LinTerm::LetBigInj {
            scrutinee,
            nl_var,
            var: v,
            body,
        } => LinTerm::LetBigInj {
            scrutinee: sr(scrutinee),
            nl_var: nl_var.clone(),
            var: v.clone(),
            body: if nl_var == var {
                body.clone()
            } else {
                sr(body)
            },
        },
        LinTerm::BigLam { var: v, body } => LinTerm::BigLam {
            var: v.clone(),
            body: if v == var { body.clone() } else { sr(body) },
        },
        LinTerm::BigProj { scrutinee, index } => LinTerm::BigProj {
            scrutinee: sr(scrutinee),
            index: subst_nl(index, var, replacement),
        },
        LinTerm::Tuple(ts) => LinTerm::Tuple(ts.iter().map(s).collect()),
        LinTerm::Proj { scrutinee, index } => LinTerm::Proj {
            scrutinee: sr(scrutinee),
            index: *index,
        },
        LinTerm::Ctor {
            data,
            ctor,
            nl_args,
            lin_args,
        } => LinTerm::Ctor {
            data: data.clone(),
            ctor: ctor.clone(),
            nl_args: nl_args
                .iter()
                .map(|a| subst_nl(a, var, replacement))
                .collect(),
            lin_args: lin_args.iter().map(s).collect(),
        },
        LinTerm::Fold {
            data,
            motive,
            clauses,
            scrutinee,
        } => LinTerm::Fold {
            data: data.clone(),
            motive: Arc::new(crate::syntax::types::subst_lin_type(
                motive,
                var,
                replacement,
            )),
            clauses: clauses
                .iter()
                .map(|c| FoldClause {
                    nl_vars: c.nl_vars.clone(),
                    lin_vars: c.lin_vars.clone(),
                    body: if c.nl_vars.iter().any(|v| v == var) {
                        c.body.clone()
                    } else {
                        Arc::new(subst_nl_in_lin(&c.body, var, replacement))
                    },
                })
                .collect(),
            scrutinee: sr(scrutinee),
        },
        LinTerm::EqIntro(t) => LinTerm::EqIntro(sr(t)),
        LinTerm::EqProj(t) => LinTerm::EqProj(sr(t)),
    }
}

/// β-normalizes a term: applies the Fig. 22 redexes anywhere in the term
/// until none remain. Terminates on checker-accepted terms (linear terms
/// duplicate nothing, so reduction strictly shrinks resource usage).
pub fn beta_normalize(term: &LinTerm) -> LinTerm {
    let mut current = term.clone();
    let mut fuel = 100_000;
    loop {
        let (next, changed) = step_anywhere(&current);
        if !changed {
            return next;
        }
        current = next;
        fuel -= 1;
        assert!(fuel > 0, "β-normalization diverged (unchecked term?)");
    }
}

fn step_anywhere(term: &LinTerm) -> (LinTerm, bool) {
    if let Some(next) = step_root(term) {
        return (next, true);
    }
    // Reduce the leftmost-outermost redex in subterms.
    macro_rules! descend1 {
        ($wrap:expr, $t:expr) => {{
            let (t, c) = step_anywhere($t);
            ($wrap(Arc::new(t)), c)
        }};
    }
    match term {
        LinTerm::Var(_) | LinTerm::Global(_) | LinTerm::UnitIntro => (term.clone(), false),
        LinTerm::Pair(l, r) => {
            let (ln, c) = step_anywhere(l);
            if c {
                return (LinTerm::Pair(Arc::new(ln), r.clone()), true);
            }
            let (rn, c) = step_anywhere(r);
            (LinTerm::Pair(l.clone(), Arc::new(rn)), c)
        }
        LinTerm::App(f, x) => {
            let (fn_, c) = step_anywhere(f);
            if c {
                return (LinTerm::App(Arc::new(fn_), x.clone()), true);
            }
            let (xn, c) = step_anywhere(x);
            (LinTerm::App(f.clone(), Arc::new(xn)), c)
        }
        LinTerm::AppL { arg, fun } => {
            let (an, c) = step_anywhere(arg);
            if c {
                return (
                    LinTerm::AppL {
                        arg: Arc::new(an),
                        fun: fun.clone(),
                    },
                    true,
                );
            }
            let (fn_, c) = step_anywhere(fun);
            (
                LinTerm::AppL {
                    arg: arg.clone(),
                    fun: Arc::new(fn_),
                },
                c,
            )
        }
        LinTerm::Lam { var, dom, body } => {
            let (b, c) = step_anywhere(body);
            (
                LinTerm::Lam {
                    var: var.clone(),
                    dom: dom.clone(),
                    body: Arc::new(b),
                },
                c,
            )
        }
        LinTerm::LamL { var, dom, body } => {
            let (b, c) = step_anywhere(body);
            (
                LinTerm::LamL {
                    var: var.clone(),
                    dom: dom.clone(),
                    body: Arc::new(b),
                },
                c,
            )
        }
        LinTerm::LetUnit { scrutinee, body } => {
            let (s, c) = step_anywhere(scrutinee);
            if c {
                return (
                    LinTerm::LetUnit {
                        scrutinee: Arc::new(s),
                        body: body.clone(),
                    },
                    true,
                );
            }
            let (b, c) = step_anywhere(body);
            (
                LinTerm::LetUnit {
                    scrutinee: scrutinee.clone(),
                    body: Arc::new(b),
                },
                c,
            )
        }
        LinTerm::LetPair {
            scrutinee,
            left,
            right,
            body,
        } => {
            let (s, c) = step_anywhere(scrutinee);
            if c {
                return (
                    LinTerm::LetPair {
                        scrutinee: Arc::new(s),
                        left: left.clone(),
                        right: right.clone(),
                        body: body.clone(),
                    },
                    true,
                );
            }
            let (b, c) = step_anywhere(body);
            (
                LinTerm::LetPair {
                    scrutinee: scrutinee.clone(),
                    left: left.clone(),
                    right: right.clone(),
                    body: Arc::new(b),
                },
                c,
            )
        }
        LinTerm::Inj { index, arity, body } => {
            let (b, c) = step_anywhere(body);
            (LinTerm::inj(*index, *arity, b), c)
        }
        LinTerm::Case {
            scrutinee,
            branches,
        } => {
            let (s, c) = step_anywhere(scrutinee);
            if c {
                return (
                    LinTerm::Case {
                        scrutinee: Arc::new(s),
                        branches: branches.clone(),
                    },
                    true,
                );
            }
            let mut new_branches = branches.clone();
            for (i, (v, b)) in branches.iter().enumerate() {
                let (bn, c) = step_anywhere(b);
                if c {
                    new_branches[i] = (v.clone(), bn);
                    return (
                        LinTerm::Case {
                            scrutinee: scrutinee.clone(),
                            branches: new_branches,
                        },
                        true,
                    );
                }
            }
            (term.clone(), false)
        }
        LinTerm::BigInj { index, body } => {
            let (b, c) = step_anywhere(body);
            (
                LinTerm::BigInj {
                    index: index.clone(),
                    body: Arc::new(b),
                },
                c,
            )
        }
        LinTerm::LetBigInj {
            scrutinee,
            nl_var,
            var,
            body,
        } => {
            let (s, c) = step_anywhere(scrutinee);
            if c {
                return (
                    LinTerm::LetBigInj {
                        scrutinee: Arc::new(s),
                        nl_var: nl_var.clone(),
                        var: var.clone(),
                        body: body.clone(),
                    },
                    true,
                );
            }
            let (b, c) = step_anywhere(body);
            (
                LinTerm::LetBigInj {
                    scrutinee: scrutinee.clone(),
                    nl_var: nl_var.clone(),
                    var: var.clone(),
                    body: Arc::new(b),
                },
                c,
            )
        }
        LinTerm::BigLam { var, body } => {
            let (b, c) = step_anywhere(body);
            (
                LinTerm::BigLam {
                    var: var.clone(),
                    body: Arc::new(b),
                },
                c,
            )
        }
        LinTerm::BigProj { scrutinee, index } => descend1!(
            |s| LinTerm::BigProj {
                scrutinee: s,
                index: index.clone(),
            },
            scrutinee
        ),
        LinTerm::Tuple(ts) => {
            let mut new = ts.clone();
            for (i, t) in ts.iter().enumerate() {
                let (tn, c) = step_anywhere(t);
                if c {
                    new[i] = tn;
                    return (LinTerm::Tuple(new), true);
                }
            }
            (term.clone(), false)
        }
        LinTerm::Proj { scrutinee, index } => descend1!(
            |s| LinTerm::Proj {
                scrutinee: s,
                index: *index,
            },
            scrutinee
        ),
        LinTerm::Ctor {
            data,
            ctor,
            nl_args,
            lin_args,
        } => {
            let mut new = lin_args.clone();
            for (i, t) in lin_args.iter().enumerate() {
                let (tn, c) = step_anywhere(t);
                if c {
                    new[i] = tn;
                    return (
                        LinTerm::Ctor {
                            data: data.clone(),
                            ctor: ctor.clone(),
                            nl_args: nl_args.clone(),
                            lin_args: new,
                        },
                        true,
                    );
                }
            }
            (term.clone(), false)
        }
        LinTerm::Fold {
            data,
            motive,
            clauses,
            scrutinee,
        } => {
            let (s, c) = step_anywhere(scrutinee);
            (
                LinTerm::Fold {
                    data: data.clone(),
                    motive: motive.clone(),
                    clauses: clauses.clone(),
                    scrutinee: Arc::new(s),
                },
                c,
            )
        }
        LinTerm::EqIntro(t) => descend1!(LinTerm::EqIntro, t),
        LinTerm::EqProj(t) => descend1!(LinTerm::EqProj, t),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::syntax::types::LinType;

    fn chr(name: &str) -> LinType {
        LinType::Char(Alphabet::abc().symbol(name).unwrap())
    }

    #[test]
    fn beta_lam() {
        // (λ⊸ a. a) x ≡ x.
        let t = LinTerm::app(
            LinTerm::lam("a", chr("a"), LinTerm::var("a")),
            LinTerm::var("x"),
        );
        assert_eq!(beta_normalize(&t), LinTerm::var("x"));
    }

    #[test]
    fn beta_lam_left() {
        // (λ⟜ a. (a, y)) ⟜ x ≡ (x, y).
        let t = LinTerm::AppL {
            arg: Arc::new(LinTerm::var("x")),
            fun: Arc::new(LinTerm::LamL {
                var: "a".to_owned(),
                dom: Arc::new(chr("a")),
                body: Arc::new(LinTerm::pair(LinTerm::var("a"), LinTerm::var("y"))),
            }),
        };
        assert_eq!(
            beta_normalize(&t),
            LinTerm::pair(LinTerm::var("x"), LinTerm::var("y"))
        );
    }

    #[test]
    fn beta_unit_and_pair() {
        // let () = () in e ≡ e; let (a,b) = (x,y) in (a,b) ≡ (x,y).
        let t = LinTerm::LetUnit {
            scrutinee: Arc::new(LinTerm::UnitIntro),
            body: Arc::new(LinTerm::var("e")),
        };
        assert_eq!(beta_normalize(&t), LinTerm::var("e"));
        let t = LinTerm::let_pair(
            LinTerm::pair(LinTerm::var("x"), LinTerm::var("y")),
            "a",
            "b",
            LinTerm::pair(LinTerm::var("a"), LinTerm::var("b")),
        );
        assert_eq!(
            beta_normalize(&t),
            LinTerm::pair(LinTerm::var("x"), LinTerm::var("y"))
        );
    }

    #[test]
    fn beta_case_selects_branch() {
        let t = LinTerm::Case {
            scrutinee: Arc::new(LinTerm::inj(1, 2, LinTerm::var("x"))),
            branches: vec![
                ("a".to_owned(), LinTerm::var("a")),
                (
                    "b".to_owned(),
                    LinTerm::pair(LinTerm::var("b"), LinTerm::UnitIntro),
                ),
            ],
        };
        assert_eq!(
            beta_normalize(&t),
            LinTerm::pair(LinTerm::var("x"), LinTerm::UnitIntro)
        );
    }

    #[test]
    fn beta_projections() {
        let t = LinTerm::Proj {
            scrutinee: Arc::new(LinTerm::Tuple(vec![LinTerm::var("x"), LinTerm::var("y")])),
            index: 1,
        };
        assert_eq!(beta_normalize(&t), LinTerm::var("y"));
        // (λ& n. σ[n] x).π[3] ≡ σ[3] x.
        use crate::syntax::nonlinear::NlTerm;
        let t = LinTerm::BigProj {
            scrutinee: Arc::new(LinTerm::BigLam {
                var: "n".to_owned(),
                body: Arc::new(LinTerm::BigInj {
                    index: NlTerm::var("n"),
                    body: Arc::new(LinTerm::var("x")),
                }),
            }),
            index: NlTerm::NatLit(3),
        };
        assert_eq!(
            beta_normalize(&t),
            LinTerm::BigInj {
                index: NlTerm::NatLit(3),
                body: Arc::new(LinTerm::var("x")),
            }
        );
    }

    #[test]
    fn beta_big_inj_elim() {
        use crate::syntax::nonlinear::NlTerm;
        // let σ n a = σ[2] x in σ[n] a ≡ σ[2] x.
        let t = LinTerm::LetBigInj {
            scrutinee: Arc::new(LinTerm::BigInj {
                index: NlTerm::NatLit(2),
                body: Arc::new(LinTerm::var("x")),
            }),
            nl_var: "n".to_owned(),
            var: "a".to_owned(),
            body: Arc::new(LinTerm::BigInj {
                index: NlTerm::var("n"),
                body: Arc::new(LinTerm::var("a")),
            }),
        };
        assert_eq!(
            beta_normalize(&t),
            LinTerm::BigInj {
                index: NlTerm::NatLit(2),
                body: Arc::new(LinTerm::var("x")),
            }
        );
    }

    #[test]
    fn beta_equalizer() {
        let t = LinTerm::EqProj(Arc::new(LinTerm::EqIntro(Arc::new(LinTerm::var("x")))));
        assert_eq!(beta_normalize(&t), LinTerm::var("x"));
    }

    #[test]
    fn nested_redexes_normalize() {
        // (λ⊸ a. (λ⊸ b. (a, b)) y) x ≡ (x, y).
        let t = LinTerm::app(
            LinTerm::lam(
                "a",
                chr("a"),
                LinTerm::app(
                    LinTerm::lam(
                        "b",
                        chr("b"),
                        LinTerm::pair(LinTerm::var("a"), LinTerm::var("b")),
                    ),
                    LinTerm::var("y"),
                ),
            ),
            LinTerm::var("x"),
        );
        assert_eq!(
            beta_normalize(&t),
            LinTerm::pair(LinTerm::var("x"), LinTerm::var("y"))
        );
    }
}
