//! The non-linear (index) layer of LambekD (§3.1).
//!
//! LambekD is a *linear-non-linear* theory: linear types may depend on
//! non-linear data but not vice versa. This module implements the
//! non-linear fragment the paper's examples actually index with — unit,
//! booleans, naturals, finite types `Fin n`, products and functions —
//! with a type checker, a big-step evaluator, partial normalization (for
//! comparing open index terms during linear type checking) and index-type
//! enumeration (for elaborating indexed inductive types into finite `μ`
//! systems).
//!
//! Universe bookkeeping (`U`, `L`, smallness à la Coquand) is out of
//! scope; see DESIGN.md §7.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A non-linear type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NlType {
    /// The unit type `1`.
    Unit,
    /// Booleans.
    Bool,
    /// Natural numbers.
    Nat,
    /// The finite type with `n` inhabitants `{0, …, n-1}`.
    Fin(usize),
    /// Binary product `X × Y`.
    Prod(Arc<NlType>, Arc<NlType>),
    /// Function type `X → Y`.
    Fun(Arc<NlType>, Arc<NlType>),
}

impl fmt::Display for NlType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NlType::Unit => write!(f, "1"),
            NlType::Bool => write!(f, "Bool"),
            NlType::Nat => write!(f, "Nat"),
            NlType::Fin(n) => write!(f, "Fin {n}"),
            NlType::Prod(a, b) => write!(f, "({a} × {b})"),
            NlType::Fun(a, b) => write!(f, "({a} → {b})"),
        }
    }
}

/// A non-linear term.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NlTerm {
    /// Variable.
    Var(String),
    /// The unit value `tt`.
    UnitVal,
    /// Boolean literal.
    BoolLit(bool),
    /// Natural literal.
    NatLit(u64),
    /// Successor.
    Succ(Arc<NlTerm>),
    /// `Fin` literal `value < modulus`.
    FinLit {
        /// The inhabitant.
        value: usize,
        /// The size of the finite type.
        modulus: usize,
    },
    /// Pairing.
    Pair(Arc<NlTerm>, Arc<NlTerm>),
    /// First projection.
    Fst(Arc<NlTerm>),
    /// Second projection.
    Snd(Arc<NlTerm>),
    /// Lambda abstraction (domain annotated for inference).
    Lam {
        /// Bound variable.
        var: String,
        /// Domain type.
        ty: Arc<NlType>,
        /// Body.
        body: Arc<NlTerm>,
    },
    /// Application.
    App(Arc<NlTerm>, Arc<NlTerm>),
    /// `if cond then t else f` (`elimBool` with a constant motive).
    If {
        /// The scrutinee.
        cond: Arc<NlTerm>,
        /// The `true` branch.
        then_branch: Arc<NlTerm>,
        /// The `false` branch.
        else_branch: Arc<NlTerm>,
    },
    /// Primitive recursion on naturals (`elimNat`, constant motive):
    /// `natrec zero (n, ih. succ) scrutinee`.
    NatRec {
        /// Value at zero.
        zero: Arc<NlTerm>,
        /// Bound variable for the predecessor in the step case.
        n_var: String,
        /// Bound variable for the recursive result in the step case.
        ih_var: String,
        /// Step case body.
        succ: Arc<NlTerm>,
        /// The natural to recurse on.
        scrutinee: Arc<NlTerm>,
    },
}

impl NlTerm {
    /// Variable helper.
    pub fn var(name: &str) -> NlTerm {
        NlTerm::Var(name.to_owned())
    }

    /// `n + 1` helper.
    pub fn succ(t: NlTerm) -> NlTerm {
        NlTerm::Succ(Arc::new(t))
    }
}

impl fmt::Display for NlTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NlTerm::Var(x) => write!(f, "{x}"),
            NlTerm::UnitVal => write!(f, "tt"),
            NlTerm::BoolLit(b) => write!(f, "{b}"),
            NlTerm::NatLit(n) => write!(f, "{n}"),
            NlTerm::Succ(t) => write!(f, "suc {t}"),
            NlTerm::FinLit { value, modulus } => write!(f, "{value}@Fin{modulus}"),
            NlTerm::Pair(a, b) => write!(f, "({a}, {b})"),
            NlTerm::Fst(t) => write!(f, "{t}.fst"),
            NlTerm::Snd(t) => write!(f, "{t}.snd"),
            NlTerm::Lam { var, body, .. } => write!(f, "λ{var}.{body}"),
            NlTerm::App(g, x) => write!(f, "({g} {x})"),
            NlTerm::If {
                cond,
                then_branch,
                else_branch,
            } => write!(f, "if {cond} then {then_branch} else {else_branch}"),
            NlTerm::NatRec { scrutinee, .. } => write!(f, "natrec(… , {scrutinee})"),
        }
    }
}

/// A closed non-linear value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `tt`.
    Unit,
    /// A boolean.
    Bool(bool),
    /// A natural.
    Nat(u64),
    /// An inhabitant of `Fin modulus`.
    Fin {
        /// The inhabitant.
        value: usize,
        /// The size of the finite type.
        modulus: usize,
    },
    /// A pair.
    Pair(Box<Value>, Box<Value>),
    /// A function closure.
    Closure {
        /// Bound variable.
        var: String,
        /// Body term.
        body: Arc<NlTerm>,
        /// Captured environment.
        env: NlEnv,
    },
}

impl Eq for Value {}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Value::Unit => 0u8.hash(state),
            Value::Bool(b) => (1u8, b).hash(state),
            Value::Nat(n) => (2u8, n).hash(state),
            Value::Fin { value, modulus } => (3u8, value, modulus).hash(state),
            Value::Pair(a, b) => {
                4u8.hash(state);
                a.hash(state);
                b.hash(state);
            }
            Value::Closure { var, .. } => (5u8, var).hash(state),
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Unit => write!(f, "tt"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Nat(n) => write!(f, "{n}"),
            Value::Fin { value, modulus } => write!(f, "{value}@Fin{modulus}"),
            Value::Pair(a, b) => write!(f, "({a}, {b})"),
            Value::Closure { var, .. } => write!(f, "λ{var}.…"),
        }
    }
}

/// An evaluation environment for non-linear terms.
pub type NlEnv = HashMap<String, Value>;

/// A typing context for non-linear terms.
pub type NlCtx = HashMap<String, NlType>;

/// Errors from the non-linear layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NlError {
    /// Unbound variable.
    Unbound(String),
    /// A type mismatch, with a description.
    Mismatch(String),
    /// Evaluation hit a non-value where one was needed.
    Stuck(String),
}

impl fmt::Display for NlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NlError::Unbound(x) => write!(f, "unbound non-linear variable {x}"),
            NlError::Mismatch(m) => write!(f, "non-linear type mismatch: {m}"),
            NlError::Stuck(m) => write!(f, "non-linear evaluation stuck: {m}"),
        }
    }
}

impl std::error::Error for NlError {}

/// Infers the type of a non-linear term.
///
/// # Errors
///
/// Returns an [`NlError`] on unbound variables or type mismatches.
pub fn infer_nl(ctx: &NlCtx, term: &NlTerm) -> Result<NlType, NlError> {
    match term {
        NlTerm::Var(x) => ctx
            .get(x)
            .cloned()
            .ok_or_else(|| NlError::Unbound(x.clone())),
        NlTerm::UnitVal => Ok(NlType::Unit),
        NlTerm::BoolLit(_) => Ok(NlType::Bool),
        NlTerm::NatLit(_) => Ok(NlType::Nat),
        NlTerm::Succ(t) => {
            expect(ctx, t, &NlType::Nat)?;
            Ok(NlType::Nat)
        }
        NlTerm::FinLit { value, modulus } => {
            if value < modulus {
                Ok(NlType::Fin(*modulus))
            } else {
                Err(NlError::Mismatch(format!("{value} ∉ Fin {modulus}")))
            }
        }
        NlTerm::Pair(a, b) => Ok(NlType::Prod(
            Arc::new(infer_nl(ctx, a)?),
            Arc::new(infer_nl(ctx, b)?),
        )),
        NlTerm::Fst(t) => match infer_nl(ctx, t)? {
            NlType::Prod(a, _) => Ok((*a).clone()),
            other => Err(NlError::Mismatch(format!("fst of non-product {other}"))),
        },
        NlTerm::Snd(t) => match infer_nl(ctx, t)? {
            NlType::Prod(_, b) => Ok((*b).clone()),
            other => Err(NlError::Mismatch(format!("snd of non-product {other}"))),
        },
        NlTerm::Lam { var, ty, body } => {
            let mut inner = ctx.clone();
            inner.insert(var.clone(), (**ty).clone());
            let cod = infer_nl(&inner, body)?;
            Ok(NlType::Fun(ty.clone(), Arc::new(cod)))
        }
        NlTerm::App(g, x) => match infer_nl(ctx, g)? {
            NlType::Fun(dom, cod) => {
                expect(ctx, x, &dom)?;
                Ok((*cod).clone())
            }
            other => Err(NlError::Mismatch(format!("applying non-function {other}"))),
        },
        NlTerm::If {
            cond,
            then_branch,
            else_branch,
        } => {
            expect(ctx, cond, &NlType::Bool)?;
            let t = infer_nl(ctx, then_branch)?;
            expect(ctx, else_branch, &t)?;
            Ok(t)
        }
        NlTerm::NatRec {
            zero,
            n_var,
            ih_var,
            succ,
            scrutinee,
        } => {
            expect(ctx, scrutinee, &NlType::Nat)?;
            let t = infer_nl(ctx, zero)?;
            let mut inner = ctx.clone();
            inner.insert(n_var.clone(), NlType::Nat);
            inner.insert(ih_var.clone(), t.clone());
            expect(&inner, succ, &t)?;
            Ok(t)
        }
    }
}

fn expect(ctx: &NlCtx, term: &NlTerm, expected: &NlType) -> Result<(), NlError> {
    let got = infer_nl(ctx, term)?;
    if &got == expected {
        Ok(())
    } else {
        Err(NlError::Mismatch(format!(
            "expected {expected}, found {got} for {term}"
        )))
    }
}

/// Evaluates a non-linear term in an environment of values.
///
/// # Errors
///
/// Returns an [`NlError`] if the term is open or ill-typed.
pub fn eval_nl(env: &NlEnv, term: &NlTerm) -> Result<Value, NlError> {
    match term {
        NlTerm::Var(x) => env
            .get(x)
            .cloned()
            .ok_or_else(|| NlError::Unbound(x.clone())),
        NlTerm::UnitVal => Ok(Value::Unit),
        NlTerm::BoolLit(b) => Ok(Value::Bool(*b)),
        NlTerm::NatLit(n) => Ok(Value::Nat(*n)),
        NlTerm::Succ(t) => match eval_nl(env, t)? {
            Value::Nat(n) => Ok(Value::Nat(n + 1)),
            other => Err(NlError::Stuck(format!("suc of {other}"))),
        },
        NlTerm::FinLit { value, modulus } => Ok(Value::Fin {
            value: *value,
            modulus: *modulus,
        }),
        NlTerm::Pair(a, b) => Ok(Value::Pair(
            Box::new(eval_nl(env, a)?),
            Box::new(eval_nl(env, b)?),
        )),
        NlTerm::Fst(t) => match eval_nl(env, t)? {
            Value::Pair(a, _) => Ok(*a),
            other => Err(NlError::Stuck(format!("fst of {other}"))),
        },
        NlTerm::Snd(t) => match eval_nl(env, t)? {
            Value::Pair(_, b) => Ok(*b),
            other => Err(NlError::Stuck(format!("snd of {other}"))),
        },
        NlTerm::Lam { var, body, .. } => Ok(Value::Closure {
            var: var.clone(),
            body: body.clone(),
            env: env.clone(),
        }),
        NlTerm::App(g, x) => {
            let gv = eval_nl(env, g)?;
            let xv = eval_nl(env, x)?;
            apply_value(&gv, xv)
        }
        NlTerm::If {
            cond,
            then_branch,
            else_branch,
        } => match eval_nl(env, cond)? {
            Value::Bool(true) => eval_nl(env, then_branch),
            Value::Bool(false) => eval_nl(env, else_branch),
            other => Err(NlError::Stuck(format!("if on {other}"))),
        },
        NlTerm::NatRec {
            zero,
            n_var,
            ih_var,
            succ,
            scrutinee,
        } => match eval_nl(env, scrutinee)? {
            Value::Nat(n) => {
                let mut acc = eval_nl(env, zero)?;
                for k in 0..n {
                    let mut inner = env.clone();
                    inner.insert(n_var.clone(), Value::Nat(k));
                    inner.insert(ih_var.clone(), acc);
                    acc = eval_nl(&inner, succ)?;
                }
                Ok(acc)
            }
            other => Err(NlError::Stuck(format!("natrec on {other}"))),
        },
    }
}

/// Applies a closure value.
///
/// # Errors
///
/// Returns an [`NlError`] if `f` is not a closure.
pub fn apply_value(f: &Value, arg: Value) -> Result<Value, NlError> {
    match f {
        Value::Closure { var, body, env } => {
            let mut inner = env.clone();
            inner.insert(var.clone(), arg);
            eval_nl(&inner, body)
        }
        other => Err(NlError::Stuck(format!("applying non-closure {other}"))),
    }
}

/// Enumerates all values of an *enumerable* type (`1`, `Bool`, `Fin`,
/// products of enumerable types; `Nat` up to `nat_bound`). Returns `None`
/// for function types.
pub fn enumerate_type(ty: &NlType, nat_bound: u64) -> Option<Vec<Value>> {
    match ty {
        NlType::Unit => Some(vec![Value::Unit]),
        NlType::Bool => Some(vec![Value::Bool(false), Value::Bool(true)]),
        NlType::Nat => Some((0..=nat_bound).map(Value::Nat).collect()),
        NlType::Fin(n) => Some(
            (0..*n)
                .map(|value| Value::Fin { value, modulus: *n })
                .collect(),
        ),
        NlType::Prod(a, b) => {
            let xs = enumerate_type(a, nat_bound)?;
            let ys = enumerate_type(b, nat_bound)?;
            Some(
                xs.iter()
                    .flat_map(|x| {
                        ys.iter()
                            .map(move |y| Value::Pair(Box::new(x.clone()), Box::new(y.clone())))
                    })
                    .collect(),
            )
        }
        NlType::Fun(..) => None,
    }
}

/// Partially normalizes an open term: evaluates every closed redex,
/// leaves variables and blocked eliminations in place. Used for
/// comparing index expressions during linear type checking.
pub fn normalize_nl(term: &NlTerm) -> NlTerm {
    match term {
        NlTerm::Var(_)
        | NlTerm::UnitVal
        | NlTerm::BoolLit(_)
        | NlTerm::NatLit(_)
        | NlTerm::FinLit { .. } => term.clone(),
        NlTerm::Succ(t) => match normalize_nl(t) {
            NlTerm::NatLit(n) => NlTerm::NatLit(n + 1),
            t => NlTerm::succ(t),
        },
        NlTerm::Pair(a, b) => NlTerm::Pair(Arc::new(normalize_nl(a)), Arc::new(normalize_nl(b))),
        NlTerm::Fst(t) => match normalize_nl(t) {
            NlTerm::Pair(a, _) => (*a).clone(),
            t => NlTerm::Fst(Arc::new(t)),
        },
        NlTerm::Snd(t) => match normalize_nl(t) {
            NlTerm::Pair(_, b) => (*b).clone(),
            t => NlTerm::Snd(Arc::new(t)),
        },
        NlTerm::Lam { var, ty, body } => NlTerm::Lam {
            var: var.clone(),
            ty: ty.clone(),
            body: Arc::new(normalize_nl(body)),
        },
        NlTerm::App(g, x) => {
            let gn = normalize_nl(g);
            let xn = normalize_nl(x);
            if let NlTerm::Lam { var, body, .. } = &gn {
                normalize_nl(&subst_nl(body, var, &xn))
            } else {
                NlTerm::App(Arc::new(gn), Arc::new(xn))
            }
        }
        NlTerm::If {
            cond,
            then_branch,
            else_branch,
        } => match normalize_nl(cond) {
            NlTerm::BoolLit(true) => normalize_nl(then_branch),
            NlTerm::BoolLit(false) => normalize_nl(else_branch),
            c => NlTerm::If {
                cond: Arc::new(c),
                then_branch: Arc::new(normalize_nl(then_branch)),
                else_branch: Arc::new(normalize_nl(else_branch)),
            },
        },
        NlTerm::NatRec {
            zero,
            n_var,
            ih_var,
            succ,
            scrutinee,
        } => match normalize_nl(scrutinee) {
            NlTerm::NatLit(n) => {
                let mut acc = normalize_nl(zero);
                for k in 0..n {
                    let stepped =
                        subst_nl(&subst_nl(succ, n_var, &NlTerm::NatLit(k)), ih_var, &acc);
                    acc = normalize_nl(&stepped);
                }
                acc
            }
            s => NlTerm::NatRec {
                zero: Arc::new(normalize_nl(zero)),
                n_var: n_var.clone(),
                ih_var: ih_var.clone(),
                succ: succ.clone(),
                scrutinee: Arc::new(s),
            },
        },
    }
}

/// Capture-avoiding-enough substitution for our usage: bound variables in
/// this crate's terms are distinct from substituted terms' free variables
/// (all examples use fresh names), so plain shadowing-aware substitution
/// suffices.
pub fn subst_nl(term: &NlTerm, var: &str, replacement: &NlTerm) -> NlTerm {
    match term {
        NlTerm::Var(x) => {
            if x == var {
                replacement.clone()
            } else {
                term.clone()
            }
        }
        NlTerm::UnitVal | NlTerm::BoolLit(_) | NlTerm::NatLit(_) | NlTerm::FinLit { .. } => {
            term.clone()
        }
        NlTerm::Succ(t) => NlTerm::succ(subst_nl(t, var, replacement)),
        NlTerm::Pair(a, b) => NlTerm::Pair(
            Arc::new(subst_nl(a, var, replacement)),
            Arc::new(subst_nl(b, var, replacement)),
        ),
        NlTerm::Fst(t) => NlTerm::Fst(Arc::new(subst_nl(t, var, replacement))),
        NlTerm::Snd(t) => NlTerm::Snd(Arc::new(subst_nl(t, var, replacement))),
        NlTerm::Lam { var: v, ty, body } => {
            if v == var {
                term.clone()
            } else {
                NlTerm::Lam {
                    var: v.clone(),
                    ty: ty.clone(),
                    body: Arc::new(subst_nl(body, var, replacement)),
                }
            }
        }
        NlTerm::App(g, x) => NlTerm::App(
            Arc::new(subst_nl(g, var, replacement)),
            Arc::new(subst_nl(x, var, replacement)),
        ),
        NlTerm::If {
            cond,
            then_branch,
            else_branch,
        } => NlTerm::If {
            cond: Arc::new(subst_nl(cond, var, replacement)),
            then_branch: Arc::new(subst_nl(then_branch, var, replacement)),
            else_branch: Arc::new(subst_nl(else_branch, var, replacement)),
        },
        NlTerm::NatRec {
            zero,
            n_var,
            ih_var,
            succ,
            scrutinee,
        } => NlTerm::NatRec {
            zero: Arc::new(subst_nl(zero, var, replacement)),
            n_var: n_var.clone(),
            ih_var: ih_var.clone(),
            succ: if n_var == var || ih_var == var {
                succ.clone()
            } else {
                Arc::new(subst_nl(succ, var, replacement))
            },
            scrutinee: Arc::new(subst_nl(scrutinee, var, replacement)),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn empty_ctx() -> NlCtx {
        NlCtx::new()
    }

    #[test]
    fn literals_infer() {
        let ctx = empty_ctx();
        assert_eq!(infer_nl(&ctx, &NlTerm::BoolLit(true)), Ok(NlType::Bool));
        assert_eq!(infer_nl(&ctx, &NlTerm::NatLit(3)), Ok(NlType::Nat));
        assert_eq!(
            infer_nl(
                &ctx,
                &NlTerm::FinLit {
                    value: 2,
                    modulus: 3
                }
            ),
            Ok(NlType::Fin(3))
        );
        assert!(infer_nl(
            &ctx,
            &NlTerm::FinLit {
                value: 3,
                modulus: 3
            }
        )
        .is_err());
    }

    #[test]
    fn lambda_and_application() {
        let ctx = empty_ctx();
        // (λ n : Nat. suc n) 4 : Nat, evaluates to 5.
        let term = NlTerm::App(
            Arc::new(NlTerm::Lam {
                var: "n".to_owned(),
                ty: Arc::new(NlType::Nat),
                body: Arc::new(NlTerm::succ(NlTerm::var("n"))),
            }),
            Arc::new(NlTerm::NatLit(4)),
        );
        assert_eq!(infer_nl(&ctx, &term), Ok(NlType::Nat));
        assert_eq!(eval_nl(&NlEnv::new(), &term), Ok(Value::Nat(5)));
    }

    #[test]
    fn natrec_computes_addition() {
        // add m n = natrec n (k, ih. suc ih) m.
        let add = |m: u64, n: u64| NlTerm::NatRec {
            zero: Arc::new(NlTerm::NatLit(n)),
            n_var: "k".to_owned(),
            ih_var: "ih".to_owned(),
            succ: Arc::new(NlTerm::succ(NlTerm::var("ih"))),
            scrutinee: Arc::new(NlTerm::NatLit(m)),
        };
        assert_eq!(eval_nl(&NlEnv::new(), &add(3, 4)), Ok(Value::Nat(7)));
        assert_eq!(infer_nl(&empty_ctx(), &add(3, 4)), Ok(NlType::Nat));
    }

    #[test]
    fn if_requires_bool() {
        let bad = NlTerm::If {
            cond: Arc::new(NlTerm::NatLit(0)),
            then_branch: Arc::new(NlTerm::UnitVal),
            else_branch: Arc::new(NlTerm::UnitVal),
        };
        assert!(infer_nl(&empty_ctx(), &bad).is_err());
    }

    #[test]
    fn enumerate_small_types() {
        assert_eq!(enumerate_type(&NlType::Bool, 0).unwrap().len(), 2);
        assert_eq!(enumerate_type(&NlType::Fin(5), 0).unwrap().len(), 5);
        assert_eq!(enumerate_type(&NlType::Nat, 3).unwrap().len(), 4);
        let prod = NlType::Prod(Arc::new(NlType::Bool), Arc::new(NlType::Fin(3)));
        assert_eq!(enumerate_type(&prod, 0).unwrap().len(), 6);
        let fun = NlType::Fun(Arc::new(NlType::Bool), Arc::new(NlType::Bool));
        assert!(enumerate_type(&fun, 0).is_none());
    }

    #[test]
    fn normalization_folds_closed_redexes() {
        // if true then (fst (x, 0)) else y  ~>  x
        let term = NlTerm::If {
            cond: Arc::new(NlTerm::BoolLit(true)),
            then_branch: Arc::new(NlTerm::Fst(Arc::new(NlTerm::Pair(
                Arc::new(NlTerm::var("x")),
                Arc::new(NlTerm::NatLit(0)),
            )))),
            else_branch: Arc::new(NlTerm::var("y")),
        };
        assert_eq!(normalize_nl(&term), NlTerm::var("x"));
        // suc (suc 0) ~> 2
        assert_eq!(
            normalize_nl(&NlTerm::succ(NlTerm::succ(NlTerm::NatLit(0)))),
            NlTerm::NatLit(2)
        );
        // Open terms stay put.
        assert_eq!(
            normalize_nl(&NlTerm::succ(NlTerm::var("n"))),
            NlTerm::succ(NlTerm::var("n"))
        );
    }

    #[test]
    fn substitution_respects_shadowing() {
        // (λ x. x) with x ↦ 1 leaves the bound x alone.
        let lam = NlTerm::Lam {
            var: "x".to_owned(),
            ty: Arc::new(NlType::Nat),
            body: Arc::new(NlTerm::var("x")),
        };
        assert_eq!(subst_nl(&lam, "x", &NlTerm::NatLit(1)), lam);
    }
}
