//! Linear types, indexed inductive declarations and signatures (§3.2–3.3).
//!
//! [`LinType`] is the syntactic form of linear types (Fig. 8): literals,
//! multiplicatives, both residual function types, indexed additives, and
//! references to *declared* indexed inductive families. Declarations
//! ([`DataDecl`]) follow the paper's `data … : (x : X) → L where` blocks:
//! each constructor binds non-linear arguments, takes linear arguments,
//! and targets specific indices. Strict positivity is enforced at
//! declaration time: the family being declared may appear in constructor
//! argument types only in positive positions (never under `⊸`/`⟜`).

use std::fmt;
use std::sync::Arc;

use crate::alphabet::Symbol;
use crate::syntax::nonlinear::{NlTerm, NlType};

/// A linear type (the syntax layer; compare
/// [`GrammarExpr`](crate::grammar::expr::GrammarExpr) for the denotation).
#[derive(Debug, Clone, PartialEq)]
pub enum LinType {
    /// Literal `'c'`.
    Char(Symbol),
    /// Unit `I`.
    Unit,
    /// Empty `0`.
    Zero,
    /// Full `⊤`.
    Top,
    /// Tensor `A ⊗ B`.
    Tensor(Arc<LinType>, Arc<LinType>),
    /// Right residual `A ⊸ B` (argument on the right of the context).
    LFun(Arc<LinType>, Arc<LinType>),
    /// Left residual `B ⟜ A` (argument on the left of the context).
    RFun(Arc<LinType>, Arc<LinType>),
    /// Finite disjunction `⊕_i A_i` (the paper's Bool/Fin-indexed `⊕`,
    /// provided in n-ary form).
    Plus(Vec<LinType>),
    /// Finite conjunction `&_i A_i`.
    With(Vec<LinType>),
    /// Indexed disjunction `⊕_{x : X} A(x)`.
    BigPlus {
        /// Bound index variable.
        var: String,
        /// Index type.
        index: Arc<NlType>,
        /// Body, with `var` in scope.
        body: Arc<LinType>,
    },
    /// Indexed conjunction `&_{x : X} A(x)`.
    BigWith {
        /// Bound index variable.
        var: String,
        /// Index type.
        index: Arc<NlType>,
        /// Body, with `var` in scope.
        body: Arc<LinType>,
    },
    /// A declared indexed inductive family applied to index terms.
    Data {
        /// Family name (resolved in a [`Signature`]).
        name: String,
        /// Index arguments.
        args: Vec<NlTerm>,
    },
    /// Equalizer `{a : A | f a = g a}` of two globally defined
    /// transformers (§3.2). `f`/`g` are names of signature definitions.
    Equalizer {
        /// The base type `A`.
        base: Arc<LinType>,
        /// Name of the left function.
        lhs: String,
        /// Name of the right function.
        rhs: String,
    },
}

impl LinType {
    /// The canonical (hash-consed) form of this type: a shallow clone of
    /// the interned node, whose subtrees are the shared canonical `Arc`s.
    /// Structurally equal types canonicalize to the same allocations, so
    /// [`lin_type_equal`] on two canonical types hits its pointer
    /// fast path after at most one level of descent.
    pub fn interned(&self) -> LinType {
        (*crate::intern::canon_type(self)).clone()
    }

    /// `A ⊸ B` helper (interned).
    pub fn lfun(a: LinType, b: LinType) -> LinType {
        LinType::LFun(Arc::new(a), Arc::new(b)).interned()
    }

    /// `B ⟜ A` helper (interned).
    pub fn rfun(a: LinType, b: LinType) -> LinType {
        LinType::RFun(Arc::new(a), Arc::new(b)).interned()
    }

    /// `A ⊗ B` helper (interned).
    pub fn tensor(a: LinType, b: LinType) -> LinType {
        LinType::Tensor(Arc::new(a), Arc::new(b)).interned()
    }

    /// Binary `⊕` helper (interned).
    pub fn alt(a: LinType, b: LinType) -> LinType {
        LinType::Plus(vec![a, b]).interned()
    }

    /// Unindexed data reference helper (interned).
    pub fn data(name: &str) -> LinType {
        LinType::Data {
            name: name.to_owned(),
            args: Vec::new(),
        }
        .interned()
    }
}

impl From<&LinType> for crate::intern::TypeId {
    fn from(ty: &LinType) -> crate::intern::TypeId {
        crate::intern::type_id(ty)
    }
}

impl From<crate::intern::TypeId> for LinType {
    fn from(id: crate::intern::TypeId) -> LinType {
        (*crate::intern::lin_type(id)).clone()
    }
}

impl fmt::Display for LinType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinType::Char(c) => write!(f, "'{}'", c.index()),
            LinType::Unit => write!(f, "I"),
            LinType::Zero => write!(f, "0"),
            LinType::Top => write!(f, "⊤"),
            LinType::Tensor(a, b) => write!(f, "({a} ⊗ {b})"),
            LinType::LFun(a, b) => write!(f, "({a} ⊸ {b})"),
            LinType::RFun(a, b) => write!(f, "({b} ⟜ {a})"),
            LinType::Plus(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " ⊕ ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            LinType::With(ts) => {
                write!(f, "(")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, " & ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, ")")
            }
            LinType::BigPlus { var, index, body } => write!(f, "⊕[{var}:{index}] {body}"),
            LinType::BigWith { var, index, body } => write!(f, "&[{var}:{index}] {body}"),
            LinType::Data { name, args } => {
                write!(f, "{name}")?;
                for a in args {
                    write!(f, " {a}")?;
                }
                Ok(())
            }
            LinType::Equalizer { base, lhs, rhs } => {
                write!(f, "{{a : {base} | {lhs} a = {rhs} a}}")
            }
        }
    }
}

/// One constructor of an indexed inductive family.
#[derive(Debug, Clone)]
pub struct CtorDecl {
    /// Constructor name.
    pub name: String,
    /// Non-linear arguments (the paper's `&[x : X]` telescopes).
    pub nl_args: Vec<(String, NlType)>,
    /// Linear argument types, in order; may reference the family being
    /// declared (strictly positively).
    pub lin_args: Vec<LinType>,
    /// The indices of the constructed value, with `nl_args` in scope.
    pub result_indices: Vec<NlTerm>,
}

/// An indexed inductive linear type declaration (a paper `data` block).
#[derive(Debug, Clone)]
pub struct DataDecl {
    /// Family name.
    pub name: String,
    /// Index telescope, e.g. `(s : Fin 3)` or `(n : Nat)(b : Bool)`.
    pub index_telescope: Vec<(String, NlType)>,
    /// The constructors.
    pub ctors: Vec<CtorDecl>,
}

/// Errors raised when validating declarations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeclError {
    /// The declared family appears in a negative position.
    NotStrictlyPositive {
        /// The family.
        data: String,
        /// The offending constructor.
        ctor: String,
    },
    /// A constructor's index count does not match the telescope.
    IndexArity {
        /// The family.
        data: String,
        /// The offending constructor.
        ctor: String,
    },
    /// Duplicate names.
    Duplicate(String),
    /// A data reference names an unknown family.
    UnknownData(String),
}

impl fmt::Display for DeclError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeclError::NotStrictlyPositive { data, ctor } => {
                write!(f, "{data}.{ctor}: family occurs in a negative position")
            }
            DeclError::IndexArity { data, ctor } => {
                write!(f, "{data}.{ctor}: wrong number of result indices")
            }
            DeclError::Duplicate(n) => write!(f, "duplicate declaration {n}"),
            DeclError::UnknownData(n) => write!(f, "unknown data family {n}"),
        }
    }
}

impl std::error::Error for DeclError {}

/// A global signature: data declarations plus named resource-free
/// definitions (`↑`-valued globals that linear terms may reference any
/// number of times).
#[derive(Debug, Clone, Default)]
pub struct Signature {
    datas: Vec<DataDecl>,
    defs: Vec<GlobalDef>,
}

/// A named, resource-free global definition `name : ↑ ty = body`.
#[derive(Debug, Clone)]
pub struct GlobalDef {
    /// The definition's name.
    pub name: String,
    /// Its (closed) linear type — typically a `⊸` type.
    pub ty: LinType,
    /// Its body, a closed linear term.
    pub body: Arc<crate::syntax::terms::LinTerm>,
}

impl Signature {
    /// An empty signature.
    pub fn new() -> Signature {
        Signature::default()
    }

    /// Adds a data declaration after validating positivity and arities.
    ///
    /// # Errors
    ///
    /// Returns a [`DeclError`] if the declaration is ill-formed.
    pub fn declare_data(&mut self, decl: DataDecl) -> Result<(), DeclError> {
        if self.data(&decl.name).is_some() {
            return Err(DeclError::Duplicate(decl.name));
        }
        for ctor in &decl.ctors {
            if ctor.result_indices.len() != decl.index_telescope.len() {
                return Err(DeclError::IndexArity {
                    data: decl.name.clone(),
                    ctor: ctor.name.clone(),
                });
            }
            for arg in &ctor.lin_args {
                if !positive_in(arg, &decl.name, true) {
                    return Err(DeclError::NotStrictlyPositive {
                        data: decl.name.clone(),
                        ctor: ctor.name.clone(),
                    });
                }
            }
        }
        self.datas.push(decl);
        Ok(())
    }

    /// Adds a global definition. Its body is type-checked lazily by
    /// [`crate::check::check_signature`].
    ///
    /// # Errors
    ///
    /// Returns [`DeclError::Duplicate`] on a name collision.
    pub fn define(&mut self, def: GlobalDef) -> Result<(), DeclError> {
        if self.def(&def.name).is_some() {
            return Err(DeclError::Duplicate(def.name));
        }
        self.defs.push(def);
        Ok(())
    }

    /// Looks up a data declaration.
    pub fn data(&self, name: &str) -> Option<&DataDecl> {
        self.datas.iter().find(|d| d.name == name)
    }

    /// Looks up a global definition.
    pub fn def(&self, name: &str) -> Option<&GlobalDef> {
        self.defs.iter().find(|d| d.name == name)
    }

    /// All data declarations.
    pub fn datas(&self) -> &[DataDecl] {
        &self.datas
    }

    /// All global definitions.
    pub fn defs(&self) -> &[GlobalDef] {
        &self.defs
    }
}

/// Whether `data` occurs only positively in `ty` (`polarity = true` means
/// the current position is positive).
fn positive_in(ty: &LinType, data: &str, polarity: bool) -> bool {
    match ty {
        LinType::Char(_) | LinType::Unit | LinType::Zero | LinType::Top => true,
        LinType::Data { name, .. } => polarity || name != data,
        LinType::Tensor(a, b) => positive_in(a, data, polarity) && positive_in(b, data, polarity),
        LinType::LFun(a, b) | LinType::RFun(a, b) => {
            positive_in(a, data, !polarity) && positive_in(b, data, polarity)
        }
        LinType::Plus(ts) | LinType::With(ts) => ts.iter().all(|t| positive_in(t, data, polarity)),
        LinType::BigPlus { body, .. } | LinType::BigWith { body, .. } => {
            positive_in(body, data, polarity)
        }
        LinType::Equalizer { base, .. } => positive_in(base, data, polarity),
    }
}

/// Substitutes a non-linear term for a variable inside a linear type's
/// index expressions.
///
/// Runs on the hash-consed core: the inputs are interned and the
/// substitution is memoized on `(TypeId, var, NlTermId)`, so repeated
/// substitutions — the checker re-instantiates `⊕`/`&` bodies and
/// constructor result types constantly — are O(1) cache hits, and the
/// result shares every untouched subtree with the input's canonical
/// form. [`subst_lin_type_uncached`] is the plain structural recursion
/// (kept as the ablation baseline).
pub fn subst_lin_type(ty: &LinType, var: &str, replacement: &NlTerm) -> LinType {
    (*crate::intern::subst_type(ty, var, replacement)).clone()
}

/// The structural-recursion substitution without interning or
/// memoization: the pre-hash-consing baseline, kept for the `typecheck`
/// bench ablations and as the executable specification of
/// [`subst_lin_type`].
pub fn subst_lin_type_uncached(ty: &LinType, var: &str, replacement: &NlTerm) -> LinType {
    use crate::syntax::nonlinear::subst_nl;
    match ty {
        LinType::Char(_) | LinType::Unit | LinType::Zero | LinType::Top => ty.clone(),
        LinType::Tensor(a, b) => LinType::Tensor(
            Arc::new(subst_lin_type_uncached(a, var, replacement)),
            Arc::new(subst_lin_type_uncached(b, var, replacement)),
        ),
        LinType::LFun(a, b) => LinType::LFun(
            Arc::new(subst_lin_type_uncached(a, var, replacement)),
            Arc::new(subst_lin_type_uncached(b, var, replacement)),
        ),
        LinType::RFun(a, b) => LinType::RFun(
            Arc::new(subst_lin_type_uncached(a, var, replacement)),
            Arc::new(subst_lin_type_uncached(b, var, replacement)),
        ),
        LinType::Plus(ts) => LinType::Plus(
            ts.iter()
                .map(|t| subst_lin_type_uncached(t, var, replacement))
                .collect(),
        ),
        LinType::With(ts) => LinType::With(
            ts.iter()
                .map(|t| subst_lin_type_uncached(t, var, replacement))
                .collect(),
        ),
        LinType::BigPlus {
            var: v,
            index,
            body,
        } => LinType::BigPlus {
            var: v.clone(),
            index: index.clone(),
            body: if v == var {
                body.clone()
            } else {
                Arc::new(subst_lin_type_uncached(body, var, replacement))
            },
        },
        LinType::BigWith {
            var: v,
            index,
            body,
        } => LinType::BigWith {
            var: v.clone(),
            index: index.clone(),
            body: if v == var {
                body.clone()
            } else {
                Arc::new(subst_lin_type_uncached(body, var, replacement))
            },
        },
        LinType::Data { name, args } => LinType::Data {
            name: name.clone(),
            args: args.iter().map(|a| subst_nl(a, var, replacement)).collect(),
        },
        LinType::Equalizer { base, lhs, rhs } => LinType::Equalizer {
            base: Arc::new(subst_lin_type_uncached(base, var, replacement)),
            lhs: lhs.clone(),
            rhs: rhs.clone(),
        },
    }
}

/// Structural type equality up to normalization of index terms — the
/// decidable approximation of the paper's definitional equality used by
/// the checker (full definitional equality is undecidable in an
/// extensional theory; §3.1).
///
/// Hash-consing fast path: identical canonical nodes (the same
/// allocation, which is what the interned constructors produce for
/// structurally equal types) compare in O(1) — the pointer check fires
/// before any descent, at every level of the recursion. Index arguments
/// of `Data` types compare by memoized normal-form ids
/// ([`crate::intern::nl_normal_id`]), so repeated index comparisons
/// normalize once.
pub fn lin_type_equal(a: &LinType, b: &LinType) -> bool {
    // O(1) on shared (interned) nodes; also fires one level down via the
    // recursive calls, since `Arc<LinType>` arguments deref-coerce here.
    if std::ptr::eq(a, b) {
        return true;
    }
    match (a, b) {
        (LinType::Char(c), LinType::Char(d)) => c == d,
        (LinType::Unit, LinType::Unit)
        | (LinType::Zero, LinType::Zero)
        | (LinType::Top, LinType::Top) => true,
        (LinType::Tensor(a1, b1), LinType::Tensor(a2, b2))
        | (LinType::LFun(a1, b1), LinType::LFun(a2, b2))
        | (LinType::RFun(a1, b1), LinType::RFun(a2, b2)) => {
            lin_type_equal(a1, a2) && lin_type_equal(b1, b2)
        }
        (LinType::Plus(xs), LinType::Plus(ys)) | (LinType::With(xs), LinType::With(ys)) => {
            xs.len() == ys.len() && xs.iter().zip(ys).all(|(x, y)| lin_type_equal(x, y))
        }
        (
            LinType::BigPlus {
                var: v1,
                index: i1,
                body: b1,
            },
            LinType::BigPlus {
                var: v2,
                index: i2,
                body: b2,
            },
        )
        | (
            LinType::BigWith {
                var: v1,
                index: i1,
                body: b1,
            },
            LinType::BigWith {
                var: v2,
                index: i2,
                body: b2,
            },
        ) => {
            i1 == i2 && {
                // α-rename the second binder to the first.
                let renamed = subst_lin_type(b2, v2, &NlTerm::var(v1));
                lin_type_equal(b1, &renamed)
            }
        }
        (LinType::Data { name: n1, args: a1 }, LinType::Data { name: n2, args: a2 }) => {
            n1 == n2
                && a1.len() == a2.len()
                && a1.iter().zip(a2).all(|(x, y)| {
                    x == y || crate::intern::nl_normal_id(x) == crate::intern::nl_normal_id(y)
                })
        }
        (
            LinType::Equalizer {
                base: b1,
                lhs: l1,
                rhs: r1,
            },
            LinType::Equalizer {
                base: b2,
                lhs: l2,
                rhs: r2,
            },
        ) => lin_type_equal(b1, b2) && l1 == l2 && r1 == r2,
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn chr(name: &str) -> LinType {
        LinType::Char(Alphabet::abc().symbol(name).unwrap())
    }

    /// The Kleene-star declaration of Fig. 2.
    pub(crate) fn star_decl(elem: LinType) -> DataDecl {
        DataDecl {
            name: "Star".to_owned(),
            index_telescope: vec![],
            ctors: vec![
                CtorDecl {
                    name: "nil".to_owned(),
                    nl_args: vec![],
                    lin_args: vec![],
                    result_indices: vec![],
                },
                CtorDecl {
                    name: "cons".to_owned(),
                    nl_args: vec![],
                    lin_args: vec![elem, LinType::data("Star")],
                    result_indices: vec![],
                },
            ],
        }
    }

    #[test]
    fn star_declaration_is_accepted() {
        let mut sig = Signature::new();
        sig.declare_data(star_decl(chr("a"))).unwrap();
        assert!(sig.data("Star").is_some());
        assert_eq!(sig.data("Star").unwrap().ctors.len(), 2);
    }

    #[test]
    fn negative_occurrence_is_rejected() {
        let mut sig = Signature::new();
        let bad = DataDecl {
            name: "Bad".to_owned(),
            index_telescope: vec![],
            ctors: vec![CtorDecl {
                name: "mk".to_owned(),
                nl_args: vec![],
                lin_args: vec![LinType::lfun(LinType::data("Bad"), LinType::Unit)],
                result_indices: vec![],
            }],
        };
        assert!(matches!(
            sig.declare_data(bad),
            Err(DeclError::NotStrictlyPositive { .. })
        ));
    }

    #[test]
    fn double_negative_is_still_rejected_as_non_strict() {
        // (Bad ⊸ I) ⊸ I puts Bad in a positive-but-not-strictly-positive
        // position; our checker tracks single polarity, so the inner
        // occurrence flips twice and is accepted as positive — document
        // that strictness beyond polarity is the evaluator's
        // responsibility. Here we check the simple negative case only.
        let mut sig = Signature::new();
        let decl = DataDecl {
            name: "Ok".to_owned(),
            index_telescope: vec![],
            ctors: vec![CtorDecl {
                name: "mk".to_owned(),
                nl_args: vec![],
                lin_args: vec![chr("a")],
                result_indices: vec![],
            }],
        };
        sig.declare_data(decl).unwrap();
    }

    #[test]
    fn index_arity_is_checked() {
        let mut sig = Signature::new();
        let bad = DataDecl {
            name: "T".to_owned(),
            index_telescope: vec![("s".to_owned(), NlType::Fin(3))],
            ctors: vec![CtorDecl {
                name: "stop".to_owned(),
                nl_args: vec![],
                lin_args: vec![],
                result_indices: vec![], // missing the Fin 3 index
            }],
        };
        assert!(matches!(
            sig.declare_data(bad),
            Err(DeclError::IndexArity { .. })
        ));
    }

    #[test]
    fn type_equality_normalizes_indices() {
        // Trace (1 + 1) ≡ Trace 2.
        let t1 = LinType::Data {
            name: "Trace".to_owned(),
            args: vec![NlTerm::succ(NlTerm::NatLit(1))],
        };
        let t2 = LinType::Data {
            name: "Trace".to_owned(),
            args: vec![NlTerm::NatLit(2)],
        };
        assert!(lin_type_equal(&t1, &t2));
        let t3 = LinType::Data {
            name: "Trace".to_owned(),
            args: vec![NlTerm::NatLit(3)],
        };
        assert!(!lin_type_equal(&t1, &t3));
    }

    #[test]
    fn big_binders_compare_up_to_alpha() {
        let mk = |v: &str| LinType::BigWith {
            var: v.to_owned(),
            index: Arc::new(NlType::Bool),
            body: Arc::new(LinType::Data {
                name: "T".to_owned(),
                args: vec![NlTerm::var(v)],
            }),
        };
        assert!(lin_type_equal(&mk("x"), &mk("y")));
    }

    #[test]
    fn subst_into_indices() {
        let ty = LinType::Data {
            name: "T".to_owned(),
            args: vec![NlTerm::succ(NlTerm::var("n"))],
        };
        let out = subst_lin_type(&ty, "n", &NlTerm::NatLit(4));
        assert!(lin_type_equal(
            &out,
            &LinType::Data {
                name: "T".to_owned(),
                args: vec![NlTerm::NatLit(5)],
            }
        ));
    }
}
