//! The deep syntax of Dependent Lambek Calculus (§3).
//!
//! * [`nonlinear`] — the index layer: types, terms, values, evaluation
//!   and enumeration (§3.1);
//! * [`types`] — linear types, indexed inductive declarations and
//!   signatures (§3.2–3.3);
//! * [`terms`] — linear terms (Fig. 9).
//!
//! Type checking lives in [`crate::check`], evaluation and elaboration in
//! [`crate::eval`].

pub mod nonlinear;
pub mod terms;
pub mod types;
