//! Linear terms (Fig. 9) — the syntax of parse transformers.
//!
//! The constructors mirror the typing rules of Fig. 9: ordered pattern
//! matching for `I`/`⊗`/`⊕`, both residual lambdas, indexed `&`/`⊕`
//! introduction and elimination, `data` constructors and `fold`
//! (Fig. 10), equalizer intro/projection, and references to resource-free
//! global definitions (the syntax-level stand-in for `↑`).

use std::fmt;
use std::sync::Arc;

use crate::syntax::nonlinear::NlTerm;
use crate::syntax::types::LinType;

/// A linear term.
#[derive(Debug, Clone, PartialEq)]
pub enum LinTerm {
    /// A linear variable.
    Var(String),
    /// A reference to a resource-free global definition — usable any
    /// number of times (the `Γ ⊢ M : ↑A ⟹ Γ; · ⊢ M : A` coercion).
    Global(String),
    /// `()` — introduction for `I`.
    UnitIntro,
    /// `let () = e in e'` — elimination for `I`.
    LetUnit {
        /// The `I`-typed scrutinee.
        scrutinee: Arc<LinTerm>,
        /// The continuation.
        body: Arc<LinTerm>,
    },
    /// `(e, e')` — introduction for `⊗`.
    Pair(Arc<LinTerm>, Arc<LinTerm>),
    /// `let (a, b) = e in e'` — elimination for `⊗`.
    LetPair {
        /// The `⊗`-typed scrutinee.
        scrutinee: Arc<LinTerm>,
        /// Name bound to the left component.
        left: String,
        /// Name bound to the right component.
        right: String,
        /// The continuation.
        body: Arc<LinTerm>,
    },
    /// `λ⊸ a. e` — introduction for `A ⊸ B` (binds at the *right* end of
    /// the context).
    Lam {
        /// Bound variable.
        var: String,
        /// Domain annotation (needed for type inference).
        dom: Arc<LinType>,
        /// Body.
        body: Arc<LinTerm>,
    },
    /// `e e'` — elimination for `⊸` (function left of argument).
    App(Arc<LinTerm>, Arc<LinTerm>),
    /// `λ⟜ a. e` — introduction for `B ⟜ A` (binds at the *left* end).
    LamL {
        /// Bound variable.
        var: String,
        /// Domain annotation.
        dom: Arc<LinType>,
        /// Body.
        body: Arc<LinTerm>,
    },
    /// `e' ⟜ e` — elimination for `⟜` (argument left of function).
    AppL {
        /// The argument (on the left).
        arg: Arc<LinTerm>,
        /// The function (on the right).
        fun: Arc<LinTerm>,
    },
    /// `σ i e` — introduction for a finite `⊕` (summand `i`).
    Inj {
        /// The summand index.
        index: usize,
        /// The arity of the sum (for inference).
        arity: usize,
        /// The injected term.
        body: Arc<LinTerm>,
    },
    /// `case e of branches` — elimination for a finite `⊕`; branch `i`
    /// binds one variable for summand `i`.
    Case {
        /// The `⊕`-typed scrutinee.
        scrutinee: Arc<LinTerm>,
        /// One `(bound var, body)` per summand.
        branches: Vec<(String, LinTerm)>,
    },
    /// `σ M e` — introduction for `⊕_{x:X}` at index `M`.
    BigInj {
        /// The index term.
        index: NlTerm,
        /// The injected term.
        body: Arc<LinTerm>,
    },
    /// `let σ x a = e in e'` — elimination for `⊕_{x:X}`.
    LetBigInj {
        /// The scrutinee.
        scrutinee: Arc<LinTerm>,
        /// Bound non-linear index variable.
        nl_var: String,
        /// Bound linear payload variable.
        var: String,
        /// The continuation.
        body: Arc<LinTerm>,
    },
    /// `λ& x. e` — introduction for `&_{x:X}`.
    BigLam {
        /// Bound non-linear variable.
        var: String,
        /// Body.
        body: Arc<LinTerm>,
    },
    /// `e .π M` — elimination for `&_{x:X}` at index `M`.
    BigProj {
        /// The scrutinee.
        scrutinee: Arc<LinTerm>,
        /// The projection index.
        index: NlTerm,
    },
    /// `⟨e₁, …⟩` — introduction for a finite `&`.
    Tuple(Vec<LinTerm>),
    /// `e .π i` — elimination for a finite `&`.
    Proj {
        /// The scrutinee.
        scrutinee: Arc<LinTerm>,
        /// Component index.
        index: usize,
    },
    /// A data constructor application, e.g.
    /// `cons a as` or `0to1 tr` (Fig. 2, Fig. 5).
    Ctor {
        /// The data family.
        data: String,
        /// The constructor name.
        ctor: String,
        /// Non-linear arguments (one per declared `nl_arg`).
        nl_args: Vec<NlTerm>,
        /// Linear arguments (one per declared `lin_arg`).
        lin_args: Vec<LinTerm>,
    },
    /// `fold` — the eliminator of Fig. 10, applied to a scrutinee.
    Fold {
        /// The data family being eliminated.
        data: String,
        /// Output type, with the family's index telescope in scope.
        motive: Arc<LinType>,
        /// One clause per constructor, in declaration order.
        clauses: Vec<FoldClause>,
        /// The value being folded.
        scrutinee: Arc<LinTerm>,
    },
    /// `⟨e⟩` — equalizer introduction (the equation is checked
    /// semantically by the evaluator; see DESIGN.md §7).
    EqIntro(Arc<LinTerm>),
    /// `e .π` — equalizer projection.
    EqProj(Arc<LinTerm>),
}

/// One clause of a [`LinTerm::Fold`]: binds the constructor's non-linear
/// arguments and one linear variable per linear argument (recursive
/// arguments arrive already folded, at the motive type).
#[derive(Debug, Clone, PartialEq)]
pub struct FoldClause {
    /// Names for the constructor's non-linear arguments.
    pub nl_vars: Vec<String>,
    /// Names for the constructor's linear arguments.
    pub lin_vars: Vec<String>,
    /// The clause body.
    pub body: Arc<LinTerm>,
}

impl LinTerm {
    /// The canonical (hash-consed) form of this term: a shallow clone of
    /// the interned node whose subterms are the shared canonical `Arc`s.
    /// Structurally equal terms intern to the same
    /// [`TermId`](crate::intern::TermId), making term equality and
    /// hashing O(1) at the id level.
    pub fn interned(&self) -> LinTerm {
        (*crate::intern::canon_term(self)).clone()
    }

    /// Variable helper.
    pub fn var(name: &str) -> LinTerm {
        LinTerm::Var(name.to_owned())
    }

    /// `λ⊸` helper.
    pub fn lam(var: &str, dom: LinType, body: LinTerm) -> LinTerm {
        LinTerm::Lam {
            var: var.to_owned(),
            dom: Arc::new(dom),
            body: Arc::new(body),
        }
    }

    /// Application helper.
    pub fn app(f: LinTerm, x: LinTerm) -> LinTerm {
        LinTerm::App(Arc::new(f), Arc::new(x))
    }

    /// Pair helper.
    pub fn pair(l: LinTerm, r: LinTerm) -> LinTerm {
        LinTerm::Pair(Arc::new(l), Arc::new(r))
    }

    /// `let (a,b) = e in body` helper.
    pub fn let_pair(scrutinee: LinTerm, left: &str, right: &str, body: LinTerm) -> LinTerm {
        LinTerm::LetPair {
            scrutinee: Arc::new(scrutinee),
            left: left.to_owned(),
            right: right.to_owned(),
            body: Arc::new(body),
        }
    }

    /// Finite injection helper.
    pub fn inj(index: usize, arity: usize, body: LinTerm) -> LinTerm {
        LinTerm::Inj {
            index,
            arity,
            body: Arc::new(body),
        }
    }

    /// The left-to-right sequence of free linear variable occurrences —
    /// the backbone of the ordered-context discipline: a term is usable
    /// in context `Δ` only if this sequence equals `Δ`'s variables
    /// exactly (no duplication ⇒ no contraction; no omission ⇒ no
    /// weakening; no reordering ⇒ no exchange).
    pub fn occurrence_sequence(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.occurrences(&mut Vec::new(), &mut out);
        out
    }

    fn occurrences(&self, bound: &mut Vec<String>, out: &mut Vec<String>) {
        match self {
            LinTerm::Var(x) => {
                if !bound.contains(x) {
                    out.push(x.clone());
                }
            }
            LinTerm::Global(_) | LinTerm::UnitIntro => {}
            LinTerm::LetUnit { scrutinee, body } => {
                scrutinee.occurrences(bound, out);
                body.occurrences(bound, out);
            }
            LinTerm::Pair(l, r) => {
                l.occurrences(bound, out);
                r.occurrences(bound, out);
            }
            LinTerm::LetPair {
                scrutinee,
                left,
                right,
                body,
            } => {
                scrutinee.occurrences(bound, out);
                bound.push(left.clone());
                bound.push(right.clone());
                body.occurrences(bound, out);
                bound.pop();
                bound.pop();
            }
            LinTerm::Lam { var, body, .. } | LinTerm::LamL { var, body, .. } => {
                bound.push(var.clone());
                body.occurrences(bound, out);
                bound.pop();
            }
            LinTerm::App(f, x) => {
                f.occurrences(bound, out);
                x.occurrences(bound, out);
            }
            LinTerm::AppL { arg, fun } => {
                arg.occurrences(bound, out);
                fun.occurrences(bound, out);
            }
            LinTerm::Inj { body, .. } | LinTerm::BigInj { body, .. } => {
                body.occurrences(bound, out)
            }
            LinTerm::Case {
                scrutinee,
                branches,
            } => {
                scrutinee.occurrences(bound, out);
                // All branches must use the same outer variables; the
                // checker verifies this. For the sequence we take the
                // first branch's view (bound variable masked).
                if let Some((v, b)) = branches.first() {
                    bound.push(v.clone());
                    b.occurrences(bound, out);
                    bound.pop();
                }
            }
            LinTerm::LetBigInj {
                scrutinee,
                var,
                body,
                ..
            } => {
                scrutinee.occurrences(bound, out);
                bound.push(var.clone());
                body.occurrences(bound, out);
                bound.pop();
            }
            LinTerm::BigLam { body, .. } => body.occurrences(bound, out),
            LinTerm::BigProj { scrutinee, .. } => scrutinee.occurrences(bound, out),
            LinTerm::Tuple(ts) => {
                // & components share the context; take the first.
                if let Some(t) = ts.first() {
                    t.occurrences(bound, out);
                }
            }
            LinTerm::Proj { scrutinee, .. } => scrutinee.occurrences(bound, out),
            LinTerm::Ctor { lin_args, .. } => {
                for a in lin_args {
                    a.occurrences(bound, out);
                }
            }
            LinTerm::Fold { scrutinee, .. } => {
                // Fold clauses are closed up to their bound variables
                // (checked separately); only the scrutinee consumes
                // ambient resources.
                scrutinee.occurrences(bound, out);
            }
            LinTerm::EqIntro(t) | LinTerm::EqProj(t) => t.occurrences(bound, out),
        }
    }
}

impl From<&LinTerm> for crate::intern::TermId {
    fn from(t: &LinTerm) -> crate::intern::TermId {
        crate::intern::term_id(t)
    }
}

impl From<crate::intern::TermId> for LinTerm {
    fn from(id: crate::intern::TermId) -> LinTerm {
        (*crate::intern::lin_term(id)).clone()
    }
}

impl fmt::Display for LinTerm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinTerm::Var(x) => write!(f, "{x}"),
            LinTerm::Global(g) => write!(f, "@{g}"),
            LinTerm::UnitIntro => write!(f, "()"),
            LinTerm::LetUnit { scrutinee, body } => {
                write!(f, "let () = {scrutinee} in {body}")
            }
            LinTerm::Pair(l, r) => write!(f, "({l}, {r})"),
            LinTerm::LetPair {
                scrutinee,
                left,
                right,
                body,
            } => write!(f, "let ({left}, {right}) = {scrutinee} in {body}"),
            LinTerm::Lam { var, body, .. } => write!(f, "λ⊸{var}. {body}"),
            LinTerm::App(g, x) => write!(f, "({g} {x})"),
            LinTerm::LamL { var, body, .. } => write!(f, "λ⟜{var}. {body}"),
            LinTerm::AppL { arg, fun } => write!(f, "({arg} ⟜ {fun})"),
            LinTerm::Inj { index, body, .. } => write!(f, "σ{index} {body}"),
            LinTerm::Case {
                scrutinee,
                branches,
            } => {
                write!(f, "case {scrutinee} of")?;
                for (i, (v, b)) in branches.iter().enumerate() {
                    write!(f, " | σ{i} {v} ⇒ {b}")?;
                }
                Ok(())
            }
            LinTerm::BigInj { index, body } => write!(f, "σ[{index}] {body}"),
            LinTerm::LetBigInj {
                scrutinee,
                nl_var,
                var,
                body,
            } => write!(f, "let σ {nl_var} {var} = {scrutinee} in {body}"),
            LinTerm::BigLam { var, body } => write!(f, "λ&{var}. {body}"),
            LinTerm::BigProj { scrutinee, index } => write!(f, "{scrutinee}.π[{index}]"),
            LinTerm::Tuple(ts) => {
                write!(f, "⟨")?;
                for (i, t) in ts.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{t}")?;
                }
                write!(f, "⟩")
            }
            LinTerm::Proj { scrutinee, index } => write!(f, "{scrutinee}.π{index}"),
            LinTerm::Ctor { ctor, lin_args, .. } => {
                write!(f, "{ctor}")?;
                for a in lin_args {
                    write!(f, " {a}")?;
                }
                Ok(())
            }
            LinTerm::Fold { scrutinee, .. } => write!(f, "fold(…)({scrutinee})"),
            LinTerm::EqIntro(t) => write!(f, "⟨{t}⟩"),
            LinTerm::EqProj(t) => write!(f, "{t}.π"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn chr(name: &str) -> LinType {
        LinType::Char(Alphabet::abc().symbol(name).unwrap())
    }

    #[test]
    fn occurrence_sequence_is_left_to_right() {
        // (a, b) uses a then b.
        let t = LinTerm::pair(LinTerm::var("a"), LinTerm::var("b"));
        assert_eq!(t.occurrence_sequence(), vec!["a", "b"]);
        // (b, a) uses b then a — the exchange violation Fig. 1 forbids.
        let t = LinTerm::pair(LinTerm::var("b"), LinTerm::var("a"));
        assert_eq!(t.occurrence_sequence(), vec!["b", "a"]);
    }

    #[test]
    fn bound_variables_are_masked() {
        let t = LinTerm::lam(
            "x",
            chr("a"),
            LinTerm::pair(LinTerm::var("x"), LinTerm::var("y")),
        );
        assert_eq!(t.occurrence_sequence(), vec!["y"]);
    }

    #[test]
    fn contraction_shows_as_duplicate() {
        // (a, a): the sequence has a twice; the checker will reject it
        // against the context a : A.
        let t = LinTerm::pair(LinTerm::var("a"), LinTerm::var("a"));
        assert_eq!(t.occurrence_sequence(), vec!["a", "a"]);
    }

    #[test]
    fn globals_consume_nothing() {
        let t = LinTerm::app(LinTerm::Global("cons".to_owned()), LinTerm::var("a"));
        assert_eq!(t.occurrence_sequence(), vec!["a"]);
    }
}
