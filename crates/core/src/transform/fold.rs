//! `roll`, `unroll`, functorial `map` and `fold` for inductive linear
//! types (§3.3, Fig. 10).
//!
//! A system `μF` of mutually recursive definitions is an initial algebra
//! for the strictly positive functor described by its bodies. `roll`
//! packages a one-step unfolding into the inductive type, `fold`
//! interprets the constructors homomorphically into any other algebra, and
//! the `Ind-β` law `fold f (roll e) ≡ f (map (fold f) e)` is checked by
//! the test suite and holds *by definition* of this implementation.

use std::sync::Arc;

use crate::grammar::expr::{subst_vars, unfolding, Grammar, GrammarExpr, MuSystem};
use crate::grammar::parse_tree::ParseTree;
use crate::transform::{TransformError, Transformer};

/// `roll : el(F_entry)(μF) ⊸ μF entry` — wraps a one-step unfolding.
pub fn roll(system: Arc<MuSystem>, entry: usize) -> Transformer {
    let dom = unfolding(&system, entry);
    let cod = crate::grammar::expr::mu(system, entry);
    Transformer::from_fn("roll", dom, cod, |t| Ok(ParseTree::roll(t.clone())))
}

/// `unroll : μF entry ⊸ el(F_entry)(μF)` — unwraps one constructor layer.
/// The inverse of [`roll`] (initial algebras are fixed points).
pub fn unroll(system: Arc<MuSystem>, entry: usize) -> Transformer {
    let dom = crate::grammar::expr::mu(system.clone(), entry);
    let cod = unfolding(&system, entry);
    Transformer::from_fn("unroll", dom, cod, |t| match t {
        ParseTree::Roll(inner) => Ok((**inner).clone()),
        other => Err(TransformError::Custom(format!(
            "unroll: expected roll, got {other}"
        ))),
    })
}

/// Functorial action `map(F_entry) f : el(F_entry)(A) ⊸ el(F_entry)(B)`
/// (Fig. 17): applies `fs[i] : A_i ⊸ B_i` at every `Var(i)` position of
/// the body of definition `entry`, leaving all constant structure alone.
///
/// # Panics
///
/// Panics if `fs` does not provide one transformer per definition.
pub fn map_functor(system: &Arc<MuSystem>, entry: usize, fs: &[Transformer]) -> Transformer {
    assert_eq!(fs.len(), system.len(), "one transformer per definition");
    let doms: Vec<Grammar> = fs.iter().map(|f| f.dom().clone()).collect();
    let cods: Vec<Grammar> = fs.iter().map(|f| f.cod().clone()).collect();
    let dom = subst_vars(system.def(entry), &doms);
    let cod = subst_vars(system.def(entry), &cods);
    let body = system.def(entry).clone();
    let fs = fs.to_vec();
    Transformer::from_fn("map", dom, cod, move |t| {
        map_vars(&body, t, &|i, sub| fs[i].apply(sub))
    })
}

/// Walks a definition body and a parse tree in parallel, applying `f` at
/// every recursion-variable position. The structural backbone of both
/// [`map_functor`] and [`fold`].
pub(crate) fn map_vars(
    body: &Grammar,
    tree: &ParseTree,
    f: &dyn Fn(usize, &ParseTree) -> Result<ParseTree, TransformError>,
) -> Result<ParseTree, TransformError> {
    let fail = || {
        Err(TransformError::Custom(format!(
            "map: tree {tree} does not match functor body {body}"
        )))
    };
    match (&**body, tree) {
        (GrammarExpr::Var(i), t) => f(*i, t),
        (GrammarExpr::Tensor(l, r), ParseTree::Pair(tl, tr)) => {
            Ok(ParseTree::pair(map_vars(l, tl, f)?, map_vars(r, tr, f)?))
        }
        (GrammarExpr::Plus(gs), ParseTree::Inj { index, tree: t }) => match gs.get(*index) {
            Some(g) => Ok(ParseTree::inj(*index, map_vars(g, t, f)?)),
            None => fail(),
        },
        (GrammarExpr::With(gs), ParseTree::Tuple(ts)) if gs.len() == ts.len() => {
            let mapped = gs
                .iter()
                .zip(ts)
                .map(|(g, t)| map_vars(g, t, f))
                .collect::<Result<Vec<_>, _>>()?;
            Ok(ParseTree::Tuple(mapped))
        }
        // Constant positions: no recursion variables inside (nested μ
        // systems are closed), so the subtree passes through unchanged.
        (GrammarExpr::Char(_), _)
        | (GrammarExpr::Eps, _)
        | (GrammarExpr::Top, _)
        | (GrammarExpr::Mu { .. }, _) => Ok(tree.clone()),
        (GrammarExpr::Bot, _) => fail(),
        _ => fail(),
    }
}

/// `fold` — the elimination principle of Fig. 10.
///
/// Given one algebra per definition, `algebras[i] : el(F_i)(A) ⊸ A_i`
/// (where the domain is the body of definition `i` with `Var(j)` replaced
/// by `algebras[j].cod()`), produces the unique homomorphism
/// `μF entry ⊸ A_entry`.
///
/// # Panics
///
/// Panics if the number of algebras does not match the system, or an
/// algebra's domain is not the body instantiated at the algebra codomains
/// (a wrongly-typed algebra).
pub fn fold(system: Arc<MuSystem>, entry: usize, algebras: Vec<Transformer>) -> Transformer {
    assert_eq!(
        algebras.len(),
        system.len(),
        "one algebra per definition of the system"
    );
    let cods: Vec<Grammar> = algebras.iter().map(|a| a.cod().clone()).collect();
    for (i, alg) in algebras.iter().enumerate() {
        let expected = subst_vars(system.def(i), &cods);
        assert_eq!(
            alg.dom(),
            &expected,
            "algebra {i} has domain {} but the functor body demands {expected}",
            alg.dom()
        );
    }
    let dom = crate::grammar::expr::mu(system.clone(), entry);
    let cod = cods[entry].clone();
    Transformer::from_fn("fold", dom, cod, move |t| {
        fold_apply(&system, &algebras, entry, t)
    })
}

fn fold_apply(
    system: &Arc<MuSystem>,
    algebras: &[Transformer],
    entry: usize,
    tree: &ParseTree,
) -> Result<ParseTree, TransformError> {
    match tree {
        ParseTree::Roll(inner) => {
            // Ind-β: fold f (roll e) = f (map (fold f) e).
            let mapped = map_vars(system.def(entry), inner, &|j, sub| {
                fold_apply(system, algebras, j, sub)
            })?;
            algebras[entry].apply(&mapped)
        }
        other => Err(TransformError::Custom(format!(
            "fold: expected roll, got {other}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::{Alphabet, GString, Symbol};
    use crate::grammar::expr::{alt, chr, eps, star, tensor, var};
    use crate::grammar::parse_tree::validate;
    use crate::transform::combinators::{assoc, case, either, id, inj, tensor_par, unit_l};

    fn setup() -> (Alphabet, Symbol, Symbol) {
        let s = Alphabet::abc();
        (s.clone(), s.symbol("a").unwrap(), s.symbol("b").unwrap())
    }

    /// Builds the star system for grammar `a` and a list parse of the
    /// given element trees.
    fn star_system(a: Grammar) -> Arc<MuSystem> {
        MuSystem::new(vec![alt(eps(), tensor(a, var(0)))], vec!["star".to_owned()])
    }

    fn list_tree(elems: Vec<ParseTree>) -> ParseTree {
        let mut t = ParseTree::roll(ParseTree::inj(0, ParseTree::Unit));
        for e in elems.into_iter().rev() {
            t = ParseTree::roll(ParseTree::inj(1, ParseTree::pair(e, t)));
        }
        t
    }

    #[test]
    fn roll_unroll_inverse() {
        let (_, a, _) = setup();
        let sys = star_system(chr(a));
        let t = list_tree(vec![ParseTree::Char(a), ParseTree::Char(a)]);
        let un = unroll(sys.clone(), 0).apply_checked(&t).unwrap();
        let re = roll(sys, 0).apply_checked(&un).unwrap();
        assert_eq!(re, t);
    }

    #[test]
    fn fold_length_as_bang() {
        let (s, a, _) = setup();
        // fold with algebra into ⊤: I ⊕ ('a' ⊗ ⊤) ⊸ ⊤ — collapses a list.
        let sys = star_system(chr(a));
        let alg_dom_summands = [eps(), tensor(chr(a), crate::grammar::expr::top())];
        let alg = case(vec![
            crate::transform::combinators::bang(alg_dom_summands[0].clone()),
            crate::transform::combinators::bang(alg_dom_summands[1].clone()),
        ]);
        let f = fold(sys, 0, vec![alg]);
        let t = list_tree(vec![ParseTree::Char(a); 3]);
        let out = f.apply_checked(&t).unwrap();
        assert_eq!(out.flatten(), s.parse_str("aaa").unwrap());
        assert!(matches!(out, ParseTree::Top(_)));
    }

    /// Fig. 4: `h : (A ⊗ A)* ⊸ A*`, `h nil = nil`,
    /// `h (cons (a₁,a₂) as) = cons a₁ (cons a₂ (h as))`.
    fn fig4_transformer(a: Grammar) -> Transformer {
        let pairs = star_system(tensor(a.clone(), a.clone()));
        let astar = star(a.clone());
        // Algebra: I ⊕ ((A⊗A) ⊗ A*) ⊸ A*
        // nil case: I ⊸ A* — σ0 then roll.
        let star_sys = match &*astar {
            GrammarExpr::Mu { system, .. } => system.clone(),
            _ => unreachable!(),
        };
        let nil_case = inj(0, vec![eps(), tensor(a.clone(), astar.clone())])
            .then(&roll(star_sys.clone(), 0))
            .unwrap();
        // cons case: (A⊗A) ⊗ A* ⊸ A*:
        //   assoc to A ⊗ (A ⊗ A*), cons inner, cons outer.
        let cons = |tail_ty: Grammar| -> Transformer {
            // A ⊗ A* ⊸ A*: σ1 then roll.
            inj(1, vec![eps(), tensor(a.clone(), tail_ty)])
                .then(&roll(star_sys.clone(), 0))
                .unwrap()
        };
        let cons_inner = tensor_par(id(a.clone()), cons(astar.clone()));
        let cons_case = assoc(a.clone(), a.clone(), astar.clone())
            .then(&cons_inner)
            .unwrap()
            .then(&cons(astar.clone()))
            .unwrap();
        fold(pairs, 0, vec![either(nil_case, cons_case)])
    }

    #[test]
    fn fig4_pairs_to_star() {
        let (s, a, _) = setup();
        let h = fig4_transformer(chr(a));
        // Input: list of 2 pairs — parses "aaaa".
        let pair_elem = ParseTree::pair(ParseTree::Char(a), ParseTree::Char(a));
        let t = list_tree(vec![pair_elem.clone(), pair_elem]);
        let out = h.apply_checked(&t).unwrap();
        let w = s.parse_str("aaaa").unwrap();
        assert_eq!(out.flatten(), w);
        validate(&out, &star(chr(a)), &w).unwrap();
        // Empty list maps to nil.
        let out = h.apply_checked(&list_tree(vec![])).unwrap();
        assert_eq!(out.flatten(), GString::new());
    }

    #[test]
    fn ind_beta_law() {
        let (_, a, _) = setup();
        // fold f (roll e) == f (map (fold f) e) — check on Fig. 4's fold.
        let h = fig4_transformer(chr(a));
        let sys = star_system(tensor(chr(a), chr(a)));
        let pair_elem = ParseTree::pair(ParseTree::Char(a), ParseTree::Char(a));
        let t = list_tree(vec![pair_elem.clone(), pair_elem]);
        // Left side.
        let lhs = h.apply(&t).unwrap();
        // Right side: unroll, map fold over vars, apply algebra. We can't
        // reach the algebra directly, so recompute via map_vars + h.
        let inner = match &t {
            ParseTree::Roll(i) => (**i).clone(),
            _ => unreachable!(),
        };
        let mapped = map_vars(sys.def(0), &inner, &|_, sub| h.apply(sub)).unwrap();
        // mapped : I ⊕ ((A⊗A) ⊗ A*) — apply the same algebra h uses by
        // folding a singleton: reconstruct via cons of head + tail.
        match mapped {
            ParseTree::Inj { index: 1, tree } => match *tree {
                ParseTree::Pair(hd, tl) => {
                    // lhs must be cons a1 (cons a2 tl).
                    let (a1, a2) = match *hd {
                        ParseTree::Pair(x, y) => (*x, *y),
                        other => panic!("expected pair head, got {other}"),
                    };
                    let expect = ParseTree::roll(ParseTree::inj(
                        1,
                        ParseTree::pair(
                            a1,
                            ParseTree::roll(ParseTree::inj(1, ParseTree::pair(a2, *tl))),
                        ),
                    ));
                    assert_eq!(lhs, expect);
                }
                other => panic!("expected pair, got {other}"),
            },
            other => panic!("expected cons image, got {other}"),
        }
    }

    #[test]
    fn map_functor_acts_at_var_positions_only() {
        let (_, a, b) = setup();
        let sys = star_system(chr(a));
        // map(F)(f) with f : ⊤ ⊸ ⊤ over the body I ⊕ ('a' ⊗ X): chars stay.
        let f = id(crate::grammar::expr::top());
        let m = map_functor(&sys, 0, &[f]);
        // Need a tree of I ⊕ ('a' ⊗ ⊤).
        let t = ParseTree::inj(
            1,
            ParseTree::pair(ParseTree::Char(a), ParseTree::Top(GString::singleton(b))),
        );
        assert_eq!(m.apply_checked(&t).unwrap(), t);
    }

    #[test]
    fn fold_rejects_wrong_algebra_count() {
        let (_, a, _) = setup();
        let sys = star_system(chr(a));
        let result = std::panic::catch_unwind(|| fold(sys, 0, vec![]));
        assert!(result.is_err());
    }

    #[test]
    fn unit_l_after_fold_composes() {
        // Smoke test that fold results compose with other combinators.
        let (_, a, _) = setup();
        let sys = star_system(chr(a));
        let astar = crate::grammar::expr::mu(sys.clone(), 0);
        let f = unit_l(astar.clone());
        let t = ParseTree::pair(ParseTree::Unit, list_tree(vec![ParseTree::Char(a)]));
        let out = f.apply_checked(&t).unwrap();
        assert_eq!(out.flatten(), GString::singleton(a));
        let _ = sys;
    }

    use crate::grammar::expr::GrammarExpr;
}
