//! Parse transformers: the semantics of linear terms.
//!
//! A linear term `Γ; a : A ⊢ e : B` denotes a *parse transformer*
//! (Definition 5.2): for every string `w`, a function `A(w) → B(w)`. The
//! defining property — a transformer maps parses of `w` to parses of the
//! *same* `w` — is the semantic content of intrinsic verification: a parser
//! typed `String ⊸ A ⊕ A¬` can only ever return parses of its actual
//! input.
//!
//! [`Transformer`] packages a tree-to-tree function with its domain and
//! codomain grammars. Transformers built from the combinators in
//! [`combinators`] preserve yields *by construction*; transformers built
//! from raw closures with [`Transformer::from_fn`] are checked dynamically
//! by [`Transformer::apply_checked`], which validates the input against
//! the domain, the output against the codomain, and yield preservation.
//!
//! There is deliberately **no `swap` combinator**: the calculus is
//! non-commutative (§3), and the absence of exchange is what makes the
//! typing discipline sound for parsing.

pub mod combinators;
pub mod fold;

use std::fmt;
use std::sync::Arc;

use crate::alphabet::GString;
use crate::grammar::expr::Grammar;
use crate::grammar::parse_tree::{check_shape, ParseTree, ValidateError};

/// Grammar equality with the hash-consing fast path first: grammars
/// built through the interned constructors of [`crate::grammar::expr`]
/// are the *same* `Arc` whenever they are structurally equal, so the
/// pointer check answers in O(1) and the structural fallback only runs
/// for grammars assembled outside the interner.
pub fn grammar_eq(a: &Grammar, b: &Grammar) -> bool {
    Arc::ptr_eq(a, b) || a == b
}

/// Errors raised when applying a parse transformer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransformError {
    /// The input tree does not have the shape the transformer expects.
    InputShape {
        /// Name of the transformer that failed.
        transformer: String,
        /// The underlying validation error.
        cause: ValidateError,
    },
    /// The output tree does not validate against the codomain
    /// (only detected by [`Transformer::apply_checked`]).
    OutputShape {
        /// Name of the transformer that failed.
        transformer: String,
        /// The underlying validation error.
        cause: ValidateError,
    },
    /// The transformer changed the underlying string — a violation of the
    /// parse-transformer contract (only detected by `apply_checked`).
    YieldChanged {
        /// Name of the offending transformer.
        transformer: String,
        /// Yield of the input tree.
        input: GString,
        /// Yield of the output tree.
        output: GString,
    },
    /// A transformer out of the empty grammar `0` was applied; no input
    /// can exist, so this indicates an upstream validation failure.
    Unreachable {
        /// Name of the transformer.
        transformer: String,
    },
    /// Two transformers were composed with mismatched types.
    ComposeMismatch {
        /// Display form of the first transformer's codomain.
        cod: String,
        /// Display form of the second transformer's domain.
        dom: String,
    },
    /// A domain-specific failure from a [`Transformer::from_fn`] closure.
    Custom(String),
}

impl fmt::Display for TransformError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransformError::InputShape { transformer, cause } => {
                write!(f, "input to {transformer} is malformed: {cause}")
            }
            TransformError::OutputShape { transformer, cause } => {
                write!(f, "output of {transformer} is malformed: {cause}")
            }
            TransformError::YieldChanged {
                transformer,
                input,
                output,
            } => write!(
                f,
                "{transformer} changed the underlying string {input} to {output}"
            ),
            TransformError::Unreachable { transformer } => {
                write!(f, "{transformer} applied to an impossible input")
            }
            TransformError::ComposeMismatch { cod, dom } => {
                write!(
                    f,
                    "cannot compose: codomain {cod} differs from domain {dom}"
                )
            }
            TransformError::Custom(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for TransformError {}

type TransformFn = dyn Fn(&ParseTree) -> Result<ParseTree, TransformError> + Send + Sync;

/// A parse transformer `↑(A ⊸ B)`: a yield-preserving function from
/// parses of `A` to parses of `B`.
///
/// Cloning is O(1); the implementation is shared.
#[derive(Clone)]
pub struct Transformer {
    dom: Grammar,
    cod: Grammar,
    name: String,
    imp: Arc<TransformFn>,
}

impl Transformer {
    /// Wraps an arbitrary closure as a transformer from `dom` to `cod`.
    ///
    /// The closure is *trusted* by [`Transformer::apply`] but fully
    /// checked by [`Transformer::apply_checked`]; the test suites of this
    /// workspace apply every hand-written transformer in checked mode.
    pub fn from_fn(
        name: impl Into<String>,
        dom: Grammar,
        cod: Grammar,
        f: impl Fn(&ParseTree) -> Result<ParseTree, TransformError> + Send + Sync + 'static,
    ) -> Transformer {
        Transformer {
            dom,
            cod,
            name: name.into(),
            imp: Arc::new(f),
        }
    }

    /// The domain grammar `A`.
    pub fn dom(&self) -> &Grammar {
        &self.dom
    }

    /// The codomain grammar `B`.
    pub fn cod(&self) -> &Grammar {
        &self.cod
    }

    /// The transformer's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Applies the transformer.
    ///
    /// # Errors
    ///
    /// Propagates any error from the underlying implementation; does not
    /// itself validate shapes (see [`Transformer::apply_checked`]).
    pub fn apply(&self, tree: &ParseTree) -> Result<ParseTree, TransformError> {
        (self.imp)(tree)
    }

    /// Applies the transformer with full dynamic verification: the input
    /// must validate against the domain, the output against the codomain,
    /// and the yield must be preserved.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::InputShape`], [`TransformError::OutputShape`]
    /// or [`TransformError::YieldChanged`] on a contract violation, in
    /// addition to any error from the implementation.
    pub fn apply_checked(&self, tree: &ParseTree) -> Result<ParseTree, TransformError> {
        check_shape(tree, &self.dom, None).map_err(|cause| TransformError::InputShape {
            transformer: self.name.clone(),
            cause,
        })?;
        let out = (self.imp)(tree)?;
        check_shape(&out, &self.cod, None).map_err(|cause| TransformError::OutputShape {
            transformer: self.name.clone(),
            cause,
        })?;
        let (iy, oy) = (tree.flatten(), out.flatten());
        if iy != oy {
            return Err(TransformError::YieldChanged {
                transformer: self.name.clone(),
                input: iy,
                output: oy,
            });
        }
        Ok(out)
    }

    /// Sequential composition `self ; next` (diagrammatic order): first
    /// `self : A ⊸ B`, then `next : B ⊸ C`.
    ///
    /// # Errors
    ///
    /// Returns [`TransformError::ComposeMismatch`] if the codomain of
    /// `self` is not structurally equal to the domain of `next`.
    pub fn then(&self, next: &Transformer) -> Result<Transformer, TransformError> {
        if !grammar_eq(&self.cod, &next.dom) {
            return Err(TransformError::ComposeMismatch {
                cod: format!("{}", self.cod),
                dom: format!("{}", next.dom),
            });
        }
        let f = self.clone();
        let g = next.clone();
        Ok(Transformer {
            dom: self.dom.clone(),
            cod: next.cod.clone(),
            name: format!("({} ; {})", self.name, next.name),
            imp: Arc::new(move |t| {
                let mid = f.apply(t)?;
                g.apply(&mid)
            }),
        })
    }
}

impl fmt::Debug for Transformer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Transformer({} : {} ⊸ {})",
            self.name, self.dom, self.cod
        )
    }
}

impl fmt::Display for Transformer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} : {} ⊸ {}", self.name, self.dom, self.cod)
    }
}
