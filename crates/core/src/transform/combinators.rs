//! Correct-by-construction transformer combinators.
//!
//! These mirror the combinator style of the paper's Agda shallow embedding
//! (§5.3): each combinator corresponds to a typing rule of Fig. 9 or a
//! structural isomorphism of the biclosed monoidal category `Gr`, and each
//! preserves yields by construction. Notably absent: any form of `swap`
//! (exchange), `dup` (contraction) or `drop` (weakening) — the calculus is
//! non-commutative linear.

use crate::grammar::expr::{alt, and, bot, eps, plus, tensor, top, with, Grammar};
use crate::grammar::parse_tree::ParseTree;
use crate::transform::{TransformError, Transformer};

fn shape_err(name: &str, tree: &ParseTree) -> TransformError {
    TransformError::Custom(format!("{name}: unexpected tree shape {tree}"))
}

/// Identity transformer `id : A ⊸ A`.
pub fn id(a: Grammar) -> Transformer {
    Transformer::from_fn("id", a.clone(), a, |t| Ok(t.clone()))
}

/// Parallel tensor `f ⊗ g : A ⊗ C ⊸ B ⊗ D` from `f : A ⊸ B`, `g : C ⊸ D`.
pub fn tensor_par(f: Transformer, g: Transformer) -> Transformer {
    let dom = tensor(f.dom().clone(), g.dom().clone());
    let cod = tensor(f.cod().clone(), g.cod().clone());
    let name = format!("({} ⊗ {})", f.name(), g.name());
    Transformer::from_fn(name.clone(), dom, cod, move |t| match t {
        ParseTree::Pair(l, r) => Ok(ParseTree::pair(f.apply(l)?, g.apply(r)?)),
        other => Err(shape_err(&name, other)),
    })
}

/// Associator `α : (A ⊗ B) ⊗ C ⊸ A ⊗ (B ⊗ C)`.
pub fn assoc(a: Grammar, b: Grammar, c: Grammar) -> Transformer {
    let dom = tensor(tensor(a.clone(), b.clone()), c.clone());
    let cod = tensor(a, tensor(b, c));
    Transformer::from_fn("assoc", dom, cod, |t| match t {
        ParseTree::Pair(lr, c) => match &**lr {
            ParseTree::Pair(a, b) => Ok(ParseTree::pair(
                (**a).clone(),
                ParseTree::pair((**b).clone(), (**c).clone()),
            )),
            other => Err(shape_err("assoc", other)),
        },
        other => Err(shape_err("assoc", other)),
    })
}

/// Inverse associator `α⁻¹ : A ⊗ (B ⊗ C) ⊸ (A ⊗ B) ⊗ C`.
pub fn assoc_inv(a: Grammar, b: Grammar, c: Grammar) -> Transformer {
    let dom = tensor(a.clone(), tensor(b.clone(), c.clone()));
    let cod = tensor(tensor(a, b), c);
    Transformer::from_fn("assoc⁻¹", dom, cod, |t| match t {
        ParseTree::Pair(a, rc) => match &**rc {
            ParseTree::Pair(b, c) => Ok(ParseTree::pair(
                ParseTree::pair((**a).clone(), (**b).clone()),
                (**c).clone(),
            )),
            other => Err(shape_err("assoc⁻¹", other)),
        },
        other => Err(shape_err("assoc⁻¹", other)),
    })
}

/// Left unitor `λ : I ⊗ A ⊸ A`.
pub fn unit_l(a: Grammar) -> Transformer {
    let dom = tensor(eps(), a.clone());
    Transformer::from_fn("unitl", dom, a, |t| match t {
        ParseTree::Pair(u, a) if **u == ParseTree::Unit => Ok((**a).clone()),
        other => Err(shape_err("unitl", other)),
    })
}

/// Inverse left unitor `λ⁻¹ : A ⊸ I ⊗ A`.
pub fn unit_l_inv(a: Grammar) -> Transformer {
    let cod = tensor(eps(), a.clone());
    Transformer::from_fn("unitl⁻¹", a, cod, |t| {
        Ok(ParseTree::pair(ParseTree::Unit, t.clone()))
    })
}

/// Right unitor `ρ : A ⊗ I ⊸ A`.
pub fn unit_r(a: Grammar) -> Transformer {
    let dom = tensor(a.clone(), eps());
    Transformer::from_fn("unitr", dom, a, |t| match t {
        ParseTree::Pair(a, u) if **u == ParseTree::Unit => Ok((**a).clone()),
        other => Err(shape_err("unitr", other)),
    })
}

/// Inverse right unitor `ρ⁻¹ : A ⊸ A ⊗ I`.
pub fn unit_r_inv(a: Grammar) -> Transformer {
    let cod = tensor(a.clone(), eps());
    Transformer::from_fn("unitr⁻¹", a, cod, |t| {
        Ok(ParseTree::pair(t.clone(), ParseTree::Unit))
    })
}

/// Injection `σ index : A_index ⊸ ⊕_i A_i`.
///
/// # Panics
///
/// Panics if `index` is out of range for `summands`.
pub fn inj(index: usize, summands: Vec<Grammar>) -> Transformer {
    let dom = summands[index].clone();
    let cod = plus(summands);
    Transformer::from_fn(format!("σ{index}"), dom, cod, move |t| {
        Ok(ParseTree::inj(index, t.clone()))
    })
}

/// Case analysis: from `branches[i] : A_i ⊸ B` (all with the same
/// codomain), builds `⊕_i A_i ⊸ B` — the elimination rule for `⊕`.
///
/// # Panics
///
/// Panics if `branches` is empty (use [`absurd`] for the empty sum) or the
/// branch codomains disagree.
pub fn case(branches: Vec<Transformer>) -> Transformer {
    let cod = branches
        .first()
        .expect("case of an empty sum: use absurd")
        .cod()
        .clone();
    for b in &branches {
        assert!(
            crate::transform::grammar_eq(b.cod(), &cod),
            "case branches must share a codomain"
        );
    }
    let dom = plus(branches.iter().map(|b| b.dom().clone()).collect());
    Transformer::from_fn("case", dom, cod, move |t| match t {
        ParseTree::Inj { index, tree } => match branches.get(*index) {
            Some(b) => b.apply(tree),
            None => Err(shape_err("case", t)),
        },
        other => Err(shape_err("case", other)),
    })
}

/// Projection `π index : &_i A_i ⊸ A_index`.
///
/// # Panics
///
/// Panics if `index` is out of range for `components`.
pub fn proj(index: usize, components: Vec<Grammar>) -> Transformer {
    let cod = components[index].clone();
    let dom = with(components);
    Transformer::from_fn(format!("π{index}"), dom, cod, move |t| match t {
        ParseTree::Tuple(ts) => ts.get(index).cloned().ok_or_else(|| shape_err("π", t)),
        other => Err(shape_err("π", other)),
    })
}

/// Pairing: from `components[i] : B ⊸ A_i` (all with the same domain),
/// builds `B ⊸ &_i A_i` — the introduction rule for `&`.
///
/// # Panics
///
/// Panics if `components` is empty (use [`bang`] for `⊤`) or the domains
/// disagree.
pub fn pair_with(components: Vec<Transformer>) -> Transformer {
    let dom = components
        .first()
        .expect("pairing into an empty & : use bang")
        .dom()
        .clone();
    for c in &components {
        assert!(
            crate::transform::grammar_eq(c.dom(), &dom),
            "pair_with components must share a domain"
        );
    }
    let cod = with(components.iter().map(|c| c.cod().clone()).collect());
    Transformer::from_fn("⟨…⟩", dom, cod, move |t| {
        let ts = components
            .iter()
            .map(|c| c.apply(t))
            .collect::<Result<Vec<_>, _>>()?;
        Ok(ParseTree::Tuple(ts))
    })
}

/// The unique map `! : A ⊸ ⊤`.
pub fn bang(a: Grammar) -> Transformer {
    Transformer::from_fn("!", a, top(), |t| Ok(ParseTree::Top(t.flatten())))
}

/// The unique map out of the empty grammar, `absurd : 0 ⊸ A`.
///
/// Applying it is always an error: no parse of `0` exists.
pub fn absurd(a: Grammar) -> Transformer {
    Transformer::from_fn("absurd", bot(), a, |_| {
        Err(TransformError::Unreachable {
            transformer: "absurd".to_owned(),
        })
    })
}

/// Left distributor of `⊗` over `⊕`:
/// `A ⊗ (B ⊕ C) ⊸ (A ⊗ B) ⊕ (A ⊗ C)`.
pub fn distl(a: Grammar, b: Grammar, c: Grammar) -> Transformer {
    let dom = tensor(a.clone(), alt(b.clone(), c.clone()));
    let cod = alt(tensor(a.clone(), b), tensor(a, c));
    Transformer::from_fn("distl", dom, cod, |t| match t {
        ParseTree::Pair(l, r) => match &**r {
            ParseTree::Inj { index, tree } => Ok(ParseTree::inj(
                *index,
                ParseTree::pair((**l).clone(), (**tree).clone()),
            )),
            other => Err(shape_err("distl", other)),
        },
        other => Err(shape_err("distl", other)),
    })
}

/// Binary product of maps: `f & g : A ⊸ B & C` from `f : A ⊸ B` and
/// `g : A ⊸ C`. Shorthand for a two-component [`pair_with`].
pub fn fanout(f: Transformer, g: Transformer) -> Transformer {
    pair_with(vec![f, g])
}

/// Binary case: `[f, g] : A ⊕ B ⊸ C` from `f : A ⊸ C`, `g : B ⊸ C`.
/// Shorthand for a two-branch [`case`].
pub fn either(f: Transformer, g: Transformer) -> Transformer {
    case(vec![f, g])
}

/// Product of two grammars' `&` as a transformer pair check helper:
/// `first : A & B ⊸ A`. Shorthand for [`proj`] at index 0.
pub fn first(a: Grammar, b: Grammar) -> Transformer {
    proj(0, vec![a, b])
}

/// `second : A & B ⊸ B`. Shorthand for [`proj`] at index 1.
pub fn second(a: Grammar, b: Grammar) -> Transformer {
    proj(1, vec![a, b])
}

/// `iso` helper: a pair of mutually inverse transformers (checked by the
/// theory layer / tests, not statically).
#[derive(Debug, Clone)]
pub struct Iso {
    /// Forward direction.
    pub fwd: Transformer,
    /// Backward direction.
    pub bwd: Transformer,
}

impl Iso {
    /// Builds an iso from two transformers with matching endpoints.
    ///
    /// # Panics
    ///
    /// Panics if the endpoints do not line up.
    pub fn new(fwd: Transformer, bwd: Transformer) -> Iso {
        assert!(
            crate::transform::grammar_eq(fwd.dom(), bwd.cod()),
            "iso endpoints must line up"
        );
        assert!(
            crate::transform::grammar_eq(fwd.cod(), bwd.dom()),
            "iso endpoints must line up"
        );
        Iso { fwd, bwd }
    }

    /// The reverse iso.
    pub fn reverse(&self) -> Iso {
        Iso {
            fwd: self.bwd.clone(),
            bwd: self.fwd.clone(),
        }
    }
}

/// `and` / binary-`&` introduction on grammars, re-exported for symmetry
/// with [`either`]: `a & b` as a grammar.
pub fn and_grammar(a: Grammar, b: Grammar) -> Grammar {
    and(a, b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::{Alphabet, Symbol};
    use crate::grammar::expr::chr;

    fn setup() -> (Alphabet, Symbol, Symbol, Symbol) {
        let s = Alphabet::abc();
        (
            s.clone(),
            s.symbol("a").unwrap(),
            s.symbol("b").unwrap(),
            s.symbol("c").unwrap(),
        )
    }

    fn leaf(sym: Symbol) -> ParseTree {
        ParseTree::Char(sym)
    }

    #[test]
    fn id_roundtrip() {
        let (_, a, ..) = setup();
        let t = leaf(a);
        assert_eq!(id(chr(a)).apply_checked(&t).unwrap(), t);
    }

    #[test]
    fn assoc_roundtrips() {
        let (_, a, b, c) = setup();
        let (ga, gb, gc) = (chr(a), chr(b), chr(c));
        let t = ParseTree::pair(ParseTree::pair(leaf(a), leaf(b)), leaf(c));
        let fwd = assoc(ga.clone(), gb.clone(), gc.clone());
        let bwd = assoc_inv(ga, gb, gc);
        let mid = fwd.apply_checked(&t).unwrap();
        assert_eq!(
            mid,
            ParseTree::pair(leaf(a), ParseTree::pair(leaf(b), leaf(c)))
        );
        assert_eq!(bwd.apply_checked(&mid).unwrap(), t);
    }

    #[test]
    fn unitors_roundtrip() {
        let (_, a, ..) = setup();
        let ga = chr(a);
        let t = leaf(a);
        let lt = unit_l_inv(ga.clone()).apply_checked(&t).unwrap();
        assert_eq!(unit_l(ga.clone()).apply_checked(&lt).unwrap(), t);
        let rt = unit_r_inv(ga.clone()).apply_checked(&t).unwrap();
        assert_eq!(unit_r(ga).apply_checked(&rt).unwrap(), t);
    }

    #[test]
    fn case_dispatches_on_tag() {
        let (_, a, b, _) = setup();
        // [inl ↦ !, inr ↦ !] : 'a' ⊕ 'b' ⊸ ⊤
        let f = either(bang(chr(a)), bang(chr(b)));
        let out = f.apply_checked(&ParseTree::inj(1, leaf(b))).unwrap();
        assert!(matches!(out, ParseTree::Top(_)));
    }

    #[test]
    fn tensor_par_maps_both_sides() {
        let (_, a, b, _) = setup();
        let f = tensor_par(bang(chr(a)), id(chr(b)));
        let out = f.apply_checked(&ParseTree::pair(leaf(a), leaf(b))).unwrap();
        match out {
            ParseTree::Pair(l, r) => {
                assert!(matches!(*l, ParseTree::Top(_)));
                assert_eq!(*r, leaf(b));
            }
            other => panic!("expected Pair, got {other}"),
        }
    }

    #[test]
    fn fanout_then_proj_is_component() {
        let (_, a, ..) = setup();
        let ga = chr(a);
        let f = fanout(id(ga.clone()), bang(ga.clone()));
        let p0 = first(ga.clone(), top());
        let composed = f.then(&p0).unwrap();
        let t = leaf(a);
        assert_eq!(composed.apply_checked(&t).unwrap(), t);
    }

    #[test]
    fn compose_mismatch_is_an_error() {
        let (_, a, b, _) = setup();
        let f = id(chr(a));
        let g = id(chr(b));
        assert!(matches!(
            f.then(&g),
            Err(TransformError::ComposeMismatch { .. })
        ));
    }

    #[test]
    fn yield_violation_caught_by_checked_apply() {
        let (_, a, b, _) = setup();
        // A deliberately broken transformer that replaces 'a' by 'b'.
        let evil = Transformer::from_fn("evil", chr(a), chr(b), move |_| Ok(leaf(b)));
        assert!(matches!(
            evil.apply_checked(&leaf(a)),
            Err(TransformError::YieldChanged { .. })
        ));
    }

    #[test]
    fn distl_routes_tags_outward() {
        let (_, a, b, c) = setup();
        let f = distl(chr(a), chr(b), chr(c));
        let t = ParseTree::pair(leaf(a), ParseTree::inj(1, leaf(c)));
        let out = f.apply_checked(&t).unwrap();
        assert_eq!(out, ParseTree::inj(1, ParseTree::pair(leaf(a), leaf(c))));
    }

    #[test]
    fn absurd_never_applies() {
        let (_, a, ..) = setup();
        let f = absurd(chr(a));
        assert!(matches!(
            f.apply(&ParseTree::Unit),
            Err(TransformError::Unreachable { .. })
        ));
    }
}
