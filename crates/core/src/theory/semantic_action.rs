//! Semantic actions (§6.2 of the paper, "Future Work" made concrete).
//!
//! The paper defines a *semantic action* for a linear type `A` with
//! outputs in a non-linear type `X` as a function `↑(A ⊸ ⊕_{_:X} ⊤)`: it
//! consumes a concrete parse and produces a semantic value, discarding
//! the syntax (the `⊤` holds the consumed string). [`SemanticAction`]
//! packages exactly that — a function from parse trees to values of a
//! caller-chosen Rust type — together with the domain grammar, and
//! [`SemanticAction::run`] checks the input against the domain before
//! folding it.
//!
//! The test suite uses this to evaluate arithmetic `Exp` parses to
//! numbers and Dyck parses to nesting depths — the abstract-syntax-tree
//! emission step the paper's introduction motivates.

use std::fmt;
use std::sync::Arc;

use crate::alphabet::GString;
use crate::grammar::expr::Grammar;
use crate::grammar::parse_tree::{check_shape, ParseTree};

/// Errors from running a semantic action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ActionError {
    /// The input tree is not a parse of the action's grammar.
    BadInput(String),
    /// The action itself failed (domain-specific).
    Failed(String),
}

impl fmt::Display for ActionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActionError::BadInput(m) => write!(f, "semantic action input invalid: {m}"),
            ActionError::Failed(m) => write!(f, "semantic action failed: {m}"),
        }
    }
}

impl std::error::Error for ActionError {}

type ActionFn<X> = dyn Fn(&ParseTree) -> Result<X, ActionError> + Send + Sync;

/// A semantic action `↑(A ⊸ ⊕_{_:X} ⊤)`: from parses of `grammar` to
/// semantic values of type `X`.
#[derive(Clone)]
pub struct SemanticAction<X> {
    grammar: Grammar,
    name: String,
    action: Arc<ActionFn<X>>,
}

impl<X> SemanticAction<X> {
    /// Wraps a function as a semantic action over `grammar`.
    pub fn new(
        name: impl Into<String>,
        grammar: Grammar,
        action: impl Fn(&ParseTree) -> Result<X, ActionError> + Send + Sync + 'static,
    ) -> SemanticAction<X> {
        SemanticAction {
            grammar,
            name: name.into(),
            action: Arc::new(action),
        }
    }

    /// The domain grammar `A`.
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    /// The action's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Runs the action on a tree, first checking it against the domain
    /// grammar (the typing side of `A ⊸ ⊕_{_:X} ⊤`).
    ///
    /// # Errors
    ///
    /// Returns [`ActionError::BadInput`] for shape-invalid trees and
    /// propagates the action's own failures.
    pub fn run(&self, tree: &ParseTree) -> Result<X, ActionError> {
        check_shape(tree, &self.grammar, None)
            .map_err(|e| ActionError::BadInput(format!("{e}")))?;
        (self.action)(tree)
    }

    /// Runs the action and returns the semantic value together with the
    /// consumed string — the literal `⊕_{x:X} ⊤` shape of the paper.
    ///
    /// # Errors
    ///
    /// As for [`SemanticAction::run`].
    pub fn run_with_yield(&self, tree: &ParseTree) -> Result<(X, GString), ActionError> {
        let x = self.run(tree)?;
        Ok((x, tree.flatten()))
    }

    /// Post-composes a pure function on the semantic values.
    pub fn map<Y: 'static>(self, f: impl Fn(X) -> Y + Send + Sync + 'static) -> SemanticAction<Y>
    where
        X: 'static,
    {
        let action = self.action.clone();
        SemanticAction {
            grammar: self.grammar.clone(),
            name: format!("{}∘map", self.name),
            action: Arc::new(move |t| action(t).map(&f)),
        }
    }
}

impl<X> fmt::Debug for SemanticAction<X> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SemanticAction({} : {} ⊸ ⊕ ⊤)", self.name, self.grammar)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::grammar::compile::CompiledGrammar;
    use crate::grammar::expr::{chr, star};

    #[test]
    fn count_characters_action() {
        let s = Alphabet::abc();
        let a = s.symbol("a").unwrap();
        let g = star(chr(a));
        let action = SemanticAction::new("length", g.clone(), |t| Ok(t.flatten().len()));
        let cg = CompiledGrammar::new(&g);
        for n in 0..5 {
            let w = s.parse_str(&"a".repeat(n)).unwrap();
            let tree = cg.parses(&w, 2).trees.remove(0);
            assert_eq!(action.run(&tree).unwrap(), n);
            let (len, y) = action.run_with_yield(&tree).unwrap();
            assert_eq!((len, y), (n, w));
        }
    }

    #[test]
    fn bad_input_is_rejected() {
        let s = Alphabet::abc();
        let a = s.symbol("a").unwrap();
        let action = SemanticAction::new("unit-only", crate::grammar::expr::eps(), |_| Ok(()));
        assert!(matches!(
            action.run(&ParseTree::Char(a)),
            Err(ActionError::BadInput(_))
        ));
    }

    #[test]
    fn map_post_composes() {
        let g = crate::grammar::expr::eps();
        let action = SemanticAction::new("zero", g, |_| Ok(0usize)).map(|n| n + 41);
        assert_eq!(action.run(&ParseTree::Unit).unwrap(), 41);
    }
}
