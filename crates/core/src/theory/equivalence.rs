//! Weak and strong equivalence of grammars (Definition 4.1).
//!
//! Grammars `A`, `B` are *weakly equivalent* when parse transformers exist
//! in both directions — semantically, they recognize the same language.
//! `A` is a *retract* of `B` when additionally `bwd ∘ fwd = id`, and they
//! are *strongly equivalent* when both composites are the identity — the
//! parse sets are isomorphic string-by-string.
//!
//! Rust cannot verify the composite laws statically, so [`WeakEquiv`]
//! carries the transformers and [`check_retract_on`] /
//! [`StrongEquiv::check_on`] verify the laws *pointwise on enumerated
//! parse sets* of sample strings — the meaning the laws have in the
//! denotational model. Strong equivalence also implies equal parse counts
//! on every string, which [`StrongEquiv::check_counts_on`] exploits as a
//! cheaper independent check.

use crate::alphabet::GString;
use crate::grammar::compile::CompiledGrammar;
use crate::grammar::expr::Grammar;
use crate::transform::{TransformError, Transformer};

/// A weak equivalence `A ≈ B`: transformers in both directions
/// (Definition 4.1). No laws are required.
#[derive(Debug, Clone)]
pub struct WeakEquiv {
    /// `A ⊸ B`.
    pub fwd: Transformer,
    /// `B ⊸ A`.
    pub bwd: Transformer,
}

impl WeakEquiv {
    /// Builds a weak equivalence, checking that the endpoints line up.
    ///
    /// # Panics
    ///
    /// Panics if `fwd` and `bwd` do not have opposite endpoints.
    pub fn new(fwd: Transformer, bwd: Transformer) -> WeakEquiv {
        assert_eq!(fwd.dom(), bwd.cod(), "weak equivalence endpoints");
        assert_eq!(fwd.cod(), bwd.dom(), "weak equivalence endpoints");
        WeakEquiv { fwd, bwd }
    }

    /// The left grammar `A`.
    pub fn left(&self) -> &Grammar {
        self.fwd.dom()
    }

    /// The right grammar `B`.
    pub fn right(&self) -> &Grammar {
        self.fwd.cod()
    }

    /// The symmetric equivalence `B ≈ A`.
    pub fn reverse(&self) -> WeakEquiv {
        WeakEquiv {
            fwd: self.bwd.clone(),
            bwd: self.fwd.clone(),
        }
    }
}

/// Checks the retract law `bwd(fwd(t)) == t` on every enumerated parse of
/// every sample string (with the given enumeration cap).
///
/// # Errors
///
/// Returns a description of the first violation.
pub fn check_retract_on(
    eq: &WeakEquiv,
    strings: &[GString],
    cap: usize,
) -> Result<(), EquivViolation> {
    let cg = CompiledGrammar::new(eq.left());
    for w in strings {
        for t in cg.parses(w, cap).trees {
            let there = eq.fwd.apply_checked(&t).map_err(|e| EquivViolation {
                string: w.clone(),
                detail: format!("fwd failed: {e}"),
            })?;
            let back = eq.bwd.apply_checked(&there).map_err(|e| EquivViolation {
                string: w.clone(),
                detail: format!("bwd failed: {e}"),
            })?;
            if back != t {
                return Err(EquivViolation {
                    string: w.clone(),
                    detail: format!("bwd(fwd(t)) = {back} but t = {t}"),
                });
            }
        }
    }
    Ok(())
}

/// A strong equivalence `A ≅ B`: a weak equivalence whose two composites
/// are the identity (Definition 4.1). Construct with [`StrongEquiv::new`]
/// and validate with [`StrongEquiv::check_on`].
#[derive(Debug, Clone)]
pub struct StrongEquiv(pub WeakEquiv);

impl StrongEquiv {
    /// Wraps a weak equivalence claimed to be strong. The claim is
    /// validated by [`StrongEquiv::check_on`], not here.
    pub fn new(eq: WeakEquiv) -> StrongEquiv {
        StrongEquiv(eq)
    }

    /// The underlying weak equivalence.
    pub fn weak(&self) -> &WeakEquiv {
        &self.0
    }

    /// Checks both roundtrip laws on all enumerated parses of the sample
    /// strings.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check_on(&self, strings: &[GString], cap: usize) -> Result<(), EquivViolation> {
        check_retract_on(&self.0, strings, cap)?;
        check_retract_on(&self.0.reverse(), strings, cap)
    }

    /// Checks the count consequence of strong equivalence: `|A(w)| =
    /// |B(w)|` for each sample string (clamped at `cap`).
    ///
    /// # Errors
    ///
    /// Returns the first string where the counts differ.
    pub fn check_counts_on(&self, strings: &[GString], cap: usize) -> Result<(), EquivViolation> {
        let ca = CompiledGrammar::new(self.0.left());
        let cb = CompiledGrammar::new(self.0.right());
        for w in strings {
            let (na, nb) = (ca.count_parses(w, cap), cb.count_parses(w, cap));
            if na.count != nb.count || na.truncated != nb.truncated {
                return Err(EquivViolation {
                    string: w.clone(),
                    detail: format!(
                        "parse counts differ: {} vs {} (truncated {} vs {})",
                        na.count, nb.count, na.truncated, nb.truncated
                    ),
                });
            }
        }
        Ok(())
    }
}

/// A violation of an equivalence law, with the offending string.
#[derive(Debug, Clone)]
pub struct EquivViolation {
    /// The string where the law failed.
    pub string: GString,
    /// Human-readable description.
    pub detail: String,
}

impl std::fmt::Display for EquivViolation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "equivalence violated at {}: {}",
            self.string, self.detail
        )
    }
}

impl std::error::Error for EquivViolation {}

/// Checks that two transformers with equal endpoints agree pointwise on
/// every enumerated parse of the sample strings — the denotational meaning
/// of a term equality `f ≡ g`.
///
/// # Errors
///
/// Returns the first disagreement.
pub fn check_transformers_equal_on(
    f: &Transformer,
    g: &Transformer,
    strings: &[GString],
    cap: usize,
) -> Result<(), EquivViolation> {
    assert_eq!(f.dom(), g.dom(), "domains must agree");
    assert_eq!(f.cod(), g.cod(), "codomains must agree");
    let cg = CompiledGrammar::new(f.dom());
    for w in strings {
        for t in cg.parses(w, cap).trees {
            let (ft, gt) = (f.apply(&t), g.apply(&t));
            match (&ft, &gt) {
                (Ok(a), Ok(b)) if a == b => {}
                _ => {
                    return Err(EquivViolation {
                        string: w.clone(),
                        detail: format!(
                            "transformers disagree on {t}: {:?} vs {:?}",
                            ft.as_ref().map(|x| format!("{x}")),
                            gt.as_ref().map(|x| format!("{x}"))
                        ),
                    });
                }
            }
        }
    }
    Ok(())
}

/// Composes two weak equivalences `A ≈ B` and `B ≈ C` into `A ≈ C`.
///
/// # Errors
///
/// Propagates a composition mismatch if the middle grammars differ.
pub fn compose_weak(ab: &WeakEquiv, bc: &WeakEquiv) -> Result<WeakEquiv, TransformError> {
    Ok(WeakEquiv {
        fwd: ab.fwd.then(&bc.fwd)?,
        bwd: bc.bwd.then(&ab.bwd)?,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::grammar::expr::{alt, chr, eps, tensor};
    use crate::transform::combinators::{either, id, inj, unit_l, unit_l_inv};

    #[test]
    fn identity_strong_equivalence() {
        let s = Alphabet::abc();
        let a = chr(s.symbol("a").unwrap());
        let eq = StrongEquiv::new(WeakEquiv::new(id(a.clone()), id(a)));
        let strings: Vec<GString> = ["", "a", "b"]
            .iter()
            .map(|w| s.parse_str(w).unwrap())
            .collect();
        eq.check_on(&strings, 16).unwrap();
        eq.check_counts_on(&strings, 16).unwrap();
    }

    #[test]
    fn unitor_strong_equivalence() {
        let s = Alphabet::abc();
        let a = chr(s.symbol("a").unwrap());
        // I ⊗ 'a' ≅ 'a'.
        let eq = StrongEquiv::new(WeakEquiv::new(unit_l(a.clone()), unit_l_inv(a)));
        let strings: Vec<GString> = ["", "a", "aa"]
            .iter()
            .map(|w| s.parse_str(w).unwrap())
            .collect();
        eq.check_on(&strings, 16).unwrap();
        eq.check_counts_on(&strings, 16).unwrap();
    }

    #[test]
    fn retract_that_is_not_strong() {
        let s = Alphabet::abc();
        let a = chr(s.symbol("a").unwrap());
        // A is a retract of A ⊕ A via inl, but not strongly equivalent.
        let fwd = inj(0, vec![a.clone(), a.clone()]);
        let bwd = either(id(a.clone()), id(a.clone()));
        let eq = WeakEquiv::new(fwd, bwd);
        let strings = vec![s.parse_str("a").unwrap()];
        check_retract_on(&eq, &strings, 16).unwrap();
        // The other composite is not the identity: σ1 t maps to σ0 t.
        assert!(check_retract_on(&eq.reverse(), &strings, 16).is_err());
        // And counts differ: 1 vs 2.
        let strong = StrongEquiv::new(eq);
        assert!(strong.check_counts_on(&strings, 16).is_err());
    }

    #[test]
    fn transformer_pointwise_equality() {
        let s = Alphabet::abc();
        let a = chr(s.symbol("a").unwrap());
        let f = id(a.clone());
        let g = unit_l_inv(a.clone()).then(&unit_l(a.clone())).unwrap();
        let strings = vec![GString::new(), s.parse_str("a").unwrap()];
        check_transformers_equal_on(&f, &g, &strings, 16).unwrap();
    }

    #[test]
    fn compose_weak_equivalences() {
        let s = Alphabet::abc();
        let a = chr(s.symbol("a").unwrap());
        let ia = tensor(eps(), a.clone());
        // (I ⊗ 'a') ≈ 'a' composed with 'a' ≈ 'a'.
        let ab = WeakEquiv::new(unit_l(a.clone()), unit_l_inv(a.clone()));
        let bc = WeakEquiv::new(id(a.clone()), id(a.clone()));
        let ac = compose_weak(&ab, &bc).unwrap();
        assert_eq!(ac.left(), &ia);
        assert_eq!(ac.right(), &a);
        let strings = vec![s.parse_str("a").unwrap()];
        StrongEquiv::new(ac).check_on(&strings, 16).unwrap();
        // Composing misaligned equivalences is an error.
        let misaligned = WeakEquiv::new(id(alt(a.clone(), a.clone())), id(alt(a.clone(), a)));
        assert!(compose_weak(&ab, &misaligned).is_err());
    }
}
