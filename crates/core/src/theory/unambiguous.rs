//! Unambiguity and disjointness (Definitions 4.2, 4.5; Lemmas 4.3/4.4/4.7).
//!
//! A grammar `A` is *unambiguous* when any two transformers into it are
//! equal (Definition 4.2); in the set-theoretic model this holds exactly
//! when every parse set `A(w)` has at most one element — the executable
//! characterization used here. Grammars are *disjoint* (Definition 4.5)
//! when no string has a parse of both — the condition a parser's negative
//! grammar must satisfy.
//!
//! These are semantic properties of languages, undecidable in general, so
//! the checks are exhaustive over all strings up to a length bound —
//! exactly how the experiments of EXPERIMENTS.md phrase them.

use crate::alphabet::{Alphabet, GString};
use crate::grammar::compile::CompiledGrammar;
use crate::grammar::expr::Grammar;

/// Iterator over all strings of length ≤ `max_len` over the alphabet, in
/// length-then-lexicographic order.
pub fn all_strings(alphabet: &Alphabet, max_len: usize) -> Vec<GString> {
    let mut out = vec![GString::new()];
    let mut frontier = vec![GString::new()];
    for _ in 0..max_len {
        let mut next = Vec::new();
        for w in &frontier {
            for sym in alphabet.symbols() {
                let mut v = w.clone();
                v.push(sym);
                out.push(v.clone());
                next.push(v);
            }
        }
        frontier = next;
    }
    out
}

/// Evidence that a grammar is ambiguous: a string with two distinct
/// parses (or a truncated parse set, meaning "at least `cap` parses").
#[derive(Debug, Clone)]
pub struct AmbiguityWitness {
    /// The ambiguous string.
    pub string: GString,
    /// Number of parses found (clamped).
    pub count: u64,
}

/// Checks unambiguity (Definition 4.2, model form: `|A(w)| ≤ 1`) for all
/// strings up to `max_len`.
///
/// # Errors
///
/// Returns an [`AmbiguityWitness`] for the first ambiguous string.
pub fn check_unambiguous(
    grammar: &Grammar,
    alphabet: &Alphabet,
    max_len: usize,
) -> Result<(), AmbiguityWitness> {
    let cg = CompiledGrammar::new(grammar);
    for w in all_strings(alphabet, max_len) {
        let amb = cg.count_parses(&w, 4);
        if amb.count > 1 || amb.truncated {
            return Err(AmbiguityWitness {
                string: w,
                count: amb.count,
            });
        }
    }
    Ok(())
}

/// Evidence that two grammars are not disjoint: a string parsed by both.
#[derive(Debug, Clone)]
pub struct OverlapWitness {
    /// The shared string.
    pub string: GString,
}

/// Checks disjointness (Definition 4.5: a function `A & B ⊸ 0` exists,
/// i.e. no string is in both languages) for all strings up to `max_len`.
///
/// # Errors
///
/// Returns an [`OverlapWitness`] for the first shared string.
pub fn check_disjoint(
    a: &Grammar,
    b: &Grammar,
    alphabet: &Alphabet,
    max_len: usize,
) -> Result<(), OverlapWitness> {
    let (ca, cb) = (CompiledGrammar::new(a), CompiledGrammar::new(b));
    for w in all_strings(alphabet, max_len) {
        if ca.recognizes(&w) && cb.recognizes(&w) {
            return Err(OverlapWitness { string: w });
        }
    }
    Ok(())
}

/// Lemma 4.4: if `⊕_i A_i` is unambiguous (up to `max_len`), then each
/// summand is unambiguous — checked directly on the summands.
///
/// # Errors
///
/// Returns the index of the first ambiguous summand with its witness.
pub fn summands_unambiguous(
    summands: &[Grammar],
    alphabet: &Alphabet,
    max_len: usize,
) -> Result<(), (usize, AmbiguityWitness)> {
    for (i, g) in summands.iter().enumerate() {
        check_unambiguous(g, alphabet, max_len).map_err(|w| (i, w))?;
    }
    Ok(())
}

/// Lemma 4.7: if `⊕_i A_i` is unambiguous then distinct summands are
/// pairwise disjoint — checked directly on the summand pairs.
///
/// # Errors
///
/// Returns the overlapping pair and witness.
pub fn summands_disjoint(
    summands: &[Grammar],
    alphabet: &Alphabet,
    max_len: usize,
) -> Result<(), (usize, usize, OverlapWitness)> {
    for i in 0..summands.len() {
        for j in (i + 1)..summands.len() {
            check_disjoint(&summands[i], &summands[j], alphabet, max_len).map_err(|w| (i, j, w))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;
    use crate::grammar::expr::{alt, chr, eps, plus, star, tensor, top};
    use crate::grammar::string_type::{char_grammar, string_grammar};

    #[test]
    fn basic_unambiguous_types() {
        // §4: ⊤, 0, I, literals, Char and String are unambiguous.
        let s = Alphabet::abc();
        for g in [
            top(),
            crate::grammar::expr::bot(),
            eps(),
            chr(s.symbol("a").unwrap()),
            char_grammar(&s),
            string_grammar(&s),
        ] {
            check_unambiguous(&g, &s, 4).unwrap();
        }
    }

    #[test]
    fn a_plus_a_is_ambiguous() {
        let s = Alphabet::abc();
        let a = chr(s.symbol("a").unwrap());
        let w = check_unambiguous(&alt(a.clone(), a), &s, 2).unwrap_err();
        assert_eq!(w.count, 2);
        assert_eq!(w.string, s.parse_str("a").unwrap());
    }

    #[test]
    fn lemma_4_4_summands_of_unambiguous_sum() {
        let s = Alphabet::abc();
        let (a, b) = (chr(s.symbol("a").unwrap()), chr(s.symbol("b").unwrap()));
        // 'a' ⊕ 'b' is unambiguous, so each summand is too.
        check_unambiguous(&alt(a.clone(), b.clone()), &s, 3).unwrap();
        summands_unambiguous(&[a, b], &s, 3).unwrap();
    }

    #[test]
    fn lemma_4_7_disjoint_summands() {
        let s = Alphabet::abc();
        let (a, b) = (chr(s.symbol("a").unwrap()), chr(s.symbol("b").unwrap()));
        summands_disjoint(&[a.clone(), b], &s, 3).unwrap();
        // Overlapping summands are detected.
        let err = summands_disjoint(&[a.clone(), a], &s, 3).unwrap_err();
        assert_eq!(err.0, 0);
        assert_eq!(err.1, 1);
    }

    #[test]
    fn star_of_nullable_is_ambiguous() {
        let s = Alphabet::abc();
        let a = chr(s.symbol("a").unwrap());
        // (a?)* is wildly ambiguous (infinitely many parses of ε).
        let g = star(alt(eps(), a));
        assert!(check_unambiguous(&g, &s, 1).is_err());
    }

    #[test]
    fn ab_star_unambiguous() {
        let s = Alphabet::abc();
        let (a, b) = (chr(s.symbol("a").unwrap()), chr(s.symbol("b").unwrap()));
        check_unambiguous(&star(tensor(a, b)), &s, 4).unwrap();
    }

    #[test]
    fn all_strings_counts() {
        let s = Alphabet::abc();
        // 1 + 3 + 9 + 27 strings of length ≤ 3.
        assert_eq!(all_strings(&s, 3).len(), 40);
        assert_eq!(all_strings(&s, 0).len(), 1);
        let _ = plus(vec![]);
    }
}
