//! Formal grammar theory inside the calculus (§4 of the paper).
//!
//! * [`equivalence`] — weak/strong equivalence and retracts
//!   (Definition 4.1), with sampling-based law checking;
//! * [`unambiguous`] — unambiguity (Definition 4.2) and its closure
//!   properties (Lemmas 4.3, 4.4, 4.7);
//! * [`parser`] — the paper's notion of a verified parser
//!   (Definitions 4.5, 4.6): a grammar, a *disjoint* negative grammar, and
//!   a total function `String ⊸ A ⊕ A¬`; plus parser extension along weak
//!   equivalence (Lemma 4.8);
//! * [`semantic_action`] — the §6.2 extension: actions
//!   `↑(A ⊸ ⊕_{_:X} ⊤)` emitting semantic values from concrete parses.

pub mod equivalence;
pub mod parser;
pub mod semantic_action;
pub mod unambiguous;
