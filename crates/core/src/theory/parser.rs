//! Verified parsers (Definition 4.6) and parser extension (Lemma 4.8).
//!
//! The paper's key observation: `String ⊸ A ⊕ ⊤` is too weak a type for a
//! parser (always answering `inr` inhabits it), while `String ⊸ A` is too
//! strong (most grammars reject some strings). The right notion pairs `A`
//! with a *negative grammar* `A¬` disjoint from `A` and demands a total
//! function `String ⊸ A ⊕ A¬`:
//!
//! * **soundness** is intrinsic: an `inl` answer is a parse tree of the
//!   actual input (the transformer cannot change the string);
//! * **completeness** follows from disjointness: an `inr` answer comes
//!   with an `A¬` parse of the input, and no string has both.
//!
//! [`VerifiedParser`] packages the data; [`VerifiedParser::parse`] runs it
//! with the dynamic intrinsic checks on; audit helpers verify disjointness
//! and totality against the denotational recognizer.

use crate::alphabet::{Alphabet, GString};
use crate::grammar::compile::CompiledGrammar;
use crate::grammar::expr::{alt, Grammar};
use crate::grammar::parse_tree::{validate, ParseTree};
use crate::grammar::string_type::{string_grammar, string_parse};
use crate::theory::equivalence::WeakEquiv;
use crate::theory::unambiguous::{all_strings, check_disjoint, OverlapWitness};
use crate::transform::{TransformError, Transformer};

/// The outcome of running a verified parser on a string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseOutcome {
    /// The input belongs to the grammar; here is its parse tree.
    Accept(ParseTree),
    /// The input does not belong; here is the parse of the negative
    /// grammar witnessing rejection.
    Reject(ParseTree),
}

impl ParseOutcome {
    /// The accepted tree, if any.
    pub fn accepted(&self) -> Option<&ParseTree> {
        match self {
            ParseOutcome::Accept(t) => Some(t),
            ParseOutcome::Reject(_) => None,
        }
    }

    /// `true` on acceptance.
    pub fn is_accept(&self) -> bool {
        matches!(self, ParseOutcome::Accept(_))
    }
}

/// A verified parser for `grammar` (Definition 4.6): a negative grammar
/// disjoint from it and a total transformer `String ⊸ A ⊕ A¬`.
#[derive(Debug, Clone)]
pub struct VerifiedParser {
    alphabet: Alphabet,
    grammar: Grammar,
    negative: Grammar,
    run: Transformer,
}

impl VerifiedParser {
    /// Packages a parser. `run` must have domain `String` (the grammar of
    /// [`string_grammar`]) and codomain `grammar ⊕ negative`.
    ///
    /// # Panics
    ///
    /// Panics if `run`'s endpoints do not match.
    pub fn new(
        alphabet: Alphabet,
        grammar: Grammar,
        negative: Grammar,
        run: Transformer,
    ) -> VerifiedParser {
        assert!(
            crate::transform::grammar_eq(run.dom(), &string_grammar(&alphabet)),
            "parser domain must be the String grammar"
        );
        assert!(
            crate::transform::grammar_eq(run.cod(), &alt(grammar.clone(), negative.clone())),
            "parser codomain must be A ⊕ A¬"
        );
        VerifiedParser {
            alphabet,
            grammar,
            negative,
            run,
        }
    }

    /// The grammar being parsed.
    pub fn grammar(&self) -> &Grammar {
        &self.grammar
    }

    /// The negative grammar `A¬`.
    pub fn negative(&self) -> &Grammar {
        &self.negative
    }

    /// The alphabet of the input strings.
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The underlying transformer `String ⊸ A ⊕ A¬`.
    pub fn transformer(&self) -> &Transformer {
        &self.run
    }

    /// Parses a string, with intrinsic verification: the result tree is
    /// validated against `A` (respectively `A¬`) *and* against the input
    /// string before being returned.
    ///
    /// # Errors
    ///
    /// Returns a [`TransformError`] if the underlying transformer fails
    /// or violates its contract — a correct parser never does.
    pub fn parse(&self, w: &GString) -> Result<ParseOutcome, TransformError> {
        let input = string_parse(w);
        let out = self.run.apply(&input)?;
        match out {
            ParseTree::Inj { index: 0, tree } => {
                validate(&tree, &self.grammar, w).map_err(|cause| TransformError::OutputShape {
                    transformer: self.run.name().to_owned(),
                    cause,
                })?;
                Ok(ParseOutcome::Accept(*tree))
            }
            ParseTree::Inj { index: 1, tree } => {
                validate(&tree, &self.negative, w).map_err(|cause| {
                    TransformError::OutputShape {
                        transformer: self.run.name().to_owned(),
                        cause,
                    }
                })?;
                Ok(ParseOutcome::Reject(*tree))
            }
            other => Err(TransformError::Custom(format!(
                "parser returned a non-⊕ tree: {other}"
            ))),
        }
    }

    /// Audits the disjointness side condition of Definition 4.6 over all
    /// strings up to `max_len`.
    ///
    /// # Errors
    ///
    /// Returns the first string parsed by both `A` and `A¬`.
    pub fn audit_disjointness(&self, max_len: usize) -> Result<(), OverlapWitness> {
        check_disjoint(&self.grammar, &self.negative, &self.alphabet, max_len)
    }

    /// Audits the parser against the denotational recognizer over all
    /// strings up to `max_len`: it must accept exactly the strings in
    /// `L(A)` (soundness + completeness).
    ///
    /// # Errors
    ///
    /// Returns a description of the first disagreement.
    pub fn audit_against_recognizer(&self, max_len: usize) -> Result<(), String> {
        let cg = CompiledGrammar::new(&self.grammar);
        for w in all_strings(&self.alphabet, max_len) {
            let expected = cg.recognizes(&w);
            let got = self
                .parse(&w)
                .map_err(|e| format!("parser failed on {w}: {e}"))?;
            if got.is_accept() != expected {
                return Err(format!(
                    "parser {} {} but the grammar {} it",
                    if got.is_accept() {
                        "accepts"
                    } else {
                        "rejects"
                    },
                    self.alphabet.display(&w),
                    if expected { "contains" } else { "excludes" },
                ));
            }
        }
        Ok(())
    }
}

/// Lemma 4.8: a parser for `A` extends along a weak equivalence `A ≈ B`
/// to a parser for `B`, keeping the same negative grammar.
///
/// The forward transformer maps accepted `A`-parses to `B`-parses; the
/// backward transformer is what makes `A¬` disjoint from `B` (any
/// `B`-parse of a string would yield an `A`-parse of the same string).
///
/// # Errors
///
/// Returns a composition error if the equivalence does not connect the
/// parser's grammar.
pub fn extend_parser(
    parser: &VerifiedParser,
    equiv: &WeakEquiv,
) -> Result<VerifiedParser, TransformError> {
    if equiv.left() != parser.grammar() {
        return Err(TransformError::ComposeMismatch {
            cod: format!("{}", parser.grammar()),
            dom: format!("{}", equiv.left()),
        });
    }
    let b = equiv.right().clone();
    let neg = parser.negative.clone();
    let fwd = equiv.fwd.clone();
    let run = parser.run.clone();
    let cod = alt(b.clone(), neg.clone());
    let name = format!("extend({})", run.name());
    let lifted = Transformer::from_fn(name, run.dom().clone(), cod, move |t| {
        match run.apply(t)? {
            ParseTree::Inj { index: 0, tree } => Ok(ParseTree::inj(0, fwd.apply(&tree)?)),
            other => Ok(other),
        }
    });
    Ok(VerifiedParser::new(parser.alphabet.clone(), b, neg, lifted))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::grammar::expr::{chr, eps, star, tensor, GrammarExpr};
    use crate::transform::combinators::{either, id, inj};
    use crate::transform::fold;

    /// A toy hand-rolled parser for 'a'* over {a,b,c}: accepts strings of
    /// only-a's, negative grammar = String-with-a-non-a-somewhere, here
    /// simply ⊤ minus... we use the crude but disjoint negative grammar
    /// (Char* ⊗ ('b' ⊕ 'c') ⊗ Char*): strings containing a non-'a'.
    fn astar_parser() -> VerifiedParser {
        let sigma = Alphabet::abc();
        let a = sigma.symbol("a").unwrap();
        let (b, c) = (sigma.symbol("b").unwrap(), sigma.symbol("c").unwrap());
        let target = star(chr(a));
        let negative = tensor(
            star(crate::grammar::string_type::char_grammar(&sigma)),
            tensor(
                alt(chr(b), chr(c)),
                star(crate::grammar::string_type::char_grammar(&sigma)),
            ),
        );
        let cod = alt(target.clone(), negative.clone());
        let dom = string_grammar(&sigma);
        let run = Transformer::from_fn("astar-parse", dom, cod, move |t| {
            let w = t.flatten();
            let first_non_a = w.iter().position(|s| s != a);
            match first_non_a {
                None => {
                    // all a's: build the star parse.
                    let mut tree = ParseTree::roll(ParseTree::inj(0, ParseTree::Unit));
                    for sym in w.iter().rev() {
                        tree = ParseTree::roll(ParseTree::inj(
                            1,
                            ParseTree::pair(ParseTree::Char(sym), tree),
                        ));
                    }
                    Ok(ParseTree::inj(0, tree))
                }
                Some(i) => {
                    let pre = string_parse(&w.substring(0, i));
                    let bad = w[i];
                    let tag = if bad == b { 0 } else { 1 };
                    let post = string_parse(&w.substring(i + 1, w.len()));
                    Ok(ParseTree::inj(
                        1,
                        ParseTree::pair(
                            pre,
                            ParseTree::pair(ParseTree::inj(tag, ParseTree::Char(bad)), post),
                        ),
                    ))
                }
            }
        });
        VerifiedParser::new(sigma, target, negative, run)
    }

    #[test]
    fn astar_parser_sound_and_complete() {
        let p = astar_parser();
        p.audit_disjointness(4).unwrap();
        p.audit_against_recognizer(4).unwrap();
    }

    #[test]
    fn parse_returns_validated_trees() {
        let p = astar_parser();
        let w = p.alphabet().parse_str("aaa").unwrap();
        let out = p.parse(&w).unwrap();
        let t = out.accepted().unwrap();
        assert_eq!(t.flatten(), w);
        let w = p.alphabet().parse_str("aba").unwrap();
        let out = p.parse(&w).unwrap();
        assert!(!out.is_accept());
    }

    #[test]
    fn lemma_4_8_extension() {
        // Extend the 'a'* parser along the strong equivalence
        // 'a'* ≅ I ⊕ ('a' ⊗ 'a'*)  (unroll/roll).
        let p = astar_parser();
        let astar = p.grammar().clone();
        let sys = match &*astar {
            GrammarExpr::Mu { system, .. } => system.clone(),
            _ => unreachable!(),
        };
        let eq = WeakEquiv::new(fold::unroll(sys.clone(), 0), fold::roll(sys, 0));
        let q = extend_parser(&p, &eq).unwrap();
        q.audit_disjointness(3).unwrap();
        q.audit_against_recognizer(3).unwrap();
        let w = q.alphabet().parse_str("aa").unwrap();
        let out = q.parse(&w).unwrap();
        // The extended parser produces unrolled parses: σ1 (a, rest).
        assert!(matches!(
            out.accepted().unwrap(),
            ParseTree::Inj { index: 1, .. }
        ));
    }

    #[test]
    fn extension_requires_matching_grammar() {
        let p = astar_parser();
        let sigma = p.alphabet().clone();
        let wrong = WeakEquiv::new(id(eps()), id(eps()));
        assert!(extend_parser(&p, &wrong).is_err());
        let _ = sigma;
    }

    use crate::grammar::expr::alt;
    use crate::transform::combinators::bang;

    #[test]
    fn trivial_inr_parser_fails_disjointness_audit() {
        // The paper's cautionary tale: String ⊸ A ⊕ ⊤ with constant inr
        // typechecks but ⊤ is not disjoint from A — the audit catches it.
        let sigma = Alphabet::abc();
        let a = chr(sigma.symbol("a").unwrap());
        let dom = string_grammar(&sigma);
        let cod = alt(a.clone(), crate::grammar::expr::top());
        let run = Transformer::from_fn("always-inr", dom.clone(), cod, |t| {
            Ok(ParseTree::inj(1, ParseTree::Top(t.flatten())))
        });
        let p = VerifiedParser::new(sigma, a, crate::grammar::expr::top(), run);
        assert!(p.audit_disjointness(2).is_err());
        let _ = (
            inj(0, vec![eps(), eps()]),
            either(id(eps()), id(eps())),
            bang(eps()),
        );
    }
}
