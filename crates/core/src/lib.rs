//! # lambek-core — Dependent Lambek Calculus in Rust
//!
//! A reproduction of *Intrinsic Verification of Parsers and Formal Grammar
//! Theory in Dependent Lambek Calculus* (Schaefer, Varner, Azevedo de
//! Amorim, New — PLDI 2025). Linear types are formal grammars; linear
//! terms are parse transformers; a parser written as a term of type
//! `String ⊸ A ⊕ A¬` is intrinsically verified to return only valid parse
//! trees of its actual input.
//!
//! The crate has three layers, mirroring the paper:
//!
//! 1. **Denotational** ([`grammar`]): grammars as functions from strings
//!    to sets of parse trees (Definition 5.1), with recognition, bounded
//!    enumeration and validation. This is the model of §5.
//! 2. **Transformers** ([`transform`], [`theory`]): yield-preserving
//!    functions between parse sets (Definition 5.2), a combinator library
//!    in the style of the paper's Agda shallow embedding, and the formal
//!    grammar theory of §4 — equivalences, unambiguity, disjointness,
//!    verified parsers.
//! 3. **Syntax** ([`syntax`], [`check`], [`eval`]): a deep embedding of
//!    LambekD's terms and types with an ordered-linear type checker (no
//!    weakening, contraction or exchange — Fig. 9) and an evaluator
//!    interpreting well-typed terms as parse transformers.
//!
//! All three layers run on a hash-consed core ([`intern`]): types, terms
//! and grammar expressions are deduplicated into a global arena at
//! construction, so structural equality has a pointer fast path and cache
//! keys are small copyable ids.
//!
//! # Quickstart
//!
//! ```
//! use lambek_core::alphabet::Alphabet;
//! use lambek_core::grammar::compile::CompiledGrammar;
//! use lambek_core::grammar::expr::{alt, chr, star, tensor};
//!
//! // The paper's running example: ('a'* ⊗ 'b') ⊕ 'c' over Σ = {a,b,c}.
//! let sigma = Alphabet::abc();
//! let (a, b, c) = (
//!     sigma.symbol("a").unwrap(),
//!     sigma.symbol("b").unwrap(),
//!     sigma.symbol("c").unwrap(),
//! );
//! let grammar = alt(tensor(star(chr(a)), chr(b)), chr(c));
//! let compiled = CompiledGrammar::new(&grammar);
//!
//! let w = sigma.parse_str("aab").unwrap();
//! assert!(compiled.recognizes(&w));
//! // Exactly one parse tree — the grammar is unambiguous here.
//! let forest = compiled.parses(&w, 16);
//! assert_eq!(forest.trees.len(), 1);
//! assert_eq!(forest.trees[0].flatten(), w);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod alphabet;
pub mod check;
pub mod eval;
pub mod grammar;
pub mod intern;
pub mod syntax;
pub mod theory;
pub mod transform;
