//! Alphabets, symbols and grammar strings.
//!
//! Dependent Lambek Calculus is parameterized by a fixed finite alphabet
//! `Σ` (§3.4 of the paper). An [`Alphabet`] assigns a display name to each
//! [`Symbol`]; symbols are small integer indices so strings are compact and
//! cheap to compare. Names need not be single characters — the arithmetic
//! example of the paper uses the token `NUM` as one symbol.
//!
//! # Examples
//!
//! ```
//! use lambek_core::alphabet::Alphabet;
//!
//! let sigma = Alphabet::from_chars("abc");
//! let a = sigma.symbol("a").unwrap();
//! let w = sigma.parse_str("ab").unwrap();
//! assert_eq!(w.len(), 2);
//! assert_eq!(w[0], a);
//! assert_eq!(sigma.display(&w), "ab");
//! ```

use std::collections::HashMap;
use std::fmt;
use std::ops::Index;
use std::sync::Arc;

/// A character of the alphabet: an index into an [`Alphabet`].
///
/// Symbols are meaningful only relative to the alphabet that created them;
/// mixing symbols across alphabets is a logic error (it is not memory-unsafe,
/// but grammar membership answers will be garbage).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Symbol(u16);

impl Symbol {
    /// The raw index of this symbol within its alphabet.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a symbol from a raw index.
    ///
    /// Prefer [`Alphabet::symbol`]; this constructor exists for generators
    /// and tests that iterate over symbol indices.
    pub fn from_index(index: usize) -> Symbol {
        Symbol(index as u16)
    }
}

/// A finite alphabet `Σ`: an ordered list of named symbols.
///
/// Cloning an `Alphabet` is cheap (the tables are shared). Symbol ids are
/// *interned* at construction: name → symbol lookup is a single hash probe
/// (and character lookup during [`Alphabet::parse_str`] avoids string
/// allocation entirely), so tokenization stays off the hot-path profile
/// even for large alphabets.
#[derive(Debug, Clone)]
pub struct Alphabet {
    names: Arc<Vec<String>>,
    /// Interned name → symbol index.
    by_name: Arc<HashMap<String, u16>>,
    /// Fast path for single-character symbol names.
    by_char: Arc<HashMap<char, u16>>,
    /// Dense ASCII fast path in front of `by_char` (`u16::MAX` =
    /// absent): one array load instead of a hash probe on the
    /// per-character hot loops (tokenization, the lexer's
    /// maximal-munch driver).
    ascii: Arc<[u16; 128]>,
}

/// Equality is by the ordered name list; the interning tables are derived
/// data.
impl PartialEq for Alphabet {
    fn eq(&self, other: &Alphabet) -> bool {
        self.names == other.names
    }
}

impl Eq for Alphabet {}

impl std::hash::Hash for Alphabet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.names.hash(state);
    }
}

impl Alphabet {
    /// Creates an alphabet from a list of symbol names.
    ///
    /// # Panics
    ///
    /// Panics if `names` is empty, contains duplicates, or has more than
    /// `u16::MAX` entries.
    pub fn new<S: AsRef<str>>(names: &[S]) -> Alphabet {
        assert!(!names.is_empty(), "alphabet must be non-empty");
        assert!(names.len() <= u16::MAX as usize, "alphabet too large");
        let names: Vec<String> = names.iter().map(|s| s.as_ref().to_owned()).collect();
        let mut by_name: HashMap<String, u16> = HashMap::with_capacity(names.len());
        let mut by_char: HashMap<char, u16> = HashMap::new();
        let mut ascii = [u16::MAX; 128];
        for (i, n) in names.iter().enumerate() {
            assert!(
                by_name.insert(n.clone(), i as u16).is_none(),
                "duplicate symbol name {n:?} in alphabet"
            );
            let mut chars = n.chars();
            if let (Some(c), None) = (chars.next(), chars.next()) {
                by_char.insert(c, i as u16);
                if (c as u32) < 128 {
                    ascii[c as usize] = i as u16;
                }
            }
        }
        Alphabet {
            names: Arc::new(names),
            by_name: Arc::new(by_name),
            by_char: Arc::new(by_char),
            ascii: Arc::new(ascii),
        }
    }

    /// Creates an alphabet with one symbol per character of `chars`.
    ///
    /// # Panics
    ///
    /// Panics if `chars` is empty or contains a repeated character.
    pub fn from_chars(chars: &str) -> Alphabet {
        let names: Vec<String> = chars.chars().map(|c| c.to_string()).collect();
        Alphabet::new(&names)
    }

    /// The paper's running three-character alphabet `{a, b, c}` (§2).
    pub fn abc() -> Alphabet {
        Alphabet::from_chars("abc")
    }

    /// The alphabet `{(, )}` of the Dyck grammar (Fig. 13).
    pub fn parens() -> Alphabet {
        Alphabet::from_chars("()")
    }

    /// The alphabet `{(, ), +, NUM}` of the arithmetic example (Fig. 15).
    pub fn arith() -> Alphabet {
        Alphabet::new(&["(", ")", "+", "NUM"])
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// `true` when the alphabet has no symbols. Alphabets are constructed
    /// non-empty, so this is always `false`; provided for API completeness.
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Looks up a symbol by name — O(1) via the interned table.
    pub fn symbol(&self, name: &str) -> Option<Symbol> {
        self.by_name.get(name).map(|&i| Symbol(i))
    }

    /// Looks up a single-character symbol by its character — for ASCII
    /// a single array load, otherwise one hash probe; no allocation
    /// either way (the per-character fast path of
    /// [`Alphabet::parse_str`] and of the lexer's maximal-munch loop).
    #[inline]
    pub fn symbol_of_char(&self, c: char) -> Option<Symbol> {
        if (c as u32) < 128 {
            let i = self.ascii[c as usize];
            return (i != u16::MAX).then_some(Symbol(i));
        }
        self.by_char.get(&c).map(|&i| Symbol(i))
    }

    /// The ordered list of symbol names (the identity of the alphabet —
    /// two alphabets are equal exactly when these lists are equal).
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// The shared name table itself, for identity-keyed interning
    /// ([`crate::intern::alphabet_id`] keeps it alive so its address can
    /// serve as a cache key).
    pub(crate) fn names_arc(&self) -> &Arc<Vec<String>> {
        &self.names
    }

    /// The display name of a symbol.
    ///
    /// # Panics
    ///
    /// Panics if `sym` is out of range for this alphabet.
    pub fn name(&self, sym: Symbol) -> &str {
        &self.names[sym.index()]
    }

    /// Iterates over all symbols in index order.
    pub fn symbols(&self) -> impl ExactSizeIterator<Item = Symbol> + '_ {
        (0..self.len()).map(Symbol::from_index)
    }

    /// Parses a string character-by-character. Every character must be a
    /// (single-character) symbol name. Returns `None` on the first unknown
    /// character.
    pub fn parse_str(&self, s: &str) -> Option<GString> {
        s.chars()
            .map(|c| self.symbol_of_char(c))
            .collect::<Option<Vec<_>>>()
            .map(GString::from_symbols)
    }

    /// Renders a grammar string using this alphabet's symbol names.
    pub fn display(&self, w: &GString) -> String {
        w.iter().map(|s| self.name(s)).collect()
    }
}

/// A string over an alphabet: the resource consumed by parsing.
///
/// `GString` is an ordered sequence of [`Symbol`]s. The non-commutative
/// linear context `⌈w⌉` of the paper has one variable per element of the
/// string; [`GString`] is the runtime counterpart.
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GString(Vec<Symbol>);

impl GString {
    /// The empty string `ε`.
    pub fn new() -> GString {
        GString(Vec::new())
    }

    /// The empty string with room for `cap` symbols.
    pub fn with_capacity(cap: usize) -> GString {
        GString(Vec::with_capacity(cap))
    }

    /// Wraps a symbol vector.
    pub fn from_symbols(symbols: Vec<Symbol>) -> GString {
        GString(symbols)
    }

    /// A one-symbol string.
    pub fn singleton(sym: Symbol) -> GString {
        GString(vec![sym])
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// `true` for the empty string `ε`.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// View as a symbol slice.
    pub fn as_slice(&self) -> &[Symbol] {
        &self.0
    }

    /// Iterate over the symbols.
    pub fn iter(&self) -> impl DoubleEndedIterator<Item = Symbol> + ExactSizeIterator + '_ {
        self.0.iter().copied()
    }

    /// Appends a symbol in place.
    pub fn push(&mut self, sym: Symbol) {
        self.0.push(sym);
    }

    /// Concatenation `w ++ v` (the tensor on strings).
    pub fn concat(&self, other: &GString) -> GString {
        let mut out = self.0.clone();
        out.extend_from_slice(&other.0);
        GString(out)
    }

    /// Splits into prefix of length `mid` and the remaining suffix.
    ///
    /// # Panics
    ///
    /// Panics if `mid > self.len()`.
    pub fn split_at(&self, mid: usize) -> (GString, GString) {
        let (l, r) = self.0.split_at(mid);
        (GString(l.to_vec()), GString(r.to_vec()))
    }

    /// The substring `w[start..end]`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn substring(&self, start: usize, end: usize) -> GString {
        GString(self.0[start..end].to_vec())
    }
}

impl Index<usize> for GString {
    type Output = Symbol;

    fn index(&self, index: usize) -> &Symbol {
        &self.0[index]
    }
}

impl FromIterator<Symbol> for GString {
    fn from_iter<I: IntoIterator<Item = Symbol>>(iter: I) -> GString {
        GString(iter.into_iter().collect())
    }
}

impl Extend<Symbol> for GString {
    fn extend<I: IntoIterator<Item = Symbol>>(&mut self, iter: I) {
        self.0.extend(iter);
    }
}

impl IntoIterator for GString {
    type Item = Symbol;
    type IntoIter = std::vec::IntoIter<Symbol>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.into_iter()
    }
}

impl<'a> IntoIterator for &'a GString {
    type Item = &'a Symbol;
    type IntoIter = std::slice::Iter<'a, Symbol>;

    fn into_iter(self) -> Self::IntoIter {
        self.0.iter()
    }
}

impl From<Vec<Symbol>> for GString {
    fn from(v: Vec<Symbol>) -> GString {
        GString(v)
    }
}

impl fmt::Display for GString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨")?;
        for (i, s) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{}", s.index())?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alphabet_lookup_roundtrip() {
        let sigma = Alphabet::abc();
        assert_eq!(sigma.len(), 3);
        for sym in sigma.symbols() {
            assert_eq!(sigma.symbol(sigma.name(sym)), Some(sym));
        }
        assert_eq!(sigma.symbol("z"), None);
    }

    #[test]
    fn multi_char_symbol_names() {
        let sigma = Alphabet::arith();
        let num = sigma.symbol("NUM").unwrap();
        assert_eq!(sigma.name(num), "NUM");
        assert_eq!(num.index(), 3);
    }

    #[test]
    #[should_panic(expected = "duplicate symbol name")]
    fn duplicate_names_rejected() {
        Alphabet::new(&["a", "a"]);
    }

    #[test]
    #[should_panic(expected = "non-empty")]
    fn empty_alphabet_rejected() {
        Alphabet::new::<&str>(&[]);
    }

    #[test]
    fn parse_str_and_display() {
        let sigma = Alphabet::abc();
        let w = sigma.parse_str("abca").unwrap();
        assert_eq!(w.len(), 4);
        assert_eq!(sigma.display(&w), "abca");
        assert!(sigma.parse_str("abz").is_none());
    }

    #[test]
    fn gstring_concat_split() {
        let sigma = Alphabet::abc();
        let w = sigma.parse_str("ab").unwrap();
        let v = sigma.parse_str("ca").unwrap();
        let wv = w.concat(&v);
        assert_eq!(sigma.display(&wv), "abca");
        let (l, r) = wv.split_at(2);
        assert_eq!(l, w);
        assert_eq!(r, v);
    }

    #[test]
    fn gstring_collect_and_index() {
        let sigma = Alphabet::abc();
        let w: GString = sigma.symbols().collect();
        assert_eq!(sigma.display(&w), "abc");
        assert_eq!(w[1], sigma.symbol("b").unwrap());
        let sub = w.substring(1, 3);
        assert_eq!(sigma.display(&sub), "bc");
    }

    #[test]
    fn gstring_display_is_nonempty_even_for_epsilon() {
        let w = GString::new();
        assert_eq!(format!("{w}"), "⟨⟩");
    }
}
