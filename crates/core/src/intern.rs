//! Hash-consed interning of the syntax and grammar layers.
//!
//! Every [`LinType`], [`LinTerm`], [`NlType`], [`NlTerm`] and
//! [`GrammarExpr`] can be *interned*: structurally equal nodes are
//! deduplicated into a global append-only arena at construction time, and
//! each node is identified by a small copyable id ([`TypeId`], [`TermId`],
//! [`NlTypeId`], [`NlTermId`], [`GrammarId`]). Two interned nodes are
//! structurally equal **iff** their ids are equal, so
//!
//! * equality is an integer compare (`TypeId: Eq` is `u32 == u32`);
//! * hashing is O(1) (hash the id, not the tree);
//! * the canonical [`Arc`] behind an id is shared by every owner, so the
//!   pointer-equality fast paths in
//!   [`lin_type_equal`](crate::syntax::types::lin_type_equal) and
//!   `Arc`-address memo tables (e.g. the
//!   [`CompiledGrammar`](crate::grammar::compile::CompiledGrammar)
//!   builder) hit on the first level of any two interned trees.
//!
//! The constructor helpers of [`crate::syntax::types`] and
//! [`crate::grammar::expr`] route through this module, so code using them
//! gets sharing without ever naming an id. The arena is global and
//! append-only — canonical nodes are never freed. This is the standard
//! proof-kernel trade-off: types and terms are tiny compared to charts
//! and parse forests, and permanence is exactly what makes the
//! address-based fast paths sound (a live canonical allocation's address
//! can never be reused by a different node).
//!
//! The module also hosts the id-keyed memo caches used by the checker and
//! evaluator: substitution of non-linear terms into linear types
//! ([`subst_type`]) and partial normalization of index terms
//! ([`nl_normal_id`]). Both are keyed by ids, so repeated work on shared
//! subtrees — the hallmark of indexed types under `⊕`/`&` elimination —
//! is paid once.

use std::collections::HashMap;
use std::sync::{Arc, Mutex, OnceLock};

use crate::alphabet::{Alphabet, Symbol};
use crate::grammar::expr::{Grammar, GrammarExpr, MuSystem};
use crate::syntax::nonlinear::{NlTerm, NlType};
use crate::syntax::terms::{FoldClause, LinTerm};
use crate::syntax::types::LinType;

macro_rules! id_newtype {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// The raw arena index of this id.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }
    };
}

id_newtype!(
    /// An interned string (variable, constructor or family name).
    Istr
);
id_newtype!(
    /// An interned [`NlType`].
    NlTypeId
);
id_newtype!(
    /// An interned [`NlTerm`].
    NlTermId
);
id_newtype!(
    /// An interned [`LinType`].
    TypeId
);
id_newtype!(
    /// An interned [`LinTerm`].
    TermId
);
id_newtype!(
    /// An interned [`GrammarExpr`].
    GrammarId
);
id_newtype!(
    /// An interned [`Alphabet`] (by its ordered symbol-name list).
    AlphabetId
);

/// The address of a value, used as a key for "is this the canonical
/// node?" lookups. Only addresses of `Arc`s (or of values owned by
/// `Arc`s) retained forever by the interner are ever *inserted*, so a
/// hit proves the reference is the canonical node.
fn addr<T: ?Sized>(r: &T) -> usize {
    r as *const T as *const () as usize
}

// ---------------------------------------------------------------------------
// Node mirrors: one enum per interned kind, holding child *ids* so that
// node keys hash and compare in O(1) per node.
// ---------------------------------------------------------------------------

#[derive(Clone, PartialEq, Eq, Hash)]
enum NlTyN {
    Unit,
    Bool,
    Nat,
    Fin(usize),
    Prod(NlTypeId, NlTypeId),
    Fun(NlTypeId, NlTypeId),
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum NlTmN {
    Var(Istr),
    UnitVal,
    BoolLit(bool),
    NatLit(u64),
    Succ(NlTermId),
    FinLit(usize, usize),
    Pair(NlTermId, NlTermId),
    Fst(NlTermId),
    Snd(NlTermId),
    Lam(Istr, NlTypeId, NlTermId),
    App(NlTermId, NlTermId),
    If(NlTermId, NlTermId, NlTermId),
    NatRec {
        zero: NlTermId,
        n_var: Istr,
        ih_var: Istr,
        succ: NlTermId,
        scrutinee: NlTermId,
    },
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum TyN {
    Char(Symbol),
    Unit,
    Zero,
    Top,
    Tensor(TypeId, TypeId),
    LFun(TypeId, TypeId),
    RFun(TypeId, TypeId),
    Plus(Vec<TypeId>),
    With(Vec<TypeId>),
    BigPlus(Istr, NlTypeId, TypeId),
    BigWith(Istr, NlTypeId, TypeId),
    Data(Istr, Vec<NlTermId>),
    Equalizer(TypeId, Istr, Istr),
}

#[derive(Clone, PartialEq, Eq, Hash)]
struct ClauseN {
    nl_vars: Vec<Istr>,
    lin_vars: Vec<Istr>,
    body: TermId,
}

#[derive(Clone, PartialEq, Eq, Hash)]
enum TmN {
    Var(Istr),
    Global(Istr),
    UnitIntro,
    LetUnit(TermId, TermId),
    Pair(TermId, TermId),
    LetPair {
        scrutinee: TermId,
        left: Istr,
        right: Istr,
        body: TermId,
    },
    Lam(Istr, TypeId, TermId),
    App(TermId, TermId),
    LamL(Istr, TypeId, TermId),
    AppL(TermId, TermId),
    Inj(usize, usize, TermId),
    Case(TermId, Vec<(Istr, TermId)>),
    BigInj(NlTermId, TermId),
    LetBigInj {
        scrutinee: TermId,
        nl_var: Istr,
        var: Istr,
        body: TermId,
    },
    BigLam(Istr, TermId),
    BigProj(TermId, NlTermId),
    Tuple(Vec<TermId>),
    Proj(TermId, usize),
    Ctor {
        data: Istr,
        ctor: Istr,
        nl_args: Vec<NlTermId>,
        lin_args: Vec<TermId>,
    },
    Fold {
        data: Istr,
        motive: TypeId,
        clauses: Vec<ClauseN>,
        scrutinee: TermId,
    },
    EqIntro(TermId),
    EqProj(TermId),
}

#[derive(Clone, Copy, PartialEq, Eq, Hash)]
struct MuSysId(u32);

#[derive(Clone, PartialEq, Eq, Hash)]
enum GrN {
    Char(Symbol),
    Eps,
    Bot,
    Top,
    Tensor(GrammarId, GrammarId),
    Plus(Vec<GrammarId>),
    With(Vec<GrammarId>),
    Var(usize),
    Mu(MuSysId, usize),
}

// ---------------------------------------------------------------------------
// The store: one per interned kind.
// ---------------------------------------------------------------------------

/// One hash-consing arena: node-key → id, id → (node, canonical `Arc`),
/// plus an address index over the canonical allocations for O(1)
/// re-interning of already-canonical references.
///
/// Each `intern_*` method on [`Inner`] follows the same discipline:
/// look up `ids`, materialize the canonical value from already-canonical
/// children on a miss, register the canonical allocation's address (and
/// the addresses of its inline `Vec` children) in `by_ptr`, and append
/// to `ids`/`canon` — plus `nodes` for the kinds whose id → node view
/// feeds a memo cache (`ty` and `nltm`, used by the substitution and
/// normalization caches). `nodes` stays empty for the other kinds.
struct Store<N, T: ?Sized> {
    ids: HashMap<N, u32>,
    nodes: Vec<N>,
    canon: Vec<Arc<T>>,
    by_ptr: HashMap<usize, u32>,
}

impl<N, T: ?Sized> Default for Store<N, T> {
    fn default() -> Self {
        Store {
            ids: HashMap::new(),
            nodes: Vec::new(),
            canon: Vec::new(),
            by_ptr: HashMap::new(),
        }
    }
}

#[derive(Default)]
struct Inner {
    str_ids: HashMap<Arc<str>, u32>,
    strs: Vec<Arc<str>>,
    nlty: Store<NlTyN, NlType>,
    nltm: Store<NlTmN, NlTerm>,
    ty: Store<TyN, LinType>,
    tm: Store<TmN, LinTerm>,
    gr: Store<GrN, GrammarExpr>,
    musys: Vec<Arc<MuSystem>>,
    musys_ids: HashMap<(Vec<GrammarId>, Vec<Istr>), u32>,
    musys_by_ptr: HashMap<usize, u32>,
    alphabets: HashMap<Vec<Istr>, u32>,
    next_alphabet: u32,
    alpha_by_ptr: HashMap<usize, u32>,
    /// Name tables whose addresses are registered in `alpha_by_ptr`.
    alpha_keepalive: Vec<Arc<Vec<String>>>,
    subst_ty: HashMap<(TypeId, Istr, NlTermId), TypeId>,
    subst_nl: HashMap<(NlTermId, Istr, NlTermId), NlTermId>,
    nl_normal: HashMap<NlTermId, NlTermId>,
}

static INTERNER: OnceLock<Mutex<Inner>> = OnceLock::new();

fn with<R>(f: impl FnOnce(&mut Inner) -> R) -> R {
    let m = INTERNER.get_or_init(|| Mutex::new(Inner::default()));
    let mut guard = match m.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    f(&mut guard)
}

impl Inner {
    // -- strings ----------------------------------------------------------

    fn istr(&mut self, s: &str) -> Istr {
        if let Some(&id) = self.str_ids.get(s) {
            return Istr(id);
        }
        let id = self.strs.len() as u32;
        let arc: Arc<str> = Arc::from(s);
        self.strs.push(arc.clone());
        self.str_ids.insert(arc, id);
        Istr(id)
    }

    fn str_of(&self, i: Istr) -> Arc<str> {
        self.strs[i.index()].clone()
    }

    fn owned(&self, i: Istr) -> String {
        self.strs[i.index()].to_string()
    }

    // -- non-linear types -------------------------------------------------

    fn nlty_of(&mut self, ty: &NlType) -> NlTypeId {
        if let Some(&id) = self.nlty.by_ptr.get(&addr(ty)) {
            return NlTypeId(id);
        }
        let node = match ty {
            NlType::Unit => NlTyN::Unit,
            NlType::Bool => NlTyN::Bool,
            NlType::Nat => NlTyN::Nat,
            NlType::Fin(n) => NlTyN::Fin(*n),
            NlType::Prod(a, b) => NlTyN::Prod(self.nlty_of(a), self.nlty_of(b)),
            NlType::Fun(a, b) => NlTyN::Fun(self.nlty_of(a), self.nlty_of(b)),
        };
        self.intern_nlty(node)
    }

    fn intern_nlty(&mut self, node: NlTyN) -> NlTypeId {
        if let Some(&id) = self.nlty.ids.get(&node) {
            return NlTypeId(id);
        }
        let canon = Arc::new(match &node {
            NlTyN::Unit => NlType::Unit,
            NlTyN::Bool => NlType::Bool,
            NlTyN::Nat => NlType::Nat,
            NlTyN::Fin(n) => NlType::Fin(*n),
            NlTyN::Prod(a, b) => NlType::Prod(
                self.nlty.canon[a.index()].clone(),
                self.nlty.canon[b.index()].clone(),
            ),
            NlTyN::Fun(a, b) => NlType::Fun(
                self.nlty.canon[a.index()].clone(),
                self.nlty.canon[b.index()].clone(),
            ),
        });
        let id = self.nlty.canon.len() as u32;
        self.nlty.by_ptr.insert(addr(&*canon), id);
        self.nlty.ids.insert(node, id);
        self.nlty.canon.push(canon);
        NlTypeId(id)
    }

    // -- non-linear terms -------------------------------------------------

    fn nltm_of(&mut self, t: &NlTerm) -> NlTermId {
        if let Some(&id) = self.nltm.by_ptr.get(&addr(t)) {
            return NlTermId(id);
        }
        let node = match t {
            NlTerm::Var(x) => NlTmN::Var(self.istr(x)),
            NlTerm::UnitVal => NlTmN::UnitVal,
            NlTerm::BoolLit(b) => NlTmN::BoolLit(*b),
            NlTerm::NatLit(n) => NlTmN::NatLit(*n),
            NlTerm::Succ(t) => NlTmN::Succ(self.nltm_of(t)),
            NlTerm::FinLit { value, modulus } => NlTmN::FinLit(*value, *modulus),
            NlTerm::Pair(a, b) => NlTmN::Pair(self.nltm_of(a), self.nltm_of(b)),
            NlTerm::Fst(t) => NlTmN::Fst(self.nltm_of(t)),
            NlTerm::Snd(t) => NlTmN::Snd(self.nltm_of(t)),
            NlTerm::Lam { var, ty, body } => {
                NlTmN::Lam(self.istr(var), self.nlty_of(ty), self.nltm_of(body))
            }
            NlTerm::App(f, x) => NlTmN::App(self.nltm_of(f), self.nltm_of(x)),
            NlTerm::If {
                cond,
                then_branch,
                else_branch,
            } => NlTmN::If(
                self.nltm_of(cond),
                self.nltm_of(then_branch),
                self.nltm_of(else_branch),
            ),
            NlTerm::NatRec {
                zero,
                n_var,
                ih_var,
                succ,
                scrutinee,
            } => NlTmN::NatRec {
                zero: self.nltm_of(zero),
                n_var: self.istr(n_var),
                ih_var: self.istr(ih_var),
                succ: self.nltm_of(succ),
                scrutinee: self.nltm_of(scrutinee),
            },
        };
        self.intern_nltm(node)
    }

    fn intern_nltm(&mut self, node: NlTmN) -> NlTermId {
        if let Some(&id) = self.nltm.ids.get(&node) {
            return NlTermId(id);
        }
        // Materialize outside `Store::intern` because children may need
        // string resolution from `self`.
        let canon = Arc::new(self.build_nltm(&node));
        let id = self.nltm.canon.len() as u32;
        self.nltm.by_ptr.insert(addr(&*canon), id);
        self.nltm.ids.insert(node.clone(), id);
        self.nltm.nodes.push(node);
        self.nltm.canon.push(canon);
        NlTermId(id)
    }

    fn build_nltm(&self, n: &NlTmN) -> NlTerm {
        let c = |id: &NlTermId| self.nltm.canon[id.index()].clone();
        match n {
            NlTmN::Var(x) => NlTerm::Var(self.owned(*x)),
            NlTmN::UnitVal => NlTerm::UnitVal,
            NlTmN::BoolLit(b) => NlTerm::BoolLit(*b),
            NlTmN::NatLit(v) => NlTerm::NatLit(*v),
            NlTmN::Succ(t) => NlTerm::Succ(c(t)),
            NlTmN::FinLit(value, modulus) => NlTerm::FinLit {
                value: *value,
                modulus: *modulus,
            },
            NlTmN::Pair(a, b) => NlTerm::Pair(c(a), c(b)),
            NlTmN::Fst(t) => NlTerm::Fst(c(t)),
            NlTmN::Snd(t) => NlTerm::Snd(c(t)),
            NlTmN::Lam(v, ty, body) => NlTerm::Lam {
                var: self.owned(*v),
                ty: self.nlty.canon[ty.index()].clone(),
                body: c(body),
            },
            NlTmN::App(f, x) => NlTerm::App(c(f), c(x)),
            NlTmN::If(a, b, d) => NlTerm::If {
                cond: c(a),
                then_branch: c(b),
                else_branch: c(d),
            },
            NlTmN::NatRec {
                zero,
                n_var,
                ih_var,
                succ,
                scrutinee,
            } => NlTerm::NatRec {
                zero: c(zero),
                n_var: self.owned(*n_var),
                ih_var: self.owned(*ih_var),
                succ: c(succ),
                scrutinee: c(scrutinee),
            },
        }
    }

    // -- linear types -----------------------------------------------------

    fn ty_of(&mut self, ty: &LinType) -> TypeId {
        if let Some(&id) = self.ty.by_ptr.get(&addr(ty)) {
            return TypeId(id);
        }
        let node = match ty {
            LinType::Char(c) => TyN::Char(*c),
            LinType::Unit => TyN::Unit,
            LinType::Zero => TyN::Zero,
            LinType::Top => TyN::Top,
            LinType::Tensor(a, b) => TyN::Tensor(self.ty_of(a), self.ty_of(b)),
            LinType::LFun(a, b) => TyN::LFun(self.ty_of(a), self.ty_of(b)),
            LinType::RFun(a, b) => TyN::RFun(self.ty_of(a), self.ty_of(b)),
            LinType::Plus(ts) => TyN::Plus(ts.iter().map(|t| self.ty_of(t)).collect()),
            LinType::With(ts) => TyN::With(ts.iter().map(|t| self.ty_of(t)).collect()),
            LinType::BigPlus { var, index, body } => {
                TyN::BigPlus(self.istr(var), self.nlty_of(index), self.ty_of(body))
            }
            LinType::BigWith { var, index, body } => {
                TyN::BigWith(self.istr(var), self.nlty_of(index), self.ty_of(body))
            }
            LinType::Data { name, args } => TyN::Data(
                self.istr(name),
                args.iter().map(|a| self.nltm_of(a)).collect(),
            ),
            LinType::Equalizer { base, lhs, rhs } => {
                TyN::Equalizer(self.ty_of(base), self.istr(lhs), self.istr(rhs))
            }
        };
        self.intern_ty(node)
    }

    fn intern_ty(&mut self, node: TyN) -> TypeId {
        if let Some(&id) = self.ty.ids.get(&node) {
            return TypeId(id);
        }
        let canon = Arc::new(self.build_ty(&node));
        let id = self.ty.canon.len() as u32;
        self.ty.by_ptr.insert(addr(&*canon), id);
        // Register the inline `Vec` elements of ⊕/& so that re-interning
        // a canonical n-ary node's children stays O(1) per child.
        match (&*canon, &node) {
            (LinType::Plus(ts), TyN::Plus(ids)) | (LinType::With(ts), TyN::With(ids)) => {
                for (t, cid) in ts.iter().zip(ids) {
                    self.ty.by_ptr.insert(addr(t), cid.0);
                }
            }
            _ => {}
        }
        self.ty.ids.insert(node.clone(), id);
        self.ty.nodes.push(node);
        self.ty.canon.push(canon);
        TypeId(id)
    }

    fn build_ty(&self, n: &TyN) -> LinType {
        let c = |id: &TypeId| self.ty.canon[id.index()].clone();
        // Inline n-ary children are shallow clones of their canonical
        // nodes: their own children remain canonical `Arc`s.
        let cv = |ids: &[TypeId]| -> Vec<LinType> {
            ids.iter()
                .map(|id| (*self.ty.canon[id.index()]).clone())
                .collect()
        };
        match n {
            TyN::Char(s) => LinType::Char(*s),
            TyN::Unit => LinType::Unit,
            TyN::Zero => LinType::Zero,
            TyN::Top => LinType::Top,
            TyN::Tensor(a, b) => LinType::Tensor(c(a), c(b)),
            TyN::LFun(a, b) => LinType::LFun(c(a), c(b)),
            TyN::RFun(a, b) => LinType::RFun(c(a), c(b)),
            TyN::Plus(ids) => LinType::Plus(cv(ids)),
            TyN::With(ids) => LinType::With(cv(ids)),
            TyN::BigPlus(v, ix, body) => LinType::BigPlus {
                var: self.owned(*v),
                index: self.nlty.canon[ix.index()].clone(),
                body: c(body),
            },
            TyN::BigWith(v, ix, body) => LinType::BigWith {
                var: self.owned(*v),
                index: self.nlty.canon[ix.index()].clone(),
                body: c(body),
            },
            TyN::Data(name, args) => LinType::Data {
                name: self.owned(*name),
                args: args
                    .iter()
                    .map(|a| (*self.nltm.canon[a.index()]).clone())
                    .collect(),
            },
            TyN::Equalizer(base, lhs, rhs) => LinType::Equalizer {
                base: c(base),
                lhs: self.owned(*lhs),
                rhs: self.owned(*rhs),
            },
        }
    }

    // -- linear terms -----------------------------------------------------

    fn tm_of(&mut self, t: &LinTerm) -> TermId {
        if let Some(&id) = self.tm.by_ptr.get(&addr(t)) {
            return TermId(id);
        }
        let node = match t {
            LinTerm::Var(x) => TmN::Var(self.istr(x)),
            LinTerm::Global(g) => TmN::Global(self.istr(g)),
            LinTerm::UnitIntro => TmN::UnitIntro,
            LinTerm::LetUnit { scrutinee, body } => {
                TmN::LetUnit(self.tm_of(scrutinee), self.tm_of(body))
            }
            LinTerm::Pair(a, b) => TmN::Pair(self.tm_of(a), self.tm_of(b)),
            LinTerm::LetPair {
                scrutinee,
                left,
                right,
                body,
            } => TmN::LetPair {
                scrutinee: self.tm_of(scrutinee),
                left: self.istr(left),
                right: self.istr(right),
                body: self.tm_of(body),
            },
            LinTerm::Lam { var, dom, body } => {
                TmN::Lam(self.istr(var), self.ty_of(dom), self.tm_of(body))
            }
            LinTerm::App(f, x) => TmN::App(self.tm_of(f), self.tm_of(x)),
            LinTerm::LamL { var, dom, body } => {
                TmN::LamL(self.istr(var), self.ty_of(dom), self.tm_of(body))
            }
            LinTerm::AppL { arg, fun } => TmN::AppL(self.tm_of(arg), self.tm_of(fun)),
            LinTerm::Inj { index, arity, body } => TmN::Inj(*index, *arity, self.tm_of(body)),
            LinTerm::Case {
                scrutinee,
                branches,
            } => TmN::Case(
                self.tm_of(scrutinee),
                branches
                    .iter()
                    .map(|(v, b)| (self.istr(v), self.tm_of(b)))
                    .collect(),
            ),
            LinTerm::BigInj { index, body } => TmN::BigInj(self.nltm_of(index), self.tm_of(body)),
            LinTerm::LetBigInj {
                scrutinee,
                nl_var,
                var,
                body,
            } => TmN::LetBigInj {
                scrutinee: self.tm_of(scrutinee),
                nl_var: self.istr(nl_var),
                var: self.istr(var),
                body: self.tm_of(body),
            },
            LinTerm::BigLam { var, body } => TmN::BigLam(self.istr(var), self.tm_of(body)),
            LinTerm::BigProj { scrutinee, index } => {
                TmN::BigProj(self.tm_of(scrutinee), self.nltm_of(index))
            }
            LinTerm::Tuple(ts) => TmN::Tuple(ts.iter().map(|t| self.tm_of(t)).collect()),
            LinTerm::Proj { scrutinee, index } => TmN::Proj(self.tm_of(scrutinee), *index),
            LinTerm::Ctor {
                data,
                ctor,
                nl_args,
                lin_args,
            } => TmN::Ctor {
                data: self.istr(data),
                ctor: self.istr(ctor),
                nl_args: nl_args.iter().map(|a| self.nltm_of(a)).collect(),
                lin_args: lin_args.iter().map(|a| self.tm_of(a)).collect(),
            },
            LinTerm::Fold {
                data,
                motive,
                clauses,
                scrutinee,
            } => TmN::Fold {
                data: self.istr(data),
                motive: self.ty_of(motive),
                clauses: clauses
                    .iter()
                    .map(|cl| ClauseN {
                        nl_vars: cl.nl_vars.iter().map(|v| self.istr(v)).collect(),
                        lin_vars: cl.lin_vars.iter().map(|v| self.istr(v)).collect(),
                        body: self.tm_of(&cl.body),
                    })
                    .collect(),
                scrutinee: self.tm_of(scrutinee),
            },
            LinTerm::EqIntro(t) => TmN::EqIntro(self.tm_of(t)),
            LinTerm::EqProj(t) => TmN::EqProj(self.tm_of(t)),
        };
        self.intern_tm(node)
    }

    fn intern_tm(&mut self, node: TmN) -> TermId {
        if let Some(&id) = self.tm.ids.get(&node) {
            return TermId(id);
        }
        let canon = Arc::new(self.build_tm(&node));
        let id = self.tm.canon.len() as u32;
        self.tm.by_ptr.insert(addr(&*canon), id);
        match (&*canon, &node) {
            (LinTerm::Tuple(ts), TmN::Tuple(ids)) => {
                for (t, cid) in ts.iter().zip(ids) {
                    self.tm.by_ptr.insert(addr(t), cid.0);
                }
            }
            (LinTerm::Case { branches, .. }, TmN::Case(_, bs)) => {
                for ((_, b), (_, cid)) in branches.iter().zip(bs) {
                    self.tm.by_ptr.insert(addr(b), cid.0);
                }
            }
            (LinTerm::Ctor { lin_args, .. }, TmN::Ctor { lin_args: ids, .. }) => {
                for (t, cid) in lin_args.iter().zip(ids) {
                    self.tm.by_ptr.insert(addr(t), cid.0);
                }
            }
            _ => {}
        }
        // `tm.nodes` is left empty: no id-level traversal consumes term
        // nodes (unlike `ty`/`nltm`, whose nodes feed the memo caches).
        self.tm.ids.insert(node, id);
        self.tm.canon.push(canon);
        TermId(id)
    }

    fn build_tm(&self, n: &TmN) -> LinTerm {
        let c = |id: &TermId| self.tm.canon[id.index()].clone();
        let co = |id: &TermId| (*self.tm.canon[id.index()]).clone();
        let nt = |id: &NlTermId| (*self.nltm.canon[id.index()]).clone();
        match n {
            TmN::Var(x) => LinTerm::Var(self.owned(*x)),
            TmN::Global(g) => LinTerm::Global(self.owned(*g)),
            TmN::UnitIntro => LinTerm::UnitIntro,
            TmN::LetUnit(s, b) => LinTerm::LetUnit {
                scrutinee: c(s),
                body: c(b),
            },
            TmN::Pair(a, b) => LinTerm::Pair(c(a), c(b)),
            TmN::LetPair {
                scrutinee,
                left,
                right,
                body,
            } => LinTerm::LetPair {
                scrutinee: c(scrutinee),
                left: self.owned(*left),
                right: self.owned(*right),
                body: c(body),
            },
            TmN::Lam(v, dom, body) => LinTerm::Lam {
                var: self.owned(*v),
                dom: self.ty.canon[dom.index()].clone(),
                body: c(body),
            },
            TmN::App(f, x) => LinTerm::App(c(f), c(x)),
            TmN::LamL(v, dom, body) => LinTerm::LamL {
                var: self.owned(*v),
                dom: self.ty.canon[dom.index()].clone(),
                body: c(body),
            },
            TmN::AppL(arg, fun) => LinTerm::AppL {
                arg: c(arg),
                fun: c(fun),
            },
            TmN::Inj(index, arity, body) => LinTerm::Inj {
                index: *index,
                arity: *arity,
                body: c(body),
            },
            TmN::Case(s, bs) => LinTerm::Case {
                scrutinee: c(s),
                branches: bs.iter().map(|(v, b)| (self.owned(*v), co(b))).collect(),
            },
            TmN::BigInj(ix, body) => LinTerm::BigInj {
                index: nt(ix),
                body: c(body),
            },
            TmN::LetBigInj {
                scrutinee,
                nl_var,
                var,
                body,
            } => LinTerm::LetBigInj {
                scrutinee: c(scrutinee),
                nl_var: self.owned(*nl_var),
                var: self.owned(*var),
                body: c(body),
            },
            TmN::BigLam(v, body) => LinTerm::BigLam {
                var: self.owned(*v),
                body: c(body),
            },
            TmN::BigProj(s, ix) => LinTerm::BigProj {
                scrutinee: c(s),
                index: nt(ix),
            },
            TmN::Tuple(ids) => LinTerm::Tuple(ids.iter().map(co).collect()),
            TmN::Proj(s, index) => LinTerm::Proj {
                scrutinee: c(s),
                index: *index,
            },
            TmN::Ctor {
                data,
                ctor,
                nl_args,
                lin_args,
            } => LinTerm::Ctor {
                data: self.owned(*data),
                ctor: self.owned(*ctor),
                nl_args: nl_args.iter().map(nt).collect(),
                lin_args: lin_args.iter().map(co).collect(),
            },
            TmN::Fold {
                data,
                motive,
                clauses,
                scrutinee,
            } => LinTerm::Fold {
                data: self.owned(*data),
                motive: self.ty.canon[motive.index()].clone(),
                clauses: clauses
                    .iter()
                    .map(|cl| FoldClause {
                        nl_vars: cl.nl_vars.iter().map(|v| self.owned(*v)).collect(),
                        lin_vars: cl.lin_vars.iter().map(|v| self.owned(*v)).collect(),
                        body: c(&cl.body),
                    })
                    .collect(),
                scrutinee: c(scrutinee),
            },
            TmN::EqIntro(t) => LinTerm::EqIntro(c(t)),
            TmN::EqProj(t) => LinTerm::EqProj(c(t)),
        }
    }

    // -- grammars ---------------------------------------------------------

    fn musys_of(&mut self, sys: &Arc<MuSystem>) -> MuSysId {
        let a = addr(&**sys);
        if let Some(&id) = self.musys_by_ptr.get(&a) {
            return MuSysId(id);
        }
        // Structural dedup: systems with equal (interned) definition
        // bodies and names share one id, so independently built copies of
        // e.g. `star('a')` intern to the same canonical grammar.
        let key: (Vec<GrammarId>, Vec<Istr>) = (
            sys.iter().map(|(_, d)| self.gr_of(d)).collect(),
            (0..sys.len()).map(|i| self.istr(sys.name(i))).collect(),
        );
        match self.musys_ids.get(&key) {
            // A structurally equal system already has an id. Do NOT
            // register this instance's address or retain it: arena memory
            // must grow with distinct shapes, not with how many times a
            // caller rebuilds the same system. (The re-walk on the next
            // call is O(defs) with O(1) per already-canonical body.)
            Some(&id) => MuSysId(id),
            None => {
                let id = self.musys.len() as u32;
                self.musys.push(sys.clone());
                self.musys_ids.insert(key, id);
                // Canonical instance: retained forever, so its address is
                // a sound O(1) key.
                self.musys_by_ptr.insert(a, id);
                MuSysId(id)
            }
        }
    }

    fn gr_of(&mut self, g: &GrammarExpr) -> GrammarId {
        if let Some(&id) = self.gr.by_ptr.get(&addr(g)) {
            return GrammarId(id);
        }
        let node = match g {
            GrammarExpr::Char(c) => GrN::Char(*c),
            GrammarExpr::Eps => GrN::Eps,
            GrammarExpr::Bot => GrN::Bot,
            GrammarExpr::Top => GrN::Top,
            GrammarExpr::Tensor(a, b) => GrN::Tensor(self.gr_of(a), self.gr_of(b)),
            GrammarExpr::Plus(gs) => GrN::Plus(gs.iter().map(|g| self.gr_of(g)).collect()),
            GrammarExpr::With(gs) => GrN::With(gs.iter().map(|g| self.gr_of(g)).collect()),
            GrammarExpr::Var(i) => GrN::Var(*i),
            GrammarExpr::Mu { system, entry } => GrN::Mu(self.musys_of(system), *entry),
        };
        self.intern_gr(node)
    }

    fn intern_gr(&mut self, node: GrN) -> GrammarId {
        if let Some(&id) = self.gr.ids.get(&node) {
            return GrammarId(id);
        }
        let c = |s: &Inner, id: &GrammarId| s.gr.canon[id.index()].clone();
        let canon = Arc::new(match &node {
            GrN::Char(sym) => GrammarExpr::Char(*sym),
            GrN::Eps => GrammarExpr::Eps,
            GrN::Bot => GrammarExpr::Bot,
            GrN::Top => GrammarExpr::Top,
            GrN::Tensor(a, b) => GrammarExpr::Tensor(c(self, a), c(self, b)),
            GrN::Plus(ids) => GrammarExpr::Plus(ids.iter().map(|i| c(self, i)).collect()),
            GrN::With(ids) => GrammarExpr::With(ids.iter().map(|i| c(self, i)).collect()),
            GrN::Var(i) => GrammarExpr::Var(*i),
            GrN::Mu(sys, entry) => GrammarExpr::Mu {
                system: self.musys[sys.0 as usize].clone(),
                entry: *entry,
            },
        });
        let id = self.gr.canon.len() as u32;
        self.gr.by_ptr.insert(addr(&*canon), id);
        // `gr.nodes` is left empty: nothing traverses grammar nodes by id.
        self.gr.ids.insert(node, id);
        self.gr.canon.push(canon);
        GrammarId(id)
    }

    // -- substitution & normalization caches ------------------------------

    fn subst_nl_go(&mut self, id: NlTermId, var: Istr, repl: NlTermId) -> NlTermId {
        if let Some(&r) = self.subst_nl.get(&(id, var, repl)) {
            return r;
        }
        let node = self.nltm.nodes[id.index()].clone();
        let out = match node {
            NlTmN::Var(x) => {
                if x == var {
                    repl
                } else {
                    id
                }
            }
            NlTmN::UnitVal | NlTmN::BoolLit(_) | NlTmN::NatLit(_) | NlTmN::FinLit(..) => id,
            NlTmN::Succ(t) => {
                let t = self.subst_nl_go(t, var, repl);
                self.intern_nltm(NlTmN::Succ(t))
            }
            NlTmN::Pair(a, b) => {
                let a = self.subst_nl_go(a, var, repl);
                let b = self.subst_nl_go(b, var, repl);
                self.intern_nltm(NlTmN::Pair(a, b))
            }
            NlTmN::Fst(t) => {
                let t = self.subst_nl_go(t, var, repl);
                self.intern_nltm(NlTmN::Fst(t))
            }
            NlTmN::Snd(t) => {
                let t = self.subst_nl_go(t, var, repl);
                self.intern_nltm(NlTmN::Snd(t))
            }
            NlTmN::Lam(v, ty, body) => {
                if v == var {
                    id
                } else {
                    let body = self.subst_nl_go(body, var, repl);
                    self.intern_nltm(NlTmN::Lam(v, ty, body))
                }
            }
            NlTmN::App(f, x) => {
                let f = self.subst_nl_go(f, var, repl);
                let x = self.subst_nl_go(x, var, repl);
                self.intern_nltm(NlTmN::App(f, x))
            }
            NlTmN::If(c0, t, e) => {
                let c0 = self.subst_nl_go(c0, var, repl);
                let t = self.subst_nl_go(t, var, repl);
                let e = self.subst_nl_go(e, var, repl);
                self.intern_nltm(NlTmN::If(c0, t, e))
            }
            NlTmN::NatRec {
                zero,
                n_var,
                ih_var,
                succ,
                scrutinee,
            } => {
                let zero = self.subst_nl_go(zero, var, repl);
                let succ = if n_var == var || ih_var == var {
                    succ
                } else {
                    self.subst_nl_go(succ, var, repl)
                };
                let scrutinee = self.subst_nl_go(scrutinee, var, repl);
                self.intern_nltm(NlTmN::NatRec {
                    zero,
                    n_var,
                    ih_var,
                    succ,
                    scrutinee,
                })
            }
        };
        self.subst_nl.insert((id, var, repl), out);
        out
    }

    fn subst_ty_go(&mut self, id: TypeId, var: Istr, repl: NlTermId) -> TypeId {
        if let Some(&r) = self.subst_ty.get(&(id, var, repl)) {
            return r;
        }
        let node = self.ty.nodes[id.index()].clone();
        let out = match node {
            TyN::Char(_) | TyN::Unit | TyN::Zero | TyN::Top => id,
            TyN::Tensor(a, b) => {
                let a = self.subst_ty_go(a, var, repl);
                let b = self.subst_ty_go(b, var, repl);
                self.intern_ty(TyN::Tensor(a, b))
            }
            TyN::LFun(a, b) => {
                let a = self.subst_ty_go(a, var, repl);
                let b = self.subst_ty_go(b, var, repl);
                self.intern_ty(TyN::LFun(a, b))
            }
            TyN::RFun(a, b) => {
                let a = self.subst_ty_go(a, var, repl);
                let b = self.subst_ty_go(b, var, repl);
                self.intern_ty(TyN::RFun(a, b))
            }
            TyN::Plus(ids) => {
                let ids = ids
                    .iter()
                    .map(|t| self.subst_ty_go(*t, var, repl))
                    .collect();
                self.intern_ty(TyN::Plus(ids))
            }
            TyN::With(ids) => {
                let ids = ids
                    .iter()
                    .map(|t| self.subst_ty_go(*t, var, repl))
                    .collect();
                self.intern_ty(TyN::With(ids))
            }
            TyN::BigPlus(v, ix, body) => {
                let body = if v == var {
                    body
                } else {
                    self.subst_ty_go(body, var, repl)
                };
                self.intern_ty(TyN::BigPlus(v, ix, body))
            }
            TyN::BigWith(v, ix, body) => {
                let body = if v == var {
                    body
                } else {
                    self.subst_ty_go(body, var, repl)
                };
                self.intern_ty(TyN::BigWith(v, ix, body))
            }
            TyN::Data(name, args) => {
                let args = args
                    .iter()
                    .map(|a| self.subst_nl_go(*a, var, repl))
                    .collect();
                self.intern_ty(TyN::Data(name, args))
            }
            TyN::Equalizer(base, lhs, rhs) => {
                let base = self.subst_ty_go(base, var, repl);
                self.intern_ty(TyN::Equalizer(base, lhs, rhs))
            }
        };
        self.subst_ty.insert((id, var, repl), out);
        out
    }
}

// ---------------------------------------------------------------------------
// Public API.
// ---------------------------------------------------------------------------

/// Interns a string, returning its id. Equal strings get equal ids.
pub fn istr(s: &str) -> Istr {
    with(|i| i.istr(s))
}

/// The string behind an [`Istr`].
pub fn istr_str(i: Istr) -> Arc<str> {
    with(|inner| inner.str_of(i))
}

/// Interns a non-linear type.
pub fn nl_type_id(ty: &NlType) -> NlTypeId {
    with(|i| i.nlty_of(ty))
}

/// The canonical form behind an [`NlTypeId`].
pub fn nl_type(id: NlTypeId) -> Arc<NlType> {
    with(|i| i.nlty.canon[id.index()].clone())
}

/// Interns a non-linear term.
pub fn nl_term_id(t: &NlTerm) -> NlTermId {
    with(|i| i.nltm_of(t))
}

/// The canonical form behind an [`NlTermId`].
pub fn nl_term(id: NlTermId) -> Arc<NlTerm> {
    with(|i| i.nltm.canon[id.index()].clone())
}

/// Interns a linear type: structurally equal types map to the same id.
pub fn type_id(ty: &LinType) -> TypeId {
    with(|i| i.ty_of(ty))
}

/// The canonical form behind a [`TypeId`]. O(1); the `Arc` (and every
/// `Arc` inside it) is shared with all other owners of the same
/// structure.
pub fn lin_type(id: TypeId) -> Arc<LinType> {
    with(|i| i.ty.canon[id.index()].clone())
}

/// Interns and resolves in one step: the canonical `Arc` of `ty`.
pub fn canon_type(ty: &LinType) -> Arc<LinType> {
    with(|i| {
        let id = i.ty_of(ty);
        i.ty.canon[id.index()].clone()
    })
}

/// Interns a linear term: structurally equal terms map to the same id.
pub fn term_id(t: &LinTerm) -> TermId {
    with(|i| i.tm_of(t))
}

/// The canonical form behind a [`TermId`].
pub fn lin_term(id: TermId) -> Arc<LinTerm> {
    with(|i| i.tm.canon[id.index()].clone())
}

/// Interns and resolves a linear term in one step.
pub fn canon_term(t: &LinTerm) -> Arc<LinTerm> {
    with(|i| {
        let id = i.tm_of(t);
        i.tm.canon[id.index()].clone()
    })
}

/// Interns a grammar expression; the canonical `Arc` is returned, so the
/// result can be used directly as a [`Grammar`].
pub fn canon_grammar(g: &GrammarExpr) -> Grammar {
    with(|i| {
        let id = i.gr_of(g);
        i.gr.canon[id.index()].clone()
    })
}

/// Interns a grammar expression, returning its id.
pub fn grammar_id(g: &GrammarExpr) -> GrammarId {
    with(|i| i.gr_of(g))
}

/// The canonical grammar behind a [`GrammarId`].
pub fn grammar(id: GrammarId) -> Grammar {
    with(|i| i.gr.canon[id.index()].clone())
}

/// Interns an alphabet by its ordered symbol-name list: structurally
/// equal alphabets map to the same id. After the first call for a given
/// `Alphabet` value the lookup is O(1) (keyed on the shared name-table
/// allocation).
pub fn alphabet_id(a: &Alphabet) -> AlphabetId {
    with(|i| {
        let names = a.names_arc();
        let key_addr = addr(&**names);
        if let Some(&id) = i.alpha_by_ptr.get(&key_addr) {
            return AlphabetId(id);
        }
        let key: Vec<Istr> = names.iter().map(|n| i.istr(n)).collect();
        match i.alphabets.get(&key) {
            // Structural hit from a *different* name-table allocation:
            // return the id without retaining this instance — arena
            // memory must not grow with how many times callers rebuild
            // the same alphabet. (Re-interning the name list next time
            // is O(symbols), and alphabets are tiny.)
            Some(&id) => AlphabetId(id),
            None => {
                let id = i.next_alphabet;
                i.next_alphabet += 1;
                i.alphabets.insert(key, id);
                // First sighting: retain the name table so its address
                // is a sound O(1) key for every clone of this Alphabet.
                i.alpha_by_ptr.insert(key_addr, id);
                i.alpha_keepalive.push(names.clone());
                AlphabetId(id)
            }
        }
    })
}

/// Substitutes a non-linear term for `var` in a linear type, memoized on
/// `(TypeId, Istr, NlTermId)`. Semantically identical to the structural
/// recursion of [`crate::syntax::types::subst_lin_type`], but repeated
/// substitutions on shared subtrees are O(1) cache hits, and the result
/// is canonical (so downstream equality checks hit the pointer fast
/// path).
pub fn subst_type(ty: &LinType, var: &str, repl: &NlTerm) -> Arc<LinType> {
    with(|i| {
        let id = i.ty_of(ty);
        let v = i.istr(var);
        let r = i.nltm_of(repl);
        let out = i.subst_ty_go(id, v, r);
        i.ty.canon[out.index()].clone()
    })
}

/// Id-level substitution (see [`subst_type`]).
pub fn subst_type_id(id: TypeId, var: Istr, repl: NlTermId) -> TypeId {
    with(|i| i.subst_ty_go(id, var, repl))
}

/// Id-level substitution into a non-linear term, memoized. Semantically
/// identical to [`crate::syntax::nonlinear::subst_nl`].
pub fn subst_nl_id(id: NlTermId, var: Istr, repl: NlTermId) -> NlTermId {
    with(|i| i.subst_nl_go(id, var, repl))
}

/// The id of the partial normal form of a non-linear term (see
/// [`crate::syntax::nonlinear::normalize_nl`]), memoized by term id.
/// Since interning is injective on structure, two terms have equal normal
/// forms **iff** their `nl_normal_id`s are equal — this is the O(1)
/// amortized index-equality test used by
/// [`lin_type_equal`](crate::syntax::types::lin_type_equal).
pub fn nl_normal_id(t: &NlTerm) -> NlTermId {
    with(|i| {
        let id = i.nltm_of(t);
        if let Some(&n) = i.nl_normal.get(&id) {
            return n;
        }
        let canon = i.nltm.canon[id.index()].clone();
        // `normalize_nl` is pure and never re-enters the interner.
        let normal = crate::syntax::nonlinear::normalize_nl(&canon);
        let nid = i.nltm_of(&normal);
        i.nl_normal.insert(id, nid);
        // The normal form of a normal form is itself.
        i.nl_normal.insert(nid, nid);
        nid
    })
}

/// Counts of interned nodes `(types, terms, nl types, nl terms,
/// grammars)` — intended for tests and diagnostics.
pub fn stats() -> (usize, usize, usize, usize, usize) {
    with(|i| {
        (
            i.ty.canon.len(),
            i.tm.canon.len(),
            i.nlty.canon.len(),
            i.nltm.canon.len(),
            i.gr.canon.len(),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::alphabet::Alphabet;

    fn chr(name: &str) -> LinType {
        LinType::Char(Alphabet::abc().symbol(name).unwrap())
    }

    #[test]
    fn equal_structures_get_equal_ids() {
        let t1 = LinType::tensor(chr("a"), LinType::lfun(chr("b"), LinType::Unit));
        let t2 = LinType::tensor(chr("a"), LinType::lfun(chr("b"), LinType::Unit));
        assert_eq!(type_id(&t1), type_id(&t2));
        // And the canonical Arcs are literally the same allocation.
        assert!(Arc::ptr_eq(&canon_type(&t1), &canon_type(&t2)));
    }

    #[test]
    fn distinct_structures_get_distinct_ids() {
        assert_ne!(type_id(&chr("a")), type_id(&chr("b")));
        assert_ne!(
            type_id(&LinType::tensor(chr("a"), chr("b"))),
            type_id(&LinType::tensor(chr("b"), chr("a")))
        );
    }

    #[test]
    fn round_trip_is_identity() {
        let t = LinType::Plus(vec![
            LinType::tensor(chr("a"), chr("b")),
            LinType::Unit,
            LinType::Zero,
        ]);
        let back = lin_type(type_id(&t));
        assert_eq!(*back, t);
    }

    #[test]
    fn interned_constructors_share_subtrees() {
        // Two independently built copies of the same deep chain intern to
        // one allocation per node.
        let build = || {
            let mut t = chr("a");
            for _ in 0..64 {
                t = LinType::tensor(chr("b"), t);
            }
            t
        };
        let (t1, t2) = (build(), build());
        match (&t1, &t2) {
            (LinType::Tensor(a1, b1), LinType::Tensor(a2, b2)) => {
                assert!(Arc::ptr_eq(a1, a2));
                assert!(Arc::ptr_eq(b1, b2));
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn subst_type_is_memoized_and_correct() {
        use crate::syntax::nonlinear::NlTerm;
        let ty = LinType::Data {
            name: "T".to_owned(),
            args: vec![NlTerm::succ(NlTerm::var("n"))],
        };
        let out = subst_type(&ty, "n", &NlTerm::NatLit(4));
        let expected = LinType::Data {
            name: "T".to_owned(),
            args: vec![NlTerm::succ(NlTerm::NatLit(4))],
        };
        assert_eq!(*out, expected);
        // Second call is a cache hit on the same canonical Arc.
        let again = subst_type(&ty, "n", &NlTerm::NatLit(4));
        assert!(Arc::ptr_eq(&out, &again));
    }

    #[test]
    fn nl_normal_ids_decide_index_equality() {
        use crate::syntax::nonlinear::NlTerm;
        let a = NlTerm::succ(NlTerm::NatLit(1));
        let b = NlTerm::NatLit(2);
        assert_eq!(nl_normal_id(&a), nl_normal_id(&b));
        assert_ne!(nl_normal_id(&a), nl_normal_id(&NlTerm::NatLit(3)));
    }

    #[test]
    fn grammar_interning_shares_allocations() {
        use crate::grammar::expr::{chr as gchr, tensor as gtensor};
        let s = Alphabet::abc().symbol("a").unwrap();
        let g1 = gtensor(gchr(s), gchr(s));
        let g2 = gtensor(gchr(s), gchr(s));
        assert!(Arc::ptr_eq(&g1, &g2));
    }

    #[test]
    fn alphabets_intern_by_name_list() {
        let a = alphabet_id(&Alphabet::abc());
        let b = alphabet_id(&Alphabet::from_chars("abc"));
        let c = alphabet_id(&Alphabet::from_chars("ab"));
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn term_interning_round_trips() {
        let t = LinTerm::lam(
            "x",
            chr("a"),
            LinTerm::pair(LinTerm::var("x"), LinTerm::var("y")),
        );
        let id = term_id(&t);
        assert_eq!(*lin_term(id), t);
        assert_eq!(term_id(&t.clone()), id);
    }
}
