//! Compiling a [`LexSpec`] to its tagged-accept DFA.
//!
//! The path is the workspace's existing verified-construction pipeline,
//! reused wholesale: each rule's regex goes through Thompson's
//! construction (Construction 4.11), the per-rule NFAs are glued under a
//! fresh ε-start into one *union* NFA whose accept states carry the
//! owning rule's index as a tag, and the union is determinized
//! (Construction 4.10, tag conflicts resolved by rule priority — the
//! subset keeps the minimum tag) and minimized (tags refine the
//! partition, so no merge ever loses a priority decision). The result is
//! a dense flat-table [`Dfa`] where one load answers both "does this
//! state accept?" and "for which rule?" — exactly what the
//! maximal-munch driver probes per character.

use std::sync::Arc;

use lambek_automata::determinize::determinize_tagged;
use lambek_automata::dfa::Dfa;
use lambek_automata::minimize::minimize;
use lambek_automata::nfa::Nfa;
use regex_grammars::thompson::thompson;

use crate::spec::LexSpec;

/// A compiled lexical specification: the spec plus its tagged DFA and
/// the DFA's co-reachability table.
///
/// Cheap to clone (`Arc`-shared) and `Send + Sync`; one compiled
/// automaton serves every driver and stream opened from it.
#[derive(Debug, Clone)]
pub struct LexAutomaton {
    core: Arc<LexCore>,
}

#[derive(Debug)]
pub(crate) struct LexCore {
    pub(crate) spec: LexSpec,
    pub(crate) dfa: Dfa,
    /// `live[s]`: some accepting state is reachable from `s`. The
    /// driver treats a step into a non-live state as "the current token
    /// just ended" (or a lexical error if nothing has been accepted).
    pub(crate) live: Vec<bool>,
}

/// Builds the union NFA: a fresh start state with an ε-edge into each
/// rule's Thompson NFA, accept states tagged with the rule index.
fn union_nfa(spec: &LexSpec) -> (Nfa, Vec<Option<usize>>) {
    let sigma = spec.alphabet().clone();
    let mut nfa = Nfa::new(sigma.clone(), 1, 0);
    let mut tags = vec![None];
    for (rule, r) in spec.rules().iter().enumerate() {
        let th = thompson(&sigma, &r.regex);
        let part = th.nfa();
        let base = nfa.num_states();
        for s in 0..part.num_states() {
            let copy = nfa.add_state();
            debug_assert_eq!(copy, base + s);
            if part.is_accepting(s) {
                nfa.set_accepting(copy, true);
                tags.push(Some(rule));
            } else {
                tags.push(None);
            }
        }
        for t in part.transitions() {
            nfa.add_transition(base + t.src, t.label, base + t.dst);
        }
        for e in part.eps_transitions() {
            nfa.add_eps(base + e.src, base + e.dst);
        }
        nfa.add_eps(0, base + part.init());
    }
    (nfa, tags)
}

impl LexAutomaton {
    /// Compiles `spec` through Thompson → tagged determinize → tagged
    /// minimize.
    pub fn compile(spec: LexSpec) -> LexAutomaton {
        let (nfa, tags) = union_nfa(&spec);
        let det = determinize_tagged(&nfa, &tags);
        let dfa = minimize(&det.dfa);
        let live = dfa.live_states();
        LexAutomaton {
            core: Arc::new(LexCore { spec, dfa, live }),
        }
    }

    /// The spec this automaton was compiled from.
    pub fn spec(&self) -> &LexSpec {
        &self.core.spec
    }

    /// The tagged-accept DFA (introspection and benchmarks).
    pub fn dfa(&self) -> &Dfa {
        &self.core.dfa
    }

    /// Co-reachability per DFA state (see [`Dfa::live_states`]).
    pub fn live(&self) -> &[bool] {
        &self.core.live
    }

    pub(crate) fn core(&self) -> &Arc<LexCore> {
        &self.core
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::LexSpecBuilder;
    use lambek_core::alphabet::Alphabet;

    fn keyword_spec() -> LexSpec {
        let sigma = Alphabet::from_chars("ifx ");
        LexSpecBuilder::new(sigma)
            .token("IF", "if")
            .unwrap()
            .token("ID", "(i|f|x)(i|f|x)*")
            .unwrap()
            .skip("WS", "  *")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn compiled_dfa_tags_resolve_by_priority() {
        let auto = LexAutomaton::compile(keyword_spec());
        let sigma = auto.spec().alphabet().clone();
        let tag_after = |txt: &str| {
            let w = sigma.parse_str(txt).unwrap();
            let dfa = auto.dfa();
            dfa.accept_tag(dfa.final_state(dfa.init(), &w))
        };
        assert_eq!(tag_after("if"), Some(0), "keyword beats identifier");
        assert_eq!(tag_after("i"), Some(1));
        assert_eq!(tag_after("iff"), Some(1));
        assert_eq!(tag_after(" "), Some(2), "skip rules are rules too");
        assert_eq!(tag_after(""), None);
    }

    #[test]
    fn dead_states_are_detected() {
        // "x " cannot extend to any single token: after the identifier
        // ended, a space leads to a non-live state.
        let auto = LexAutomaton::compile(keyword_spec());
        let sigma = auto.spec().alphabet().clone();
        let dfa = auto.dfa();
        let end = dfa.final_state(dfa.init(), &sigma.parse_str("x ").unwrap());
        assert!(!auto.live()[end]);
        let ok = dfa.final_state(dfa.init(), &sigma.parse_str("i").unwrap());
        assert!(auto.live()[ok]);
    }
}
