//! Compiling a [`LexSpec`] to its tagged-accept DFA.
//!
//! The path is the workspace's existing verified-construction pipeline,
//! reused wholesale: each rule's regex goes through Thompson's
//! construction (Construction 4.11), the per-rule NFAs are glued under a
//! fresh ε-start into one *union* NFA whose accept states carry the
//! owning rule's index as a tag, and the union is determinized
//! (Construction 4.10, tag conflicts resolved by rule priority — the
//! subset keeps the minimum tag) and minimized (tags refine the
//! partition, so no merge ever loses a priority decision). The result is
//! a dense flat-table [`Dfa`] where one load answers both "does this
//! state accept?" and "for which rule?" — exactly what the
//! maximal-munch driver probes per character.
//!
//! Compilation additionally lowers the char-level DFA to **byte-sliced
//! execution tables** (`ByteDfa`): ASCII byte values are partitioned
//! into *byte-equivalence classes* (two bytes share a class iff their
//! symbols have identical transition columns), and the driver's hot loop
//! steps through a flat `[state × class] → state` table via a 256-entry
//! class map — no char decoding, no `Alphabet` hash probe, and the
//! co-reachability check folded into a DEAD sentinel row. Bytes ≥ 0x80
//! (and ASCII bytes outside the alphabet) fall back to char-at-a-time
//! stepping, so non-ASCII alphabets keep exact char-level semantics.

use std::collections::HashMap;
use std::sync::Arc;

use lambek_automata::determinize::determinize_tagged;
use lambek_automata::dfa::Dfa;
use lambek_automata::minimize::minimize;
use lambek_automata::nfa::Nfa;
use regex_grammars::thompson::thompson;

use crate::spec::LexSpec;

/// A compiled lexical specification: the spec plus its tagged DFA and
/// the DFA's co-reachability table.
///
/// Cheap to clone (`Arc`-shared) and `Send + Sync`; one compiled
/// automaton serves every driver and stream opened from it.
#[derive(Debug, Clone)]
pub struct LexAutomaton {
    core: Arc<LexCore>,
}

#[derive(Debug)]
pub(crate) struct LexCore {
    pub(crate) spec: LexSpec,
    pub(crate) dfa: Dfa,
    /// `live[s]`: some accepting state is reachable from `s`. The
    /// driver treats a step into a non-live state as "the current token
    /// just ended" (or a lexical error if nothing has been accepted).
    pub(crate) live: Vec<bool>,
    /// The byte-sliced execution tables the hot scan loop runs on.
    pub(crate) bytes: ByteDfa,
}

/// Byte-sliced execution tables for the maximal-munch hot loop, built
/// once at compile time from the tagged DFA.
///
/// ASCII byte values are partitioned into equivalence classes: two bytes
/// land in the same class iff their alphabet symbols have identical
/// transition columns (`δ(·, a) = δ(·, b)` pointwise). The scanner then
/// steps `state → next[state · nclasses + class_of[byte]]` — one shift,
/// one add, two loads per byte. Three more tricks are folded in:
///
/// * **Class 0 is the dead class**: ASCII bytes outside the alphabet
///   (and all bytes ≥ 0x80, which never take this path) map to it, and
///   every `next` entry for it is `DEAD` — so "character not in Σ" and
///   "transition died" are the same table lookup.
/// * **Co-reachability is pre-applied**: an entry whose true successor
///   is not live (`!live[t]`) is stored as `DEAD`, so the per-step
///   `live[]` probe of the char-level loop disappears.
/// * **Accepts are packed**: `accept[s]` is `tag + 1` (0 = not
///   accepting), so the last-accept update is one load and one compare
///   instead of an `Option<usize>` table probe.
///
/// `DEAD` is the sentinel state `num_states`; it has its own all-`DEAD`
/// row so a scan that died stays dead without branching.
#[derive(Debug)]
pub(crate) struct ByteDfa {
    /// Byte value → equivalence class. Class 0 is the dead class; bytes
    /// ≥ 0x80 are mapped to it but the scanner never consults them here
    /// (they take the char-decoding fallback).
    pub(crate) class_of: [u8; 256],
    /// Number of classes, dead class included (row stride of `next`).
    pub(crate) nclasses: usize,
    /// Flat `[state × class] → state` table, `(num_states + 1)` rows —
    /// the last row is the DEAD sentinel's.
    pub(crate) next: Vec<u32>,
    /// `tag + 1` of each state's accept tag, 0 when not accepting
    /// (entry `num_states` — DEAD — is 0).
    pub(crate) accept: Vec<u32>,
    /// The DFA's initial state.
    pub(crate) init: u32,
    /// The DEAD sentinel (`num_states`).
    pub(crate) dead: u32,
}

impl ByteDfa {
    fn build(spec: &LexSpec, dfa: &Dfa, live: &[bool]) -> ByteDfa {
        let n = dfa.num_states();
        let sigma = spec.alphabet();
        // Discover the classes: group single-byte (ASCII) alphabet
        // symbols by their full transition column.
        let mut class_of = [0u8; 256];
        let mut col_class: HashMap<Vec<usize>, u8> = HashMap::new();
        let mut class_sym = Vec::new(); // representative symbol per class (class 0 has none)
        for b in 0u8..0x80 {
            let Some(sym) = sigma.symbol_of_char(b as char) else {
                continue;
            };
            let col: Vec<usize> = (0..n).map(|s| dfa.delta(s, sym)).collect();
            let fresh = (col_class.len() + 1) as u8;
            let cls = *col_class.entry(col).or_insert_with(|| {
                class_sym.push(sym);
                fresh
            });
            class_of[b as usize] = cls;
        }
        let nclasses = class_sym.len() + 1;
        let dead = n as u32;
        // The table, DEAD row included. Class-0 columns stay DEAD; real
        // classes pre-apply the co-reachability filter.
        let mut next = vec![dead; (n + 1) * nclasses];
        for s in 0..n {
            for (k, &sym) in class_sym.iter().enumerate() {
                let t = dfa.delta(s, sym);
                next[s * nclasses + (k + 1)] = if live[t] { t as u32 } else { dead };
            }
        }
        let mut accept = vec![0u32; n + 1];
        for (s, a) in accept.iter_mut().take(n).enumerate() {
            if let Some(tag) = dfa.accept_tag(s) {
                *a = tag as u32 + 1;
            }
        }
        ByteDfa {
            class_of,
            nclasses,
            next,
            accept,
            init: dfa.init() as u32,
            dead,
        }
    }
}

/// Builds the union NFA: a fresh start state with an ε-edge into each
/// rule's Thompson NFA, accept states tagged with the rule index.
fn union_nfa(spec: &LexSpec) -> (Nfa, Vec<Option<usize>>) {
    let sigma = spec.alphabet().clone();
    let mut nfa = Nfa::new(sigma.clone(), 1, 0);
    let mut tags = vec![None];
    for (rule, r) in spec.rules().iter().enumerate() {
        let th = thompson(&sigma, &r.regex);
        let part = th.nfa();
        let base = nfa.num_states();
        for s in 0..part.num_states() {
            let copy = nfa.add_state();
            debug_assert_eq!(copy, base + s);
            if part.is_accepting(s) {
                nfa.set_accepting(copy, true);
                tags.push(Some(rule));
            } else {
                tags.push(None);
            }
        }
        for t in part.transitions() {
            nfa.add_transition(base + t.src, t.label, base + t.dst);
        }
        for e in part.eps_transitions() {
            nfa.add_eps(base + e.src, base + e.dst);
        }
        nfa.add_eps(0, base + part.init());
    }
    (nfa, tags)
}

impl LexAutomaton {
    /// Compiles `spec` through Thompson → tagged determinize → tagged
    /// minimize.
    pub fn compile(spec: LexSpec) -> LexAutomaton {
        let (nfa, tags) = union_nfa(&spec);
        let det = determinize_tagged(&nfa, &tags);
        let dfa = minimize(&det.dfa);
        let live = dfa.live_states();
        let bytes = ByteDfa::build(&spec, &dfa, &live);
        LexAutomaton {
            core: Arc::new(LexCore {
                spec,
                dfa,
                live,
                bytes,
            }),
        }
    }

    /// How many byte-equivalence classes the byte-sliced tables use
    /// (dead class included) — introspection for tests and benchmarks.
    pub fn num_byte_classes(&self) -> usize {
        self.core.bytes.nclasses
    }

    /// The spec this automaton was compiled from.
    pub fn spec(&self) -> &LexSpec {
        &self.core.spec
    }

    /// The tagged-accept DFA (introspection and benchmarks).
    pub fn dfa(&self) -> &Dfa {
        &self.core.dfa
    }

    /// Co-reachability per DFA state (see [`Dfa::live_states`]).
    pub fn live(&self) -> &[bool] {
        &self.core.live
    }

    pub(crate) fn core(&self) -> &Arc<LexCore> {
        &self.core
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::LexSpecBuilder;
    use lambek_core::alphabet::Alphabet;

    fn keyword_spec() -> LexSpec {
        let sigma = Alphabet::from_chars("ifx ");
        LexSpecBuilder::new(sigma)
            .token("IF", "if")
            .unwrap()
            .token("ID", "(i|f|x)(i|f|x)*")
            .unwrap()
            .skip("WS", "  *")
            .unwrap()
            .build()
            .unwrap()
    }

    #[test]
    fn compiled_dfa_tags_resolve_by_priority() {
        let auto = LexAutomaton::compile(keyword_spec());
        let sigma = auto.spec().alphabet().clone();
        let tag_after = |txt: &str| {
            let w = sigma.parse_str(txt).unwrap();
            let dfa = auto.dfa();
            dfa.accept_tag(dfa.final_state(dfa.init(), &w))
        };
        assert_eq!(tag_after("if"), Some(0), "keyword beats identifier");
        assert_eq!(tag_after("i"), Some(1));
        assert_eq!(tag_after("iff"), Some(1));
        assert_eq!(tag_after(" "), Some(2), "skip rules are rules too");
        assert_eq!(tag_after(""), None);
    }

    #[test]
    fn dead_states_are_detected() {
        // "x " cannot extend to any single token: after the identifier
        // ended, a space leads to a non-live state.
        let auto = LexAutomaton::compile(keyword_spec());
        let sigma = auto.spec().alphabet().clone();
        let dfa = auto.dfa();
        let end = dfa.final_state(dfa.init(), &sigma.parse_str("x ").unwrap());
        assert!(!auto.live()[end]);
        let ok = dfa.final_state(dfa.init(), &sigma.parse_str("i").unwrap());
        assert!(auto.live()[ok]);
    }
}
