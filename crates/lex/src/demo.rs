//! Demonstration token languages: the raw-text workloads the lexing
//! layer opens up, shared by the examples, property tests, and benches.
//!
//! Two languages, each a `(LexSpec, Cfg)` pair whose token alphabet and
//! grammar alphabet coincide — the composition contract of the engine's
//! `lexed_cfg` pipelines:
//!
//! * **arithmetic** — the paper's Fig. 15 expression grammar, but over
//!   raw text with multi-character numerals and whitespace (the char
//!   alphabet is digits, `+`, parentheses and space; the token alphabet
//!   is exactly [`Alphabet::arith`], so [`exp_cfg`] plugs straight in);
//! * **JSON subset** — objects, arrays, strings, integers, `true` /
//!   `false` / `null`, with a skip rule for spaces; the grammar is the
//!   usual LALR(1) JSON skeleton.

use lambek_automata::lookahead::ArithTokens;
use lambek_cfg::expr::exp_cfg;
use lambek_cfg::grammar::{Cfg, GSym, Production};
use lambek_core::alphabet::Alphabet;
use regex_grammars::ast::Regex;

use crate::spec::{class, literal, plus, LexSpec, LexSpecBuilder};

/// The character alphabet of the raw arithmetic language: digits, the
/// three operators of [`Alphabet::arith`], and space.
pub fn arith_chars() -> Alphabet {
    Alphabet::from_chars("0123456789+() ")
}

/// The arithmetic lex spec: `(`, `)`, `+`, multi-digit `NUM`, skipped
/// whitespace. Its token alphabet equals [`Alphabet::arith`], so it
/// composes with [`exp_cfg`].
pub fn arith_spec() -> LexSpec {
    let sigma = arith_chars();
    let digits = class(&sigma, "0123456789");
    LexSpecBuilder::new(sigma.clone())
        // `(` and `)` are grouping in the concrete regex syntax, so the
        // paren tokens are spelled as literals.
        .token_re("(", literal(&sigma, "("))
        .expect("valid rule")
        .token_re(")", literal(&sigma, ")"))
        .expect("valid rule")
        .token("+", "+")
        .expect("valid rule")
        .token_re("NUM", plus(digits))
        .expect("valid rule")
        .skip_re("WS", plus(class(&sigma, " ")))
        .expect("valid rule")
        .build()
        .expect("valid spec")
}

/// The token-level arithmetic grammar matching [`arith_spec`]: the
/// Fig. 15 `Exp`/`Atom` CFG over `{(, ), +, NUM}`.
pub fn arith_token_cfg() -> Cfg {
    exp_cfg(&ArithTokens::new())
}

/// The same arithmetic language stated directly over *characters* —
/// `NUM` expanded to `Num ::= D Num | D` — the baseline a char-level
/// Earley parser runs on so the lex+LR pipeline has something fair to
/// race (no whitespace: the char grammar has no skip channel).
pub fn arith_char_cfg() -> Cfg {
    let sigma = arith_chars();
    let sym = |c: char| GSym::T(sigma.symbol_of_char(c).expect("in alphabet"));
    const EXP: usize = 0;
    const ATOM: usize = 1;
    const NUM: usize = 2;
    const DIGIT: usize = 3;
    Cfg::new(
        sigma.clone(),
        vec![
            "Exp".to_owned(),
            "Atom".to_owned(),
            "Num".to_owned(),
            "Digit".to_owned(),
        ],
        vec![
            vec![
                Production {
                    rhs: vec![GSym::N(ATOM)],
                },
                Production {
                    rhs: vec![GSym::N(ATOM), sym('+'), GSym::N(EXP)],
                },
            ],
            vec![
                Production {
                    rhs: vec![GSym::N(NUM)],
                },
                Production {
                    rhs: vec![sym('('), GSym::N(EXP), sym(')')],
                },
            ],
            vec![
                Production {
                    rhs: vec![GSym::N(DIGIT), GSym::N(NUM)],
                },
                Production {
                    rhs: vec![GSym::N(DIGIT)],
                },
            ],
            ('0'..='9')
                .map(|d| Production { rhs: vec![sym(d)] })
                .collect(),
        ],
        EXP,
    )
}

/// The character alphabet of the JSON subset: structural characters,
/// double quote, space, lowercase letters and digits.
pub fn json_chars() -> Alphabet {
    Alphabet::from_chars("{}[]:,\" abcdefghijklmnopqrstuvwxyz0123456789")
}

/// The JSON-subset lex spec: structural tokens, the three keyword
/// literals, quoted strings (letters, digits and spaces inside),
/// integers, and skipped whitespace. Keywords are declared before the
/// string/number rules purely for readability — their languages are
/// disjoint; priority only matters for overlapping rules.
pub fn json_spec() -> LexSpec {
    let sigma = json_chars();
    let letters = class(&sigma, "abcdefghijklmnopqrstuvwxyz");
    let digits = class(&sigma, "0123456789");
    let quote = literal(&sigma, "\"");
    let inner = Regex::alt(Regex::alt(letters, digits.clone()), class(&sigma, " "));
    let string = Regex::concat(
        quote.clone(),
        Regex::concat(Regex::star(inner), quote.clone()),
    );
    LexSpecBuilder::new(sigma.clone())
        .token("{", "{")
        .expect("valid rule")
        .token("}", "}")
        .expect("valid rule")
        .token("[", "[")
        .expect("valid rule")
        .token("]", "]")
        .expect("valid rule")
        .token(":", ":")
        .expect("valid rule")
        .token(",", ",")
        .expect("valid rule")
        .token_re("true", literal(&sigma, "true"))
        .expect("valid rule")
        .token_re("false", literal(&sigma, "false"))
        .expect("valid rule")
        .token_re("null", literal(&sigma, "null"))
        .expect("valid rule")
        .token_re("STR", string)
        .expect("valid rule")
        .token_re("NUM", plus(digits))
        .expect("valid rule")
        .skip_re("WS", plus(class(&sigma, " ")))
        .expect("valid rule")
        .build()
        .expect("valid spec")
}

/// The token-level JSON-subset grammar over [`json_spec`]'s token
/// alphabet — the standard LALR(1) skeleton:
///
/// ```text
/// Value   ::= STR | NUM | true | false | null | Object | Array
/// Object  ::= { } | { Members }
/// Members ::= Pair | Members , Pair
/// Pair    ::= STR : Value
/// Array   ::= [ ] | [ Elements ]
/// Elements::= Value | Elements , Value
/// ```
pub fn json_cfg() -> Cfg {
    let tokens = json_spec().token_alphabet().clone();
    let t = |name: &str| GSym::T(tokens.symbol(name).expect("token name"));
    const VALUE: usize = 0;
    const OBJECT: usize = 1;
    const MEMBERS: usize = 2;
    const PAIR: usize = 3;
    const ARRAY: usize = 4;
    const ELEMENTS: usize = 5;
    Cfg::new(
        tokens.clone(),
        vec![
            "Value".to_owned(),
            "Object".to_owned(),
            "Members".to_owned(),
            "Pair".to_owned(),
            "Array".to_owned(),
            "Elements".to_owned(),
        ],
        vec![
            vec![
                Production {
                    rhs: vec![t("STR")],
                },
                Production {
                    rhs: vec![t("NUM")],
                },
                Production {
                    rhs: vec![t("true")],
                },
                Production {
                    rhs: vec![t("false")],
                },
                Production {
                    rhs: vec![t("null")],
                },
                Production {
                    rhs: vec![GSym::N(OBJECT)],
                },
                Production {
                    rhs: vec![GSym::N(ARRAY)],
                },
            ],
            vec![
                Production {
                    rhs: vec![t("{"), t("}")],
                },
                Production {
                    rhs: vec![t("{"), GSym::N(MEMBERS), t("}")],
                },
            ],
            vec![
                Production {
                    rhs: vec![GSym::N(PAIR)],
                },
                Production {
                    rhs: vec![GSym::N(MEMBERS), t(","), GSym::N(PAIR)],
                },
            ],
            vec![Production {
                rhs: vec![t("STR"), t(":"), GSym::N(VALUE)],
            }],
            vec![
                Production {
                    rhs: vec![t("["), t("]")],
                },
                Production {
                    rhs: vec![t("["), GSym::N(ELEMENTS), t("]")],
                },
            ],
            vec![
                Production {
                    rhs: vec![GSym::N(VALUE)],
                },
                Production {
                    rhs: vec![GSym::N(ELEMENTS), t(","), GSym::N(VALUE)],
                },
            ],
        ],
        VALUE,
    )
}

/// A deterministic arithmetic text of roughly `bytes` bytes (numbers of
/// varying widths joined by `+`, with parenthesized groups sprinkled
/// in) — the bench and test workload generator.
pub fn arith_text(bytes: usize) -> String {
    let mut out = String::with_capacity(bytes + 16);
    let mut n: u64 = 1;
    out.push('1');
    let mut depth = 0usize;
    while out.len() < bytes {
        n = n
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        match n % 7 {
            0 if depth < 8 => {
                out.push_str("+(");
                out.push_str(&format!("{}", n % 1000));
                depth += 1;
            }
            1 if depth > 0 => {
                out.push(')');
                depth -= 1;
            }
            _ => {
                out.push('+');
                out.push_str(&format!("{}", n % 100000));
            }
        }
    }
    for _ in 0..depth {
        out.push(')');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::certified::{CertifiedLexer, LexedOutcome};

    #[test]
    fn arith_spec_composes_with_the_fig15_grammar() {
        assert_eq!(arith_spec().token_alphabet(), arith_token_cfg().alphabet());
    }

    #[test]
    fn json_spec_composes_with_the_json_grammar() {
        assert_eq!(json_spec().token_alphabet(), json_cfg().alphabet());
    }

    #[test]
    fn json_text_lexes() {
        let lexer = CertifiedLexer::compile(json_spec());
        let out = lexer
            .lex("{\"name\": \"ada\", \"age\": 36, \"tags\": [true, null]}")
            .unwrap();
        let LexedOutcome::Tokens(ts) = out else {
            panic!("valid JSON subset must lex");
        };
        let tokens = lexer.spec().token_alphabet();
        let names: Vec<&str> = ts.yield_string().iter().map(|s| tokens.name(s)).collect();
        assert_eq!(
            names,
            [
                "{", "STR", ":", "STR", ",", "STR", ":", "NUM", ",", "STR", ":", "[", "true", ",",
                "null", "]", "}"
            ]
        );
    }

    #[test]
    fn arith_text_is_lexable_at_every_size() {
        let lexer = CertifiedLexer::compile(arith_spec());
        for bytes in [16, 256, 1024] {
            let text = arith_text(bytes);
            assert!(text.len() >= bytes);
            assert!(lexer.lex(&text).unwrap().is_accept(), "{bytes}");
        }
    }
}
