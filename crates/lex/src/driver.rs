//! The maximal-munch driver: one left-to-right pass with last-accept
//! backtracking, in one-shot and push-mode forms.
//!
//! Both drivers run the same loop over the tagged DFA: step per
//! character, remember the most recent tagged (accepting) state as the
//! *last accept*, and when the automaton goes dead — a non-co-reachable
//! state, or a character outside the alphabet — cut the token at the
//! last accept, re-feed the overrun characters, and continue from a
//! fresh automaton. The rule priority baked into the tags at
//! determinization time breaks ties between rules accepting the same
//! longest match. A dead automaton with *no* recorded accept is a
//! [`LexError`] carrying the byte offset where the doomed token began.

use std::collections::VecDeque;
use std::fmt;

use lambek_automata::nfa::StateId;
use lambek_core::alphabet::{GString, Symbol};

use crate::compile::{LexAutomaton, LexCore};
use crate::spec::LexSpec;

/// A byte range `[start, end)` into the raw input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    /// Byte offset of the first byte of the lexeme.
    pub start: usize,
    /// Byte offset one past the last byte.
    pub end: usize,
}

impl Span {
    /// The empty span at `at` (used for end-of-input rejections).
    pub fn empty(at: usize) -> Span {
        Span { start: at, end: at }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// `true` for zero-length spans.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "bytes {}..{}", self.start, self.end)
    }
}

/// One lexed token (skip-rule matches included — the full token list
/// tiles the input exactly; the parser-facing yield excludes them).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// Index of the matching rule in the spec (priority order).
    pub rule: usize,
    /// The matched text.
    pub text: String,
    /// Where the lexeme sits in the raw input.
    pub span: Span,
    /// The rule's symbol in the token alphabet; `None` for skip rules.
    pub sym: Option<Symbol>,
}

/// A lexical error: no rule matches any prefix of the input starting at
/// the offending position.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Byte offset where the unmatchable token begins.
    pub at: usize,
    /// Its first character.
    pub found: char,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "lexical error at byte {}: no token matches starting at {:?}",
            self.at, self.found
        )
    }
}

impl std::error::Error for LexError {}

/// A certified-lexer output: the full token list (skips included) plus
/// the token-level string the parser consumes and the spans backing it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenStream {
    tokens: Vec<Token>,
    yield_string: GString,
    yield_spans: Vec<Span>,
}

impl TokenStream {
    /// Assembles a stream from a token list (precomputing the yield).
    pub fn from_tokens(tokens: Vec<Token>) -> TokenStream {
        let mut yield_string = GString::with_capacity(tokens.len());
        let mut yield_spans = Vec::with_capacity(tokens.len());
        for t in &tokens {
            if let Some(sym) = t.sym {
                yield_string.push(sym);
                yield_spans.push(t.span);
            }
        }
        TokenStream {
            tokens,
            yield_string,
            yield_spans,
        }
    }

    /// Every token, skip-rule matches included, in input order.
    pub fn tokens(&self) -> &[Token] {
        &self.tokens
    }

    /// The token-level string (skips excluded) — the `GString` the
    /// downstream grammar parses.
    pub fn yield_string(&self) -> &GString {
        &self.yield_string
    }

    /// Byte spans of the yield, index-aligned with
    /// [`TokenStream::yield_string`].
    pub fn yield_spans(&self) -> &[Span] {
        &self.yield_spans
    }

    /// The span of yield position `k`, or the empty span at
    /// `input_len` when `k` is one past the end (an "unexpected end of
    /// input" rejection).
    pub fn span_of_yield(&self, k: usize, input_len: usize) -> Span {
        self.yield_spans
            .get(k)
            .copied()
            .unwrap_or_else(|| Span::empty(input_len))
    }
}

/// A lexeme without its materialized text: rule, byte span, and the
/// token-alphabet symbol (`None` for skip rules). This is what the
/// byte-sliced scanner produces natively — the fused and parallel paths
/// consume it directly, and [`Token`] is just a `RawLexeme` plus the
/// `String` copy of its span.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RawLexeme {
    /// Index of the matching rule in the spec (priority order).
    pub rule: usize,
    /// Where the lexeme sits in the raw input.
    pub span: Span,
    /// The rule's symbol in the token alphabet; `None` for skip rules.
    pub sym: Option<Symbol>,
}

impl RawLexeme {
    /// Materializes the [`Token`] this lexeme denotes (copies the span's
    /// bytes out of `input`).
    pub fn to_token(self, input: &str) -> Token {
        Token {
            rule: self.rule,
            text: input[self.span.start..self.span.end].to_owned(),
            span: self.span,
            sym: self.sym,
        }
    }
}

/// A consumer of lexemes for the fused paths: [`LexAutomaton::lex_into`]
/// hands each maximal-munch lexeme to the sink as it is produced, in
/// input order, without materializing a token list in between. The
/// engine's fused text→tree pipeline implements this to certify each
/// lexeme and shift its symbol into the LR machine directly from the
/// scanner's hot loop.
pub trait TokenSink {
    /// The sink's own failure type. Returning `Err` aborts the lex
    /// immediately — the fused pipeline uses this for certification
    /// faults, which invalidate everything downstream. Recoverable
    /// conditions (e.g. the parser rejecting a prefix while later input
    /// could still fail to lex) should be recorded inside the sink
    /// instead, so lexing runs to its own verdict.
    type Err;

    /// Consumes the next lexeme. `input` is the full text being lexed —
    /// the lexeme's text is `&input[lexeme.span.start..lexeme.span.end]`.
    fn lexeme(&mut self, input: &str, lexeme: RawLexeme) -> Result<(), Self::Err>;
}

/// Why a `scan_token` stopped consuming input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ScanStop {
    /// The automaton died at the byte offset: the character there is
    /// outside the alphabet, or stepping on it reaches a non-live
    /// state. The character was *not* consumed.
    Dead(usize),
    /// The input ran out while the automaton was still live — the munch
    /// is unresolved (push-mode callers keep it pending; one-shot
    /// callers cut at the last accept).
    EndOfInput,
}

/// The result of one maximal-munch scan: the most recent accept seen
/// (`(rule, end byte)`), and why the scan stopped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Scan {
    pub(crate) last: Option<(usize, usize)>,
    pub(crate) stop: ScanStop,
    /// Whether the scan dropped to the char-level non-ASCII fallback at
    /// least once (feeds the fast-lane/fallback probes; no semantic
    /// meaning).
    pub(crate) fell_back: bool,
}

/// One maximal-munch scan from byte offset `start`: steps the
/// byte-sliced tables until the automaton dies or the input ends,
/// tracking the last accept. This is THE hot loop — everything else
/// (one-shot lexing, the push stream's bulk path, parallel chunk
/// workers, the fused lex→LR feed) is a driver around it.
///
/// The fast lane dispatches 8 bytes per lap entirely inside the flat
/// `[state × class]` table (one `u64` load decides the whole lap is
/// ASCII; class 0 folds "not in Σ" and "died" into the DEAD sentinel).
/// Bytes ≥ 0x80 drop to char-at-a-time stepping through the char-level
/// DFA — identical semantics, only at token-interior non-ASCII — and
/// re-enter the fast lane on the next lap. UTF-8 boundaries therefore
/// only ever matter at the bytes the slow lane actually decodes; spans
/// land on char boundaries by construction.
pub(crate) fn scan_token(core: &LexCore, input: &str, start: usize) -> Scan {
    let bt = &core.bytes;
    let tab = &bt.next[..];
    let acc = &bt.accept[..];
    let cls = &bt.class_of;
    let nc = bt.nclasses;
    let dead = bt.dead;
    let bytes = input.as_bytes();
    let n = bytes.len();
    let mut state = bt.init;
    let mut last: Option<(usize, usize)> = None;
    let mut fell_back = false;
    let mut i = start;
    loop {
        // Fast lane: 8-byte unrolled ASCII dispatch. The `[u8; 8]` view
        // removes the per-byte bounds checks and lets the inner loop
        // unroll; the single u64 mask test bails to the slow lane when
        // any of the 8 bytes is non-ASCII.
        while i + 8 <= n {
            let chunk: &[u8; 8] = bytes[i..i + 8].try_into().expect("8-byte window");
            if u64::from_ne_bytes(*chunk) & 0x8080_8080_8080_8080 != 0 {
                break;
            }
            for (k, &b) in chunk.iter().enumerate() {
                let next = tab[state as usize * nc + cls[b as usize] as usize];
                if next == dead {
                    return Scan {
                        last,
                        stop: ScanStop::Dead(i + k),
                        fell_back,
                    };
                }
                state = next;
                let a = acc[state as usize];
                if a != 0 {
                    last = Some(((a - 1) as usize, i + k + 1));
                }
            }
            i += 8;
        }
        // Slow lane: one step (tail byte, or a non-ASCII char through
        // the char-level DFA), then retry the fast lane.
        if i >= n {
            return Scan {
                last,
                stop: ScanStop::EndOfInput,
                fell_back,
            };
        }
        let b = bytes[i];
        if b < 0x80 {
            let next = tab[state as usize * nc + cls[b as usize] as usize];
            if next == dead {
                return Scan {
                    last,
                    stop: ScanStop::Dead(i),
                    fell_back,
                };
            }
            state = next;
            i += 1;
        } else {
            fell_back = true;
            let ch = input[i..]
                .chars()
                .next()
                .expect("scan positions are char boundaries");
            let step = core
                .spec
                .alphabet()
                .symbol_of_char(ch)
                .map(|sym| core.dfa.delta(state as usize, sym))
                .filter(|&s| core.live[s]);
            let Some(s) = step else {
                return Scan {
                    last,
                    stop: ScanStop::Dead(i),
                    fell_back,
                };
            };
            state = s as u32;
            i += ch.len_utf8();
        }
        let a = acc[state as usize];
        if a != 0 {
            last = Some(((a - 1) as usize, i));
        }
    }
}

impl LexAutomaton {
    /// One-shot maximal-munch lexing of `input`. The returned tokens
    /// tile the input exactly (skip-rule matches included); this is the
    /// raw driver — [`CertifiedLexer::lex`](crate::CertifiedLexer::lex)
    /// adds the certification pass.
    ///
    /// # Errors
    ///
    /// [`LexError`] at the byte offset where no rule matches.
    pub fn lex_raw(&self, input: &str) -> Result<Vec<Token>, LexError> {
        self.lexemes(input).collect()
    }

    /// [`LexAutomaton::lex_raw`] on the original char-at-a-time loop
    /// (per-char `Alphabet` probe, explicit `live[]` check, no byte
    /// tables). Kept as the differential reference the property suites
    /// compare the byte-sliced scanner against, and as the benchmark
    /// baseline.
    ///
    /// # Errors
    ///
    /// As [`LexAutomaton::lex_raw`].
    pub fn lex_raw_charwise(&self, input: &str) -> Result<Vec<Token>, LexError> {
        self.lexemes_charwise(input).collect()
    }

    /// The char-at-a-time form of [`LexAutomaton::lexemes`] (see
    /// [`LexAutomaton::lex_raw_charwise`]).
    pub fn lexemes_charwise<'a>(&'a self, input: &'a str) -> CharwiseLexemes<'a> {
        CharwiseLexemes {
            core: self.core(),
            input,
            pos: 0,
            dead: false,
        }
    }

    /// Lexes `input` lazily into [`RawLexeme`]s — the allocation-free
    /// form of [`LexAutomaton::lexemes`] (no `String` per token). The
    /// fused lex→LR path and the parallel chunk workers run on this.
    /// After the first `Err` the iterator is exhausted.
    pub fn raw_lexemes<'a>(&'a self, input: &'a str) -> RawLexemes<'a> {
        RawLexemes {
            core: self.core(),
            input,
            pos: 0,
            dead: false,
            tally: crate::probes::ScanTally::default(),
        }
    }

    /// Lexes `input` lazily, one maximal-munch lexeme per `next` call —
    /// the pull-mode form of [`LexAutomaton::lex_raw`]. The fused
    /// engine paths consume this to certify and parse each token as it
    /// is produced, without ever materializing the whole token list.
    /// After the first `Err` the iterator is exhausted.
    pub fn lexemes<'a>(&'a self, input: &'a str) -> Lexemes<'a> {
        Lexemes {
            raw: self.raw_lexemes(input),
        }
    }

    /// Lexes `input` straight into `sink`, one [`TokenSink::lexeme`]
    /// call per maximal-munch lexeme — the push-based spine of the
    /// fused lex→certify→LR pipeline: no `Vec<Token>`, no
    /// [`TokenStream`], no per-token `String`.
    ///
    /// The nested result separates the two failure planes: the outer
    /// `Err` is the sink's (certification faults — lexing aborted), the
    /// inner one is the lexer's own verdict on the input. When the sink
    /// never fails, `Ok(Ok(()))` means every lexeme was delivered and
    /// the lexemes tile the input; `Ok(Err(e))` means the input stopped
    /// lexing at `e.at` *after* the delivered lexemes.
    ///
    /// # Errors
    ///
    /// Outer: whatever `sink.lexeme` returns. Inner: [`LexError`] at
    /// the byte offset where no rule matches, exactly as
    /// [`LexAutomaton::lex_raw`].
    pub fn lex_into<S: TokenSink>(
        &self,
        input: &str,
        sink: &mut S,
    ) -> Result<Result<(), LexError>, S::Err> {
        let core = self.core();
        // Probe accounting is batched in a stack tally and flushed (by
        // its Drop) once per lex run — every exit path, including the
        // sink's `?`, publishes without touching the scan loop.
        let mut tally = crate::probes::ScanTally::default();
        let mut pos = 0usize;
        while pos < input.len() {
            let scan = scan_token(core, input, pos);
            tally.scan(&scan, pos, input.len());
            let Some((rule, end)) = scan.last else {
                let found = input[pos..]
                    .chars()
                    .next()
                    .expect("lexeme starts are char boundaries");
                return Ok(Err(LexError { at: pos, found }));
            };
            tally.settled(&scan, input.len());
            let lexeme = RawLexeme {
                rule,
                span: Span { start: pos, end },
                sym: core.spec.token_symbol(rule),
            };
            sink.lexeme(input, lexeme)?;
            pos = end;
        }
        Ok(Ok(()))
    }

    /// Opens a push-mode lexer stream over this automaton.
    pub fn stream(&self) -> LexStream {
        LexStream {
            core: self.core().clone(),
            munch: Munch::new(self.dfa().init()),
            input: String::new(),
            dead: None,
            sabotage: None,
            emitted: 0,
        }
    }

    /// Re-injects extracted stream state (see
    /// [`LexStream::export_state`]). The blob is untrusted: the
    /// in-flight munch state is not taken from it but *re-derived* by
    /// replaying the unresolved suffix (`input[resume_from..]`) through
    /// this automaton — for an honest snapshot the replay resolves no
    /// token boundary (by definition of `resume_from`), so a replay
    /// that emits a token or hits a lexical error exposes the blob as
    /// inconsistent. Dead streams skip the replay: their munch state is
    /// unreachable by construction (every later push just re-reports
    /// the recorded error).
    ///
    /// # Errors
    ///
    /// [`LexResumeError`] on any inconsistency; the error path returns
    /// no stream.
    pub fn resume_stream(&self, st: LexStreamState) -> Result<LexStream, LexResumeError> {
        let err = |reason: String| LexResumeError { reason };
        if let Some((at, found)) = st.dead {
            if at > st.input.len() {
                return Err(err(format!(
                    "lexical error at byte {at} beyond the {}-byte input",
                    st.input.len()
                )));
            }
            return Ok(LexStream {
                core: self.core().clone(),
                munch: Munch::new(self.dfa().init()),
                input: st.input,
                dead: Some(LexError { at, found }),
                sabotage: None,
                emitted: st.emitted,
            });
        }
        if st.resume_from > st.input.len() || !st.input.is_char_boundary(st.resume_from) {
            return Err(err(format!(
                "resume offset {} is not a character boundary of the input",
                st.resume_from
            )));
        }
        let mut munch = Munch::new(self.dfa().init());
        // The replayed munch lexes only the unresolved suffix, so its
        // in-progress token starts at the resolved boundary — not at
        // byte 0 (spans of tokens cut after resume hang off this).
        munch.token_start = st.resume_from;
        let mut stream = LexStream {
            core: self.core().clone(),
            munch,
            input: st.input[..st.resume_from].to_owned(),
            dead: None,
            sabotage: None,
            emitted: st.emitted,
        };
        let tail = st.input[st.resume_from..].to_owned();
        match stream.push_str(&tail) {
            Ok(replayed) if replayed.is_empty() => Ok(stream),
            Ok(replayed) => Err(err(format!(
                "replaying the unresolved suffix emitted {} token(s): the resume \
                 offset was not the last resolved boundary",
                replayed.len()
            ))),
            Err(e) => Err(err(format!(
                "replaying the unresolved suffix hit a lexical error ({e}) on a \
                 stream recorded as alive"
            ))),
        }
    }
}

/// A lazy maximal-munch pass over a borrowed input: each `next` runs the
/// byte-sliced scanner from the current byte cursor to the next
/// last-accept boundary and yields that lexeme as a [`RawLexeme`]
/// (see [`LexAutomaton::raw_lexemes`]).
#[derive(Debug)]
pub struct RawLexemes<'a> {
    core: &'a LexCore,
    input: &'a str,
    /// Byte offset of the next token start.
    pos: usize,
    dead: bool,
    /// Scan-probe accumulator, flushed to the process-wide probes when
    /// the iterator is dropped.
    tally: crate::probes::ScanTally,
}

impl Iterator for RawLexemes<'_> {
    type Item = Result<RawLexeme, LexError>;

    fn next(&mut self) -> Option<Result<RawLexeme, LexError>> {
        if self.dead || self.pos >= self.input.len() {
            return None;
        }
        let scan = scan_token(self.core, self.input, self.pos);
        self.tally.scan(&scan, self.pos, self.input.len());
        match scan.last {
            None => {
                self.dead = true;
                Some(Err(LexError {
                    at: self.pos,
                    found: self.input[self.pos..]
                        .chars()
                        .next()
                        .expect("a non-empty remainder has a first char"),
                }))
            }
            Some((rule, end)) => {
                self.tally.settled(&scan, self.input.len());
                let span = Span {
                    start: self.pos,
                    end,
                };
                self.pos = end;
                Some(Ok(RawLexeme {
                    rule,
                    span,
                    sym: self.core.spec.token_symbol(rule),
                }))
            }
        }
    }
}

/// The [`Token`]-materializing form of [`RawLexemes`] (see
/// [`LexAutomaton::lexemes`]).
#[derive(Debug)]
pub struct Lexemes<'a> {
    raw: RawLexemes<'a>,
}

impl Iterator for Lexemes<'_> {
    type Item = Result<Token, LexError>;

    fn next(&mut self) -> Option<Result<Token, LexError>> {
        let input = self.raw.input;
        Some(self.raw.next()?.map(|l| l.to_token(input)))
    }
}

/// The original char-at-a-time maximal-munch pass, kept verbatim as the
/// differential reference for the byte-sliced scanner (see
/// [`LexAutomaton::lexemes_charwise`]).
#[derive(Debug)]
pub struct CharwiseLexemes<'a> {
    core: &'a LexCore,
    input: &'a str,
    /// Byte offset of the next token start.
    pos: usize,
    dead: bool,
}

impl Iterator for CharwiseLexemes<'_> {
    type Item = Result<Token, LexError>;

    fn next(&mut self) -> Option<Result<Token, LexError>> {
        if self.dead || self.pos >= self.input.len() {
            return None;
        }
        let core = self.core;
        let sigma = core.spec.alphabet();
        let mut state = core.dfa.init();
        let mut last: Option<(usize, usize)> = None; // (rule, byte end)
        let mut first: Option<char> = None;
        for (off, ch) in self.input[self.pos..].char_indices() {
            if first.is_none() {
                first = Some(ch);
            }
            let Some(sym) = sigma.symbol_of_char(ch) else {
                break;
            };
            let next = core.dfa.delta(state, sym);
            if !core.live[next] {
                break;
            }
            state = next;
            if let Some(rule) = core.dfa.accept_tag(state) {
                last = Some((rule, self.pos + off + ch.len_utf8()));
            }
        }
        match last {
            None => {
                self.dead = true;
                Some(Err(LexError {
                    at: self.pos,
                    found: first.expect("a non-empty remainder has a first char"),
                }))
            }
            Some((rule, end)) => {
                let span = Span {
                    start: self.pos,
                    end,
                };
                let text = self.input[self.pos..end].to_owned();
                self.pos = end;
                Some(Ok(Token {
                    rule,
                    text,
                    span,
                    sym: core.spec.token_symbol(rule),
                }))
            }
        }
    }
}

/// Test-only fault injection for the push-mode lexer: corrupts exactly
/// one emitted token so the adversarial suites can prove the
/// incremental certifier notices *at that token*. Hidden from docs;
/// never constructed by production code. Probes
/// ([`LexStream::pending_flush`]) are unaffected — only tokens actually
/// emitted by `push`/`finish` count.
#[doc(hidden)]
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SabotageLex {
    /// Shift the `token`th emitted token's span one byte right.
    ShiftSpan {
        /// Which emitted token (0-based, skips included) to corrupt.
        token: usize,
    },
    /// Rewrite the `token`th emitted token's text.
    WrongText {
        /// Which emitted token to corrupt.
        token: usize,
        /// The bogus lexeme text.
        text: String,
    },
    /// Rewrite the `token`th emitted token's rule index.
    WrongRule {
        /// Which emitted token to corrupt.
        token: usize,
        /// The bogus rule index.
        rule: usize,
    },
}

impl SabotageLex {
    /// Applies the corruption to the freshly emitted `out` tokens,
    /// advancing the emission counter.
    fn apply(this: &Option<SabotageLex>, emitted: &mut usize, out: &mut [Token]) {
        for t in out.iter_mut() {
            let i = *emitted;
            *emitted += 1;
            match this {
                Some(SabotageLex::ShiftSpan { token }) if *token == i => {
                    t.span.start += 1;
                    t.span.end += 1;
                }
                Some(SabotageLex::WrongText { token, text }) if *token == i => {
                    t.text = text.clone();
                }
                Some(SabotageLex::WrongRule { token, rule }) if *token == i => {
                    t.rule = *rule;
                }
                _ => {}
            }
        }
    }
}

/// The pure maximal-munch machine: the DFA state, the in-progress
/// token's characters, and the last accept inside them. Everything a
/// boundary resolution needs — and nothing more, so probes
/// ([`LexStream::pending_flush`]) copy this small struct instead of
/// the whole stream.
#[derive(Debug, Clone)]
struct Munch {
    state: StateId,
    /// Characters of the in-progress token.
    buf: Vec<char>,
    /// Total UTF-8 bytes of `buf`, kept incrementally (re-summing per
    /// accepting step would be quadratic in the token length).
    buf_bytes: usize,
    /// Byte offset where the in-progress token starts.
    token_start: usize,
    /// Last accept inside `buf`: `(rule, chars, bytes)` of the accepted
    /// prefix.
    last: Option<(usize, usize, usize)>,
}

impl Munch {
    fn new(init: StateId) -> Munch {
        Munch {
            state: init,
            buf: Vec::new(),
            buf_bytes: 0,
            token_start: 0,
            last: None,
        }
    }

    /// Emits the last-accepted prefix of `buf` as a token, resets the
    /// automaton, and returns the overrun characters for re-feeding.
    fn cut_token(
        &mut self,
        core: &LexCore,
        out: &mut Vec<Token>,
    ) -> Result<VecDeque<char>, LexError> {
        let Some((rule, nchars, nbytes)) = self.last.take() else {
            return Err(LexError {
                at: self.token_start,
                found: self.buf[0],
            });
        };
        if self.buf.len() > nchars {
            // The munch overran the boundary it is now cutting at:
            // a last-accept backtrack (the overrun chars get re-fed).
            crate::probes::BACKTRACKS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        let text: String = self.buf[..nchars].iter().collect();
        let leftovers: VecDeque<char> = self.buf[nchars..].iter().copied().collect();
        out.push(Token {
            rule,
            text,
            span: Span {
                start: self.token_start,
                end: self.token_start + nbytes,
            },
            sym: core.spec.token_symbol(rule),
        });
        self.token_start += nbytes;
        self.buf.clear();
        self.buf_bytes = 0;
        self.state = core.dfa.init();
        Ok(leftovers)
    }

    /// The shared stepping loop: consume queued characters, cutting
    /// tokens (and re-queuing overrun) whenever the automaton dies.
    fn drain(
        &mut self,
        core: &LexCore,
        queue: &mut VecDeque<char>,
        out: &mut Vec<Token>,
    ) -> Result<(), LexError> {
        while let Some(ch) = queue.pop_front() {
            let next = core
                .spec
                .alphabet()
                .symbol_of_char(ch)
                .map(|sym| core.dfa.delta(self.state, sym))
                .filter(|&s| core.live[s]);
            match next {
                Some(s) => {
                    self.state = s;
                    self.buf.push(ch);
                    self.buf_bytes += ch.len_utf8();
                    if let Some(rule) = core.dfa.accept_tag(s) {
                        self.last = Some((rule, self.buf.len(), self.buf_bytes));
                    }
                }
                None => {
                    if self.buf.is_empty() {
                        // The character itself is unmatchable at a
                        // fresh token start.
                        return Err(LexError {
                            at: self.token_start,
                            found: ch,
                        });
                    }
                    let leftovers = self.cut_token(core, out)?;
                    // Re-feed the overrun, then retry `ch`.
                    queue.push_front(ch);
                    for lc in leftovers.into_iter().rev() {
                        queue.push_front(lc);
                    }
                }
            }
        }
        Ok(())
    }

    /// End-of-input resolution: cut and re-feed until the buffer is
    /// empty (every character accounted for) or nothing accepts.
    fn flush(&mut self, core: &LexCore, out: &mut Vec<Token>) -> Result<(), LexError> {
        while !self.buf.is_empty() {
            let mut queue = self.cut_token(core, out)?;
            self.drain(core, &mut queue, out)?;
        }
        Ok(())
    }
}

/// A push-mode incremental lexer: characters in, tokens out as soon as
/// their right boundary is certain.
///
/// The *automaton* side buffers exactly the in-progress token — the
/// suffix after the last resolved boundary — so the working state is
/// bounded by the longest lexeme. (The stream additionally retains the
/// full pushed text in [`LexStream::raw_input`], which is what the
/// certification pass at the end of a certified pipeline re-checks the
/// emitted tokens against.) A token is emitted the moment a character
/// proves the automaton can no longer extend the match (maximal munch
/// with last-accept backtracking: the overrun characters are re-fed
/// through a fresh automaton). [`LexStream::finish`] flushes the
/// pending token(s).
#[derive(Debug, Clone)]
pub struct LexStream {
    core: std::sync::Arc<LexCore>,
    munch: Munch,
    /// Everything pushed so far (certification at `finish` re-checks
    /// the emitted tokens against exactly this).
    input: String,
    /// The first lexical error; later pushes keep reporting it.
    dead: Option<LexError>,
    /// Test-only fault injection (see [`SabotageLex`]).
    sabotage: Option<SabotageLex>,
    /// How many tokens `push`/`finish` have emitted so far (probes via
    /// [`LexStream::pending_flush`] do not count).
    emitted: usize,
}

impl LexStream {
    /// The spec behind the stream.
    pub fn spec(&self) -> &LexSpec {
        &self.core.spec
    }

    /// Everything pushed so far.
    pub fn raw_input(&self) -> &str {
        &self.input
    }

    /// Number of characters buffered for the in-progress token.
    pub fn pending_chars(&self) -> usize {
        self.munch.buf.len()
    }

    /// `false` once a lexical error has been hit.
    pub fn is_alive(&self) -> bool {
        self.dead.is_none()
    }

    /// The first lexical error, if the stream has died.
    pub fn error(&self) -> Option<&LexError> {
        self.dead.as_ref()
    }

    /// Consumes one character, returning the tokens whose right
    /// boundary it resolved (usually none or one; backtracking can
    /// release several).
    ///
    /// # Errors
    ///
    /// [`LexError`] when no rule matches at the current token start;
    /// the stream stays dead (and keeps returning the same error) from
    /// then on.
    pub fn push(&mut self, c: char) -> Result<Vec<Token>, LexError> {
        self.input.push(c);
        if let Some(e) = &self.dead {
            return Err(e.clone());
        }
        let mut out = Vec::new();
        let mut queue = VecDeque::from([c]);
        match self.munch.drain(&self.core, &mut queue, &mut out) {
            Ok(()) => {
                SabotageLex::apply(&self.sabotage, &mut self.emitted, &mut out);
                Ok(out)
            }
            Err(e) => {
                self.dead = Some(e.clone());
                Err(e)
            }
        }
    }

    /// Pushes a whole string through the bulk byte-sliced path:
    /// instead of stepping the char-at-a-time munch automaton, the
    /// unresolved suffix is re-scanned with `scan_token` (the same
    /// 8-byte-unrolled hot loop behind one-shot lexing), settled tokens
    /// are emitted in one pass, and only the still-pending tail is
    /// replayed into the incremental munch state. Observationally
    /// identical to `for c in s.chars() { self.push(c)?; }` — same
    /// tokens, same errors, same retained state — the per-char loop
    /// survives as the error path and as the differential reference.
    ///
    /// # Errors
    ///
    /// As [`LexStream::push`]; tokens resolved before the error are
    /// lost to the caller (the stream itself is dead anyway).
    pub fn push_str(&mut self, s: &str) -> Result<Vec<Token>, LexError> {
        let mut out = Vec::new();
        self.push_str_into(s, &mut out)?;
        Ok(out)
    }

    /// [`LexStream::push_str`] appending into a caller-provided buffer,
    /// so a loop feeding many slices can reuse one allocation. On
    /// `Err`, tokens resolved by earlier slices of `s` before the
    /// stream died may already have been appended; the stream is dead
    /// either way.
    ///
    /// # Errors
    ///
    /// As [`LexStream::push`].
    pub fn push_str_into(&mut self, s: &str, out: &mut Vec<Token>) -> Result<(), LexError> {
        if self.dead.is_some() || s.is_empty() {
            // Degenerate cases take the per-char loop verbatim: an
            // empty push is a no-op even on a dead stream; a dead
            // stream records exactly one more char and re-reports.
            for c in s.chars() {
                out.extend(self.push(c)?);
            }
            return Ok(());
        }
        let core = self.core.clone();
        let old_len = self.input.len();
        self.input.push_str(s);
        // Speculatively re-scan the whole unresolved region (pending
        // token start to new end) with the byte-sliced scanner. Each
        // scan that *dies* before the end settles one token boundary;
        // the scan that runs out of input is the new pending tail.
        let start = self.munch.token_start;
        let mut pos = start;
        let mut tally = crate::probes::ScanTally::default();
        let mut settled: Vec<(usize, usize, usize)> = Vec::new(); // (rule, start, end)
        loop {
            let scan = scan_token(&core, &self.input, pos);
            tally.scan(&scan, pos, self.input.len());
            match scan.stop {
                ScanStop::EndOfInput => break,
                ScanStop::Dead(_) => match scan.last {
                    Some((rule, end)) => {
                        tally.settled(&scan, self.input.len());
                        settled.push((rule, pos, end));
                        pos = end;
                    }
                    None => {
                        // The chain errors somewhere in `s`. Roll the
                        // bulk append back and replay per-char: which
                        // chars the stream retains and what the munch
                        // holds at death are per-char semantics, and
                        // errors are not the hot path.
                        self.input.truncate(old_len);
                        for c in s.chars() {
                            out.extend(self.push(c)?);
                        }
                        return Ok(());
                    }
                },
            }
        }
        let emit_from = out.len();
        for &(rule, tstart, end) in &settled {
            out.push(Token {
                rule,
                text: self.input[tstart..end].to_owned(),
                span: Span { start: tstart, end },
                sym: core.spec.token_symbol(rule),
            });
        }
        if settled.is_empty() {
            // `s` only extends the pending token: feed the new chars
            // into the live munch so repeated bulk pushes stay
            // incremental.
            let mut queue: VecDeque<char> = s.chars().collect();
            self.munch
                .drain(&core, &mut queue, out)
                .expect("scan reached end of input alive; the replay cannot die");
            debug_assert_eq!(out.len(), emit_from, "no death ⇒ no resolved boundary");
        } else {
            // Re-derive the pending munch from the last settled
            // boundary — exactly the state the per-char path keeps: a
            // fresh automaton fed the unresolved suffix (bounded by
            // the longest lexeme plus its overrun).
            self.munch.state = core.dfa.init();
            self.munch.buf.clear();
            self.munch.buf_bytes = 0;
            self.munch.token_start = pos;
            self.munch.last = None;
            let mut queue: VecDeque<char> = self.input[pos..].chars().collect();
            let before = out.len();
            self.munch
                .drain(&core, &mut queue, out)
                .expect("scan reached end of input alive; the replay cannot die");
            debug_assert_eq!(out.len(), before, "no death ⇒ no resolved boundary");
        }
        SabotageLex::apply(&self.sabotage, &mut self.emitted, &mut out[emit_from..]);
        Ok(())
    }

    /// Ends the input, flushing the buffered token boundary.
    ///
    /// # Errors
    ///
    /// [`LexError`] if the buffered suffix does not resolve into
    /// complete tokens.
    pub fn finish(mut self) -> Result<Vec<Token>, LexError> {
        if let Some(e) = self.dead {
            return Err(e);
        }
        let mut out = Vec::new();
        self.munch.flush(&self.core, &mut out)?;
        SabotageLex::apply(&self.sabotage, &mut self.emitted, &mut out);
        Ok(out)
    }

    /// Injects a one-token fault into the emitted stream (test-only;
    /// see [`SabotageLex`]).
    #[doc(hidden)]
    pub fn sabotage(&mut self, s: SabotageLex) {
        self.sabotage = Some(s);
    }

    /// What [`LexStream::finish`] *would* emit for the buffered
    /// boundary, without ending (or disturbing) the stream: the
    /// resolution runs on a copy of the small munch state — it does not
    /// clone the accumulated input, so per-character acceptance probes
    /// stay O(pending token), not O(stream).
    ///
    /// # Errors
    ///
    /// [`LexError`] exactly when `finish` would fail.
    pub fn pending_flush(&self) -> Result<Vec<Token>, LexError> {
        if let Some(e) = &self.dead {
            return Err(e.clone());
        }
        let mut probe = self.munch.clone();
        let mut out = Vec::new();
        probe.flush(&self.core, &mut out)?;
        Ok(out)
    }

    /// Extracts the stream's state for serialization (session
    /// park/resume; sabotage injections are deliberately not exported).
    ///
    /// The munch automaton's in-flight state (`state`, buffered chars,
    /// last-accept marker) is *not* part of the export: it is a
    /// deterministic function of the raw input since the last resolved
    /// token boundary, and [`LexAutomaton::resume_stream`] re-derives
    /// it by replaying that unresolved suffix — which both shrinks the
    /// wire format and turns a corrupted boundary offset into a
    /// detected inconsistency instead of a trusted lie.
    pub fn export_state(&self) -> LexStreamState {
        LexStreamState {
            input: self.input.clone(),
            resume_from: self.munch.token_start,
            emitted: self.emitted,
            dead: self.dead.as_ref().map(|e| (e.at, e.found)),
        }
    }
}

/// The extracted, process-independent state of a [`LexStream`] (see
/// [`LexStream::export_state`] / [`LexAutomaton::resume_stream`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexStreamState {
    /// Every character pushed so far, unlexable suffix included.
    pub input: String,
    /// Byte offset of the last resolved token boundary: everything
    /// before it has been emitted as tokens, everything after it is the
    /// in-flight munch the resumed stream re-derives.
    pub resume_from: usize,
    /// How many tokens the stream had emitted.
    pub emitted: usize,
    /// `Some((at, found))` if the stream is dead: the byte offset where
    /// the unmatchable token begins and its first character.
    pub dead: Option<(usize, char)>,
}

/// A lexer session blob failed re-validation against the automaton it
/// was resumed into (see [`LexAutomaton::resume_stream`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexResumeError {
    /// What was inconsistent.
    pub reason: String,
}

impl fmt::Display for LexResumeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "lex stream state failed re-validation: {}", self.reason)
    }
}

impl std::error::Error for LexResumeError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::LexSpecBuilder;
    use lambek_core::alphabet::Alphabet;

    fn arith_auto() -> LexAutomaton {
        let sigma = Alphabet::from_chars("0123456789+() ");
        let spec = LexSpecBuilder::new(sigma.clone())
            .token_re("(", crate::spec::literal(&sigma, "("))
            .unwrap()
            .token_re(")", crate::spec::literal(&sigma, ")"))
            .unwrap()
            .token("+", "+")
            .unwrap()
            .token_re(
                "NUM",
                crate::spec::plus(crate::spec::class(&sigma, "0123456789")),
            )
            .unwrap()
            .skip("WS", "  *")
            .unwrap()
            .build()
            .unwrap();
        LexAutomaton::compile(spec)
    }

    #[test]
    fn maximal_munch_takes_the_longest_number() {
        let auto = arith_auto();
        let tokens = auto.lex_raw("12+(345)").unwrap();
        let texts: Vec<&str> = tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["12", "+", "(", "345", ")"]);
        assert_eq!(tokens[0].span, Span { start: 0, end: 2 });
        assert_eq!(tokens[3].span, Span { start: 4, end: 7 });
        let names: Vec<&str> = tokens
            .iter()
            .map(|t| auto.spec().rule_name(t.rule))
            .collect();
        assert_eq!(names, ["NUM", "+", "(", "NUM", ")"]);
    }

    #[test]
    fn skips_are_lexed_but_left_out_of_the_yield() {
        let auto = arith_auto();
        let tokens = auto.lex_raw("1 + 2").unwrap();
        assert_eq!(tokens.len(), 5, "two skips included in the tiling");
        let ts = TokenStream::from_tokens(tokens);
        assert_eq!(ts.yield_string().len(), 3, "NUM + NUM");
        assert_eq!(ts.yield_spans().len(), 3);
        assert_eq!(ts.yield_spans()[2], Span { start: 4, end: 5 });
        assert_eq!(ts.span_of_yield(3, 5), Span::empty(5));
    }

    #[test]
    fn lex_errors_carry_byte_offsets() {
        let auto = arith_auto();
        // 'x' is not even in the character alphabet.
        let err = auto.lex_raw("12+x3").unwrap_err();
        assert_eq!(err, LexError { at: 3, found: 'x' });
        assert!(format!("{err}").contains("byte 3"), "{err}");
        // Errors are byte (not char) offsets even after multi-byte
        // text… the alphabet is ASCII here, so spans are bytes anyway.
        let err2 = auto.lex_raw("×").unwrap_err();
        assert_eq!(err2.at, 0);
    }

    #[test]
    fn stream_agrees_with_one_shot_pointwise() {
        let auto = arith_auto();
        for input in ["12+(345)", "1 + 2", "", "((7))", "99 ", " 5"] {
            let oneshot = auto.lex_raw(input).unwrap();
            let mut stream = auto.stream();
            let mut streamed = Vec::new();
            for c in input.chars() {
                streamed.extend(stream.push(c).unwrap());
                assert!(
                    stream.pending_chars() <= input.len(),
                    "buffer stays bounded"
                );
            }
            streamed.extend(stream.finish().unwrap());
            assert_eq!(streamed, oneshot, "{input:?}");
        }
    }

    #[test]
    fn bulk_push_str_agrees_with_per_char_pushes() {
        let auto = arith_auto();
        for input in [
            "12+(345)",
            "1 + 2",
            "",
            "((7))",
            "99 ",
            " 5",
            "12+x3",
            "×",
            "1+",
            "12345678901234567890",
        ] {
            for chunk in [1usize, 2, 3, 5, input.len().max(1)] {
                let mut bulk = auto.stream();
                let mut charwise = auto.stream();
                let mut bulk_out = Vec::new();
                let mut char_out = Vec::new();
                let mut bulk_err = None;
                let mut char_err = None;
                let slices: Vec<&str> = {
                    let mut v = Vec::new();
                    let mut rest = input;
                    while !rest.is_empty() {
                        let mut cut = chunk.min(rest.len());
                        while !rest.is_char_boundary(cut) {
                            cut += 1;
                        }
                        v.push(&rest[..cut]);
                        rest = &rest[cut..];
                    }
                    v
                };
                for s in &slices {
                    if bulk_err.is_none() {
                        match bulk.push_str_into(s, &mut bulk_out) {
                            Ok(()) => {}
                            Err(e) => bulk_err = Some(e),
                        }
                    }
                    if char_err.is_none() {
                        for c in s.chars() {
                            match charwise.push(c) {
                                Ok(t) => char_out.extend(t),
                                Err(e) => {
                                    char_err = Some(e);
                                    break;
                                }
                            }
                        }
                    }
                }
                assert_eq!(bulk_err, char_err, "{input:?} chunk {chunk}");
                if bulk_err.is_none() {
                    assert_eq!(bulk_out, char_out, "{input:?} chunk {chunk}");
                    assert_eq!(
                        bulk.export_state(),
                        charwise.export_state(),
                        "{input:?} chunk {chunk}"
                    );
                    assert_eq!(
                        bulk.finish().unwrap(),
                        charwise.finish().unwrap(),
                        "{input:?} chunk {chunk}"
                    );
                }
            }
        }
    }

    #[test]
    fn bulk_push_str_on_a_dead_stream_reports_and_records_one_char() {
        let auto = arith_auto();
        let mut stream = auto.stream();
        let err = stream.push_str("1+x").unwrap_err();
        assert_eq!(err, LexError { at: 2, found: 'x' });
        assert!(!stream.is_alive());
        let before = stream.raw_input().to_owned();
        assert_eq!(stream.push_str("99").unwrap_err(), err);
        assert_eq!(
            stream.raw_input().len(),
            before.len() + 1,
            "a dead stream records exactly one char per failed push_str"
        );
        assert!(stream.push_str("").is_ok(), "empty pushes stay no-ops");
    }

    #[test]
    fn stream_buffers_only_the_pending_token() {
        let auto = arith_auto();
        let mut stream = auto.stream();
        assert!(stream.push('1').unwrap().is_empty(), "boundary unknown yet");
        assert!(stream.push('2').unwrap().is_empty());
        assert_eq!(stream.pending_chars(), 2);
        let out = stream.push('+').unwrap();
        assert_eq!(out.len(), 1, "the '+' resolved the number's boundary");
        assert_eq!(out[0].text, "12");
        assert_eq!(stream.pending_chars(), 1, "only '+' is buffered");
        let rest = stream.finish().unwrap();
        assert_eq!(rest.len(), 1);
        assert_eq!(rest[0].text, "+");
    }

    #[test]
    fn pending_flush_probes_without_disturbing() {
        let auto = arith_auto();
        let mut stream = auto.stream();
        stream.push('1').unwrap();
        stream.push('2').unwrap();
        let probe = stream.pending_flush().unwrap();
        assert_eq!(probe.len(), 1);
        assert_eq!(probe[0].text, "12");
        assert_eq!(stream.pending_chars(), 2, "probe leaves the stream alone");
        assert_eq!(stream.finish().unwrap(), probe, "finish agrees with it");
        // A dangling partial token probes as the same error finish gives.
        let sigma = Alphabet::from_chars("if");
        let spec = LexSpecBuilder::new(sigma)
            .token("IF", "if")
            .unwrap()
            .build()
            .unwrap();
        let auto = LexAutomaton::compile(spec);
        let mut stream = auto.stream();
        stream.push('i').unwrap();
        assert_eq!(
            stream.pending_flush().unwrap_err(),
            LexError { at: 0, found: 'i' }
        );
    }

    #[test]
    fn stream_errors_stick() {
        let auto = arith_auto();
        let mut stream = auto.stream();
        stream.push('7').unwrap();
        let err = stream.push('x').unwrap_err();
        assert_eq!(err.at, 1, "the number 7 lexes; 'x' starts a bad token");
        assert!(!stream.is_alive());
        assert_eq!(stream.push('8').unwrap_err(), err);
        assert_eq!(stream.raw_input(), "7x8");
        assert_eq!(stream.error(), Some(&err));
        assert_eq!(stream.finish().unwrap_err(), err);
    }

    #[test]
    fn finish_rejects_a_dangling_partial_token() {
        // "(" then nothing is fine; a lone "4" is fine; but a spec with
        // only multi-char tokens can dangle: keyword "if" with input
        // "i" must fail at finish.
        let sigma = Alphabet::from_chars("if");
        let spec = LexSpecBuilder::new(sigma)
            .token("IF", "if")
            .unwrap()
            .build()
            .unwrap();
        let auto = LexAutomaton::compile(spec);
        let mut stream = auto.stream();
        assert!(stream.push('i').unwrap().is_empty());
        let err = stream.finish().unwrap_err();
        assert_eq!(err, LexError { at: 0, found: 'i' });
    }

    #[test]
    fn backtracking_refeeds_the_overrun() {
        // Rules: AB = "ab", A = "a". Input "aab": munch tries "aa…",
        // dies, backtracks to "a", re-feeds "a", then matches "ab".
        let sigma = Alphabet::from_chars("ab");
        let spec = LexSpecBuilder::new(sigma)
            .token("AB", "ab")
            .unwrap()
            .token("A", "a")
            .unwrap()
            .build()
            .unwrap();
        let auto = LexAutomaton::compile(spec);
        let tokens = auto.lex_raw("aab").unwrap();
        let texts: Vec<&str> = tokens.iter().map(|t| t.text.as_str()).collect();
        assert_eq!(texts, ["a", "ab"]);
        // And the stream form agrees.
        let mut stream = auto.stream();
        let mut streamed = Vec::new();
        for c in "aab".chars() {
            streamed.extend(stream.push(c).unwrap());
        }
        streamed.extend(stream.finish().unwrap());
        assert_eq!(streamed, tokens);
    }

    #[test]
    fn priority_breaks_equal_length_ties() {
        // "if" matches both IF and ID at length 2; IF is declared first.
        let sigma = Alphabet::from_chars("ifx");
        let spec = LexSpecBuilder::new(sigma)
            .token("IF", "if")
            .unwrap()
            .token("ID", "(i|f|x)(i|f|x)*")
            .unwrap()
            .build()
            .unwrap();
        let auto = LexAutomaton::compile(spec);
        let toks = auto.lex_raw("ififx").unwrap();
        let named: Vec<(&str, &str)> = toks
            .iter()
            .map(|t| (auto.spec().rule_name(t.rule), t.text.as_str()))
            .collect();
        // Maximal munch: "ififx" is one identifier (longest match wins
        // over priority — priority only breaks length ties).
        assert_eq!(named, [("ID", "ififx")]);
        let toks2 = auto.lex_raw("if").unwrap();
        let named2: Vec<&str> = toks2
            .iter()
            .map(|t| auto.spec().rule_name(t.rule))
            .collect();
        assert_eq!(named2, ["IF"], "equal length: the earlier rule wins");
    }
}
